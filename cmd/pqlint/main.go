// Command pqlint runs the repo's determinism and concurrency lint suite
// (see internal/analysis): globalrand, detrange, floateq, droppederr,
// walltime, looproutine, lockleak, atomicmix, ctxhttp.
//
// Usage:
//
//	pqlint [-json] [-rules globalrand,detrange,...] [-suppressed] [-tests] [-workers N] [patterns]
//
// Patterns are "./..." (the whole module containing the working
// directory, the tier-1 form) or package directories like
// ./internal/metrics. With no pattern, "./..." is assumed. _test.go
// files are analyzed by default (-tests=false restores library-only
// runs); package type checks run in parallel topological waves on
// -workers workers (0 = GOMAXPROCS) with bitwise-identical findings at
// every worker count.
//
// Exit codes (the tier-1 contract):
//
//	0  no un-suppressed diagnostics
//	1  at least one un-suppressed diagnostic (printed to stdout)
//	2  usage or load error (printed to stderr)
//
// With -json, stdout is a JSON array of diagnostic objects — empty for a
// clean tree — so CI can parse findings without scraping text.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pagequality/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the machine-readable diagnostic shape.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Rule       string `json:"rule"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pqlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	showSuppressed := fs.Bool("suppressed", false, "also list findings silenced by //pqlint:allow")
	tests := fs.Bool("tests", true, "analyze _test.go files too")
	workers := fs.Int("workers", 0, "type-check worker count (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintf(stderr, "pqlint: %v\n", err)
		return 2
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "pqlint: %v\n", err)
		return 2
	}
	pkgs, err := analysis.LoadModule(root, analysis.LoadOptions{Tests: *tests, Workers: *workers})
	if err != nil {
		fmt.Fprintf(stderr, "pqlint: %v\n", err)
		return 2
	}
	pkgs, err = filterPackages(pkgs, fs.Args(), root)
	if err != nil {
		fmt.Fprintf(stderr, "pqlint: %v\n", err)
		return 2
	}

	diags := analysis.RunAnalyzers(pkgs, analyzers)
	active := 0
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		if d.Suppressed && !*showSuppressed {
			continue
		}
		if !d.Suppressed {
			active++
		}
		rel := d.Pos.Filename
		if r, err := filepath.Rel(root, rel); err == nil && !strings.HasPrefix(r, "..") {
			rel = r
		}
		if *jsonOut {
			out = append(out, jsonDiag{
				File: rel, Line: d.Pos.Line, Col: d.Pos.Column,
				Rule: d.Rule, Message: d.Message,
				Suppressed: d.Suppressed, Reason: d.Reason,
			})
		} else {
			mark := ""
			if d.Suppressed {
				mark = " (suppressed: " + d.Reason + ")"
			}
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s%s\n",
				rel, d.Pos.Line, d.Pos.Column, d.Rule, d.Message, mark)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "pqlint: %v\n", err)
			return 2
		}
	}
	if active > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -rules flag against the registry.
func selectAnalyzers(rules string) ([]*analysis.Analyzer, error) {
	all := analysis.Analyzers()
	if rules == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var sel []*analysis.Analyzer
	for _, name := range strings.Split(rules, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (known: %s)",
				name, strings.Join(analysis.AnalyzerNames(), ", "))
		}
		sel = append(sel, a)
	}
	return sel, nil
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above working directory")
		}
		dir = parent
	}
}

// filterPackages restricts the loaded module to the requested patterns.
// "./..." (or no pattern) keeps everything; a directory pattern keeps the
// package rooted there, and dir/... keeps its subtree.
func filterPackages(pkgs []*analysis.Package, patterns []string, root string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		return pkgs, nil
	}
	keep := make(map[string]bool)
	var recursive []string
	for _, pat := range patterns {
		if pat == "./..." || pat == "..." {
			return pkgs, nil
		}
		rec := false
		if strings.HasSuffix(pat, "/...") {
			rec = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if rec {
			recursive = append(recursive, abs)
		} else {
			keep[abs] = true
		}
	}
	var out []*analysis.Package
	for _, p := range pkgs {
		abs, err := filepath.Abs(p.Dir)
		if err != nil {
			return nil, err
		}
		if keep[abs] {
			out = append(out, p)
			continue
		}
		for _, r := range recursive {
			if abs == r || strings.HasPrefix(abs, r+string(filepath.Separator)) {
				out = append(out, p)
				break
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("patterns %v matched no packages", patterns)
	}
	return out, nil
}
