// Command tool reads the wall clock at the process boundary, which the
// walltime rule exempts: commands own their timing, on stderr.
package main

import (
	"fmt"
	"os"
	"time"
)

func main() {
	start := time.Now()
	fmt.Fprintln(os.Stderr, "elapsed:", time.Since(start))
}
