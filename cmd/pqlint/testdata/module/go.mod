module pqlint.test/golden

go 1.22
