package lib

import "testing"

// TestEq carries a finding of its own, proving _test.go files are
// analyzed when -tests is on (the default).
func TestEq(t *testing.T) {
	var x, y float64 = 1, 1
	if x == y {
		t.Log("exact tie")
	}
	if !Eq(1, 1) {
		t.Fatal("Eq(1, 1)")
	}
}
