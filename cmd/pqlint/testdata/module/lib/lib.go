// Package lib trips every pqlint rule exactly once, in registry order,
// so the golden -json output freezes each rule's message and position.
package lib

import (
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Draw uses the shared global generator: globalrand.
func Draw() int {
	return rand.Intn(6)
}

// Keys leaks map order into a slice: detrange.
func Keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// Eq compares floats exactly: floateq.
func Eq(a, b float64) bool {
	return a == b
}

// MustClose discards the close error: droppederr.
func MustClose(c io.Closer) {
	_ = c.Close()
}

// Stamp reads the wall clock in library code: walltime.
func Stamp() time.Time {
	return time.Now()
}

// Spawn forks per element with no join: looproutine.
func Spawn(fs []func()) {
	for _, f := range fs {
		go f()
	}
}

// Box locks without unlocking on the return path: lockleak.
type Box struct {
	mu sync.Mutex
	n  int
}

// Peek returns with the mutex held.
func (b *Box) Peek() int {
	b.mu.Lock()
	return b.n
}

var hits int64

// Hit counts atomically; Hits reads the same word plainly: atomicmix.
func Hit() {
	atomic.AddInt64(&hits, 1)
}

// Hits performs the plain read half of the mix.
func Hits() int64 {
	return hits
}

// Ping issues a context-less request: ctxhttp.
func Ping(c *http.Client, url string) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// Tie documents an intentional exact comparison: the directive keeps the
// finding suppressed (and exercised, so it never goes stale).
func Tie(a, b float64) bool {
	return a != b //pqlint:allow floateq exact ties are the documented exception
}
