package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// chdir moves the process into dir for one test (run serially).
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

// writeModule lays out a throwaway module with one dirty package.
func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module pqlint.test/dirty\n\ngo 1.22\n",
		"dirty/dirty.go": `package dirty

import "math/rand"

func Draw() int {
	return rand.Intn(10)
}

func Eq(a, b float64) bool {
	return a == b
}
`,
		"clean/clean.go": `package clean

func Add(a, b int) int { return a + b }
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunFindsDiagnosticsAndJSON(t *testing.T) {
	chdir(t, writeModule(t))
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	var diags []jsonDiag
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout.String())
	}
	rules := map[string]int{}
	for _, d := range diags {
		rules[d.Rule]++
		if d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		if filepath.IsAbs(d.File) {
			t.Errorf("diagnostic path not module-relative: %s", d.File)
		}
	}
	if rules["globalrand"] != 1 || rules["floateq"] != 1 {
		t.Errorf("rule counts = %v, want one globalrand and one floateq", rules)
	}
}

func TestRunCleanPackageExitsZero(t *testing.T) {
	chdir(t, writeModule(t))
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "./clean"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	var diags []jsonDiag
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 0 {
		t.Errorf("clean package produced diagnostics: %v", diags)
	}
}

func TestRunRuleSubset(t *testing.T) {
	chdir(t, writeModule(t))
	var stdout, stderr bytes.Buffer
	code := run([]string{"-rules", "floateq", "./dirty"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[floateq]") || strings.Contains(out, "[globalrand]") {
		t.Errorf("subset run printed wrong rules:\n%s", out)
	}
}

func TestRunUsageErrors(t *testing.T) {
	chdir(t, writeModule(t))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-rules", "nosuchrule", "./..."}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown rule: exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown rule") {
		t.Errorf("stderr missing unknown-rule message: %s", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"./nosuchdir"}, &stdout, &stderr); code != 2 {
		t.Errorf("unmatched pattern: exit = %d, want 2", code)
	}
}

// TestGoldenJSON freezes the -json output — field order, rule names,
// messages, positions, and suppressed findings with reasons — against a
// committed fixture module that trips every rule exactly once. Run with
// -update to regenerate after an intentional change. The same output is
// also produced at two worker counts and byte-compared, pinning the
// loader's schedule-independence at the CLI level.
func TestGoldenJSON(t *testing.T) {
	golden, err := filepath.Abs(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	fixture, err := filepath.Abs(filepath.Join("testdata", "module"))
	if err != nil {
		t.Fatal(err)
	}
	chdir(t, fixture)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-suppressed", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	var serial bytes.Buffer
	if code := run([]string{"-json", "-suppressed", "-workers", "1", "./..."}, &serial, &stderr); code != 1 {
		t.Fatalf("workers=1: exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	if !bytes.Equal(stdout.Bytes(), serial.Bytes()) {
		t.Fatalf("output differs across worker counts:\ndefault:\n%s\nworkers=1:\n%s",
			stdout.String(), serial.String())
	}

	var diags []jsonDiag
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout.String())
	}
	unsuppressed := map[string]int{}
	var suppressedRules, testFileFindings int
	for _, d := range diags {
		if d.Suppressed {
			suppressedRules++
			if d.Reason == "" {
				t.Errorf("suppressed finding without reason: %+v", d)
			}
			continue
		}
		unsuppressed[d.Rule]++
		if strings.HasSuffix(d.File, "_test.go") {
			testFileFindings++
		}
		if strings.HasPrefix(d.File, "cmd/") && d.Rule == "walltime" {
			t.Errorf("walltime flagged inside a command: %+v", d)
		}
	}
	for _, rule := range []string{"globalrand", "detrange", "floateq", "droppederr",
		"walltime", "looproutine", "lockleak", "atomicmix", "ctxhttp"} {
		if unsuppressed[rule] == 0 {
			t.Errorf("fixture tripped no %s finding", rule)
		}
	}
	if suppressedRules == 0 {
		t.Error("no suppressed finding in fixture; -suppressed path untested")
	}
	if testFileFindings == 0 {
		t.Error("no finding from a _test.go file; -tests coverage untested")
	}

	if *update {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/pqlint -run TestGoldenJSON -update` to create it)", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("-json output drifted from golden file (re-run with -update if intentional)\ngot:\n%s\nwant:\n%s",
			stdout.String(), want)
	}
}

// TestRepoTreeIsClean mirrors the tier-1 contract on the real module.
func TestRepoTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("pqlint on the repo: exit = %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed output:\n%s", stdout.String())
	}
}
