// Command websim generates a synthetic multi-site Web corpus, evolves it
// under the paper's user-visitation model, and writes crawl snapshots to a
// store file for the other tools to consume.
//
// Usage:
//
//	websim -out web.pqs [-sites 154] [-users 20000] [-seed 1] \
//	       [-burnin 40] [-birth 30] [-noise 0.01] [-forget 0.01] \
//	       [-schedule 0,4,8,26] \
//	       [-policy none|pagerank|quality|randomized] [-epsilon 0.2] \
//	       [-sessions-per-week 1500] [-topk 10]
//
// The default schedule is the paper's Figure-4 timeline (weeks 0, 4, 8,
// 26, labelled t1..t4). With -sessions-per-week > 0 the corpus evolves
// with the search-discovery channel in the loop: users also find pages
// through a search engine ranked by -policy, closing the feedback loop
// the paper describes (search starts at week 0, after the burn-in).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"pagequality/internal/ranking"
	"pagequality/internal/snapshot"
	"pagequality/internal/webcorpus"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "websim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("websim", flag.ContinueOnError)
	var (
		outPath  = fs.String("out", "web.pqs", "output snapshot store path")
		sites    = fs.Int("sites", 154, "number of Web sites")
		pages    = fs.Int("pages", 10, "mean initial pages per site")
		users    = fs.Int("users", 20000, "simulated user population n")
		seed     = fs.Int64("seed", 1, "random seed")
		burnin   = fs.Float64("burnin", 40, "burn-in weeks before the first crawl")
		birth    = fs.Float64("birth", 30, "new pages per week")
		noise    = fs.Float64("noise", 0.01, "link-churn noise rate")
		forget   = fs.Float64("forget", 0.01, "per-user forgetting rate per week")
		schedule = fs.String("schedule", "0,4,8,26", "comma-separated crawl weeks")
		workers  = fs.Int("workers", 0, "draw-phase workers (0 = GOMAXPROCS); results are identical at every setting")
		policy   = fs.String("policy", "pagerank", "search ranking policy: none|pagerank|quality|randomized")
		epsilon  = fs.Float64("epsilon", 0.2, "randomized fraction of result slots (randomized policy only)")
		sessions = fs.Float64("sessions-per-week", 0, "search query sessions per week (0 = no search channel)")
		topk     = fs.Int("topk", 10, "results each search session visits")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := webcorpus.DefaultConfig()
	cfg.Sites = *sites
	cfg.InitialPagesPerSite = *pages
	cfg.Users = *users
	cfg.VisitRate = float64(*users)
	cfg.Seed = *seed
	cfg.BurnInWeeks = *burnin
	cfg.BirthRate = *birth
	cfg.NoiseRate = *noise
	cfg.ForgetRate = *forget
	cfg.Workers = *workers
	if *sessions > 0 {
		pol, err := ranking.Parse(*policy, *epsilon)
		if err != nil {
			return err
		}
		cfg.Search = webcorpus.SearchConfig{
			SessionsPerWeek: *sessions,
			TopK:            *topk,
			Policy:          pol,
		}
	}

	sched, err := parseSchedule(*schedule)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "growing corpus: %d sites, %d users, burn-in %.0f weeks...\n",
		cfg.Sites, cfg.Users, cfg.BurnInWeeks)
	// Wall-clock timing goes to stderr so the deterministic report on
	// stdout stays byte-stable across runs and machines.
	start := time.Now()
	sim, err := webcorpus.New(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "websim: burn-in took %s\n", time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(out, "corpus ready: %d pages, %d links at t=0\n", sim.NumPages(), sim.NumLinks())

	start = time.Now()
	snaps, err := sim.RunSchedule(sched)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "websim: schedule took %s\n", time.Since(start).Round(time.Millisecond))
	for _, s := range snaps {
		fmt.Fprintf(out, "snapshot %-4s week %5.1f: %d pages, %d links\n",
			s.Label, s.Time, s.Graph.NumNodes(), s.Graph.NumEdges())
	}
	if sess, visits, disc := sim.SearchStats(); sess > 0 {
		fmt.Fprintf(out, "search channel (%s): %d sessions, %d result visits, %d discoveries\n",
			cfg.Search.Policy.Name(), sess, visits, disc)
	}
	if err := snapshot.WriteFile(*outPath, snaps); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d snapshots to %s\n", len(snaps), *outPath)
	return nil
}

// parseSchedule turns "0,4,8,26" into a labelled schedule t1..tN.
func parseSchedule(s string) (webcorpus.Schedule, error) {
	parts := strings.Split(s, ",")
	sched := webcorpus.Schedule{}
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return sched, fmt.Errorf("bad schedule entry %q: %w", p, err)
		}
		sched.Times = append(sched.Times, v)
		sched.Labels = append(sched.Labels, fmt.Sprintf("t%d", i+1))
	}
	return sched, sched.Validate()
}
