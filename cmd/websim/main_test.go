package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"pagequality/internal/snapshot"
)

func TestWebsimEndToEnd(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "web.pqs")
	var buf bytes.Buffer
	err := run([]string{
		"-out", out, "-sites", "8", "-pages", "5", "-users", "2000",
		"-burnin", "10", "-birth", "2", "-seed", "3",
		"-schedule", "0,4,8",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote 3 snapshots") {
		t.Fatalf("output missing confirmation:\n%s", buf.String())
	}
	snaps, err := snapshot.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 || snaps[0].Label != "t1" || snaps[2].Label != "t3" {
		t.Fatalf("store contents wrong: %d snapshots", len(snaps))
	}
	if snaps[2].Time != 8 {
		t.Fatalf("t3 at week %g", snaps[2].Time)
	}
	for i, s := range snaps {
		if err := s.Graph.Validate(); err != nil {
			t.Fatalf("snapshot %d invalid: %v", i, err)
		}
	}
}

func TestWebsimBadSchedule(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-schedule", "0,zzz"}, &buf); err == nil {
		t.Fatal("bad schedule accepted")
	}
	if err := run([]string{"-schedule", "8,0"}, &buf); err == nil {
		t.Fatal("decreasing schedule accepted")
	}
}

func TestWebsimBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-sites", "0"}, &buf); err == nil {
		t.Fatal("zero sites accepted")
	}
}

func TestParseSchedule(t *testing.T) {
	s, err := parseSchedule("0, 4 ,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Times) != 3 || s.Times[1] != 4 || s.Labels[2] != "t3" {
		t.Fatalf("parsed %+v", s)
	}
}
