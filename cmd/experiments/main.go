// Command experiments regenerates every table and figure in the paper's
// evaluation from the synthetic corpus, printing paper-reported values
// next to the measured ones.
//
// Usage:
//
//	experiments [-run all|table1|figure1|figure2|figure3|figure4|headline|
//	             figure5|risingstars|ablation-c|ablation-forgetting|
//	             ablation-window|ablation-estimator|ablation-solver|
//	             validate-model] [-seed 1] [-sites 154] [-quick] [-csv dir]
//
// -quick shrinks the corpus for a fast smoke run; -csv additionally writes
// each figure's data as CSV into the given directory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"pagequality/internal/experiments"
	"pagequality/internal/textplot"
	"pagequality/internal/usersim"
)

// csvSink optionally persists one experiment's data as CSV.
type csvSink func(name string, write func(io.Writer) error) error

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		which   = fs.String("run", "all", "experiment id to run")
		seed    = fs.Int64("seed", 1, "corpus seed")
		sites   = fs.Int("sites", 154, "corpus sites")
		quick   = fs.Bool("quick", false, "shrink the corpus for a fast run")
		csvDir  = fs.String("csv", "", "directory to also write figure data as CSV (created if missing)")
		workers = fs.Int("workers", 0, "corpus draw-phase workers (0 = GOMAXPROCS); results are identical at every setting")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.DefaultHeadlineConfig()
	cfg.Corpus.Seed = *seed
	cfg.Corpus.Sites = *sites
	cfg.Corpus.Workers = *workers
	if *quick {
		cfg.Corpus.Sites = 30
		cfg.Corpus.BirthRate = 6
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("csv dir: %w", err)
		}
	}
	writeCSV := func(name string, write func(io.Writer) error) error {
		if *csvDir == "" {
			return nil
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", filepath.Join(*csvDir, name))
		return nil
	}

	run := func(name string, fn func() error) error {
		if *which != "all" && *which != name {
			return nil
		}
		fmt.Fprintf(out, "\n================ %s ================\n", name)
		// Wall-clock timing goes to stderr only: stdout is the committed,
		// deterministic experiments_output.txt.
		start := time.Now()
		err := fn()
		fmt.Fprintf(os.Stderr, "experiments: %s took %s\n", name, time.Since(start).Round(time.Millisecond))
		return err
	}

	steps := []struct {
		name string
		fn   func() error
	}{
		{"table1", func() error { return table1(out) }},
		{"figure1", func() error { return figure1(out, writeCSV) }},
		{"figure2", func() error { return figure2(out, writeCSV) }},
		{"figure3", func() error { return figure3(out, writeCSV) }},
		{"figure4", func() error { return figure4(out) }},
		{"headline", func() error { return headline(out, cfg, writeCSV) }},
		{"figure5", func() error { return figure5(out, cfg, writeCSV) }},
		{"ablation-c", func() error { return ablationC(out, cfg, writeCSV) }},
		{"ablation-forgetting", func() error { return ablationForgetting(out, cfg) }},
		{"ablation-window", func() error { return ablationWindow(out, cfg, writeCSV) }},
		{"risingstars", func() error { return risingStars(out, cfg) }},
		{"ranking-policies", func() error { return rankingPolicies(out, cfg, *quick, writeCSV) }},
		{"multiseed", func() error { return multiSeed(out, cfg) }},
		{"ablation-estimator", func() error { return ablationEstimator(out, cfg) }},
		{"ablation-solver", func() error { return ablationSolver(out, cfg) }},
		{"validate-model", func() error { return validateModel(out) }},
	}
	known := *which == "all"
	for _, s := range steps {
		if s.name == *which {
			known = true
		}
		if err := run(s.name, s.fn); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	if !known {
		return fmt.Errorf("unknown experiment %q", *which)
	}
	return nil
}

func table1(out io.Writer) error {
	fmt.Fprintln(out, "Table 1: notation summary")
	for _, s := range experiments.Table1() {
		fmt.Fprintf(out, "  %-8s %s\n", s.Name, s.Meaning)
	}
	return nil
}

func figure1(out io.Writer, writeCSV csvSink) error {
	res, err := experiments.Figure1()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Figure 1: popularity evolution (Q=%.1f, n=%.0g, r=%.0g, P0=%.0g)\n",
		res.Params.Q, res.Params.N, res.Params.R, res.Params.P0)
	if err := textplot.Line(out, "", []textplot.Series{
		{Name: "P(p,t)", X: res.Trajectory.T, Y: res.Trajectory.P, Glyph: '*'},
	}, 64, 16); err != nil {
		return err
	}
	fmt.Fprintf(out, "life stages: infant < %.1f <= expansion < %.1f <= maturity\n",
		res.Stages.ExpansionStart, res.Stages.MaturityStart)
	fmt.Fprintln(out, "paper: infant ~[0,15), expansion ~[15,30), maturity after; plateau at Q=0.8")
	return writeCSV("figure1.csv", func(w io.Writer) error {
		return experiments.WriteFigure1CSV(w, res)
	})
}

func figure2(out io.Writer, writeCSV csvSink) error {
	res, err := experiments.Figure2()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Figure 2: I(p,t) and P(p,t) (Q=%.1f, P0=%.0g)\n", res.Params.Q, res.Params.P0)
	if err := textplot.Line(out, "", []textplot.Series{
		{Name: "I(p,t) relative popularity increase", X: res.T, Y: res.I, Glyph: '*'},
		{Name: "P(p,t) popularity", X: res.T, Y: res.P, Glyph: '.'},
	}, 64, 16); err != nil {
		return err
	}
	fmt.Fprintln(out, "paper: I ≈ Q early (t<70), P ≈ Q late (t>120); complementary curves")
	return writeCSV("figure2.csv", func(w io.Writer) error {
		return experiments.WriteFigure2CSV(w, res)
	})
}

func figure3(out io.Writer, writeCSV csvSink) error {
	res, err := experiments.Figure3()
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "Figure 3: I(p,t) + P(p,t) — Theorem 2")
	if err := textplot.Line(out, "", []textplot.Series{
		{Name: "I(p,t) + P(p,t)", X: res.T, Y: res.Sum, Glyph: '*'},
	}, 64, 8); err != nil {
		return err
	}
	maxDev := 0.0
	for _, s := range res.Sum {
		if d := s - res.Params.Q; d > maxDev {
			maxDev = d
		} else if -d > maxDev {
			maxDev = -d
		}
	}
	fmt.Fprintf(out, "max |I+P - Q| over the window: %.2e (paper: exactly flat at Q=0.2)\n", maxDev)
	return writeCSV("figure3.csv", func(w io.Writer) error {
		return experiments.WriteFigure3CSV(w, res)
	})
}

func figure4(out io.Writer) error {
	sched := experiments.Figure4()
	fmt.Fprintln(out, "Figure 4: snapshot timeline")
	for i, t := range sched.Times {
		fmt.Fprintf(out, "  %-3s week %5.1f\n", sched.Labels[i], t)
	}
	fmt.Fprintf(out, "gaps: %v weeks (paper: ~1 month, ~1 month, ~4 months)\n", sched.Gaps())
	return nil
}

func headline(out io.Writer, cfg experiments.HeadlineConfig, writeCSV csvSink) error {
	fmt.Fprintln(out, "running the Section-8 experiment (corpus growth + 4 crawls)...")
	res, err := experiments.RunHeadline(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "crawled %d pages in the final snapshot; %d common to all snapshots; %d changed >5%%\n",
		res.PagesCrawled, res.PagesCommon, res.PagesChanged)
	fmt.Fprintf(out, "classes: %v\n", res.Classes)
	fmt.Fprintln(out, "\naverage relative error predicting PR(t4):")
	fmt.Fprintf(out, "  %-22s measured %.3f   (paper: 0.32)\n", "quality estimate Q(p):", res.AvgErrQ)
	fmt.Fprintf(out, "  %-22s measured %.3f   (paper: 0.78)\n", "current PR(p,t3):", res.AvgErrPR)
	fmt.Fprintf(out, "  improvement factor:    measured %.2fx  (paper: ~2.4x)\n", res.AvgErrPR/res.AvgErrQ)
	fmt.Fprintf(out, "  medians: Q %.3f, PR %.3f\n", res.MedianErrQ, res.MedianErrPR)
	sig := "significant (interval excludes 0)"
	if res.DiffCIHi >= 0 {
		sig = "NOT significant"
	}
	fmt.Fprintf(out, "  paired 95%% CI of (errQ - errPR): [%.3f, %.3f] — %s\n",
		res.DiffCILo, res.DiffCIHi, sig)
	fmt.Fprintf(out, "\nKendall tau vs ground-truth quality (synthetic-only bonus): Q %.3f, PR %.3f\n",
		res.TauQTruth, res.TauPRTruth)
	return writeCSV("headline.csv", func(w io.Writer) error {
		return experiments.WriteHeadlineCSV(w, res)
	})
}

func figure5(out io.Writer, cfg experiments.HeadlineConfig, writeCSV csvSink) error {
	res, err := experiments.RunHeadline(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "Figure 5: histogram of relative errors (fraction of pages per bin)")
	labels := make([]string, len(res.HistQ.Bins))
	for i := range labels {
		labels[i] = res.HistQ.Label(i)
	}
	if err := textplot.Bars(out, "", labels, []textplot.BarGroup{
		{Name: "Q(p)", Values: res.HistQ.Fractions(), Glyph: '#'},
		{Name: "PR(p,t3)", Values: res.HistPR.Fractions(), Glyph: '='},
	}, 48); err != nil {
		return err
	}
	fmt.Fprintf(out, "first bin (err < 0.1): Q %.0f%% vs PR %.0f%%  (paper: 62%% vs 46%%)\n",
		100*res.FracFirstQ, 100*res.FracFirstPR)
	fmt.Fprintf(out, "last bin  (err > 0.9): Q %.1f%% vs PR %.1f%%  (paper: ~5%% vs ~10%%)\n",
		100*res.FracLastQ, 100*res.FracLastPR)
	return writeCSV("figure5.csv", func(w io.Writer) error {
		return experiments.WriteFigure5CSV(w, res)
	})
}

func ablationC(out io.Writer, cfg experiments.HeadlineConfig, writeCSV csvSink) error {
	// C=0 is the pure-popularity endpoint: Q degenerates to PR, so its
	// row doubles as a sanity check that avgErr(Q) == avgErr(PR) there.
	cs := []float64{0, 0.01, 0.1, 0.5, 1.0, 1.5, 2.0, 3.0}
	fmt.Fprintln(out, "Ablation A: estimator constant C (paper tuned C=0.1 to its crawl; our corpus tunes to 1.0)")
	pts, err := experiments.AblationC(cfg, cs)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  %-6s  %-10s  %-10s\n", "C", "avgErr(Q)", "avgErr(PR)")
	best := pts[0]
	for _, p := range pts {
		fmt.Fprintf(out, "  %-6.2f  %-10.3f  %-10.3f\n", p.C, p.AvgErrQ, p.AvgErrPR)
		if p.AvgErrQ < best.AvgErrQ {
			best = p
		}
	}
	fmt.Fprintf(out, "best C = %.2f (avg error %.3f)\n", best.C, best.AvgErrQ)
	return writeCSV("ablation_c.csv", func(w io.Writer) error {
		return experiments.WriteAblationCCSV(w, pts)
	})
}

func ablationForgetting(out io.Writer, cfg experiments.HeadlineConfig) error {
	fmt.Fprintln(out, "Ablation B: forgetting explains decreasing popularity (§9.1)")
	fmt.Fprintln(out, "(in-degree evolution classes; the clean model can only add links)")
	res, err := experiments.AblationForgetting(cfg, 0.01, 0.01)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  clean model:      %v\n", res.ClassesClean)
	fmt.Fprintf(out, "  with forgetting:  %v\n", res.ClassesForgetting)
	fmt.Fprintln(out, "paper: the base model predicts popularity only increases; real crawls")
	fmt.Fprintln(out, "showed consistent decreases, which the forgetting revision produces.")
	return nil
}

func ablationWindow(out io.Writer, cfg experiments.HeadlineConfig, writeCSV csvSink) error {
	fmt.Fprintln(out, "Ablation C: longer measurement windows de-noise low-popularity pages (§9.1)")
	pts, err := experiments.AblationWindow(cfg, []float64{1, 2, 4, 8, 12}, 26)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  %-10s  %-14s  %-14s\n", "gap(wk)", "avgErr low-PR", "avgErr high-PR")
	for _, p := range pts {
		fmt.Fprintf(out, "  %-10.0f  %-14.3f  %-14.3f\n", p.GapWeeks, p.AvgErrQLow, p.AvgErrQHigh)
	}
	return writeCSV("ablation_window.csv", func(w io.Writer) error {
		return experiments.WriteWindowCSV(w, pts)
	})
}

func multiSeed(out io.Writer, cfg experiments.HeadlineConfig) error {
	fmt.Fprintln(out, "Multi-seed robustness: the headline experiment across 5 corpus draws")
	res, err := experiments.RunHeadlineMultiSeed(cfg, []int64{1, 2, 3, 4, 5})
	if err != nil {
		return err
	}
	for i, seed := range res.Seeds {
		fmt.Fprintf(out, "  seed %d: improvement factor %.2fx\n", seed, res.Factors[i])
	}
	fmt.Fprintf(out, "  mean %.2fx, worst %.2fx; paired CI excluded zero on every seed: %v\n",
		res.MeanFactor, res.MinFactor, res.AllSignificant)
	return nil
}

func risingStars(out io.Writer, cfg experiments.HeadlineConfig) error {
	fmt.Fprintln(out, "Rising stars: young high-quality pages under both rankings (the paper's motivation)")
	res, err := experiments.RunRisingStars(cfg, 20)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  %d stars (born <20 weeks before t1, top-quartile true quality)\n", res.Stars)
	fmt.Fprintf(out, "  mean rank percentile at t3:  PageRank %.2f   quality estimate %.2f\n",
		res.MeanPercentilePR, res.MeanPercentileQ)
	fmt.Fprintf(out, "  mean rank percentile at t4 (where they end up): %.2f\n", res.MeanPercentileFuture)
	fmt.Fprintf(out, "  stars in the top decile at t3: PageRank %d, quality estimate %d\n",
		res.TopDecilePR, res.TopDecileQ)
	return nil
}

func rankingPolicies(out io.Writer, cfg experiments.HeadlineConfig, quick bool, writeCSV csvSink) error {
	fmt.Fprintln(out, "Ranking feedback loop: one corpus per policy from the same seed (ROADMAP item 3)")
	pc := experiments.PolicyComparisonConfig{Corpus: cfg.Corpus}
	if quick {
		pc.Weeks = 8
	}
	res, err := experiments.RankingPolicyComparison(pc)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "horizon %.0f weeks after burn-in, seed %d\n\n", res.Weeks, res.Seed)
	fmt.Fprintf(out, "  %-16s %-7s %-9s %-9s %-9s %-7s %-7s %-7s\n",
		"policy", "pages", "qwd", "newborn", "ttfv(wk)", "found", "gini", "rho")
	for _, o := range res.Outcomes {
		fmt.Fprintf(out, "  %-16s %-7d %-9.4f %-9.4f %-9.2f %-3d/%-3d %-7.4f %-7.4f\n",
			o.Policy, o.Pages, o.QualityWeightedDiscovery, o.NewbornDiscovery,
			o.MeanTimeToFirstVisit, o.NewbornsFound, o.HighQNewborns,
			o.PopularityGini, o.QualityPopCorr)
	}
	fmt.Fprintln(out, "\nqwd = quality-weighted discovery (all pages); newborn = same over high-Q newborns")
	fmt.Fprintln(out, "ttfv = mean weeks from birth to first discovery; rho = Spearman(quality, popularity)")
	fmt.Fprintln(out, "Pandey/Cho predict randomized >= pagerank on the newborn column; Fortunato/Menczer")
	fmt.Fprintln(out, "predict search raises the popularity Gini vs the no-search baseline.")
	return writeCSV("ranking_policies.csv", func(w io.Writer) error {
		return experiments.WritePolicyComparisonCSV(w, res)
	})
}

func ablationEstimator(out io.Writer, cfg experiments.HeadlineConfig) error {
	fmt.Fprintln(out, "Ablation D: endpoint vs least-squares regression estimator (§9.1 smoothing)")
	res, err := experiments.AblationEstimator(cfg, 5, 2, 26)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  %d estimation crawls; %.0f%% of changed pages fluctuated (endpoint falls back to I := 0)\n",
		res.Crawls, 100*res.FluctuatingFrac)
	fmt.Fprintf(out, "  avg rel. error: endpoint %.3f, regression %.3f\n",
		res.AvgErrEndpoint, res.AvgErrRegression)
	return nil
}

func ablationSolver(out io.Writer, cfg experiments.HeadlineConfig) error {
	fmt.Fprintln(out, "Ablation E: PageRank solver comparison (plain vs Aitken [12] vs adaptive [11])")
	fmt.Fprintln(out, "(100k-node preferential-attachment web, tol 1e-10)")
	pts, err := experiments.AblationPageRankSolver(cfg, 0, time.Now)
	if err != nil {
		return err
	}
	// Iterations and accuracy are deterministic and belong in the
	// committed output; wall-clock timings are machine-dependent and go
	// to stderr only.
	fmt.Fprintf(out, "  %-10s  %-11s  %s\n", "solver", "iterations", "max diff vs plain")
	for _, p := range pts {
		fmt.Fprintf(out, "  %-10s  %-11d  %.2g\n", p.Name, p.Iterations, p.MaxDiff)
		fmt.Fprintf(os.Stderr, "  timing: %-10s %s\n", p.Name, p.Elapsed.Round(time.Microsecond))
	}
	return nil
}

func validateModel(out io.Writer) error {
	fmt.Fprintln(out, "Model validation: agent simulation vs Theorem 1 closed form")
	cfg := usersim.Config{
		Users:        20000,
		VisitRate:    20000,
		Quality:      0.5,
		InitialLikes: 100,
		DT:           0.02,
		Seed:         42,
	}
	v, err := experiments.ValidateModel(cfg, 30)
	if err != nil {
		return err
	}
	p := cfg.ModelParams()
	fmt.Fprintf(out, "  n=%d users, Q=%.2f, P0=%.4f\n", cfg.Users, cfg.Quality, p.P0)
	fmt.Fprintf(out, "  sup-norm |sim - model| = %.4f\n", v.MaxAbsDiff)
	fmt.Fprintf(out, "  final popularity: sim %.4f, model %.4f (both -> Q=%.2f)\n",
		v.FinalSim, v.FinalModel, cfg.Quality)
	return nil
}
