package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAnalyticExperiments(t *testing.T) {
	// The analytic experiments are fast; run them individually and check
	// the key reported values appear.
	cases := []struct {
		name string
		want []string
	}{
		{"table1", []string{"PR(p)", "Total number of Web users"}},
		{"figure1", []string{"Q=0.8", "life stages", "maturity"}},
		{"figure2", []string{"I(p,t)", "P(p,t)"}},
		{"figure3", []string{"Theorem 2", "max |I+P - Q|"}},
		{"figure4", []string{"t1", "t4", "[4 4 18]"}},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := run([]string{"-run", c.name}, &buf); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, w := range c.want {
			if !strings.Contains(buf.String(), w) {
				t.Fatalf("%s output missing %q:\n%s", c.name, w, buf.String())
			}
		}
	}
}

func TestHeadlineQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "headline", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, w := range []string{"average relative error", "paper: 0.32", "paper: 0.78", "improvement factor"} {
		if !strings.Contains(out, w) {
			t.Fatalf("headline output missing %q:\n%s", w, out)
		}
	}
}

func TestFigure5Quick(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "figure5", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, w := range []string{"first bin", "last bin", "Q(p)", "PR(p,t3)"} {
		if !strings.Contains(out, w) {
			t.Fatalf("figure5 output missing %q:\n%s", w, out)
		}
	}
}

func TestValidateModelRun(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "validate-model"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sup-norm") {
		t.Fatalf("validate-model output wrong:\n%s", buf.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "figure99"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestAblationsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations run several corpora")
	}
	for _, name := range []string{"ablation-c", "ablation-forgetting", "ablation-window"} {
		var buf bytes.Buffer
		if err := run([]string{"-run", name, "-quick"}, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(buf.String(), "Ablation") {
			t.Fatalf("%s output wrong:\n%s", name, buf.String())
		}
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-run", "figure1", "-csv", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "t,popularity\n") {
		t.Fatalf("figure1.csv header wrong: %q", string(data)[:30])
	}
	if !strings.Contains(buf.String(), "wrote") {
		t.Fatalf("confirmation missing:\n%s", buf.String())
	}
	// Quick corpus run exporting headline + figure5.
	buf.Reset()
	if err := run([]string{"-run", "figure5", "-csv", dir, "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "figure5.csv")); err != nil {
		t.Fatal(err)
	}
}
