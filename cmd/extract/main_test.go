package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"pagequality/internal/crawler"
	"pagequality/internal/pagestore"
	"pagequality/internal/snapshot"
	"pagequality/internal/webcorpus"
	"pagequality/internal/webserver"
)

// crawlIntoArchive crawls a small served corpus, archiving bodies under
// the given label, and returns the archive dir plus the live crawl graph
// encoding for comparison.
func crawlIntoArchive(t *testing.T, label string) (archiveDir string, liveEncoding []byte) {
	t.Helper()
	cfg := webcorpus.DefaultConfig()
	cfg.Sites = 6
	cfg.InitialPagesPerSite = 5
	cfg.Users = 2000
	cfg.VisitRate = 2000
	cfg.LinkProb = 0.2
	cfg.BurnInWeeks = 10
	cfg.Seed = 21
	sim, err := webcorpus.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := webserver.New(sim.Graph().Clone(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	archiveDir = t.TempDir()
	arch, err := pagestore.Open(archiveDir, pagestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := crawler.FetchSeeds(context.Background(), ts.Client(), ts.URL+"/seeds.txt")
	if err != nil {
		t.Fatal(err)
	}
	res, err := crawler.Crawl(crawler.Config{
		Seeds:  seeds,
		Client: ts.Client(),
		OnFetch: func(u string, body []byte) {
			if err := arch.Put(label+"/"+u, pagestore.Meta{FetchedAt: 2, Status: 200}, body); err != nil {
				t.Error(err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}
	return archiveDir, res.Graph.AppendBinary(nil)
}

func TestExtractRebuildsCrawl(t *testing.T) {
	archiveDir, live := crawlIntoArchive(t, "t1")
	store := filepath.Join(t.TempDir(), "web.pqs")
	var buf bytes.Buffer
	if err := run([]string{"-archive", archiveDir, "-label", "t1", "-store", store}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "appended snapshot t1 (week 2.0)") {
		t.Fatalf("fetch-time week not used:\n%s", buf.String())
	}
	snaps, err := snapshot.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("%d snapshots", len(snaps))
	}
	if !bytes.Equal(snaps[0].Graph.AppendBinary(nil), live) {
		t.Fatal("extracted graph differs from the live crawl")
	}
}

func TestExtractStats(t *testing.T) {
	archiveDir, _ := crawlIntoArchive(t, "t1")
	var buf bytes.Buffer
	if err := run([]string{"-archive", archiveDir, "-stats"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("stats csv:\n%s", buf.String())
	}
	if lines[0] != "label,docs,bytes,mean_bytes,first_week,last_week" {
		t.Fatalf("header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "t1,") {
		t.Fatalf("row: %s", lines[1])
	}
}

func TestExtractErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{}, &buf); err == nil {
		t.Fatal("missing flags accepted")
	}
	archiveDir, _ := crawlIntoArchive(t, "t1")
	store := filepath.Join(t.TempDir(), "web.pqs")
	if err := run([]string{"-archive", archiveDir, "-label", "nope", "-store", store}, &buf); err == nil {
		t.Fatal("unknown label accepted")
	}
	// Time-order check against an existing store.
	if err := run([]string{"-archive", archiveDir, "-label", "t1", "-store", store, "-week", "8"}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-archive", archiveDir, "-label", "t1", "-store", store, "-week", "4"}, &buf); err == nil {
		t.Fatal("time-travelling extract accepted")
	}
}
