// Command extract rebuilds a link-graph snapshot from raw documents
// archived by `crawl -archive` — the fetch/parse decoupling of a real
// crawl pipeline: bodies are downloaded once, and the graph can be
// re-extracted at any time (e.g. after improving the link extractor)
// without touching the network.
//
// Usage:
//
//	extract -archive pages/ -label t1 -store web.pqs [-week 0]
//	extract -archive pages/ -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pagequality/internal/corpus"
	"pagequality/internal/crawler"
	"pagequality/internal/experiments"
	"pagequality/internal/pagestore"
	"pagequality/internal/snapshot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "extract:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("extract", flag.ContinueOnError)
	var (
		archiveDir = fs.String("archive", "", "pagestore directory holding archived bodies")
		label      = fs.String("label", "", "crawl label whose documents to extract (archive key prefix)")
		store      = fs.String("store", "web.pqs", "snapshot store to append to")
		week       = fs.Float64("week", -1, "snapshot time in weeks (default: archived fetch time)")
		stats      = fs.Bool("stats", false, "print per-label archive stats as CSV and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *archiveDir == "" || (*label == "" && !*stats) {
		return fmt.Errorf("-archive and -label are required")
	}
	arch, err := pagestore.Open(*archiveDir, pagestore.Options{})
	if err != nil {
		return err
	}
	defer arch.Close()

	if *stats {
		ls, err := experiments.ArchiveStats(arch, corpus.Options{})
		if err != nil {
			return err
		}
		return experiments.WriteArchiveStatsCSV(out, ls)
	}

	// One corpus pass projects every archived document under the label.
	// Extract returns key-sorted results, matching the KeysWithPrefix
	// iteration order this command used before the corpus engine.
	prefix := *label + "/"
	type archived struct {
		doc  crawler.Document
		week float64
	}
	recs, err := corpus.Extract(arch, func(d corpus.Doc) (archived, bool) {
		if len(d.Key) < len(prefix) || d.Key[:len(prefix)] != prefix {
			return archived{}, false
		}
		return archived{
			doc:  crawler.Document{FetchURL: d.Key[len(prefix):], Body: d.Body},
			week: d.Meta.FetchedAt,
		}, true
	}, corpus.Options{})
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("no documents with prefix %q in %s", prefix, *archiveDir)
	}
	docs := make([]crawler.Document, len(recs))
	fetchedAt := *week
	for i, r := range recs {
		if fetchedAt < 0 {
			fetchedAt = r.week
		}
		docs[i] = r.doc
	}
	res, err := crawler.Assemble(docs)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "extracted %d documents: %d nodes, %d links\n",
		len(docs), res.Graph.NumNodes(), res.Graph.NumEdges())

	var snaps []snapshot.Snapshot
	if _, err := os.Stat(*store); err == nil {
		snaps, err = snapshot.ReadFile(*store)
		if err != nil {
			return fmt.Errorf("existing store: %w", err)
		}
	}
	if n := len(snaps); n > 0 && fetchedAt < snaps[n-1].Time {
		return fmt.Errorf("snapshot week %g precedes the last stored snapshot (%g)", fetchedAt, snaps[n-1].Time)
	}
	snaps = append(snaps, snapshot.Snapshot{Label: *label, Time: fetchedAt, Graph: res.Graph})
	if err := snapshot.WriteFile(*store, snaps); err != nil {
		return err
	}
	fmt.Fprintf(out, "appended snapshot %s (week %.1f) to %s (%d snapshots total)\n",
		*label, fetchedAt, *store, len(snaps))
	return nil
}
