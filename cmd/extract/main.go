// Command extract rebuilds a link-graph snapshot from raw documents
// archived by `crawl -archive` — the fetch/parse decoupling of a real
// crawl pipeline: bodies are downloaded once, and the graph can be
// re-extracted at any time (e.g. after improving the link extractor)
// without touching the network.
//
// Usage:
//
//	extract -archive pages/ -label t1 -store web.pqs [-week 0]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pagequality/internal/crawler"
	"pagequality/internal/pagestore"
	"pagequality/internal/snapshot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "extract:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("extract", flag.ContinueOnError)
	var (
		archiveDir = fs.String("archive", "", "pagestore directory holding archived bodies")
		label      = fs.String("label", "", "crawl label whose documents to extract (archive key prefix)")
		store      = fs.String("store", "web.pqs", "snapshot store to append to")
		week       = fs.Float64("week", -1, "snapshot time in weeks (default: archived fetch time)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *archiveDir == "" || *label == "" {
		return fmt.Errorf("-archive and -label are required")
	}
	arch, err := pagestore.Open(*archiveDir, pagestore.Options{})
	if err != nil {
		return err
	}
	defer arch.Close()

	prefix := *label + "/"
	keys := arch.KeysWithPrefix(prefix)
	if len(keys) == 0 {
		return fmt.Errorf("no documents with prefix %q in %s", prefix, *archiveDir)
	}
	docs := make([]crawler.Document, 0, len(keys))
	fetchedAt := *week
	for _, k := range keys {
		meta, body, err := arch.Get(k)
		if err != nil {
			return err
		}
		if fetchedAt < 0 {
			fetchedAt = meta.FetchedAt
		}
		docs = append(docs, crawler.Document{FetchURL: k[len(prefix):], Body: body})
	}
	res, err := crawler.Assemble(docs)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "extracted %d documents: %d nodes, %d links\n",
		len(docs), res.Graph.NumNodes(), res.Graph.NumEdges())

	var snaps []snapshot.Snapshot
	if _, err := os.Stat(*store); err == nil {
		snaps, err = snapshot.ReadFile(*store)
		if err != nil {
			return fmt.Errorf("existing store: %w", err)
		}
	}
	if n := len(snaps); n > 0 && fetchedAt < snaps[n-1].Time {
		return fmt.Errorf("snapshot week %g precedes the last stored snapshot (%g)", fetchedAt, snaps[n-1].Time)
	}
	snaps = append(snaps, snapshot.Snapshot{Label: *label, Time: fetchedAt, Graph: res.Graph})
	if err := snapshot.WriteFile(*store, snaps); err != nil {
		return err
	}
	fmt.Fprintf(out, "appended snapshot %s (week %.1f) to %s (%d snapshots total)\n",
		*label, fetchedAt, *store, len(snaps))
	return nil
}
