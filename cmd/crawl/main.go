// Command crawl downloads a Web site over HTTP — following links from the
// given seeds until no new pages are reachable or the page caps are hit,
// exactly as the paper's crawler did (§8.1) — and appends the
// reconstructed link graph as one snapshot to a store file. Invoke it
// repeatedly over time to build the multi-snapshot series the quality
// estimator consumes.
//
// Usage:
//
//	crawl -seeds http://host/seeds.txt -store web.pqs -label t1 -week 0
//	crawl -seed  http://host/          -store web.pqs -label t2 -week 4
//
// With -archive dir the raw bodies are kept in a pagestore (for
// cmd/extract and cmd/qualityserve); with -checkpoint file a Ctrl-C stops
// gracefully and the next invocation resumes where it left off.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"pagequality/internal/crawler"
	"pagequality/internal/pagestore"
	"pagequality/internal/snapshot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("crawl", flag.ContinueOnError)
	var (
		seedList    = fs.String("seeds", "", "URL of a newline-separated seed list")
		seed        = fs.String("seed", "", "single seed URL (alternative to -seeds)")
		store       = fs.String("store", "web.pqs", "snapshot store to append to")
		label       = fs.String("label", "", "snapshot label (default tN)")
		week        = fs.Float64("week", -1, "snapshot time in weeks (default: count of prior snapshots * 4)")
		maxPages    = fs.Int("maxpages", 0, "total page cap (0 = unlimited)")
		maxPerSite  = fs.Int("maxpersite", 200000, "per-site page cap (paper: 200,000)")
		concurrency = fs.Int("concurrency", 8, "parallel fetchers")
		timeout     = fs.Duration("timeout", 30*time.Second, "per-request timeout (0 = none)")
		retries     = fs.Int("retries", 3, "attempts per URL on transient failures (1 = no retries)")
		retryBase   = fs.Duration("retry-base", 100*time.Millisecond, "backoff before the first retry (doubles per attempt)")
		retryMax    = fs.Duration("retry-max", 5*time.Second, "backoff ceiling, Retry-After included")
		retrySeed   = fs.Int64("retry-seed", 1, "seed of the deterministic backoff jitter")
		hostErrors  = fs.Int("host-errors", 0, "per-host error budget before the host is skipped (0 = unlimited)")
		archiveDir  = fs.String("archive", "", "pagestore directory to archive raw bodies into (optional)")
		checkpoint  = fs.String("checkpoint", "", "checkpoint file: resumed if present; written on interrupt (Ctrl-C)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The crawler bounds each page attempt itself; the client-level
	// timeout covers the seed-list fetch below.
	client := &http.Client{Timeout: *timeout}

	var seeds []string
	switch {
	case *seedList != "" && *seed != "":
		return fmt.Errorf("pass either -seeds or -seed, not both")
	case *seedList != "":
		var err error
		seeds, err = crawler.FetchSeeds(context.Background(), client, *seedList)
		if err != nil {
			return err
		}
	case *seed != "":
		seeds = strings.Split(*seed, ",")
	default:
		return fmt.Errorf("one of -seeds or -seed is required")
	}

	// Determine the snapshot identity up front: the archive keys bodies by
	// "<label>/<url>".
	var snaps []snapshot.Snapshot
	if _, err := os.Stat(*store); err == nil {
		snaps, err = snapshot.ReadFile(*store)
		if err != nil {
			return fmt.Errorf("existing store: %w", err)
		}
	}
	lbl := *label
	if lbl == "" {
		lbl = fmt.Sprintf("t%d", len(snaps)+1)
	}
	wk := *week
	if wk < 0 {
		wk = float64(len(snaps)) * 4
	}
	if n := len(snaps); n > 0 && wk < snaps[n-1].Time {
		return fmt.Errorf("snapshot week %g precedes the last stored snapshot (%g)", wk, snaps[n-1].Time)
	}

	cfg := crawler.Config{
		Seeds:           seeds,
		MaxPages:        *maxPages,
		MaxPagesPerSite: *maxPerSite,
		Concurrency:     *concurrency,
		Client:          client,
		RequestTimeout:  *timeout,
		MaxHostErrors:   *hostErrors,
		Retry: crawler.Retry{
			MaxAttempts: *retries,
			BaseDelay:   *retryBase,
			MaxDelay:    *retryMax,
			Seed:        *retrySeed,
		},
	}
	if *archiveDir != "" {
		arch, err := pagestore.Open(*archiveDir, pagestore.Options{})
		if err != nil {
			return err
		}
		defer arch.Close()
		meta := pagestore.Meta{FetchedAt: wk, Status: 200}
		cfg.OnFetch = func(u string, body []byte) {
			if err := arch.Put(lbl+"/"+u, meta, body); err != nil {
				fmt.Fprintf(out, "archive error for %s: %v\n", u, err)
			}
		}
	}

	if *checkpoint != "" {
		resume, err := crawler.LoadCheckpoint(*checkpoint)
		if err != nil {
			return err
		}
		if resume != nil {
			fmt.Fprintf(out, "resuming from %s: %d visited, %d in the frontier\n",
				*checkpoint, len(resume.Visited), len(resume.Frontier))
			cfg.Resume = resume
		}
		// Ctrl-C triggers a graceful stop with a saved checkpoint.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		defer signal.Stop(sig)
		stop := make(chan struct{})
		go func() {
			if _, ok := <-sig; ok {
				fmt.Fprintln(out, "interrupt received: finishing in-flight fetches...")
				close(stop)
			}
		}()
		cfg.Interrupt = stop
	}

	fmt.Fprintf(out, "crawling from %d seed(s)...\n", len(seeds))
	res, err := crawler.Crawl(cfg)
	if err != nil {
		return err
	}
	if res.Interrupted {
		if *checkpoint == "" {
			return fmt.Errorf("crawl interrupted but no -checkpoint path to save to")
		}
		if err := res.Checkpoint.Save(*checkpoint); err != nil {
			return err
		}
		fmt.Fprintf(out, "interrupted after %d pages; checkpoint saved to %s (re-run to resume)\n",
			res.Stats.Fetched, *checkpoint)
		return nil
	}
	switch {
	case res.Checkpoint != nil && *checkpoint != "":
		// Completed, but some URLs failed transiently: save them so a
		// re-run retries exactly those.
		if err := res.Checkpoint.Save(*checkpoint); err != nil {
			return err
		}
		fmt.Fprintf(out, "%d URLs failed transiently; checkpoint saved to %s (re-run to retry them)\n",
			len(res.Checkpoint.Frontier), *checkpoint)
	case res.Checkpoint != nil:
		fmt.Fprintf(out, "warning: %d URLs failed transiently and were dropped (pass -checkpoint to keep them)\n",
			len(res.Checkpoint.Frontier))
	case *checkpoint != "":
		// Completed cleanly: a stale checkpoint would resurrect the old
		// frontier.
		if err := os.Remove(*checkpoint); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	fmt.Fprintf(out, "fetched %d pages (%d errors, %d retries, %d timeouts, %d rate-limited, %d hosts degraded, %d skipped by caps): %d nodes, %d links\n",
		res.Stats.Fetched, res.Stats.Errors, res.Stats.Retries, res.Stats.Timeouts,
		res.Stats.RateLimited, res.Stats.HostsDegraded, res.Stats.SkippedCaps,
		res.Graph.NumNodes(), res.Graph.NumEdges())

	snaps = append(snaps, snapshot.Snapshot{Label: lbl, Time: wk, Graph: res.Graph})
	if err := snapshot.WriteFile(*store, snaps); err != nil {
		return err
	}
	fmt.Fprintf(out, "appended snapshot %s (week %.1f) to %s (%d snapshots total)\n",
		lbl, wk, *store, len(snaps))
	return nil
}
