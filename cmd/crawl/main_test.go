package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pagequality/internal/crawler"
	"pagequality/internal/pagestore"
	"pagequality/internal/snapshot"
	"pagequality/internal/webcorpus"
	"pagequality/internal/webserver"
)

func startServer(t *testing.T, sim *webcorpus.Sim) *httptest.Server {
	t.Helper()
	srv, err := webserver.New(sim.Graph().Clone(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func TestCrawlCLIAppendsSnapshots(t *testing.T) {
	cfg := webcorpus.DefaultConfig()
	cfg.Sites = 6
	cfg.InitialPagesPerSite = 5
	cfg.Users = 2000
	cfg.VisitRate = 2000
	cfg.LinkProb = 0.2
	cfg.BirthRate = 1
	cfg.BurnInWeeks = 12
	cfg.Seed = 9
	sim, err := webcorpus.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := filepath.Join(t.TempDir(), "crawled.pqs")

	// First crawl at week 0.
	ts1 := startServer(t, sim)
	var buf bytes.Buffer
	if err := run([]string{
		"-seeds", ts1.URL + "/seeds.txt", "-store", store, "-label", "t1", "-week", "0",
	}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "appended snapshot t1") {
		t.Fatalf("missing confirmation:\n%s", buf.String())
	}

	// Evolve and crawl again (defaults: label t2, week 4).
	sim.AdvanceTo(4)
	ts2 := startServer(t, sim)
	buf.Reset()
	if err := run([]string{"-seeds", ts2.URL + "/seeds.txt", "-store", store}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "appended snapshot t2 (week 4.0)") {
		t.Fatalf("default label/week wrong:\n%s", buf.String())
	}

	snaps, err := snapshot.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("store has %d snapshots", len(snaps))
	}
	// Crawled snapshots align on canonical URLs across server instances.
	al, err := snapshot.Align(snaps)
	if err != nil {
		t.Fatal(err)
	}
	if al.NumPages() == 0 {
		t.Fatal("no common pages across crawls")
	}
	for _, u := range al.URLs {
		if !strings.Contains(u, ".example/") {
			t.Fatalf("aligned URL %q is not canonical", u)
		}
	}
}

func TestCrawlCLISeedFlagAndCaps(t *testing.T) {
	cfg := webcorpus.DefaultConfig()
	cfg.Sites = 4
	cfg.InitialPagesPerSite = 5
	cfg.Users = 2000
	cfg.VisitRate = 2000
	cfg.LinkProb = 0.2
	cfg.BurnInWeeks = 10
	cfg.Seed = 2
	sim, err := webcorpus.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := startServer(t, sim)
	store := filepath.Join(t.TempDir(), "s.pqs")
	var buf bytes.Buffer
	if err := run([]string{"-seed", ts.URL + "/p/0.html", "-store", store, "-maxpages", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	snaps, err := snapshot.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	if snaps[0].Graph.NumNodes() > 3 {
		t.Fatalf("maxpages violated: %d nodes", snaps[0].Graph.NumNodes())
	}
}

func TestCrawlCLIErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{}, &buf); err == nil {
		t.Fatal("no seeds accepted")
	}
	if err := run([]string{"-seed", "http://x/", "-seeds", "http://x/s.txt"}, &buf); err == nil {
		t.Fatal("both seed flags accepted")
	}
	// Out-of-order week against an existing store.
	cfg := webcorpus.DefaultConfig()
	cfg.Sites = 2
	cfg.InitialPagesPerSite = 3
	cfg.Users = 2000
	cfg.VisitRate = 2000
	cfg.BurnInWeeks = 2
	cfg.Seed = 1
	sim, err := webcorpus.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := startServer(t, sim)
	store := filepath.Join(t.TempDir(), "s.pqs")
	if err := run([]string{"-seeds", ts.URL + "/seeds.txt", "-store", store, "-week", "8"}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-seeds", ts.URL + "/seeds.txt", "-store", store, "-week", "4"}, &buf); err == nil {
		t.Fatal("time-travelling snapshot accepted")
	}
}

func TestCrawlCLIArchivesBodies(t *testing.T) {
	cfg := webcorpus.DefaultConfig()
	cfg.Sites = 4
	cfg.InitialPagesPerSite = 4
	cfg.Users = 2000
	cfg.VisitRate = 2000
	cfg.LinkProb = 0.2
	cfg.BurnInWeeks = 8
	cfg.Seed = 7
	sim, err := webcorpus.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := startServer(t, sim)
	dir := t.TempDir()
	store := filepath.Join(dir, "s.pqs")
	archive := filepath.Join(dir, "pages")
	var buf bytes.Buffer
	if err := run([]string{
		"-seeds", ts.URL + "/seeds.txt", "-store", store,
		"-archive", archive, "-label", "t1", "-week", "0",
	}, &buf); err != nil {
		t.Fatal(err)
	}
	arch, err := pagestore.Open(archive, pagestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	snaps, err := snapshot.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	if arch.Len() != snaps[0].Graph.NumNodes() {
		t.Fatalf("archived %d bodies for %d crawled pages", arch.Len(), snaps[0].Graph.NumNodes())
	}
	keys := arch.KeysWithPrefix("t1/")
	if len(keys) != arch.Len() {
		t.Fatalf("archive keys not label-prefixed: %v", keys[:1])
	}
	// The archived bodies are real HTML.
	_, body, err := arch.Get(keys[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "<html") && !strings.Contains(string(body), "<!DOCTYPE") {
		t.Fatalf("archived body is not HTML: %q", body[:min(len(body), 60)])
	}
}

func TestCrawlCLIResumeFromCheckpoint(t *testing.T) {
	cfg := webcorpus.DefaultConfig()
	cfg.Sites = 5
	cfg.InitialPagesPerSite = 5
	cfg.Users = 2000
	cfg.VisitRate = 2000
	cfg.LinkProb = 0.2
	cfg.BurnInWeeks = 10
	cfg.Seed = 12
	sim, err := webcorpus.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := startServer(t, sim)
	dir := t.TempDir()
	store := filepath.Join(dir, "s.pqs")
	ckpt := filepath.Join(dir, "crawl.ckpt")

	// Fabricate a mid-crawl checkpoint: the seed page already visited,
	// its links in the frontier.
	seeds, err := crawler.FetchSeeds(context.Background(), ts.Client(), ts.URL+"/seeds.txt")
	if err != nil {
		t.Fatal(err)
	}
	interrupt := make(chan struct{})
	close(interrupt) // interrupt immediately after the first wave
	partial, err := crawler.Crawl(crawler.Config{
		Seeds: seeds, Client: ts.Client(), Interrupt: interrupt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if partial.Checkpoint == nil {
		t.Skip("crawl finished before the interrupt landed")
	}
	if err := partial.Checkpoint.Save(ckpt); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run([]string{
		"-seeds", ts.URL + "/seeds.txt", "-store", store,
		"-checkpoint", ckpt, "-label", "t1", "-week", "0",
	}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "resuming from") {
		t.Fatalf("resume banner missing:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "appended snapshot t1") {
		t.Fatalf("completion missing:\n%s", buf.String())
	}
	// Completed run removes the checkpoint.
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatalf("checkpoint not cleaned up: %v", err)
	}
	snaps, err := snapshot.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	if snaps[0].Graph.NumNodes() == 0 {
		t.Fatal("empty resumed snapshot")
	}
}

// TestCrawlCLIRetryFlags drives the retry engine end to end from the
// CLI: with retries enabled a transiently failing page is recovered and
// counted; with -retries 1 it is dropped with a warning instead.
func TestCrawlCLIRetryFlags(t *testing.T) {
	flakySite := func() *httptest.Server {
		failed := false
		var mu sync.Mutex
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			switch r.URL.Path {
			case "/":
				fmt.Fprint(w, `<a href="/flaky">f</a>`)
			case "/flaky":
				mu.Lock()
				first := !failed
				failed = true
				mu.Unlock()
				if first {
					http.Error(w, "busy", http.StatusServiceUnavailable)
					return
				}
				fmt.Fprint(w, "recovered")
			case "/robots.txt":
				fmt.Fprint(w, "User-agent: *\nDisallow:\n")
			default:
				http.NotFound(w, r)
			}
		}))
	}

	ts := flakySite()
	defer ts.Close()
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{
		"-seed", ts.URL + "/", "-store", filepath.Join(dir, "a.pqs"),
		"-retries", "3", "-retry-base", "1ms", "-retry-max", "2ms",
	}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fetched 2 pages (0 errors, 1 retries") {
		t.Fatalf("retry not reported:\n%s", buf.String())
	}

	ts2 := flakySite()
	defer ts2.Close()
	buf.Reset()
	if err := run([]string{
		"-seed", ts2.URL + "/", "-store", filepath.Join(dir, "b.pqs"),
		"-retries", "1",
	}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1 URLs failed transiently and were dropped") {
		t.Fatalf("transient drop not warned:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "fetched 1 pages (1 errors, 0 retries") {
		t.Fatalf("stats wrong for -retries 1:\n%s", buf.String())
	}
}

// TestCrawlCLITransientCheckpointRetry checks the completed-with-leftovers
// path: a crawl that exhausts retries on one URL still writes its
// snapshot, saves the failures to the checkpoint, and a re-run against
// the recovered site fetches exactly the leftover URL.
func TestCrawlCLITransientCheckpointRetry(t *testing.T) {
	healthy := false
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/":
			fmt.Fprint(w, `<a href="/down">d</a>`)
		case "/down":
			mu.Lock()
			up := healthy
			mu.Unlock()
			if !up {
				http.Error(w, "down", http.StatusServiceUnavailable)
				return
			}
			fmt.Fprint(w, "back up")
		case "/robots.txt":
			fmt.Fprint(w, "User-agent: *\nDisallow:\n")
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()
	dir := t.TempDir()
	store := filepath.Join(dir, "s.pqs")
	ckpt := filepath.Join(dir, "crawl.ckpt")
	var buf bytes.Buffer
	if err := run([]string{
		"-seed", ts.URL + "/", "-store", store, "-checkpoint", ckpt,
		"-retries", "2", "-retry-base", "1ms", "-retry-max", "2ms", "-label", "t1", "-week", "0",
	}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "checkpoint saved to") {
		t.Fatalf("leftover checkpoint not saved:\n%s", buf.String())
	}
	snaps, err := snapshot.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].Graph.NumNodes() != 1 {
		t.Fatalf("first snapshot wrong: %d snaps", len(snaps))
	}

	mu.Lock()
	healthy = true
	mu.Unlock()
	buf.Reset()
	if err := run([]string{
		"-seed", ts.URL + "/", "-store", store, "-checkpoint", ckpt,
		"-retries", "2", "-retry-base", "1ms", "-label", "t2", "-week", "4",
	}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "resuming from") {
		t.Fatalf("checkpoint not resumed:\n%s", buf.String())
	}
	// Stats are cumulative across the resume: 1 prior page + the leftover,
	// with the prior run's error and retry still on the books.
	if !strings.Contains(buf.String(), "fetched 2 pages (1 errors, 1 retries") {
		t.Fatalf("re-run should fetch only the leftover URL:\n%s", buf.String())
	}
	snaps, err = snapshot.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("store has %d snapshots", len(snaps))
	}
	if _, ok := snaps[1].Graph.Lookup(ts.URL + "/down"); !ok {
		t.Fatal("re-run snapshot missing the recovered URL")
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatalf("clean completion left the checkpoint behind (err=%v)", err)
	}
}
