// Command serve exposes one snapshot from a store file as a browsable
// HTML site (the webserver substrate), closing the loop with cmd/crawl:
// a snapshot written by websim can be served, re-crawled and re-stored.
//
// Usage:
//
//	serve -in web.pqs [-snapshot t3] [-addr 127.0.0.1:8080]
//	serve -in web.pqs -fault-error 0.2 -fault-ratelimit 0.1 -fault-seed 7
//
// The -fault-* flags wrap the site in the deterministic fault-injection
// middleware, turning it into a hostile-server testbed for crawler
// resilience work.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"pagequality/internal/snapshot"
	"pagequality/internal/webserver"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, listenAndServe); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// listenAndServe serves h behind an http.Server with header, read and
// write timeouts, so a slow or stalled client cannot wedge a connection
// indefinitely — the seam tests swap this out.
func listenAndServe(addr string, h http.Handler) error {
	return newServer(addr, h).ListenAndServe()
}

// newServer is the production server configuration.
func newServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// run wires flags to the handler; listen is injectable for tests.
func run(args []string, out io.Writer, listen func(addr string, h http.Handler) error) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		in             = fs.String("in", "web.pqs", "snapshot store path")
		label          = fs.String("snapshot", "", "snapshot label (default: last)")
		addr           = fs.String("addr", "127.0.0.1:8080", "listen address")
		faultError     = fs.Float64("fault-error", 0, "probability of an injected 500 per request")
		faultRateLimit = fs.Float64("fault-ratelimit", 0, "probability of an injected 429 (Retry-After: 1) per request")
		faultTimeout   = fs.Float64("fault-timeout", 0, "probability of stalling a request until the client gives up")
		faultLatency   = fs.Duration("fault-latency", 0, "fixed delay added to every non-faulted response")
		faultSeed      = fs.Int64("fault-seed", 1, "seed of the deterministic fault decisions")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	h, info, err := newHandler(*in, *label)
	if err != nil {
		return err
	}
	fc := webserver.FaultConfig{
		ErrorRate:     *faultError,
		RateLimitRate: *faultRateLimit,
		TimeoutRate:   *faultTimeout,
		Latency:       *faultLatency,
		Seed:          *faultSeed,
	}
	if fc.Active() {
		wrapped, err := webserver.WithFaults(h, fc)
		if err != nil {
			return err
		}
		h = wrapped
		info += fmt.Sprintf(" [faults: err=%g ratelimit=%g timeout=%g latency=%v seed=%d]",
			fc.ErrorRate, fc.RateLimitRate, fc.TimeoutRate, fc.Latency, fc.Seed)
	}
	fmt.Fprintf(out, "serving %s on http://%s/ (seeds at /seeds.txt)\n", info, *addr)
	return listen(*addr, h)
}

// newHandler loads the requested snapshot and builds its site handler.
func newHandler(storePath, label string) (http.Handler, string, error) {
	snaps, err := snapshot.ReadFile(storePath)
	if err != nil {
		return nil, "", err
	}
	if len(snaps) == 0 {
		return nil, "", fmt.Errorf("store %s is empty", storePath)
	}
	snap := snaps[len(snaps)-1]
	if label != "" {
		found := false
		for _, s := range snaps {
			if s.Label == label {
				snap, found = s, true
				break
			}
		}
		if !found {
			return nil, "", fmt.Errorf("no snapshot labelled %q in %s", label, storePath)
		}
	}
	srv, err := webserver.New(snap.Graph, nil)
	if err != nil {
		return nil, "", err
	}
	info := fmt.Sprintf("snapshot %s (week %.1f, %d pages, %d links)",
		snap.Label, snap.Time, snap.Graph.NumNodes(), snap.Graph.NumEdges())
	return srv, info, nil
}
