// Command serve exposes one snapshot from a store file as a browsable
// HTML site (the webserver substrate), closing the loop with cmd/crawl:
// a snapshot written by websim can be served, re-crawled and re-stored.
//
// Usage:
//
//	serve -in web.pqs [-snapshot t3] [-addr 127.0.0.1:8080]
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"pagequality/internal/snapshot"
	"pagequality/internal/webserver"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, listenAndServe); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// listenAndServe serves h behind an http.Server with header, read and
// write timeouts, so a slow or stalled client cannot wedge a connection
// indefinitely — the seam tests swap this out.
func listenAndServe(addr string, h http.Handler) error {
	return newServer(addr, h).ListenAndServe()
}

// newServer is the production server configuration.
func newServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// run wires flags to the handler; listen is injectable for tests.
func run(args []string, out io.Writer, listen func(addr string, h http.Handler) error) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		in    = fs.String("in", "web.pqs", "snapshot store path")
		label = fs.String("snapshot", "", "snapshot label (default: last)")
		addr  = fs.String("addr", "127.0.0.1:8080", "listen address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	h, info, err := newHandler(*in, *label)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "serving %s on http://%s/ (seeds at /seeds.txt)\n", info, *addr)
	return listen(*addr, h)
}

// newHandler loads the requested snapshot and builds its site handler.
func newHandler(storePath, label string) (http.Handler, string, error) {
	snaps, err := snapshot.ReadFile(storePath)
	if err != nil {
		return nil, "", err
	}
	if len(snaps) == 0 {
		return nil, "", fmt.Errorf("store %s is empty", storePath)
	}
	snap := snaps[len(snaps)-1]
	if label != "" {
		found := false
		for _, s := range snaps {
			if s.Label == label {
				snap, found = s, true
				break
			}
		}
		if !found {
			return nil, "", fmt.Errorf("no snapshot labelled %q in %s", label, storePath)
		}
	}
	srv, err := webserver.New(snap.Graph, nil)
	if err != nil {
		return nil, "", err
	}
	info := fmt.Sprintf("snapshot %s (week %.1f, %d pages, %d links)",
		snap.Label, snap.Time, snap.Graph.NumNodes(), snap.Graph.NumEdges())
	return srv, info, nil
}
