package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"pagequality/internal/crawler"
	"pagequality/internal/graph"
	"pagequality/internal/snapshot"
)

func storeFixture(t *testing.T) string {
	t.Helper()
	mk := func(n int) *graph.Graph {
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.MustAddPage(graph.Page{URL: fmt.Sprintf("http://s.example/p%d", i), Site: 0})
		}
		for i := 0; i < n-1; i++ {
			g.AddLink(graph.NodeID(i), graph.NodeID(i+1))
		}
		return g
	}
	path := filepath.Join(t.TempDir(), "web.pqs")
	if err := snapshot.WriteFile(path, []snapshot.Snapshot{
		{Label: "t1", Time: 0, Graph: mk(4)},
		{Label: "t2", Time: 4, Graph: mk(5)},
	}); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestNewHandlerDefaultsToLast(t *testing.T) {
	path := storeFixture(t)
	h, info, err := newHandler(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info, "snapshot t2") || !strings.Contains(info, "5 pages") {
		t.Fatalf("info = %q", info)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := httpGet(ts.Client(), ts.URL+"/seeds.txt")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seeds status %d", resp.StatusCode)
	}
}

func TestNewHandlerLabelSelection(t *testing.T) {
	path := storeFixture(t)
	_, info, err := newHandler(path, "t1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info, "snapshot t1") || !strings.Contains(info, "4 pages") {
		t.Fatalf("info = %q", info)
	}
	if _, _, err := newHandler(path, "zz"); err == nil {
		t.Fatal("unknown label accepted")
	}
	if _, _, err := newHandler(filepath.Join(t.TempDir(), "none.pqs"), ""); err == nil {
		t.Fatal("missing store accepted")
	}
}

// TestServeThenCrawlRoundTrip closes the loop: a stored snapshot is
// served and re-crawled; the crawled graph matches the stored one.
func TestServeThenCrawlRoundTrip(t *testing.T) {
	path := storeFixture(t)
	h, _, err := newHandler(path, "t2")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	seeds, err := crawler.FetchSeeds(context.Background(), ts.Client(), ts.URL+"/seeds.txt")
	if err != nil {
		t.Fatal(err)
	}
	res, err := crawler.Crawl(crawler.Config{Seeds: seeds, Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumNodes() != 5 || res.Graph.NumEdges() != 4 {
		t.Fatalf("re-crawl got %d nodes, %d edges; want 5, 4",
			res.Graph.NumNodes(), res.Graph.NumEdges())
	}
	if _, ok := res.Graph.Lookup("http://s.example/p0"); !ok {
		t.Fatal("canonical URLs lost in round trip")
	}
}

func TestRunWiresListener(t *testing.T) {
	path := storeFixture(t)
	var buf bytes.Buffer
	called := false
	listen := func(addr string, h http.Handler) error {
		called = true
		if addr != "127.0.0.1:0" || h == nil {
			t.Fatalf("listen(%q, %v)", addr, h)
		}
		return nil
	}
	if err := run([]string{"-in", path, "-addr", "127.0.0.1:0"}, &buf, listen); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("listener never invoked")
	}
	if !strings.Contains(buf.String(), "serving snapshot") {
		t.Fatalf("banner missing:\n%s", buf.String())
	}
}

// TestRunFaultFlags checks that the -fault-* flags wrap the site in the
// fault middleware: the banner advertises the config, a guaranteed-fault
// handler returns 429 with Retry-After, and bad rates are rejected.
func TestRunFaultFlags(t *testing.T) {
	path := storeFixture(t)
	var buf bytes.Buffer
	var captured http.Handler
	listen := func(addr string, h http.Handler) error {
		captured = h
		return nil
	}
	if err := run([]string{
		"-in", path, "-addr", "127.0.0.1:0",
		"-fault-ratelimit", "1", "-fault-seed", "7",
	}, &buf, listen); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[faults: err=0 ratelimit=1 timeout=0 latency=0s seed=7]") {
		t.Fatalf("banner missing fault config:\n%s", buf.String())
	}
	rec := httptest.NewRecorder()
	captured.ServeHTTP(rec, httptest.NewRequest("GET", "/seeds.txt", nil))
	if rec.Code != http.StatusTooManyRequests || rec.Header().Get("Retry-After") != "1" {
		t.Fatalf("fault handler returned %d (Retry-After %q)", rec.Code, rec.Header().Get("Retry-After"))
	}
	if err := run([]string{"-in", path, "-fault-error", "1.5"}, &buf, listen); err == nil {
		t.Fatal("out-of-range fault rate accepted")
	}
}

// TestRunWithoutFaultFlagsServesDirectly pins the zero-cost default: no
// -fault-* flags means the raw site handler, no middleware and no banner
// suffix.
func TestRunWithoutFaultFlagsServesDirectly(t *testing.T) {
	path := storeFixture(t)
	var buf bytes.Buffer
	var captured http.Handler
	listen := func(addr string, h http.Handler) error {
		captured = h
		return nil
	}
	if err := run([]string{"-in", path, "-addr", "127.0.0.1:0"}, &buf, listen); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "faults") {
		t.Fatalf("fault banner without fault flags:\n%s", buf.String())
	}
	rec := httptest.NewRecorder()
	captured.ServeHTTP(rec, httptest.NewRequest("GET", "/seeds.txt", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("seeds status %d", rec.Code)
	}
}

// httpGet issues a GET carrying an explicit context, so test traffic
// meets the same ctxhttp cancellation discipline as the serving stack.
func httpGet(c *http.Client, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.Do(req)
}
