package main

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"pagequality/internal/graph"
	"pagequality/internal/snapshot"
)

// writeFixture creates a small store with two snapshots.
func writeFixture(t *testing.T) string {
	t.Helper()
	mk := func(extra int) *graph.Graph {
		g := graph.New(6)
		for i := 0; i < 6; i++ {
			g.MustAddPage(graph.Page{URL: fmt.Sprintf("http://s/p%d", i)})
		}
		// star toward node 0
		for i := 1; i < 6; i++ {
			g.AddLink(graph.NodeID(i), 0)
		}
		g.AddLink(0, 1)
		for i := 0; i < extra; i++ {
			g.AddLink(graph.NodeID(1+i), 5)
		}
		return g
	}
	path := filepath.Join(t.TempDir(), "web.pqs")
	err := snapshot.WriteFile(path, []snapshot.Snapshot{
		{Label: "t1", Time: 0, Graph: mk(0)},
		{Label: "t2", Time: 4, Graph: mk(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPageRankCLI(t *testing.T) {
	path := writeFixture(t)
	var buf bytes.Buffer
	if err := run([]string{"-in", path, "-top", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "snapshot t2") {
		t.Fatalf("did not default to last snapshot:\n%s", out)
	}
	if !strings.Contains(out, "http://s/p0") {
		t.Fatalf("hub page missing from top-3:\n%s", out)
	}
	// The hub must be the first-ranked row.
	lines := strings.Split(out, "\n")
	for i, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "rank") {
			if !strings.Contains(lines[i+1], "http://s/p0") {
				t.Fatalf("rank-1 row is not the hub:\n%s", out)
			}
			break
		}
	}
}

func TestPageRankCLISnapshotSelection(t *testing.T) {
	path := writeFixture(t)
	var buf bytes.Buffer
	if err := run([]string{"-in", path, "-snapshot", "t1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "snapshot t1") {
		t.Fatalf("snapshot selection failed:\n%s", buf.String())
	}
	if err := run([]string{"-in", path, "-snapshot", "zz"}, &buf); err == nil {
		t.Fatal("unknown label accepted")
	}
}

func TestPageRankCLIMetrics(t *testing.T) {
	path := writeFixture(t)
	for _, metric := range []string{"hits", "indegree"} {
		var buf bytes.Buffer
		if err := run([]string{"-in", path, "-metric", metric}, &buf); err != nil {
			t.Fatalf("%s: %v", metric, err)
		}
		if !strings.Contains(buf.String(), "http://s/") {
			t.Fatalf("%s produced no table:\n%s", metric, buf.String())
		}
	}
	var buf bytes.Buffer
	if err := run([]string{"-in", path, "-metric", "bogus"}, &buf); err == nil {
		t.Fatal("unknown metric accepted")
	}
	if err := run([]string{"-in", path, "-variant", "bogus"}, &buf); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestPageRankCLIMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-in", filepath.Join(t.TempDir(), "none.pqs")}, &buf); err == nil {
		t.Fatal("missing store accepted")
	}
}
