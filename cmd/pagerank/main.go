// Command pagerank ranks the pages of one snapshot from a store file by
// PageRank, HITS authority, or raw in-degree, printing the top-k table.
//
// Usage:
//
//	pagerank -in web.pqs [-snapshot t3] [-metric pagerank|hits|indegree] \
//	         [-top 20] [-variant paper|standard] [-jump 0.15]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"pagequality/internal/graph"
	"pagequality/internal/pagerank"
	"pagequality/internal/snapshot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pagerank:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pagerank", flag.ContinueOnError)
	var (
		in      = fs.String("in", "web.pqs", "snapshot store path")
		label   = fs.String("snapshot", "", "snapshot label (default: last)")
		metric  = fs.String("metric", "pagerank", "pagerank | hits | indegree")
		top     = fs.Int("top", 20, "number of pages to print")
		variant = fs.String("variant", "paper", "paper | standard normalisation")
		jump    = fs.Float64("jump", 0.15, "random-jump probability d")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	snaps, err := snapshot.ReadFile(*in)
	if err != nil {
		return err
	}
	if len(snaps) == 0 {
		return fmt.Errorf("store %s is empty", *in)
	}
	snap := snaps[len(snaps)-1]
	if *label != "" {
		found := false
		for _, s := range snaps {
			if s.Label == *label {
				snap, found = s, true
				break
			}
		}
		if !found {
			return fmt.Errorf("no snapshot labelled %q in %s", *label, *in)
		}
	}
	c := graph.Freeze(snap.Graph)
	fmt.Fprintf(out, "snapshot %s (week %.1f): %d pages, %d links\n",
		snap.Label, snap.Time, c.NumNodes(), c.NumEdges())

	var score []float64
	switch *metric {
	case "pagerank":
		v := pagerank.VariantPaper
		if *variant == "standard" {
			v = pagerank.VariantStandard
		} else if *variant != "paper" {
			return fmt.Errorf("unknown variant %q", *variant)
		}
		res, err := pagerank.Compute(c, pagerank.Options{Variant: v, Jump: *jump})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "PageRank converged in %d iterations (delta %.2g)\n",
			res.Iterations, res.Delta)
		score = res.Rank
	case "hits":
		res, err := pagerank.HITS(c, pagerank.HITSOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "HITS converged in %d iterations; ranking by authority\n", res.Iterations)
		score = res.Authorities
	case "indegree":
		score = pagerank.InDegree(c)
	default:
		return fmt.Errorf("unknown metric %q", *metric)
	}

	order := argsortDesc(score)
	k := *top
	if k > len(order) {
		k = len(order)
	}
	fmt.Fprintf(out, "%4s  %12s  %8s  %8s  %s\n", "rank", "score", "in-deg", "out-deg", "url")
	for i := 0; i < k; i++ {
		id := graph.NodeID(order[i])
		pg := snap.Graph.Page(id)
		url := pg.URL
		if url == "" {
			url = fmt.Sprintf("(page %d)", id)
		}
		fmt.Fprintf(out, "%4d  %12.5f  %8d  %8d  %s\n",
			i+1, score[id], c.InDegree(id), c.OutDegree(id), url)
	}
	return nil
}

// argsortDesc returns indices sorted by descending score (stable on ties).
//
//pqlint:allow floateq exact-tie detection so equal scores fall through to the index tie-break
func argsortDesc(score []float64) []int {
	idx := make([]int, len(score))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if score[idx[a]] != score[idx[b]] {
			return score[idx[a]] > score[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}
