package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pagequality/internal/loadgen"
)

// stubSearch answers every /search with an empty 200 JSON body.
func stubSearch(t *testing.T) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write([]byte(`{"hits":[]}`)); err != nil {
			t.Error(err)
		}
	}))
}

func TestRunFlagValidation(t *testing.T) {
	bad := [][]string{
		{"-rate", "0"},
		{"-rate", "-5"},
		{"-requests", "0"},
		{"-k", "0"},
		{"-timeout", "-1s"},
		{"-topics", "0"},
		{"-queries", filepath.Join(t.TempDir(), "missing.txt")},
		{"-zipf", "-1"},
	}
	for _, args := range bad {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Fatalf("args %v: want error", args)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	ts := stubSearch(t)
	defer ts.Close()
	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-rate", "5000",
		"-requests", "40",
		"-topics", "3",
		"-json",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not a JSON report: %v\n%s", err, out.String())
	}
	if rep.Requests != 40 || rep.OK != 40 {
		t.Fatalf("requests=%d ok=%d, want 40/40", rep.Requests, rep.OK)
	}
	if rep.Shed != 0 || rep.ShedRate != 0 {
		t.Fatalf("unexpected shedding against stub: %+v", rep)
	}
}

func TestRunHumanOutput(t *testing.T) {
	ts := stubSearch(t)
	defer ts.Close()
	var out bytes.Buffer
	err := run([]string{"-addr", ts.URL, "-rate", "5000", "-requests", "10", "-topics", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"throughput", "latency (admitted)", "ok 10"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("human output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunQueriesFile(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if q := r.URL.Query().Get("q"); q != "custom query one" && q != "two" {
			t.Errorf("query %q not from the file", q)
		}
		if _, err := w.Write([]byte(`{"hits":[]}`)); err != nil {
			t.Error(err)
		}
	}))
	defer ts.Close()
	path := filepath.Join(t.TempDir(), "queries.txt")
	content := "# comment\n\ncustom query one\ntwo\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-addr", ts.URL, "-rate", "5000", "-requests", "20", "-queries", path}, &out)
	if err != nil {
		t.Fatal(err)
	}

	// A file of only blanks and comments is rejected.
	empty := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(empty, []byte("# nothing\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-addr", ts.URL, "-queries", empty}, &out); err == nil {
		t.Fatal("empty query file must be rejected")
	}
}
