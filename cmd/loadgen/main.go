// Command loadgen drives an open-loop query load against a live
// qualityserve and reports the latency distribution, throughput and shed
// rate. The workload is a deterministic zipf stream over a query
// vocabulary — webcorpus topic names by default, or a file of queries —
// replayable from its seed: request i's query is a pure function of
// (seed, i), so two runs at the same rate offer the identical sequence.
//
// Open-loop means arrivals follow the clock, not the server: request i
// departs at start + i/rate whether or not earlier responses have come
// back. That is what exposes saturation — a closed-loop driver would
// slow down with the server and hide it.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8088 -rate 2000 -requests 20000 \
//	        [-topics 40 | -queries file] [-zipf 1.1] [-seed 1] \
//	        [-k 10] [-rank quality] [-timeout 5s] [-json]
//
// With -json the full report is emitted as one JSON object on stdout
// (the BENCH_8.json inputs); otherwise a human summary is printed.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"pagequality/internal/loadgen"
	"pagequality/internal/webcorpus"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8088", "base URL of the qualityserve instance")
		rate     = fs.Float64("rate", 1000, "offered arrival rate, requests/second")
		requests = fs.Int("requests", 10000, "total arrivals to schedule")
		topics   = fs.Int("topics", 40, "query vocabulary: first N webcorpus topics (ignored with -queries)")
		queries  = fs.String("queries", "", "file with one query per line (overrides -topics)")
		zipfS    = fs.Float64("zipf", 1.1, "zipf exponent of query popularity (0 = uniform)")
		seed     = fs.Int64("seed", 1, "workload seed; same seed replays the same query stream")
		k        = fs.Int("k", 10, "top-k passed to /search")
		rank     = fs.String("rank", "quality", "rank= parameter (quality, pagerank, relevance)")
		timeout  = fs.Duration("timeout", 5*time.Second, "per-request timeout (0 = none)")
		jsonOut  = fs.Bool("json", false, "emit the report as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rate <= 0 {
		return fmt.Errorf("-rate must be > 0, got %g", *rate)
	}
	if *requests < 1 {
		return fmt.Errorf("-requests must be >= 1, got %d", *requests)
	}
	if *k < 1 {
		return fmt.Errorf("-k must be >= 1, got %d", *k)
	}
	if *timeout < 0 {
		return fmt.Errorf("-timeout must be >= 0, got %v", *timeout)
	}
	var vocab []string
	if *queries != "" {
		var err error
		if vocab, err = readQueries(*queries); err != nil {
			return err
		}
	} else {
		if *topics < 1 {
			return fmt.Errorf("-topics must be >= 1, got %d", *topics)
		}
		for i := 0; i < *topics; i++ {
			vocab = append(vocab, webcorpus.SiteTopic(i))
		}
	}
	wl, err := loadgen.NewWorkload(vocab, *zipfS, *seed)
	if err != nil {
		return err
	}
	client := &http.Client{Transport: &http.Transport{
		// Open-loop load fans out far beyond the default two idle
		// connections per host; without this every burst pays connection
		// setup and the client, not the server, becomes the bottleneck.
		MaxIdleConns:        1024,
		MaxIdleConnsPerHost: 1024,
	}}
	rep, err := loadgen.Run(context.Background(), loadgen.Options{
		BaseURL:  strings.TrimRight(*addr, "/"),
		Workload: wl,
		Rate:     *rate,
		Requests: *requests,
		TopK:     *k,
		Rank:     *rank,
		Timeout:  *timeout,
		Client:   client,
		Now:      time.Now,
		Sleep:    time.Sleep,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(out, "offered %d requests at %.0f rps over %v\n", rep.Requests, rep.Rate, rep.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "ok %d  shed %d (%.1f%%)  bad-status %d  net-err %d\n",
		rep.OK, rep.Shed, 100*rep.ShedRate, rep.BadStatus, rep.NetErr)
	fmt.Fprintf(out, "throughput %.0f rps\n", rep.Throughput)
	fmt.Fprintf(out, "latency (admitted): p50 %v  p95 %v  p99 %v  max %v\n",
		rep.P50, rep.P95, rep.P99, rep.Max)
	return nil
}

// readQueries loads one query per line, skipping blanks and # comments.
func readQueries(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no queries in %s", path)
	}
	return out, nil
}
