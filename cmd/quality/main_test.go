package main

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"pagequality/internal/crawler"
	"pagequality/internal/graph"
	"pagequality/internal/pagestore"
	"pagequality/internal/snapshot"
)

// fixture builds four snapshots where page "riser" steadily gains links.
func fixture(t *testing.T) string {
	t.Helper()
	mk := func(links int) *graph.Graph {
		g := graph.New(8)
		for i := 0; i < 8; i++ {
			g.MustAddPage(graph.Page{URL: fmt.Sprintf("http://s/p%d", i)})
		}
		// static ring among 0..5
		for i := 0; i < 6; i++ {
			g.AddLink(graph.NodeID(i), graph.NodeID((i+1)%6))
		}
		// riser = node 7 gains links from 0..links-1
		for i := 0; i < links && i < 6; i++ {
			g.AddLink(graph.NodeID(i), 7)
		}
		return g
	}
	path := filepath.Join(t.TempDir(), "web.pqs")
	err := snapshot.WriteFile(path, []snapshot.Snapshot{
		{Label: "t1", Time: 0, Graph: mk(1)},
		{Label: "t2", Time: 4, Graph: mk(2)},
		{Label: "t3", Time: 8, Graph: mk(3)},
		{Label: "t4", Time: 26, Graph: mk(5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestQualityCLI(t *testing.T) {
	path := fixture(t)
	var buf bytes.Buffer
	if err := run([]string{"-in", path, "-snaps", "3", "-top", "8"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "common pages") {
		t.Fatalf("missing alignment summary:\n%s", out)
	}
	if !strings.Contains(out, "increasing=") {
		t.Fatalf("missing class tally:\n%s", out)
	}
	// The riser must be listed with class increasing.
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "http://s/p7") && strings.Contains(line, "increasing") {
			found = true
		}
	}
	if !found {
		t.Fatalf("riser not classified increasing:\n%s", out)
	}
	// A future snapshot exists: the §8.2 scoring block must appear.
	if !strings.Contains(out, "prediction of t4") {
		t.Fatalf("missing future scoring:\n%s", out)
	}
	if !strings.Contains(out, "avg rel. error") {
		t.Fatalf("missing error summary:\n%s", out)
	}
}

func TestQualityCLIWithoutFuture(t *testing.T) {
	path := fixture(t)
	var buf bytes.Buffer
	// Use all 4 snapshots for estimation: no future left, no scoring block.
	if err := run([]string{"-in", path, "-snaps", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "prediction of") {
		t.Fatalf("scoring block printed without a future snapshot:\n%s", buf.String())
	}
}

func TestQualityCLIErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-in", filepath.Join(t.TempDir(), "none.pqs")}, &buf); err == nil {
		t.Fatal("missing store accepted")
	}
	path := fixture(t)
	if err := run([]string{"-in", path, "-snaps", "9"}, &buf); err == nil {
		t.Fatal("snaps beyond store accepted")
	}
	if err := run([]string{"-in", path, "-c", "-4"}, &buf); err == nil {
		t.Fatal("negative C accepted")
	}
}

// htmlArchive writes three crawls of a small evolving graph as raw HTML
// bodies under labels t1..t3.
func htmlArchive(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	st, err := pagestore.Open(dir, pagestore.Options{MaxSegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	url := func(i int) string { return fmt.Sprintf("http://s.test/p%d", i) }
	for week := 1; week <= 3; week++ {
		label := fmt.Sprintf("t%d", week)
		for i := 0; i < 8; i++ {
			body := fmt.Sprintf(`<html><a href="%s">n</a>`, url((i+1)%8))
			if i < week { // riser gains links over time
				body += fmt.Sprintf(`<a href="%s">r</a>`, url(7))
			}
			body += `</html>`
			err := st.Put(label+"/"+url(i), pagestore.Meta{FetchedAt: float64(week), Status: 200}, []byte(body))
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestQualityCLIArchiveRouteMatchesStoreRoute pins the -archive flag to
// the pre-refactor route: extract every label with the KeysWithPrefix
// walk, write a snapshot store, and compare stdout byte for byte.
func TestQualityCLIArchiveRouteMatchesStoreRoute(t *testing.T) {
	dir := htmlArchive(t)

	// Pre-refactor route: per-label key walk -> Assemble -> store file.
	st, err := pagestore.Open(dir, pagestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var snaps []snapshot.Snapshot
	for _, label := range []string{"t1", "t2", "t3"} {
		prefix := label + "/"
		var docs []crawler.Document
		week := -1.0
		for _, k := range st.KeysWithPrefix(prefix) {
			meta, body, err := st.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			if week < 0 {
				week = meta.FetchedAt
			}
			docs = append(docs, crawler.Document{FetchURL: k[len(prefix):], Body: body})
		}
		res, err := crawler.Assemble(docs)
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snapshot.Snapshot{Label: label, Time: week, Graph: res.Graph})
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "web.pqs")
	if err := snapshot.WriteFile(path, snaps); err != nil {
		t.Fatal(err)
	}

	var fromStore, fromArchive, fromArchiveLabels bytes.Buffer
	if err := run([]string{"-in", path, "-snaps", "2", "-top", "8"}, &fromStore); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-archive", dir, "-snaps", "2", "-top", "8"}, &fromArchive); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-archive", dir, "-labels", "t1,t2,t3", "-snaps", "2", "-top", "8"}, &fromArchiveLabels); err != nil {
		t.Fatal(err)
	}
	if fromStore.String() != fromArchive.String() {
		t.Fatalf("archive route differs from store route:\n--- store ---\n%s--- archive ---\n%s",
			fromStore.String(), fromArchive.String())
	}
	if fromArchive.String() != fromArchiveLabels.String() {
		t.Fatal("-labels changed the default-label output")
	}
	if err := run([]string{"-archive", dir, "-labels", "nope"}, &fromArchive); err == nil {
		t.Fatal("unknown label accepted")
	}
}
