// Command quality applies the paper's quality estimator to a snapshot
// store: it aligns the snapshots on their common pages, computes the
// PageRank series, estimates Q(p) = C·ΔPR/PR + PR from the first
// estimation snapshots, and — when a later snapshot exists — scores the
// estimate against that "future" PageRank exactly as in §8.2.
//
// Usage:
//
//	quality -in web.pqs [-snaps 3] [-c 1.0] [-maxtrend 0.3] [-top 20]
//	quality -archive pages/ [-labels t1,t2,t3] [...]
//
// With -archive, snapshots are re-extracted straight from a crawl
// archive (one corpus pass per label) instead of a snapshot store; the
// estimate and the report are identical to extracting each label with
// cmd/extract and running the -in route on the result.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"pagequality/internal/corpus"
	"pagequality/internal/metrics"
	"pagequality/internal/pagerank"
	"pagequality/internal/pagestore"
	"pagequality/internal/quality"
	"pagequality/internal/qualityarchive"
	"pagequality/internal/snapshot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "quality:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("quality", flag.ContinueOnError)
	var (
		in       = fs.String("in", "web.pqs", "snapshot store path")
		archive  = fs.String("archive", "", "crawl archive directory (replaces -in: snapshots re-extracted per label)")
		labels   = fs.String("labels", "", "comma-separated archive labels, in time order (default: all, time-sorted)")
		snapsN   = fs.Int("snaps", 3, "number of leading snapshots used for estimation")
		c        = fs.Float64("c", 1.0, "estimator constant C")
		maxTrend = fs.Float64("maxtrend", 0.3, "trend cap (0 disables)")
		minCh    = fs.Float64("minchange", 0.05, "stable-page threshold")
		top      = fs.Int("top", 20, "number of pages to print")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var snaps []snapshot.Snapshot
	if *archive != "" {
		arch, err := pagestore.Open(*archive, pagestore.Options{})
		if err != nil {
			return err
		}
		defer arch.Close()
		want := strings.Split(*labels, ",")
		if *labels == "" {
			if want, err = qualityarchive.ArchiveLabels(arch, corpus.Options{}); err != nil {
				return err
			}
		}
		if snaps, err = qualityarchive.SnapshotsFromArchive(arch, want, corpus.Options{}); err != nil {
			return err
		}
	} else {
		var err error
		if snaps, err = snapshot.ReadFile(*in); err != nil {
			return err
		}
	}
	if len(snaps) < 2 {
		return fmt.Errorf("store has %d snapshots; need at least 2", len(snaps))
	}
	al, err := snapshot.Align(snaps)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%d snapshots, %d common pages\n", al.NumSnapshots(), al.NumPages())

	cfg := quality.Config{
		C:                      *c,
		MinChangeFrac:          *minCh,
		ApplyTrendToDecreasing: true,
		MaxTrend:               *maxTrend,
	}
	est, ranks, err := quality.FromAligned(al, *snapsN, pagerank.Options{Variant: pagerank.VariantPaper}, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "classes: increasing=%d decreasing=%d fluctuating=%d stable=%d (changed>%.0f%%: %d)\n",
		est.Counts[quality.ClassIncreasing], est.Counts[quality.ClassDecreasing],
		est.Counts[quality.ClassFluctuating], est.Counts[quality.ClassStable],
		*minCh*100, est.NumChanged)

	// Top pages by estimated quality.
	order := make([]int, len(est.Q))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return est.Q[order[a]] > est.Q[order[b]] })
	k := *top
	if k > len(order) {
		k = len(order)
	}
	cur := ranks[*snapsN-1]
	fmt.Fprintf(out, "\n%4s  %10s  %10s  %-11s  %s\n", "rank", "Q(p)", "PR(now)", "class", "url")
	for i := 0; i < k; i++ {
		p := order[i]
		fmt.Fprintf(out, "%4d  %10.4f  %10.4f  %-11s  %s\n",
			i+1, est.Q[p], cur[p], est.Class[p], al.URLs[p])
	}

	// If a future snapshot exists, score like §8.2.
	if al.NumSnapshots() > *snapsN {
		future := ranks[len(ranks)-1]
		var errsQ, errsPR []float64
		for i := range est.Q {
			if !est.Changed[i] || future[i] == 0 {
				continue
			}
			eq, errQ := metrics.RelativeError(est.Q[i], future[i])
			ep, errP := metrics.RelativeError(cur[i], future[i])
			if errQ != nil || errP != nil {
				continue // zero truth; already filtered above, but stay safe
			}
			errsQ = append(errsQ, eq)
			errsPR = append(errsPR, ep)
		}
		if len(errsQ) > 0 {
			sq, err := metrics.Summarize(errsQ)
			if err != nil {
				return err
			}
			sp, err := metrics.Summarize(errsPR)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "\nprediction of %s over %d changed pages:\n",
				al.Labels[len(ranks)-1], len(errsQ))
			fmt.Fprintf(out, "  avg rel. error  Q(p): %.3f   PR(now): %.3f\n", sq.Mean, sp.Mean)
			fmt.Fprintf(out, "  median          Q(p): %.3f   PR(now): %.3f\n", sq.Median, sp.Median)
		}
	}
	return nil
}
