package main

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"pagequality/internal/graph"
	"pagequality/internal/snapshot"
)

func storeWithBowTie(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(8))
	g, err := graph.GenerateBowTie(graph.BowTieConfig{
		Core: 40, In: 20, Out: 25, Tendrils: 10, AvgDegree: 3,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "web.pqs")
	if err := snapshot.WriteFile(path, []snapshot.Snapshot{
		{Label: "t1", Time: 0, Graph: g},
	}); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnalyzeReportsStructure(t *testing.T) {
	path := storeWithBowTie(t)
	var buf bytes.Buffer
	if err := run([]string{"-in", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"95 pages", "bow-tie decomposition",
		"CORE", "IN", "OUT", "TENDRIL",
		"strongly connected components",
		"in-degree", "out-degree", "dangling pages",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The generated core has 40 pages; the report must say so.
	if !strings.Contains(out, "CORE") || !strings.Contains(out, "40") {
		t.Fatalf("core size missing:\n%s", out)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-in", filepath.Join(t.TempDir(), "none.pqs")}, &buf); err == nil {
		t.Fatal("missing store accepted")
	}
	path := storeWithBowTie(t)
	if err := run([]string{"-in", path, "-snapshot", "zz"}, &buf); err == nil {
		t.Fatal("unknown label accepted")
	}
}

func TestAnalyzeReportsReciprocityAndClustering(t *testing.T) {
	path := storeWithBowTie(t)
	var buf bytes.Buffer
	if err := run([]string{"-in", path}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"edge reciprocity", "clustering coefficient"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("output missing %q", want)
		}
	}
}
