// Command analyze reports the structural properties of one snapshot —
// bow-tie decomposition (Broder et al. [6]), degree distributions and the
// power-law exponent (Barabási–Albert [3, 4]) — the checks the paper's
// related work uses to characterise Web graphs.
//
// Usage:
//
//	analyze -in web.pqs [-snapshot t3]
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"

	"pagequality/internal/graph"
	"pagequality/internal/snapshot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	var (
		in    = fs.String("in", "web.pqs", "snapshot store path")
		label = fs.String("snapshot", "", "snapshot label (default: last)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	snaps, err := snapshot.ReadFile(*in)
	if err != nil {
		return err
	}
	if len(snaps) == 0 {
		return fmt.Errorf("store %s is empty", *in)
	}
	snap := snaps[len(snaps)-1]
	if *label != "" {
		found := false
		for _, s := range snaps {
			if s.Label == *label {
				snap, found = s, true
				break
			}
		}
		if !found {
			return fmt.Errorf("no snapshot labelled %q in %s", *label, *in)
		}
	}
	c := graph.Freeze(snap.Graph)
	fmt.Fprintf(out, "snapshot %s (week %.1f): %d pages, %d links\n",
		snap.Label, snap.Time, c.NumNodes(), c.NumEdges())
	if c.NumNodes() == 0 {
		return nil
	}

	// Bow-tie decomposition.
	bt := graph.BowTie(c)
	fmt.Fprintln(out, "\nbow-tie decomposition (Broder et al.):")
	order := []graph.Region{
		graph.RegionCore, graph.RegionIn, graph.RegionOut,
		graph.RegionTendril, graph.RegionDisconnected,
	}
	for _, r := range order {
		n := bt.Counts[r]
		fmt.Fprintf(out, "  %-13s %7d  (%.1f%%)\n", r, n, 100*float64(n)/float64(c.NumNodes()))
	}

	// Strongly connected components.
	comp, ncomp := graph.SCC(c)
	sizes := make(map[int]int)
	for _, ci := range comp {
		sizes[ci]++
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	fmt.Fprintf(out, "\nstrongly connected components: %d (largest %d)\n", ncomp, largest)

	// Degree statistics and power-law fit.
	for _, dir := range []struct {
		name string
		in   bool
	}{{"in-degree", true}, {"out-degree", false}} {
		degs := graph.Degrees(c, dir.in)
		sort.Ints(degs)
		sum := 0
		for _, d := range degs {
			sum += d
		}
		mean := float64(sum) / float64(len(degs))
		median := degs[len(degs)/2]
		maxDeg := degs[len(degs)-1]
		alpha, tail := graph.PowerLawAlpha(degs, max(2, median))
		fmt.Fprintf(out, "\n%s: mean %.2f, median %d, max %d\n", dir.name, mean, median, maxDeg)
		if tail > 0 {
			fmt.Fprintf(out, "  power-law tail (k >= %d): alpha = %.2f over %d pages\n",
				max(2, median), alpha, tail)
		}
	}

	// Dangling pages matter to PageRank's policy choice.
	fmt.Fprintf(out, "\ndangling pages (no out-links): %d\n", len(c.Danglings()))

	// Reciprocity and clustering, the remaining standard Web statistics.
	fmt.Fprintf(out, "edge reciprocity: %.3f\n", graph.Reciprocity(c))
	rng := rand.New(rand.NewSource(1))
	samples := 0
	if c.NumNodes() > 5000 {
		samples = 2000
	}
	fmt.Fprintf(out, "avg clustering coefficient: %.3f\n",
		graph.ClusteringCoefficient(c, samples, rng))
	return nil
}
