package main

import (
	"context"
	"sync/atomic"
	"time"
)

// limiter is the admission controller in front of the search path: a
// counting semaphore bounding the number of in-flight searches, with a
// bounded wait for a slot. Under overload the goroutine-per-connection
// model otherwise admits every request, and queueing moves into the
// scheduler where latency grows without bound for everyone; shedding the
// excess with 503 + Retry-After keeps latency bounded for the requests
// that are admitted and tells well-behaved clients when to come back.
//
// A nil *limiter admits everything — the tests that construct a bare
// service get the historical unlimited behaviour.
type limiter struct {
	sem     chan struct{}
	maxWait time.Duration

	admitted atomic.Uint64
	shed     atomic.Uint64
}

// newLimiter builds a limiter admitting at most maxInflight concurrent
// requests, each waiting at most maxWait for a slot before being shed
// (maxWait 0 sheds immediately on saturation). maxInflight < 1 returns
// nil: unlimited.
func newLimiter(maxInflight int, maxWait time.Duration) *limiter {
	if maxInflight < 1 {
		return nil
	}
	return &limiter{sem: make(chan struct{}, maxInflight), maxWait: maxWait}
}

// acquire takes one in-flight slot, reporting false — after counting the
// shed — when none frees up within maxWait or the caller's context ends
// first. Every true return must be paired with exactly one release.
func (l *limiter) acquire(ctx context.Context) bool {
	if l == nil {
		return true
	}
	select {
	case l.sem <- struct{}{}:
		l.admitted.Add(1)
		return true
	default:
	}
	if l.maxWait > 0 {
		t := time.NewTimer(l.maxWait)
		defer t.Stop()
		select {
		case l.sem <- struct{}{}:
			l.admitted.Add(1)
			return true
		case <-t.C:
		case <-ctx.Done():
		}
	}
	l.shed.Add(1)
	return false
}

// release returns one in-flight slot.
func (l *limiter) release() {
	if l != nil {
		<-l.sem
	}
}

// inflight returns the number of currently admitted requests.
func (l *limiter) inflight() int {
	if l == nil {
		return 0
	}
	return len(l.sem)
}

// limit returns the admission capacity, 0 meaning unlimited.
func (l *limiter) limit() int {
	if l == nil {
		return 0
	}
	return cap(l.sem)
}

// counters returns the lifetime admitted and shed request counts.
func (l *limiter) counters() (admitted, shed uint64) {
	if l == nil {
		return 0, 0
	}
	return l.admitted.Load(), l.shed.Load()
}
