package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"pagequality/internal/webcorpus"
)

func TestQueryCacheLRU(t *testing.T) {
	c := newQueryCache(1, 3) // one shard: fully deterministic LRU order
	k := func(i int) queryKey { return queryKey{q: fmt.Sprintf("q%d", i), k: 10, rank: "quality"} }
	body := func(i int) []byte { return []byte(fmt.Sprintf("body%d", i)) }

	if _, ok := c.get(k(1)); ok {
		t.Fatal("hit on empty cache")
	}
	for i := 1; i <= 3; i++ {
		c.put(k(i), body(i))
	}
	if got := c.entries(); got != 3 {
		t.Fatalf("entries = %d, want 3", got)
	}
	// Touch 1 so 2 becomes the LRU victim.
	if b, ok := c.get(k(1)); !ok || !bytes.Equal(b, body(1)) {
		t.Fatalf("get(1) = %q, %v", b, ok)
	}
	c.put(k(4), body(4))
	if _, ok := c.get(k(2)); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	for _, i := range []int{1, 3, 4} {
		if b, ok := c.get(k(i)); !ok || !bytes.Equal(b, body(i)) {
			t.Fatalf("entry %d lost: %q, %v", i, b, ok)
		}
	}
	// Re-putting an existing key updates in place, no eviction.
	c.put(k(4), body(40))
	if b, _ := c.get(k(4)); !bytes.Equal(b, body(40)) {
		t.Fatalf("update in place failed: %q", b)
	}
	hits, misses, _, evictions := c.counters()
	if hits != 5 || misses != 2 || evictions != 1 {
		t.Fatalf("counters = %d/%d/%d, want 5/2/1", hits, misses, evictions)
	}
	if got := c.entries(); got != 3 {
		t.Fatalf("entries = %d, want 3 (bounded)", got)
	}
}

func TestQueryCacheConstruction(t *testing.T) {
	if c := newQueryCache(16, 0); c != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
	// A nil cache is inert but safe.
	var c *queryCache
	c.put(queryKey{q: "x"}, []byte("y"))
	if _, ok := c.get(queryKey{q: "x"}); ok {
		t.Fatal("nil cache hit")
	}
	if c.entries() != 0 || c.capacity() != 0 {
		t.Fatal("nil cache has size")
	}
	h, m, co, e := c.counters()
	if h != 0 || m != 0 || co != 0 || e != 0 {
		t.Fatal("nil cache has counters")
	}
	if body, err := c.getOrCompute(queryKey{q: "x"}, func() ([]byte, error) { return []byte("y"), nil }); err != nil || string(body) != "y" {
		t.Fatalf("nil cache getOrCompute = %q, %v", body, err)
	}
	c.purge(1)
	// Shards never exceed capacity; total capacity rounds up.
	c = newQueryCache(16, 5)
	if len(c.shards) != 5 {
		t.Fatalf("shards = %d, want clamped to 5", len(c.shards))
	}
	if c.capacity() < 5 {
		t.Fatalf("capacity = %d, want >= 5", c.capacity())
	}
	// Distinct keys must spread over shards (FNV over all fields).
	seen := map[*cacheShard]bool{}
	for i := 0; i < 100; i++ {
		seen[c.shard(queryKey{q: fmt.Sprintf("query-%d", i), k: i % 7, rank: "quality"})] = true
	}
	if len(seen) < 2 {
		t.Fatal("all keys hash to one shard")
	}
}

// TestServiceQueryCache drives the cache through the HTTP handler: a cold
// query misses and is stored, a repeat hits and returns byte-identical
// output, (q, k, rank) variations occupy distinct entries, and bad
// requests never populate the cache.
func TestServiceQueryCache(t *testing.T) {
	storePath, archiveDir := buildFixture(t)
	svc, err := buildService(storePath, archiveDir, "", 3, defaultQCfg(), 64)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	defer ts.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := httpGet(ts.Client(), ts.URL+path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	topic := webcorpus.SiteTopic(0)
	code, cold := get("/search?q=" + topic + "&k=5")
	if code != http.StatusOK {
		t.Fatalf("cold query: status %d", code)
	}
	if h, m, _, _ := svc.cache.counters(); h != 0 || m != 1 {
		t.Fatalf("after cold query: hits=%d misses=%d", h, m)
	}
	_, warm := get("/search?q=" + topic + "&k=5")
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cached response differs:\ncold: %s\nwarm: %s", cold, warm)
	}
	if h, m, _, _ := svc.cache.counters(); h != 1 || m != 1 {
		t.Fatalf("after warm query: hits=%d misses=%d", h, m)
	}
	// The default rank and the explicit rank=quality share one entry.
	_, explicit := get("/search?q=" + topic + "&k=5&rank=quality")
	if !bytes.Equal(cold, explicit) {
		t.Fatal("rank=quality not served from the default-rank entry")
	}
	if h, _, _, _ := svc.cache.counters(); h != 2 {
		t.Fatal("explicit rank=quality missed the cache")
	}
	// Different k and rank are different keys.
	get("/search?q=" + topic + "&k=6")
	get("/search?q=" + topic + "&k=5&rank=pagerank")
	if n := svc.cache.entries(); n != 3 {
		t.Fatalf("entries = %d, want 3 (k=5/quality, k=6/quality, k=5/pagerank)", n)
	}
	// Bad requests are rejected before or instead of being cached.
	if code, _ := get("/search?q=...&k=5"); code != http.StatusBadRequest {
		t.Fatalf("bad query status %d", code)
	}
	if n := svc.cache.entries(); n != 3 {
		t.Fatalf("bad request was cached: %d entries", n)
	}
}

// TestServiceCacheConcurrent hammers the handler from many goroutines
// with more distinct queries than the cache can hold, under -race:
// every response must equal the serially recorded answer, the entry
// count must stay bounded, eviction pressure must be visible, and the
// hit/miss counters must account for every lookup.
func TestServiceCacheConcurrent(t *testing.T) {
	storePath, archiveDir := buildFixture(t)
	svc, err := buildService(storePath, archiveDir, "", 3, defaultQCfg(), 8)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	defer ts.Close()

	// 24 distinct (q, k) keys over an 8-entry cache.
	paths := make([]string, 0, 24)
	for site := 0; site < 8; site++ {
		for _, k := range []int{3, 5, 9} {
			paths = append(paths, fmt.Sprintf("/search?q=%s&k=%d", webcorpus.SiteTopic(site), k))
		}
	}
	want := make(map[string][]byte, len(paths))
	for _, p := range paths {
		resp, err := httpGet(ts.Client(), ts.URL+p)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d %v", p, resp.StatusCode, err)
		}
		want[p] = body
	}

	const workers, iters = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				p := paths[(w*7+it)%len(paths)]
				resp, err := httpGet(ts.Client(), ts.URL+p)
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("%s: %d %v", p, resp.StatusCode, err)
					return
				}
				if !bytes.Equal(body, want[p]) {
					t.Errorf("%s: concurrent response differs from serial", p)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	hits, misses, coalesced, evictions := svc.cache.counters()
	total := uint64(len(paths) + workers*iters)
	// Every lookup is exactly one of hit, miss (flight leader) or
	// coalesced waiter.
	if hits+misses+coalesced != total {
		t.Fatalf("hits %d + misses %d + coalesced %d != %d lookups", hits, misses, coalesced, total)
	}
	if evictions == 0 {
		t.Fatal("no evictions despite 24 keys over an 8-entry cache")
	}
	if n, c := svc.cache.entries(), svc.cache.capacity(); n > c {
		t.Fatalf("entries %d exceed capacity %d", n, c)
	}
	// /stats must reflect the same counters.
	resp, err := httpGet(ts.Client(), ts.URL+"/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]uint64
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats["cache_hits"] != hits || stats["cache_misses"] != misses || stats["cache_evictions"] != evictions {
		t.Fatalf("stats %v disagree with counters %d/%d/%d", stats, hits, misses, evictions)
	}
}
