package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"pagequality/internal/crawler"
	"pagequality/internal/pagestore"
	"pagequality/internal/quality"
	"pagequality/internal/snapshot"
	"pagequality/internal/webcorpus"
	"pagequality/internal/webserver"
)

// buildFixture grows a corpus, crawls it three times over HTTP (archiving
// bodies under t1..t3), and writes the snapshot store — the exact inputs
// qualityserve consumes in production.
func buildFixture(t testing.TB) (storePath, archiveDir string) {
	t.Helper()
	cfg := webcorpus.DefaultConfig()
	cfg.Sites = 10
	cfg.InitialPagesPerSite = 6
	cfg.Users = 3000
	cfg.VisitRate = 3000
	cfg.LinkProb = 0.2
	cfg.BirthRate = 2
	cfg.BurnInWeeks = 20
	cfg.Seed = 14
	sim, err := webcorpus.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	storePath = filepath.Join(dir, "web.pqs")
	archiveDir = filepath.Join(dir, "pages")
	arch, err := pagestore.Open(archiveDir, pagestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()

	texts := func() []string { return sim.AllTexts(webcorpus.TextOptions{MinWords: 20, MaxWords: 40}) }
	var snaps []snapshot.Snapshot
	for k, week := range []float64{0, 4, 8} {
		sim.AdvanceTo(week)
		srv, err := webserver.New(sim.Graph().Clone(), texts())
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		seeds, err := crawler.FetchSeeds(context.Background(), ts.Client(), ts.URL+"/seeds.txt")
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("t%d", k+1)
		res, err := crawler.Crawl(crawler.Config{
			Seeds:  seeds,
			Client: ts.Client(),
			OnFetch: func(u string, body []byte) {
				if err := arch.Put(label+"/"+u, pagestore.Meta{FetchedAt: week, Status: 200}, body); err != nil {
					t.Error(err)
				}
			},
		})
		ts.Close()
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snapshot.Snapshot{Label: label, Time: week, Graph: res.Graph})
	}
	if err := snapshot.WriteFile(storePath, snaps); err != nil {
		t.Fatal(err)
	}
	return storePath, archiveDir
}

func defaultQCfg() quality.Config {
	return quality.Config{C: 1.0, MinChangeFrac: 0.05, ApplyTrendToDecreasing: true, MaxTrend: 0.3}
}

func TestServiceSearch(t *testing.T) {
	storePath, archiveDir := buildFixture(t)
	svc, err := buildService(storePath, archiveDir, "", 3, defaultQCfg(), 64)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	defer ts.Close()

	// Query the topic of site 0 under each ranking mode.
	topic := webcorpus.SiteTopic(0)
	for _, mode := range []string{"", "quality", "pagerank", "relevance"} {
		u := ts.URL + "/search?q=" + topic + "&k=5"
		if mode != "" {
			u += "&rank=" + mode
		}
		resp, err := httpGet(ts.Client(), u)
		if err != nil {
			t.Fatal(err)
		}
		var hits []hitJSON
		if err := json.NewDecoder(resp.Body).Decode(&hits); err != nil {
			t.Fatalf("mode %q: %v", mode, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mode %q: status %d", mode, resp.StatusCode)
		}
		if len(hits) == 0 {
			t.Fatalf("mode %q: no hits for %q", mode, topic)
		}
		for _, h := range hits {
			if h.URL == "" || h.Score <= 0 {
				t.Fatalf("mode %q: bad hit %+v", mode, h)
			}
			if !strings.Contains(h.URL, ".example/") {
				t.Fatalf("mode %q: non-canonical URL %q", mode, h.URL)
			}
		}
		// Results must be in descending score order.
		for i := 1; i < len(hits); i++ {
			if hits[i].Score > hits[i-1].Score+1e-12 {
				t.Fatalf("mode %q: results not sorted", mode)
			}
		}
	}
}

func TestServiceStatsAndHealth(t *testing.T) {
	storePath, archiveDir := buildFixture(t)
	svc, err := buildService(storePath, archiveDir, "", 3, defaultQCfg(), 64)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	defer ts.Close()
	resp, err := httpGet(ts.Client(), ts.URL+"/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()
	resp, err = httpGet(ts.Client(), ts.URL+"/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats["documents"] == 0 || stats["terms"] == 0 {
		t.Fatalf("stats = %v", stats)
	}
	// The query-cache fields are always present; this service has made no
	// searches, so the counters are zero and the capacity is as built.
	for _, field := range []string{"cache_hits", "cache_misses", "cache_evictions", "cache_entries", "cache_capacity"} {
		if _, ok := stats[field]; !ok {
			t.Fatalf("stats missing %q: %v", field, stats)
		}
	}
	if stats["cache_capacity"] < 64 {
		t.Fatalf("cache_capacity = %d, want >= 64", stats["cache_capacity"])
	}
	if stats["cache_hits"] != 0 || stats["cache_misses"] != 0 || stats["cache_entries"] != 0 {
		t.Fatalf("fresh service has non-zero cache stats: %v", stats)
	}
}

// TestServerHasTimeouts pins the production listener configuration: every
// timeout that protects the server from a slow client must be set.
func TestServerHasTimeouts(t *testing.T) {
	srv := newServer("127.0.0.1:0", http.NotFoundHandler())
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Fatalf("server timeouts unset: %+v", srv)
	}
	if srv.Addr != "127.0.0.1:0" || srv.Handler == nil {
		t.Fatalf("server miswired: %+v", srv)
	}
}

func TestServiceBadRequests(t *testing.T) {
	storePath, archiveDir := buildFixture(t)
	svc, err := buildService(storePath, archiveDir, "", 3, defaultQCfg(), 64)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	defer ts.Close()
	for _, path := range []string{
		"/search",                // missing q
		"/search?q=x&k=0",        // bad k
		"/search?q=x&k=zzz",      // bad k
		"/search?q=x&rank=bogus", // bad mode
		"/search?q=...",          // tokenizes to nothing
	} {
		resp, err := httpGet(ts.Client(), ts.URL+path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s -> %d, want 400", path, resp.StatusCode)
		}
	}
	resp, err := httpGet(ts.Client(), ts.URL+"/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path -> %d", resp.StatusCode)
	}
}

func TestBuildServiceErrors(t *testing.T) {
	storePath, archiveDir := buildFixture(t)
	if _, err := buildService(filepath.Join(t.TempDir(), "none.pqs"), archiveDir, "", 3, defaultQCfg(), 0); err == nil {
		t.Fatal("missing store accepted")
	}
	if _, err := buildService(storePath, t.TempDir(), "", 3, defaultQCfg(), 0); err == nil {
		t.Fatal("empty archive accepted")
	}
	if _, err := buildService(storePath, archiveDir, "zz", 3, defaultQCfg(), 0); err == nil {
		t.Fatal("unknown label accepted")
	}
	if _, err := buildService(storePath, archiveDir, "", 9, defaultQCfg(), 0); err == nil {
		t.Fatal("snaps beyond series accepted")
	}
}

func TestRunWiresListener(t *testing.T) {
	storePath, archiveDir := buildFixture(t)
	var buf bytes.Buffer
	called := false
	listen := func(addr string, h http.Handler) error {
		called = true
		if h == nil {
			t.Fatal("nil handler")
		}
		return nil
	}
	err := run([]string{"-store", storePath, "-archive", archiveDir, "-addr", "127.0.0.1:0"}, &buf, listen)
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("listener not invoked")
	}
	if !strings.Contains(buf.String(), "indexed") {
		t.Fatalf("banner missing:\n%s", buf.String())
	}
	if err := run([]string{"-store", storePath}, &buf, listen); err == nil {
		t.Fatal("missing -archive accepted")
	}
}

// httpGet issues a GET carrying an explicit context, so test traffic
// meets the same ctxhttp cancellation discipline as the serving stack.
func httpGet(c *http.Client, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.Do(req)
}
