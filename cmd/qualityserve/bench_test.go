package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"pagequality/internal/webcorpus"
)

// benchService builds one service over the crawl fixture with the given
// cache capacity (0 disables the cache, isolating the uncached path).
func benchService(b *testing.B, cacheSize int) *service {
	b.Helper()
	storePath, archiveDir := buildFixture(b)
	svc, err := buildService(storePath, archiveDir, "", 3, defaultQCfg(), cacheSize)
	if err != nil {
		b.Fatal(err)
	}
	return svc
}

// BenchmarkServeSearch times one /search request through the full HTTP
// handler: cold runs with the cache disabled (every request searches and
// encodes), cached runs with a warm cache (every request is a hit).
func BenchmarkServeSearch(b *testing.B) {
	query := "/search?q=" + webcorpus.SiteTopic(0) + "+" + webcorpus.SiteTopic(1) + "&k=10"
	for _, bench := range []struct {
		name      string
		cacheSize int
	}{{"cold", 0}, {"cached", 1024}} {
		b.Run(bench.name, func(b *testing.B) {
			svc := benchService(b, bench.cacheSize)
			warm := httptest.NewRequest(http.MethodGet, query, nil)
			svc.ServeHTTP(httptest.NewRecorder(), warm)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := httptest.NewRecorder()
				svc.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, query, nil))
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d", rec.Code)
				}
			}
		})
	}
}

// BenchmarkServeConcurrentClients drives the service over real HTTP with
// parallel clients rotating through a query mix that fits in the cache,
// measuring serving throughput under contention (shard locks, pooled
// encoders, keep-alive connections).
func BenchmarkServeConcurrentClients(b *testing.B) {
	svc := benchService(b, 1024)
	ts := httptest.NewServer(svc)
	defer ts.Close()
	paths := make([]string, 0, 16)
	for site := 0; site < 8; site++ {
		for _, k := range []int{5, 10} {
			paths = append(paths, fmt.Sprintf("%s/search?q=%s&k=%d", ts.URL, webcorpus.SiteTopic(site), k))
		}
	}
	client := ts.Client()
	for _, p := range paths { // warm the cache so steady state is measured
		resp, err := httpGet(client, p)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p := paths[next.Add(1)%uint64(len(paths))]
			resp, err := httpGet(client, p)
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
		}
	})
}
