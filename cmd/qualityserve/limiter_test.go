package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pagequality/internal/webcorpus"
)

// TestLimiterBasics pins the semaphore semantics: capacity admits, excess
// sheds (fail-fast at maxWait 0), releases free slots, counters track
// lifetime admitted/shed, and the nil limiter admits everything.
func TestLimiterBasics(t *testing.T) {
	l := newLimiter(2, 0)
	ctx := context.Background()
	if !l.acquire(ctx) || !l.acquire(ctx) {
		t.Fatal("capacity slots refused")
	}
	if l.inflight() != 2 || l.limit() != 2 {
		t.Fatalf("inflight=%d limit=%d, want 2/2", l.inflight(), l.limit())
	}
	if l.acquire(ctx) {
		t.Fatal("admitted past capacity")
	}
	l.release()
	if !l.acquire(ctx) {
		t.Fatal("freed slot refused")
	}
	l.release()
	l.release()
	if l.inflight() != 0 {
		t.Fatalf("inflight=%d after full release", l.inflight())
	}
	admitted, shed := l.counters()
	if admitted != 3 || shed != 1 {
		t.Fatalf("admitted=%d shed=%d, want 3/1", admitted, shed)
	}

	// maxInflight < 1 disables limiting entirely.
	var unlimited *limiter = newLimiter(0, 0)
	if unlimited != nil {
		t.Fatal("limit 0 built a limiter")
	}
	if !unlimited.acquire(ctx) || unlimited.limit() != 0 || unlimited.inflight() != 0 {
		t.Fatal("nil limiter must admit for free")
	}
	unlimited.release()
}

// TestLimiterBoundedWait: a saturated limiter holds a request for up to
// maxWait — a release within the window admits it, a cancelled context
// sheds it immediately.
func TestLimiterBoundedWait(t *testing.T) {
	l := newLimiter(1, time.Minute)
	if !l.acquire(context.Background()) {
		t.Fatal("first acquire refused")
	}
	admittedCh := make(chan bool)
	go func() { admittedCh <- l.acquire(context.Background()) }()
	l.release() // frees the slot while the second caller waits
	if !<-admittedCh {
		t.Fatal("waiter not admitted after release")
	}

	// A caller whose context dies while waiting is shed without burning
	// the full maxWait.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if l.acquire(ctx) {
		t.Fatal("cancelled waiter admitted on a saturated limiter")
	}
	l.release()
	if l.inflight() != 0 {
		t.Fatalf("inflight=%d after drain", l.inflight())
	}
}

// TestLimiterRace hammers acquire/release from many goroutines (run
// under -race): the admitted count may never exceed the capacity at any
// instant, every admission is released exactly once, and afterwards no
// permit is lost — the limiter drains to zero and still admits.
func TestLimiterRace(t *testing.T) {
	const capacity = 4
	l := newLimiter(capacity, 0)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	const goroutines = 32
	const iters = 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if !l.acquire(context.Background()) {
					continue
				}
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				cur.Add(-1)
				l.release()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > capacity {
		t.Fatalf("observed %d concurrent admissions, capacity %d", p, capacity)
	}
	if l.inflight() != 0 {
		t.Fatalf("inflight=%d after drain — lost permits", l.inflight())
	}
	admitted, shed := l.counters()
	if admitted+shed != goroutines*iters {
		t.Fatalf("admitted=%d + shed=%d != %d attempts", admitted, shed, goroutines*iters)
	}
	// No permit lost: a full capacity's worth of slots is still available.
	for i := 0; i < capacity; i++ {
		if !l.acquire(context.Background()) {
			t.Fatalf("slot %d unavailable after drain", i)
		}
	}
	defer func() {
		for i := 0; i < capacity; i++ {
			l.release()
		}
	}()
	if l.acquire(context.Background()) {
		t.Fatal("admitted past capacity after drain")
	}
}

// TestServiceSheds503 drives admission control through the HTTP surface:
// with every slot occupied, /search sheds with 503 + Retry-After and the
// shed counter reaches /stats; with slots free it serves 200s again —
// saturation is a state, not a ratchet.
func TestServiceSheds503(t *testing.T) {
	storePath, archiveDir := buildFixture(t)
	svc, err := buildServiceCfg(storePath, archiveDir, "", 3, defaultQCfg(),
		serveConfig{cacheSize: 64, shards: 2, maxInflight: 2, maxWait: 0})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	defer ts.Close()
	query := ts.URL + "/search?q=" + webcorpus.SiteTopic(0) + "&k=5"

	// Saturate: occupy both slots as two stuck in-flight requests would.
	if !svc.lim.acquire(context.Background()) || !svc.lim.acquire(context.Background()) {
		t.Fatal("could not occupy admission slots")
	}
	const burst = 20
	var wg sync.WaitGroup
	var got503 atomic.Int64
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := httpGet(ts.Client(), query)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Errorf("saturated status = %d, want 503", resp.StatusCode)
				return
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Error("503 without Retry-After")
				return
			}
			got503.Add(1)
		}()
	}
	wg.Wait()
	if got503.Load() != burst {
		t.Fatalf("%d/%d requests shed", got503.Load(), burst)
	}
	if _, shed := svc.lim.counters(); shed != burst {
		t.Fatalf("shed counter = %d, want %d", shed, burst)
	}

	// /stats itself is never admission-limited and reports the shedding.
	resp, err := httpGet(ts.Client(), ts.URL+"/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats["shed"] != burst || stats["max_inflight"] != 2 || stats["inflight"] != 2 || stats["shards"] != 2 {
		t.Fatalf("stats = %v, want shed=%d max_inflight=2 inflight=2 shards=2", stats, burst)
	}

	// Drain and verify no permit was lost: the service admits again.
	svc.lim.release()
	svc.lim.release()
	resp, err = httpGet(ts.Client(), query)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain status = %d, want 200", resp.StatusCode)
	}
	if svc.lim.inflight() != 0 {
		t.Fatalf("inflight = %d after quiescence — lost permits", svc.lim.inflight())
	}
}

// TestRunFlagValidation pins the CLI contract of the new serving flags:
// zero or negative shard and admission values are rejected before any
// expensive load begins, mirroring search.Options validation.
func TestRunFlagValidation(t *testing.T) {
	listen := func(string, http.Handler) error { return nil }
	for _, args := range [][]string{
		{"-archive", "x", "-shards", "0"},
		{"-archive", "x", "-shards", "-2"},
		{"-archive", "x", "-shard-workers", "-1"},
		{"-archive", "x", "-max-inflight", "0"},
		{"-archive", "x", "-max-inflight", "-5"},
		{"-archive", "x", "-max-wait", "-1s"},
	} {
		var sb strings.Builder
		if err := run(args, &sb, listen); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// TestRunShardsClamped: a shard count beyond the corpus is clamped to the
// document count (never an error), matching the search.Options TopK
// convention, and the banner reports the effective geometry.
func TestRunShardsClamped(t *testing.T) {
	storePath, archiveDir := buildFixture(t)
	var sb strings.Builder
	listen := func(string, http.Handler) error { return nil }
	err := run([]string{"-store", storePath, "-archive", archiveDir,
		"-shards", "1000000", "-max-inflight", "8"}, &sb, listen)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "shards") {
		t.Fatalf("banner missing shard count:\n%s", sb.String())
	}
}
