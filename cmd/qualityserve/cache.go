package main

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// queryKey identifies one cacheable search request. The index, the
// quality estimates and the PageRank vector are all immutable for the
// life of the process, so a response cached under a key never goes
// stale: entries leave the cache only under LRU pressure.
type queryKey struct {
	q    string
	k    int
	rank string
}

// queryCache is a sharded LRU cache of encoded /search response bodies.
// A key hashes (FNV-1a) to one shard; each shard is an independent
// mutex + map + recency list, so concurrent clients contend only when
// they collide on a shard rather than on one global lock. Hit, miss and
// eviction counts are process-wide atomics surfaced in /stats.
//
// A nil *queryCache is valid and means caching is disabled: lookups
// miss for free and stores are dropped.
type queryCache struct {
	shards    []cacheShard
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type cacheShard struct {
	mu  sync.Mutex
	cap int
	m   map[queryKey]*list.Element
	ll  *list.List // front = most recently used; values are *cacheEntry
}

type cacheEntry struct {
	key  queryKey
	body []byte
}

// newQueryCache builds a cache holding at most capacity entries spread
// over nShards shards (capacity rounds up to a multiple of nShards).
// Capacity <= 0 disables caching by returning nil.
func newQueryCache(nShards, capacity int) *queryCache {
	if capacity <= 0 {
		return nil
	}
	if nShards < 1 {
		nShards = 1
	}
	if nShards > capacity {
		nShards = capacity
	}
	per := (capacity + nShards - 1) / nShards
	c := &queryCache{shards: make([]cacheShard, nShards)}
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].m = make(map[queryKey]*list.Element, per+1)
		c.shards[i].ll = list.New()
	}
	return c
}

// shard hashes the key to its shard with FNV-1a over all three fields.
func (c *queryCache) shard(k queryKey) *cacheShard {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(k.q); i++ {
		h = (h ^ uint64(k.q[i])) * prime64
	}
	h = (h ^ uint64(k.k)) * prime64
	for i := 0; i < len(k.rank); i++ {
		h = (h ^ uint64(k.rank[i])) * prime64
	}
	return &c.shards[h%uint64(len(c.shards))]
}

// get returns the cached response body for the key, promoting the entry
// to most recently used. The returned slice is shared and must not be
// mutated (handlers only write it to the wire).
func (c *queryCache) get(k queryKey) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(k)
	var body []byte
	s.mu.Lock()
	if e, ok := s.m[k]; ok {
		s.ll.MoveToFront(e)
		body = e.Value.(*cacheEntry).body
	}
	s.mu.Unlock()
	if body == nil {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return body, true
}

// put stores the response body under the key, evicting the shard's least
// recently used entry if the shard is full.
func (c *queryCache) put(k queryKey, body []byte) {
	if c == nil {
		return
	}
	s := c.shard(k)
	evicted := false
	s.mu.Lock()
	if e, ok := s.m[k]; ok {
		e.Value.(*cacheEntry).body = body
		s.ll.MoveToFront(e)
	} else {
		s.m[k] = s.ll.PushFront(&cacheEntry{key: k, body: body})
		if s.ll.Len() > s.cap {
			back := s.ll.Back()
			s.ll.Remove(back)
			delete(s.m, back.Value.(*cacheEntry).key)
			evicted = true
		}
	}
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	}
}

// counters returns the lifetime hit, miss and eviction counts.
func (c *queryCache) counters() (hits, misses, evictions uint64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// entries returns the current number of live entries across shards.
func (c *queryCache) entries() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// capacity returns the maximum number of entries the cache can hold.
func (c *queryCache) capacity() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		n += c.shards[i].cap
	}
	return n
}
