package main

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// queryKey identifies one cacheable search request. The generation id is
// part of the key: the index and the score vectors are immutable within a
// generation, so a cached response can never go stale — a refresh swap
// changes the id, which makes every older entry unreachable instantly and
// atomically with the swap. Stale entries are then reclaimed by purge (or
// by ordinary LRU pressure).
type queryKey struct {
	gen  uint64
	q    string
	k    int
	rank string
}

// queryCache is a sharded LRU cache of encoded /search response bodies
// with per-key singleflight. A key hashes (FNV-1a) to one shard; each
// shard is an independent mutex + map + recency list, so concurrent
// clients contend only when they collide on a shard rather than on one
// global lock. Hit, miss, coalesced and eviction counts are process-wide
// atomics surfaced in /stats.
//
// A nil *queryCache is valid and means caching is disabled: lookups
// miss for free, stores are dropped, and getOrCompute always computes.
type queryCache struct {
	shards    []cacheShard
	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	evictions atomic.Uint64
}

type cacheShard struct {
	mu     sync.Mutex
	cap    int
	m      map[queryKey]*list.Element
	ll     *list.List // front = most recently used; values are *cacheEntry
	flight map[queryKey]*flightCall
}

type cacheEntry struct {
	key  queryKey
	body []byte
}

// flightCall is one in-progress compute that waiters coalesce onto.
// body and err are written before done closes and read only after.
type flightCall struct {
	done chan struct{}
	body []byte
	err  error
}

// newQueryCache builds a cache holding at most capacity entries spread
// over nShards shards (capacity rounds up to a multiple of nShards).
// Capacity <= 0 disables caching by returning nil.
func newQueryCache(nShards, capacity int) *queryCache {
	if capacity <= 0 {
		return nil
	}
	if nShards < 1 {
		nShards = 1
	}
	if nShards > capacity {
		nShards = capacity
	}
	per := (capacity + nShards - 1) / nShards
	c := &queryCache{shards: make([]cacheShard, nShards)}
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].m = make(map[queryKey]*list.Element, per+1)
		c.shards[i].ll = list.New()
		c.shards[i].flight = make(map[queryKey]*flightCall)
	}
	return c
}

// shard hashes the key to its shard with FNV-1a over all fields.
func (c *queryCache) shard(k queryKey) *cacheShard {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for s := 0; s < 64; s += 8 {
		h = (h ^ (k.gen >> s & 0xff)) * prime64
	}
	for i := 0; i < len(k.q); i++ {
		h = (h ^ uint64(k.q[i])) * prime64
	}
	h = (h ^ uint64(k.k)) * prime64
	for i := 0; i < len(k.rank); i++ {
		h = (h ^ uint64(k.rank[i])) * prime64
	}
	return &c.shards[h%uint64(len(c.shards))]
}

// get returns the cached response body for the key, promoting the entry
// to most recently used. The returned slice is shared and must not be
// mutated (handlers only write it to the wire).
func (c *queryCache) get(k queryKey) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(k)
	var body []byte
	s.mu.Lock()
	if e, ok := s.m[k]; ok {
		s.ll.MoveToFront(e)
		body = e.Value.(*cacheEntry).body
	}
	s.mu.Unlock()
	if body == nil {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return body, true
}

// put stores the response body under the key, evicting the shard's least
// recently used entry if the shard is full.
func (c *queryCache) put(k queryKey, body []byte) {
	if c == nil {
		return
	}
	s := c.shard(k)
	s.mu.Lock()
	evicted := s.insertLocked(k, body)
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	}
}

// insertLocked adds or refreshes an entry and reports whether an LRU
// victim was evicted. Caller holds s.mu.
func (s *cacheShard) insertLocked(k queryKey, body []byte) (evicted bool) {
	if e, ok := s.m[k]; ok {
		e.Value.(*cacheEntry).body = body
		s.ll.MoveToFront(e)
		return false
	}
	s.m[k] = s.ll.PushFront(&cacheEntry{key: k, body: body})
	if s.ll.Len() > s.cap {
		back := s.ll.Back()
		s.ll.Remove(back)
		delete(s.m, back.Value.(*cacheEntry).key)
		evicted = true
	}
	return evicted
}

// getOrCompute returns the cached body for the key or computes it with
// per-key singleflight: when N requests miss the same cold key
// concurrently, exactly one runs compute and the rest wait for its result
// — without this, every refresh swap (which empties the effective cache)
// turns the next burst of popular queries into a stampede of identical
// searches. Compute errors are returned to the leader and every waiter
// and are never cached. Waiters of a successful flight count as
// coalesced, not as hits or misses.
func (c *queryCache) getOrCompute(k queryKey, compute func() ([]byte, error)) ([]byte, error) {
	if c == nil {
		return compute()
	}
	s := c.shard(k)
	s.mu.Lock()
	if e, ok := s.m[k]; ok {
		s.ll.MoveToFront(e)
		body := e.Value.(*cacheEntry).body
		s.mu.Unlock()
		c.hits.Add(1)
		return body, nil
	}
	if fl, ok := s.flight[k]; ok {
		s.mu.Unlock()
		c.coalesced.Add(1)
		<-fl.done
		return fl.body, fl.err
	}
	fl := &flightCall{done: make(chan struct{})}
	s.flight[k] = fl
	s.mu.Unlock()
	c.misses.Add(1)

	fl.body, fl.err = compute()
	evicted := false
	s.mu.Lock()
	delete(s.flight, k)
	if fl.err == nil {
		evicted = s.insertLocked(k, fl.body)
	}
	s.mu.Unlock()
	close(fl.done)
	if evicted {
		c.evictions.Add(1)
	}
	return fl.body, fl.err
}

// purge drops every cached entry whose generation differs from keep —
// called after a refresh swap to release the old generation's responses.
// In-progress flights are left alone: they hold pre-swap keys, finish
// into entries no future request can look up, and age out via LRU.
func (c *queryCache) purge(keep uint64) {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for e := s.ll.Front(); e != nil; {
			next := e.Next()
			if ent := e.Value.(*cacheEntry); ent.key.gen != keep {
				s.ll.Remove(e)
				delete(s.m, ent.key)
			}
			e = next
		}
		s.mu.Unlock()
	}
}

// counters returns the lifetime hit, miss, coalesced and eviction counts.
func (c *queryCache) counters() (hits, misses, coalesced, evictions uint64) {
	if c == nil {
		return 0, 0, 0, 0
	}
	return c.hits.Load(), c.misses.Load(), c.coalesced.Load(), c.evictions.Load()
}

// entries returns the current number of live entries across shards.
func (c *queryCache) entries() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// capacity returns the maximum number of entries the cache can hold.
func (c *queryCache) capacity() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		n += c.shards[i].cap
	}
	return n
}
