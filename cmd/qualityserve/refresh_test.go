package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"pagequality/internal/search"
	"pagequality/internal/webcorpus"
)

// TestQueryCacheSingleflight: N goroutines miss the same cold key
// concurrently; exactly one runs the compute, the others coalesce onto
// its result. The gate holds the leader inside compute until every
// other goroutine has had the chance to arrive, so the test is
// deterministic rather than a timing lottery. Run under -race.
func TestQueryCacheSingleflight(t *testing.T) {
	c := newQueryCache(4, 16)
	key := queryKey{gen: 1, q: "hot", k: 10, rank: "quality"}

	const n = 16
	var calls atomic.Int32
	entered := make(chan struct{}) // leader is inside compute
	release := make(chan struct{}) // let the leader finish
	results := make(chan []byte, n)

	var wg sync.WaitGroup
	launch := func() {
		defer wg.Done()
		body, err := c.getOrCompute(key, func() ([]byte, error) {
			calls.Add(1)
			close(entered)
			<-release
			return []byte("answer"), nil
		})
		if err != nil {
			t.Error(err)
			return
		}
		results <- body
	}
	wg.Add(1)
	go launch()
	<-entered // compute is running; every arrival below must coalesce
	for i := 1; i < n; i++ {
		wg.Add(1)
		go launch()
	}
	// Waiters-in-flight are counted before they block; wait until all
	// n-1 have registered, then release the leader.
	for {
		if _, _, co, _ := c.counters(); co == n-1 {
			break
		}
	}
	close(release)
	wg.Wait()
	close(results)

	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	for body := range results {
		if string(body) != "answer" {
			t.Fatalf("coalesced result %q", body)
		}
	}
	hits, misses, coalesced, _ := c.counters()
	if misses != 1 || coalesced != n-1 || hits != 0 {
		t.Fatalf("counters hits=%d misses=%d coalesced=%d, want 0/1/%d", hits, misses, coalesced, n-1)
	}
	// The result is now cached: the next lookup is a plain hit.
	if body, err := c.getOrCompute(key, func() ([]byte, error) {
		t.Fatal("compute ran on a warm key")
		return nil, nil
	}); err != nil || string(body) != "answer" {
		t.Fatalf("warm lookup = %q, %v", body, err)
	}
}

// TestQueryCacheSingleflightError: a failed compute propagates its error
// to the leader and is not cached — the next request computes again.
func TestQueryCacheSingleflightError(t *testing.T) {
	c := newQueryCache(1, 4)
	key := queryKey{gen: 1, q: "bad", k: 10, rank: "quality"}
	boom := errors.New("boom")
	if _, err := c.getOrCompute(key, func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := c.entries(); n != 0 {
		t.Fatalf("failed compute was cached: %d entries", n)
	}
	calls := 0
	if body, err := c.getOrCompute(key, func() ([]byte, error) {
		calls++
		return []byte("ok"), nil
	}); err != nil || string(body) != "ok" || calls != 1 {
		t.Fatalf("retry after error: %q, %v, calls=%d", body, err, calls)
	}
}

// TestQueryCachePurge: purge drops exactly the entries of other
// generations.
func TestQueryCachePurge(t *testing.T) {
	c := newQueryCache(4, 16)
	for gen := uint64(1); gen <= 2; gen++ {
		for i := 0; i < 4; i++ {
			c.put(queryKey{gen: gen, q: fmt.Sprintf("q%d", i), k: 10, rank: "quality"}, []byte("x"))
		}
	}
	if n := c.entries(); n != 8 {
		t.Fatalf("entries = %d, want 8", n)
	}
	c.purge(2)
	if n := c.entries(); n != 4 {
		t.Fatalf("entries after purge = %d, want 4", n)
	}
	for i := 0; i < 4; i++ {
		if _, ok := c.get(queryKey{gen: 1, q: fmt.Sprintf("q%d", i), k: 10, rank: "quality"}); ok {
			t.Fatalf("generation-1 entry q%d survived purge", i)
		}
		if _, ok := c.get(queryKey{gen: 2, q: fmt.Sprintf("q%d", i), k: 10, rank: "quality"}); !ok {
			t.Fatalf("generation-2 entry q%d purged", i)
		}
	}
}

// TestServiceCacheKeyNormalizesK is the regression test for cache-key
// inflation: search clamps TopK to the document count, so every k beyond
// it yields the same response and must share one cache entry. k=500 and
// k=1000 (both beyond this fixture's corpus) must produce one miss and
// one hit, not two entries.
func TestServiceCacheKeyNormalizesK(t *testing.T) {
	storePath, archiveDir := buildFixture(t)
	svc, err := buildService(storePath, archiveDir, "", 3, defaultQCfg(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if nd := svc.gen.Load().ix.NumDocs(); nd >= 500 {
		t.Fatalf("fixture has %d docs, test needs < 500", nd)
	}
	ts := httptest.NewServer(svc)
	defer ts.Close()

	topic := webcorpus.SiteTopic(0)
	for _, k := range []int{500, 1000} {
		resp, err := httpGet(ts.Client(), fmt.Sprintf("%s/search?q=%s&k=%d", ts.URL, topic, k))
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("k=%d: %v %v", k, resp, err)
		}
		resp.Body.Close()
	}
	hits, misses, _, _ := svc.cache.counters()
	if misses != 1 || hits != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1 (k beyond corpus must share one key)", hits, misses)
	}
	if n := svc.cache.entries(); n != 1 {
		t.Fatalf("entries = %d, want 1", n)
	}
}

// TestServiceRefresh drives the admin refresh path end to end: the
// generation counter advances, the swap empties the effective cache (the
// same query is recomputed, never served from an old generation's entry),
// and responses advertise the generation they were built from.
func TestServiceRefresh(t *testing.T) {
	storePath, archiveDir := buildFixture(t)
	svc, err := buildService(storePath, archiveDir, "", 3, defaultQCfg(), 64)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	defer ts.Close()

	getJSON := func(path string) (map[string]uint64, http.Header) {
		t.Helper()
		resp, err := httpGet(ts.Client(), ts.URL+path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		var m map[string]uint64
		if path == "/search" || strings.HasPrefix(path, "/search?") {
			return nil, resp.Header
		}
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m, resp.Header
	}

	topic := webcorpus.SiteTopic(0)
	query := "/search?q=" + topic + "&k=5"

	_, hdr := getJSON(query)
	if got := hdr.Get("X-Quality-Generation"); got != "1" {
		t.Fatalf("X-Quality-Generation = %q, want 1", got)
	}
	stats, _ := getJSON("/stats")
	if stats["generation"] != 1 || stats["searches"] != 1 {
		t.Fatalf("fresh stats: %v", stats)
	}

	ref, _ := getJSON("/refresh")
	if ref["generation"] != 2 || ref["documents"] != stats["documents"] {
		t.Fatalf("refresh response: %v (want generation 2, %d documents)", ref, stats["documents"])
	}

	// The identical query must be recomputed against generation 2: a hit
	// on the old generation's entry would keep searches at 1.
	_, hdr = getJSON(query)
	if got := hdr.Get("X-Quality-Generation"); got != "2" {
		t.Fatalf("post-refresh X-Quality-Generation = %q, want 2", got)
	}
	stats, _ = getJSON("/stats")
	if stats["generation"] != 2 {
		t.Fatalf("stats generation = %d, want 2", stats["generation"])
	}
	if stats["searches"] != 2 {
		t.Fatalf("searches = %d, want 2 (old generation's cache entry must not serve)", stats["searches"])
	}
	if stats["cache_entries"] != 1 {
		t.Fatalf("cache_entries = %d, want 1 (old generation purged)", stats["cache_entries"])
	}
}

// syntheticGeneration builds a self-describing generation: every URL and
// both score vectors encode the generation id, so a response mixing two
// generations is detectable field by field.
func syntheticGeneration(id uint64, docs int) *generation {
	g := &generation{id: id, ix: search.NewIndex()}
	for i := 0; i < docs; i++ {
		g.ix.Add(fmt.Sprintf("alpha beta shared corpus terms doc%d", i))
		g.urls = append(g.urls, fmt.Sprintf("http://site.example/gen%d/doc%d", id, i))
		g.qual = append(g.qual, float64(id)+float64(i)/1e6)
		g.pr = append(g.pr, float64(id)+float64(i)/1e6)
	}
	g.ix.Freeze()
	sx, err := g.ix.Shard(4, 2)
	if err != nil {
		panic(err)
	}
	g.sx = sx
	return g
}

// TestServiceGenerationConsistency hammers /search while generations swap
// underneath (run under -race): every response must be internally
// consistent — URLs, quality and pagerank all from the one generation the
// response header names — and that generation must be one that actually
// existed. This is the RCU contract: readers see old state or new state,
// never a mix.
func TestServiceGenerationConsistency(t *testing.T) {
	svc := &service{cache: newQueryCache(cacheShards, 64)}
	svc.gen.Store(syntheticGeneration(1, 20))
	ts := httptest.NewServer(svc)
	defer ts.Close()

	const swaps = 50
	var maxGen atomic.Uint64
	maxGen.Store(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for id := uint64(2); id <= swaps; id++ {
			svc.gen.Store(syntheticGeneration(id, 20))
			maxGen.Store(id)
			svc.cache.purge(id)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; ; it++ {
				select {
				case <-done:
					return
				default:
				}
				resp, err := httpGet(ts.Client(), fmt.Sprintf("%s/search?q=alpha+beta&k=%d", ts.URL, 3+(w+it)%5))
				if err != nil {
					t.Error(err)
					return
				}
				genHdr := resp.Header.Get("X-Quality-Generation")
				var hits []hitJSON
				decErr := json.NewDecoder(resp.Body).Decode(&hits)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					t.Errorf("status %d, decode %v", resp.StatusCode, decErr)
					return
				}
				gen, err := strconv.ParseUint(genHdr, 10, 64)
				if err != nil || gen < 1 || gen > maxGen.Load() {
					t.Errorf("response names impossible generation %q (max %d)", genHdr, maxGen.Load())
					return
				}
				if len(hits) == 0 {
					t.Error("no hits")
					return
				}
				prefix := fmt.Sprintf("http://site.example/gen%d/", gen)
				for _, h := range hits {
					if !strings.HasPrefix(h.URL, prefix) {
						t.Errorf("generation %d response contains URL %q — mixed generations", gen, h.URL)
						return
					}
					if uint64(h.Quality) != gen || uint64(h.PageRank) != gen {
						t.Errorf("generation %d response carries scores %g/%g from another generation",
							gen, h.Quality, h.PageRank)
						return
					}
				}
			}
		}(w)
	}
	<-done
	wg.Wait()
}
