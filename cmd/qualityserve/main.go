// Command qualityserve is the downstream application the paper motivates:
// a search service whose ranking uses the quality estimate instead of raw
// PageRank. It loads a crawl series (snapshot store) and the archived
// page bodies (pagestore), estimates Q(p) from the PageRank trend, builds
// a full-text index over the documents, and serves a JSON search API:
//
//	GET /search?q=<terms>&k=10&rank=quality|pagerank|relevance
//	GET /stats
//	GET /healthz
//
// Usage:
//
//	qualityserve -store web.pqs -archive pages/ -label t3 -snaps 3 \
//	             -addr 127.0.0.1:8088
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"

	"pagequality/internal/crawler"
	"pagequality/internal/pagerank"
	"pagequality/internal/pagestore"
	"pagequality/internal/quality"
	"pagequality/internal/search"
	"pagequality/internal/snapshot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, http.ListenAndServe); err != nil {
		fmt.Fprintln(os.Stderr, "qualityserve:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer, listen func(string, http.Handler) error) error {
	fs := flag.NewFlagSet("qualityserve", flag.ContinueOnError)
	var (
		store   = fs.String("store", "web.pqs", "snapshot store with the crawl series")
		archive = fs.String("archive", "", "pagestore directory with archived page bodies")
		label   = fs.String("label", "", "archive label of the crawl to index (default: last estimation snapshot)")
		snapsN  = fs.Int("snaps", 3, "number of leading snapshots used for quality estimation")
		c       = fs.Float64("c", 1.0, "estimator constant C")
		cap_    = fs.Float64("maxtrend", 0.3, "trend cap")
		addr    = fs.String("addr", "127.0.0.1:8088", "listen address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *archive == "" {
		return fmt.Errorf("-archive is required")
	}
	svc, err := buildService(*store, *archive, *label, *snapsN, quality.Config{
		C: *c, MinChangeFrac: 0.05, ApplyTrendToDecreasing: true, MaxTrend: *cap_,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "indexed %d documents (%d common pages) — serving on http://%s/\n",
		svc.ix.NumDocs(), len(svc.urls), *addr)
	return listen(*addr, svc)
}

// service holds the built index and per-document scores.
type service struct {
	ix   *search.Index
	urls []string // doc id -> canonical URL
	qual []float64
	pr   []float64
}

// buildService loads the series, estimates quality, and indexes the
// archived bodies of the chosen crawl.
func buildService(storePath, archiveDir, label string, snapsN int, qcfg quality.Config) (*service, error) {
	snaps, err := snapshot.ReadFile(storePath)
	if err != nil {
		return nil, err
	}
	al, err := snapshot.Align(snaps)
	if err != nil {
		return nil, err
	}
	if snapsN < 2 || snapsN > al.NumSnapshots() {
		return nil, fmt.Errorf("qualityserve: snaps=%d with %d snapshots", snapsN, al.NumSnapshots())
	}
	est, ranks, err := quality.FromAligned(al, snapsN,
		pagerank.Options{Variant: pagerank.VariantPaper}, qcfg)
	if err != nil {
		return nil, err
	}
	cur := ranks[snapsN-1]

	if label == "" {
		label = al.Labels[snapsN-1]
	}
	arch, err := pagestore.Open(archiveDir, pagestore.Options{})
	if err != nil {
		return nil, err
	}
	defer arch.Close()
	keys := arch.KeysWithPrefix(label + "/")
	if len(keys) == 0 {
		return nil, fmt.Errorf("qualityserve: no documents with label %q in %s", label, archiveDir)
	}

	// Map canonical URL -> aligned index for score lookup.
	byURL := make(map[string]int, len(al.URLs))
	for i, u := range al.URLs {
		byURL[u] = i
	}

	svc := &service{ix: search.NewIndex()}
	for _, k := range keys {
		_, body, err := arch.Get(k)
		if err != nil {
			return nil, err
		}
		_, canonical := crawler.ExtractLinks(string(body))
		if canonical == "" {
			canonical = k[len(label)+1:]
		}
		ai, ok := byURL[canonical]
		if !ok {
			continue // page not common to every crawl: no quality estimate
		}
		doc := svc.ix.Add(string(body))
		if doc != len(svc.urls) {
			return nil, fmt.Errorf("qualityserve: document id drift")
		}
		svc.urls = append(svc.urls, canonical)
		svc.qual = append(svc.qual, est.Q[ai])
		svc.pr = append(svc.pr, cur[ai])
	}
	if svc.ix.NumDocs() == 0 {
		return nil, fmt.Errorf("qualityserve: no indexable documents matched the common pages")
	}
	return svc, nil
}

// hitJSON is one search result in the API response.
type hitJSON struct {
	URL       string  `json:"url"`
	Score     float64 `json:"score"`
	Relevance float64 `json:"relevance"`
	Quality   float64 `json:"quality"`
	PageRank  float64 `json:"pagerank"`
}

func (s *service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz":
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	case "/stats":
		s.serveStats(w)
	case "/search":
		s.serveSearch(w, r)
	default:
		http.NotFound(w, r)
	}
}

func (s *service) serveStats(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"documents": s.ix.NumDocs(),
		"terms":     s.ix.NumTerms(),
	})
}

func (s *service) serveSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, `missing query parameter "q"`, http.StatusBadRequest)
		return
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v < 1 || v > 1000 {
			http.Error(w, `parameter "k" must be an integer in [1,1000]`, http.StatusBadRequest)
			return
		}
		k = v
	}
	opts := search.Options{TopK: k}
	switch mode := r.URL.Query().Get("rank"); mode {
	case "", "quality":
		opts.Authority = s.qual
		opts.AuthorityWeight = 0.7
	case "pagerank":
		opts.Authority = s.pr
		opts.AuthorityWeight = 0.7
	case "relevance":
		// content only
	default:
		http.Error(w, `parameter "rank" must be quality, pagerank or relevance`, http.StatusBadRequest)
		return
	}
	hits, err := s.ix.Search(q, opts)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	out := make([]hitJSON, 0, len(hits))
	for _, h := range hits {
		out = append(out, hitJSON{
			URL:       s.urls[h.Doc],
			Score:     h.Score,
			Relevance: h.Relevance,
			Quality:   s.qual[h.Doc],
			PageRank:  s.pr[h.Doc],
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
