// Command qualityserve is the downstream application the paper motivates:
// a search service whose ranking uses the quality estimate instead of raw
// PageRank. It loads a crawl series (snapshot store) and the archived
// page bodies (pagestore), estimates Q(p) from the PageRank trend, builds
// a full-text index over the documents, and serves a JSON search API:
//
//	GET /search?q=<terms>&k=10&rank=quality|pagerank|relevance
//	GET /stats
//	GET /healthz
//
// The query path is built for load: the index serves every request from
// a frozen flat posting layout, responses are encoded through pooled
// buffers, and a sharded LRU cache keyed on (query, k, rank) short-cuts
// repeated queries — the index is immutable per process, so cached
// responses never go stale. /stats reports the cache hit/miss/eviction
// counters alongside the corpus numbers.
//
// Usage:
//
//	qualityserve -store web.pqs -archive pages/ -label t3 -snaps 3 \
//	             -addr 127.0.0.1:8088 [-cachesize 4096]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"pagequality/internal/crawler"
	"pagequality/internal/pagerank"
	"pagequality/internal/pagestore"
	"pagequality/internal/quality"
	"pagequality/internal/search"
	"pagequality/internal/snapshot"
)

// cacheShards is the shard count of the query cache: enough that
// concurrent clients rarely collide on a shard lock, small enough that a
// modest capacity still gives each shard a useful LRU depth.
const cacheShards = 16

func main() {
	if err := run(os.Args[1:], os.Stdout, listenAndServe); err != nil {
		fmt.Fprintln(os.Stderr, "qualityserve:", err)
		os.Exit(1)
	}
}

// listenAndServe serves h behind an http.Server with header, read and
// write timeouts, so a slow or stalled client cannot wedge a connection
// (and its goroutine) indefinitely — the seam tests swap this out.
func listenAndServe(addr string, h http.Handler) error {
	return newServer(addr, h).ListenAndServe()
}

// newServer is the production server configuration.
func newServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

func run(args []string, out io.Writer, listen func(string, http.Handler) error) error {
	fs := flag.NewFlagSet("qualityserve", flag.ContinueOnError)
	var (
		store     = fs.String("store", "web.pqs", "snapshot store with the crawl series")
		archive   = fs.String("archive", "", "pagestore directory with archived page bodies")
		label     = fs.String("label", "", "archive label of the crawl to index (default: last estimation snapshot)")
		snapsN    = fs.Int("snaps", 3, "number of leading snapshots used for quality estimation")
		c         = fs.Float64("c", 1.0, "estimator constant C")
		cap_      = fs.Float64("maxtrend", 0.3, "trend cap")
		addr      = fs.String("addr", "127.0.0.1:8088", "listen address")
		cacheSize = fs.Int("cachesize", 4096, "query cache capacity in entries (0 disables caching)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *archive == "" {
		return fmt.Errorf("-archive is required")
	}
	if *cacheSize < 0 {
		return fmt.Errorf("-cachesize must be >= 0, got %d", *cacheSize)
	}
	svc, err := buildService(*store, *archive, *label, *snapsN, quality.Config{
		C: *c, MinChangeFrac: 0.05, ApplyTrendToDecreasing: true, MaxTrend: *cap_,
	}, *cacheSize)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "indexed %d documents (%d common pages) — serving on http://%s/\n",
		svc.ix.NumDocs(), len(svc.urls), *addr)
	return listen(*addr, svc)
}

// service holds the built index, per-document scores and the query cache.
type service struct {
	ix    *search.Index
	urls  []string // doc id -> canonical URL
	qual  []float64
	pr    []float64
	cache *queryCache
	// bufPool recycles the JSON encoding buffers of cache misses; its
	// zero value is usable (encodeHits falls back to a fresh buffer).
	bufPool sync.Pool
}

// buildService loads the series, estimates quality, and indexes the
// archived bodies of the chosen crawl. cacheSize bounds the query cache
// (0 disables it).
func buildService(storePath, archiveDir, label string, snapsN int, qcfg quality.Config, cacheSize int) (*service, error) {
	snaps, err := snapshot.ReadFile(storePath)
	if err != nil {
		return nil, err
	}
	al, err := snapshot.Align(snaps)
	if err != nil {
		return nil, err
	}
	if snapsN < 2 || snapsN > al.NumSnapshots() {
		return nil, fmt.Errorf("qualityserve: snaps=%d with %d snapshots", snapsN, al.NumSnapshots())
	}
	est, ranks, err := quality.FromAligned(al, snapsN,
		pagerank.Options{Variant: pagerank.VariantPaper}, qcfg)
	if err != nil {
		return nil, err
	}
	cur := ranks[snapsN-1]

	if label == "" {
		label = al.Labels[snapsN-1]
	}
	arch, err := pagestore.Open(archiveDir, pagestore.Options{})
	if err != nil {
		return nil, err
	}
	defer arch.Close()
	keys := arch.KeysWithPrefix(label + "/")
	if len(keys) == 0 {
		return nil, fmt.Errorf("qualityserve: no documents with label %q in %s", label, archiveDir)
	}

	// Map canonical URL -> aligned index for score lookup.
	byURL := make(map[string]int, len(al.URLs))
	for i, u := range al.URLs {
		byURL[u] = i
	}

	svc := &service{ix: search.NewIndex(), cache: newQueryCache(cacheShards, cacheSize)}
	for _, k := range keys {
		_, body, err := arch.Get(k)
		if err != nil {
			return nil, err
		}
		_, canonical := crawler.ExtractLinks(string(body))
		if canonical == "" {
			canonical = k[len(label)+1:]
		}
		ai, ok := byURL[canonical]
		if !ok {
			continue // page not common to every crawl: no quality estimate
		}
		doc := svc.ix.Add(string(body))
		if doc != len(svc.urls) {
			return nil, fmt.Errorf("qualityserve: document id drift")
		}
		svc.urls = append(svc.urls, canonical)
		svc.qual = append(svc.qual, est.Q[ai])
		svc.pr = append(svc.pr, cur[ai])
	}
	if svc.ix.NumDocs() == 0 {
		return nil, fmt.Errorf("qualityserve: no indexable documents matched the common pages")
	}
	return svc, nil
}

// hitJSON is one search result in the API response.
type hitJSON struct {
	URL       string  `json:"url"`
	Score     float64 `json:"score"`
	Relevance float64 `json:"relevance"`
	Quality   float64 `json:"quality"`
	PageRank  float64 `json:"pagerank"`
}

func (s *service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz":
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	case "/stats":
		s.serveStats(w)
	case "/search":
		s.serveSearch(w, r)
	default:
		http.NotFound(w, r)
	}
}

func (s *service) serveStats(w http.ResponseWriter) {
	hits, misses, evictions := s.cache.counters()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"documents":       s.ix.NumDocs(),
		"terms":           s.ix.NumTerms(),
		"cache_hits":      hits,
		"cache_misses":    misses,
		"cache_evictions": evictions,
		"cache_entries":   s.cache.entries(),
		"cache_capacity":  s.cache.capacity(),
	})
}

func (s *service) serveSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, `missing query parameter "q"`, http.StatusBadRequest)
		return
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v < 1 || v > 1000 {
			http.Error(w, `parameter "k" must be an integer in [1,1000]`, http.StatusBadRequest)
			return
		}
		k = v
	}
	rank := r.URL.Query().Get("rank")
	opts := search.Options{TopK: k}
	switch rank {
	case "", "quality":
		rank = "quality" // the default and the explicit form share a cache key
		opts.Authority = s.qual
		opts.AuthorityWeight = 0.7
	case "pagerank":
		opts.Authority = s.pr
		opts.AuthorityWeight = 0.7
	case "relevance":
		// content only
	default:
		http.Error(w, `parameter "rank" must be quality, pagerank or relevance`, http.StatusBadRequest)
		return
	}
	key := queryKey{q: q, k: k, rank: rank}
	if body, ok := s.cache.get(key); ok {
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		return
	}
	hits, err := s.ix.Search(q, opts)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body, err := s.encodeHits(hits)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.cache.put(key, body)
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// encodeHits renders the JSON response body through a pooled buffer. The
// returned slice is a private copy, safe to cache and to hand to
// concurrent writers.
func (s *service) encodeHits(hits []search.Hit) ([]byte, error) {
	out := make([]hitJSON, 0, len(hits))
	for _, h := range hits {
		out = append(out, hitJSON{
			URL:       s.urls[h.Doc],
			Score:     h.Score,
			Relevance: h.Relevance,
			Quality:   s.qual[h.Doc],
			PageRank:  s.pr[h.Doc],
		})
	}
	buf, _ := s.bufPool.Get().(*bytes.Buffer)
	if buf == nil {
		buf = new(bytes.Buffer)
	}
	buf.Reset()
	err := json.NewEncoder(buf).Encode(out)
	var body []byte
	if err == nil {
		body = append([]byte(nil), buf.Bytes()...)
	}
	s.bufPool.Put(buf)
	return body, err
}
