// Command qualityserve is the downstream application the paper motivates:
// a search service whose ranking uses the quality estimate instead of raw
// PageRank. It loads a crawl series (snapshot store) and the archived
// page bodies (pagestore), estimates Q(p) from the PageRank trend, builds
// a full-text index over the documents, and serves a JSON search API:
//
//	GET /search?q=<terms>&k=10&rank=quality|pagerank|relevance
//	GET /refresh
//	GET /stats
//	GET /healthz
//
// The query path is built for load: the index serves every request from
// a frozen flat posting layout partitioned into -shards doc-shards
// searched in parallel (scatter-gather with a deterministic top-k merge,
// bitwise equal to the unsharded engine), responses are encoded through
// pooled buffers, and a sharded LRU cache keyed on (generation, query,
// k, rank) short-cuts repeated queries, with per-key singleflight so a
// thundering herd on a cold key runs the search once. An admission
// limiter (-max-inflight, -max-wait) bounds concurrent searches: on
// saturation the excess is shed with 503 + Retry-After instead of
// queueing without bound, so latency for admitted requests stays pinned.
//
// The serving state — index, score vectors, URL table — lives in an
// immutable generation behind an atomic pointer. /refresh (and the
// -refresh-interval ticker) rebuilds the next generation from the store
// off the request path and swaps it in RCU-style: in-flight queries keep
// the generation they loaded, new queries see the new one, and no request
// ever observes a mix. Cache keys carry the generation id, so a swap
// invalidates every cached response without racing the readers.
//
// Usage:
//
//	qualityserve -store web.pqs -archive pages/ -label t3 -snaps 3 \
//	             -addr 127.0.0.1:8088 [-cachesize 4096] [-refresh-interval 10m]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pagequality/internal/crawler"
	"pagequality/internal/pagerank"
	"pagequality/internal/corpus"
	"pagequality/internal/pagestore"
	"pagequality/internal/quality"
	"pagequality/internal/search"
	"pagequality/internal/snapshot"
)

// cacheShards is the shard count of the query cache: enough that
// concurrent clients rarely collide on a shard lock, small enough that a
// modest capacity still gives each shard a useful LRU depth.
const cacheShards = 16

func main() {
	if err := run(os.Args[1:], os.Stdout, listenAndServe); err != nil {
		fmt.Fprintln(os.Stderr, "qualityserve:", err)
		os.Exit(1)
	}
}

// listenAndServe serves h behind an http.Server with header, read and
// write timeouts, so a slow or stalled client cannot wedge a connection
// (and its goroutine) indefinitely — the seam tests swap this out.
func listenAndServe(addr string, h http.Handler) error {
	return newServer(addr, h).ListenAndServe()
}

// newServer is the production server configuration.
func newServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

func run(args []string, out io.Writer, listen func(string, http.Handler) error) error {
	fs := flag.NewFlagSet("qualityserve", flag.ContinueOnError)
	var (
		store        = fs.String("store", "web.pqs", "snapshot store with the crawl series")
		archive      = fs.String("archive", "", "pagestore directory with archived page bodies")
		label        = fs.String("label", "", "archive label of the crawl to index (default: last estimation snapshot)")
		snapsN       = fs.Int("snaps", 3, "number of leading snapshots used for quality estimation")
		c            = fs.Float64("c", 1.0, "estimator constant C")
		cap_         = fs.Float64("maxtrend", 0.3, "trend cap")
		addr         = fs.String("addr", "127.0.0.1:8088", "listen address")
		cacheSize    = fs.Int("cachesize", 4096, "query cache capacity in entries (0 disables caching)")
		refresh      = fs.Duration("refresh-interval", 0, "rebuild the index from the store at this interval (0 disables; /refresh always works)")
		shards       = fs.Int("shards", 1, "doc-shards the index is partitioned into (clamped to the document count)")
		shardWorkers = fs.Int("shard-workers", 0, "worker pool searching the shards (0 = GOMAXPROCS)")
		maxInflight  = fs.Int("max-inflight", 256, "admission limit on concurrent searches; excess is shed with 503")
		maxWait      = fs.Duration("max-wait", 5*time.Millisecond, "how long a request may wait for an admission slot before being shed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *archive == "" {
		return fmt.Errorf("-archive is required")
	}
	if *cacheSize < 0 {
		return fmt.Errorf("-cachesize must be >= 0, got %d", *cacheSize)
	}
	if *refresh < 0 {
		return fmt.Errorf("-refresh-interval must be >= 0, got %v", *refresh)
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", *shards)
	}
	if *shardWorkers < 0 {
		return fmt.Errorf("-shard-workers must be >= 0, got %d", *shardWorkers)
	}
	if *maxInflight < 1 {
		return fmt.Errorf("-max-inflight must be >= 1, got %d", *maxInflight)
	}
	if *maxWait < 0 {
		return fmt.Errorf("-max-wait must be >= 0, got %v", *maxWait)
	}
	svc, err := buildServiceCfg(*store, *archive, *label, *snapsN, quality.Config{
		C: *c, MinChangeFrac: 0.05, ApplyTrendToDecreasing: true, MaxTrend: *cap_,
	}, serveConfig{
		cacheSize:    *cacheSize,
		shards:       *shards,
		shardWorkers: *shardWorkers,
		maxInflight:  *maxInflight,
		maxWait:      *maxWait,
	})
	if err != nil {
		return err
	}
	if *refresh > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go svc.refreshLoop(*refresh, stop, out)
	}
	g := svc.gen.Load()
	fmt.Fprintf(out, "indexed %d documents (%d common pages, %d shards) — serving on http://%s/\n",
		g.ix.NumDocs(), len(g.urls), g.sx.NumShards(), *addr)
	return listen(*addr, svc)
}

// generation is one immutable serving state: the eagerly frozen index,
// the per-document score vectors and the URL table, all derived from a
// single read of the crawl series. A query loads the current generation
// exactly once and touches only its fields, so every response is
// internally consistent even when a refresh swaps generations mid-flight.
type generation struct {
	id   uint64
	ix   *search.Index
	sx   *search.ShardedIndex // scatter-gather view of ix; searches go here
	urls []string             // doc id -> canonical URL
	qual []float64
	pr   []float64
}

// serveConfig bundles the serving knobs of a service: cache capacity,
// index sharding geometry and the admission limit.
type serveConfig struct {
	cacheSize    int
	shards       int           // doc-shard count (>= 1)
	shardWorkers int           // fan-out pool (0 = GOMAXPROCS)
	maxInflight  int           // admission limit (< 1 = unlimited)
	maxWait      time.Duration // bounded wait for an admission slot
}

// service routes requests against the current generation and owns the
// machinery that replaces it: the rebuild inputs, the refresh lock and
// the generation-keyed query cache.
type service struct {
	gen   atomic.Pointer[generation]
	cache *queryCache
	lim   *limiter
	// bufPool recycles the JSON encoding buffers of cache misses; its
	// zero value is usable (encodeHits falls back to a fresh buffer).
	bufPool sync.Pool
	// searches counts index searches actually executed — cache hits and
	// coalesced waiters do not add to it, which is what makes singleflight
	// observable from /stats.
	searches atomic.Uint64

	// Rebuild inputs, fixed for the life of the process.
	storePath  string
	archiveDir string
	label      string
	snapsN     int
	qcfg       quality.Config
	shards     int
	shardWk    int

	// refreshMu serialises rebuilds (a rebuild is expensive; overlapping
	// ones would waste work and could swap in out of order). Readers never
	// take it — they only load the atomic pointer.
	refreshMu sync.Mutex
}

// buildService loads the series, estimates quality, and indexes the
// archived bodies of the chosen crawl as generation 1. cacheSize bounds
// the query cache (0 disables it). Sharding stays at 1 and admission
// unlimited — the historical behaviour most tests want; run() goes
// through buildServiceCfg.
func buildService(storePath, archiveDir, label string, snapsN int, qcfg quality.Config, cacheSize int) (*service, error) {
	return buildServiceCfg(storePath, archiveDir, label, snapsN, qcfg, serveConfig{cacheSize: cacheSize, shards: 1})
}

// buildServiceCfg is buildService with the full serving configuration.
func buildServiceCfg(storePath, archiveDir, label string, snapsN int, qcfg quality.Config, cfg serveConfig) (*service, error) {
	svc := &service{
		cache:      newQueryCache(cacheShards, cfg.cacheSize),
		lim:        newLimiter(cfg.maxInflight, cfg.maxWait),
		storePath:  storePath,
		archiveDir: archiveDir,
		label:      label,
		snapsN:     snapsN,
		qcfg:       qcfg,
		shards:     cfg.shards,
		shardWk:    cfg.shardWorkers,
	}
	g, err := svc.loadGeneration(1)
	if err != nil {
		return nil, err
	}
	svc.gen.Store(g)
	return svc, nil
}

// loadGeneration reads the snapshot store and the page archive and builds
// one complete, frozen generation. It runs off the request path: nothing
// it does is visible to readers until the caller swaps the result in.
func (s *service) loadGeneration(id uint64) (*generation, error) {
	snaps, err := snapshot.ReadFile(s.storePath)
	if err != nil {
		return nil, err
	}
	al, err := snapshot.Align(snaps)
	if err != nil {
		return nil, err
	}
	if s.snapsN < 2 || s.snapsN > al.NumSnapshots() {
		return nil, fmt.Errorf("qualityserve: snaps=%d with %d snapshots", s.snapsN, al.NumSnapshots())
	}
	est, ranks, err := quality.FromAlignedIncremental(al, s.snapsN,
		pagerank.IncrementalOptions{Options: pagerank.Options{Variant: pagerank.VariantPaper}}, s.qcfg)
	if err != nil {
		return nil, err
	}
	cur := ranks[s.snapsN-1]

	label := s.label
	if label == "" {
		label = al.Labels[s.snapsN-1]
	}
	arch, err := pagestore.Open(s.archiveDir, pagestore.Options{})
	if err != nil {
		return nil, err
	}
	defer arch.Close()

	// Map canonical URL -> aligned index for score lookup.
	byURL := make(map[string]int, len(al.URLs))
	for i, u := range al.URLs {
		byURL[u] = i
	}

	// One corpus pass projects every indexable document under the label:
	// link extraction and the common-page filter run in the parallel map
	// phase; Extract returns key order, so the sequential index build
	// below sees the same documents in the same order the old
	// KeysWithPrefix+Get walk produced.
	prefix := label + "/"
	type indexable struct {
		canonical string
		body      string
		ai        int
	}
	docs, err := corpus.Extract(arch, func(d corpus.Doc) (indexable, bool) {
		if !strings.HasPrefix(d.Key, prefix) {
			return indexable{}, false
		}
		_, canonical := crawler.ExtractLinks(string(d.Body))
		if canonical == "" {
			canonical = d.Key[len(prefix):]
		}
		ai, ok := byURL[canonical]
		if !ok {
			return indexable{}, false // page not common to every crawl: no quality estimate
		}
		return indexable{canonical: canonical, body: string(d.Body), ai: ai}, true
	}, corpus.Options{})
	if err != nil {
		return nil, err
	}
	if len(docs) == 0 && len(arch.KeysWithPrefix(prefix)) == 0 {
		return nil, fmt.Errorf("qualityserve: no documents with label %q in %s", label, s.archiveDir)
	}

	g := &generation{id: id, ix: search.NewIndex()}
	for _, d := range docs {
		canonical, ai := d.canonical, d.ai
		doc := g.ix.Add(d.body)
		if doc != len(g.urls) {
			return nil, fmt.Errorf("qualityserve: document id drift")
		}
		g.urls = append(g.urls, canonical)
		g.qual = append(g.qual, est.Q[ai])
		g.pr = append(g.pr, cur[ai])
	}
	if g.ix.NumDocs() == 0 {
		return nil, fmt.Errorf("qualityserve: no indexable documents matched the common pages")
	}
	// Freeze now, once, so no reader ever pays (or races on) the lazy
	// posting-layout build after the swap; the shard partition rides on
	// the same frozen layout (Shard clamps s.shards to the doc count).
	g.ix.Freeze()
	g.sx, err = g.ix.Shard(s.shards, s.shardWk)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// refresh rebuilds the serving state from the store and swaps it in. On
// error the current generation keeps serving untouched. After the swap,
// cached responses of older generations are unreachable (keys carry the
// generation id); purge drops them eagerly to free their memory.
func (s *service) refresh() (*generation, error) {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	g, err := s.loadGeneration(s.gen.Load().id + 1)
	if err != nil {
		return nil, err
	}
	s.gen.Store(g)
	s.cache.purge(g.id)
	return g, nil
}

// refreshLoop drives periodic refreshes until stop closes. Failures are
// reported and the previous generation keeps serving.
func (s *service) refreshLoop(every time.Duration, stop <-chan struct{}, out io.Writer) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if g, err := s.refresh(); err != nil {
				fmt.Fprintf(out, "refresh failed (still serving generation %d): %v\n", s.gen.Load().id, err)
			} else {
				fmt.Fprintf(out, "refreshed: generation %d, %d documents\n", g.id, g.ix.NumDocs())
			}
		}
	}
}

// hitJSON is one search result in the API response.
type hitJSON struct {
	URL       string  `json:"url"`
	Score     float64 `json:"score"`
	Relevance float64 `json:"relevance"`
	Quality   float64 `json:"quality"`
	PageRank  float64 `json:"pagerank"`
}

func (s *service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz":
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	case "/stats":
		s.serveStats(w)
	case "/refresh":
		s.serveRefresh(w)
	case "/search":
		s.serveSearch(w, r)
	default:
		http.NotFound(w, r)
	}
}

func (s *service) serveStats(w http.ResponseWriter) {
	g := s.gen.Load()
	hits, misses, coalesced, evictions := s.cache.counters()
	admitted, shed := s.lim.counters()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"generation":      g.id,
		"documents":       g.ix.NumDocs(),
		"terms":           g.ix.NumTerms(),
		"shards":          g.sx.NumShards(),
		"searches":        s.searches.Load(),
		"max_inflight":    s.lim.limit(),
		"inflight":        s.lim.inflight(),
		"admitted":        admitted,
		"shed":            shed,
		"cache_hits":      hits,
		"cache_misses":    misses,
		"cache_coalesced": coalesced,
		"cache_evictions": evictions,
		"cache_entries":   s.cache.entries(),
		"cache_capacity":  s.cache.capacity(),
	})
}

func (s *service) serveRefresh(w http.ResponseWriter) {
	g, err := s.refresh()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"generation": g.id,
		"documents":  g.ix.NumDocs(),
	})
}

func (s *service) serveSearch(w http.ResponseWriter, r *http.Request) {
	// Admission control: past the in-flight limit (plus a bounded wait for
	// a slot) the request is shed with 503 + Retry-After instead of queueing
	// in the scheduler, so overload degrades into a bounded-latency service
	// at capacity rather than a collapsing one.
	if !s.lim.acquire(r.Context()) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "saturated: in-flight search limit reached", http.StatusServiceUnavailable)
		return
	}
	defer s.lim.release()
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, `missing query parameter "q"`, http.StatusBadRequest)
		return
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v < 1 || v > 1000 {
			http.Error(w, `parameter "k" must be an integer in [1,1000]`, http.StatusBadRequest)
			return
		}
		k = v
	}
	// One load; g is this request's whole world. A refresh swapping the
	// pointer mid-request cannot change what this response is built from.
	g := s.gen.Load()
	// Normalise to the effective k: search clamps TopK to the document
	// count, so every k beyond it produces the same hit list and must
	// share one cache entry instead of inflating the key space.
	if nd := g.ix.NumDocs(); k > nd {
		k = nd
	}
	rank := r.URL.Query().Get("rank")
	opts := search.Options{TopK: k}
	switch rank {
	case "", "quality":
		rank = "quality" // the default and the explicit form share a cache key
		opts.Authority = g.qual
		opts.AuthorityWeight = 0.7
	case "pagerank":
		opts.Authority = g.pr
		opts.AuthorityWeight = 0.7
	case "relevance":
		// content only
	default:
		http.Error(w, `parameter "rank" must be quality, pagerank or relevance`, http.StatusBadRequest)
		return
	}
	key := queryKey{gen: g.id, q: q, k: k, rank: rank}
	compute := func() ([]byte, error) {
		s.searches.Add(1)
		// The request context flows through the shard fan-out, so a client
		// that disconnects mid-query cancels its in-flight shard work.
		hits, err := g.sx.SearchContext(r.Context(), q, opts)
		if err != nil {
			return nil, err
		}
		return s.encodeHits(g, hits)
	}
	body, err := s.cache.getOrCompute(key, compute)
	// A coalesced waiter can inherit a context error from a leader whose
	// client hung up mid-search; that error belongs to the leader's request,
	// not this one. While this request is itself still live, retry — the
	// retrying waiter becomes the new leader under its own context.
	for err != nil && isCtxErr(err) && r.Context().Err() == nil {
		body, err = s.cache.getOrCompute(key, compute)
	}
	if err != nil {
		if isCtxErr(err) && r.Context().Err() != nil {
			// This client is gone; nothing useful can be written.
			return
		}
		status := http.StatusInternalServerError
		if errors.Is(err, search.ErrBadQuery) {
			status = http.StatusBadRequest
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Quality-Generation", strconv.FormatUint(g.id, 10))
	w.Write(body)
}

// isCtxErr reports whether err is a context cancellation or deadline.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// encodeHits renders the JSON response body through a pooled buffer. The
// returned slice is a private copy, safe to cache and to hand to
// concurrent writers.
func (s *service) encodeHits(g *generation, hits []search.Hit) ([]byte, error) {
	out := make([]hitJSON, 0, len(hits))
	for _, h := range hits {
		out = append(out, hitJSON{
			URL:       g.urls[h.Doc],
			Score:     h.Score,
			Relevance: h.Relevance,
			Quality:   g.qual[h.Doc],
			PageRank:  g.pr[h.Doc],
		})
	}
	buf, _ := s.bufPool.Get().(*bytes.Buffer)
	if buf == nil {
		buf = new(bytes.Buffer)
	}
	buf.Reset()
	err := json.NewEncoder(buf).Encode(out)
	var body []byte
	if err == nil {
		body = append([]byte(nil), buf.Bytes()...)
	}
	s.bufPool.Put(buf)
	return body, err
}
