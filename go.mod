module pagequality

go 1.22
