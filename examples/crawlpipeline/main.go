// Crawlpipeline: the paper's §8.1 methodology end to end, in one process.
// A synthetic Web evolves under the user-visitation model; at each crawl
// date it is served as real HTML over HTTP, downloaded by the crawler
// (following anchors until no new pages are reachable), and archived.
// The four crawled link graphs are then aligned on their common pages and
// the quality estimator is scored against the final crawl — the same
// numbers cmd/experiments reports, but produced from HTTP round trips
// rather than simulator internals.
//
// Run with:
//
//	go run ./examples/crawlpipeline
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"pagequality/internal/crawler"
	"pagequality/internal/metrics"
	"pagequality/internal/pagerank"
	"pagequality/internal/quality"
	"pagequality/internal/snapshot"
	"pagequality/internal/webcorpus"
	"pagequality/internal/webserver"
)

func main() {
	cfg := webcorpus.DefaultConfig()
	cfg.Sites = 40
	cfg.InitialPagesPerSite = 8
	cfg.BirthRate = 8
	cfg.BurnInWeeks = 40
	cfg.NoiseRate = 0.01
	cfg.ForgetRate = 0.01
	cfg.Seed = 3
	sim, err := webcorpus.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	sched := webcorpus.PaperSchedule()
	var snaps []snapshot.Snapshot
	for k, week := range sched.Times {
		sim.AdvanceTo(week)
		// Serve the live Web as HTML (a frozen copy, as a real site would
		// appear during one crawl pass).
		srv, err := webserver.New(sim.Graph().Clone(), nil)
		if err != nil {
			log.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		seeds, err := crawler.FetchSeeds(context.Background(), ts.Client(), ts.URL+"/seeds.txt")
		if err != nil {
			log.Fatal(err)
		}
		res, err := crawler.Crawl(crawler.Config{
			Seeds:           seeds,
			Client:          ts.Client(),
			Concurrency:     8,
			MaxPagesPerSite: 200000, // the paper's per-site cap
		})
		ts.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("crawl %-3s (week %4.1f): fetched %4d pages, %5d links (%d errors)\n",
			sched.Labels[k], week, res.Stats.Fetched, res.Graph.NumEdges(), res.Stats.Errors)
		snaps = append(snaps, snapshot.Snapshot{Label: sched.Labels[k], Time: week, Graph: res.Graph})
	}

	al, err := snapshot.Align(snaps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d pages common to all four crawls (the paper had 2.7M of ~5M)\n", al.NumPages())

	est, ranks, err := quality.FromAligned(al, 3,
		pagerank.Options{Variant: pagerank.VariantPaper},
		quality.Config{C: 1.0, MinChangeFrac: 0.05, ApplyTrendToDecreasing: true, MaxTrend: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	future := ranks[3]
	var errQ, errPR []float64
	for i := range est.Q {
		if !est.Changed[i] || future[i] == 0 {
			continue
		}
		q, qErr := metrics.RelativeError(est.Q[i], future[i])
		p, pErr := metrics.RelativeError(ranks[2][i], future[i])
		if qErr != nil || pErr != nil {
			continue // zero truth; already filtered above, but stay safe
		}
		errQ = append(errQ, q)
		errPR = append(errPR, p)
	}
	sq, err := metrics.Summarize(errQ)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := metrics.Summarize(errPR)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npredicting PR(t4) over %d changed pages (crawled over HTTP):\n", len(errQ))
	fmt.Printf("  quality estimate Q(p): avg rel. error %.3f\n", sq.Mean)
	fmt.Printf("  current PR(p,t3):      avg rel. error %.3f\n", sp.Mean)
	fmt.Printf("  improvement: %.2fx (the paper reports 0.32 vs 0.78, ~2.4x)\n", sp.Mean/sq.Mean)
}
