// Searchengine: a miniature quality-aware search engine over the
// synthetic corpus. It indexes the page texts, runs a topical query, and
// prints the top results under three authority signals: none (pure
// tf-idf), PageRank (the biased status quo) and the paper's quality
// estimate (the de-biased ranking). A young high-quality page that
// PageRank buries rises under the quality ranking.
//
// Run with:
//
//	go run ./examples/searchengine
package main

import (
	"fmt"
	"log"

	"pagequality/internal/metrics"
	"pagequality/internal/pagerank"
	"pagequality/internal/quality"
	"pagequality/internal/search"
	"pagequality/internal/snapshot"
	"pagequality/internal/webcorpus"
)

func main() {
	// Grow a small Web with fresh pages still in their expansion phase.
	cfg := webcorpus.DefaultConfig()
	cfg.Sites = 30
	cfg.InitialPagesPerSite = 8
	cfg.BurnInWeeks = 40
	cfg.BirthRate = 6
	cfg.Seed = 5
	sim, err := webcorpus.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	snaps, err := sim.RunSchedule(webcorpus.PaperSchedule())
	if err != nil {
		log.Fatal(err)
	}
	al, err := snapshot.Align(snaps)
	if err != nil {
		log.Fatal(err)
	}

	// Estimate quality from the first three crawls.
	est, ranks, err := quality.FromAligned(al, 3,
		pagerank.Options{Variant: pagerank.VariantPaper},
		quality.Config{C: 1.0, MinChangeFrac: 0.05, ApplyTrendToDecreasing: true, MaxTrend: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	currentPR := ranks[2]

	// Index the text of every common page (document id = aligned index).
	ix := search.NewIndex()
	for i, url := range al.URLs {
		id, ok := sim.Graph().Lookup(url)
		if !ok {
			log.Fatalf("page %s vanished", url)
		}
		doc := ix.Add(sim.PageText(id, webcorpus.TextOptions{}))
		if doc != i {
			log.Fatalf("doc id %d != aligned index %d", doc, i)
		}
	}

	// Query the topic of site 0.
	query := webcorpus.SiteTopic(0)
	fmt.Printf("query: %q over %d pages\n", query, ix.NumDocs())

	show := func(name string, auth []float64) {
		opts := search.Options{TopK: 5}
		if auth != nil {
			opts.Authority = auth
			opts.AuthorityWeight = 0.7
		}
		hits, err := ix.Search(query, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n", name)
		for rank, h := range hits {
			url := al.URLs[h.Doc]
			id, _ := sim.Graph().Lookup(url)
			pg := sim.Graph().Page(id)
			fmt.Printf("  %d. %-42s  PR=%.2f  Q̂=%.2f  trueQ=%.2f  born wk %.0f\n",
				rank+1, url, currentPR[h.Doc], est.Q[h.Doc], pg.Quality, pg.Created)
		}
	}

	show("pure tf-idf relevance", nil)
	show("relevance + PageRank authority (status quo)", currentPR)
	show("relevance + quality estimate (this paper)", est.Q)

	// Quantify: which authority signal ranks truly better pages higher?
	truth, err := sim.TrueQualities(al.URLs)
	if err != nil {
		log.Fatal(err)
	}
	// The paper's evaluation logic: the mature Web's PageRank is the best
	// available quality proxy, so a good ranking *today* should agree with
	// the PageRank of the *future* crawl (t4, four months on). Score both
	// authority signals against it, restricted to the pages whose
	// popularity is actually moving (the changed set).
	futurePR := ranks[3]
	var chQ, chPR, chFuture, chTruth []float64
	for i := range al.URLs {
		if !est.Changed[i] {
			continue
		}
		chQ = append(chQ, est.Q[i])
		chPR = append(chPR, currentPR[i])
		chFuture = append(chFuture, futurePR[i])
		chTruth = append(chTruth, truth[i])
	}
	fmt.Printf("\nagreement with the future (t4) PageRank over the %d changed pages:\n", len(chFuture))
	fmt.Printf("  %-28s NDCG@10 = %.3f\n", "PageRank authority:", mustNDCG(chPR, chFuture))
	fmt.Printf("  %-28s NDCG@10 = %.3f\n", "quality-estimate authority:", mustNDCG(chQ, chFuture))
	fmt.Printf("\nagreement with ground-truth quality over the same pages:\n")
	fmt.Printf("  %-28s NDCG@10 = %.3f\n", "PageRank authority:", mustNDCG(chPR, chTruth))
	fmt.Printf("  %-28s NDCG@10 = %.3f\n", "quality-estimate authority:", mustNDCG(chQ, chTruth))
}

func mustNDCG(scores, truth []float64) float64 {
	v, err := metrics.NDCG(scores, truth, 10)
	if err != nil {
		log.Fatal(err)
	}
	return v
}
