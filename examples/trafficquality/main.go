// Trafficquality: the §9.1 future-work direction. Instead of crawling
// link structure, we watch a page's *visit stream* (as a NetRatings-style
// traffic panel would), convert the cumulative visit log into visit rates,
// and apply the same quality estimator in traffic space:
//
//	Q(p) = (n/r)·(dV/dt)/V + V/r
//
// The estimate converges to the page's true quality long before its
// popularity does.
//
// Run with:
//
//	go run ./examples/trafficquality
package main

import (
	"fmt"
	"log"

	"pagequality/internal/traffic"
	"pagequality/internal/usersim"
)

func main() {
	// One page with true quality 0.45, watched by a traffic logger.
	cfg := usersim.Config{
		Users:        50000,
		VisitRate:    50000,
		Quality:      0.45,
		InitialLikes: 100,
		DT:           0.02,
		Seed:         2026,
	}
	sim, err := usersim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Log cumulative visits once per week for 30 weeks.
	times := []float64{sim.Time()}
	cum := []float64{float64(sim.Visits())}
	for week := 1; week <= 30; week++ {
		if _, err := sim.Run(float64(week), 1<<30); err != nil {
			log.Fatal(err)
		}
		times = append(times, sim.Time())
		cum = append(cum, float64(sim.Visits()))
	}

	series, err := traffic.FromCumulative(times, cum)
	if err != nil {
		log.Fatal(err)
	}
	est, ok, err := series.EstimateQuality(float64(cfg.Users), cfg.VisitRate)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("true quality Q = %.2f; n = %d users\n\n", cfg.Quality, cfg.Users)
	fmt.Printf("%-6s  %14s  %12s  %14s\n", "week", "visits/week", "popularity", "traffic Q-est")
	for i := range series.T {
		pop := series.Visits[i] / cfg.VisitRate
		mark := ""
		if !ok[i] {
			mark = " (no traffic)"
		}
		fmt.Printf("%-6.1f  %14.0f  %12.4f  %14.3f%s\n",
			series.T[i], series.Visits[i], pop, est[i], mark)
	}

	latest, err := series.EstimateLatest(float64(cfg.Users), cfg.VisitRate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlatest traffic-based estimate: %.3f (true quality %.2f)\n", latest, cfg.Quality)
	fmt.Println("The estimate hovers near Q from the earliest weeks, while the raw")
	fmt.Println("popularity needs the full expansion phase to catch up — the same")
	fmt.Println("early-detection advantage as the link-based estimator, from traffic alone.")
}
