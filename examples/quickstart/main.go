// Quickstart: build a tiny Web graph by hand, compute PageRank, then feed
// three snapshots to the quality estimator and watch it spot the rising
// page before raw PageRank does.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pagequality/internal/graph"
	"pagequality/internal/pagerank"
	"pagequality/internal/quality"
	"pagequality/internal/snapshot"
)

// buildSnapshot assembles one crawl of a five-page web. The page "new"
// gains one extra in-link per crawl; the others are static.
func buildSnapshot(label string, week float64, extraLinksToNew int) snapshot.Snapshot {
	g := graph.New(5)
	urls := []string{"home", "docs", "blog", "about", "new"}
	ids := make(map[string]graph.NodeID, len(urls))
	for _, u := range urls {
		ids[u] = g.MustAddPage(graph.Page{URL: u})
	}
	// The established core links to itself.
	g.AddLink(ids["home"], ids["docs"])
	g.AddLink(ids["home"], ids["blog"])
	g.AddLink(ids["docs"], ids["home"])
	g.AddLink(ids["blog"], ids["home"])
	g.AddLink(ids["about"], ids["home"])
	g.AddLink(ids["home"], ids["about"])
	// The new page accumulates links crawl by crawl.
	sources := []string{"docs", "blog", "about", "home"}
	for i := 0; i < extraLinksToNew && i < len(sources); i++ {
		g.AddLink(ids[sources[i]], ids["new"])
	}
	return snapshot.Snapshot{Label: label, Time: week, Graph: g}
}

func main() {
	// 1. Three crawls, one month apart: "new" has 1, 2, then 3 in-links.
	snaps := []snapshot.Snapshot{
		buildSnapshot("t1", 0, 1),
		buildSnapshot("t2", 4, 2),
		buildSnapshot("t3", 8, 3),
	}

	// 2. PageRank of the latest crawl (the paper's 1-initialised variant).
	c := graph.Freeze(snaps[2].Graph)
	pr, err := pagerank.Compute(c, pagerank.Options{Variant: pagerank.VariantPaper})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PageRank at t3:")
	for i := 0; i < c.NumNodes(); i++ {
		fmt.Printf("  %-6s PR = %.3f\n", snaps[2].Graph.Page(graph.NodeID(i)).URL, pr.Rank[i])
	}

	// 3. Align the snapshots and estimate quality from the PageRank trend.
	al, err := snapshot.Align(snaps)
	if err != nil {
		log.Fatal(err)
	}
	est, ranks, err := quality.FromAligned(al, 3,
		pagerank.Options{Variant: pagerank.VariantPaper}, quality.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nQuality estimate vs current PageRank:")
	fmt.Printf("  %-6s  %-11s  %8s  %8s\n", "page", "class", "PR(t3)", "Q(p)")
	for i, url := range al.URLs {
		fmt.Printf("  %-6s  %-11s  %8.3f  %8.3f\n",
			url, est.Class[i], ranks[2][i], est.Q[i])
	}
	fmt.Println("\nThe 'new' page's rising trend lifts its quality estimate above its")
	fmt.Println("current PageRank — the paper's antidote to the rich-get-richer bias.")
}
