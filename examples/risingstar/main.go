// Risingstar: the paper's motivating scenario, end to end. A brand-new
// high-quality page is injected into an established synthetic Web just
// before the first crawl. We then crawl every four weeks and compare how
// the page climbs two rankings: raw PageRank versus the paper's quality
// estimate. The quality estimator surfaces the page weeks before
// PageRank does — the antidote to the rich-get-richer bias.
//
// Run with:
//
//	go run ./examples/risingstar
package main

import (
	"fmt"
	"log"
	"sort"

	"pagequality/internal/pagerank"
	"pagequality/internal/quality"
	"pagequality/internal/snapshot"
	"pagequality/internal/webcorpus"
)

func main() {
	// An established Web: 40 sites aged well past their expansion phase.
	cfg := webcorpus.DefaultConfig()
	cfg.Sites = 40
	cfg.InitialPagesPerSite = 8
	cfg.BurnInWeeks = 60
	cfg.BirthRate = 0 // we control the only new page ourselves
	cfg.NoiseRate = 0.002
	cfg.ForgetRate = 0
	cfg.Seed = 11
	sim, err := webcorpus.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Inject the rising star: a new page of top quality, born at week 0.
	const starQuality = 0.9
	starID, err := sim.BirthPage(0, starQuality)
	if err != nil {
		log.Fatal(err)
	}
	starURL := sim.Graph().Page(starID).URL
	fmt.Printf("rising star: %s (true quality %.2f, born week 0)\n\n", starURL, starQuality)

	// Crawl every 4 weeks for 40 weeks.
	sched := webcorpus.Schedule{}
	for w := 0; w <= 40; w += 4 {
		sched.Times = append(sched.Times, float64(w))
		sched.Labels = append(sched.Labels, fmt.Sprintf("week%02d", w))
	}
	snaps, err := sim.RunSchedule(sched)
	if err != nil {
		log.Fatal(err)
	}
	al, err := snapshot.Align(snaps)
	if err != nil {
		log.Fatal(err)
	}
	ranks, err := al.PageRankSeries(pagerank.Options{Variant: pagerank.VariantPaper})
	if err != nil {
		log.Fatal(err)
	}
	star := -1
	for i, u := range al.URLs {
		if u == starURL {
			star = i
			break
		}
	}
	if star < 0 {
		log.Fatal("star page missing from the common set")
	}
	truth, err := sim.TrueQualities(al.URLs)
	if err != nil {
		log.Fatal(err)
	}
	truthRank := rankOf(truth, star)

	est := quality.Config{C: 1.0, MinChangeFrac: 0.05, ApplyTrendToDecreasing: true, MaxTrend: 0.3}
	n := len(al.URLs)
	fmt.Printf("%-8s  %10s  %10s    (true-quality rank: %d/%d)\n", "crawl", "PR rank", "Q rank", truthRank, n)
	// From the third crawl on there is enough history for the estimator
	// (a rolling three-snapshot window, as in the paper).
	for k := 2; k < len(ranks); k++ {
		res, err := quality.EstimateFromSeries(ranks[k-2:k+1], est)
		if err != nil {
			log.Fatal(err)
		}
		prRank := rankOf(ranks[k], star)
		qRank := rankOf(res.Q, star)
		gain := ""
		if qRank < prRank {
			gain = fmt.Sprintf("  <- quality ranks it %d places higher", prRank-qRank)
		}
		fmt.Printf("%-8s  %7d/%-4d %7d/%-4d%s\n", al.Labels[k], prRank, n, qRank, n, gain)
	}
	fmt.Println("\nDuring the expansion phase the quality estimate anticipates the page's")
	fmt.Println("eventual standing, surfacing it earlier than PageRank alone would.")
}

// rankOf returns the 1-based position of index i when scores are sorted
// descending.
func rankOf(scores []float64, i int) int {
	order := make([]int, len(scores))
	for k := range order {
		order[k] = k
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	for pos, k := range order {
		if k == i {
			return pos + 1
		}
	}
	return -1
}
