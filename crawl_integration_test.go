package pagequality_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"pagequality/internal/crawler"
	"pagequality/internal/metrics"
	"pagequality/internal/pagerank"
	"pagequality/internal/quality"
	"pagequality/internal/snapshot"
	"pagequality/internal/webcorpus"
	"pagequality/internal/webserver"
)

// TestCrawledPipeline reproduces the paper's §8.1 methodology literally:
// the synthetic Web is served over HTTP, downloaded four times on the
// Figure-4 schedule by the crawler (following links until no new pages
// are reachable), the crawled snapshots are aligned on their common
// pages, and the quality estimator is evaluated against the fourth
// crawl's PageRank. The estimator must beat the current PageRank even
// though the graphs were reconstructed from HTML rather than read from
// the simulator.
func TestCrawledPipeline(t *testing.T) {
	cfg := webcorpus.DefaultConfig()
	cfg.Sites = 20
	cfg.InitialPagesPerSite = 6
	cfg.BirthRate = 5
	cfg.BurnInWeeks = 40
	cfg.NoiseRate = 0.01
	cfg.ForgetRate = 0.01
	cfg.Seed = 6
	sim, err := webcorpus.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	sched := webcorpus.PaperSchedule()
	var snaps []snapshot.Snapshot
	for k, week := range sched.Times {
		sim.AdvanceTo(week)
		srv, err := webserver.New(sim.Graph().Clone(), nil)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		seeds, err := crawler.FetchSeeds(context.Background(), ts.Client(), ts.URL+"/seeds.txt")
		if err != nil {
			ts.Close()
			t.Fatal(err)
		}
		res, err := crawler.Crawl(crawler.Config{
			Seeds:           seeds,
			Client:          ts.Client(),
			Concurrency:     8,
			MaxPagesPerSite: 200000, // the paper's cap
		})
		ts.Close()
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Errors != 0 {
			t.Fatalf("crawl %d: %d fetch errors", k, res.Stats.Errors)
		}
		if res.Graph.NumNodes() < 50 {
			t.Fatalf("crawl %d found only %d pages", k, res.Graph.NumNodes())
		}
		snaps = append(snaps, snapshot.Snapshot{
			Label: sched.Labels[k],
			Time:  week,
			Graph: res.Graph,
		})
	}

	al, err := snapshot.Align(snaps)
	if err != nil {
		t.Fatal(err)
	}
	if al.NumPages() < 50 {
		t.Fatalf("only %d common pages across crawls", al.NumPages())
	}
	est, ranks, err := quality.FromAligned(al, 3,
		pagerank.Options{Variant: pagerank.VariantPaper},
		quality.Config{C: 1.0, MinChangeFrac: 0.05, ApplyTrendToDecreasing: true, MaxTrend: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	future := ranks[3]
	var errQ, errPR []float64
	for i := range est.Q {
		if !est.Changed[i] || future[i] == 0 {
			continue
		}
		q, err := metrics.RelativeError(est.Q[i], future[i])
		if err != nil {
			t.Fatal(err)
		}
		p, err := metrics.RelativeError(ranks[2][i], future[i])
		if err != nil {
			t.Fatal(err)
		}
		errQ = append(errQ, q)
		errPR = append(errPR, p)
	}
	if len(errQ) < 30 {
		t.Fatalf("only %d changed pages in the crawled series", len(errQ))
	}
	sq, err := metrics.Summarize(errQ)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := metrics.Summarize(errPR)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("crawled pipeline: %d common pages, %d evaluated; avgErr Q=%.3f PR=%.3f",
		al.NumPages(), len(errQ), sq.Mean, sp.Mean)
	if sq.Mean >= sp.Mean {
		t.Fatalf("estimator %.3f not below PageRank %.3f on crawled snapshots", sq.Mean, sp.Mean)
	}
}
