// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus end-to-end performance benchmarks of the pipeline
// stages. Each BenchmarkTableX/BenchmarkFigureX target runs the exact
// driver that cmd/experiments prints, so `go test -bench=Figure` both
// times the reproduction and re-validates it (each iteration asserts the
// paper's shape).
package pagequality_test

import (
	"math"
	"math/rand"
	"testing"

	"pagequality/internal/experiments"
	"pagequality/internal/graph"
	"pagequality/internal/model"
	"pagequality/internal/pagerank"
	"pagequality/internal/quality"
	"pagequality/internal/search"
	"pagequality/internal/snapshot"
	"pagequality/internal/usersim"
	"pagequality/internal/webcorpus"
)

// benchHeadlineConfig is the corpus used by the corpus-scale benchmarks:
// smaller than the paper's 154 sites so a -bench run stays in seconds, but
// identical in shape. cmd/experiments runs the full 154-site version.
func benchHeadlineConfig() experiments.HeadlineConfig {
	cfg := experiments.DefaultHeadlineConfig()
	cfg.Corpus.Sites = 30
	cfg.Corpus.BirthRate = 6
	cfg.Corpus.Seed = 1
	return cfg
}

// BenchmarkTable1Notation regenerates the notation table (Table 1).
func BenchmarkTable1Notation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table1()) != 8 {
			b.Fatal("table 1 incomplete")
		}
	}
}

// BenchmarkFigure1 regenerates the sigmoidal popularity evolution.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		if last := res.Trajectory.P[len(res.Trajectory.P)-1]; math.Abs(last-0.8) > 0.01 {
			b.Fatalf("figure 1 plateau %g", last)
		}
	}
}

// BenchmarkFigure2 regenerates the I(p,t)/P(p,t) complementarity curves.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		if res.I[0] < 0.19 {
			b.Fatalf("figure 2 early I = %g", res.I[0])
		}
	}
}

// BenchmarkFigure3 regenerates the flat Theorem-2 line.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Sum {
			if math.Abs(s-0.2) > 1e-9 {
				b.Fatalf("figure 3 not flat: %g", s)
			}
		}
	}
}

// BenchmarkFigure4 regenerates the snapshot timeline.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if g := experiments.Figure4().Gaps(); g[2] != 18 {
			b.Fatalf("figure 4 gaps %v", g)
		}
	}
}

// BenchmarkHeadlineError regenerates the §8.2 headline numbers (avg
// relative error of Q vs PR predicting the future PageRank).
func BenchmarkHeadlineError(b *testing.B) {
	cfg := benchHeadlineConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHeadline(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.AvgErrQ >= res.AvgErrPR {
			b.Fatalf("shape violated: %g >= %g", res.AvgErrQ, res.AvgErrPR)
		}
	}
}

// BenchmarkFigure5 regenerates the error histogram.
func BenchmarkFigure5(b *testing.B) {
	cfg := benchHeadlineConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHeadline(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.FracFirstQ <= res.FracFirstPR {
			b.Fatalf("first-bin shape violated: %g <= %g", res.FracFirstQ, res.FracFirstPR)
		}
	}
}

// BenchmarkAblationC regenerates the C sweep (Ablation A).
func BenchmarkAblationC(b *testing.B) {
	cfg := benchHeadlineConfig()
	cs := []float64{0.1, 1.0, 2.0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationC(cfg, cs)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 3 {
			b.Fatal("sweep incomplete")
		}
	}
}

// BenchmarkAblationForgetting regenerates Ablation B.
func BenchmarkAblationForgetting(b *testing.B) {
	cfg := benchHeadlineConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationForgetting(cfg, 0.01, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWindow regenerates Ablation C.
func BenchmarkAblationWindow(b *testing.B) {
	cfg := benchHeadlineConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationWindow(cfg, []float64{1, 8}, 26); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidateModel regenerates the simulation-vs-theory check.
func BenchmarkValidateModel(b *testing.B) {
	cfg := usersim.Config{
		Users: 20000, VisitRate: 20000, Quality: 0.5,
		InitialLikes: 100, DT: 0.02, Seed: 42,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := experiments.ValidateModel(cfg, 30)
		if err != nil {
			b.Fatal(err)
		}
		if v.MaxAbsDiff > 0.1 {
			b.Fatalf("model deviation %g", v.MaxAbsDiff)
		}
	}
}

// ---- pipeline-stage performance benchmarks ----

// BenchmarkCorpusGrowth times growing and burning in a corpus.
func BenchmarkCorpusGrowth(b *testing.B) {
	cfg := webcorpus.DefaultConfig()
	cfg.Sites = 30
	cfg.BirthRate = 6
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := webcorpus.New(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorpusTick times the two-phase tick kernel alone (no corpus
// construction in the measured op) at workers=1 vs workers=max, on a
// corpus large enough to span several draw chunks. Bitwise invariance
// across the two settings is enforced by TestStepWorkerCountInvariance.
func BenchmarkCorpusTick(b *testing.B) {
	for _, bench := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=max", 0}} {
		b.Run(bench.name, func(b *testing.B) {
			cfg := webcorpus.DefaultConfig()
			cfg.Sites = 154
			cfg.BirthRate = 30
			cfg.BurnInWeeks = 40
			cfg.Seed = 1
			cfg.Workers = bench.workers
			sim, err := webcorpus.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Step()
			}
		})
	}
}

// BenchmarkSnapshotEncodeDecode times store persistence of a four-crawl
// series.
func BenchmarkSnapshotEncodeDecode(b *testing.B) {
	cfg := webcorpus.DefaultConfig()
	cfg.Sites = 30
	cfg.BirthRate = 6
	cfg.Seed = 1
	sim, err := webcorpus.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	snaps, err := sim.RunSchedule(webcorpus.PaperSchedule())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := snapshot.Encode(snaps)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := snapshot.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlignAndPageRankSeries times alignment plus the four PageRank
// computations of the experiment.
func BenchmarkAlignAndPageRankSeries(b *testing.B) {
	cfg := webcorpus.DefaultConfig()
	cfg.Sites = 30
	cfg.BirthRate = 6
	cfg.Seed = 1
	sim, err := webcorpus.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	snaps, err := sim.RunSchedule(webcorpus.PaperSchedule())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al, err := snapshot.Align(snaps)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := al.PageRankSeries(pagerank.Options{Variant: pagerank.VariantPaper}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQualityEstimate times the estimator itself over a realistic
// series (isolated from corpus and PageRank costs).
func BenchmarkQualityEstimate(b *testing.B) {
	n := 100_000
	ranks := make([][]float64, 3)
	for k := range ranks {
		ranks[k] = make([]float64, n)
		for i := range ranks[k] {
			ranks[k][i] = 0.15 + float64((i*7+k*13)%100)/50
		}
	}
	cfg := quality.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := quality.EstimateFromSeries(ranks, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheorem1Eval times the closed-form popularity evaluation.
func BenchmarkTheorem1Eval(b *testing.B) {
	p := model.Params{Q: 0.8, N: 1e8, R: 1e8, P0: 1e-8}
	for i := 0; i < b.N; i++ {
		if p.EstimateQ(float64(i%200)) < 0 {
			b.Fatal("negative estimate")
		}
	}
}

// BenchmarkPageRank100k times PageRank on a 100k-node synthetic web.
func BenchmarkPageRank100k(b *testing.B) {
	g, err := graph.GeneratePreferentialAttachment(
		graph.PreferentialAttachmentConfig{Nodes: 100_000, OutPerNode: 8},
		newRand(1))
	if err != nil {
		b.Fatal(err)
	}
	c := graph.Freeze(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pagerank.Compute(c, pagerank.Options{Tol: 1e-8})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("did not converge")
		}
	}
}

// newRand is a tiny helper keeping the benchmark imports tidy.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// BenchmarkIncrementalPageRank is the before/after benchmark of the
// delta-aware refresh path: a 100k-node preferential-attachment web with
// ~1% churn (new nodes plus edge adds and removals), solved by
// ComputeIncremental seeded from the pre-churn fixed point versus a cold
// full Compute. The setup asserts the two fixed points agree on the sum-1
// normalised vectors and that churn stays below the fallback threshold,
// so both sub-benchmarks time real converged solves of the same problem.
func BenchmarkIncrementalPageRank(b *testing.B) {
	const nodes = 100_000
	rng := newRand(1)
	g, err := graph.GeneratePreferentialAttachment(
		graph.PreferentialAttachmentConfig{Nodes: nodes, OutPerNode: 8}, rng)
	if err != nil {
		b.Fatal(err)
	}
	old := graph.Freeze(g)

	// ~1% churn: 300 removals, 500 additions, 100 new pages.
	for removed := 0; removed < 300; {
		from := graph.NodeID(rng.Intn(nodes))
		if outs := g.OutLinks(from); len(outs) > 1 {
			if g.RemoveLink(from, outs[rng.Intn(len(outs))]) {
				removed++
			}
		}
	}
	for added := 0; added < 500; {
		if g.AddLink(graph.NodeID(rng.Intn(nodes)), graph.NodeID(rng.Intn(nodes))) {
			added++
		}
	}
	first := g.AddNodes(100)
	for i := 0; i < 100; i++ {
		g.AddLink(graph.NodeID(rng.Intn(nodes)), first+graph.NodeID(i))
		g.AddLink(first+graph.NodeID(i), graph.NodeID(rng.Intn(nodes)))
	}
	cur := graph.Freeze(g)
	d, err := graph.Diff(old, cur)
	if err != nil {
		b.Fatal(err)
	}

	opts := pagerank.Options{Tol: 1e-8}
	incOpts := pagerank.IncrementalOptions{Options: opts}
	prev, err := pagerank.Compute(old, opts)
	if err != nil || !prev.Converged {
		b.Fatalf("pre-churn solve: %v", err)
	}
	full, err := pagerank.Compute(cur, opts)
	if err != nil || !full.Converged {
		b.Fatalf("full solve: %v", err)
	}
	inc, err := pagerank.ComputeIncremental(cur, prev.Rank, d, incOpts)
	if err != nil || !inc.Converged {
		b.Fatalf("incremental solve: %v", err)
	}
	if inc.FullRecompute {
		b.Fatalf("churn fallback tripped: %d dirty of %d nodes", inc.Dirty, cur.NumNodes())
	}
	sumF, sumI, l1 := 0.0, 0.0, 0.0
	for i := range full.Rank {
		sumF += full.Rank[i]
		sumI += inc.Rank[i]
	}
	for i := range full.Rank {
		l1 += math.Abs(inc.Rank[i]/sumI - full.Rank[i]/sumF)
	}
	if l1 > 10*opts.Tol {
		b.Fatalf("incremental diverges from full recompute: normalised L1 = %g", l1)
	}

	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := pagerank.ComputeIncremental(cur, prev.Rank, d, incOpts)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Converged || res.FullRecompute {
				b.Fatalf("bad solve: %+v", res)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := pagerank.Compute(cur, opts)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Converged {
				b.Fatal("did not converge")
			}
		}
	})
}

// benchGraph100k builds the 100k-node preferential-attachment graph used
// by the kernel benchmarks, with extra guaranteed dangling nodes so the
// dangling policy has real mass to move.
func benchGraph100k(b *testing.B) *graph.CSR {
	b.Helper()
	rng := newRand(1)
	g, err := graph.GeneratePreferentialAttachment(
		graph.PreferentialAttachmentConfig{Nodes: 100_000, OutPerNode: 8}, rng)
	if err != nil {
		b.Fatal(err)
	}
	first := g.AddNodes(2000)
	for i := 0; i < 2000; i++ {
		g.AddLink(graph.NodeID(rng.Intn(100_000)), first+graph.NodeID(i))
	}
	return graph.Freeze(g)
}

// BenchmarkPageRankKernel is the before/after benchmark of the PageRank
// hot-path rebuild: "reference" is the retained naive implementation
// (closure indirection, one division per edge, serial reduction passes),
// "optimized" is the specialised flat kernel with fused per-chunk
// reductions. Both run at Workers = GOMAXPROCS. The setup asserts the two
// agree to 1e-12 on the sum-1 normalised vectors.
func BenchmarkPageRankKernel(b *testing.B) {
	c := benchGraph100k(b)
	opts := pagerank.Options{Tol: 1e-8}

	check := pagerank.Options{Tol: 1e-13, MaxIter: 1000}
	fast, err := pagerank.Compute(c, check)
	if err != nil {
		b.Fatal(err)
	}
	ref, err := pagerank.ComputeReference(c, check)
	if err != nil {
		b.Fatal(err)
	}
	if !fast.Converged || !ref.Converged {
		b.Fatal("verification runs did not converge")
	}
	total := 0.0
	for _, v := range fast.Rank {
		total += v
	}
	for i := range fast.Rank {
		if d := math.Abs(fast.Rank[i]-ref.Rank[i]) / total; d > 1e-12 {
			b.Fatalf("kernel diverges from reference at node %d by %g (normalised)", i, d)
		}
	}

	b.Run("optimized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := pagerank.Compute(c, opts)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Converged {
				b.Fatal("did not converge")
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := pagerank.ComputeReference(c, opts)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Converged {
				b.Fatal("did not converge")
			}
		}
	})
}

// BenchmarkPageRankSeries times the aligned-series PageRank fan-out: four
// 100k-node snapshots, comparing the single-snapshot-at-a-time worker
// budget against the parallel fan-out. Each sub-benchmark freezes its
// CSRs once before the timer starts — the cache means a real experiment
// pays that cost once too — so the measured op is the series computation
// itself.
func BenchmarkPageRankSeries(b *testing.B) {
	graphs := make([]*graph.Graph, 4)
	times := make([]float64, 4)
	labels := make([]string, 4)
	for k := range graphs {
		g, err := graph.GeneratePreferentialAttachment(
			graph.PreferentialAttachmentConfig{Nodes: 100_000, OutPerNode: 4 + k}, newRand(int64(k+1)))
		if err != nil {
			b.Fatal(err)
		}
		graphs[k] = g
		times[k] = float64(k)
		labels[k] = "t" + string(rune('1'+k))
	}
	for _, bench := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=max", 0}} {
		b.Run(bench.name, func(b *testing.B) {
			al := &snapshot.Aligned{Times: times, Labels: labels, Graphs: graphs}
			al.CSRs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := al.PageRankSeries(pagerank.Options{Tol: 1e-8, Workers: bench.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchSearchIndex builds the webcorpus-scale index used by the query
// benchmarks, plus a synthetic authority vector for the blended modes.
func benchSearchIndex(b *testing.B) (*search.Index, []float64) {
	b.Helper()
	cfg := webcorpus.DefaultConfig()
	cfg.Sites = 60
	cfg.BirthRate = 10
	cfg.Seed = 3
	sim, err := webcorpus.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ix := search.NewIndex()
	for _, text := range sim.AllTexts(webcorpus.TextOptions{}) {
		ix.Add(text)
	}
	auth := make([]float64, ix.NumDocs())
	for i := range auth {
		auth[i] = float64(i%97) / 97
	}
	return ix, auth
}

// BenchmarkSearchQuery times the uncached query hot path of the search
// engine over a webcorpus-scale index: a short topical query and a
// multi-term query dominated by high-document-frequency background words
// (the worst case for per-posting work), under each ranking mode. One
// warm-up query runs before the timer so index freezing is excluded — a
// serving process pays that cost once, not per query.
func BenchmarkSearchQuery(b *testing.B) {
	ix, auth := benchSearchIndex(b)
	// "astronomy" appears in page titles; commonN words span every site.
	const (
		shortQ = "astronomy"
		multiQ = "common1 common2 common3 common4 astronomy1 databases2 cycling3 chess4"
	)
	for _, bench := range []struct {
		name  string
		query string
		opts  search.Options
	}{
		{"vector/short", shortQ, search.Options{TopK: 10}},
		{"vector/multi", multiQ, search.Options{TopK: 10}},
		{"vector/multi/blend", multiQ, search.Options{TopK: 10, Authority: auth, AuthorityWeight: 0.7}},
		{"bm25/multi", multiQ, search.Options{TopK: 10, Mode: search.ModeBM25}},
		{"boolean-or/multi", multiQ, search.Options{TopK: 10, Mode: search.ModeBooleanOr}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			if _, err := ix.Search(bench.query, bench.opts); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hits, err := ix.Search(bench.query, bench.opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(hits) == 0 {
					b.Fatal("no hits")
				}
			}
		})
	}
}

// BenchmarkAblationEstimator regenerates Ablation D (endpoint vs
// regression).
func BenchmarkAblationEstimator(b *testing.B) {
	cfg := benchHeadlineConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationEstimator(cfg, 5, 2, 26)
		if err != nil {
			b.Fatal(err)
		}
		if res.AvgErrRegression > res.AvgErrEndpoint*1.05 {
			b.Fatalf("regression materially worse: %g vs %g", res.AvgErrRegression, res.AvgErrEndpoint)
		}
	}
}

// BenchmarkAblationSolver regenerates Ablation E (PageRank solver
// comparison) at a bench-friendly graph size.
func BenchmarkAblationSolver(b *testing.B) {
	cfg := benchHeadlineConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationPageRankSolver(cfg, 20_000, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 3 {
			b.Fatal("incomplete solver sweep")
		}
	}
}
