package usersim

import (
	"errors"
	"testing"
)

func ensembleConfig() Config {
	return Config{
		Users:        5000,
		VisitRate:    5000,
		Quality:      0.4,
		InitialLikes: 50,
		DT:           0.05,
		Seed:         100,
	}
}

func TestEnsembleValidation(t *testing.T) {
	cfg := ensembleConfig()
	if _, err := RunEnsemble(cfg, 1, 10, 5); !errors.Is(err, ErrBadConfig) {
		t.Fatal("single run accepted")
	}
	if _, err := RunEnsemble(cfg, 4, 0, 5); !errors.Is(err, ErrBadConfig) {
		t.Fatal("zero tMax accepted")
	}
	bad := cfg
	bad.Users = 0
	if _, err := RunEnsemble(bad, 4, 10, 5); !errors.Is(err, ErrBadConfig) {
		t.Fatal("invalid config accepted")
	}
}

func TestEnsembleMeanTracksTheorem1(t *testing.T) {
	cfg := ensembleConfig()
	ens, err := RunEnsemble(cfg, 16, 25, 20)
	if err != nil {
		t.Fatal(err)
	}
	if ens.Runs != 16 || len(ens.T) != len(ens.Mean) || len(ens.Mean) != len(ens.Std) {
		t.Fatalf("ensemble shape wrong: %+v", ens)
	}
	// The ensemble mean must track the closed form tighter than any single
	// run is required to.
	if d := ens.MaxDeviationFrom(cfg.ModelParams()); d > 0.03 {
		t.Fatalf("ensemble mean deviates by %g", d)
	}
	// Spread exists during expansion.
	maxStd := 0.0
	for _, s := range ens.Std {
		if s > maxStd {
			maxStd = s
		}
	}
	if maxStd == 0 {
		t.Fatal("no stochastic spread across runs")
	}
	// Initial state is deterministic: zero spread at t=0.
	if ens.Std[0] != 0 {
		t.Fatalf("spread at t=0: %g", ens.Std[0])
	}
}

func TestEnsembleDeterministic(t *testing.T) {
	cfg := ensembleConfig()
	a, err := RunEnsemble(cfg, 6, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEnsemble(cfg, 6, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Mean {
		if a.Mean[j] != b.Mean[j] || a.Std[j] != b.Std[j] { //pqlint:allow floateq bitwise reproducibility under fixed seeds is the property under test
			t.Fatal("ensemble not deterministic under fixed seeds")
		}
	}
}

// The spread shrinks as the user population grows (the 1/sqrt(n) scaling
// that motivates §9.1's noise discussion for low-popularity pages).
func TestEnsembleSpreadShrinksWithUsers(t *testing.T) {
	small := ensembleConfig()
	big := ensembleConfig()
	big.Users = 40000
	big.VisitRate = 40000
	big.InitialLikes = 400 // same P0

	sEns, err := RunEnsemble(small, 12, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	bEns, err := RunEnsemble(big, 12, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	peak := func(e *Ensemble) float64 {
		m := 0.0
		for _, s := range e.Std {
			if s > m {
				m = s
			}
		}
		return m
	}
	if peak(bEns) >= peak(sEns) {
		t.Fatalf("spread did not shrink with users: %g vs %g", peak(bEns), peak(sEns))
	}
}

func BenchmarkEnsemble(b *testing.B) {
	cfg := ensembleConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunEnsemble(cfg, 8, 15, 50); err != nil {
			b.Fatal(err)
		}
	}
}
