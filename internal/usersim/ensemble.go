package usersim

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"pagequality/internal/model"
)

// Ensemble aggregates many independent runs of the same page
// configuration: the empirical mean trajectory and its pointwise standard
// deviation. The mean converges to the Theorem-1 closed form as runs
// grow, and the standard deviation quantifies the §9.1 statistical noise
// the snapshot estimator has to survive.
type Ensemble struct {
	// T are the shared sample times.
	T []float64
	// Mean[i] and Std[i] are the across-run mean and standard deviation of
	// the popularity at T[i].
	Mean, Std []float64
	// Runs is the number of simulations aggregated.
	Runs int
}

// RunEnsemble executes runs independent simulations of cfg (seeds
// cfg.Seed, cfg.Seed+1, ...) in parallel and aggregates their
// trajectories. Every run samples at the same step boundaries, so the
// trajectories align exactly.
func RunEnsemble(cfg Config, runs int, tMax float64, sampleEvery int) (*Ensemble, error) {
	if runs < 2 {
		return nil, fmt.Errorf("%w: runs=%d (need >= 2 for a spread)", ErrBadConfig, runs)
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if tMax <= 0 {
		return nil, fmt.Errorf("%w: tMax=%g", ErrBadConfig, tMax)
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}

	trajectories := make([]model.Trajectory, runs)
	errs := make([]error, runs)
	workers := min(runs, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				run := cfg
				run.Seed = cfg.Seed + int64(i)
				sim, err := New(run)
				if err != nil {
					errs[i] = err
					continue
				}
				trajectories[i], errs[i] = sim.Run(tMax, sampleEvery)
			}
		}()
	}
	for i := 0; i < runs; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// All runs share the same step grid; verify and aggregate.
	base := trajectories[0]
	for i := 1; i < runs; i++ {
		if len(trajectories[i].T) != len(base.T) {
			return nil, fmt.Errorf("usersim: run %d sampled %d points, run 0 sampled %d",
				i, len(trajectories[i].T), len(base.T))
		}
	}
	m := len(base.T)
	ens := &Ensemble{
		T:    append([]float64(nil), base.T...),
		Mean: make([]float64, m),
		Std:  make([]float64, m),
		Runs: runs,
	}
	for j := 0; j < m; j++ {
		sum := 0.0
		for i := 0; i < runs; i++ {
			sum += trajectories[i].P[j]
		}
		mean := sum / float64(runs)
		varSum := 0.0
		for i := 0; i < runs; i++ {
			d := trajectories[i].P[j] - mean
			varSum += d * d
		}
		ens.Mean[j] = mean
		ens.Std[j] = math.Sqrt(varSum / float64(runs-1))
	}
	return ens, nil
}

// MaxDeviationFrom returns the sup-norm distance between the ensemble
// mean and the analytic popularity of the given parameters.
func (e *Ensemble) MaxDeviationFrom(p model.Params) float64 {
	d := 0.0
	for j, t := range e.T {
		if x := math.Abs(e.Mean[j] - p.PopularityAt(t)); x > d {
			d = x
		}
	}
	return d
}
