// Package usersim is an agent-based stochastic simulation of the paper's
// user-visitation model (Section 6). It implements the two hypotheses
// literally — visits arrive at rate V(p,t) = r·P(p,t) (Proposition 1,
// popularity-equivalence) and each visit is made by a uniformly random one
// of the n users (Proposition 2, random-visit) — and tracks awareness and
// liking per user. Its trajectories converge to the closed forms of
// internal/model as n grows, which is how the test suite validates
// Theorem 1 end to end.
package usersim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"pagequality/internal/bitset"
	"pagequality/internal/model"
	"pagequality/internal/randx"
)

// Config parameterises a single-page simulation.
type Config struct {
	// Users is n, the total number of Web users.
	Users int
	// VisitRate is r: the page receives r·P(p,t) visits per unit time.
	VisitRate float64
	// Quality is Q(p): the probability a newly aware user likes the page.
	Quality float64
	// InitialLikes seeds the page with this many users who already know
	// and like it (P(p,0) = InitialLikes/Users). Must be >= 1: a page
	// nobody likes receives no visits under the model.
	InitialLikes int
	// ForgetRate is the §9.1 extension: each aware user forgets the page
	// at this rate per unit time (0 disables forgetting).
	ForgetRate float64
	// DT is the simulation time step (default 0.05).
	DT float64
	// Seed makes the run deterministic.
	Seed int64
}

// ErrBadConfig reports invalid simulation configuration.
var ErrBadConfig = errors.New("usersim: bad config")

func (c *Config) fill() error {
	if c.DT == 0 {
		c.DT = 0.05
	}
	switch {
	case c.Users < 2:
		return fmt.Errorf("%w: Users=%d", ErrBadConfig, c.Users)
	case c.VisitRate <= 0:
		return fmt.Errorf("%w: VisitRate=%g", ErrBadConfig, c.VisitRate)
	case !(c.Quality > 0 && c.Quality <= 1):
		return fmt.Errorf("%w: Quality=%g", ErrBadConfig, c.Quality)
	case c.InitialLikes < 1 || c.InitialLikes > c.Users:
		return fmt.Errorf("%w: InitialLikes=%d", ErrBadConfig, c.InitialLikes)
	case c.ForgetRate < 0:
		return fmt.Errorf("%w: ForgetRate=%g", ErrBadConfig, c.ForgetRate)
	case c.DT <= 0:
		return fmt.Errorf("%w: DT=%g", ErrBadConfig, c.DT)
	}
	return nil
}

// ModelParams returns the analytic parameters this configuration
// corresponds to, for direct comparison with internal/model.
func (c Config) ModelParams() model.Params {
	return model.Params{
		Q:  c.Quality,
		N:  float64(c.Users),
		R:  c.VisitRate,
		P0: float64(c.InitialLikes) / float64(c.Users),
	}
}

// Sim is the mutable state of one page's simulation.
type Sim struct {
	cfg   Config
	rng   *rand.Rand
	aware *bitset.Set
	likes *bitset.Set
	// awareList mirrors the aware bitset for O(1) random removal when
	// forgetting is enabled.
	awareList []int32
	// pos[u] is the index of user u in awareList, or -1.
	pos       []int32
	nLikes    int
	tick      uint64 // completed steps; the clock is derived as tick*DT
	time      float64
	visits    int64 // cumulative visit count
	discovers int64 // visits that were first discoveries
}

// New creates a simulation in its initial state.
func New(cfg Config) (*Sim, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	s := &Sim{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		aware: bitset.New(cfg.Users),
		likes: bitset.New(cfg.Users),
		pos:   make([]int32, cfg.Users),
	}
	for i := range s.pos {
		s.pos[i] = -1
	}
	// The first InitialLikes users start aware and liking. Which users
	// they are is irrelevant under the random-visit hypothesis.
	for u := 0; u < cfg.InitialLikes; u++ {
		s.addAware(int32(u))
		s.likes.Set(u)
		s.nLikes++
	}
	return s, nil
}

func (s *Sim) addAware(u int32) {
	if s.pos[u] >= 0 {
		return
	}
	s.aware.Set(int(u))
	s.pos[u] = int32(len(s.awareList))
	s.awareList = append(s.awareList, u)
}

func (s *Sim) removeAware(u int32) {
	p := s.pos[u]
	if p < 0 {
		return
	}
	last := s.awareList[len(s.awareList)-1]
	s.awareList[p] = last
	s.pos[last] = p
	s.awareList = s.awareList[:len(s.awareList)-1]
	s.pos[u] = -1
	s.aware.Clear(int(u))
	if s.likes.Test(int(u)) {
		s.likes.Clear(int(u))
		s.nLikes--
	}
}

// Popularity returns P(p,t): the fraction of users who currently like the
// page (Definition 2).
func (s *Sim) Popularity() float64 {
	return float64(s.nLikes) / float64(s.cfg.Users)
}

// Awareness returns A(p,t): the fraction of users aware of the page
// (Definition 4).
func (s *Sim) Awareness() float64 {
	return float64(len(s.awareList)) / float64(s.cfg.Users)
}

// Time returns the current simulation time.
func (s *Sim) Time() float64 { return s.time }

// Visits returns the cumulative number of visits so far.
func (s *Sim) Visits() int64 { return s.visits }

// Discoveries returns how many visits were first discoveries.
func (s *Sim) Discoveries() int64 { return s.discovers }

// Step advances the simulation by one DT tick: draws a Poisson number of
// visits at the current visit rate, assigns each to a uniformly random
// user, applies discovery/liking, then applies forgetting.
func (s *Sim) Step() {
	lam := s.cfg.VisitRate * s.Popularity() * s.cfg.DT
	visits := randx.Poisson(s.rng, lam)
	for v := 0; v < visits; v++ {
		s.visits++
		u := int32(s.rng.Intn(s.cfg.Users))
		if s.pos[u] >= 0 {
			continue // already aware: reading again changes nothing
		}
		s.discovers++
		s.addAware(u)
		if s.rng.Float64() < s.cfg.Quality {
			s.likes.Set(int(u))
			s.nLikes++
		}
	}
	if s.cfg.ForgetRate > 0 && len(s.awareList) > 0 {
		forgets := randx.Poisson(s.rng, s.cfg.ForgetRate*float64(len(s.awareList))*s.cfg.DT)
		for f := 0; f < forgets && len(s.awareList) > 0; f++ {
			u := s.awareList[s.rng.Intn(len(s.awareList))]
			s.removeAware(u)
		}
	}
	// Derive the clock instead of accumulating it: time stays exactly
	// tick*DT, so tick counts match round(tMax/DT) at any horizon instead
	// of drifting by an ulp per step.
	s.tick++
	s.time = float64(s.tick) * s.cfg.DT
}

// Run advances the simulation to tMax, recording the popularity after
// every sampleEvery-th step (and the initial state), and returns the
// trajectory. The terminal sample is always included, so the trajectory
// ends exactly at the step reaching tMax even when the step count is not
// a multiple of sampleEvery.
func (s *Sim) Run(tMax float64, sampleEvery int) (model.Trajectory, error) {
	if tMax <= s.time {
		return model.Trajectory{}, fmt.Errorf("%w: tMax=%g not beyond current time %g", ErrBadConfig, tMax, s.time)
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	// The step count is fixed up front from the drift-free clock: exactly
	// round((tMax-time)/DT) steps, never off by one from FP accumulation.
	steps := int(math.Round((tMax - s.time) / s.cfg.DT))
	if steps < 1 {
		steps = 1
	}
	tr := model.Trajectory{T: []float64{s.time}, P: []float64{s.Popularity()}}
	for i := 1; i <= steps; i++ {
		s.Step()
		if i%sampleEvery == 0 || i == steps {
			tr.T = append(tr.T, s.time)
			tr.P = append(tr.P, s.Popularity())
		}
	}
	return tr, nil
}
