package usersim

import (
	"errors"
	"math"
	"testing"

	"pagequality/internal/model"
	"pagequality/internal/randx"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Users: 1, VisitRate: 1, Quality: 0.5, InitialLikes: 1},
		{Users: 10, VisitRate: 0, Quality: 0.5, InitialLikes: 1},
		{Users: 10, VisitRate: 1, Quality: 0, InitialLikes: 1},
		{Users: 10, VisitRate: 1, Quality: 1.5, InitialLikes: 1},
		{Users: 10, VisitRate: 1, Quality: 0.5, InitialLikes: 0},
		{Users: 10, VisitRate: 1, Quality: 0.5, InitialLikes: 11},
		{Users: 10, VisitRate: 1, Quality: 0.5, InitialLikes: 1, ForgetRate: -1},
		{Users: 10, VisitRate: 1, Quality: 0.5, InitialLikes: 1, DT: -0.1},
	}
	for i, c := range bad {
		if _, err := New(c); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: config %+v accepted", i, c)
		}
	}
}

func TestInitialState(t *testing.T) {
	s, err := New(Config{Users: 100, VisitRate: 100, Quality: 0.5, InitialLikes: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Popularity(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("initial popularity = %g, want 0.1", got)
	}
	if got := s.Awareness(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("initial awareness = %g, want 0.1", got)
	}
	if s.Time() != 0 || s.Visits() != 0 {
		t.Fatal("initial time or visit count nonzero")
	}
}

func TestModelParamsMapping(t *testing.T) {
	c := Config{Users: 1000, VisitRate: 2000, Quality: 0.3, InitialLikes: 5}
	p := c.ModelParams()
	if p.Q != 0.3 || p.N != 1000 || p.R != 2000 || math.Abs(p.P0-0.005) > 1e-15 {
		t.Fatalf("ModelParams = %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) model.Trajectory {
		s, err := New(Config{Users: 2000, VisitRate: 2000, Quality: 0.5, InitialLikes: 20, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := s.Run(10, 10)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := run(7), run(7)
	if len(a.P) != len(b.P) {
		t.Fatal("same seed produced different lengths")
	}
	for i := range a.P {
		if a.P[i] != b.P[i] { //pqlint:allow floateq bitwise reproducibility under a fixed seed is the property under test
			t.Fatalf("same seed diverged at sample %d", i)
		}
	}
	c := run(8)
	same := true
	for i := range a.P {
		if i < len(c.P) && a.P[i] != c.P[i] { //pqlint:allow floateq bitwise prefix parity across horizons is the property under test
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical trajectories")
	}
}

// The simulated trajectory must track the closed form of Theorem 1. With
// n = 20000 users the relative fluctuation is ~1/sqrt(n·P); compare with a
// generous tolerance at a set of checkpoints.
func TestMatchesTheorem1(t *testing.T) {
	cfg := Config{
		Users:        20000,
		VisitRate:    20000,
		Quality:      0.5,
		InitialLikes: 100, // P0 = 0.005
		DT:           0.02,
		Seed:         42,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := cfg.ModelParams()
	tr, err := s.Run(30, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i, ti := range tr.T {
		want := p.PopularityAt(ti)
		got := tr.P[i]
		tol := 0.04 + 0.1*want // absolute + relative slack for stochastic noise
		if math.Abs(got-want) > tol {
			t.Fatalf("t=%.2f: sim %g vs model %g (tol %g)", ti, got, want, tol)
		}
	}
	// End state must have essentially saturated at Q.
	if got := tr.P[len(tr.P)-1]; math.Abs(got-cfg.Quality) > 0.03 {
		t.Fatalf("final popularity %g, want ~Q=%g", got, cfg.Quality)
	}
}

// Popularity can never exceed awareness, and the liking fraction among
// aware users converges to Q (the definition of quality).
func TestQualityIsLikeFractionOfAware(t *testing.T) {
	cfg := Config{Users: 10000, VisitRate: 10000, Quality: 0.3, InitialLikes: 50, Seed: 5}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(40, 100); err != nil {
		t.Fatal(err)
	}
	if s.Popularity() > s.Awareness() {
		t.Fatalf("popularity %g exceeds awareness %g", s.Popularity(), s.Awareness())
	}
	frac := s.Popularity() / s.Awareness()
	// Initial likers bias the ratio upward slightly; allow 3 sigma.
	if math.Abs(frac-cfg.Quality) > 0.03 {
		t.Fatalf("like fraction of aware = %g, want ~Q=%g", frac, cfg.Quality)
	}
}

// With forgetting, a page born popular must lose popularity toward Qeff
// (§9.1 decreasing-popularity behaviour).
func TestForgettingDecreasesPopularity(t *testing.T) {
	cfg := Config{
		Users:        20000,
		VisitRate:    20000,
		Quality:      0.5,
		InitialLikes: 8000, // P0 = 0.4
		ForgetRate:   0.3,  // Qeff = 0.2
		DT:           0.02,
		Seed:         11,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := s.Popularity()
	tr, err := s.Run(60, 100)
	if err != nil {
		t.Fatal(err)
	}
	end := tr.P[len(tr.P)-1]
	if end >= start {
		t.Fatalf("popularity rose from %g to %g despite forgetting", start, end)
	}
	f := model.ForgettingParams{Params: cfg.ModelParams(), Phi: cfg.ForgetRate}
	if math.Abs(end-f.EffectiveQuality()) > 0.05 {
		t.Fatalf("final popularity %g, want ~Qeff=%g", end, f.EffectiveQuality())
	}
}

func TestVisitAccounting(t *testing.T) {
	cfg := Config{Users: 5000, VisitRate: 5000, Quality: 0.8, InitialLikes: 50, Seed: 3}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(20, 10); err != nil {
		t.Fatal(err)
	}
	if s.Visits() == 0 {
		t.Fatal("no visits recorded")
	}
	if s.Discoveries() > s.Visits() {
		t.Fatal("more discoveries than visits")
	}
	// Every aware user beyond the initial seeds was discovered exactly once.
	wantDisc := int64(float64(cfg.Users)*s.Awareness()) - int64(cfg.InitialLikes)
	if d := s.Discoveries(); absInt64(d-wantDisc) > 2 {
		t.Fatalf("discoveries = %d, aware-derived = %d", d, wantDisc)
	}
}

func absInt64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestRunValidation(t *testing.T) {
	s, err := New(Config{Users: 100, VisitRate: 100, Quality: 0.5, InitialLikes: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0, 1); err == nil {
		t.Fatal("tMax <= current time accepted")
	}
}

func TestPoissonMoments(t *testing.T) {
	s, err := New(Config{Users: 10, VisitRate: 1, Quality: 0.5, InitialLikes: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, lambda := range []float64{0, 0.5, 3, 12, 80, 400} {
		const trials = 20000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < trials; i++ {
			x := float64(randx.Poisson(s.rng, lambda))
			sum += x
			sumSq += x * x
		}
		mean := sum / trials
		variance := sumSq/trials - mean*mean
		tol := 4 * math.Sqrt(math.Max(lambda, 1)/trials) * math.Max(1, math.Sqrt(lambda))
		if math.Abs(mean-lambda) > tol {
			t.Fatalf("lambda=%g: mean %g (tol %g)", lambda, mean, tol)
		}
		if lambda > 0 && math.Abs(variance-lambda)/lambda > 0.15 {
			t.Fatalf("lambda=%g: variance %g", lambda, variance)
		}
	}
}

func BenchmarkStep(b *testing.B) {
	s, err := New(Config{Users: 100000, VisitRate: 100000, Quality: 0.5, InitialLikes: 1000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// TestRunTerminalSample is the regression test for the dropped-endpoint
// bug: when the step count is not a multiple of sampleEvery, the
// trajectory used to end before tMax, biasing every convergence
// comparison against internal/model.
func TestRunTerminalSample(t *testing.T) {
	cfg := Config{Users: 500, VisitRate: 500, Quality: 0.6, InitialLikes: 5, DT: 0.05, Seed: 3}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 20 steps; 20 % 7 != 0, so the old code dropped the final sample.
	tr, err := s.Run(1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Samples: initial state, steps 7 and 14, and the terminal step 20.
	if len(tr.T) != 4 {
		t.Fatalf("trajectory has %d samples, want 4 (initial, 7, 14, terminal): %v", len(tr.T), tr.T)
	}
	last := tr.T[len(tr.T)-1]
	if math.Abs(last-1.0) > 1e-12 {
		t.Fatalf("trajectory ends at t=%v, want tMax=1", last)
	}
	//pqlint:allow floateq the terminal sample must be the exact final state, not a nearby one
	if got := s.Popularity(); tr.P[len(tr.P)-1] != got {
		t.Fatalf("terminal sample %v is not the final popularity %v", tr.P[len(tr.P)-1], got)
	}

	// A step count that IS a multiple of sampleEvery must not duplicate
	// the terminal sample.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := s2.Run(0.7, 7) // 14 steps: samples at 7 and 14 only
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.T) != 3 {
		t.Fatalf("aligned run has %d samples, want 3: %v", len(tr2.T), tr2.T)
	}
	if tr2.T[1] >= tr2.T[2] {
		t.Fatalf("duplicate terminal sample: %v", tr2.T)
	}
}

// TestTickCountDriftFree10k pins the clock bugfix at a long horizon: with
// an inexact DT, 10k+ accumulated additions drift by ulps and the old
// strict `time < tMax` loop could run a step too many or too few. The
// derived clock must take exactly round(tMax/DT) steps.
func TestTickCountDriftFree10k(t *testing.T) {
	cfg := Config{Users: 50, VisitRate: 1, Quality: 0.5, InitialLikes: 1, DT: 0.003, Seed: 1}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const tMax = 30.0
	wantSteps := uint64(math.Round(tMax / cfg.DT)) // 10000
	if wantSteps != 10000 {
		t.Fatalf("test setup: want 10000 steps, computed %d", wantSteps)
	}
	tr, err := s.Run(tMax, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.tick != wantSteps {
		t.Fatalf("took %d ticks, want %d", s.tick, wantSteps)
	}
	if want := float64(wantSteps) * cfg.DT; math.Float64bits(s.time) != math.Float64bits(want) {
		t.Fatalf("clock %v, want derived %v", s.time, want)
	}
	if len(tr.T) != int(wantSteps)+1 {
		t.Fatalf("trajectory has %d samples, want %d", len(tr.T), wantSteps+1)
	}
	if math.Abs(tr.T[len(tr.T)-1]-tMax) > 1e-9 {
		t.Fatalf("trajectory ends at %v, want %v", tr.T[len(tr.T)-1], tMax)
	}
}
