package snapshot

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pagequality/internal/graph"
	"pagequality/internal/pagerank"
)

// chain builds a tiny site graph with URLs u0..u(n-1) and links i -> i+1.
func chain(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.MustAddPage(graph.Page{URL: fmt.Sprintf("http://s/%02d", i), Site: 0})
	}
	for i := 0; i < n-1; i++ {
		g.AddLink(graph.NodeID(i), graph.NodeID(i+1))
	}
	return g
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	snaps := []Snapshot{
		{Label: "t1", Time: 0, Graph: chain(5)},
		{Label: "t2", Time: 4, Graph: chain(6)},
		{Label: "t3", Time: 8.5, Graph: chain(7)},
	}
	data, err := Encode(snaps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d snapshots", len(got))
	}
	for i := range snaps {
		if got[i].Label != snaps[i].Label || got[i].Time != snaps[i].Time { //pqlint:allow floateq round-trip parity check; Time must survive encoding bit-for-bit
			t.Fatalf("snapshot %d metadata changed: %+v", i, got[i])
		}
		if got[i].Graph.NumNodes() != snaps[i].Graph.NumNodes() ||
			got[i].Graph.NumEdges() != snaps[i].Graph.NumEdges() {
			t.Fatalf("snapshot %d graph changed", i)
		}
	}
}

func TestEncodeNilGraph(t *testing.T) {
	if _, err := Encode([]Snapshot{{Label: "x"}}); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestDecodeCorruption(t *testing.T) {
	data, err := Encode([]Snapshot{{Label: "t1", Time: 1, Graph: chain(4)}})
	if err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func([]byte) []byte{
		func(b []byte) []byte { b[0] = 'X'; return b },          // magic
		func(b []byte) []byte { b[10] ^= 0x55; return b },       // body
		func(b []byte) []byte { return b[:8] },                  // truncated
		func(b []byte) []byte { return append(b, 0) },           // trailing garbage breaks crc position
		func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }, // crc
	} {
		buf := append([]byte(nil), data...)
		if _, err := Decode(mutate(buf)); err == nil {
			t.Fatal("corruption not detected")
		}
	}
}

func TestWriteReadFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "web.pqs")
	snaps := []Snapshot{
		{Label: "t1", Time: 0, Graph: chain(4)},
		{Label: "t2", Time: 4, Graph: chain(4)},
	}
	if err := WriteFile(path, snaps); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Label != "t2" {
		t.Fatalf("read back %d snapshots", len(got))
	}
	// Overwrite must succeed and leave no temp files behind.
	if err := WriteFile(path, snaps[:1]); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after rewrite, want 1", len(entries))
	}
	got, err = ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("rewrite not visible: %d snapshots", len(got))
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.pqs")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// alignFixture builds three snapshots where pages a,b,c exist everywhere,
// page d only in later snapshots, and page e only in the first.
func alignFixture() []Snapshot {
	mk := func(urls []string, links [][2]int) *graph.Graph {
		g := graph.New(len(urls))
		for _, u := range urls {
			g.MustAddPage(graph.Page{URL: u})
		}
		for _, l := range links {
			g.AddLink(graph.NodeID(l[0]), graph.NodeID(l[1]))
		}
		return g
	}
	s1 := mk([]string{"a", "b", "c", "e"}, [][2]int{{0, 1}, {3, 0}})
	s2 := mk([]string{"b", "a", "c", "d"}, [][2]int{{1, 0}, {0, 2}, {3, 2}}) // a->b, b->c
	s3 := mk([]string{"c", "d", "a", "b"}, [][2]int{{2, 3}, {3, 0}, {1, 0}}) // a->b, b->c
	return []Snapshot{
		{Label: "t1", Time: 0, Graph: s1},
		{Label: "t2", Time: 4, Graph: s2},
		{Label: "t3", Time: 8, Graph: s3},
	}
}

func TestAlign(t *testing.T) {
	al, err := Align(alignFixture())
	if err != nil {
		t.Fatal(err)
	}
	if al.NumPages() != 3 {
		t.Fatalf("common pages = %d (%v), want 3", al.NumPages(), al.URLs)
	}
	if al.URLs[0] != "a" || al.URLs[1] != "b" || al.URLs[2] != "c" {
		t.Fatalf("URLs = %v, want sorted [a b c]", al.URLs)
	}
	if al.NumSnapshots() != 3 {
		t.Fatalf("snapshots = %d", al.NumSnapshots())
	}
	// Node ids are consistent: node 0 is "a" in every graph.
	for k, g := range al.Graphs {
		if g.NumNodes() != 3 {
			t.Fatalf("graph %d has %d nodes", k, g.NumNodes())
		}
		if g.Page(0).URL != "a" || g.Page(1).URL != "b" || g.Page(2).URL != "c" {
			t.Fatalf("graph %d node numbering inconsistent", k)
		}
	}
	// s1 has a->b (e->a dropped with e); s2 and s3 have a->b and b->c.
	if al.Graphs[0].NumEdges() != 1 || !al.Graphs[0].HasLink(0, 1) {
		t.Fatalf("aligned t1 edges wrong")
	}
	for k := 1; k < 3; k++ {
		if !al.Graphs[k].HasLink(0, 1) || !al.Graphs[k].HasLink(1, 2) {
			t.Fatalf("aligned t%d edges wrong", k+1)
		}
	}
}

func TestAlignErrors(t *testing.T) {
	fix := alignFixture()
	if _, err := Align(fix[:1]); !errors.Is(err, ErrAlign) {
		t.Fatal("single snapshot accepted")
	}
	// Time order violated.
	bad := []Snapshot{fix[1], fix[0]}
	if _, err := Align(bad); !errors.Is(err, ErrAlign) {
		t.Fatal("out-of-order snapshots accepted")
	}
	// Duplicate crawl times: Align used to let these through (it checked
	// only for strictly decreasing times) and EstimateWithRegression then
	// rejected the aligned series it was handed — an invariant mismatch
	// between producer and consumer. Equal times must fail at Align.
	dup := alignFixture()
	dup[1].Time = dup[0].Time
	if _, err := Align(dup); !errors.Is(err, ErrAlign) {
		t.Fatal("duplicate snapshot times accepted")
	}
	// Disjoint snapshots.
	g1 := graph.New(1)
	g1.MustAddPage(graph.Page{URL: "only1"})
	g2 := graph.New(1)
	g2.MustAddPage(graph.Page{URL: "only2"})
	if _, err := Align([]Snapshot{{Graph: g1}, {Graph: g2, Time: 1}}); !errors.Is(err, ErrAlign) {
		t.Fatal("disjoint snapshots accepted")
	}
}

// TestAlignDuplicateURL is the regression test for duplicate URLs in the
// first snapshot: SetPage can alias two nodes to one address, and Align
// used to emit one aligned node per occurrence — the duplicates resolved
// to the same page, double-counting its links.
func TestAlignDuplicateURL(t *testing.T) {
	mk := func() *graph.Graph {
		g := graph.New(3)
		g.MustAddPage(graph.Page{URL: "a"})
		g.MustAddPage(graph.Page{URL: "b"})
		g.MustAddPage(graph.Page{URL: "c"})
		g.AddLink(1, 0)
		g.AddLink(2, 0)
		return g
	}
	dup := mk()
	dup.SetPage(2, graph.Page{URL: "a"}) // nodes 0 and 2 now both claim "a"
	snaps := []Snapshot{
		{Label: "t1", Time: 0, Graph: dup},
		{Label: "t2", Time: 1, Graph: mk()},
	}
	al, err := Align(snaps)
	if err != nil {
		t.Fatal(err)
	}
	if al.NumPages() != 2 {
		t.Fatalf("aligned pages = %d (%v), want deduped [a b]", al.NumPages(), al.URLs)
	}
	if al.URLs[0] != "a" || al.URLs[1] != "b" {
		t.Fatalf("URLs = %v, want [a b]", al.URLs)
	}
	for k, g := range al.Graphs {
		if g.NumNodes() != 2 {
			t.Fatalf("graph %d has %d nodes, want 2", k, g.NumNodes())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("graph %d invalid after dedupe: %v", k, err)
		}
	}
}

func TestPageRankSeries(t *testing.T) {
	al, err := Align(alignFixture())
	if err != nil {
		t.Fatal(err)
	}
	ranks, err := al.PageRankSeries(pagerank.Options{Variant: pagerank.VariantPaper})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 3 || len(ranks[0]) != 3 {
		t.Fatalf("ranks shape %dx%d", len(ranks), len(ranks[0]))
	}
	// Page c gains an in-link from t1 to t2: its PageRank must increase.
	if ranks[1][2] <= ranks[0][2] {
		t.Fatalf("PR(c) did not increase: %g -> %g", ranks[0][2], ranks[1][2])
	}
	// Paper variant: every snapshot's ranks sum to the page count.
	for k := range ranks {
		sum := 0.0
		for _, v := range ranks[k] {
			sum += v
		}
		if math.Abs(sum-3) > 1e-6 {
			t.Fatalf("snapshot %d rank sum = %g", k, sum)
		}
	}
}

// TestPageRankSeriesParallelDeterministic runs the parallel snapshot
// fan-out (run it under -race) and checks that the worker budget never
// changes the result: series computed with Workers 1, 4 and GOMAXPROCS
// must be bitwise identical, and concurrent series calls must share the
// lazily built CSR cache safely.
func TestPageRankSeriesParallelDeterministic(t *testing.T) {
	// A wider series than alignFixture: ten snapshots over a growing graph.
	mk := func(extra int) *graph.Graph {
		g := graph.New(40)
		for i := 0; i < 40; i++ {
			g.MustAddPage(graph.Page{URL: fmt.Sprintf("p%02d", i)})
		}
		for i := 1; i < 40; i++ {
			g.AddLink(graph.NodeID(i), graph.NodeID((i*7)%40))
		}
		for i := 0; i < extra; i++ {
			g.AddLink(graph.NodeID(i%40), graph.NodeID((i*13+1)%40))
		}
		return g
	}
	var snaps []Snapshot
	for k := 0; k < 10; k++ {
		snaps = append(snaps, Snapshot{Label: fmt.Sprintf("t%d", k), Time: float64(k), Graph: mk(k * 5)})
	}
	al, err := Align(snaps)
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent first use exercises the CSR-cache Once plus the parallel
	// fan-out under the race detector.
	results := make([][][]float64, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for w, workers := range []int{1, 4, 0} {
		wg.Add(1)
		go func(slot, workers int) {
			defer wg.Done()
			results[slot], errs[slot] = al.PageRankSeries(pagerank.Options{Workers: workers, Tol: 1e-11})
		}(w, workers)
	}
	wg.Wait()
	for slot, err := range errs {
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
	}
	for slot := 1; slot < 3; slot++ {
		for k := range results[0] {
			for i := range results[0][k] {
				if results[slot][k][i] != results[0][k][i] { //pqlint:allow floateq worker-count bitwise parity is the property under test
					t.Fatalf("worker setting %d: snapshot %d rank[%d] = %g differs from %g",
						slot, k, i, results[slot][k][i], results[0][k][i])
				}
			}
		}
	}
}

// TestPageRankSeriesIncremental pins the chained incremental series to
// the independently computed series: identical fixed points within the
// convergence tolerance at every snapshot.
func TestPageRankSeriesIncremental(t *testing.T) {
	mk := func(extra int) *graph.Graph {
		g := graph.New(40)
		for i := 0; i < 40; i++ {
			g.MustAddPage(graph.Page{URL: fmt.Sprintf("p%02d", i)})
		}
		for i := 1; i < 40; i++ {
			g.AddLink(graph.NodeID(i), graph.NodeID((i*7)%40))
		}
		for i := 0; i < extra; i++ {
			g.AddLink(graph.NodeID(i%40), graph.NodeID((i*13+1)%40))
		}
		return g
	}
	var snaps []Snapshot
	for k := 0; k < 6; k++ {
		snaps = append(snaps, Snapshot{Label: fmt.Sprintf("t%d", k), Time: float64(k), Graph: mk(k * 5)})
	}
	al, err := Align(snaps)
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []pagerank.Variant{pagerank.VariantPaper, pagerank.VariantStandard} {
		opts := pagerank.Options{Variant: variant}
		full, err := al.PageRankSeries(opts)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := al.PageRankSeriesIncremental(pagerank.IncrementalOptions{Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		if len(inc) != len(full) {
			t.Fatalf("variant %d: series length %d vs %d", variant, len(inc), len(full))
		}
		for k := range full {
			for i := range full[k] {
				if d := math.Abs(inc[k][i] - full[k][i]); d > 1e-7 {
					t.Fatalf("variant %d: snapshot %d rank[%d] differs by %g (%g vs %g)",
						variant, k, i, d, inc[k][i], full[k][i])
				}
			}
		}
	}
}

func TestInDegreeSeries(t *testing.T) {
	al, err := Align(alignFixture())
	if err != nil {
		t.Fatal(err)
	}
	ind := al.InDegreeSeries()
	if ind[0][1] != 1 || ind[0][2] != 0 {
		t.Fatalf("t1 in-degrees = %v", ind[0])
	}
	if ind[1][2] != 1 {
		t.Fatalf("t2 in-degrees = %v", ind[1])
	}
}

func TestLargeStoreRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("large store round trip")
	}
	snaps := make([]Snapshot, 4)
	for k := range snaps {
		snaps[k] = Snapshot{Label: fmt.Sprintf("t%d", k+1), Time: float64(4 * k), Graph: chain(5000)}
	}
	data, err := Encode(snaps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[3].Graph.NumNodes() != 5000 {
		t.Fatal("large round trip failed")
	}
}
