package snapshot

import (
	"errors"
	"fmt"
	"sort"

	"pagequality/internal/graph"
	"pagequality/internal/pagerank"
)

// Aligned is a series of snapshots restricted to the pages present in
// every snapshot, with one consistent NodeID space: node i refers to
// URLs[i] in every Graphs[k]. This mirrors §8.1 of the paper, where the
// 2.7 M pages common to all four crawls form the analysis subgraph.
type Aligned struct {
	// URLs[i] is the address of node i in every aligned graph.
	URLs []string
	// Times[k] is the crawl time of snapshot k.
	Times []float64
	// Labels[k] names snapshot k.
	Labels []string
	// Graphs[k] is snapshot k's subgraph induced by the common pages.
	Graphs []*graph.Graph
}

// ErrAlign reports snapshots that cannot be aligned.
var ErrAlign = errors.New("snapshot: cannot align")

// Align intersects the snapshots on page URL. Pages with empty URLs are
// ignored (they cannot be matched across crawls). Snapshots must be in
// non-decreasing time order.
func Align(snaps []Snapshot) (*Aligned, error) {
	if len(snaps) < 2 {
		return nil, fmt.Errorf("%w: need >= 2 snapshots, got %d", ErrAlign, len(snaps))
	}
	for k := 1; k < len(snaps); k++ {
		if snaps[k].Time < snaps[k-1].Time {
			return nil, fmt.Errorf("%w: snapshots out of time order (%g after %g)",
				ErrAlign, snaps[k].Time, snaps[k-1].Time)
		}
	}
	// Count URL occurrences across snapshots.
	first := snaps[0].Graph
	common := make([]string, 0, first.NumNodes())
	for i := 0; i < first.NumNodes(); i++ {
		url := first.Page(graph.NodeID(i)).URL
		if url == "" {
			continue
		}
		inAll := true
		for k := 1; k < len(snaps); k++ {
			if _, ok := snaps[k].Graph.Lookup(url); !ok {
				inAll = false
				break
			}
		}
		if inAll {
			common = append(common, url)
		}
	}
	if len(common) == 0 {
		return nil, fmt.Errorf("%w: no common pages", ErrAlign)
	}
	sort.Strings(common) // deterministic node numbering
	al := &Aligned{
		URLs:   common,
		Times:  make([]float64, len(snaps)),
		Labels: make([]string, len(snaps)),
		Graphs: make([]*graph.Graph, len(snaps)),
	}
	for k, s := range snaps {
		al.Times[k] = s.Time
		al.Labels[k] = s.Label
		keep := make([]graph.NodeID, len(common))
		for i, url := range common {
			id, ok := s.Graph.Lookup(url)
			if !ok {
				return nil, fmt.Errorf("%w: %q vanished during alignment", ErrAlign, url)
			}
			keep[i] = id
		}
		sub, _ := s.Graph.Subgraph(keep)
		al.Graphs[k] = sub
	}
	return al, nil
}

// NumPages returns the number of common pages.
func (a *Aligned) NumPages() int { return len(a.URLs) }

// NumSnapshots returns the number of snapshots in the series.
func (a *Aligned) NumSnapshots() int { return len(a.Graphs) }

// PageRankSeries computes the PageRank of every common page in every
// snapshot with the given options, returning ranks[k][i] = PR of page i at
// snapshot k.
func (a *Aligned) PageRankSeries(opts pagerank.Options) ([][]float64, error) {
	ranks := make([][]float64, len(a.Graphs))
	for k, g := range a.Graphs {
		res, err := pagerank.Compute(graph.Freeze(g), opts)
		if err != nil {
			return nil, fmt.Errorf("snapshot %s: %w", a.Labels[k], err)
		}
		if !res.Converged {
			return nil, fmt.Errorf("snapshot %s: PageRank did not converge (delta %g after %d iters)",
				a.Labels[k], res.Delta, res.Iterations)
		}
		ranks[k] = res.Rank
	}
	return ranks, nil
}

// InDegreeSeries returns the in-degree of every common page in every
// snapshot — the footnote-4 alternative popularity measure.
func (a *Aligned) InDegreeSeries() [][]float64 {
	out := make([][]float64, len(a.Graphs))
	for k, g := range a.Graphs {
		out[k] = pagerank.InDegree(graph.Freeze(g))
	}
	return out
}
