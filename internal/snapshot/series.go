package snapshot

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"pagequality/internal/graph"
	"pagequality/internal/pagerank"
)

// Aligned is a series of snapshots restricted to the pages present in
// every snapshot, with one consistent NodeID space: node i refers to
// URLs[i] in every Graphs[k]. This mirrors §8.1 of the paper, where the
// 2.7 M pages common to all four crawls form the analysis subgraph.
type Aligned struct {
	// URLs[i] is the address of node i in every aligned graph.
	URLs []string
	// Times[k] is the crawl time of snapshot k.
	Times []float64
	// Labels[k] names snapshot k.
	Labels []string
	// Graphs[k] is snapshot k's subgraph induced by the common pages.
	Graphs []*graph.Graph

	// frozen caches one CSR per aligned graph so PageRankSeries and
	// InDegreeSeries (and repeated calls to either) stop re-freezing the
	// same immutable graphs. Built lazily; Aligned must not be copied
	// after first use.
	frozenOnce sync.Once
	frozen     []*graph.CSR
}

// ErrAlign reports snapshots that cannot be aligned.
var ErrAlign = errors.New("snapshot: cannot align")

// Align intersects the snapshots on page URL. Pages with empty URLs are
// ignored (they cannot be matched across crawls). Snapshots must be in
// strictly increasing time order: every downstream consumer of an aligned
// series — EstimateWithRegression most directly — divides by the time gap
// between consecutive snapshots, so two crawls at the same instant can
// never be estimated over and are rejected here, at the mouth of the
// pipeline, rather than deep inside the regression.
func Align(snaps []Snapshot) (*Aligned, error) {
	if len(snaps) < 2 {
		return nil, fmt.Errorf("%w: need >= 2 snapshots, got %d", ErrAlign, len(snaps))
	}
	for k := 1; k < len(snaps); k++ {
		if snaps[k].Time <= snaps[k-1].Time {
			return nil, fmt.Errorf("%w: snapshot times must be strictly increasing (%q at t=%g does not follow %q at t=%g)",
				ErrAlign, snaps[k].Label, snaps[k].Time, snaps[k-1].Label, snaps[k-1].Time)
		}
	}
	// Count URL occurrences across snapshots. The first graph may carry
	// duplicate page URLs (SetPage can alias two nodes to one address);
	// each URL must contribute exactly one aligned node, so dedupe here.
	first := snaps[0].Graph
	common := make([]string, 0, first.NumNodes())
	seen := make(map[string]struct{}, first.NumNodes())
	for i := 0; i < first.NumNodes(); i++ {
		url := first.Page(graph.NodeID(i)).URL
		if url == "" {
			continue
		}
		if _, dup := seen[url]; dup {
			continue
		}
		seen[url] = struct{}{}
		inAll := true
		for k := 1; k < len(snaps); k++ {
			if _, ok := snaps[k].Graph.Lookup(url); !ok {
				inAll = false
				break
			}
		}
		if inAll {
			common = append(common, url)
		}
	}
	if len(common) == 0 {
		return nil, fmt.Errorf("%w: no common pages", ErrAlign)
	}
	sort.Strings(common) // deterministic node numbering
	al := &Aligned{
		URLs:   common,
		Times:  make([]float64, len(snaps)),
		Labels: make([]string, len(snaps)),
		Graphs: make([]*graph.Graph, len(snaps)),
	}
	for k, s := range snaps {
		al.Times[k] = s.Time
		al.Labels[k] = s.Label
		keep := make([]graph.NodeID, len(common))
		for i, url := range common {
			id, ok := s.Graph.Lookup(url)
			if !ok {
				return nil, fmt.Errorf("%w: %q vanished during alignment", ErrAlign, url)
			}
			keep[i] = id
		}
		sub, _ := s.Graph.Subgraph(keep)
		al.Graphs[k] = sub
	}
	return al, nil
}

// NumPages returns the number of common pages.
func (a *Aligned) NumPages() int { return len(a.URLs) }

// NumSnapshots returns the number of snapshots in the series.
func (a *Aligned) NumSnapshots() int { return len(a.Graphs) }

// CSRs returns the frozen CSR view of every aligned graph, building and
// caching them on first use. The aligned graphs are treated as immutable
// once alignment has produced them; callers must not mutate them after
// calling any series method. Safe for concurrent use.
func (a *Aligned) CSRs() []*graph.CSR {
	a.frozenOnce.Do(func() {
		a.frozen = make([]*graph.CSR, len(a.Graphs))
		var wg sync.WaitGroup
		for k, g := range a.Graphs {
			wg.Add(1)
			go func(k int, g *graph.Graph) {
				defer wg.Done()
				a.frozen[k] = graph.Freeze(g)
			}(k, g)
		}
		wg.Wait()
	})
	return a.frozen
}

// PageRankSeries computes the PageRank of every common page in every
// snapshot with the given options, returning ranks[k][i] = PR of page i at
// snapshot k. Snapshots are computed concurrently, bounded by
// opts.Workers (GOMAXPROCS when 0): the worker budget is split between
// snapshot-level parallelism and the parallel sweeps inside each
// pagerank.Compute call. Results are identical to the sequential order —
// Compute itself is deterministic for every worker count.
func (a *Aligned) PageRankSeries(opts pagerank.Options) ([][]float64, error) {
	csrs := a.CSRs()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	outer := min(workers, len(csrs))
	if outer < 1 {
		outer = 1
	}
	inner := opts
	inner.Workers = max(1, workers/outer)

	ranks := make([][]float64, len(csrs))
	errs := make([]error, len(csrs))
	sem := make(chan struct{}, outer)
	var wg sync.WaitGroup
	for k := range csrs {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := pagerank.Compute(csrs[k], inner)
			if err != nil {
				errs[k] = fmt.Errorf("snapshot %s: %w", a.Labels[k], err)
				return
			}
			if !res.Converged {
				errs[k] = fmt.Errorf("snapshot %s: PageRank did not converge (delta %g after %d iters)",
					a.Labels[k], res.Delta, res.Iterations)
				return
			}
			ranks[k] = res.Rank
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return ranks, nil
}

// PageRankSeriesIncremental computes the same series as PageRankSeries
// but chains the snapshots: snapshot 0 is computed from a cold start,
// every later snapshot re-seeds from the previous snapshot's converged
// vector via pagerank.ComputeIncremental over the graph.Diff between the
// two freezes. Aligned snapshots share one node space, so each diff is
// pure edge churn — exactly the regime where the incremental path wins.
// The per-snapshot results agree with PageRankSeries within the
// convergence tolerance (the fixed points are identical; the iterates
// differ below Tol). Snapshots are inherently sequential here, so
// opts.Workers parallelises only the sweeps inside each solve.
func (a *Aligned) PageRankSeriesIncremental(opts pagerank.IncrementalOptions) ([][]float64, error) {
	csrs := a.CSRs()
	ranks := make([][]float64, len(csrs))
	res, err := pagerank.Compute(csrs[0], opts.Options)
	if err != nil {
		return nil, fmt.Errorf("snapshot %s: %w", a.Labels[0], err)
	}
	if !res.Converged {
		return nil, fmt.Errorf("snapshot %s: PageRank did not converge (delta %g after %d iters)",
			a.Labels[0], res.Delta, res.Iterations)
	}
	ranks[0] = res.Rank
	for k := 1; k < len(csrs); k++ {
		d, err := graph.Diff(csrs[k-1], csrs[k])
		if err != nil {
			return nil, fmt.Errorf("snapshot %s: %w", a.Labels[k], err)
		}
		inc, err := pagerank.ComputeIncremental(csrs[k], ranks[k-1], d, opts)
		if err != nil {
			return nil, fmt.Errorf("snapshot %s: %w", a.Labels[k], err)
		}
		if !inc.Converged {
			return nil, fmt.Errorf("snapshot %s: incremental PageRank did not converge (delta %g after %d iters)",
				a.Labels[k], inc.Delta, inc.Iterations)
		}
		ranks[k] = inc.Rank
	}
	return ranks, nil
}

// InDegreeSeries returns the in-degree of every common page in every
// snapshot — the footnote-4 alternative popularity measure.
func (a *Aligned) InDegreeSeries() [][]float64 {
	csrs := a.CSRs()
	out := make([][]float64, len(csrs))
	for k, c := range csrs {
		out[k] = pagerank.InDegree(c)
	}
	return out
}
