// Package snapshot implements the multi-snapshot storage layer of the
// experiment pipeline (Section 8 of the paper): a binary container holding
// a sequence of timestamped Web-graph snapshots, atomic file persistence,
// and the alignment step that restricts a series of snapshots to the pages
// present in every one of them (the paper's "2.7 million pages common in
// all four snapshots") with consistent node identifiers throughout.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"pagequality/internal/graph"
)

// Snapshot is one crawl of the Web at a point in time.
type Snapshot struct {
	// Label names the snapshot (e.g. "t1").
	Label string
	// Time is the simulation or wall-clock time of the crawl, in the
	// series' time unit (the experiments use weeks).
	Time float64
	// Graph is the crawled link structure.
	Graph *graph.Graph
}

// Store file format
//
//	magic   [4]byte "PQS1"
//	count   uint32 little-endian
//	records count × {
//	    labelLen uvarint, label bytes,
//	    time     float64 bits little-endian,
//	    blobLen  uvarint, blob (graph.AppendBinary output)
//	}
//	crc32   uint32 little-endian over everything after the magic
var storeMagic = [4]byte{'P', 'Q', 'S', '1'}

// ErrBadStore reports a malformed snapshot store.
var ErrBadStore = errors.New("snapshot: bad store")

// Encode serialises the snapshots into the store format.
func Encode(snaps []Snapshot) ([]byte, error) {
	var body []byte
	body = binary.LittleEndian.AppendUint32(body, uint32(len(snaps)))
	for i, s := range snaps {
		if s.Graph == nil {
			return nil, fmt.Errorf("snapshot: snapshot %d (%q) has nil graph", i, s.Label)
		}
		body = binary.AppendUvarint(body, uint64(len(s.Label)))
		body = append(body, s.Label...)
		body = binary.LittleEndian.AppendUint64(body, math.Float64bits(s.Time))
		blob := s.Graph.AppendBinary(nil)
		body = binary.AppendUvarint(body, uint64(len(blob)))
		body = append(body, blob...)
	}
	out := make([]byte, 0, len(body)+8)
	out = append(out, storeMagic[:]...)
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	return out, nil
}

// Decode parses a store produced by Encode.
func Decode(data []byte) ([]Snapshot, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("%w: too short", ErrBadStore)
	}
	if *(*[4]byte)(data[:4]) != storeMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadStore, data[:4])
	}
	body := data[4 : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: checksum %08x != %08x", ErrBadStore, got, want)
	}
	br := bytes.NewReader(body)
	var cntBuf [4]byte
	if _, err := io.ReadFull(br, cntBuf[:]); err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrBadStore, err)
	}
	count := binary.LittleEndian.Uint32(cntBuf[:])
	if count > 1<<16 {
		return nil, fmt.Errorf("%w: implausible snapshot count %d", ErrBadStore, count)
	}
	snaps := make([]Snapshot, 0, count)
	var fbuf [8]byte
	for i := uint32(0); i < count; i++ {
		llen, err := binary.ReadUvarint(br)
		if err != nil || llen > 1<<12 {
			return nil, fmt.Errorf("%w: snapshot %d label length", ErrBadStore, i)
		}
		label := make([]byte, llen)
		if _, err := io.ReadFull(br, label); err != nil {
			return nil, fmt.Errorf("%w: snapshot %d label: %v", ErrBadStore, i, err)
		}
		if _, err := io.ReadFull(br, fbuf[:]); err != nil {
			return nil, fmt.Errorf("%w: snapshot %d time: %v", ErrBadStore, i, err)
		}
		ts := math.Float64frombits(binary.LittleEndian.Uint64(fbuf[:]))
		blen, err := binary.ReadUvarint(br)
		if err != nil || blen > uint64(br.Len()) {
			return nil, fmt.Errorf("%w: snapshot %d blob length", ErrBadStore, i)
		}
		blob := make([]byte, blen)
		if _, err := io.ReadFull(br, blob); err != nil {
			return nil, fmt.Errorf("%w: snapshot %d blob: %v", ErrBadStore, i, err)
		}
		g, _, err := graph.DecodeBinary(blob)
		if err != nil {
			return nil, fmt.Errorf("snapshot: snapshot %d graph: %w", i, err)
		}
		snaps = append(snaps, Snapshot{Label: string(label), Time: ts, Graph: g})
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadStore, br.Len())
	}
	return snaps, nil
}

// WriteFile atomically persists the snapshots to path: it writes to a
// temporary file in the same directory, fsyncs, then renames over the
// destination, so readers never observe a partial store.
func WriteFile(path string, snaps []Snapshot) error {
	data, err := Encode(snaps)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".pqsnap-*")
	if err != nil {
		return fmt.Errorf("snapshot: create temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: sync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: close temp: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("snapshot: rename: %w", err)
	}
	return nil
}

// ReadFile loads a store written by WriteFile.
func ReadFile(path string) ([]Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: read %s: %w", path, err)
	}
	return Decode(data)
}
