package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var s Set
	if s.Test(5) {
		t.Fatal("empty set reports bit 5 set")
	}
	s.Set(5)
	if !s.Test(5) {
		t.Fatal("bit 5 not set after Set")
	}
	if got := s.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
}

func TestSetClearTest(t *testing.T) {
	s := New(128)
	for _, i := range []int{0, 1, 63, 64, 65, 127} {
		s.Set(i)
		if !s.Test(i) {
			t.Errorf("Test(%d) = false after Set", i)
		}
	}
	s.Clear(64)
	if s.Test(64) {
		t.Error("Test(64) = true after Clear")
	}
	if got := s.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
}

func TestClearBeyondSizeNoop(t *testing.T) {
	s := New(8)
	s.Clear(1000) // must not panic or grow
	if s.Test(1000) {
		t.Fatal("bit 1000 set after Clear")
	}
}

func TestNegativeIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(-1) did not panic")
		}
	}()
	var s Set
	s.Set(-1)
}

func TestTestNegativeIsFalse(t *testing.T) {
	var s Set
	if s.Test(-1) {
		t.Fatal("Test(-1) = true")
	}
}

func TestSetIfUnset(t *testing.T) {
	var s Set
	if !s.SetIfUnset(10) {
		t.Fatal("first SetIfUnset returned false")
	}
	if s.SetIfUnset(10) {
		t.Fatal("second SetIfUnset returned true")
	}
	if !s.Test(10) {
		t.Fatal("bit not set")
	}
}

func TestGrowth(t *testing.T) {
	var s Set
	const big = 100_000
	s.Set(big)
	if !s.Test(big) {
		t.Fatalf("bit %d not set after growth", big)
	}
	if s.Len() < big {
		t.Fatalf("Len = %d < %d", s.Len(), big)
	}
	if got := s.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
}

func TestReset(t *testing.T) {
	s := New(256)
	for i := 0; i < 256; i += 3 {
		s.Set(i)
	}
	s.Reset()
	if got := s.Count(); got != 0 {
		t.Fatalf("Count after Reset = %d", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(64)
	s.Set(3)
	c := s.Clone()
	c.Set(4)
	if s.Test(4) {
		t.Fatal("mutating clone mutated original")
	}
	if !c.Test(3) {
		t.Fatal("clone lost bit 3")
	}
}

func TestUnionIntersectDifference(t *testing.T) {
	a := New(64)
	b := New(200) // different sizes on purpose
	for _, i := range []int{1, 2, 3} {
		a.Set(i)
	}
	for _, i := range []int{2, 3, 4, 150} {
		b.Set(i)
	}

	u := a.Clone()
	u.Union(b)
	for _, i := range []int{1, 2, 3, 4, 150} {
		if !u.Test(i) {
			t.Errorf("union missing %d", i)
		}
	}
	if u.Count() != 5 {
		t.Errorf("union Count = %d, want 5", u.Count())
	}

	in := a.Clone()
	in.Intersect(b)
	if in.Count() != 2 || !in.Test(2) || !in.Test(3) {
		t.Errorf("intersection = %v, want {2 3}", in)
	}

	d := a.Clone()
	d.Difference(b)
	if d.Count() != 1 || !d.Test(1) {
		t.Errorf("difference = %v, want {1}", d)
	}
}

func TestIntersectClearsTail(t *testing.T) {
	a := New(256)
	a.Set(200)
	b := New(8)
	b.Set(1)
	a.Intersect(b)
	if a.Count() != 0 {
		t.Fatalf("intersection with small set kept tail bits: %v", a)
	}
}

func TestEqual(t *testing.T) {
	a := New(64)
	b := New(1024) // trailing zero words must not affect equality
	a.Set(7)
	b.Set(7)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("sets with same bits but different capacity not Equal")
	}
	b.Set(999)
	if a.Equal(b) {
		t.Fatal("different sets reported Equal")
	}
}

func TestForEachOrderAndEarlyStop(t *testing.T) {
	s := New(256)
	want := []int{0, 5, 64, 65, 200}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
	n := 0
	s.ForEach(func(int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d bits, want 2", n)
	}
}

func TestNextSet(t *testing.T) {
	s := New(256)
	s.Set(10)
	s.Set(130)
	cases := []struct {
		from, want int
		ok         bool
	}{
		{0, 10, true},
		{10, 10, true},
		{11, 130, true},
		{130, 130, true},
		{131, 0, false},
		{-5, 10, true},
	}
	for _, c := range cases {
		got, ok := s.NextSet(c.from)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("NextSet(%d) = (%d,%v), want (%d,%v)", c.from, got, ok, c.want, c.ok)
		}
	}
}

func TestString(t *testing.T) {
	s := New(8)
	s.Set(1)
	s.Set(3)
	if got := s.String(); got != "{1 3}" {
		t.Fatalf("String = %q", got)
	}
}

// Property: Count equals the number of distinct indices inserted.
func TestQuickCountMatchesDistinct(t *testing.T) {
	f := func(idx []uint16) bool {
		var s Set
		seen := map[int]bool{}
		for _, v := range idx {
			i := int(v)
			s.Set(i)
			seen[i] = true
		}
		return s.Count() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ForEach enumerates exactly the inserted set, in ascending order.
func TestQuickForEachMatchesMap(t *testing.T) {
	f := func(idx []uint16) bool {
		var s Set
		seen := map[int]bool{}
		for _, v := range idx {
			s.Set(int(v))
			seen[int(v)] = true
		}
		prev := -1
		ok := true
		s.ForEach(func(i int) bool {
			if !seen[i] || i <= prev {
				ok = false
				return false
			}
			delete(seen, i)
			prev = i
			return true
		})
		return ok && len(seen) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan-ish check — |A∪B| + |A∩B| == |A| + |B|.
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(aIdx, bIdx []uint16) bool {
		a, b := &Set{}, &Set{}
		for _, v := range aIdx {
			a.Set(int(v))
		}
		for _, v := range bIdx {
			b.Set(int(v))
		}
		u := a.Clone()
		u.Union(b)
		in := a.Clone()
		in.Intersect(b)
		return u.Count()+in.Count() == a.Count()+b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSetIfUnset(b *testing.B) {
	s := New(1 << 20)
	rng := rand.New(rand.NewSource(1))
	idx := make([]int, 4096)
	for i := range idx {
		idx[i] = rng.Intn(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SetIfUnset(idx[i%len(idx)])
	}
}

func BenchmarkCount(b *testing.B) {
	s := New(1 << 20)
	for i := 0; i < 1<<20; i += 7 {
		s.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Count() == 0 {
			b.Fatal("empty")
		}
	}
}
