// Package bitset provides a dense, growable bitset used throughout the
// simulator for user-awareness sets and visited-page sets.
//
// The zero value of Set is an empty set ready to use. All operations are
// O(1) per bit or O(words) per set, with no allocations on the hot paths
// once the backing array has grown to its final size.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bitset over non-negative integer indices.
//
// Set is not safe for concurrent mutation; guard it externally or use one
// set per goroutine.
type Set struct {
	words []uint64
}

// New returns a set pre-sized to hold indices in [0, n).
// Indices beyond n may still be set later; the backing array grows on demand.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// grow ensures the set can hold bit i.
func (s *Set) grow(i int) {
	w := i/wordBits + 1
	if w <= len(s.words) {
		return
	}
	if w <= cap(s.words) {
		s.words = s.words[:w]
		return
	}
	nw := make([]uint64, w, max(w, 2*cap(s.words)))
	copy(nw, s.words)
	s.words = nw
}

// Set sets bit i. It panics if i is negative.
func (s *Set) Set(i int) {
	if i < 0 {
		panic(fmt.Sprintf("bitset: negative index %d", i))
	}
	s.grow(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i. Clearing a bit beyond the current size is a no-op.
func (s *Set) Clear(i int) {
	if i < 0 {
		panic(fmt.Sprintf("bitset: negative index %d", i))
	}
	w := i / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(i) % wordBits)
	}
}

// Test reports whether bit i is set. Out-of-range indices report false.
func (s *Set) Test(i int) bool {
	if i < 0 {
		return false
	}
	w := i / wordBits
	return w < len(s.words) && s.words[w]&(1<<(uint(i)%wordBits)) != 0
}

// SetIfUnset sets bit i and reports whether the bit was previously unset.
// This is the common "first discovery" primitive in the user simulator.
func (s *Set) SetIfUnset(i int) bool {
	if s.Test(i) {
		return false
	}
	s.Set(i)
	return true
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Len returns the capacity in bits of the backing array.
func (s *Set) Len() int { return len(s.words) * wordBits }

// Reset clears every bit while retaining the backing array.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Union sets s = s ∪ o.
func (s *Set) Union(o *Set) {
	if len(o.words) > len(s.words) {
		s.grow(len(o.words)*wordBits - 1)
	}
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// Intersect sets s = s ∩ o.
func (s *Set) Intersect(o *Set) {
	n := min(len(s.words), len(o.words))
	for i := 0; i < n; i++ {
		s.words[i] &= o.words[i]
	}
	for i := n; i < len(s.words); i++ {
		s.words[i] = 0
	}
}

// Difference sets s = s \ o.
func (s *Set) Difference(o *Set) {
	n := min(len(s.words), len(o.words))
	for i := 0; i < n; i++ {
		s.words[i] &^= o.words[i]
	}
}

// Equal reports whether s and o contain exactly the same bits.
func (s *Set) Equal(o *Set) bool {
	a, b := s.words, o.words
	if len(a) > len(b) {
		a, b = b, a
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	for _, w := range b[len(a):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every set bit in ascending order. If fn returns
// false the iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// NextSet returns the index of the first set bit at or after i, and whether
// such a bit exists.
func (s *Set) NextSet(i int) (int, bool) {
	if i < 0 {
		i = 0
	}
	wi := i / wordBits
	if wi >= len(s.words) {
		return 0, false
	}
	w := s.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w), true
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi]), true
		}
	}
	return 0, false
}

// String renders the set as a sorted list of indices, capped for readability.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	n := 0
	s.ForEach(func(i int) bool {
		if n > 0 {
			b.WriteByte(' ')
		}
		if n >= 32 {
			b.WriteString("...")
			return false
		}
		fmt.Fprintf(&b, "%d", i)
		n++
		return true
	})
	b.WriteByte('}')
	return b.String()
}
