package model_test

import (
	"fmt"

	"pagequality/internal/model"
)

// The Figure-1 setting: a high-quality page in a 100M-user Web. The
// popularity follows the Theorem-1 sigmoid, but the estimator I + P
// reports the quality exactly at every age.
func ExampleParams_EstimateQ() {
	p := model.Params{Q: 0.8, N: 1e8, R: 1e8, P0: 1e-8}
	for _, t := range []float64{5, 20, 35} {
		fmt.Printf("t=%2.0f  popularity=%.4f  estimate=%.4f\n",
			t, p.PopularityAt(t), p.EstimateQ(t))
	}
	// Output:
	// t= 5  popularity=0.0000  estimate=0.8000
	// t=20  popularity=0.0800  estimate=0.8000
	// t=35  popularity=0.8000  estimate=0.8000
}

// Life stages of the Figure-1 page: infancy ends when popularity reaches
// 5% of the quality, maturity begins at 95%.
func ExampleParams_Stages() {
	p := model.Params{Q: 0.8, N: 1e8, R: 1e8, P0: 1e-8}
	b, err := p.Stages(model.StageThresholds{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("expansion starts ~week %.0f, maturity ~week %.0f\n",
		b.ExpansionStart, b.MaturityStart)
	// Output:
	// expansion starts ~week 19, maturity ~week 26
}

// Fitting the logistic model to an observed trajectory recovers the
// quality from the curve's plateau.
func ExampleFitLogistic() {
	truth := model.Params{Q: 0.6, N: 1e8, R: 1e8, P0: 1e-5}
	tr, err := truth.Sample(40, 100)
	if err != nil {
		panic(err)
	}
	fit, err := model.FitLogistic(tr, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fitted quality %.3f (true 0.600)\n", fit.Q)
	// Output:
	// fitted quality 0.600 (true 0.600)
}
