package model

import (
	"errors"
	"math"
	"testing"
)

func TestAwarenessFromHistoryMatchesClosedForm(t *testing.T) {
	// Lemma 2 numerical vs Lemma 1 analytic: A = P/Q.
	p := Params{Q: 0.4, N: 1e8, R: 1e8, P0: 1e-6}
	tr, err := p.Sample(60, 6000)
	if err != nil {
		t.Fatal(err)
	}
	aw, err := AwarenessFromHistory(tr, p.N, p.R)
	if err != nil {
		t.Fatal(err)
	}
	for i, ti := range tr.T {
		want := p.AwarenessAt(ti)
		if math.Abs(aw[i]-want) > 2e-4 {
			t.Fatalf("t=%g: numerical awareness %g vs analytic %g", ti, aw[i], want)
		}
	}
	// Awareness is monotone non-decreasing in the base model.
	for i := 1; i < len(aw); i++ {
		if aw[i] < aw[i-1]-1e-15 {
			t.Fatalf("awareness decreased at %d", i)
		}
	}
}

func TestQualityFromHistoryRecoversQ(t *testing.T) {
	p := Params{Q: 0.7, N: 1e8, R: 1e8, P0: 1e-7}
	tr, err := p.Sample(80, 8000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := QualityFromHistory(tr, p.N, p.R)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-p.Q) > 1e-3 {
		t.Fatalf("QualityFromHistory = %g, want %g", got, p.Q)
	}
}

// QualityFromHistory also works early in a page's life (mid-expansion),
// where neither popularity nor relative increase alone would suffice.
func TestQualityFromHistoryEarlyLife(t *testing.T) {
	p := Params{Q: 0.5, N: 1e8, R: 1e8, P0: 1e-6}
	// Stop mid-expansion: P is still well below Q.
	tEnd, err := p.TimeToReach(0.2)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := p.Sample(tEnd, 4000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := QualityFromHistory(tr, p.N, p.R)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-p.Q) > 5e-3 {
		t.Fatalf("early-life quality = %g, want %g (P was only %g)", got, p.Q, tr.P[len(tr.P)-1])
	}
}

func TestAwarenessFromHistoryValidation(t *testing.T) {
	good := Trajectory{T: []float64{0, 1}, P: []float64{0.1, 0.2}}
	cases := []struct {
		tr   Trajectory
		n, r float64
	}{
		{Trajectory{T: []float64{0}, P: []float64{1, 2}}, 1, 1},
		{Trajectory{T: []float64{0}, P: []float64{1}}, 1, 1},
		{Trajectory{T: []float64{0, 0}, P: []float64{1, 1}}, 1, 1},
		{Trajectory{T: []float64{0, 1}, P: []float64{1, -1}}, 1, 1},
		{good, 0, 1},
		{good, 1, -1},
	}
	for i, c := range cases {
		if _, err := AwarenessFromHistory(c.tr, c.n, c.r); !errors.Is(err, ErrBadParams) {
			t.Errorf("case %d accepted", i)
		}
	}
	// Zero awareness (no popularity ever): QualityFromHistory must error.
	dead := Trajectory{T: []float64{0, 1}, P: []float64{0, 0}}
	if _, err := QualityFromHistory(dead, 1e6, 1e6); !errors.Is(err, ErrBadParams) {
		t.Fatal("dead page accepted")
	}
}
