package model

// Symbol is one row of the paper's Table 1 (notation summary).
type Symbol struct {
	Name    string
	Meaning string
}

// Table1 returns the paper's notation table; cmd/experiments regenerates
// the table from this slice so documentation and code cannot drift apart.
func Table1() []Symbol {
	return []Symbol{
		{"PR(p)", "PageRank of page p (Section 3)"},
		{"Q(p)", "Quality of p (Definition 1)"},
		{"P(p,t)", "(Simple) popularity of p at t (Definition 2)"},
		{"V(p,t)", "Visit popularity of p at t (Definition 3)"},
		{"A(p,t)", "User awareness of p at t (Definition 4)"},
		{"I(p,t)", "Relative popularity increase: I(p,t) = (n/r) (dP(p,t)/dt)/P(p,t)"},
		{"r", "normalization constant: V(p,t) = r P(p,t)"},
		{"n", "Total number of Web users"},
	}
}
