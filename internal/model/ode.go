package model

import "fmt"

// RK4 integrates the scalar ODE y' = f(t, y) from (t0, y0) to t1 using the
// classical fourth-order Runge–Kutta method with the given number of fixed
// steps, returning the trajectory sampled at every step boundary.
//
// The model package uses it to verify the closed-form Theorem 1 solution
// against a direct integration of the Verhulst equation (Equation 4 of the
// paper's proofs) and to solve the forgetting extension, whose closed form
// the tests cross-check the same way.
func RK4(f func(t, y float64) float64, y0, t0, t1 float64, steps int) (Trajectory, error) {
	if steps < 1 {
		return Trajectory{}, fmt.Errorf("%w: steps=%d", ErrBadParams, steps)
	}
	if t1 <= t0 {
		return Trajectory{}, fmt.Errorf("%w: t1=%g <= t0=%g", ErrBadParams, t1, t0)
	}
	h := (t1 - t0) / float64(steps)
	tr := Trajectory{
		T: make([]float64, steps+1),
		P: make([]float64, steps+1),
	}
	t, y := t0, y0
	tr.T[0], tr.P[0] = t, y
	for i := 1; i <= steps; i++ {
		k1 := f(t, y)
		k2 := f(t+h/2, y+h/2*k1)
		k3 := f(t+h/2, y+h/2*k2)
		k4 := f(t+h, y+h*k3)
		y += h / 6 * (k1 + 2*k2 + 2*k3 + k4)
		t = t0 + float64(i)*h
		tr.T[i], tr.P[i] = t, y
	}
	return tr, nil
}

// Verhulst returns the right-hand side of the paper's popularity ODE,
// dP/dt = (r/n) · P · (Q - P), for direct numerical integration.
func (p Params) Verhulst() func(t, y float64) float64 {
	k := p.R / p.N
	return func(_, y float64) float64 { return k * y * (p.Q - y) }
}

// IntegrateNumerically solves the popularity ODE with RK4 instead of the
// closed form — the tests use it as an independent oracle for Theorem 1.
func (p Params) IntegrateNumerically(tMax float64, steps int) (Trajectory, error) {
	if err := p.Validate(); err != nil {
		return Trajectory{}, err
	}
	return RK4(p.Verhulst(), p.P0, 0, tMax, steps)
}
