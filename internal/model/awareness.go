package model

import (
	"fmt"
	"math"
)

// AwarenessFromHistory evaluates Lemma 2 numerically: given the sampled
// popularity history of a page from its creation (tr.T[0] must be the
// birth time), the fraction of users aware of it at each sample is
//
//	A(p,t) = 1 - exp( -(r/n) · ∫₀ᵗ P(p,s) ds )
//
// with the integral computed by the trapezoid rule. This is the
// measurable route to awareness the paper notes is otherwise unobservable
// ("A(p,t) is difficult to measure because we do not know ... how many
// users have visited it so far" — unless, as here, the full history is
// known).
func AwarenessFromHistory(tr Trajectory, n, r float64) ([]float64, error) {
	if len(tr.T) != len(tr.P) {
		return nil, fmt.Errorf("%w: trajectory length mismatch %d != %d", ErrBadParams, len(tr.T), len(tr.P))
	}
	if len(tr.T) < 2 {
		return nil, fmt.Errorf("%w: need >= 2 samples", ErrBadParams)
	}
	if n <= 0 || r <= 0 {
		return nil, fmt.Errorf("%w: n=%g r=%g", ErrBadParams, n, r)
	}
	for i := 1; i < len(tr.T); i++ {
		if tr.T[i] <= tr.T[i-1] {
			return nil, fmt.Errorf("%w: times not strictly increasing at %d", ErrBadParams, i)
		}
	}
	for i, p := range tr.P {
		if p < 0 || math.IsNaN(p) {
			return nil, fmt.Errorf("%w: negative popularity at %d", ErrBadParams, i)
		}
	}
	out := make([]float64, len(tr.T))
	integral := 0.0
	out[0] = 1 - math.Exp(-r/n*0) // zero history at birth
	for i := 1; i < len(tr.T); i++ {
		dt := tr.T[i] - tr.T[i-1]
		integral += (tr.P[i] + tr.P[i-1]) / 2 * dt
		out[i] = 1 - math.Exp(-r/n*integral)
	}
	return out, nil
}

// QualityFromHistory combines Lemma 1 with AwarenessFromHistory: given a
// full popularity history, Q(p) = P(p,t)/A(p,t) at any time with positive
// awareness. It returns the estimate at the final sample — an independent
// route to the quality that does not use the time derivative at all.
func QualityFromHistory(tr Trajectory, n, r float64) (float64, error) {
	aw, err := AwarenessFromHistory(tr, n, r)
	if err != nil {
		return 0, err
	}
	last := len(aw) - 1
	if aw[last] <= 0 {
		return 0, fmt.Errorf("%w: zero awareness at the end of the history", ErrBadParams)
	}
	return tr.P[last] / aw[last], nil
}
