// Package model implements the paper's user-visitation model (Sections 6
// and 7): the closed-form popularity evolution of Theorem 1, user awareness
// (Lemma 2), the relative popularity increase I(p,t), and the exact quality
// identity Q(p) = I(p,t) + P(p,t) of Theorem 2. It also provides a
// general-purpose RK4 integrator used to cross-check the closed forms and
// to solve the forgetting extension of §9.1, and the life-stage
// classification of Figure 1 (infant / expansion / maturity).
package model

import (
	"errors"
	"fmt"
	"math"
)

// Params are the model parameters of Table 1.
type Params struct {
	// Q is the page quality Q(p) ∈ (0, 1]: the probability that a user who
	// discovers the page likes it enough to link to it (Definition 1).
	Q float64
	// N is the total number of Web users (n in the paper).
	N float64
	// R is the normalisation constant of Proposition 1: V(p,t) = r·P(p,t)
	// visits per unit time.
	R float64
	// P0 is the popularity at the page's creation time, P(p,0) ∈ (0, Q].
	P0 float64
}

// ErrBadParams reports invalid model parameters.
var ErrBadParams = errors.New("model: bad params")

// Validate checks the parameters are inside the model's domain.
func (p Params) Validate() error {
	switch {
	case !(p.Q > 0 && p.Q <= 1):
		return fmt.Errorf("%w: Q=%g outside (0,1]", ErrBadParams, p.Q)
	case !(p.N > 0):
		return fmt.Errorf("%w: N=%g must be positive", ErrBadParams, p.N)
	case !(p.R > 0):
		return fmt.Errorf("%w: R=%g must be positive", ErrBadParams, p.R)
	case !(p.P0 > 0):
		return fmt.Errorf("%w: P0=%g must be positive", ErrBadParams, p.P0)
	case p.P0 > p.Q:
		return fmt.Errorf("%w: P0=%g exceeds Q=%g (popularity cannot exceed quality)", ErrBadParams, p.P0, p.Q)
	}
	return nil
}

// rate is the logistic growth rate (r/n)·Q of Theorem 1.
func (p Params) rate() float64 { return p.R / p.N * p.Q }

// PopularityAt evaluates Theorem 1:
//
//	P(p,t) = Q / (1 + [Q/P(p,0) - 1] · e^(-(r/n)Q·t))
func (p Params) PopularityAt(t float64) float64 {
	c := p.Q/p.P0 - 1
	return p.Q / (1 + c*math.Exp(-p.rate()*t))
}

// AwarenessAt evaluates the user awareness A(p,t) = P(p,t)/Q (Lemma 1).
func (p Params) AwarenessAt(t float64) float64 {
	return p.PopularityAt(t) / p.Q
}

// Derivative evaluates dP(p,t)/dt analytically. Differentiating Theorem 1
// recovers the Verhulst form dP/dt = (r/n) · P · (Q - P).
func (p Params) Derivative(t float64) float64 {
	pt := p.PopularityAt(t)
	return p.R / p.N * pt * (p.Q - pt)
}

// RelativeIncrease evaluates I(p,t) = (n/r) · (dP/dt) / P (Table 1).
// Under the model this equals Q - P(p,t) exactly, which is what Theorem 2
// exploits.
func (p Params) RelativeIncrease(t float64) float64 {
	return p.N / p.R * p.Derivative(t) / p.PopularityAt(t)
}

// EstimateQ evaluates the quality estimator of Theorem 2,
// Q(p,t) = I(p,t) + P(p,t). Under the model it equals Q for every t.
func (p Params) EstimateQ(t float64) float64 {
	return p.RelativeIncrease(t) + p.PopularityAt(t)
}

// TimeToReach returns the time at which the popularity first reaches the
// given value target ∈ (P0, Q), by inverting Theorem 1. It returns an
// error when the target is outside the reachable range.
func (p Params) TimeToReach(target float64) (float64, error) {
	if target <= p.P0 {
		return 0, nil
	}
	if target >= p.Q {
		return 0, fmt.Errorf("%w: target %g not below Q=%g (reached only asymptotically)", ErrBadParams, target, p.Q)
	}
	c := p.Q/p.P0 - 1
	// target = Q / (1 + c e^{-kt})  =>  e^{-kt} = (Q/target - 1)/c
	x := (p.Q/target - 1) / c
	return -math.Log(x) / p.rate(), nil
}

// Trajectory samples P(p,t) at steps+1 evenly spaced times on [0, tMax].
type Trajectory struct {
	T []float64 // sample times
	P []float64 // popularity at each time
}

// Sample evaluates the closed-form popularity on a uniform grid.
func (p Params) Sample(tMax float64, steps int) (Trajectory, error) {
	if err := p.Validate(); err != nil {
		return Trajectory{}, err
	}
	if steps < 1 || tMax <= 0 {
		return Trajectory{}, fmt.Errorf("%w: tMax=%g steps=%d", ErrBadParams, tMax, steps)
	}
	tr := Trajectory{
		T: make([]float64, steps+1),
		P: make([]float64, steps+1),
	}
	for i := 0; i <= steps; i++ {
		t := tMax * float64(i) / float64(steps)
		tr.T[i] = t
		tr.P[i] = p.PopularityAt(t)
	}
	return tr, nil
}

// EstimateFromSamples applies the practical estimator to a sampled
// popularity trajectory: at interior sample i it computes
//
//	Q̂(t_i) = (n/r) · ((P_{i+1} - P_{i-1}) / (t_{i+1} - t_{i-1})) / P_i + P_i
//
// i.e. a central finite difference replacing the exact derivative. The
// returned slice has the same length as the trajectory; the two endpoints
// use one-sided differences. This is exactly what measuring the Web with
// snapshots does, so its deviation from Q quantifies discretisation error.
func EstimateFromSamples(tr Trajectory, n, r float64) ([]float64, error) {
	if len(tr.T) != len(tr.P) {
		return nil, fmt.Errorf("%w: trajectory length mismatch %d != %d", ErrBadParams, len(tr.T), len(tr.P))
	}
	if len(tr.T) < 2 {
		return nil, fmt.Errorf("%w: need at least 2 samples", ErrBadParams)
	}
	if n <= 0 || r <= 0 {
		return nil, fmt.Errorf("%w: n=%g r=%g", ErrBadParams, n, r)
	}
	m := len(tr.T)
	out := make([]float64, m)
	deriv := func(i, j int) float64 {
		return (tr.P[j] - tr.P[i]) / (tr.T[j] - tr.T[i])
	}
	for i := 0; i < m; i++ {
		var d float64
		switch i {
		case 0:
			d = deriv(0, 1)
		case m - 1:
			d = deriv(m-2, m-1)
		default:
			d = deriv(i-1, i+1)
		}
		if tr.P[i] <= 0 {
			return nil, fmt.Errorf("%w: non-positive popularity sample at %d", ErrBadParams, i)
		}
		out[i] = n/r*d/tr.P[i] + tr.P[i]
	}
	return out, nil
}
