package model

import (
	"fmt"
	"math"
)

// ForgettingParams extends the user-visitation model with the §9.1
// "decreasing popularity" revision: users forget pages they have visited
// at rate Phi per unit time, so awareness obeys
//
//	dA/dt = (1 - A)·(r/n)·P - Phi·A
//
// With P = A·Q (Lemma 1 still holds) the popularity ODE becomes
//
//	dP/dt = (r/n)·P·(Q - P) - Phi·P = (r/n)·P·(Qeff - P)
//
// with effective quality Qeff = Q - Phi·n/r — again a Verhulst equation,
// so a closed form is available. When Qeff < P(p,0) the popularity
// *decreases* over time, which the base model cannot express and which the
// paper observed for many real pages.
type ForgettingParams struct {
	Params
	// Phi is the per-unit-time forgetting rate, >= 0.
	Phi float64
}

// Validate checks the extended parameter domain.
func (f ForgettingParams) Validate() error {
	if err := f.Params.Validate(); err != nil {
		return err
	}
	if f.Phi < 0 || math.IsNaN(f.Phi) {
		return fmt.Errorf("%w: Phi=%g must be >= 0", ErrBadParams, f.Phi)
	}
	return nil
}

// EffectiveQuality returns Qeff = Q - Phi·n/r, the popularity level the
// page converges to (clamped at 0 when forgetting dominates).
func (f ForgettingParams) EffectiveQuality() float64 {
	return f.Q - f.Phi*f.N/f.R
}

// PopularityAt evaluates the closed-form solution of the forgetting ODE.
//
// For Qeff != 0 the solution is the logistic
//
//	P(t) = Qeff / (1 + (Qeff/P0 - 1)·e^(-(r/n)·Qeff·t))
//
// which decays toward 0 when Qeff <= 0 (the exponential grows) and
// converges to Qeff when Qeff > 0. The degenerate Qeff == 0 case reduces
// to dP/dt = -(r/n)P², i.e. P(t) = P0 / (1 + (r/n)·P0·t).
func (f ForgettingParams) PopularityAt(t float64) float64 {
	k := f.R / f.N
	qe := f.EffectiveQuality()
	if qe == 0 {
		return f.P0 / (1 + k*f.P0*t)
	}
	c := qe/f.P0 - 1
	return qe / (1 + c*math.Exp(-k*qe*t))
}

// Derivative evaluates dP/dt = (r/n)·P·(Qeff - P).
func (f ForgettingParams) Derivative(t float64) float64 {
	pt := f.PopularityAt(t)
	return f.R / f.N * pt * (f.EffectiveQuality() - pt)
}

// RelativeIncrease evaluates I(p,t) under forgetting. Note Theorem 2 now
// yields I + P = Qeff, *not* Q: forgetting biases the estimator downward
// by exactly Phi·n/r, which is the correction §9.1 anticipates.
func (f ForgettingParams) RelativeIncrease(t float64) float64 {
	return f.N / f.R * f.Derivative(t) / f.PopularityAt(t)
}

// EstimateQ evaluates I(p,t) + P(p,t) under forgetting (equals Qeff).
func (f ForgettingParams) EstimateQ(t float64) float64 {
	return f.RelativeIncrease(t) + f.PopularityAt(t)
}

// CorrectedEstimateQ adds the forgetting correction Phi·n/r back, restoring
// an unbiased estimate of the true Q when Phi is known.
func (f ForgettingParams) CorrectedEstimateQ(t float64) float64 {
	return f.EstimateQ(t) + f.Phi*f.N/f.R
}

// ODE returns the right-hand side of the forgetting popularity ODE for
// numerical cross-checks.
func (f ForgettingParams) ODE() func(t, y float64) float64 {
	k := f.R / f.N
	qe := f.EffectiveQuality()
	return func(_, y float64) float64 { return k * y * (qe - y) }
}
