package model

import "fmt"

// Stage labels the three phases of a page's life identified in Figure 1.
type Stage uint8

// Life stages of a page.
const (
	// StageInfant: the page is barely noticed; popularity below
	// LoFrac·Q.
	StageInfant Stage = iota
	// StageExpansion: popularity is rising rapidly between the two
	// thresholds.
	StageExpansion
	// StageMaturity: popularity has saturated above HiFrac·Q.
	StageMaturity
)

func (s Stage) String() string {
	switch s {
	case StageInfant:
		return "infant"
	case StageExpansion:
		return "expansion"
	case StageMaturity:
		return "maturity"
	}
	return fmt.Sprintf("Stage(%d)", uint8(s))
}

// StageThresholds configures the popularity fractions separating the
// stages. The zero value selects the defaults (5% and 95% of Q).
type StageThresholds struct {
	LoFrac float64 // infant → expansion boundary as a fraction of Q
	HiFrac float64 // expansion → maturity boundary as a fraction of Q
}

func (st *StageThresholds) fill() error {
	if st.LoFrac == 0 {
		st.LoFrac = 0.05
	}
	if st.HiFrac == 0 {
		st.HiFrac = 0.95
	}
	if !(st.LoFrac > 0 && st.LoFrac < st.HiFrac && st.HiFrac < 1) {
		return fmt.Errorf("%w: thresholds lo=%g hi=%g", ErrBadParams, st.LoFrac, st.HiFrac)
	}
	return nil
}

// StageBoundaries are the transition times of the three stages.
type StageBoundaries struct {
	// ExpansionStart is when P first reaches LoFrac·Q (end of infancy).
	ExpansionStart float64
	// MaturityStart is when P first reaches HiFrac·Q.
	MaturityStart float64
}

// StageAt classifies the page's stage at time t.
func (p Params) StageAt(t float64, th StageThresholds) (Stage, error) {
	if err := th.fill(); err != nil {
		return 0, err
	}
	pt := p.PopularityAt(t)
	switch {
	case pt < th.LoFrac*p.Q:
		return StageInfant, nil
	case pt < th.HiFrac*p.Q:
		return StageExpansion, nil
	default:
		return StageMaturity, nil
	}
}

// Stages computes the transition times analytically by inverting
// Theorem 1. Pages born already popular (P0 above a threshold) report a
// zero boundary for the stages they skip.
func (p Params) Stages(th StageThresholds) (StageBoundaries, error) {
	if err := p.Validate(); err != nil {
		return StageBoundaries{}, err
	}
	if err := th.fill(); err != nil {
		return StageBoundaries{}, err
	}
	var b StageBoundaries
	lo, hi := th.LoFrac*p.Q, th.HiFrac*p.Q
	t, err := p.TimeToReach(lo)
	if err != nil {
		return b, err
	}
	b.ExpansionStart = t
	t, err = p.TimeToReach(hi)
	if err != nil {
		return b, err
	}
	b.MaturityStart = t
	return b, nil
}
