package model

import (
	"fmt"
	"math"
)

// LogisticFit is the result of fitting the Theorem-1 logistic
//
//	P(t) = Q / (1 + (Q/P0 - 1)·e^(-Rate·t))
//
// to an observed popularity trajectory. Under the user-visitation model
// Rate = (r/n)·Q, so with known n and r the fit yields two independent
// estimates of the quality: the plateau Q and Rate·n/r. Their agreement
// is a goodness-of-model check the tests exploit.
type LogisticFit struct {
	// Q is the fitted plateau (the quality under the model).
	Q float64
	// Rate is the fitted logistic growth rate.
	Rate float64
	// P0 is the fitted popularity at t = 0.
	P0 float64
	// RMSE is the root-mean-square residual in popularity space.
	RMSE float64
}

// Params converts the fit into model parameters for the given user
// population and visit rate.
func (f LogisticFit) Params(n, r float64) Params {
	return Params{Q: f.Q, N: n, R: r, P0: f.P0}
}

// FitLogistic fits the logistic curve to a trajectory by profiling the
// plateau: for a fixed candidate Q the transform
//
//	z = ln(Q/P - 1) = ln(Q/P0 - 1) - Rate·t
//
// is linear in t, so Rate and P0 follow from ordinary least squares; the
// outer one-dimensional search over Q (golden section on the residual sum
// of squares) finds the plateau. qMax bounds the search (use 1 for
// popularity data; pass a larger bound for unnormalised proxies such as
// visit rates). Every popularity sample must be positive.
func FitLogistic(tr Trajectory, qMax float64) (LogisticFit, error) {
	m := len(tr.T)
	if m != len(tr.P) {
		return LogisticFit{}, fmt.Errorf("%w: trajectory length mismatch %d != %d", ErrBadParams, m, len(tr.P))
	}
	if m < 3 {
		return LogisticFit{}, fmt.Errorf("%w: need >= 3 samples to fit", ErrBadParams)
	}
	maxP := 0.0
	for i, p := range tr.P {
		if p <= 0 || math.IsNaN(p) {
			return LogisticFit{}, fmt.Errorf("%w: non-positive popularity at sample %d", ErrBadParams, i)
		}
		if i > 0 && tr.T[i] <= tr.T[i-1] {
			return LogisticFit{}, fmt.Errorf("%w: times not strictly increasing at %d", ErrBadParams, i)
		}
		if p > maxP {
			maxP = p
		}
	}
	if qMax <= maxP {
		return LogisticFit{}, fmt.Errorf("%w: qMax %g not above max popularity %g", ErrBadParams, qMax, maxP)
	}

	// eval evaluates one candidate plateau: the profiled residual plus
	// the OLS rate and p0 it implies. Returning a struct keeps the
	// golden-section loop from blank-discarding the parts it skips.
	type profilePoint struct {
		rss, rate, p0 float64
	}
	eval := func(q float64) profilePoint {
		var sx, sy, sxx, sxy float64
		for i := 0; i < m; i++ {
			z := math.Log(q/tr.P[i] - 1)
			sx += tr.T[i]
			sy += z
			sxx += tr.T[i] * tr.T[i]
			sxy += tr.T[i] * z
		}
		k := float64(m)
		den := k*sxx - sx*sx
		if den == 0 {
			return profilePoint{rss: math.Inf(1)}
		}
		slope := (k*sxy - sx*sy) / den
		inter := (sy - slope*sx) / k
		rate := -slope
		c := math.Exp(inter) // Q/P0 - 1
		p0 := q / (1 + c)
		// Residual in popularity space.
		sum := 0.0
		for i := 0; i < m; i++ {
			pred := q / (1 + c*math.Exp(-rate*tr.T[i]))
			d := pred - tr.P[i]
			sum += d * d
		}
		return profilePoint{rss: sum, rate: rate, p0: p0}
	}

	// Golden-section search for the plateau on (maxP·(1+eps), qMax].
	lo := maxP * (1 + 1e-9)
	hi := qMax
	const phi = 0.6180339887498949
	a, b := lo, hi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1 := eval(x1).rss
	f2 := eval(x2).rss
	for iter := 0; iter < 200 && (b-a) > 1e-12*(1+b); iter++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = eval(x1).rss
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = eval(x2).rss
		}
	}
	q := (a + b) / 2
	best := eval(q)
	if math.IsInf(best.rss, 1) || math.IsNaN(best.rss) || best.rate <= 0 || best.p0 <= 0 {
		return LogisticFit{}, fmt.Errorf("%w: trajectory is not logistic-shaped", ErrBadParams)
	}
	return LogisticFit{
		Q:    q,
		Rate: best.rate,
		P0:   best.p0,
		RMSE: math.Sqrt(best.rss / float64(m)),
	}, nil
}
