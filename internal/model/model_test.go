package model

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// figure1Params are the exact parameters of the paper's Figure 1.
func figure1Params() Params {
	return Params{Q: 0.8, N: 1e8, R: 1e8, P0: 1e-8}
}

// figure2Params are the exact parameters of the paper's Figures 2 and 3.
func figure2Params() Params {
	return Params{Q: 0.2, N: 1e8, R: 1e8, P0: 1e-9}
}

func TestValidate(t *testing.T) {
	good := figure1Params()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Q: 0, N: 1, R: 1, P0: 0.1},
		{Q: 1.5, N: 1, R: 1, P0: 0.1},
		{Q: 0.5, N: 0, R: 1, P0: 0.1},
		{Q: 0.5, N: 1, R: 0, P0: 0.1},
		{Q: 0.5, N: 1, R: 1, P0: 0},
		{Q: 0.5, N: 1, R: 1, P0: 0.6}, // P0 > Q
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrBadParams) {
			t.Errorf("case %d: params %+v accepted", i, p)
		}
	}
}

func TestPopularityAtBoundary(t *testing.T) {
	p := figure1Params()
	if got := p.PopularityAt(0); math.Abs(got-p.P0)/p.P0 > 1e-9 {
		t.Fatalf("P(0) = %g, want P0 = %g", got, p.P0)
	}
}

// Corollary 1: P(p,t) -> Q as t -> infinity.
func TestCorollary1Convergence(t *testing.T) {
	p := figure1Params()
	if got := p.PopularityAt(1e6); math.Abs(got-p.Q) > 1e-12 {
		t.Fatalf("P(inf) = %g, want Q = %g", got, p.Q)
	}
}

// Figure 1: the popularity curve is sigmoidal with the three stages at
// roughly the times the paper plots (infant until ~t=15..25, expansion
// until ~t=25..35, maturity after).
func TestFigure1Shape(t *testing.T) {
	p := figure1Params()
	// Monotone increasing.
	prev := -1.0
	for ti := 0.0; ti <= 40; ti += 0.5 {
		v := p.PopularityAt(ti)
		if v <= prev {
			t.Fatalf("P not strictly increasing at t=%g", ti)
		}
		prev = v
	}
	// Infant stage: at t=10 popularity is still negligible.
	if v := p.PopularityAt(10); v > 0.01 {
		t.Fatalf("P(10) = %g, expected infant-stage (<0.01)", v)
	}
	// Maturity: by t=35 the popularity has essentially saturated at Q.
	if v := p.PopularityAt(35); v < 0.95*p.Q {
		t.Fatalf("P(35) = %g, expected near Q=%g", v, p.Q)
	}
	b, err := p.Stages(StageThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if b.ExpansionStart < 15 || b.ExpansionStart > 25 {
		t.Fatalf("expansion start = %g, want ~15..25", b.ExpansionStart)
	}
	if b.MaturityStart < 22 || b.MaturityStart > 35 {
		t.Fatalf("maturity start = %g, want ~22..35", b.MaturityStart)
	}
	if b.MaturityStart <= b.ExpansionStart {
		t.Fatal("maturity before expansion")
	}
}

// Lemma 1: P(p,t) = A(p,t) · Q(p).
func TestLemma1(t *testing.T) {
	p := figure2Params()
	for _, ti := range []float64{0, 10, 50, 100, 200} {
		if got, want := p.AwarenessAt(ti)*p.Q, p.PopularityAt(ti); math.Abs(got-want) > 1e-15 {
			t.Fatalf("t=%g: A·Q = %g, P = %g", ti, got, want)
		}
	}
}

// Theorem 2: Q(p) = I(p,t) + P(p,t) for all t, exactly.
func TestTheorem2Identity(t *testing.T) {
	p := figure2Params()
	for ti := 0.0; ti <= 150; ti += 1.0 {
		got := p.EstimateQ(ti)
		if math.Abs(got-p.Q) > 1e-9 {
			t.Fatalf("t=%g: I+P = %.12f, want Q = %g", ti, got, p.Q)
		}
	}
}

// Property form of Theorem 2 over random parameters and times.
func TestQuickTheorem2(t *testing.T) {
	f := func(q, p0frac, tRaw float64) bool {
		q = 0.05 + math.Abs(math.Mod(q, 0.9))              // (0.05, 0.95)
		p0 := q * (1e-9 + math.Abs(math.Mod(p0frac, 0.5))) // well below Q
		ti := math.Abs(math.Mod(tRaw, 500))
		p := Params{Q: q, N: 1e8, R: 1e8, P0: p0}
		if p.Validate() != nil {
			return true // skip out-of-domain draws
		}
		est := p.EstimateQ(ti)
		return math.Abs(est-q) < 1e-6*q+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Figure 2 behaviour: early on I ≈ Q and P ≈ 0; late, P ≈ Q and I ≈ 0.
func TestFigure2Complementarity(t *testing.T) {
	p := figure2Params()
	if i0 := p.RelativeIncrease(10); math.Abs(i0-p.Q) > 0.01 {
		t.Fatalf("I(10) = %g, want ~Q=%g", i0, p.Q)
	}
	if pop := p.PopularityAt(10); pop > 0.01 {
		t.Fatalf("P(10) = %g, want ~0", pop)
	}
	if i1 := p.RelativeIncrease(150); i1 > 0.01 {
		t.Fatalf("I(150) = %g, want ~0", i1)
	}
	if pop := p.PopularityAt(150); math.Abs(pop-p.Q) > 0.01 {
		t.Fatalf("P(150) = %g, want ~Q=%g", pop, p.Q)
	}
	// I is monotonically decreasing, P increasing: they cross exactly once.
	crossings := 0
	prev := p.RelativeIncrease(0) - p.PopularityAt(0)
	for ti := 1.0; ti <= 150; ti++ {
		cur := p.RelativeIncrease(ti) - p.PopularityAt(ti)
		if prev > 0 && cur <= 0 {
			crossings++
		}
		prev = cur
	}
	if crossings != 1 {
		t.Fatalf("I and P crossed %d times, want 1", crossings)
	}
}

// The closed form of Theorem 1 must match direct RK4 integration of the
// Verhulst equation.
func TestTheorem1MatchesRK4(t *testing.T) {
	for _, p := range []Params{figure1Params(), figure2Params(), {Q: 0.5, N: 1e6, R: 5e6, P0: 1e-4}} {
		tr, err := p.IntegrateNumerically(60, 6000)
		if err != nil {
			t.Fatal(err)
		}
		for i, ti := range tr.T {
			want := p.PopularityAt(ti)
			if math.Abs(tr.P[i]-want) > 1e-8+1e-6*want {
				t.Fatalf("params %+v t=%g: RK4 %g vs closed form %g", p, ti, tr.P[i], want)
			}
		}
	}
}

func TestDerivativeMatchesFiniteDifference(t *testing.T) {
	p := figure2Params()
	const h = 1e-5
	for _, ti := range []float64{20, 60, 100} {
		fd := (p.PopularityAt(ti+h) - p.PopularityAt(ti-h)) / (2 * h)
		an := p.Derivative(ti)
		if math.Abs(fd-an) > 1e-7*math.Max(1, math.Abs(an)) {
			t.Fatalf("t=%g: analytic %g vs finite diff %g", ti, an, fd)
		}
	}
}

func TestTimeToReachInverts(t *testing.T) {
	p := figure1Params()
	for _, target := range []float64{1e-6, 0.01, 0.4, 0.79} {
		ti, err := p.TimeToReach(target)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.PopularityAt(ti); math.Abs(got-target) > 1e-9*math.Max(1, target) {
			t.Fatalf("target %g: P(TimeToReach) = %g", target, got)
		}
	}
	if _, err := p.TimeToReach(p.Q); err == nil {
		t.Fatal("TimeToReach(Q) accepted")
	}
	if ti, err := p.TimeToReach(p.P0 / 2); err != nil || ti != 0 {
		t.Fatalf("target below P0 -> (%g,%v), want (0,nil)", ti, err)
	}
}

func TestSample(t *testing.T) {
	p := figure2Params()
	tr, err := p.Sample(150, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.T) != 301 || len(tr.P) != 301 {
		t.Fatalf("sample lengths %d,%d", len(tr.T), len(tr.P))
	}
	if tr.T[0] != 0 || tr.T[300] != 150 {
		t.Fatalf("grid endpoints %g,%g", tr.T[0], tr.T[300])
	}
	if _, err := p.Sample(-1, 10); err == nil {
		t.Fatal("negative tMax accepted")
	}
	if _, err := p.Sample(10, 0); err == nil {
		t.Fatal("zero steps accepted")
	}
	if _, err := (Params{}).Sample(10, 10); err == nil {
		t.Fatal("invalid params accepted")
	}
}

// The discrete estimator applied to dense samples of the model trajectory
// must recover Q closely — this is the bridge from Theorem 2 to the
// snapshot-based estimator of Section 8.
func TestEstimateFromSamplesRecoversQ(t *testing.T) {
	p := figure2Params()
	tr, err := p.Sample(150, 3000)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateFromSamples(tr, p.N, p.R)
	if err != nil {
		t.Fatal(err)
	}
	// Skip the endpoints (one-sided differences are less accurate).
	for i := 1; i < len(est)-1; i++ {
		if math.Abs(est[i]-p.Q) > 0.002 {
			t.Fatalf("sample %d (t=%g): est %g, want %g", i, tr.T[i], est[i], p.Q)
		}
	}
}

func TestEstimateFromSamplesValidation(t *testing.T) {
	if _, err := EstimateFromSamples(Trajectory{T: []float64{0}, P: []float64{1, 2}}, 1, 1); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := EstimateFromSamples(Trajectory{T: []float64{0}, P: []float64{1}}, 1, 1); err == nil {
		t.Fatal("single sample accepted")
	}
	if _, err := EstimateFromSamples(Trajectory{T: []float64{0, 1}, P: []float64{1, 2}}, 0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := EstimateFromSamples(Trajectory{T: []float64{0, 1, 2}, P: []float64{1, 0, 2}}, 1, 1); err == nil {
		t.Fatal("non-positive popularity accepted")
	}
}

func TestRK4Validation(t *testing.T) {
	f := func(_, y float64) float64 { return y }
	if _, err := RK4(f, 1, 0, 1, 0); err == nil {
		t.Fatal("zero steps accepted")
	}
	if _, err := RK4(f, 1, 1, 0, 10); err == nil {
		t.Fatal("t1 <= t0 accepted")
	}
}

func TestRK4Exponential(t *testing.T) {
	// y' = y, y(0)=1 -> e^t.
	tr, err := RK4(func(_, y float64) float64 { return y }, 1, 0, 2, 2000)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(2)
	if got := tr.P[len(tr.P)-1]; math.Abs(got-want) > 1e-8 {
		t.Fatalf("RK4 e^2 = %g, want %g", got, want)
	}
}

func TestStageAt(t *testing.T) {
	p := figure1Params()
	cases := []struct {
		t    float64
		want Stage
	}{
		{5, StageInfant},
		{22, StageExpansion},
		{38, StageMaturity},
	}
	for _, c := range cases {
		got, err := p.StageAt(c.t, StageThresholds{})
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("StageAt(%g) = %v, want %v", c.t, got, c.want)
		}
	}
	if _, err := p.StageAt(1, StageThresholds{LoFrac: 0.9, HiFrac: 0.1}); err == nil {
		t.Fatal("inverted thresholds accepted")
	}
}

func TestStageString(t *testing.T) {
	if StageInfant.String() != "infant" || StageExpansion.String() != "expansion" ||
		StageMaturity.String() != "maturity" || Stage(9).String() == "" {
		t.Fatal("Stage.String wrong")
	}
}

func TestForgettingValidation(t *testing.T) {
	f := ForgettingParams{Params: figure1Params(), Phi: -0.1}
	if err := f.Validate(); !errors.Is(err, ErrBadParams) {
		t.Fatal("negative Phi accepted")
	}
	f.Phi = 0.1
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

// With Phi = 0 the forgetting model reduces exactly to the base model.
func TestForgettingPhiZeroReduces(t *testing.T) {
	p := figure2Params()
	f := ForgettingParams{Params: p}
	for _, ti := range []float64{0, 25, 80, 140} {
		if got, want := f.PopularityAt(ti), p.PopularityAt(ti); math.Abs(got-want) > 1e-15 {
			t.Fatalf("t=%g: forgetting %g vs base %g", ti, got, want)
		}
	}
}

// §9.1: forgetting lets popularity decrease — a page born more popular
// than its effective quality loses popularity over time.
func TestForgettingDecreasingPopularity(t *testing.T) {
	f := ForgettingParams{
		Params: Params{Q: 0.5, N: 1e8, R: 1e8, P0: 0.4},
		Phi:    0.3, // Qeff = 0.5 - 0.3 = 0.2 < P0
	}
	if qe := f.EffectiveQuality(); math.Abs(qe-0.2) > 1e-12 {
		t.Fatalf("Qeff = %g, want 0.2", qe)
	}
	prev := f.PopularityAt(0)
	for ti := 1.0; ti <= 60; ti++ {
		cur := f.PopularityAt(ti)
		if cur >= prev {
			t.Fatalf("popularity not decreasing at t=%g: %g >= %g", ti, cur, prev)
		}
		prev = cur
	}
	// Converges to Qeff, not Q.
	if got := f.PopularityAt(1e6); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("P(inf) = %g, want Qeff=0.2", got)
	}
}

// The forgetting closed form must match RK4 integration of its ODE.
func TestForgettingClosedFormMatchesRK4(t *testing.T) {
	cases := []ForgettingParams{
		{Params: Params{Q: 0.5, N: 1e8, R: 1e8, P0: 0.4}, Phi: 0.3},
		{Params: Params{Q: 0.8, N: 1e8, R: 1e8, P0: 1e-6}, Phi: 0.2},
		{Params: Params{Q: 0.3, N: 1e8, R: 1e8, P0: 0.1}, Phi: 0.3}, // Qeff = 0
	}
	for _, f := range cases {
		tr, err := RK4(f.ODE(), f.P0, 0, 80, 8000)
		if err != nil {
			t.Fatal(err)
		}
		for i, ti := range tr.T {
			want := f.PopularityAt(ti)
			if math.Abs(tr.P[i]-want) > 1e-7 {
				t.Fatalf("phi=%g t=%g: RK4 %g vs closed %g", f.Phi, ti, tr.P[i], want)
			}
		}
	}
}

// Under forgetting the raw estimator converges to Qeff and the corrected
// estimator recovers the true Q.
func TestForgettingEstimatorBias(t *testing.T) {
	f := ForgettingParams{Params: Params{Q: 0.6, N: 1e8, R: 1e8, P0: 1e-6}, Phi: 0.2}
	for _, ti := range []float64{5, 40, 90} {
		raw := f.EstimateQ(ti)
		if math.Abs(raw-f.EffectiveQuality()) > 1e-9 {
			t.Fatalf("t=%g: raw estimate %g, want Qeff=%g", ti, raw, f.EffectiveQuality())
		}
		if corr := f.CorrectedEstimateQ(ti); math.Abs(corr-f.Q) > 1e-9 {
			t.Fatalf("t=%g: corrected estimate %g, want Q=%g", ti, corr, f.Q)
		}
	}
}

func TestTable1Complete(t *testing.T) {
	rows := Table1()
	if len(rows) != 8 {
		t.Fatalf("Table 1 has %d rows, want 8", len(rows))
	}
	want := []string{"PR(p)", "Q(p)", "P(p,t)", "V(p,t)", "A(p,t)", "I(p,t)", "r", "n"}
	for i, w := range want {
		if rows[i].Name != w {
			t.Errorf("row %d = %q, want %q", i, rows[i].Name, w)
		}
		if rows[i].Meaning == "" {
			t.Errorf("row %d has empty meaning", i)
		}
	}
}

func BenchmarkPopularityAt(b *testing.B) {
	p := figure1Params()
	for i := 0; i < b.N; i++ {
		_ = p.PopularityAt(float64(i % 100))
	}
}

func BenchmarkRK4(b *testing.B) {
	p := figure1Params()
	for i := 0; i < b.N; i++ {
		if _, err := p.IntegrateNumerically(40, 400); err != nil {
			b.Fatal(err)
		}
	}
}
