package qualityarchive

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"pagequality/internal/corpus"
	"pagequality/internal/crawler"
	"pagequality/internal/pagerank"
	"pagequality/internal/pagestore"
	"pagequality/internal/quality"
	"pagequality/internal/snapshot"
)

// buildTestArchive archives three crawls of a small evolving site graph
// under labels t1..t3 (weeks 1..3), across several pagestore segments.
func buildTestArchive(t *testing.T) *pagestore.Store {
	t.Helper()
	st, err := pagestore.Open(t.TempDir(), pagestore.Options{MaxSegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	const n = 12
	url := func(i int) string { return fmt.Sprintf("http://site.test/p%02d", i) }
	for week := 1; week <= 3; week++ {
		label := fmt.Sprintf("t%d", week)
		for i := 0; i < n; i++ {
			// A ring plus week-dependent chords, so rank evolves.
			body := fmt.Sprintf(`<html><body><a href="%s">next</a>`, url((i+1)%n))
			if (i+week)%3 == 0 {
				body += fmt.Sprintf(`<a href="%s">chord</a>`, url((i+week*2)%n))
			}
			body += `</body></html>`
			key := label + "/" + url(i)
			if err := st.Put(key, pagestore.Meta{FetchedAt: float64(week), Status: 200}, []byte(body)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return st
}

// preRefactorPipeline is the route this package replaced: a
// KeysWithPrefix+Get walk per label (what cmd/extract did), a snapshot
// store round-trip, then Align + FromAligned.
func preRefactorPipeline(t *testing.T, st *pagestore.Store, labels []string, estSnaps int, prOpts pagerank.Options, cfg quality.Config) (*quality.Result, [][]float64, *snapshot.Aligned) {
	t.Helper()
	var snaps []snapshot.Snapshot
	for _, label := range labels {
		prefix := label + "/"
		keys := st.KeysWithPrefix(prefix)
		if len(keys) == 0 {
			t.Fatalf("no keys under %q", prefix)
		}
		docs := make([]crawler.Document, 0, len(keys))
		week := -1.0
		for _, k := range keys {
			meta, body, err := st.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			if week < 0 {
				week = meta.FetchedAt
			}
			docs = append(docs, crawler.Document{FetchURL: k[len(prefix):], Body: body})
		}
		res, err := crawler.Assemble(docs)
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snapshot.Snapshot{Label: label, Time: week, Graph: res.Graph})
	}
	al, err := snapshot.Align(snaps)
	if err != nil {
		t.Fatal(err)
	}
	res, ranks, err := quality.FromAligned(al, estSnaps, prOpts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, ranks, al
}

func TestArchiveLabels(t *testing.T) {
	st := buildTestArchive(t)
	labels, err := ArchiveLabels(st, corpus.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(labels, []string{"t1", "t2", "t3"}) {
		t.Fatalf("labels = %v", labels)
	}
}

func TestSnapshotsFromArchiveMatchExtract(t *testing.T) {
	st := buildTestArchive(t)
	labels := []string{"t1", "t2", "t3"}
	snaps, err := SnapshotsFromArchive(st, labels, corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, al := preRefactorPipeline(t, st, labels, 3, pagerank.Options{}, quality.Config{})
	al2, err := snapshot.Align(snaps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(al2.URLs, al.URLs) || !reflect.DeepEqual(al2.Times, al.Times) {
		t.Fatal("aligned series differ between archive route and extract route")
	}
	for k := range snaps {
		if snaps[k].Label != labels[k] {
			t.Fatalf("snapshot %d label %q", k, snaps[k].Label)
		}
		if got, want := snaps[k].Graph.AppendBinary(nil), al.Graphs[k]; got == nil || want == nil {
			t.Fatal("nil graph")
		}
	}
}

// TestFromArchiveMatchesPreRefactorPath pins the acceptance criterion:
// the archive route's estimate and rank series are Float64bits-identical
// to the pre-refactor extract-then-align path.
func TestFromArchiveMatchesPreRefactorPath(t *testing.T) {
	st := buildTestArchive(t)
	prOpts := pagerank.Options{Variant: pagerank.VariantPaper}
	cfg := quality.Config{}

	wantRes, wantRanks, wantAl := preRefactorPipeline(t, st, []string{"t1", "t2", "t3"}, 3, prOpts, cfg)

	for _, workers := range []int{1, 2, 0} {
		res, ranks, al, err := FromArchive(st, nil, 3, prOpts, cfg, corpus.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(al.URLs, wantAl.URLs) {
			t.Fatalf("workers=%d: aligned URLs differ", workers)
		}
		if len(res.Q) != len(wantRes.Q) {
			t.Fatalf("workers=%d: %d estimates, want %d", workers, len(res.Q), len(wantRes.Q))
		}
		for i := range res.Q {
			if math.Float64bits(res.Q[i]) != math.Float64bits(wantRes.Q[i]) {
				t.Fatalf("workers=%d: Q[%d] bits differ", workers, i)
			}
		}
		for k := range ranks {
			for i := range ranks[k] {
				if math.Float64bits(ranks[k][i]) != math.Float64bits(wantRanks[k][i]) {
					t.Fatalf("workers=%d: ranks[%d][%d] bits differ", workers, k, i)
				}
			}
		}
	}
}

func TestFromArchiveErrors(t *testing.T) {
	st := buildTestArchive(t)
	if _, _, _, err := FromArchive(st, []string{"nope"}, 2, pagerank.Options{}, quality.Config{}, corpus.Options{}); err == nil {
		t.Fatal("unknown label accepted")
	}
	if _, _, _, err := FromArchive(st, nil, 9, pagerank.Options{}, quality.Config{}, corpus.Options{}); err == nil {
		t.Fatal("estimationSnaps beyond series accepted")
	}
}
