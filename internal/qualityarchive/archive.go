// Package qualityarchive feeds the quality estimator directly from a
// crawl archive (a pagestore written by `crawl -archive`), replacing the
// extract-CLI-then-snapshot-file round trip with one corpus pass per
// label. Keys follow the archive convention "<label>/<fetch-url>".
//
// It lives apart from package quality so that the estimator itself stays
// free of crawl-pipeline dependencies: quality is pure math over PageRank
// series (and is imported by the simulators for live in-the-loop
// estimates), while this package is the adapter binding it to the
// crawler/pagestore/corpus stack.
package qualityarchive

import (
	"fmt"
	"sort"
	"strings"

	"pagequality/internal/corpus"
	"pagequality/internal/crawler"
	"pagequality/internal/pagerank"
	"pagequality/internal/pagestore"
	"pagequality/internal/quality"
	"pagequality/internal/snapshot"
)

// archiveTime is a label's snapshot time: the fetch time of its first
// document in key order — the same choice cmd/extract makes when -week
// is not given, so both routes stamp identical times.
func archiveTime(docs []archived) float64 {
	return docs[0].week
}

type archived struct {
	url  string
	week float64
	body []byte
}

// labelDocs runs one corpus pass and groups every archived document by
// label, key-ordered within each label.
func labelDocs(st *pagestore.Store, opts corpus.Options) (map[string][]archived, error) {
	type rec struct {
		label string
		doc   archived
	}
	recs, err := corpus.Extract(st, func(d corpus.Doc) (rec, bool) {
		i := strings.IndexByte(d.Key, '/')
		if i <= 0 {
			return rec{}, false // no label prefix: not an archive key
		}
		return rec{
			label: d.Key[:i],
			doc:   archived{url: d.Key[i+1:], week: d.Meta.FetchedAt, body: d.Body},
		}, true
	}, opts)
	if err != nil {
		return nil, err
	}
	byLabel := map[string][]archived{}
	for _, r := range recs {
		byLabel[r.label] = append(byLabel[r.label], r.doc)
	}
	return byLabel, nil
}

// ArchiveLabels returns the crawl labels present in the archive, ordered
// by snapshot time (ties broken by label) — the order Align expects.
func ArchiveLabels(st *pagestore.Store, opts corpus.Options) ([]string, error) {
	byLabel, err := labelDocs(st, opts)
	if err != nil {
		return nil, err
	}
	labels := make([]string, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(a, b int) bool {
		ta, tb := archiveTime(byLabel[labels[a]]), archiveTime(byLabel[labels[b]])
		if ta < tb {
			return true
		}
		if tb < ta {
			return false
		}
		return labels[a] < labels[b]
	})
	return labels, nil
}

// SnapshotsFromArchive re-extracts one link-graph snapshot per label
// from the archived bodies, in the given label order. Each snapshot is
// byte-identical to what `extract -label <l>` would have written: the
// documents are assembled in key order with the first document's fetch
// time as the snapshot time.
func SnapshotsFromArchive(st *pagestore.Store, labels []string, opts corpus.Options) ([]snapshot.Snapshot, error) {
	byLabel, err := labelDocs(st, opts)
	if err != nil {
		return nil, err
	}
	snaps := make([]snapshot.Snapshot, 0, len(labels))
	for _, label := range labels {
		docs := byLabel[label]
		if len(docs) == 0 {
			return nil, fmt.Errorf("qualityarchive: no documents with label %q in archive", label)
		}
		cdocs := make([]crawler.Document, len(docs))
		for i, d := range docs {
			cdocs[i] = crawler.Document{FetchURL: d.url, Body: d.body}
		}
		res, err := crawler.Assemble(cdocs)
		if err != nil {
			return nil, fmt.Errorf("qualityarchive: label %q: %w", label, err)
		}
		snaps = append(snaps, snapshot.Snapshot{Label: label, Time: archiveTime(docs), Graph: res.Graph})
	}
	return snaps, nil
}

// FromArchive runs the full pipeline straight off a crawl archive:
// re-extract a snapshot per label, align on common pages, then estimate
// exactly as FromAligned does. With labels nil, every label in the
// archive participates in time order. Returns the estimate, the full
// PageRank series and the alignment (for URL lookup).
func FromArchive(st *pagestore.Store, labels []string, estimationSnaps int, prOpts pagerank.Options, cfg quality.Config, opts corpus.Options) (*quality.Result, [][]float64, *snapshot.Aligned, error) {
	if labels == nil {
		var err error
		labels, err = ArchiveLabels(st, opts)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	snaps, err := SnapshotsFromArchive(st, labels, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	al, err := snapshot.Align(snaps)
	if err != nil {
		return nil, nil, nil, err
	}
	res, ranks, err := quality.FromAligned(al, estimationSnaps, prOpts, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return res, ranks, al, nil
}
