package search_test

import (
	"fmt"

	"pagequality/internal/search"
)

// A three-document index queried with and without an authority signal.
// With AuthorityWeight 1 the relevant set is ordered purely by the
// authority scores — the paper's two-stage ranking model.
func ExampleIndex_Search() {
	ix := search.NewIndex()
	ix.AddAll([]string{
		"quality ranking for the web",       // doc 0
		"web pages and web crawlers",        // doc 1
		"cooking recipes without any links", // doc 2
	})
	authority := []float64{0.3, 0.9, 0.5}
	hits, err := ix.Search("web", search.Options{
		TopK:            3,
		Authority:       authority,
		AuthorityWeight: 1,
	})
	if err != nil {
		panic(err)
	}
	for _, h := range hits {
		fmt.Printf("doc %d (authority %.1f)\n", h.Doc, authority[h.Doc])
	}
	// Output:
	// doc 1 (authority 0.9)
	// doc 0 (authority 0.3)
}
