package search

// This file preserves the pre-flattening scorer verbatim as the oracle
// for the regression tests: searchReference is the historical
// map-accumulator Search — per-query map[int32]float64 scores, lazily
// recomputed norms, full sort plus truncation — against which the
// frozen-kernel path must stay bitwise identical (same doc ids, same
// Float64bits) in every retrieval mode. It lives in a test file so the
// shipped package carries exactly one scorer.

import (
	"math"
	"sort"
)

// normsReference recomputes the per-document tf-idf L2 norms exactly as
// the old ensureNorms did: terms visited in sorted order, so each norm is
// the same ordered float sum.
func (ix *Index) normsReference() []float64 {
	norm := make([]float64, len(ix.docLen))
	for _, term := range ix.sortedVocab() {
		w := ix.idf(term)
		for _, p := range ix.postings[term] {
			x := float64(p.tf) * w
			norm[p.doc] += x * x
		}
	}
	for i := range norm {
		norm[i] = math.Sqrt(norm[i])
	}
	return norm
}

// vectorScoresReference is the historical cosine scorer.
func (ix *Index) vectorScoresReference(terms []string) map[int32]float64 {
	norm := ix.normsReference()
	qCounts := queryCounts(terms)
	scores := make(map[int32]float64)
	qNorm := 0.0
	for _, t := range sortedKeys(qCounts) {
		w := ix.idf(t)
		if w == 0 {
			continue
		}
		qw := float64(qCounts[t]) * w
		qNorm += qw * qw
		for _, p := range ix.postings[t] {
			scores[p.doc] += qw * float64(p.tf) * w
		}
	}
	if qNorm == 0 {
		return nil
	}
	qn := math.Sqrt(qNorm)
	for d := range scores {
		if norm[d] > 0 {
			scores[d] /= qn * norm[d]
		}
	}
	return scores
}

// bm25ScoresReference is the historical Okapi BM25 scorer.
func (ix *Index) bm25ScoresReference(terms []string) map[int32]float64 {
	n := len(ix.docLen)
	if n == 0 {
		return nil
	}
	totalLen := 0
	for _, l := range ix.docLen {
		totalLen += l
	}
	avgLen := float64(totalLen) / float64(n)
	if avgLen == 0 {
		return nil
	}
	qCounts := queryCounts(terms)
	scores := make(map[int32]float64)
	for _, t := range sortedKeys(qCounts) {
		plist := ix.postings[t]
		if len(plist) == 0 {
			continue
		}
		df := float64(len(plist))
		idf := math.Log(1 + (float64(n)-df+0.5)/(df+0.5))
		for _, p := range plist {
			tf := float64(p.tf)
			dl := float64(ix.docLen[p.doc])
			denom := tf + bm25K1*(1-bm25B+bm25B*dl/avgLen)
			scores[p.doc] += idf * tf * (bm25K1 + 1) / denom
		}
	}
	return scores
}

// booleanScoresReference is the historical containment scorer.
func (ix *Index) booleanScoresReference(terms []string, requireAll bool) map[int32]float64 {
	uniq := make(map[string]bool, len(terms))
	for _, t := range terms {
		uniq[t] = true
	}
	counts := make(map[int32]int)
	for t := range uniq {
		for _, p := range ix.postings[t] {
			counts[p.doc]++
		}
	}
	scores := make(map[int32]float64, len(counts))
	for d, c := range counts {
		if requireAll && c < len(uniq) {
			continue
		}
		scores[d] = float64(c)
	}
	return scores
}

// searchReference is the historical Search: score into a map, build
// every hit, sort fully, truncate.
func (ix *Index) searchReference(query string, opts Options) ([]Hit, error) {
	if err := opts.fill(ix.NumDocs()); err != nil {
		return nil, err
	}
	terms := Tokenize(query)
	if len(terms) == 0 {
		return nil, ErrBadQuery
	}
	var rel map[int32]float64
	switch opts.Mode {
	case ModeVector:
		rel = ix.vectorScoresReference(terms)
	case ModeBooleanAnd:
		rel = ix.booleanScoresReference(terms, true)
	case ModeBooleanOr:
		rel = ix.booleanScoresReference(terms, false)
	case ModeBM25:
		rel = ix.bm25ScoresReference(terms)
	default:
		return nil, ErrBadQuery
	}
	if len(rel) == 0 {
		return nil, nil
	}
	hits := make([]Hit, 0, len(rel))
	maxRel := 0.0
	for _, s := range rel {
		if s > maxRel {
			maxRel = s
		}
	}
	var maxAuth float64
	if opts.Authority != nil {
		for d := range rel {
			if a := opts.Authority[d]; a > maxAuth {
				maxAuth = a
			}
		}
	}
	for d, s := range rel {
		h := Hit{Doc: int(d), Relevance: s}
		relNorm := 0.0
		if maxRel > 0 {
			relNorm = s / maxRel
		}
		if opts.Authority != nil {
			authNorm := 0.0
			if maxAuth > 0 {
				authNorm = opts.Authority[d] / maxAuth
			}
			h.Score = (1-opts.AuthorityWeight)*relNorm + opts.AuthorityWeight*authNorm
		} else {
			h.Score = relNorm
		}
		hits = append(hits, h)
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score { //pqlint:allow floateq exact score ties decide the comparator's tie-break branch
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc < hits[j].Doc
	})
	if len(hits) > opts.TopK {
		hits = hits[:opts.TopK]
	}
	return hits, nil
}
