package search

import (
	"fmt"
	"math"
	"testing"
)

// synthDocs builds a corpus with enough vocabulary overlap that float
// accumulation order is exercised hard: every doc shares terms with many
// others, so norms and scores are sums of many differently-sized terms.
func synthDocs(n int) []string {
	docs := make([]string, n)
	for i := 0; i < n; i++ {
		s := ""
		for j := 0; j <= i%17; j++ {
			s += fmt.Sprintf("term%d ", (i*7+j*13)%41)
		}
		docs[i] = s + fmt.Sprintf("unique%d shared common everywhere", i)
	}
	return docs
}

func buildIndex(docs []string) *Index {
	ix := NewIndex()
	ix.AddAll(docs)
	return ix
}

// TestScoringDeterministic runs every scoring path twice — within one
// frozen view (two kernel invocations) and across two independently
// built and frozen indexes (two map iterations over the vocabulary,
// differently randomized by the runtime) — and demands bitwise-identical
// floats. This is the regression test for map-iteration order leaks: the
// freeze iterates the postings map through sortedVocab, so norms, idf
// tables and scores must never vary run to run.
func TestScoringDeterministic(t *testing.T) {
	docs := synthDocs(120)
	query := "term1 term2 term3 term5 term8 term13 term21 term34 shared common everywhere unique3"
	terms := Tokenize(query)

	a := buildIndex(docs)
	b := buildIndex(docs)
	fa, fb := a.frozen(), b.frozen()
	for i := range fa.norm {
		if math.Float64bits(fa.norm[i]) != math.Float64bits(fb.norm[i]) {
			t.Fatalf("norm[%d] differs across identical builds: %x vs %x",
				i, fa.norm[i], fb.norm[i])
		}
	}
	for i := range fa.idf {
		if math.Float64bits(fa.idf[i]) != math.Float64bits(fb.idf[i]) ||
			math.Float64bits(fa.bm25IDF[i]) != math.Float64bits(fb.bm25IDF[i]) {
			t.Fatalf("idf[%d] differs across identical builds", i)
		}
	}

	score := func(f *frozen, kernel func(*frozen, []string, *scratch) []int32) map[int32]float64 {
		sc := f.getScratch()
		defer f.release(sc)
		out := make(map[int32]float64)
		for _, d := range kernel(f, terms, sc) {
			out[d] = sc.score[d]
		}
		return out
	}
	paths := []struct {
		name   string
		kernel func(*frozen, []string, *scratch) []int32
	}{
		{"vector", func(f *frozen, ts []string, sc *scratch) []int32 { return f.vectorKernel(ts, sc) }},
		{"bm25", func(f *frozen, ts []string, sc *scratch) []int32 { return f.bm25Kernel(ts, sc) }},
	}
	for _, p := range paths {
		first := score(fa, p.kernel)
		if len(first) == 0 {
			t.Fatalf("%s: query matched nothing; corpus broken", p.name)
		}
		for run := 0; run < 5; run++ {
			for name, f := range map[string]*frozen{"same index": fa, "rebuilt index": fb} {
				got := score(f, p.kernel)
				if len(got) != len(first) {
					t.Fatalf("%s (%s run %d): %d docs scored, want %d",
						p.name, name, run, len(got), len(first))
				}
				for d, s := range first {
					if math.Float64bits(got[d]) != math.Float64bits(s) {
						t.Fatalf("%s (%s run %d): doc %d score %x, want bitwise %x",
							p.name, name, run, d, got[d], s)
					}
				}
			}
		}
	}
}

// TestSearchDeterministic covers the public entry point end to end: the
// full hit list (docs, scores, relevance) must be identical across
// repeated calls and across rebuilt indexes.
func TestSearchDeterministic(t *testing.T) {
	docs := synthDocs(80)
	auth := make([]float64, len(docs))
	for i := range auth {
		auth[i] = 1 / float64(i+1)
	}
	opts := Options{Mode: ModeBM25, TopK: 25, Authority: auth}

	a := buildIndex(docs)
	b := buildIndex(docs)
	first, err := a.Search("shared common term3 term8", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("query matched nothing")
	}
	for run := 0; run < 5; run++ {
		for name, ix := range map[string]*Index{"same index": a, "rebuilt index": b} {
			got, err := ix.Search("shared common term3 term8", opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(first) {
				t.Fatalf("%s run %d: %d hits, want %d", name, run, len(got), len(first))
			}
			for i := range got {
				if got[i].Doc != first[i].Doc ||
					math.Float64bits(got[i].Score) != math.Float64bits(first[i].Score) ||
					math.Float64bits(got[i].Relevance) != math.Float64bits(first[i].Relevance) {
					t.Fatalf("%s run %d: hit %d = %+v, want %+v", name, run, i, got[i], first[i])
				}
			}
		}
	}
}
