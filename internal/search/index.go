// Package search implements the search-engine substrate the paper's
// motivation rests on: an inverted index with boolean and tf-idf
// vector-space retrieval (the "first-generation" ranking the paper
// discusses), combined with a link-based authority score — PageRank or the
// quality estimate — to produce the final ranking. Section 4's
// relevance-versus-quality argument maps directly onto this two-stage
// design: the query selects the relevant set, the authority vector orders
// it.
package search

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"unicode"
)

// ErrBadQuery reports an unusable query or configuration.
var ErrBadQuery = errors.New("search: bad query")

// Tokenize lowercases the text and splits it into maximal alphanumeric
// runs. It is the single tokenizer used for both documents and queries so
// the two can never disagree.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// posting records one document containing a term.
type posting struct {
	doc int32
	tf  int32
}

// Index is an in-memory inverted index. Documents are added once and
// identified by the dense int id returned from Add; the caller typically
// uses graph.NodeID values as document ids by adding documents in node
// order.
type Index struct {
	postings map[string][]posting
	docLen   []int     // tokens per document
	norm     []float64 // tf-idf L2 norm per document (computed lazily)
	dirty    bool
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{postings: make(map[string][]posting)}
}

// Add indexes one document and returns its id (sequential from 0).
func (ix *Index) Add(text string) int {
	id := len(ix.docLen)
	terms := Tokenize(text)
	counts := make(map[string]int, len(terms))
	for _, t := range terms {
		counts[t]++
	}
	for t, c := range counts {
		ix.postings[t] = append(ix.postings[t], posting{doc: int32(id), tf: int32(c)})
	}
	ix.docLen = append(ix.docLen, len(terms))
	ix.dirty = true
	return id
}

// AddAll indexes the documents in order; document ids equal slice indices.
func (ix *Index) AddAll(texts []string) {
	for _, t := range texts {
		ix.Add(t)
	}
}

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int { return len(ix.docLen) }

// NumTerms returns the vocabulary size.
func (ix *Index) NumTerms() int { return len(ix.postings) }

// DocFreq returns the number of documents containing the term.
func (ix *Index) DocFreq(term string) int {
	return len(ix.postings[strings.ToLower(term)])
}

// idf is the smoothed inverse document frequency.
func (ix *Index) idf(term string) float64 {
	df := len(ix.postings[term])
	if df == 0 {
		return 0
	}
	return math.Log(1 + float64(len(ix.docLen))/float64(df))
}

// ensureNorms computes per-document tf-idf L2 norms for cosine scoring.
// Terms are visited in sorted order: each norm is a float sum over the
// document's terms, and float addition is order-sensitive, so iterating
// the postings map directly would make the norm bits (and potentially
// near-tie rankings) vary run to run.
func (ix *Index) ensureNorms() {
	if !ix.dirty && ix.norm != nil {
		return
	}
	ix.norm = make([]float64, len(ix.docLen))
	for _, term := range ix.sortedVocab() {
		w := ix.idf(term)
		for _, p := range ix.postings[term] {
			x := float64(p.tf) * w
			ix.norm[p.doc] += x * x
		}
	}
	for i := range ix.norm {
		ix.norm[i] = math.Sqrt(ix.norm[i])
	}
	ix.dirty = false
}

// Mode selects the retrieval model.
type Mode uint8

const (
	// ModeVector ranks by tf-idf cosine similarity (Salton's vector-space
	// model [21]).
	ModeVector Mode = iota
	// ModeBooleanAnd retrieves documents containing every query term [27].
	ModeBooleanAnd
	// ModeBooleanOr retrieves documents containing any query term.
	ModeBooleanOr
	// ModeBM25 ranks by Okapi BM25, the practical form of the
	// probabilistic retrieval model the paper's related work cites
	// [7, 20].
	ModeBM25
)

// Hit is one search result.
type Hit struct {
	// Doc is the document id.
	Doc int
	// Score is the final ranking score (higher is better).
	Score float64
	// Relevance is the content-only score before authority blending.
	Relevance float64
}

// Options configures Search.
type Options struct {
	// Mode selects boolean or vector retrieval (default ModeVector).
	Mode Mode
	// TopK bounds the number of results (default 10).
	TopK int
	// Authority, when non-nil, re-ranks the relevant set by blending the
	// normalised relevance with the normalised authority score:
	//     score = (1-w)·rel + w·auth
	// This is where PageRank or the quality estimate plugs in. It must
	// have one entry per document.
	Authority []float64
	// AuthorityWeight is w above, in [0,1] (default 0.5 when Authority is
	// set). Weight 1 reproduces the paper's framing exactly: relevance
	// only selects the set, authority alone orders it.
	AuthorityWeight float64
}

func (o *Options) fill(numDocs int) error {
	if o.TopK == 0 {
		o.TopK = 10
	}
	if o.TopK < 1 {
		return fmt.Errorf("%w: TopK=%d", ErrBadQuery, o.TopK)
	}
	if o.Authority != nil {
		if len(o.Authority) != numDocs {
			return fmt.Errorf("%w: authority length %d != docs %d", ErrBadQuery, len(o.Authority), numDocs)
		}
		if o.AuthorityWeight == 0 {
			o.AuthorityWeight = 0.5
		}
		if o.AuthorityWeight < 0 || o.AuthorityWeight > 1 {
			return fmt.Errorf("%w: AuthorityWeight=%g", ErrBadQuery, o.AuthorityWeight)
		}
	}
	return nil
}

// Search retrieves and ranks documents for the query.
func (ix *Index) Search(query string, opts Options) ([]Hit, error) {
	if err := opts.fill(ix.NumDocs()); err != nil {
		return nil, err
	}
	terms := Tokenize(query)
	if len(terms) == 0 {
		return nil, fmt.Errorf("%w: empty query", ErrBadQuery)
	}
	var rel map[int32]float64
	switch opts.Mode {
	case ModeVector:
		rel = ix.vectorScores(terms)
	case ModeBooleanAnd:
		rel = ix.booleanScores(terms, true)
	case ModeBooleanOr:
		rel = ix.booleanScores(terms, false)
	case ModeBM25:
		rel = ix.bm25Scores(terms)
	default:
		return nil, fmt.Errorf("%w: unknown mode %d", ErrBadQuery, opts.Mode)
	}
	if len(rel) == 0 {
		return nil, nil
	}
	hits := make([]Hit, 0, len(rel))
	maxRel := 0.0
	for _, s := range rel {
		if s > maxRel {
			maxRel = s
		}
	}
	var maxAuth float64
	if opts.Authority != nil {
		for d := range rel {
			if a := opts.Authority[d]; a > maxAuth {
				maxAuth = a
			}
		}
	}
	for d, s := range rel {
		h := Hit{Doc: int(d), Relevance: s}
		relNorm := 0.0
		if maxRel > 0 {
			relNorm = s / maxRel
		}
		if opts.Authority != nil {
			authNorm := 0.0
			if maxAuth > 0 {
				authNorm = opts.Authority[d] / maxAuth
			}
			h.Score = (1-opts.AuthorityWeight)*relNorm + opts.AuthorityWeight*authNorm
		} else {
			h.Score = relNorm
		}
		hits = append(hits, h)
	}
	sort.Slice(hits, func(i, j int) bool {
		//pqlint:allow floateq exact-tie detection so equal scores fall through to the doc-id tie-break
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc < hits[j].Doc
	})
	if len(hits) > opts.TopK {
		hits = hits[:opts.TopK]
	}
	return hits, nil
}

// vectorScores computes cosine(query, doc) over tf-idf weights. Query
// terms are visited in sorted order so the float accumulations below are
// bitwise reproducible (map order would perturb qNorm and each score).
func (ix *Index) vectorScores(terms []string) map[int32]float64 {
	ix.ensureNorms()
	qCounts := queryCounts(terms)
	scores := make(map[int32]float64)
	qNorm := 0.0
	for _, t := range sortedKeys(qCounts) {
		w := ix.idf(t)
		if w == 0 {
			continue
		}
		qw := float64(qCounts[t]) * w
		qNorm += qw * qw
		for _, p := range ix.postings[t] {
			scores[p.doc] += qw * float64(p.tf) * w
		}
	}
	if qNorm == 0 {
		return nil
	}
	qn := math.Sqrt(qNorm)
	for d := range scores {
		if ix.norm[d] > 0 {
			scores[d] /= qn * ix.norm[d]
		}
	}
	return scores
}

// booleanScores retrieves by term containment; the score is the count of
// matched terms (so OR-mode still ranks fuller matches first).
func (ix *Index) booleanScores(terms []string, requireAll bool) map[int32]float64 {
	uniq := make(map[string]bool, len(terms))
	for _, t := range terms {
		uniq[t] = true
	}
	counts := make(map[int32]int)
	for t := range uniq {
		for _, p := range ix.postings[t] {
			counts[p.doc]++
		}
	}
	scores := make(map[int32]float64, len(counts))
	for d, c := range counts {
		if requireAll && c < len(uniq) {
			continue
		}
		scores[d] = float64(c)
	}
	return scores
}

// queryCounts tallies term frequencies of a tokenized query.
func queryCounts(terms []string) map[string]int {
	qCounts := make(map[string]int, len(terms))
	for _, t := range terms {
		qCounts[t]++
	}
	return qCounts
}

// sortedKeys returns the map's keys in sorted order, the iteration order
// used wherever float scores are accumulated per term.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedVocab returns every indexed term in sorted order.
func (ix *Index) sortedVocab() []string {
	terms := make([]string, 0, len(ix.postings))
	for t := range ix.postings {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	return terms
}
