// Package search implements the search-engine substrate the paper's
// motivation rests on: an inverted index with boolean and tf-idf
// vector-space retrieval (the "first-generation" ranking the paper
// discusses), combined with a link-based authority score — PageRank or the
// quality estimate — to produce the final ranking. Section 4's
// relevance-versus-quality argument maps directly onto this two-stage
// design: the query selects the relevant set, the authority vector orders
// it.
//
// Queries are served from a frozen, CSR-style posting layout (see
// frozen.go): flat doc-id and term-frequency slices per sorted term with
// idf values and norms precomputed, scored through dense pooled
// accumulators and a bounded top-k heap. The results are bitwise
// identical to the original map-accumulator scorer, which the regression
// tests retain as an oracle.
package search

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unicode"
)

// ErrBadQuery reports an unusable query or configuration.
var ErrBadQuery = errors.New("search: bad query")

// Tokenize lowercases the text and splits it into maximal alphanumeric
// runs. It is the single tokenizer used for both documents and queries so
// the two can never disagree.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// posting records one document containing a term.
type posting struct {
	doc int32
	tf  int32
}

// Index is an in-memory inverted index. Documents are added once and
// identified by the dense int id returned from Add; the caller typically
// uses graph.NodeID values as document ids by adding documents in node
// order.
//
// Once built, an Index is safe for any number of concurrent Search
// calls: the first query freezes the postings into an immutable flat
// layout that all queries share. Adding documents concurrently with
// searching is not supported.
type Index struct {
	postings map[string][]posting
	docLen   []int // tokens per document

	mu sync.Mutex             // serialises freeze after a mutation
	fz atomic.Pointer[frozen] // current frozen view; nil after mutation
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{postings: make(map[string][]posting)}
}

// Add indexes one document and returns its id (sequential from 0).
func (ix *Index) Add(text string) int {
	id := len(ix.docLen)
	terms := Tokenize(text)
	counts := make(map[string]int, len(terms))
	for _, t := range terms {
		counts[t]++
	}
	for t, c := range counts {
		ix.postings[t] = append(ix.postings[t], posting{doc: int32(id), tf: int32(c)})
	}
	ix.docLen = append(ix.docLen, len(terms))
	ix.fz.Store(nil)
	return id
}

// AddAll indexes the documents in order; document ids equal slice indices.
func (ix *Index) AddAll(texts []string) {
	for _, t := range texts {
		ix.Add(t)
	}
}

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int { return len(ix.docLen) }

// Freeze eagerly builds the immutable posting layout that Search would
// otherwise build lazily on first query. Callers that publish an index to
// concurrent readers (e.g. a serving generation swapped in behind an
// atomic pointer) call this once at build time so the freeze cost is paid
// off the query path and every reader only ever observes a fully built
// index. Idempotent until the next Add.
func (ix *Index) Freeze() { ix.frozen() }

// NumTerms returns the vocabulary size.
func (ix *Index) NumTerms() int { return len(ix.postings) }

// DocFreq returns the number of documents containing the term.
func (ix *Index) DocFreq(term string) int {
	return len(ix.postings[strings.ToLower(term)])
}

// idf is the smoothed inverse document frequency.
func (ix *Index) idf(term string) float64 {
	df := len(ix.postings[term])
	if df == 0 {
		return 0
	}
	return math.Log(1 + float64(len(ix.docLen))/float64(df))
}

// Mode selects the retrieval model.
type Mode uint8

const (
	// ModeVector ranks by tf-idf cosine similarity (Salton's vector-space
	// model [21]).
	ModeVector Mode = iota
	// ModeBooleanAnd retrieves documents containing every query term [27].
	ModeBooleanAnd
	// ModeBooleanOr retrieves documents containing any query term.
	ModeBooleanOr
	// ModeBM25 ranks by Okapi BM25, the practical form of the
	// probabilistic retrieval model the paper's related work cites
	// [7, 20].
	ModeBM25
)

// Hit is one search result.
type Hit struct {
	// Doc is the document id.
	Doc int
	// Score is the final ranking score (higher is better).
	Score float64
	// Relevance is the content-only score before authority blending.
	Relevance float64
}

// Options configures Search.
type Options struct {
	// Mode selects boolean or vector retrieval (default ModeVector).
	Mode Mode
	// TopK bounds the number of results (default 10). Zero selects the
	// default, negative values are rejected, and values beyond the number
	// of indexed documents are clamped to it — uniformly across every
	// retrieval mode.
	TopK int
	// Authority, when non-nil, re-ranks the relevant set by blending the
	// normalised relevance with the normalised authority score:
	//     score = (1-w)·rel + w·auth
	// This is where PageRank or the quality estimate plugs in. It must
	// have one entry per document.
	Authority []float64
	// AuthorityWeight is w above, in [0,1] (default 0.5 when Authority is
	// set). Weight 1 reproduces the paper's framing exactly: relevance
	// only selects the set, authority alone orders it.
	AuthorityWeight float64
}

func (o *Options) fill(numDocs int) error {
	if o.TopK == 0 {
		o.TopK = 10
	}
	if o.TopK < 1 {
		return fmt.Errorf("%w: TopK=%d", ErrBadQuery, o.TopK)
	}
	if numDocs > 0 && o.TopK > numDocs {
		o.TopK = numDocs
	}
	if o.Authority != nil {
		if len(o.Authority) != numDocs {
			return fmt.Errorf("%w: authority length %d != docs %d", ErrBadQuery, len(o.Authority), numDocs)
		}
		if o.AuthorityWeight == 0 {
			o.AuthorityWeight = 0.5
		}
		if o.AuthorityWeight < 0 || o.AuthorityWeight > 1 {
			return fmt.Errorf("%w: AuthorityWeight=%g", ErrBadQuery, o.AuthorityWeight)
		}
	}
	return nil
}

// Search retrieves and ranks documents for the query. It is safe for
// concurrent use as long as no Add runs at the same time.
func (ix *Index) Search(query string, opts Options) ([]Hit, error) {
	if err := opts.fill(ix.NumDocs()); err != nil {
		return nil, err
	}
	terms := Tokenize(query)
	if len(terms) == 0 {
		return nil, fmt.Errorf("%w: empty query", ErrBadQuery)
	}
	if opts.Mode > ModeBM25 {
		return nil, fmt.Errorf("%w: unknown mode %d", ErrBadQuery, opts.Mode)
	}
	f := ix.frozen()
	sc := f.getScratch()
	defer f.release(sc)
	var docs []int32
	switch opts.Mode {
	case ModeVector:
		docs = f.vectorKernel(terms, sc)
	case ModeBooleanAnd:
		docs = f.booleanKernel(terms, true, sc)
	case ModeBooleanOr:
		docs = f.booleanKernel(terms, false, sc)
	case ModeBM25:
		docs = f.bm25Kernel(terms, sc)
	}
	if len(docs) == 0 {
		return nil, nil
	}
	return blendAndSelect(docs, sc.score, opts), nil
}

// blendAndSelect normalises the relevance scores, blends in the
// authority signal, and selects the top k hits. The max-reductions are
// order-independent and the per-doc blend uses exactly the expressions
// of the historical scorer, so the hit list is bitwise identical to
// building every hit and fully sorting (see topK).
func blendAndSelect(docs []int32, rel []float64, opts Options) []Hit {
	maxRel := 0.0
	for _, d := range docs {
		if rel[d] > maxRel {
			maxRel = rel[d]
		}
	}
	var maxAuth float64
	if opts.Authority != nil {
		for _, d := range docs {
			if a := opts.Authority[d]; a > maxAuth {
				maxAuth = a
			}
		}
	}
	top := newTopK(opts.TopK)
	for _, d := range docs {
		top.offer(blendHit(int(d), rel[d], maxRel, maxAuth, opts))
	}
	return top.ranked()
}

// blendHit builds the final hit for one document from its relevance and
// the corpus-global maxima. The unsharded and sharded paths both rank
// through this single function, so their per-doc floats cannot diverge:
// the expressions are exactly the historical scorer's.
func blendHit(doc int, rel, maxRel, maxAuth float64, opts Options) Hit {
	h := Hit{Doc: doc, Relevance: rel}
	relNorm := 0.0
	if maxRel > 0 {
		relNorm = rel / maxRel
	}
	if opts.Authority != nil {
		authNorm := 0.0
		if maxAuth > 0 {
			authNorm = opts.Authority[doc] / maxAuth
		}
		h.Score = (1-opts.AuthorityWeight)*relNorm + opts.AuthorityWeight*authNorm
	} else {
		h.Score = relNorm
	}
	return h
}

// queryCounts tallies term frequencies of a tokenized query.
func queryCounts(terms []string) map[string]int {
	qCounts := make(map[string]int, len(terms))
	for _, t := range terms {
		qCounts[t]++
	}
	return qCounts
}

// sortedKeys returns the map's keys in sorted order, the iteration order
// used wherever float scores are accumulated per term.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedVocab returns every indexed term in sorted order.
func (ix *Index) sortedVocab() []string {
	terms := make([]string, 0, len(ix.postings))
	for t := range ix.postings {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	return terms
}
