package search

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
)

// shardedQueries is the query mix the parity and race tests drive: every
// retrieval mode, short and multi-term queries, absent terms, and
// authority blends at several weights.
func shardedQueries(numDocs int) (queries []string, opts []Options) {
	auth := make([]float64, numDocs)
	for i := range auth {
		auth[i] = 1 / float64(i%13+1)
	}
	queries = []string{
		"shared common term3 term8",
		"term1 term5 term8 everywhere",
		"shared everywhere",
		"term2 unique7 zzz",
		"unique3",
		"term40 term39 term38 term37 term36 shared",
	}
	opts = []Options{
		{Mode: ModeVector, TopK: 20},
		{Mode: ModeBM25, TopK: 10, Authority: auth},
		{Mode: ModeBooleanAnd, TopK: 30},
		{Mode: ModeBooleanOr, TopK: 15, Authority: auth, AuthorityWeight: 0.3},
		{Mode: ModeVector, TopK: 5, Authority: auth, AuthorityWeight: 1},
		{Mode: ModeBM25, TopK: numDocs},
	}
	return queries, opts
}

// requireSameHits fails unless the two hit lists are bitwise identical:
// same docs in the same order, same Float64bits of every score.
func requireSameHits(t *testing.T, label string, got, want []Hit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d hits, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Doc != want[i].Doc ||
			math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) ||
			math.Float64bits(got[i].Relevance) != math.Float64bits(want[i].Relevance) {
			t.Fatalf("%s: hit %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestShardedParity is the reference-oracle contract of the scatter-gather
// engine: for every shard count and worker count, every mode and every
// option shape, the sharded result equals the unsharded Index.Search bit
// for bit — same doc ids, same math.Float64bits scores.
func TestShardedParity(t *testing.T) {
	docs := synthDocs(150)
	ix := buildIndex(docs)
	queries, optsList := shardedQueries(len(docs))

	want := make([][][]Hit, len(queries))
	for qi, q := range queries {
		want[qi] = make([][]Hit, len(optsList))
		for oi, o := range optsList {
			hits, err := ix.Search(q, o)
			if err != nil {
				t.Fatal(err)
			}
			want[qi][oi] = hits
		}
	}

	for _, shards := range []int{1, 2, 4, 8} {
		for _, workers := range []int{1, 2, 3, 8} {
			si, err := ix.Shard(shards, workers)
			if err != nil {
				t.Fatal(err)
			}
			if si.NumShards() != shards {
				t.Fatalf("NumShards = %d, want %d", si.NumShards(), shards)
			}
			for qi, q := range queries {
				for oi, o := range optsList {
					got, err := si.Search(q, o)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("shards=%d workers=%d query=%d opts=%d", shards, workers, qi, oi)
					requireSameHits(t, label, got, want[qi][oi])
				}
			}
		}
	}
}

// TestShardedParityTinyCorpus covers the degenerate geometries: more
// shards than documents (clamped), single-document corpora, and uneven
// shard sizes where the last shards hold one document fewer.
func TestShardedParityTinyCorpus(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7} {
		docs := synthDocs(n)
		ix := buildIndex(docs)
		si, err := ix.Shard(8, 4)
		if err != nil {
			t.Fatal(err)
		}
		if si.NumShards() != n {
			t.Fatalf("n=%d: shards clamped to %d, want %d", n, si.NumShards(), n)
		}
		for _, q := range []string{"shared common", "unique0", "zzz"} {
			want, err := ix.Search(q, Options{TopK: 5})
			if err != nil {
				t.Fatal(err)
			}
			got, err := si.Search(q, Options{TopK: 5})
			if err != nil {
				t.Fatal(err)
			}
			requireSameHits(t, fmt.Sprintf("n=%d q=%q", n, q), got, want)
		}
	}
}

// TestShardValidation pins the Shard configuration contract: shard and
// worker counts at or below zero are rejected (workers=0 meaning
// GOMAXPROCS excepted), oversized shard counts clamp instead of failing —
// the same convention Options.TopK follows.
func TestShardValidation(t *testing.T) {
	ix := buildIndex(synthDocs(10))
	for _, shards := range []int{0, -1, -100} {
		if _, err := ix.Shard(shards, 1); !errors.Is(err, ErrBadShard) {
			t.Fatalf("shards=%d accepted: %v", shards, err)
		}
	}
	if _, err := ix.Shard(2, -1); !errors.Is(err, ErrBadShard) {
		t.Fatal("workers=-1 accepted")
	}
	si, err := ix.Shard(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if si.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("workers=0 resolved to %d, want GOMAXPROCS=%d", si.Workers(), runtime.GOMAXPROCS(0))
	}
	if si, err := ix.Shard(1000, 2); err != nil || si.NumShards() != ix.NumDocs() {
		t.Fatalf("oversized shard count not clamped: %v, %v", si, err)
	}

	// Empty index: shard count clamps to one, searches come back empty.
	empty, err := NewIndex().Shard(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if empty.NumShards() != 1 || empty.NumDocs() != 0 {
		t.Fatalf("empty index sharded to %d/%d", empty.NumShards(), empty.NumDocs())
	}
	hits, err := empty.Search("anything", Options{TopK: 3})
	if err != nil || hits != nil {
		t.Fatalf("empty sharded search = %v, %v", hits, err)
	}

	// Query validation matches the unsharded engine.
	si2, err := ix.Shard(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := si2.Search("...", Options{}); !errors.Is(err, ErrBadQuery) {
		t.Fatal("empty query accepted")
	}
	if _, err := si2.Search("shared", Options{TopK: -1}); !errors.Is(err, ErrBadQuery) {
		t.Fatal("negative TopK accepted")
	}
	if _, err := si2.Search("shared", Options{Mode: ModeBM25 + 1}); !errors.Is(err, ErrBadQuery) {
		t.Fatal("unknown mode accepted")
	}
}

// TestShardedContextCancel: a cancelled context aborts the fan-out and
// surfaces ctx.Err() — the server-side half of the ctxhttp discipline,
// letting a client disconnect cancel in-flight shard work.
func TestShardedContextCancel(t *testing.T) {
	ix := buildIndex(synthDocs(64))
	for _, workers := range []int{1, 4} {
		si, err := ix.Shard(8, workers)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := si.SearchContext(ctx, "shared common", Options{TopK: 5}); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: cancelled search returned %v, want context.Canceled", workers, err)
		}
		// The same index still serves once the pressure is gone.
		hits, err := si.SearchContext(context.Background(), "shared common", Options{TopK: 5})
		if err != nil || len(hits) == 0 {
			t.Fatalf("workers=%d: post-cancel search = %v, %v", workers, hits, err)
		}
	}
}

// TestShardedConcurrent hammers one ShardedIndex from many goroutines and
// checks every result bitwise against the serial unsharded answer. Under
// -race this pins the concurrency contract the serving path relies on:
// scratch leases and fan-out state are per-call, the partitioned layout
// is immutable.
func TestShardedConcurrent(t *testing.T) {
	docs := synthDocs(120)
	ix := buildIndex(docs)
	queries, optsList := shardedQueries(len(docs))
	want := make([][]Hit, len(queries))
	for i := range queries {
		hits, err := ix.Search(queries[i], optsList[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = hits
	}
	si, err := ix.Shard(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	goroutines := 4 * runtime.GOMAXPROCS(0)
	const iters = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				qi := (g + it) % len(queries)
				got, err := si.SearchContext(context.Background(), queries[qi], optsList[qi])
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if len(got) != len(want[qi]) {
					t.Errorf("goroutine %d: query %d: %d hits, want %d", g, qi, len(got), len(want[qi]))
					return
				}
				for i := range got {
					if got[i].Doc != want[qi][i].Doc ||
						math.Float64bits(got[i].Score) != math.Float64bits(want[qi][i].Score) {
						t.Errorf("goroutine %d: query %d hit %d = %+v, want %+v", g, qi, i, got[i], want[qi][i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkShardedSearch measures the scatter-gather path against the
// single-shard baseline on a multi-term query over a corpus large enough
// that shard kernels dominate the fan-out cost.
func BenchmarkShardedSearch(b *testing.B) {
	docs := synthDocs(4000)
	ix := buildIndex(docs)
	query := "term1 term2 term3 term5 term8 shared common everywhere"
	for _, cfg := range []struct{ shards, workers int }{
		{1, 1}, {2, 2}, {4, 4}, {8, 8},
	} {
		b.Run(fmt.Sprintf("shards=%d", cfg.shards), func(b *testing.B) {
			si, err := ix.Shard(cfg.shards, cfg.workers)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := si.Search(query, Options{TopK: 10}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
