package search

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! go1.22 foo_bar")
	// '_' is neither letter nor digit, so foo_bar splits.
	want := []string{"hello", "world", "go1", "22", "foo", "bar"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	if Tokenize("...") != nil && len(Tokenize("...")) != 0 {
		t.Fatal("punctuation-only text tokenized to something")
	}
}

func corpus() *Index {
	ix := NewIndex()
	ix.AddAll([]string{
		"the quick brown fox jumps over the lazy dog",        // 0
		"a quick tour of the go programming language",        // 1
		"the go gopher is quick and curious",                 // 2
		"databases store data durably and answer queries",    // 3
		"quick quick quick repetition boosts term frequency", // 4
	})
	return ix
}

func TestIndexStats(t *testing.T) {
	ix := corpus()
	if ix.NumDocs() != 5 {
		t.Fatalf("NumDocs = %d", ix.NumDocs())
	}
	if df := ix.DocFreq("quick"); df != 4 {
		t.Fatalf("DocFreq(quick) = %d, want 4", df)
	}
	if df := ix.DocFreq("QUICK"); df != 4 {
		t.Fatalf("DocFreq is case sensitive")
	}
	if df := ix.DocFreq("missing"); df != 0 {
		t.Fatalf("DocFreq(missing) = %d", df)
	}
	if ix.NumTerms() == 0 {
		t.Fatal("no terms")
	}
}

// TestFreezeEager: an eagerly frozen index serves the same results as a
// lazily frozen one, and Freeze installs the frozen view so the first
// search does no build work. A post-freeze Add invalidates it again.
func TestFreezeEager(t *testing.T) {
	lazy, eager := corpus(), corpus()
	eager.Freeze()
	if eager.fz.Load() == nil {
		t.Fatal("Freeze did not install a frozen view")
	}
	f := eager.fz.Load()
	for _, q := range []string{"quick fox", "lazy dog", "brown"} {
		want, err := lazy.Search(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := eager.Search(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%q: %d hits vs %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%q hit %d: %+v vs %+v", q, i, got[i], want[i])
			}
		}
	}
	if eager.fz.Load() != f {
		t.Fatal("searching rebuilt the frozen view")
	}
	eager.Add("new document")
	if eager.fz.Load() != nil {
		t.Fatal("Add did not invalidate the frozen view")
	}
}

func TestVectorSearchRanksRareTermsHigher(t *testing.T) {
	ix := corpus()
	hits, err := ix.Search("go databases", Options{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		t.Fatalf("hits = %d, want 3 (docs 1,2,3)", len(hits))
	}
	// "databases" is rarer than "go": doc 3 must rank first.
	if hits[0].Doc != 3 {
		t.Fatalf("top hit = %d, want 3", hits[0].Doc)
	}
}

func TestVectorSearchTFMatters(t *testing.T) {
	ix := corpus()
	hits, err := ix.Search("quick", Options{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 4 {
		t.Fatalf("hits = %d, want 4", len(hits))
	}
	// Doc 4 repeats "quick" three times in a short document: top cosine.
	if hits[0].Doc != 4 {
		t.Fatalf("top hit = %d, want 4", hits[0].Doc)
	}
	for _, h := range hits {
		if h.Score <= 0 || h.Relevance <= 0 {
			t.Fatalf("hit %+v has non-positive scores", h)
		}
	}
}

func TestBooleanModes(t *testing.T) {
	ix := corpus()
	and, err := ix.Search("quick go", Options{Mode: ModeBooleanAnd, TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Docs containing both: 1 and 2.
	if len(and) != 2 {
		t.Fatalf("AND hits = %v", and)
	}
	for _, h := range and {
		if h.Doc != 1 && h.Doc != 2 {
			t.Fatalf("AND returned doc %d", h.Doc)
		}
	}
	or, err := ix.Search("quick go", Options{Mode: ModeBooleanOr, TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Docs containing either: 0,1,2,4.
	if len(or) != 4 {
		t.Fatalf("OR hits = %v", or)
	}
	// Full matches rank before partial ones in OR mode.
	if or[0].Doc != 1 && or[0].Doc != 2 {
		t.Fatalf("OR top hit = %d, want a doc matching both terms", or[0].Doc)
	}
}

func TestAuthorityReranking(t *testing.T) {
	ix := corpus()
	auth := []float64{0, 0.1, 5.0, 0, 0.1} // doc 2 is far more authoritative
	pure, err := ix.Search("quick", Options{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if pure[0].Doc == 2 {
		t.Fatal("fixture broken: doc 2 already top by relevance")
	}
	ranked, err := ix.Search("quick", Options{TopK: 5, Authority: auth, AuthorityWeight: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Doc != 2 {
		t.Fatalf("authority-weighted top hit = %d, want 2", ranked[0].Doc)
	}
	// Authority must not admit documents outside the relevant set: doc 3
	// does not contain "quick".
	for _, h := range ranked {
		if h.Doc == 3 {
			t.Fatal("authority admitted an irrelevant document")
		}
	}
}

func TestAuthorityWeightOneIsPaperSemantics(t *testing.T) {
	ix := corpus()
	auth := []float64{0.9, 0.5, 0.7, 0.1, 0.3}
	hits, err := ix.Search("quick", Options{TopK: 5, Authority: auth, AuthorityWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Pure authority ordering within the relevant set {0,1,2,4}.
	wantOrder := []int{0, 2, 1, 4}
	for i, w := range wantOrder {
		if hits[i].Doc != w {
			t.Fatalf("order = %v, want %v", hits, wantOrder)
		}
	}
}

func TestTopKTruncation(t *testing.T) {
	ix := corpus()
	hits, err := ix.Search("quick", Options{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("TopK not applied: %d hits", len(hits))
	}
}

func TestSearchValidation(t *testing.T) {
	ix := corpus()
	if _, err := ix.Search("", Options{}); !errors.Is(err, ErrBadQuery) {
		t.Fatal("empty query accepted")
	}
	if _, err := ix.Search("...", Options{}); !errors.Is(err, ErrBadQuery) {
		t.Fatal("punctuation-only query accepted")
	}
	if _, err := ix.Search("x", Options{TopK: -1}); !errors.Is(err, ErrBadQuery) {
		t.Fatal("negative TopK accepted")
	}
	if _, err := ix.Search("x", Options{Authority: []float64{1}}); !errors.Is(err, ErrBadQuery) {
		t.Fatal("short authority accepted")
	}
	if _, err := ix.Search("x", Options{Authority: make([]float64, 5), AuthorityWeight: 2}); !errors.Is(err, ErrBadQuery) {
		t.Fatal("weight > 1 accepted")
	}
	if _, err := ix.Search("x", Options{Mode: Mode(99)}); !errors.Is(err, ErrBadQuery) {
		t.Fatal("unknown mode accepted")
	}
}

func TestUnknownTermsReturnNothing(t *testing.T) {
	ix := corpus()
	hits, err := ix.Search("zeppelin", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hits != nil {
		t.Fatalf("hits for unknown term: %v", hits)
	}
}

func TestIncrementalAddInvalidatesNorms(t *testing.T) {
	ix := NewIndex()
	ix.Add("alpha beta")
	h1, err := ix.Search("alpha", Options{})
	if err != nil || len(h1) != 1 {
		t.Fatalf("first search: %v %v", h1, err)
	}
	ix.Add("alpha alpha alpha")
	h2, err := ix.Search("alpha", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(h2) != 2 {
		t.Fatalf("after incremental add: %d hits", len(h2))
	}
}

func TestCosineScoreBounds(t *testing.T) {
	ix := corpus()
	hits, err := ix.Search("quick brown fox", Options{TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.Relevance < -1e-12 || h.Relevance > 1+1e-12 {
			t.Fatalf("cosine out of [0,1]: %g", h.Relevance)
		}
	}
	// Doc 0 contains all three terms: it must be the top relevance hit.
	if hits[0].Doc != 0 {
		t.Fatalf("top hit = %d, want 0", hits[0].Doc)
	}
	if math.IsNaN(hits[0].Score) {
		t.Fatal("NaN score")
	}
}

func BenchmarkSearchVector(b *testing.B) {
	ix := NewIndex()
	for i := 0; i < 5000; i++ {
		ix.Add("alpha beta gamma delta epsilon zeta eta theta")
	}
	ix.Add("alpha needle")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search("alpha needle", Options{TopK: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: tokenization is idempotent under re-joining, lowercase, and
// free of separator characters.
func TestQuickTokenizeInvariants(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok == "" {
				return false
			}
			if strings.ToLower(tok) != tok {
				return false
			}
			// Re-tokenizing a token yields exactly itself.
			again := Tokenize(tok)
			if len(again) != 1 || again[0] != tok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
