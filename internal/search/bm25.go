package search

import "math"

// BM25 parameters (standard Robertson–Sparck-Jones defaults). The paper's
// related-work section traces its quality metric to the probabilistic
// retrieval model [7, 20]; BM25 is that model's practical scoring
// function, included here as the stronger content-relevance baseline next
// to the boolean and vector-space models.
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// bm25Scores computes Okapi BM25 over the query terms.
func (ix *Index) bm25Scores(terms []string) map[int32]float64 {
	n := len(ix.docLen)
	if n == 0 {
		return nil
	}
	totalLen := 0
	for _, l := range ix.docLen {
		totalLen += l
	}
	avgLen := float64(totalLen) / float64(n)
	if avgLen == 0 {
		return nil
	}
	// Sorted term order keeps the per-document float accumulation below
	// bitwise reproducible; map order would perturb near-tie scores.
	qCounts := queryCounts(terms)
	scores := make(map[int32]float64)
	for _, t := range sortedKeys(qCounts) {
		plist := ix.postings[t]
		if len(plist) == 0 {
			continue
		}
		df := float64(len(plist))
		// BM25 idf with the +1 smoothing that keeps it positive.
		idf := math.Log(1 + (float64(n)-df+0.5)/(df+0.5))
		for _, p := range plist {
			tf := float64(p.tf)
			dl := float64(ix.docLen[p.doc])
			denom := tf + bm25K1*(1-bm25B+bm25B*dl/avgLen)
			scores[p.doc] += idf * tf * (bm25K1 + 1) / denom
		}
	}
	return scores
}
