package search

// BM25 parameters (standard Robertson–Sparck-Jones defaults). The paper's
// related-work section traces its quality metric to the probabilistic
// retrieval model [7, 20]; BM25 is that model's practical scoring
// function, included here as the stronger content-relevance baseline next
// to the boolean and vector-space models. The scoring kernel itself lives
// in frozen.go (bm25Kernel), operating over the frozen posting layout
// with the idf and length-normalisation terms precomputed per term and
// per document at freeze time.
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)
