package search

import (
	"math"
	"sync"
)

// frozen is the read-only, CSR-style view of the index that queries are
// served from: all postings live in one backing doc-id slice and one
// term-frequency slice, bucketed per term through start offsets, with the
// per-term idf values (tf-idf and BM25 forms), the per-document tf-idf L2
// norms and the per-document BM25 length normalisation precomputed at
// freeze time. The layout mirrors graph.CSR and the PageRank kernels of
// PR 1: pointer-free flat slices the scoring loops stream through.
//
// A frozen view is immutable once built; any number of Search calls may
// share it concurrently. Mutating the index (Add) invalidates the view
// and the next Search rebuilds it.
type frozen struct {
	termID map[string]int32
	start  []int32   // postings of term t occupy docs[start[t]:start[t+1]]
	docs   []int32   // doc ids, ascending within each term bucket
	tfs    []float32 // term frequency per posting (exact: tf is a small integer)

	idf     []float64 // smoothed tf-idf inverse document frequency, per term
	bm25IDF []float64 // BM25 inverse document frequency, per term
	norm    []float64 // tf-idf L2 norm, per document
	bm25Len []float64 // k1·(1-b+b·|d|/avgdl), the BM25 denominator tail, per document

	numDocs int
	pool    sync.Pool // *scratch
}

// scratch holds one query's dense accumulators, recycled through the
// frozen view's pool so concurrent searches never share state and steady
// traffic allocates nothing per query. Only the entries listed in touched
// are dirty; release zeroes exactly those.
type scratch struct {
	score   []float64 // per-doc relevance accumulator
	count   []int32   // per-doc matched-term count; doubles as the touched marker
	touched []int32   // docs hit by the current query, in first-touch order
	result  []int32   // filtered doc set when it differs from touched (boolean AND)
}

// frozen returns the current view, building it on first use after a
// mutation. The double-checked build means concurrent Search calls on an
// unchanging index share one view without locking on the hot path;
// mutating and searching concurrently is not supported (and never was).
func (ix *Index) frozen() *frozen {
	if f := ix.fz.Load(); f != nil {
		return f
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if f := ix.fz.Load(); f != nil {
		return f
	}
	f := ix.freeze()
	ix.fz.Store(f)
	return f
}

// freeze flattens the postings map into the CSR layout. Terms are laid
// out in sorted order and the norms accumulated term by term in that
// order — the exact summation order the incremental map-based scorer
// used — so every precomputed float is bitwise identical to what the
// historical ensureNorms produced. Postings within a term are already in
// ascending doc order because Add assigns ids sequentially and touches
// each term at most once per document.
func (ix *Index) freeze() *frozen {
	vocab := ix.sortedVocab()
	n := len(ix.docLen)
	total := 0
	for _, t := range vocab {
		total += len(ix.postings[t])
	}
	f := &frozen{
		termID:  make(map[string]int32, len(vocab)),
		start:   make([]int32, len(vocab)+1),
		docs:    make([]int32, 0, total),
		tfs:     make([]float32, 0, total),
		idf:     make([]float64, len(vocab)),
		bm25IDF: make([]float64, len(vocab)),
		norm:    make([]float64, n),
		bm25Len: make([]float64, n),
		numDocs: n,
	}
	totalLen := 0
	for _, l := range ix.docLen {
		totalLen += l
	}
	for i, t := range vocab {
		f.termID[t] = int32(i)
		plist := ix.postings[t]
		df := float64(len(plist))
		w := math.Log(1 + float64(n)/df)
		f.idf[i] = w
		f.bm25IDF[i] = math.Log(1 + (float64(n)-df+0.5)/(df+0.5))
		for _, p := range plist {
			f.docs = append(f.docs, p.doc)
			f.tfs = append(f.tfs, float32(p.tf))
			x := float64(p.tf) * w
			f.norm[p.doc] += x * x
		}
		f.start[i+1] = int32(len(f.docs))
	}
	for i := range f.norm {
		f.norm[i] = math.Sqrt(f.norm[i])
	}
	if n > 0 {
		avgLen := float64(totalLen) / float64(n)
		if avgLen > 0 {
			for d := 0; d < n; d++ {
				f.bm25Len[d] = bm25K1 * (1 - bm25B + bm25B*float64(ix.docLen[d])/avgLen)
			}
		}
	}
	f.pool.New = func() any {
		return &scratch{score: make([]float64, n), count: make([]int32, n)}
	}
	return f
}

// getScratch leases a scratch sized for this view's document count.
func (f *frozen) getScratch() *scratch {
	return f.pool.Get().(*scratch)
}

// release zeroes only the entries the query touched and returns the
// scratch to the pool, keeping the per-query reset O(matched docs)
// instead of O(corpus).
func (f *frozen) release(sc *scratch) {
	for _, d := range sc.touched {
		sc.score[d] = 0
		sc.count[d] = 0
	}
	sc.touched = sc.touched[:0]
	sc.result = sc.result[:0]
	f.pool.Put(sc)
}

// touch marks doc d matched, recording it on first contact.
func (sc *scratch) touch(d int32) {
	if sc.count[d] == 0 {
		sc.touched = append(sc.touched, d)
	}
	sc.count[d]++
}

// vectorKernel computes cosine(query, doc) over tf-idf weights into the
// scratch and returns the matched doc set. Query terms are visited in
// sorted order so each float accumulation happens in exactly the order
// the historical map-based scorer used: the resulting scores are bitwise
// identical to it (pinned by TestSearchMatchesReference).
func (f *frozen) vectorKernel(terms []string, sc *scratch) []int32 {
	qCounts := queryCounts(terms)
	qNorm := 0.0
	for _, t := range sortedKeys(qCounts) {
		id, ok := f.termID[t]
		if !ok {
			continue // absent term: idf 0, contributes nothing
		}
		w := f.idf[id]
		qw := float64(qCounts[t]) * w
		qNorm += qw * qw
		for i := f.start[id]; i < f.start[id+1]; i++ {
			d := f.docs[i]
			sc.touch(d)
			sc.score[d] += qw * float64(f.tfs[i]) * w
		}
	}
	if qNorm == 0 {
		// No query term appears in the corpus: empty result. (Any
		// present term has df >= 1, hence idf > 0 and qNorm > 0.)
		return nil
	}
	qn := math.Sqrt(qNorm)
	for _, d := range sc.touched {
		if f.norm[d] > 0 {
			sc.score[d] /= qn * f.norm[d]
		}
	}
	return sc.touched
}

// bm25Kernel computes Okapi BM25 into the scratch and returns the
// matched doc set. The per-term idf and per-doc length normalisation are
// precomputed at freeze time from the same expressions the incremental
// scorer evaluated per query, so the sums are bitwise identical.
func (f *frozen) bm25Kernel(terms []string, sc *scratch) []int32 {
	qCounts := queryCounts(terms)
	for _, t := range sortedKeys(qCounts) {
		id, ok := f.termID[t]
		if !ok {
			continue
		}
		idf := f.bm25IDF[id]
		for i := f.start[id]; i < f.start[id+1]; i++ {
			d := f.docs[i]
			sc.touch(d)
			tf := float64(f.tfs[i])
			denom := tf + f.bm25Len[d]
			sc.score[d] += idf * tf * (bm25K1 + 1) / denom
		}
	}
	return sc.touched
}

// booleanKernel retrieves by term containment; the score is the number
// of distinct query terms matched (so OR mode still ranks fuller matches
// first). In AND mode a document must match every unique query term —
// including terms absent from the vocabulary, which therefore empty the
// result, matching the historical scorer.
func (f *frozen) booleanKernel(terms []string, requireAll bool, sc *scratch) []int32 {
	qCounts := queryCounts(terms)
	need := int32(len(qCounts))
	for _, t := range sortedKeys(qCounts) {
		id, ok := f.termID[t]
		if !ok {
			continue
		}
		for i := f.start[id]; i < f.start[id+1]; i++ {
			sc.touch(f.docs[i])
		}
	}
	if !requireAll {
		for _, d := range sc.touched {
			sc.score[d] = float64(sc.count[d])
		}
		return sc.touched
	}
	res := sc.result[:0]
	for _, d := range sc.touched {
		if sc.count[d] >= need {
			sc.score[d] = float64(sc.count[d])
			res = append(res, d)
		}
	}
	sc.result = res
	return res
}
