package search

import "testing"

func TestBM25BasicRanking(t *testing.T) {
	ix := corpus()
	hits, err := ix.Search("quick", Options{Mode: ModeBM25, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 4 {
		t.Fatalf("hits = %d, want 4", len(hits))
	}
	// Doc 4 repeats "quick" and is short: top BM25 score too.
	if hits[0].Doc != 4 {
		t.Fatalf("top hit = %d, want 4", hits[0].Doc)
	}
	for _, h := range hits {
		if h.Relevance <= 0 {
			t.Fatalf("non-positive BM25 score: %+v", h)
		}
	}
}

func TestBM25IDFWeighting(t *testing.T) {
	ix := corpus()
	// "databases" is rarer than "go": its only document wins.
	hits, err := ix.Search("go databases", Options{Mode: ModeBM25, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if hits[0].Doc != 3 {
		t.Fatalf("top hit = %d, want 3", hits[0].Doc)
	}
}

func TestBM25LengthNormalization(t *testing.T) {
	ix := NewIndex()
	short := ix.Add("needle haystack")
	long := ix.Add("needle " + repeatWords("filler", 200))
	hits, err := ix.Search("needle", Options{Mode: ModeBM25, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[0].Doc != short {
		t.Fatalf("short doc should outrank long: %v (short=%d long=%d)", hits, short, long)
	}
}

func TestBM25UnknownTermAndEmptyIndex(t *testing.T) {
	ix := corpus()
	hits, err := ix.Search("zeppelin", Options{Mode: ModeBM25})
	if err != nil || hits != nil {
		t.Fatalf("unknown term -> (%v, %v)", hits, err)
	}
	empty := NewIndex()
	if hits, err := empty.Search("x", Options{Mode: ModeBM25}); err != nil || hits != nil {
		t.Fatalf("empty index scored: (%v, %v)", hits, err)
	}
}

func TestBM25WithAuthority(t *testing.T) {
	ix := corpus()
	auth := []float64{0, 0, 9, 0, 0}
	hits, err := ix.Search("quick", Options{Mode: ModeBM25, TopK: 5, Authority: auth, AuthorityWeight: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if hits[0].Doc != 2 {
		t.Fatalf("authority did not lift doc 2: %v", hits)
	}
}

func repeatWords(w string, n int) string {
	out := make([]byte, 0, (len(w)+1)*n)
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, w...)
	}
	return string(out)
}
