package search

import (
	"errors"
	"testing"
)

// TestTopKValidationUniformAcrossModes pins the Options contract on every
// retrieval path: negative k rejected, zero k defaulted, k beyond the
// corpus clamped — identically for vector, boolean and BM25 scoring.
func TestTopKValidationUniformAcrossModes(t *testing.T) {
	ix := corpus() // 5 documents; "quick" matches 4, "quick go" AND-matches 2
	modes := []struct {
		name  string
		mode  Mode
		query string
		match int // docs the query matches in this mode
	}{
		{"vector", ModeVector, "quick", 4},
		{"boolean-and", ModeBooleanAnd, "quick go", 2},
		{"boolean-or", ModeBooleanOr, "quick go", 4},
		{"bm25", ModeBM25, "quick", 4},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			for _, bad := range []int{-1, -100} {
				if _, err := ix.Search(m.query, Options{Mode: m.mode, TopK: bad}); !errors.Is(err, ErrBadQuery) {
					t.Fatalf("TopK=%d accepted", bad)
				}
			}
			// Zero defaults to 10, clamped to the 5-doc corpus: every
			// match comes back, no error.
			hits, err := ix.Search(m.query, Options{Mode: m.mode})
			if err != nil {
				t.Fatal(err)
			}
			if len(hits) != m.match {
				t.Fatalf("TopK=0: %d hits, want %d", len(hits), m.match)
			}
			// Requests far beyond NumDocs are clamped, not rejected.
			for _, k := range []int{ix.NumDocs(), ix.NumDocs() + 1, 1 << 20} {
				hits, err := ix.Search(m.query, Options{Mode: m.mode, TopK: k})
				if err != nil {
					t.Fatalf("TopK=%d: %v", k, err)
				}
				if len(hits) != m.match {
					t.Fatalf("TopK=%d: %d hits, want %d", k, len(hits), m.match)
				}
			}
			// Truncation below the match count still works.
			hits, err = ix.Search(m.query, Options{Mode: m.mode, TopK: 1})
			if err != nil || len(hits) != 1 {
				t.Fatalf("TopK=1: %v, %v", hits, err)
			}
		})
	}
}

// TestTopKOnEmptyIndex: with nothing indexed there is nothing to clamp
// against; any positive k is accepted and the result is empty.
func TestTopKOnEmptyIndex(t *testing.T) {
	ix := NewIndex()
	for _, mode := range []Mode{ModeVector, ModeBooleanAnd, ModeBooleanOr, ModeBM25} {
		hits, err := ix.Search("anything", Options{Mode: mode, TopK: 7})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if hits != nil {
			t.Fatalf("mode %d: hits on empty index: %v", mode, hits)
		}
	}
}
