package search

import "sort"

// topK selects the best k hits under the ranking order — score
// descending, then doc id ascending — without sorting the full candidate
// set. It is a bounded min-heap whose root is the worst hit retained, so
// once the heap is full each losing candidate is rejected with a single
// comparison and each winner costs O(log k). Because the comparator is a
// total order (doc ids are unique), the selected set and its final order
// are identical to sorting every candidate and truncating — the contract
// TestSearchMatchesReference pins bitwise.
type topK struct {
	k    int
	hits []Hit
}

func newTopK(k int) *topK {
	return &topK{k: k, hits: make([]Hit, 0, k)}
}

// ranksAfter reports whether a ranks strictly after b: lower score, or
// equal score and higher doc id. Two strict comparisons express the exact
// tie-break without a float equality test.
func ranksAfter(a, b Hit) bool {
	if a.Score < b.Score {
		return true
	}
	if b.Score < a.Score {
		return false
	}
	return a.Doc > b.Doc
}

// offer considers one candidate hit.
func (t *topK) offer(h Hit) {
	if len(t.hits) < t.k {
		t.hits = append(t.hits, h)
		i := len(t.hits) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !ranksAfter(t.hits[i], t.hits[p]) {
				break
			}
			t.hits[i], t.hits[p] = t.hits[p], t.hits[i]
			i = p
		}
		return
	}
	if !ranksAfter(t.hits[0], h) {
		return // h is no better than the worst retained hit
	}
	t.hits[0] = h
	i, n := 0, len(t.hits)
	for {
		worst := i
		if l := 2*i + 1; l < n && ranksAfter(t.hits[l], t.hits[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < n && ranksAfter(t.hits[r], t.hits[worst]) {
			worst = r
		}
		if worst == i {
			break
		}
		t.hits[i], t.hits[worst] = t.hits[worst], t.hits[i]
		i = worst
	}
}

// ranked returns the retained hits in final ranking order.
func (t *topK) ranked() []Hit {
	sort.Slice(t.hits, func(i, j int) bool { return ranksAfter(t.hits[j], t.hits[i]) })
	return t.hits
}
