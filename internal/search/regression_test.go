package search

import (
	"fmt"
	"math"
	"testing"
)

// hitsBitwiseEqual fails the test unless the two hit lists agree exactly:
// same length, same doc ids in the same order, and bitwise-identical
// Score and Relevance floats.
func hitsBitwiseEqual(t *testing.T, label string, got, want []Hit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d hits, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].Doc != want[i].Doc ||
			math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) ||
			math.Float64bits(got[i].Relevance) != math.Float64bits(want[i].Relevance) {
			t.Fatalf("%s: hit %d = %+v, want bitwise %+v", label, i, got[i], want[i])
		}
	}
}

// TestSearchMatchesReference is the pin for the flat-kernel rewrite: for
// every retrieval mode, across truncating and non-truncating TopK values
// and with and without authority blending, the frozen-postings path must
// return exactly the hits of the historical map-accumulator scorer —
// same docs, same order, same Float64bits.
func TestSearchMatchesReference(t *testing.T) {
	docs := synthDocs(150)
	ix := buildIndex(docs)
	auth := make([]float64, len(docs))
	for i := range auth {
		auth[i] = 1 / float64(i%23+1)
	}
	queries := []string{
		"term1",
		"shared",
		"term1 term2 term3 term5 term8 term13 term21 term34",
		"shared common everywhere unique3 term7",
		"term1 term1 term1 shared", // repeated query term
		"term2 zzz-absent",         // one term missing from the vocabulary
		"zzz-absent qqq-absent",    // fully unknown query
		"unique5 unique6 unique7",  // singleton postings
	}
	modes := []struct {
		name string
		mode Mode
	}{
		{"vector", ModeVector},
		{"boolean-and", ModeBooleanAnd},
		{"boolean-or", ModeBooleanOr},
		{"bm25", ModeBM25},
	}
	type variant struct {
		name string
		opts Options
	}
	variants := []variant{
		{"k1", Options{TopK: 1}},
		{"k10", Options{TopK: 10}},
		{"k-all", Options{TopK: len(docs)}},
		{"k-overshoot", Options{TopK: 10 * len(docs)}},
		{"auth", Options{TopK: 20, Authority: auth}},
		{"auth-w1", Options{TopK: 20, Authority: auth, AuthorityWeight: 1}},
	}
	for _, m := range modes {
		for _, q := range queries {
			for _, v := range variants {
				opts := v.opts
				opts.Mode = m.mode
				label := fmt.Sprintf("%s/%s/%q", m.name, v.name, q)
				want, werr := ix.searchReference(q, opts)
				got, gerr := ix.Search(q, opts)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("%s: err %v, reference err %v", label, gerr, werr)
				}
				hitsBitwiseEqual(t, label, got, want)
			}
		}
	}
}

// TestSearchMatchesReferenceAfterIncrementalAdd pins parity across the
// freeze/invalidate cycle: search, add more documents (invalidating the
// frozen view), and search again.
func TestSearchMatchesReferenceAfterIncrementalAdd(t *testing.T) {
	docs := synthDocs(60)
	ix := buildIndex(docs)
	q := "shared common term3 term8"
	for round := 0; round < 3; round++ {
		for _, mode := range []Mode{ModeVector, ModeBM25, ModeBooleanOr} {
			opts := Options{Mode: mode, TopK: 15}
			want, err := ix.searchReference(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ix.Search(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			hitsBitwiseEqual(t, fmt.Sprintf("round %d mode %d", round, mode), got, want)
		}
		ix.AddAll(synthDocs(10)) // duplicates existing docs: heavier postings
	}
}

// TestFrozenMatchesReferenceNorms pins the freeze-time precomputation
// against the historical lazy norm computation, bit for bit.
func TestFrozenMatchesReferenceNorms(t *testing.T) {
	ix := buildIndex(synthDocs(90))
	want := ix.normsReference()
	f := ix.frozen()
	if len(f.norm) != len(want) {
		t.Fatalf("frozen has %d norms, want %d", len(f.norm), len(want))
	}
	for i := range want {
		if math.Float64bits(f.norm[i]) != math.Float64bits(want[i]) {
			t.Fatalf("norm[%d] = %x, want bitwise %x", i, f.norm[i], want[i])
		}
	}
	for i := range f.start[:len(f.start)-1] {
		if f.start[i] > f.start[i+1] {
			t.Fatalf("start offsets not monotone at term %d", i)
		}
		for j := f.start[i] + 1; j < f.start[i+1]; j++ {
			if f.docs[j-1] >= f.docs[j] {
				t.Fatalf("postings of term %d not in ascending doc order", i)
			}
		}
	}
}

// TestTopKSelection exercises the bounded heap directly against a full
// sort, over adversarial score patterns (many exact ties).
func TestTopKSelection(t *testing.T) {
	hits := make([]Hit, 200)
	for i := range hits {
		hits[i] = Hit{Doc: i, Score: float64(i % 7), Relevance: float64(i)}
	}
	for _, k := range []int{1, 2, 7, 50, 200} {
		top := newTopK(k)
		for _, h := range hits {
			top.offer(h)
		}
		got := top.ranked()
		if len(got) != k {
			t.Fatalf("k=%d: %d hits", k, len(got))
		}
		// Expected: scores descending, ties by ascending doc.
		for i := 1; i < len(got); i++ {
			if ranksAfter(got[i-1], got[i]) {
				t.Fatalf("k=%d: hits %d and %d out of order: %+v %+v", k, i-1, i, got[i-1], got[i])
			}
		}
		// The worst retained hit must rank no worse than every rejected hit.
		last := got[len(got)-1]
		kept := make(map[int]bool, k)
		for _, h := range got {
			kept[h.Doc] = true
		}
		for _, h := range hits {
			if !kept[h.Doc] && ranksAfter(last, h) {
				t.Fatalf("k=%d: rejected %+v ranks before retained %+v", k, h, last)
			}
		}
	}
}
