package search

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrBadShard reports an unusable sharding configuration.
var ErrBadShard = errors.New("search: bad shard config")

// ShardedIndex is the horizontally partitioned view of an Index: the
// frozen CSR posting layout split into K doc-shards, each searched in
// parallel by a worker pool and merged through the bounded top-k heap.
//
// Documents are assigned round-robin by doc id — global doc g lives in
// shard g%K at local id g/K — so the partition is a pure function of
// (NumDocs, K) with no data movement beyond slicing the posting lists.
// Every shard shares the corpus-global statistics (term ids, idf tables)
// and carries private copies of its documents' norms, so each shard
// kernel computes exactly the floats the unsharded kernel would for the
// same documents: scatter-gather results are bitwise identical to
// Index.Search at every shard count and worker count, the contract
// TestShardedParity pins.
//
// A ShardedIndex is an immutable snapshot of the index at Shard time; it
// is safe for unlimited concurrent SearchContext calls. Adding documents
// to the parent Index afterwards does not change it — re-shard to pick
// the additions up.
type ShardedIndex struct {
	f       *frozen   // corpus-global layout: doc count, shared stats
	parts   []*frozen // per-shard posting subsets with local doc ids
	workers int
}

// Shard partitions the index into the given number of doc-shards,
// freezing it first if needed. shards must be >= 1 and is clamped to the
// document count (a shard with no documents could never affect a
// result); workers sizes the search-time fan-out pool, 0 meaning
// GOMAXPROCS, negative rejected.
func (ix *Index) Shard(shards, workers int) (*ShardedIndex, error) {
	if shards < 1 {
		return nil, fmt.Errorf("%w: shards=%d", ErrBadShard, shards)
	}
	if workers < 0 {
		return nil, fmt.Errorf("%w: workers=%d", ErrBadShard, workers)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n := ix.NumDocs(); shards > n {
		shards = n
		if shards < 1 {
			shards = 1
		}
	}
	f := ix.frozen()
	return &ShardedIndex{f: f, parts: partitionFrozen(f, shards), workers: workers}, nil
}

// NumDocs returns the corpus-wide document count.
func (si *ShardedIndex) NumDocs() int { return si.f.numDocs }

// NumShards returns the number of doc-shards after clamping.
func (si *ShardedIndex) NumShards() int { return len(si.parts) }

// Workers returns the resolved fan-out pool size.
func (si *ShardedIndex) Workers() int { return si.workers }

// partitionFrozen splits the global posting layout into k per-shard
// layouts. Shard s reuses the global term-id map and idf tables (query
// statistics are corpus-wide by definition) and receives verbatim copies
// of its documents' precomputed norms, re-indexed to local ids. Postings
// are copied term by term in global term order, so within each shard
// bucket they stay in ascending local-doc order exactly as freeze laid
// them out.
func partitionFrozen(f *frozen, k int) []*frozen {
	nTerms := len(f.start) - 1
	sizes := make([]int, k)    // documents per shard
	postings := make([]int, k) // postings per shard
	for d := 0; d < f.numDocs; d++ {
		sizes[d%k]++
	}
	for _, d := range f.docs {
		postings[int(d)%k]++
	}
	parts := make([]*frozen, k)
	for s := 0; s < k; s++ {
		n := sizes[s]
		p := &frozen{
			termID:  f.termID,
			start:   make([]int32, nTerms+1),
			docs:    make([]int32, 0, postings[s]),
			tfs:     make([]float32, 0, postings[s]),
			idf:     f.idf,
			bm25IDF: f.bm25IDF,
			norm:    make([]float64, n),
			bm25Len: make([]float64, n),
			numDocs: n,
		}
		p.pool.New = func() any {
			return &scratch{score: make([]float64, n), count: make([]int32, n)}
		}
		parts[s] = p
	}
	for d := 0; d < f.numDocs; d++ {
		p := parts[d%k]
		p.norm[d/k] = f.norm[d]
		p.bm25Len[d/k] = f.bm25Len[d]
	}
	for t := 0; t < nTerms; t++ {
		for i := f.start[t]; i < f.start[t+1]; i++ {
			d := int(f.docs[i])
			p := parts[d%k]
			p.docs = append(p.docs, int32(d/k))
			p.tfs = append(p.tfs, f.tfs[i])
		}
		for s := 0; s < k; s++ {
			parts[s].start[t+1] = int32(len(parts[s].docs))
		}
	}
	return parts
}

// shardResult is one shard's scatter-phase output: the leased scratch
// holding its relevance scores, the matched local doc set, and the
// shard-local maxima feeding the global normalisation.
type shardResult struct {
	sc      *scratch
	docs    []int32
	maxRel  float64
	maxAuth float64
}

// Search retrieves and ranks documents across every shard. It is
// SearchContext without a cancellation point.
func (si *ShardedIndex) Search(query string, opts Options) ([]Hit, error) {
	return si.SearchContext(context.Background(), query, opts)
}

// SearchContext runs the scatter-gather query: every shard scores its
// posting subset in parallel (scatter), the shard maxima combine into
// the corpus-global normalisers — max is an exact float reduction, so
// the combined values are bit-identical to a corpus-wide pass — then
// each shard blends and selects its local top k (gather), and the K
// partial lists merge through one bounded heap. Because the ranking
// comparator is a total order, the merged list is exactly the unsharded
// result.
//
// ctx cancellation (a client disconnect, a server shutdown) stops the
// fan-out between shards: workers finish the shard kernel they are in,
// skip the rest, and SearchContext returns ctx.Err().
func (si *ShardedIndex) SearchContext(ctx context.Context, query string, opts Options) ([]Hit, error) {
	if err := opts.fill(si.f.numDocs); err != nil {
		return nil, err
	}
	terms := Tokenize(query)
	if len(terms) == 0 {
		return nil, fmt.Errorf("%w: empty query", ErrBadQuery)
	}
	if opts.Mode > ModeBM25 {
		return nil, fmt.Errorf("%w: unknown mode %d", ErrBadQuery, opts.Mode)
	}
	k := len(si.parts)
	results := make([]shardResult, k)
	defer func() {
		for s := range results {
			if results[s].sc != nil {
				si.parts[s].release(results[s].sc)
			}
		}
	}()

	// Scatter: run the scoring kernel on each shard's posting subset and
	// reduce the shard-local maxima.
	err := si.fanOut(ctx, func(s int) {
		p := si.parts[s]
		sc := p.getScratch()
		results[s].sc = sc
		var docs []int32
		switch opts.Mode {
		case ModeVector:
			docs = p.vectorKernel(terms, sc)
		case ModeBooleanAnd:
			docs = p.booleanKernel(terms, true, sc)
		case ModeBooleanOr:
			docs = p.booleanKernel(terms, false, sc)
		case ModeBM25:
			docs = p.bm25Kernel(terms, sc)
		}
		results[s].docs = docs
		for _, d := range docs {
			if sc.score[d] > results[s].maxRel {
				results[s].maxRel = sc.score[d]
			}
		}
		if opts.Authority != nil {
			for _, d := range docs {
				if a := opts.Authority[int(d)*k+s]; a > results[s].maxAuth {
					results[s].maxAuth = a
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}

	var maxRel, maxAuth float64
	matched := 0
	for s := range results {
		matched += len(results[s].docs)
		if results[s].maxRel > maxRel {
			maxRel = results[s].maxRel
		}
		if results[s].maxAuth > maxAuth {
			maxAuth = results[s].maxAuth
		}
	}
	if matched == 0 {
		return nil, nil
	}

	// Gather: blend each shard's matches against the global maxima and
	// keep its local top k — a shard can contribute at most k hits to the
	// final list, so merging the partial lists loses nothing.
	tops := make([][]Hit, k)
	err = si.fanOut(ctx, func(s int) {
		sc := results[s].sc
		top := newTopK(opts.TopK)
		for _, d := range results[s].docs {
			top.offer(blendHit(int(d)*k+s, sc.score[d], maxRel, maxAuth, opts))
		}
		tops[s] = top.ranked()
	})
	if err != nil {
		return nil, err
	}

	merged := newTopK(opts.TopK)
	for _, hits := range tops {
		for _, h := range hits {
			merged.offer(h)
		}
	}
	return merged.ranked(), nil
}

// fanOut applies fn to every shard index using at most si.workers
// goroutines pulling shards off a shared cursor. With an effective pool
// of one it runs inline, so single-shard serving pays no scheduling
// cost. fn calls for distinct shards never overlap on shared state (each
// writes only its own slot), and a ctx error stops workers between
// shards.
func (si *ShardedIndex) fanOut(ctx context.Context, fn func(s int)) error {
	nw := si.workers
	if nw > len(si.parts) {
		nw = len(si.parts)
	}
	if nw <= 1 {
		for s := range si.parts {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(s)
		}
		return nil
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				s := int(cursor.Add(1)) - 1
				if s >= len(si.parts) {
					return
				}
				fn(s)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
