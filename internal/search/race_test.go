package search

import (
	"math"
	"runtime"
	"sync"
	"testing"
)

// TestConcurrentSearch hammers one index from many goroutines — including
// the very first queries, which race to build the frozen view — and
// checks every result against the serially computed answer, bit for bit.
// Run under -race this pins the concurrency contract the serving path
// relies on: a frozen index is safe for unlimited concurrent Search.
func TestConcurrentSearch(t *testing.T) {
	docs := synthDocs(150)
	ix := buildIndex(docs)
	auth := make([]float64, len(docs))
	for i := range auth {
		auth[i] = 1 / float64(i%13+1)
	}
	type q struct {
		query string
		opts  Options
	}
	queries := []q{
		{"shared common term3 term8", Options{Mode: ModeVector, TopK: 20}},
		{"term1 term5 term8", Options{Mode: ModeBM25, TopK: 10, Authority: auth}},
		{"shared everywhere", Options{Mode: ModeBooleanAnd, TopK: 30}},
		{"term2 unique7 zzz", Options{Mode: ModeBooleanOr, TopK: 15}},
		{"unique3", Options{Mode: ModeVector, TopK: 5, Authority: auth, AuthorityWeight: 1}},
	}
	// Serial ground truth from an identical, separately frozen index, so
	// the index under test is first touched concurrently.
	ref := buildIndex(docs)
	want := make([][]Hit, len(queries))
	for i, qu := range queries {
		hits, err := ref.Search(qu.query, qu.opts)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = hits
	}

	workers := 4 * runtime.GOMAXPROCS(0)
	const iters = 30
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				qi := (w + it) % len(queries)
				got, err := ix.Search(queries[qi].query, queries[qi].opts)
				if err != nil {
					errs <- err
					return
				}
				exp := want[qi]
				if len(got) != len(exp) {
					t.Errorf("worker %d: query %d: %d hits, want %d", w, qi, len(got), len(exp))
					return
				}
				for i := range got {
					if got[i].Doc != exp[i].Doc ||
						math.Float64bits(got[i].Score) != math.Float64bits(exp[i].Score) ||
						math.Float64bits(got[i].Relevance) != math.Float64bits(exp[i].Relevance) {
						t.Errorf("worker %d: query %d hit %d = %+v, want %+v", w, qi, i, got[i], exp[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
