package experiments

import (
	"fmt"
	"sort"

	"pagequality/internal/quality"
	"pagequality/internal/snapshot"
	"pagequality/internal/webcorpus"
)

// RisingStarsResult quantifies the paper's motivating claim: the quality
// estimator gives young high-quality pages ("rising stars") a better rank
// than raw PageRank does, shortening the time to get noticed.
type RisingStarsResult struct {
	// Stars is the number of rising-star pages: born within MaxAgeWeeks
	// before the first crawl, with true quality in the corpus' top
	// quartile.
	Stars int
	// MeanPercentilePR / MeanPercentileQ are the stars' mean rank
	// percentiles (1 = ranked above every other page) at the last
	// estimation crawl, under current PageRank and under the quality
	// estimate.
	MeanPercentilePR float64
	MeanPercentileQ  float64
	// MeanPercentileFuture is the stars' mean percentile under the future
	// crawl's PageRank — where they end up once the Web catches on.
	MeanPercentileFuture float64
	// TopDecilePR / TopDecileQ count stars ranked in the top 10% under
	// each metric at estimation time.
	TopDecilePR int
	TopDecileQ  int
}

// RunRisingStars runs the corpus + crawl pipeline and measures the
// ranking of young high-quality pages under both metrics.
func RunRisingStars(cfg HeadlineConfig, maxAgeWeeks float64) (*RisingStarsResult, error) {
	if maxAgeWeeks <= 0 {
		return nil, fmt.Errorf("experiments: maxAgeWeeks=%g must be positive", maxAgeWeeks)
	}
	cfg.fill()
	sim, err := webcorpus.New(cfg.Corpus)
	if err != nil {
		return nil, err
	}
	snaps, err := sim.RunSchedule(cfg.Schedule)
	if err != nil {
		return nil, err
	}
	al, err := snapshot.Align(snaps)
	if err != nil {
		return nil, err
	}
	est, ranks, err := quality.FromAligned(al, cfg.EstimationSnaps, cfg.PageRank, cfg.Estimator)
	if err != nil {
		return nil, err
	}
	truth, err := sim.TrueQualities(al.URLs)
	if err != nil {
		return nil, err
	}

	// Top-quartile quality threshold.
	sortedQ := append([]float64(nil), truth...)
	sort.Float64s(sortedQ)
	qThreshold := sortedQ[len(sortedQ)*3/4]

	// Identify the stars: young at t1 and top-quartile quality.
	var stars []int
	for i, url := range al.URLs {
		id, ok := sim.Graph().Lookup(url)
		if !ok {
			return nil, fmt.Errorf("experiments: %q vanished", url)
		}
		pg := sim.Graph().Page(id)
		if pg.Created > -maxAgeWeeks && pg.Quality >= qThreshold {
			stars = append(stars, i)
		}
	}
	if len(stars) == 0 {
		return nil, fmt.Errorf("experiments: no rising stars in this corpus (increase birth rate or age window)")
	}

	cur := ranks[cfg.EstimationSnaps-1]
	future := ranks[len(ranks)-1]
	res := &RisingStarsResult{Stars: len(stars)}
	prPct := percentiles(cur)
	qPct := percentiles(est.Q)
	fuPct := percentiles(future)
	for _, i := range stars {
		res.MeanPercentilePR += prPct[i]
		res.MeanPercentileQ += qPct[i]
		res.MeanPercentileFuture += fuPct[i]
		if prPct[i] >= 0.9 {
			res.TopDecilePR++
		}
		if qPct[i] >= 0.9 {
			res.TopDecileQ++
		}
	}
	n := float64(len(stars))
	res.MeanPercentilePR /= n
	res.MeanPercentileQ /= n
	res.MeanPercentileFuture /= n
	return res, nil
}

// percentiles converts scores into rank percentiles in [0,1]: 1 means the
// highest score (average rank over ties).
//
//pqlint:allow floateq tie groups are exactly-equal scores by definition
func percentiles(scores []float64) []float64 {
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		avg := (float64(i) + float64(j-1)) / 2
		for k := i; k < j; k++ {
			out[idx[k]] = avg / float64(n-1)
		}
		i = j
	}
	return out
}
