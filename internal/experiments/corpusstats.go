package experiments

import (
	"encoding/csv"
	"io"
	"sort"
	"strconv"
	"strings"

	"pagequality/internal/corpus"
	"pagequality/internal/pagestore"
)

// LabelStat summarizes one crawl label's archived documents.
type LabelStat struct {
	Label     string
	Docs      int
	Bytes     int64   // decompressed body bytes
	MeanBytes float64 // Bytes / Docs
	FirstWeek float64 // earliest FetchedAt under the label
	LastWeek  float64 // latest FetchedAt under the label
}

// ArchiveStats computes per-label document counts, body volume and
// fetch-time spans over a crawl archive in one corpus pass. Labels are
// the key prefix up to the first '/'; results are label-sorted, so the
// output is independent of worker count and segment layout.
func ArchiveStats(st *pagestore.Store, opts corpus.Options) ([]LabelStat, error) {
	type docStat struct {
		label string
		bytes int64
		week  float64
	}
	stats, err := corpus.Extract(st, func(d corpus.Doc) (docStat, bool) {
		label := d.Key
		if i := strings.IndexByte(label, '/'); i >= 0 {
			label = label[:i]
		}
		return docStat{label: label, bytes: int64(len(d.Body)), week: d.Meta.FetchedAt}, true
	}, opts)
	if err != nil {
		return nil, err
	}
	byLabel := map[string]*LabelStat{}
	for _, ds := range stats {
		ls := byLabel[ds.label]
		if ls == nil {
			ls = &LabelStat{Label: ds.label, FirstWeek: ds.week, LastWeek: ds.week}
			byLabel[ds.label] = ls
		}
		ls.Docs++
		ls.Bytes += ds.bytes
		if ds.week < ls.FirstWeek {
			ls.FirstWeek = ds.week
		}
		if ds.week > ls.LastWeek {
			ls.LastWeek = ds.week
		}
	}
	out := make([]LabelStat, 0, len(byLabel))
	for _, ls := range byLabel {
		ls.MeanBytes = float64(ls.Bytes) / float64(ls.Docs)
		out = append(out, *ls)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Label < out[b].Label })
	return out, nil
}

// WriteArchiveStatsCSV writes ArchiveStats results as CSV, one row per
// label.
func WriteArchiveStatsCSV(w io.Writer, stats []LabelStat) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"label", "docs", "bytes", "mean_bytes", "first_week", "last_week"}); err != nil {
		return err
	}
	for _, ls := range stats {
		row := []string{
			ls.Label,
			strconv.Itoa(ls.Docs),
			strconv.FormatInt(ls.Bytes, 10),
			formatF(ls.MeanBytes),
			formatF(ls.FirstWeek),
			formatF(ls.LastWeek),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
