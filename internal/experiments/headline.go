package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"pagequality/internal/metrics"
	"pagequality/internal/pagerank"
	"pagequality/internal/quality"
	"pagequality/internal/snapshot"
	"pagequality/internal/webcorpus"
)

// HeadlineConfig parameterises the Section-8 experiment: grow a corpus,
// crawl it on the Figure-4 schedule, estimate quality from the first three
// snapshots, evaluate against the fourth.
type HeadlineConfig struct {
	// Corpus configures the synthetic Web (defaults to
	// webcorpus.DefaultConfig).
	Corpus webcorpus.Config
	// Schedule is the crawl timetable (defaults to the paper's Figure 4).
	Schedule webcorpus.Schedule
	// EstimationSnaps is how many leading snapshots feed the estimator
	// (default 3, i.e. t1..t3); the last snapshot is the future reference.
	EstimationSnaps int
	// Estimator configures the quality estimator (defaults to the paper's
	// C = 0.1 and 5 % filter).
	Estimator quality.Config
	// PageRank configures the popularity computation (defaults to the
	// paper's variant with initial value 1).
	PageRank pagerank.Options
}

// DefaultHeadlineConfig mirrors the paper's experimental setup on the
// synthetic corpus. The corpus is aged so the crawl window sees pages in
// every life stage (long burn-in, steady births), and the estimator
// constants are tuned to this corpus the same way the paper tuned C to its
// crawl ("the value 0.1 showed the best result out of all values that we
// tested"): C = 1.0 absorbs the popularity→PageRank scale factor of the
// synthetic link graph, and MaxTrend = 0.3 is the §9.1 noise guard. Run
// AblationC to regenerate the sweep that picks these.
func DefaultHeadlineConfig() HeadlineConfig {
	corpus := webcorpus.DefaultConfig()
	corpus.BurnInWeeks = 40
	corpus.BirthRate = 30
	corpus.NoiseRate = 0.01
	corpus.ForgetRate = 0.01
	est := quality.DefaultConfig()
	est.C = 1.0
	est.MaxTrend = 0.3
	return HeadlineConfig{
		Corpus:          corpus,
		Schedule:        webcorpus.PaperSchedule(),
		EstimationSnaps: 3,
		Estimator:       est,
		PageRank:        pagerank.Options{Variant: pagerank.VariantPaper},
	}
}

// HeadlineResult carries the §8.2 headline numbers and the Figure-5
// histograms.
type HeadlineResult struct {
	// Corpus accounting (the paper reports 4.6–5 M crawled, 2.7 M common).
	PagesCrawled int // pages in the final snapshot
	PagesCommon  int // pages present in every snapshot
	PagesChanged int // common pages whose PR changed > MinChangeFrac

	// Average relative error predicting PR(t4) (paper: 0.32 vs 0.78).
	AvgErrQ  float64
	AvgErrPR float64
	// Medians, for robustness reporting.
	MedianErrQ  float64
	MedianErrPR float64
	// DiffCILo/DiffCIHi bound the paired-bootstrap 95% confidence
	// interval of AvgErrQ - AvgErrPR; an interval entirely below zero
	// means the estimator's advantage is statistically significant.
	DiffCILo, DiffCIHi float64

	// Figure-5 histograms over the changed pages.
	HistQ  *metrics.Histogram
	HistPR *metrics.Histogram
	// First-bin fractions (err < 0.1; paper: ~62 % vs ~46 %) and last-bin
	// fractions (err > 0.9 incl. overflow; paper: ~5 % vs ~10 %).
	FracFirstQ, FracFirstPR float64
	FracLastQ, FracLastPR   float64

	// Ground-truth comparison (beyond the paper — possible only because
	// the corpus knows every page's true quality): Kendall τ of each ranking
	// against true quality over the changed pages.
	TauQTruth  float64
	TauPRTruth float64

	// Class tallies from the estimator.
	Classes map[quality.Class]int
}

func (c *HeadlineConfig) fill() {
	if c.Corpus.Sites == 0 {
		c.Corpus = webcorpus.DefaultConfig()
	}
	if len(c.Schedule.Times) == 0 {
		c.Schedule = webcorpus.PaperSchedule()
	}
	if c.EstimationSnaps == 0 {
		c.EstimationSnaps = len(c.Schedule.Times) - 1
	}
	// Only a wholly zero estimator config counts as "unset": an explicit
	// C = 0 alongside any other setting is the caller's pure-popularity
	// baseline (the C → 0 endpoint of Ablation A) and must be respected.
	if c.Estimator == (quality.Config{}) {
		c.Estimator = quality.DefaultConfig()
	}
}

// RunHeadline executes the experiment end to end.
func RunHeadline(cfg HeadlineConfig) (*HeadlineResult, error) {
	cfg.fill()
	if len(cfg.Schedule.Times) < cfg.EstimationSnaps+1 {
		return nil, fmt.Errorf("experiments: schedule has %d snapshots, need %d estimation + 1 future",
			len(cfg.Schedule.Times), cfg.EstimationSnaps)
	}
	sim, err := webcorpus.New(cfg.Corpus)
	if err != nil {
		return nil, fmt.Errorf("experiments: corpus: %w", err)
	}
	snaps, err := sim.RunSchedule(cfg.Schedule)
	if err != nil {
		return nil, fmt.Errorf("experiments: schedule: %w", err)
	}
	al, err := snapshot.Align(snaps)
	if err != nil {
		return nil, fmt.Errorf("experiments: align: %w", err)
	}
	truth, err := sim.TrueQualities(al.URLs)
	if err != nil {
		return nil, fmt.Errorf("experiments: truth: %w", err)
	}
	return EvaluateHeadline(al, truth, snaps[len(snaps)-1].Graph.NumNodes(), cfg)
}

// EvaluateHeadline runs the estimation/evaluation half of the experiment
// on an already-aligned series (exposed separately so cmd/quality can
// score stored snapshot files).
func EvaluateHeadline(al *snapshot.Aligned, truth []float64, crawled int, cfg HeadlineConfig) (*HeadlineResult, error) {
	cfg.fill()
	est, ranks, err := quality.FromAligned(al, cfg.EstimationSnaps, cfg.PageRank, cfg.Estimator)
	if err != nil {
		return nil, fmt.Errorf("experiments: estimate: %w", err)
	}
	future := ranks[len(ranks)-1]
	current := ranks[cfg.EstimationSnaps-1]

	res := &HeadlineResult{
		PagesCrawled: crawled,
		PagesCommon:  al.NumPages(),
		PagesChanged: est.NumChanged,
		HistQ:        metrics.Figure5Histogram(),
		HistPR:       metrics.Figure5Histogram(),
		Classes:      est.Counts,
	}

	var errsQ, errsPR []float64
	var changedQ, changedPR, changedTruth []float64
	for i := range est.Q {
		if !est.Changed[i] || future[i] == 0 {
			continue
		}
		eq, err := metrics.RelativeError(est.Q[i], future[i])
		if err != nil {
			return nil, err
		}
		ep, err := metrics.RelativeError(current[i], future[i])
		if err != nil {
			return nil, err
		}
		errsQ = append(errsQ, eq)
		errsPR = append(errsPR, ep)
		changedQ = append(changedQ, est.Q[i])
		changedPR = append(changedPR, current[i])
		if truth != nil {
			changedTruth = append(changedTruth, truth[i])
		}
	}
	if len(errsQ) == 0 {
		return nil, fmt.Errorf("experiments: no changed pages to evaluate (corpus too static)")
	}
	sq, err := metrics.Summarize(errsQ)
	if err != nil {
		return nil, err
	}
	sp, err := metrics.Summarize(errsPR)
	if err != nil {
		return nil, err
	}
	res.AvgErrQ, res.MedianErrQ = sq.Mean, sq.Median
	res.AvgErrPR, res.MedianErrPR = sp.Mean, sp.Median
	res.DiffCILo, res.DiffCIHi, err = metrics.BootstrapMeanDiffCI(errsQ, errsPR, 2000, 0.95, 1)
	if err != nil {
		return nil, err
	}
	if err := res.HistQ.AddAll(errsQ); err != nil {
		return nil, err
	}
	if err := res.HistPR.AddAll(errsPR); err != nil {
		return nil, err
	}
	res.FracFirstQ = res.HistQ.Fraction(0)
	res.FracFirstPR = res.HistPR.Fraction(0)
	res.FracLastQ = res.HistQ.Fraction(9)
	res.FracLastPR = res.HistPR.Fraction(9)

	if len(changedTruth) >= 2 {
		if tau, err := metrics.KendallTau(changedQ, changedTruth); err == nil {
			res.TauQTruth = tau
		}
		if tau, err := metrics.KendallTau(changedPR, changedTruth); err == nil {
			res.TauPRTruth = tau
		}
	}
	return res, nil
}

// MultiSeedResult aggregates the headline experiment across independent
// corpus draws, reporting the spread of the improvement factor — the
// robustness check a single-crawl paper could not run.
type MultiSeedResult struct {
	// Seeds lists the corpus seeds evaluated.
	Seeds []int64
	// Factors[i] is AvgErrPR/AvgErrQ for Seeds[i].
	Factors []float64
	// MinFactor and MeanFactor summarise the spread.
	MinFactor, MeanFactor float64
	// AllSignificant reports whether the paired CI excluded zero on every
	// seed.
	AllSignificant bool
}

// RunHeadlineMultiSeed runs the experiment once per seed. The seeds fan
// out across a worker pool (each corpus is fully determined by its own
// seed, so per-seed results are identical to running the seeds
// sequentially); aggregation happens in seed order afterwards.
func RunHeadlineMultiSeed(cfg HeadlineConfig, seeds []int64) (*MultiSeedResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: no seeds")
	}
	cfg.fill()
	headlines := make([]*HeadlineResult, len(seeds))
	errs := make([]error, len(seeds))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(seeds) {
		workers = len(seeds)
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				run := cfg
				run.Corpus.Seed = seeds[i]
				headlines[i], errs[i] = RunHeadline(run)
			}
		}()
	}
	for i := range seeds {
		idx <- i
	}
	close(idx)
	wg.Wait()

	res := &MultiSeedResult{Seeds: seeds, MinFactor: math.Inf(1), AllSignificant: true}
	sum := 0.0
	for i, h := range headlines {
		if errs[i] != nil {
			return nil, fmt.Errorf("seed %d: %w", seeds[i], errs[i])
		}
		f := h.AvgErrPR / h.AvgErrQ
		res.Factors = append(res.Factors, f)
		sum += f
		if f < res.MinFactor {
			res.MinFactor = f
		}
		if h.DiffCIHi >= 0 {
			res.AllSignificant = false
		}
	}
	res.MeanFactor = sum / float64(len(seeds))
	return res, nil
}
