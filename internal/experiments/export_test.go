package experiments

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
)

// parseCSV is a strict helper: it re-parses what the writers produced.
func parseCSV(t *testing.T, data string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(data)).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	return rows
}

func TestWriteFigureCSVs(t *testing.T) {
	f1, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFigure1CSV(&buf, f1); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	if rows[0][0] != "t" || rows[0][1] != "popularity" {
		t.Fatalf("figure1 header = %v", rows[0])
	}
	if len(rows) != len(f1.Trajectory.T)+1 {
		t.Fatalf("figure1 rows = %d", len(rows))
	}
	// Last row reaches the plateau.
	v, err := strconv.ParseFloat(rows[len(rows)-1][1], 64)
	if err != nil || v < 0.79 {
		t.Fatalf("figure1 last popularity = %v (%v)", rows[len(rows)-1], err)
	}

	f2, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteFigure2CSV(&buf, f2); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, buf.String())
	if len(rows) != len(f2.T)+1 || len(rows[0]) != 3 {
		t.Fatalf("figure2 shape %dx%d", len(rows), len(rows[0]))
	}

	f3, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteFigure3CSV(&buf, f3); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, buf.String())
	// Every data row's sum is 0.2.
	for _, r := range rows[1:] {
		v, err := strconv.ParseFloat(r[1], 64)
		if err != nil || v < 0.199 || v > 0.201 {
			t.Fatalf("figure3 row %v", r)
		}
	}
}

func TestWriteHeadlineAndFigure5CSV(t *testing.T) {
	res, err := RunHeadline(testHeadlineConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHeadlineCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	found := map[string]string{}
	for _, r := range rows[1:] {
		found[r[0]] = r[1]
	}
	for _, key := range []string{
		"pages_common", "avg_err_quality", "avg_err_pagerank",
		"diff_ci_lo", "tau_quality_vs_truth",
	} {
		if found[key] == "" {
			t.Fatalf("headline CSV missing %q: %v", key, found)
		}
	}

	buf.Reset()
	if err := WriteFigure5CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, buf.String())
	if len(rows) != 11 { // header + 10 bins
		t.Fatalf("figure5 rows = %d", len(rows))
	}
	sumQ := 0.0
	for _, r := range rows[1:] {
		v, err := strconv.ParseFloat(r[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		sumQ += v
	}
	if sumQ < 0.999 || sumQ > 1.001 {
		t.Fatalf("figure5 quality fractions sum to %g", sumQ)
	}
}

func TestWriteSweepCSVs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAblationCCSV(&buf, []CPoint{{C: 0.1, AvgErrQ: 0.2, AvgErrPR: 0.3}}); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	if len(rows) != 2 || rows[1][0] != "0.1" {
		t.Fatalf("ablation-c CSV = %v", rows)
	}
	buf.Reset()
	if err := WriteWindowCSV(&buf, []WindowPoint{{GapWeeks: 4, AvgErrQLow: 0.3, AvgErrQHigh: 0.1}}); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, buf.String())
	if len(rows) != 2 || rows[1][0] != "4" {
		t.Fatalf("window CSV = %v", rows)
	}
}
