// Package experiments contains one driver per table and figure in the
// paper's evaluation, plus the ablations DESIGN.md calls out. Each driver
// returns a structured result that cmd/experiments renders and that the
// test suite asserts shape properties on (who wins, where the crossovers
// fall), following the reproduction contract: shapes must match the paper
// even though absolute numbers come from a synthetic corpus.
package experiments

import (
	"fmt"

	"pagequality/internal/model"
	"pagequality/internal/webcorpus"
)

// Figure1Result reproduces Figure 1: the sigmoidal popularity evolution of
// a page with Q = 0.8, n = 10⁸, r = 10⁸, P(p,0) = 10⁻⁸, and the three
// life stages.
type Figure1Result struct {
	Params     model.Params
	Trajectory model.Trajectory
	Stages     model.StageBoundaries
}

// Figure1Params are the exact parameters printed under Figure 1.
func Figure1Params() model.Params {
	return model.Params{Q: 0.8, N: 1e8, R: 1e8, P0: 1e-8}
}

// Figure1 evaluates the Theorem-1 closed form on the figure's time window
// [0, 40].
func Figure1() (*Figure1Result, error) {
	p := Figure1Params()
	tr, err := p.Sample(40, 400)
	if err != nil {
		return nil, fmt.Errorf("figure1: %w", err)
	}
	st, err := p.Stages(model.StageThresholds{})
	if err != nil {
		return nil, fmt.Errorf("figure1: %w", err)
	}
	return &Figure1Result{Params: p, Trajectory: tr, Stages: st}, nil
}

// Figure2Result reproduces Figure 2: I(p,t) and P(p,t) for Q = 0.2,
// n = 10⁸, r = 10⁸, P(p,0) = 10⁻⁹ on [0, 150].
type Figure2Result struct {
	Params model.Params
	T      []float64
	I      []float64 // relative popularity increase
	P      []float64 // popularity
}

// Figure2Params are the exact parameters printed under Figures 2 and 3.
func Figure2Params() model.Params {
	return model.Params{Q: 0.2, N: 1e8, R: 1e8, P0: 1e-9}
}

// Figure2 evaluates both curves analytically.
func Figure2() (*Figure2Result, error) {
	p := Figure2Params()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("figure2: %w", err)
	}
	const steps = 300
	res := &Figure2Result{
		Params: p,
		T:      make([]float64, steps+1),
		I:      make([]float64, steps+1),
		P:      make([]float64, steps+1),
	}
	for i := 0; i <= steps; i++ {
		t := 150 * float64(i) / float64(steps)
		res.T[i] = t
		res.I[i] = p.RelativeIncrease(t)
		res.P[i] = p.PopularityAt(t)
	}
	return res, nil
}

// Figure3Result reproduces Figure 3: I(p,t) + P(p,t) is the flat line at
// Q (Theorem 2), for the same parameters as Figure 2.
type Figure3Result struct {
	Params model.Params
	T      []float64
	Sum    []float64 // I + P at each time
}

// Figure3 evaluates the estimator sum over the figure's window.
func Figure3() (*Figure3Result, error) {
	f2, err := Figure2()
	if err != nil {
		return nil, fmt.Errorf("figure3: %w", err)
	}
	res := &Figure3Result{Params: f2.Params, T: f2.T, Sum: make([]float64, len(f2.T))}
	for i := range f2.T {
		res.Sum[i] = f2.I[i] + f2.P[i]
	}
	return res, nil
}

// Figure4 returns the snapshot timeline of the paper's experiment
// (Figure 4): four crawls at weeks 0, 4, 8 and 26.
func Figure4() webcorpus.Schedule {
	return webcorpus.PaperSchedule()
}

// Table1 re-exports the notation table so cmd/experiments renders it from
// the same source of truth as the model package.
func Table1() []model.Symbol {
	return model.Table1()
}
