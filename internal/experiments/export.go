package experiments

import (
	"encoding/csv"
	"io"
	"strconv"
)

// This file exports experiment results as CSV so the figures can be
// re-plotted with external tooling (gnuplot, matplotlib, R). Each writer
// emits a header row and one row per data point; cmd/experiments wires
// them to the -csv flag.

// WriteFigure1CSV emits t,P columns of the popularity evolution.
func WriteFigure1CSV(w io.Writer, res *Figure1Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t", "popularity"}); err != nil {
		return err
	}
	for i := range res.Trajectory.T {
		if err := cw.Write([]string{
			formatF(res.Trajectory.T[i]),
			formatF(res.Trajectory.P[i]),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure2CSV emits t,I,P columns.
func WriteFigure2CSV(w io.Writer, res *Figure2Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t", "I", "P"}); err != nil {
		return err
	}
	for i := range res.T {
		if err := cw.Write([]string{
			formatF(res.T[i]), formatF(res.I[i]), formatF(res.P[i]),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure3CSV emits t,sum columns (the flat Theorem-2 line).
func WriteFigure3CSV(w io.Writer, res *Figure3Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t", "I_plus_P"}); err != nil {
		return err
	}
	for i := range res.T {
		if err := cw.Write([]string{formatF(res.T[i]), formatF(res.Sum[i])}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure5CSV emits bin,fracQ,fracPR rows of the error histogram.
func WriteFigure5CSV(w io.Writer, res *HeadlineResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"bin", "frac_quality", "frac_pagerank"}); err != nil {
		return err
	}
	fq := res.HistQ.Fractions()
	fp := res.HistPR.Fractions()
	for i := range fq {
		if err := cw.Write([]string{
			res.HistQ.Label(i), formatF(fq[i]), formatF(fp[i]),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteHeadlineCSV emits the §8.2 summary as key,value rows.
func WriteHeadlineCSV(w io.Writer, res *HeadlineResult) error {
	cw := csv.NewWriter(w)
	rows := [][]string{
		{"metric", "value"},
		{"pages_crawled", strconv.Itoa(res.PagesCrawled)},
		{"pages_common", strconv.Itoa(res.PagesCommon)},
		{"pages_changed", strconv.Itoa(res.PagesChanged)},
		{"avg_err_quality", formatF(res.AvgErrQ)},
		{"avg_err_pagerank", formatF(res.AvgErrPR)},
		{"median_err_quality", formatF(res.MedianErrQ)},
		{"median_err_pagerank", formatF(res.MedianErrPR)},
		{"diff_ci_lo", formatF(res.DiffCILo)},
		{"diff_ci_hi", formatF(res.DiffCIHi)},
		{"frac_first_bin_quality", formatF(res.FracFirstQ)},
		{"frac_first_bin_pagerank", formatF(res.FracFirstPR)},
		{"frac_last_bin_quality", formatF(res.FracLastQ)},
		{"frac_last_bin_pagerank", formatF(res.FracLastPR)},
		{"tau_quality_vs_truth", formatF(res.TauQTruth)},
		{"tau_pagerank_vs_truth", formatF(res.TauPRTruth)},
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAblationCCSV emits the C sweep.
func WriteAblationCCSV(w io.Writer, pts []CPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"C", "avg_err_quality", "avg_err_pagerank"}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := cw.Write([]string{
			formatF(p.C), formatF(p.AvgErrQ), formatF(p.AvgErrPR),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteWindowCSV emits the measurement-window sweep.
func WriteWindowCSV(w io.Writer, pts []WindowPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"gap_weeks", "avg_err_low_pr", "avg_err_high_pr"}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := cw.Write([]string{
			formatF(p.GapWeeks), formatF(p.AvgErrQLow), formatF(p.AvgErrQHigh),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePolicyComparisonCSV emits one row per ranking policy.
func WritePolicyComparisonCSV(w io.Writer, res *PolicyComparisonResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"policy", "pages", "links", "sessions", "search_visits", "search_discoveries",
		"quality_weighted_discovery", "highq_newborns", "newborn_discovery",
		"newborns_found", "mean_time_to_first_visit", "popularity_gini", "quality_pop_corr",
	}); err != nil {
		return err
	}
	for _, o := range res.Outcomes {
		if err := cw.Write([]string{
			o.Policy, strconv.Itoa(o.Pages), strconv.Itoa(o.Links),
			strconv.FormatInt(o.Sessions, 10), strconv.FormatInt(o.SearchVisits, 10),
			strconv.FormatInt(o.SearchDiscoveries, 10),
			formatF(o.QualityWeightedDiscovery), strconv.Itoa(o.HighQNewborns),
			formatF(o.NewbornDiscovery), strconv.Itoa(o.NewbornsFound),
			formatF(o.MeanTimeToFirstVisit), formatF(o.PopularityGini), formatF(o.QualityPopCorr),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatF(v float64) string {
	return strconv.FormatFloat(v, 'g', 10, 64)
}
