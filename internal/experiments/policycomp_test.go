package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"pagequality/internal/ranking"
	"pagequality/internal/webcorpus"
)

// quickPolicyConfig is a small-but-real comparison: enough pages that
// the webcorpus draw phase actually runs in parallel chunks, short
// enough to keep the test under a few seconds.
func quickPolicyConfig() PolicyComparisonConfig {
	corpus := webcorpus.DefaultConfig()
	corpus.Sites = 30
	corpus.InitialPagesPerSite = 40
	corpus.Users = 400
	corpus.VisitRate = 400
	corpus.BurnInWeeks = 1
	corpus.BirthRate = 20
	corpus.Seed = 7
	return PolicyComparisonConfig{
		Corpus: corpus,
		Search: webcorpus.SearchConfig{SessionsPerWeek: 300, TopK: 5},
		Policies: []ranking.Policy{
			ranking.ByPageRank{},
			ranking.Randomized{Epsilon: 0.3},
		},
		Weeks: 2,
	}
}

// TestPolicyComparisonDeterministic pins the acceptance criterion: two
// runs of the same config produce identical results, including every
// float, despite the per-policy goroutine fan-out.
func TestPolicyComparisonDeterministic(t *testing.T) {
	cfg := quickPolicyConfig()
	a, err := RankingPolicyComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RankingPolicyComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs differ:\n%+v\n%+v", a, b)
	}
	for i, out := range a.Outcomes {
		if out.Policy != cfg.Policies[i].Name() {
			t.Fatalf("outcome %d is %q, want %q (order not preserved)", i, out.Policy, cfg.Policies[i].Name())
		}
		if out.Sessions == 0 || out.SearchVisits == 0 {
			t.Fatalf("policy %s: search channel idle (%d sessions)", out.Policy, out.Sessions)
		}
	}
}

// TestPolicyComparisonWorkerInvariant runs the same comparison with the
// corpus draw phase on 1 and then 2 workers: the results must be
// bitwise identical.
func TestPolicyComparisonWorkerInvariant(t *testing.T) {
	run := func(workers int) *PolicyComparisonResult {
		cfg := quickPolicyConfig()
		cfg.Corpus.Workers = workers
		res, err := RankingPolicyComparison(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(2)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Workers=1 vs Workers=2 differ:\n%+v\n%+v", a, b)
	}
}

func TestWritePolicyComparisonCSV(t *testing.T) {
	res := &PolicyComparisonResult{
		Seed:  1,
		Weeks: 26,
		Outcomes: []PolicyOutcome{
			{Policy: "none", Pages: 10, Links: 20, QualityWeightedDiscovery: 0.5},
			{Policy: "randomized-0.2", Pages: 11, Links: 21, Sessions: 9},
		},
	}
	var buf bytes.Buffer
	if err := WritePolicyComparisonCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows:\n%s", len(lines), buf.String())
	}
	wantCols := len(strings.Split(lines[0], ","))
	for i, line := range lines {
		if got := len(strings.Split(line, ",")); got != wantCols {
			t.Fatalf("line %d has %d columns, header has %d", i, got, wantCols)
		}
	}
	if !strings.HasPrefix(lines[1], "none,10,20,") {
		t.Fatalf("first row %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "randomized-0.2,11,21,9,") {
		t.Fatalf("second row %q", lines[2])
	}
}
