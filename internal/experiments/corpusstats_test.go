package experiments

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"pagequality/internal/corpus"
	"pagequality/internal/pagestore"
)

func buildArchive(t *testing.T) *pagestore.Store {
	t.Helper()
	st, err := pagestore.Open(t.TempDir(), pagestore.Options{MaxSegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	for i := 0; i < 30; i++ {
		label := "t1"
		if i%3 == 0 {
			label = "t2"
		}
		body := strings.Repeat("x", 50+i)
		key := fmt.Sprintf("%s/site-%02d/page", label, i)
		if err := st.Put(key, pagestore.Meta{FetchedAt: float64(i % 7), Status: 200}, []byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestArchiveStats(t *testing.T) {
	st := buildArchive(t)
	stats, err := ArchiveStats(st, corpus.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 || stats[0].Label != "t1" || stats[1].Label != "t2" {
		t.Fatalf("labels: %+v", stats)
	}
	if stats[0].Docs+stats[1].Docs != 30 {
		t.Fatalf("doc counts: %+v", stats)
	}
	for _, ls := range stats {
		if math.Abs(ls.MeanBytes*float64(ls.Docs)-float64(ls.Bytes)) > 1e-9 {
			t.Fatalf("mean inconsistent: %+v", ls)
		}
		if ls.FirstWeek > ls.LastWeek {
			t.Fatalf("week span inverted: %+v", ls)
		}
	}
	// Worker-count invariance.
	again, err := ArchiveStats(st, corpus.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stats, again) {
		t.Fatal("stats differ across worker counts")
	}
}

func TestWriteArchiveStatsCSV(t *testing.T) {
	st := buildArchive(t)
	stats, err := ArchiveStats(st, corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteArchiveStatsCSV(&sb, stats); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv:\n%s", sb.String())
	}
	if lines[0] != "label,docs,bytes,mean_bytes,first_week,last_week" {
		t.Fatalf("header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "t1,") || !strings.HasPrefix(lines[2], "t2,") {
		t.Fatalf("rows:\n%s", sb.String())
	}
}
