package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"pagequality/internal/graph"
	"pagequality/internal/pagerank"
	"pagequality/internal/quality"
	"pagequality/internal/snapshot"
	"pagequality/internal/webcorpus"
)

// EstimatorComparison compares the paper's endpoint estimator with the
// least-squares regression variant on a densely crawled corpus.
type EstimatorComparison struct {
	// Crawls is the number of estimation snapshots used.
	Crawls int
	// AvgErrEndpoint / AvgErrRegression are the mean relative errors
	// predicting the future PageRank over the changed pages.
	AvgErrEndpoint   float64
	AvgErrRegression float64
	// FluctuatingFrac is the share of changed pages the endpoint
	// estimator had to fall back to I := 0 for — the population the
	// regression variant rescues.
	FluctuatingFrac float64
}

// AblationEstimator crawls the corpus estimationCrawls times at weekly
// gaps, then once more at futureWeek, and scores both estimator variants.
func AblationEstimator(cfg HeadlineConfig, estimationCrawls int, gapWeeks, futureWeek float64) (*EstimatorComparison, error) {
	if estimationCrawls < 3 {
		return nil, fmt.Errorf("experiments: need >= 3 estimation crawls, got %d", estimationCrawls)
	}
	if gapWeeks <= 0 || float64(estimationCrawls-1)*gapWeeks >= futureWeek {
		return nil, fmt.Errorf("experiments: gaps %g x %d do not fit before future week %g",
			gapWeeks, estimationCrawls-1, futureWeek)
	}
	cfg.fill()
	sched := webcorpus.Schedule{}
	for k := 0; k < estimationCrawls; k++ {
		sched.Times = append(sched.Times, float64(k)*gapWeeks)
		sched.Labels = append(sched.Labels, fmt.Sprintf("t%d", k+1))
	}
	sched.Times = append(sched.Times, futureWeek)
	sched.Labels = append(sched.Labels, "future")

	sim, err := webcorpus.New(cfg.Corpus)
	if err != nil {
		return nil, err
	}
	snaps, err := sim.RunSchedule(sched)
	if err != nil {
		return nil, err
	}
	al, err := snapshot.Align(snaps)
	if err != nil {
		return nil, err
	}
	ranks, err := al.PageRankSeries(cfg.PageRank)
	if err != nil {
		return nil, err
	}
	est := ranks[:estimationCrawls]
	future := ranks[len(ranks)-1]
	cur := ranks[estimationCrawls-1]

	endpoint, err := quality.EstimateFromSeries(est, cfg.Estimator)
	if err != nil {
		return nil, err
	}
	regression, err := quality.EstimateWithRegression(est, sched.Times[:estimationCrawls], cfg.Estimator)
	if err != nil {
		return nil, err
	}

	out := &EstimatorComparison{Crawls: estimationCrawls}
	var sumE, sumR float64
	n, fluct := 0, 0
	for i := range cur {
		if !endpoint.Changed[i] || future[i] == 0 {
			continue
		}
		sumE += abs(future[i]-endpoint.Q[i]) / future[i]
		sumR += abs(future[i]-regression.Q[i]) / future[i]
		if endpoint.Class[i] == quality.ClassFluctuating {
			fluct++
		}
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("experiments: no changed pages")
	}
	out.AvgErrEndpoint = sumE / float64(n)
	out.AvgErrRegression = sumR / float64(n)
	out.FluctuatingFrac = float64(fluct) / float64(n)
	return out, nil
}

// SolverPoint is one row of the PageRank-solver ablation.
type SolverPoint struct {
	Name       string
	Iterations int
	Elapsed    time.Duration
	// MaxDiff is the sup-norm difference from the plain solver's vector.
	MaxDiff float64
}

// AblationPageRankSolver compares the plain power iteration against the
// Aitken-extrapolated and adaptive solvers on a Web-scale synthetic graph
// (preferential attachment, `nodes` pages) — the design-choice ablation
// for the acceleration techniques the paper's related work cites
// ([11], [12]). Pass nodes <= 0 for the 100k default.
//
// clock supplies wall time for the Elapsed fields; callers that want
// timing inject one (commands pass time.Now), and a nil clock leaves
// every Elapsed zero so the library itself stays deterministic.
func AblationPageRankSolver(cfg HeadlineConfig, nodes int, clock func() time.Time) ([]SolverPoint, error) {
	cfg.fill()
	if nodes <= 0 {
		nodes = 100_000
	}
	now := func() time.Time { return time.Time{} }
	if clock != nil {
		now = clock
	}
	rng := rand.New(rand.NewSource(cfg.Corpus.Seed))
	g, err := graph.GeneratePreferentialAttachment(
		graph.PreferentialAttachmentConfig{Nodes: nodes, OutPerNode: 8}, rng)
	if err != nil {
		return nil, err
	}
	c := graph.Freeze(g)
	const tol = 1e-10

	var out []SolverPoint
	start := now()
	plain, err := pagerank.Compute(c, pagerank.Options{Tol: tol, MaxIter: 1000, Workers: 1})
	if err != nil {
		return nil, err
	}
	out = append(out, SolverPoint{Name: "plain", Iterations: plain.Iterations, Elapsed: now().Sub(start)})

	start = now()
	extra, err := pagerank.Compute(c, pagerank.Options{Tol: tol, MaxIter: 1000, Workers: 1, Extrapolate: true})
	if err != nil {
		return nil, err
	}
	out = append(out, SolverPoint{
		Name: "aitken", Iterations: extra.Iterations, Elapsed: now().Sub(start),
		MaxDiff: maxDiff(plain.Rank, extra.Rank),
	})

	start = now()
	adaptive, err := pagerank.ComputeAdaptive(c, pagerank.AdaptiveOptions{Tol: tol, MaxIter: 1000})
	if err != nil {
		return nil, err
	}
	out = append(out, SolverPoint{
		Name: "adaptive", Iterations: adaptive.Iterations, Elapsed: now().Sub(start),
		MaxDiff: maxDiff(plain.Rank, adaptive.Rank),
	})
	return out, nil
}

func maxDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if x := abs(a[i] - b[i]); x > d {
			d = x
		}
	}
	return d
}
