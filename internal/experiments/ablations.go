package experiments

import (
	"fmt"
	"sort"
	"sync"

	"pagequality/internal/quality"
	"pagequality/internal/snapshot"
	"pagequality/internal/usersim"
	"pagequality/internal/webcorpus"
)

// CPoint is one row of the C-sweep ablation.
type CPoint struct {
	C        float64
	AvgErrQ  float64
	AvgErrPR float64 // constant across C, repeated for convenience
}

// AblationC sweeps the estimator constant C over one corpus run,
// reproducing the paper's footnote 6: "The value 0.1 showed the best
// result out of all values that we tested. Small variations in the
// constant did not affect our result significantly."
func AblationC(cfg HeadlineConfig, cs []float64) ([]CPoint, error) {
	if len(cs) == 0 {
		return nil, fmt.Errorf("experiments: empty C sweep")
	}
	cfg.fill()
	sim, err := webcorpus.New(cfg.Corpus)
	if err != nil {
		return nil, fmt.Errorf("experiments: corpus: %w", err)
	}
	snaps, err := sim.RunSchedule(cfg.Schedule)
	if err != nil {
		return nil, err
	}
	al, err := snapshot.Align(snaps)
	if err != nil {
		return nil, err
	}
	truth, err := sim.TrueQualities(al.URLs)
	if err != nil {
		return nil, err
	}
	out := make([]CPoint, 0, len(cs))
	for _, c := range cs {
		if c < 0 {
			return nil, fmt.Errorf("experiments: C sweep value %g must be non-negative", c)
		}
		run := cfg
		run.Estimator.C = c
		res, err := EvaluateHeadline(al, truth, snaps[len(snaps)-1].Graph.NumNodes(), run)
		if err != nil {
			return nil, err
		}
		out = append(out, CPoint{C: c, AvgErrQ: res.AvgErrQ, AvgErrPR: res.AvgErrPR})
	}
	return out, nil
}

// ForgettingResult compares the popularity-evolution class mix with and
// without the §9.1 forgetting mechanism. Classification uses the
// *absolute* popularity measure (in-degree, footnote 4) rather than
// PageRank: PageRank is zero-sum, so relative dilution produces
// "decreasing" pages even under the clean model, whereas the model's
// claim — popularity only grows without forgetting, and can genuinely
// shrink with it — is about absolute popularity.
type ForgettingResult struct {
	// ClassesClean are the class counts under the paper's clean model (no
	// forgetting, no noise): decreasing pages are (nearly) absent because
	// links are only ever added.
	ClassesClean map[quality.Class]int
	// ClassesForgetting are the counts with forgetting and churn on:
	// decreasing and fluctuating pages appear, matching what the paper
	// observed in its real crawl data.
	ClassesForgetting map[quality.Class]int
}

// AblationForgetting runs the corpus twice — once clean, once with
// forgetting and churn — and tallies in-degree evolution classes.
func AblationForgetting(cfg HeadlineConfig, forgetRate, noiseRate float64) (*ForgettingResult, error) {
	cfg.fill()
	runOnce := func(forget, noise float64) (map[quality.Class]int, error) {
		run := cfg
		run.Corpus.ForgetRate = forget
		run.Corpus.NoiseRate = noise
		sim, err := webcorpus.New(run.Corpus)
		if err != nil {
			return nil, err
		}
		snaps, err := sim.RunSchedule(run.Schedule)
		if err != nil {
			return nil, err
		}
		al, err := snapshot.Align(snaps)
		if err != nil {
			return nil, err
		}
		series := al.InDegreeSeries()
		est, err := quality.EstimateFromSeries(series[:run.EstimationSnaps], run.Estimator)
		if err != nil {
			return nil, err
		}
		return est.Counts, nil
	}
	// The two corpora are independent simulations; run them concurrently.
	var clean, forg map[quality.Class]int
	var cleanErr, forgErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		clean, cleanErr = runOnce(0, 0)
	}()
	forg, forgErr = runOnce(forgetRate, noiseRate)
	wg.Wait()
	if cleanErr != nil {
		return nil, fmt.Errorf("experiments: clean run: %w", cleanErr)
	}
	if forgErr != nil {
		return nil, fmt.Errorf("experiments: forgetting run: %w", forgErr)
	}
	return &ForgettingResult{ClassesClean: clean, ClassesForgetting: forg}, nil
}

// WindowPoint is one row of the measurement-window ablation.
type WindowPoint struct {
	// GapWeeks is the t1→t3 estimation window length.
	GapWeeks float64
	// AvgErrQLow is the mean relative error of the quality estimate for
	// the low-popularity half of the changed pages.
	AvgErrQLow float64
	// AvgErrQHigh is the same for the high-popularity half.
	AvgErrQHigh float64
}

// AblationWindow varies the estimation-window length and reports the
// error separately for low- and high-popularity pages, probing the §9.1
// statistical-noise discussion: "for low-PageRank pages, we may want to
// compute the PageRank increase over a longer period ... to reduce the
// impact of noise."
func AblationWindow(cfg HeadlineConfig, gaps []float64, futureWeek float64) ([]WindowPoint, error) {
	if len(gaps) == 0 {
		return nil, fmt.Errorf("experiments: empty gap sweep")
	}
	cfg.fill()
	// One simulation with snapshots at every needed time.
	times := []float64{0}
	labels := []string{"t1"}
	for i, g := range gaps {
		if g <= 0 || g >= futureWeek {
			return nil, fmt.Errorf("experiments: gap %g outside (0, future %g)", g, futureWeek)
		}
		if i > 0 && g <= gaps[i-1] {
			return nil, fmt.Errorf("experiments: gaps must be strictly increasing")
		}
		times = append(times, g)
		labels = append(labels, fmt.Sprintf("g%d", i))
	}
	times = append(times, futureWeek)
	labels = append(labels, "future")
	sim, err := webcorpus.New(cfg.Corpus)
	if err != nil {
		return nil, err
	}
	snaps, err := sim.RunSchedule(webcorpus.Schedule{Times: times, Labels: labels})
	if err != nil {
		return nil, err
	}
	al, err := snapshot.Align(snaps)
	if err != nil {
		return nil, err
	}
	ranks, err := al.PageRankSeries(cfg.PageRank)
	if err != nil {
		return nil, err
	}
	future := ranks[len(ranks)-1]

	// Each window point reads only the shared rank series; evaluate the
	// points concurrently and collect by index.
	out := make([]WindowPoint, len(gaps))
	errs := make([]error, len(gaps))
	var wg sync.WaitGroup
	for gi := range gaps {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			series := [][]float64{ranks[0], ranks[gi+1]}
			est, err := quality.EstimateFromSeries(series, cfg.Estimator)
			if err != nil {
				errs[gi] = err
				return
			}
			cur := ranks[gi+1]
			// Split changed pages at the median current popularity.
			var lowSum, highSum float64
			var lowN, highN int
			med := medianOf(cur)
			for i := range est.Q {
				if !est.Changed[i] || future[i] == 0 {
					continue
				}
				e := abs((future[i] - est.Q[i]) / future[i])
				if cur[i] <= med {
					lowSum += e
					lowN++
				} else {
					highSum += e
					highN++
				}
			}
			wp := WindowPoint{GapWeeks: gaps[gi]}
			if lowN > 0 {
				wp.AvgErrQLow = lowSum / float64(lowN)
			}
			if highN > 0 {
				wp.AvgErrQHigh = highSum / float64(highN)
			}
			out[gi] = wp
		}(gi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func medianOf(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ModelValidation compares the agent simulation against Theorem 1.
type ModelValidation struct {
	Config usersim.Config
	// MaxAbsDiff is the sup-norm distance between the simulated and
	// analytic popularity trajectories.
	MaxAbsDiff float64
	// FinalSim and FinalModel are the end-of-run popularity values (both
	// should approach Q).
	FinalSim, FinalModel float64
}

// ValidateModel runs the agent-based simulator and measures its deviation
// from the closed-form popularity evolution — the end-to-end check that
// the implementation of Propositions 1–2 really produces Theorem 1.
func ValidateModel(cfg usersim.Config, tMax float64) (*ModelValidation, error) {
	sim, err := usersim.New(cfg)
	if err != nil {
		return nil, err
	}
	tr, err := sim.Run(tMax, 20)
	if err != nil {
		return nil, err
	}
	p := cfg.ModelParams()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	v := &ModelValidation{Config: cfg}
	for i, t := range tr.T {
		want := p.PopularityAt(t)
		if d := abs(tr.P[i] - want); d > v.MaxAbsDiff {
			v.MaxAbsDiff = d
		}
	}
	v.FinalSim = tr.P[len(tr.P)-1]
	v.FinalModel = p.PopularityAt(tr.T[len(tr.T)-1])
	return v, nil
}
