package experiments

import (
	"fmt"
	"sort"
	"sync"

	"pagequality/internal/graph"
	"pagequality/internal/metrics"
	"pagequality/internal/ranking"
	"pagequality/internal/webcorpus"
)

// This file is the experiment the paper proposed but could never run
// (Section 9.2 / ROADMAP item 3): close the ranking feedback loop and
// measure how the *choice of ranking function* shapes the Web's
// evolution. Every policy starts from the identical burn-in corpus (the
// search channel only switches on at t = 0), then the loop runs — the
// policy decides who gets seen, visibility decides who gets linked,
// links decide the next ranking — and the long-run outcomes are
// compared: how much quality got discovered, how long high-quality
// newborns waited for their first reader, how concentrated popularity
// became (Fortunato/Menczer's Gini), and how well popularity tracks
// intrinsic quality in the end.

// PolicyComparisonConfig parameterises RankingPolicyComparison.
type PolicyComparisonConfig struct {
	// Corpus is the base corpus every policy evolves (its Search field is
	// overwritten per policy). Defaults to DefaultHeadlineConfig's corpus.
	Corpus webcorpus.Config
	// Search is the shared search-channel configuration; the Policy field
	// is overridden per run. Defaults: 1500 sessions/week, top-10,
	// StartWeek 0 (no search during burn-in, so every policy starts from
	// the identical seed corpus).
	Search webcorpus.SearchConfig
	// Policies are the contenders. Defaults to the four of the ISSUE:
	// none, pagerank, quality, randomized-0.2.
	Policies []ranking.Policy
	// Weeks is the post-burn-in horizon (default 26, the paper's
	// six-month crawl span).
	Weeks float64
	// NewbornWindowWeeks restricts the newborn cohort to pages born in
	// [0, NewbornWindowWeeks) so late arrivals with no time to be found
	// don't dilute the time-to-first-visit statistic (default Weeks/2).
	NewbornWindowWeeks float64
}

func (c *PolicyComparisonConfig) fill() {
	if c.Corpus.Sites == 0 {
		c.Corpus = DefaultHeadlineConfig().Corpus
	}
	if c.Search.SessionsPerWeek == 0 {
		c.Search.SessionsPerWeek = 1500
	}
	if c.Search.TopK == 0 {
		c.Search.TopK = 10
	}
	if len(c.Policies) == 0 {
		c.Policies = []ranking.Policy{
			ranking.None{},
			ranking.ByPageRank{},
			ranking.ByQuality{},
			ranking.Randomized{Epsilon: 0.2},
		}
	}
	if c.Weeks == 0 {
		c.Weeks = 26
	}
	if c.NewbornWindowWeeks == 0 {
		c.NewbornWindowWeeks = c.Weeks / 2
	}
}

// PolicyOutcome is one policy's long-run numbers at the horizon.
type PolicyOutcome struct {
	// Policy is the policy's Name().
	Policy string
	// Pages and Links count the final corpus.
	Pages, Links int
	// Sessions/SearchVisits/SearchDiscoveries are the channel's
	// cumulative counters (all zero for the no-search baseline).
	Sessions, SearchVisits, SearchDiscoveries int64
	// QualityWeightedDiscovery is Σ Q(p)·A(p,T) / Σ Q(p) over all pages:
	// the fraction of the corpus' quality mass that users have found.
	QualityWeightedDiscovery float64
	// HighQNewborns counts the cohort the paper worries about: pages born
	// in the newborn window with top-quartile true quality.
	HighQNewborns int
	// NewbornDiscovery is QualityWeightedDiscovery restricted to that
	// cohort — the acceptance metric (randomized >= pure PageRank here
	// is the Pandey/Cho claim).
	NewbornDiscovery float64
	// NewbornsFound counts cohort pages discovered by at least one user
	// beyond their seed liker.
	NewbornsFound int
	// MeanTimeToFirstVisit is the mean weeks from birth to first
	// discovery over the found cohort pages (0 if none).
	MeanTimeToFirstVisit float64
	// PopularityGini measures popularity concentration over all pages.
	PopularityGini float64
	// QualityPopCorr is Spearman's rho between true quality and final
	// popularity over all pages — 1 would be the paper's ideal Web where
	// popularity reflects nothing but quality.
	QualityPopCorr float64
}

// PolicyComparisonResult is the full comparison, one outcome per policy
// in the configured order.
type PolicyComparisonResult struct {
	Seed     int64
	Weeks    float64
	Outcomes []PolicyOutcome
}

// RankingPolicyComparison evolves one corpus per policy from the same
// seed (identical burn-in; the policies only diverge once search turns
// on at t = 0) and measures the long-run outcomes. Policies fan out
// across goroutines — each run is fully determined by (seed, policy), so
// the result is identical to running them sequentially, and bitwise
// identical across repeated runs and worker counts.
func RankingPolicyComparison(cfg PolicyComparisonConfig) (*PolicyComparisonResult, error) {
	cfg.fill()
	res := &PolicyComparisonResult{
		Seed:     cfg.Corpus.Seed,
		Weeks:    cfg.Weeks,
		Outcomes: make([]PolicyOutcome, len(cfg.Policies)),
	}
	errs := make([]error, len(cfg.Policies))
	var wg sync.WaitGroup
	for i, pol := range cfg.Policies {
		wg.Add(1)
		go func(i int, pol ranking.Policy) {
			defer wg.Done()
			out, err := runPolicy(cfg, pol)
			if err != nil {
				errs[i] = fmt.Errorf("experiments: policy %s: %w", pol.Name(), err)
				return
			}
			res.Outcomes[i] = *out
		}(i, pol)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// runPolicy evolves one corpus under the policy and collects its outcome.
func runPolicy(cfg PolicyComparisonConfig, pol ranking.Policy) (*PolicyOutcome, error) {
	run := cfg.Corpus
	run.Search = cfg.Search
	run.Search.Policy = pol
	if _, none := pol.(ranking.None); none {
		// The None policy never surfaces anything; disabling the channel
		// outright evolves the bitwise-identical corpus without paying for
		// weekly index refreshes.
		run.Search = webcorpus.SearchConfig{}
	}
	sim, err := webcorpus.New(run)
	if err != nil {
		return nil, err
	}
	sim.AdvanceTo(cfg.Weeks)

	g := sim.Graph()
	n := g.NumNodes()
	out := &PolicyOutcome{Policy: pol.Name(), Pages: n, Links: g.NumEdges()}
	out.Sessions, out.SearchVisits, out.SearchDiscoveries = sim.SearchStats()

	truth := make([]float64, n)
	pops := make([]float64, n)
	for p := 0; p < n; p++ {
		truth[p] = g.Page(graph.NodeID(p)).Quality
		pops[p] = sim.Popularity(graph.NodeID(p))
	}

	// Quality-weighted discovery over the whole corpus.
	var qSum, qFound float64
	for p := 0; p < n; p++ {
		qSum += truth[p]
		qFound += truth[p] * sim.Awareness(graph.NodeID(p))
	}
	if qSum > 0 {
		out.QualityWeightedDiscovery = qFound / qSum
	}

	// The high-quality newborn cohort: born in the newborn window with
	// top-quartile true quality.
	qThreshold := topQuartile(truth)
	var cqSum, cqFound, ttfvSum float64
	for p := 0; p < n; p++ {
		pg := g.Page(graph.NodeID(p))
		if pg.Created < 0 || pg.Created >= cfg.NewbornWindowWeeks || pg.Quality < qThreshold {
			continue
		}
		out.HighQNewborns++
		cqSum += pg.Quality
		cqFound += pg.Quality * sim.Awareness(graph.NodeID(p))
		if week, ok := sim.FirstDiscoveryWeek(graph.NodeID(p)); ok {
			out.NewbornsFound++
			ttfvSum += week - pg.Created
		}
	}
	if cqSum > 0 {
		out.NewbornDiscovery = cqFound / cqSum
	}
	if out.NewbornsFound > 0 {
		out.MeanTimeToFirstVisit = ttfvSum / float64(out.NewbornsFound)
	}

	if out.PopularityGini, err = metrics.Gini(pops); err != nil {
		return nil, err
	}
	if out.QualityPopCorr, err = metrics.SpearmanRho(truth, pops); err != nil {
		return nil, err
	}
	return out, nil
}

// topQuartile returns the 75th-percentile value of xs (the threshold
// convention of RunRisingStars).
func topQuartile(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return sorted[len(sorted)*3/4]
}
