package experiments

import (
	"math"
	"testing"

	"pagequality/internal/quality"
	"pagequality/internal/usersim"
)

// testHeadlineConfig shrinks the corpus so the full pipeline runs in
// well under a second while preserving the experiment's shape.
func testHeadlineConfig(seed int64) HeadlineConfig {
	cfg := DefaultHeadlineConfig()
	cfg.Corpus.Sites = 30
	cfg.Corpus.BirthRate = 6
	cfg.Corpus.Seed = seed
	return cfg
}

func TestFigure1ReproducesPaperShape(t *testing.T) {
	res, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	p := res.Params
	if p.Q != 0.8 || p.N != 1e8 || p.R != 1e8 || p.P0 != 1e-8 {
		t.Fatalf("figure 1 parameters drifted: %+v", p)
	}
	// Sigmoid: starts at ~0, ends at ~Q, monotone.
	tr := res.Trajectory
	if tr.P[0] > 1e-6 {
		t.Fatalf("P(0) = %g", tr.P[0])
	}
	if last := tr.P[len(tr.P)-1]; math.Abs(last-0.8) > 0.01 {
		t.Fatalf("P(40) = %g, want ~0.8", last)
	}
	for i := 1; i < len(tr.P); i++ {
		if tr.P[i] < tr.P[i-1] {
			t.Fatalf("popularity decreased at sample %d", i)
		}
	}
	// Stage boundaries land where the paper draws them (~15 and ~30).
	if res.Stages.ExpansionStart < 12 || res.Stages.ExpansionStart > 25 {
		t.Fatalf("expansion start = %g", res.Stages.ExpansionStart)
	}
	if res.Stages.MaturityStart < res.Stages.ExpansionStart ||
		res.Stages.MaturityStart > 35 {
		t.Fatalf("maturity start = %g", res.Stages.MaturityStart)
	}
}

func TestFigure2ReproducesPaperShape(t *testing.T) {
	res, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if res.Params.Q != 0.2 || res.Params.P0 != 1e-9 {
		t.Fatalf("figure 2 parameters drifted: %+v", res.Params)
	}
	n := len(res.T)
	// Early (t<70): I ≈ Q, P ≈ 0 — the paper's "I(p,t) ≈ 0.2 = Q(p)".
	early := n * 40 / 150
	if math.Abs(res.I[early]-0.2) > 0.01 {
		t.Fatalf("I(40) = %g, want ~0.2", res.I[early])
	}
	if res.P[early] > 0.01 {
		t.Fatalf("P(40) = %g, want ~0", res.P[early])
	}
	// Late (t>120): I ≈ 0, P ≈ Q.
	late := n * 140 / 150
	if res.I[late] > 0.01 {
		t.Fatalf("I(140) = %g, want ~0", res.I[late])
	}
	if math.Abs(res.P[late]-0.2) > 0.01 {
		t.Fatalf("P(140) = %g, want ~0.2", res.P[late])
	}
	// I decreasing, P increasing throughout.
	for i := 1; i < n; i++ {
		if res.I[i] > res.I[i-1]+1e-12 {
			t.Fatalf("I increased at %d", i)
		}
		if res.P[i] < res.P[i-1]-1e-12 {
			t.Fatalf("P decreased at %d", i)
		}
	}
}

func TestFigure3FlatAtQ(t *testing.T) {
	res, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Sum {
		if math.Abs(s-0.2) > 1e-9 {
			t.Fatalf("I+P at t=%g is %g, want exactly 0.2", res.T[i], s)
		}
	}
}

func TestFigure4Timeline(t *testing.T) {
	sched := Figure4()
	if len(sched.Times) != 4 {
		t.Fatalf("timeline has %d crawls", len(sched.Times))
	}
	gaps := sched.Gaps()
	if gaps[0] != 4 || gaps[1] != 4 || gaps[2] != 18 {
		t.Fatalf("gaps = %v", gaps)
	}
}

func TestTable1(t *testing.T) {
	if len(Table1()) != 8 {
		t.Fatalf("Table 1 has %d rows", len(Table1()))
	}
}

// The headline §8.2 shape: the quality estimator predicts the future
// PageRank better than the current PageRank — lower average error, larger
// first histogram bin — and both rankings correlate positively with the
// ground-truth quality, with Q at least as good.
func TestHeadlineShape(t *testing.T) {
	res, err := RunHeadline(testHeadlineConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.PagesCommon == 0 || res.PagesCommon > res.PagesCrawled {
		t.Fatalf("common=%d crawled=%d", res.PagesCommon, res.PagesCrawled)
	}
	if res.PagesChanged < 100 {
		t.Fatalf("only %d changed pages — corpus too static for the experiment", res.PagesChanged)
	}
	if res.AvgErrQ >= res.AvgErrPR {
		t.Fatalf("estimator avg error %.3f not below PageRank's %.3f", res.AvgErrQ, res.AvgErrPR)
	}
	if ratio := res.AvgErrPR / res.AvgErrQ; ratio < 1.1 {
		t.Fatalf("improvement ratio %.2f < 1.1 — shape too weak", ratio)
	}
	if res.MedianErrQ >= res.MedianErrPR {
		t.Fatalf("median error: Q %.3f not below PR %.3f", res.MedianErrQ, res.MedianErrPR)
	}
	if res.FracFirstQ <= res.FracFirstPR {
		t.Fatalf("first-bin fraction: Q %.2f not above PR %.2f", res.FracFirstQ, res.FracFirstPR)
	}
	if res.HistQ.Total != res.HistPR.Total {
		t.Fatalf("histogram totals differ: %d vs %d", res.HistQ.Total, res.HistPR.Total)
	}
	if res.TauQTruth <= 0 || res.TauPRTruth <= 0 {
		t.Fatalf("rank correlations with truth not positive: %g, %g", res.TauQTruth, res.TauPRTruth)
	}
}

func TestHeadlineDeterministic(t *testing.T) {
	a, err := RunHeadline(testHeadlineConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHeadline(testHeadlineConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgErrQ != b.AvgErrQ || a.PagesChanged != b.PagesChanged { //pqlint:allow floateq bitwise reproducibility under a fixed seed is the property under test
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestHeadlineScheduleValidation(t *testing.T) {
	cfg := testHeadlineConfig(1)
	cfg.EstimationSnaps = 4 // no future snapshot left
	if _, err := RunHeadline(cfg); err == nil {
		t.Fatal("schedule without future snapshot accepted")
	}
}

// The C sweep: some C must beat C→0 (pure current PageRank), and the
// curve must be smooth enough that neighbouring C values give similar
// errors (the paper's "small variations ... did not affect our result
// significantly").
func TestAblationC(t *testing.T) {
	cfg := testHeadlineConfig(2)
	cs := []float64{0, 0.5, 1.0, 1.5}
	pts, err := AblationC(cfg, cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(cs) {
		t.Fatalf("%d points", len(pts))
	}
	// The C = 0 endpoint is the pure-popularity baseline: the estimate is
	// exactly the current PageRank, so the errors must coincide exactly
	// (an explicit zero C must not be rewritten to the 0.1 default).
	if pts[0].AvgErrQ != pts[0].AvgErrPR { //pqlint:allow floateq C=0 must reproduce the PageRank error exactly, not approximately
		t.Fatalf("C=0 error %g != PR error %g", pts[0].AvgErrQ, pts[0].AvgErrPR)
	}
	// The tuned C=1.0 beats the degenerate baseline.
	if pts[2].AvgErrQ >= pts[0].AvgErrQ {
		t.Fatalf("C=1.0 error %.3f not below C→0 error %.3f", pts[2].AvgErrQ, pts[0].AvgErrQ)
	}
	// Neighbouring C values stay within a factor 1.5.
	if pts[2].AvgErrQ/pts[1].AvgErrQ > 1.5 || pts[1].AvgErrQ/pts[2].AvgErrQ > 1.5 {
		t.Fatalf("C curve not smooth: %.3f vs %.3f", pts[1].AvgErrQ, pts[2].AvgErrQ)
	}
	if _, err := AblationC(cfg, nil); err == nil {
		t.Fatal("empty sweep accepted")
	}
	if _, err := AblationC(cfg, []float64{-1}); err == nil {
		t.Fatal("negative C accepted")
	}
}

// Forgetting ablation: without forgetting and noise the clean model
// produces (almost) no consistently decreasing pages among the changed
// ones; with them, decreasing pages appear in force, matching the paper's
// observation that "many pages in our dataset showed consistent decrease
// in their PageRanks".
func TestAblationForgetting(t *testing.T) {
	cfg := testHeadlineConfig(3)
	res, err := AblationForgetting(cfg, 0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	decClean := res.ClassesClean[quality.ClassDecreasing]
	decForg := res.ClassesForgetting[quality.ClassDecreasing]
	if decForg <= decClean {
		t.Fatalf("forgetting did not increase decreasing pages: clean=%d forgetting=%d", decClean, decForg)
	}
	if res.ClassesForgetting[quality.ClassFluctuating] == 0 {
		t.Fatal("no fluctuating pages despite churn noise")
	}
}

// Window ablation: a longer measurement window reduces the estimation
// error for low-popularity pages (§9.1's statistical-noise remedy).
func TestAblationWindow(t *testing.T) {
	cfg := testHeadlineConfig(4)
	pts, err := AblationWindow(cfg, []float64{1, 12}, 26)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d window points", len(pts))
	}
	if pts[0].AvgErrQLow == 0 || pts[1].AvgErrQLow == 0 {
		t.Fatal("no low-popularity pages measured")
	}
	// The paper's prediction: longer windows help the low-PR half. The
	// effect is gradual, so compare the two extremes of the sweep.
	if pts[1].AvgErrQLow >= pts[0].AvgErrQLow {
		t.Fatalf("longer window did not reduce low-PR error: %.3f (1wk) vs %.3f (12wk)",
			pts[0].AvgErrQLow, pts[1].AvgErrQLow)
	}
	// Validation of bad sweeps.
	if _, err := AblationWindow(cfg, nil, 26); err == nil {
		t.Fatal("empty sweep accepted")
	}
	if _, err := AblationWindow(cfg, []float64{8, 2}, 26); err == nil {
		t.Fatal("non-increasing gaps accepted")
	}
	if _, err := AblationWindow(cfg, []float64{30}, 26); err == nil {
		t.Fatal("gap beyond future accepted")
	}
}

// ValidateModel: the agent simulation matches Theorem 1 within stochastic
// tolerance and converges to Q.
func TestValidateModel(t *testing.T) {
	cfg := usersim.Config{
		Users:        20000,
		VisitRate:    20000,
		Quality:      0.5,
		InitialLikes: 100,
		DT:           0.02,
		Seed:         42,
	}
	v, err := ValidateModel(cfg, 30)
	if err != nil {
		t.Fatal(err)
	}
	if v.MaxAbsDiff > 0.06 {
		t.Fatalf("sup-norm deviation %.3f too large", v.MaxAbsDiff)
	}
	if math.Abs(v.FinalSim-0.5) > 0.03 || math.Abs(v.FinalModel-0.5) > 0.03 {
		t.Fatalf("final popularity sim=%.3f model=%.3f, want ~0.5", v.FinalSim, v.FinalModel)
	}
	bad := cfg
	bad.Users = 0
	if _, err := ValidateModel(bad, 30); err == nil {
		t.Fatal("invalid sim config accepted")
	}
}

func BenchmarkHeadlineSmall(b *testing.B) {
	cfg := testHeadlineConfig(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunHeadline(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Estimator ablation: on a densely crawled noisy corpus the regression
// variant must not lose to the endpoint estimator, and the endpoint
// estimator must have had fluctuating pages to fall back on.
func TestAblationEstimator(t *testing.T) {
	cfg := testHeadlineConfig(5)
	cfg.Corpus.NoiseRate = 0.03 // make single crawls noisy
	res, err := AblationEstimator(cfg, 5, 2, 26)
	if err != nil {
		t.Fatal(err)
	}
	if res.FluctuatingFrac == 0 {
		t.Fatal("no fluctuating pages despite churn")
	}
	if res.AvgErrRegression > res.AvgErrEndpoint*1.02 {
		t.Fatalf("regression %.3f materially worse than endpoint %.3f",
			res.AvgErrRegression, res.AvgErrEndpoint)
	}
	if _, err := AblationEstimator(cfg, 2, 2, 26); err == nil {
		t.Fatal("too few crawls accepted")
	}
	if _, err := AblationEstimator(cfg, 5, 10, 26); err == nil {
		t.Fatal("schedule overflowing future accepted")
	}
}

// Solver ablation: all three PageRank solvers agree on the fixed point.
func TestAblationPageRankSolver(t *testing.T) {
	cfg := testHeadlineConfig(6)
	pts, err := AblationPageRankSolver(cfg, 20_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d solver points", len(pts))
	}
	for _, p := range pts[1:] {
		if p.MaxDiff > 1e-6 {
			t.Fatalf("solver %s deviates by %g", p.Name, p.MaxDiff)
		}
		if p.Iterations == 0 {
			t.Fatalf("solver %s reports zero iterations", p.Name)
		}
	}
}

// The estimator's advantage must be statistically significant, not a
// sampling fluke: the paired 95% bootstrap CI of errQ - errPR lies
// entirely below zero.
func TestHeadlineSignificance(t *testing.T) {
	res, err := RunHeadline(testHeadlineConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.DiffCILo >= res.DiffCIHi {
		t.Fatalf("degenerate CI [%g, %g]", res.DiffCILo, res.DiffCIHi)
	}
	if res.DiffCIHi >= 0 {
		t.Fatalf("advantage not significant: CI [%g, %g]", res.DiffCILo, res.DiffCIHi)
	}
}

// Rising stars: young high-quality pages rank at least as well under the
// quality estimate as under raw PageRank — the paper's motivating claim.
func TestRisingStars(t *testing.T) {
	cfg := testHeadlineConfig(1)
	res, err := RunRisingStars(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stars < 5 {
		t.Fatalf("only %d stars", res.Stars)
	}
	if res.MeanPercentileQ < res.MeanPercentilePR {
		t.Fatalf("quality percentile %.3f below PageRank %.3f",
			res.MeanPercentileQ, res.MeanPercentilePR)
	}
	// The future confirms the stars rise: their eventual percentile is
	// above their current PageRank percentile.
	if res.MeanPercentileFuture <= res.MeanPercentilePR {
		t.Fatalf("stars did not rise: future %.3f vs current %.3f",
			res.MeanPercentileFuture, res.MeanPercentilePR)
	}
	if _, err := RunRisingStars(cfg, -1); err == nil {
		t.Fatal("negative age window accepted")
	}
}

func TestPercentiles(t *testing.T) {
	p := percentiles([]float64{10, 30, 20, 30})
	// 10 -> rank 0, 20 -> rank 1, the two 30s share ranks 2,3 -> 2.5.
	want := []float64{0, 2.5 / 3, 1.0 / 3, 2.5 / 3}
	for i := range want {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Fatalf("percentiles = %v, want %v", p, want)
		}
	}
}

// Multi-seed robustness: the §8.2 shape holds with statistical
// significance for every corpus draw tested.
func TestHeadlineMultiSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed headline")
	}
	cfg := testHeadlineConfig(0)
	res, err := RunHeadlineMultiSeed(cfg, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Factors) != 3 {
		t.Fatalf("%d factors", len(res.Factors))
	}
	if res.MinFactor <= 1 {
		t.Fatalf("worst-seed improvement factor %.2f <= 1", res.MinFactor)
	}
	if !res.AllSignificant {
		t.Fatal("advantage not significant on every seed")
	}
	if _, err := RunHeadlineMultiSeed(cfg, nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
}

// The multi-seed fan-out must produce bitwise the same per-seed factors as
// running each seed through RunHeadline sequentially — parallelism may only
// change wall-clock, never results.
func TestMultiSeedMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed headline")
	}
	cfg := testHeadlineConfig(0)
	seeds := []int64{1, 2}
	par, err := RunHeadlineMultiSeed(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		run := cfg
		run.Corpus.Seed = seed
		h, err := RunHeadline(run)
		if err != nil {
			t.Fatal(err)
		}
		// Bitwise comparison on purpose: the fan-out contract is exact
		// equality with the sequential path.
		if want := h.AvgErrPR / h.AvgErrQ; math.Float64bits(par.Factors[i]) != math.Float64bits(want) {
			t.Fatalf("seed %d: parallel factor %v != sequential %v", seed, par.Factors[i], want)
		}
	}
}
