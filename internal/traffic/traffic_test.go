package traffic

import (
	"errors"
	"math"
	"testing"

	"pagequality/internal/model"
	"pagequality/internal/usersim"
)

// seriesFromModel samples the analytic visit rate V = r·P on a grid.
func seriesFromModel(p model.Params, tMax float64, steps int) Series {
	s := Series{
		T:      make([]float64, steps+1),
		Visits: make([]float64, steps+1),
	}
	for i := 0; i <= steps; i++ {
		t := tMax * float64(i) / float64(steps)
		s.T[i] = t
		s.Visits[i] = p.R * p.PopularityAt(t)
	}
	return s
}

func TestValidation(t *testing.T) {
	bad := []Series{
		{T: []float64{0}, Visits: []float64{1, 2}},
		{T: []float64{0}, Visits: []float64{1}},
		{T: []float64{0, 0}, Visits: []float64{1, 2}},
		{T: []float64{0, 1}, Visits: []float64{1, -2}},
	}
	for i, s := range bad {
		if err := s.Validate(); !errors.Is(err, ErrBadSeries) {
			t.Errorf("series %d accepted", i)
		}
	}
	good := Series{T: []float64{0, 1, 2}, Visits: []float64{1, 2, 3}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := good.EstimateQuality(0, 1); !errors.Is(err, ErrBadSeries) {
		t.Fatal("n=0 accepted")
	}
	if _, _, err := good.EstimateQuality(1, -1); !errors.Is(err, ErrBadSeries) {
		t.Fatal("r<0 accepted")
	}
}

// The traffic estimator recovers Q from a clean model-driven visit stream
// (Theorem 2 transported to traffic space).
func TestEstimateRecoversQFromModelTraffic(t *testing.T) {
	p := model.Params{Q: 0.35, N: 1e8, R: 1e8, P0: 1e-7}
	s := seriesFromModel(p, 80, 1600)
	est, ok, err := s.EstimateQuality(p.N, p.R)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(est)-1; i++ {
		if !ok[i] {
			t.Fatalf("sample %d not ok", i)
		}
		if math.Abs(est[i]-p.Q) > 0.003 {
			t.Fatalf("sample %d (t=%g): est %g, want %g", i, s.T[i], est[i], p.Q)
		}
	}
	latest, err := s.EstimateLatest(p.N, p.R)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(latest-p.Q) > 0.01 {
		t.Fatalf("latest estimate %g, want %g", latest, p.Q)
	}
}

func TestFromCumulative(t *testing.T) {
	// Cumulative counts of a constant 5 visits/unit stream.
	tt := []float64{0, 1, 2, 3}
	cum := []float64{0, 5, 10, 15}
	s, err := FromCumulative(tt, cum)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.T) != 3 {
		t.Fatalf("series length %d", len(s.T))
	}
	for i, v := range s.Visits {
		if v != 5 {
			t.Fatalf("rate[%d] = %g, want 5", i, v)
		}
	}
	if s.T[0] != 0.5 || s.T[2] != 2.5 {
		t.Fatalf("midpoints = %v", s.T)
	}
	// Validation of bad cumulative inputs.
	if _, err := FromCumulative([]float64{0, 1}, []float64{0, 1}); !errors.Is(err, ErrBadSeries) {
		t.Fatal("too-short cumulative accepted")
	}
	if _, err := FromCumulative([]float64{0, 1, 1}, []float64{0, 1, 2}); !errors.Is(err, ErrBadSeries) {
		t.Fatal("non-increasing times accepted")
	}
	if _, err := FromCumulative([]float64{0, 1, 2}, []float64{0, 5, 3}); !errors.Is(err, ErrBadSeries) {
		t.Fatal("decreasing counts accepted")
	}
	if _, err := FromCumulative([]float64{0, 1, 2}, []float64{0, 1}); !errors.Is(err, ErrBadSeries) {
		t.Fatal("ragged input accepted")
	}
}

func TestZeroTrafficHandling(t *testing.T) {
	s := Series{T: []float64{0, 1, 2}, Visits: []float64{0, 0, 4}}
	est, ok, err := s.EstimateQuality(100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ok[0] || ok[1] {
		t.Fatal("zero-rate samples marked ok")
	}
	if est[0] != 0 || est[1] != 0 {
		t.Fatal("zero-rate samples have nonzero estimates")
	}
	if !ok[2] {
		t.Fatal("positive sample not ok")
	}
	// EstimateLatest fails when the latest sample has no traffic.
	dead := Series{T: []float64{0, 1}, Visits: []float64{3, 0}}
	if _, err := dead.EstimateLatest(10, 10); !errors.Is(err, ErrBadSeries) {
		t.Fatal("dead latest sample accepted")
	}
}

func TestNegativeEstimateClamped(t *testing.T) {
	// Collapsing traffic would drive the estimate negative; it must clamp.
	s := Series{T: []float64{0, 1, 2}, Visits: []float64{100, 10, 1}}
	est, ok, err := s.EstimateQuality(1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range est {
		if ok[i] && est[i] < 0 {
			t.Fatalf("negative estimate %g at %d", est[i], i)
		}
	}
}

// End-to-end §9.1: measure the visit stream of an agent simulation via
// cumulative counts and recover the page's quality from traffic alone.
func TestEstimateFromSimulatedTraffic(t *testing.T) {
	cfg := usersim.Config{
		Users:        20000,
		VisitRate:    20000,
		Quality:      0.4,
		InitialLikes: 200,
		DT:           0.02,
		Seed:         9,
	}
	sim, err := usersim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Log cumulative visits once per simulated week.
	var times, cum []float64
	times = append(times, sim.Time())
	cum = append(cum, float64(sim.Visits()))
	for week := 1; week <= 24; week++ {
		if _, err := sim.Run(float64(week), 1<<30); err != nil {
			t.Fatal(err)
		}
		times = append(times, sim.Time())
		cum = append(cum, float64(sim.Visits()))
	}
	series, err := FromCumulative(times, cum)
	if err != nil {
		t.Fatal(err)
	}
	est, ok, err := series.EstimateQuality(float64(cfg.Users), cfg.VisitRate)
	if err != nil {
		t.Fatal(err)
	}
	// During the expansion phase the estimate must be near Q; average the
	// interior estimates to smooth the stochastic noise.
	sum, n := 0.0, 0
	for i := 1; i < len(est)-1; i++ {
		if ok[i] {
			sum += est[i]
			n++
		}
	}
	if n < 10 {
		t.Fatalf("only %d usable samples", n)
	}
	avg := sum / float64(n)
	if math.Abs(avg-cfg.Quality) > 0.08 {
		t.Fatalf("traffic-based quality %g, want ~%g", avg, cfg.Quality)
	}
}

func BenchmarkEstimateQuality(b *testing.B) {
	p := model.Params{Q: 0.35, N: 1e8, R: 1e8, P0: 1e-7}
	s := seriesFromModel(p, 80, 1600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.EstimateQuality(p.N, p.R); err != nil {
			b.Fatal(err)
		}
	}
}
