// Package traffic applies the quality estimator to Web traffic data, the
// §9.1 future-work direction: under the popularity-equivalence hypothesis
// (Proposition 1) the visit rate satisfies V(p,t) = r·P(p,t), so
//
//	Q(p) = (n/r) · (dV/dt)/V + V/r
//
// — the same estimator, computed from a site's visit counts instead of its
// link structure. The paper suggests NetRatings-style panel data; this
// package works with any visit-rate series, and the tests drive it with
// the agent simulator's visit streams.
package traffic

import (
	"errors"
	"fmt"
)

// ErrBadSeries reports invalid traffic input.
var ErrBadSeries = errors.New("traffic: bad series")

// Series is a sampled visit-rate series: Visits[i] is the number of visits
// per unit time observed around time T[i].
type Series struct {
	T      []float64
	Visits []float64
}

// Validate checks the series is usable for estimation.
func (s Series) Validate() error {
	if len(s.T) != len(s.Visits) {
		return fmt.Errorf("%w: %d times, %d rates", ErrBadSeries, len(s.T), len(s.Visits))
	}
	if len(s.T) < 2 {
		return fmt.Errorf("%w: need >= 2 samples", ErrBadSeries)
	}
	for i := 1; i < len(s.T); i++ {
		if s.T[i] <= s.T[i-1] {
			return fmt.Errorf("%w: times not strictly increasing at %d", ErrBadSeries, i)
		}
	}
	for i, v := range s.Visits {
		if v < 0 {
			return fmt.Errorf("%w: negative visit rate at %d", ErrBadSeries, i)
		}
	}
	return nil
}

// FromCumulative converts cumulative visit counts (as a traffic logger or
// the agent simulator would report) into a rate series: the rate over
// window [t_i, t_i+1] is attributed to the window midpoint.
func FromCumulative(t, cum []float64) (Series, error) {
	if len(t) != len(cum) {
		return Series{}, fmt.Errorf("%w: %d times, %d counts", ErrBadSeries, len(t), len(cum))
	}
	if len(t) < 3 {
		return Series{}, fmt.Errorf("%w: need >= 3 cumulative samples", ErrBadSeries)
	}
	s := Series{
		T:      make([]float64, len(t)-1),
		Visits: make([]float64, len(t)-1),
	}
	for i := 0; i+1 < len(t); i++ {
		dt := t[i+1] - t[i]
		if dt <= 0 {
			return Series{}, fmt.Errorf("%w: times not strictly increasing at %d", ErrBadSeries, i+1)
		}
		dv := cum[i+1] - cum[i]
		if dv < 0 {
			return Series{}, fmt.Errorf("%w: cumulative count decreased at %d", ErrBadSeries, i+1)
		}
		s.T[i] = (t[i] + t[i+1]) / 2
		s.Visits[i] = dv / dt
	}
	return s, nil
}

// EstimateQuality applies the traffic form of the estimator at every
// sample: central finite differences for dV/dt (one-sided at the
// endpoints), V/r for the popularity term. Samples with zero visit rate
// yield NaN-free zero estimates with ok=false in the companion mask.
func (s Series) EstimateQuality(n, r float64) (est []float64, ok []bool, err error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	if n <= 0 || r <= 0 {
		return nil, nil, fmt.Errorf("%w: n=%g r=%g", ErrBadSeries, n, r)
	}
	m := len(s.T)
	est = make([]float64, m)
	ok = make([]bool, m)
	slope := func(i, j int) float64 {
		return (s.Visits[j] - s.Visits[i]) / (s.T[j] - s.T[i])
	}
	for i := 0; i < m; i++ {
		if s.Visits[i] <= 0 {
			continue
		}
		var d float64
		switch i {
		case 0:
			d = slope(0, 1)
		case m - 1:
			d = slope(m-2, m-1)
		default:
			d = slope(i-1, i+1)
		}
		est[i] = n/r*d/s.Visits[i] + s.Visits[i]/r
		if est[i] < 0 {
			est[i] = 0
		}
		ok[i] = true
	}
	return est, ok, nil
}

// EstimateLatest returns the estimate at the most recent sample — what a
// live traffic-quality ranker would serve.
func (s Series) EstimateLatest(n, r float64) (float64, error) {
	est, ok, err := s.EstimateQuality(n, r)
	if err != nil {
		return 0, err
	}
	last := len(est) - 1
	if !ok[last] {
		return 0, fmt.Errorf("%w: no traffic at the latest sample", ErrBadSeries)
	}
	return est[last], nil
}
