package metrics

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestBootstrapMeanCIBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 2 + rng.NormFloat64()
	}
	lo, hi, err := BootstrapMeanCI(xs, 2000, 0.95, 7)
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if !(lo < mean && mean < hi) {
		t.Fatalf("CI [%g, %g] does not contain the sample mean %g", lo, hi, mean)
	}
	// Roughly ±1.96/sqrt(500) ≈ ±0.088 for unit-variance data.
	width := hi - lo
	if width < 0.1 || width > 0.3 {
		t.Fatalf("CI width %g implausible for n=500, sd~1", width)
	}
	// The true mean (2) should be inside too.
	if !(lo < 2 && 2 < hi) {
		t.Fatalf("CI [%g, %g] excludes the true mean", lo, hi)
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	lo1, hi1, err := BootstrapMeanCI(xs, 500, 0.9, 42)
	if err != nil {
		t.Fatal(err)
	}
	lo2, hi2, err := BootstrapMeanCI(xs, 500, 0.9, 42)
	if err != nil {
		t.Fatal(err)
	}
	if lo1 != lo2 || hi1 != hi2 { //pqlint:allow floateq same-seed bootstrap must reproduce the interval bit-for-bit
		t.Fatal("same seed gave different intervals")
	}
	lo3, _, err := BootstrapMeanCI(xs, 500, 0.9, 43)
	if err != nil {
		t.Fatal(err)
	}
	if lo3 == lo1 { //pqlint:allow floateq exact coincidence of different seeds is the (unlikely) case logged
		t.Log("different seeds coincided (possible, unlikely)")
	}
}

func TestBootstrapWidthShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	large := make([]float64, 4000)
	for i := range large {
		large[i] = rng.NormFloat64()
	}
	small := large[:100]
	loS, hiS, err := BootstrapMeanCI(small, 1000, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	loL, hiL, err := BootstrapMeanCI(large, 1000, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hiL-loL >= hiS-loS {
		t.Fatalf("CI did not shrink with n: %g vs %g", hiL-loL, hiS-loS)
	}
}

func TestBootstrapValidation(t *testing.T) {
	if _, _, err := BootstrapMeanCI(nil, 100, 0.95, 1); !errors.Is(err, ErrBadInput) {
		t.Fatal("empty sample accepted")
	}
	if _, _, err := BootstrapMeanCI([]float64{1}, 5, 0.95, 1); !errors.Is(err, ErrBadInput) {
		t.Fatal("too few resamples accepted")
	}
	if _, _, err := BootstrapMeanCI([]float64{1}, 100, 1.5, 1); !errors.Is(err, ErrBadInput) {
		t.Fatal("confidence > 1 accepted")
	}
}

func TestBootstrapMeanDiffCI(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 800
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		common := rng.NormFloat64() // pairing correlation
		a[i] = 1.0 + common + 0.2*rng.NormFloat64()
		b[i] = 1.3 + common + 0.2*rng.NormFloat64()
	}
	lo, hi, err := BootstrapMeanDiffCI(a, b, 2000, 0.95, 9)
	if err != nil {
		t.Fatal(err)
	}
	// True difference -0.3: the interval must exclude zero and contain it.
	if hi >= 0 {
		t.Fatalf("CI [%g, %g] does not exclude zero", lo, hi)
	}
	if !(lo < -0.3 && -0.3 < hi) {
		t.Fatalf("CI [%g, %g] excludes the true difference -0.3", lo, hi)
	}
	if math.Abs(hi-lo) > 0.1 {
		t.Fatalf("paired CI suspiciously wide: %g", hi-lo)
	}
	if _, _, err := BootstrapMeanDiffCI(a, b[:10], 100, 0.95, 1); !errors.Is(err, ErrBadInput) {
		t.Fatal("unpaired lengths accepted")
	}
}
