package metrics

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRelativeError(t *testing.T) {
	got, err := RelativeError(0.5, 1.0)
	if err != nil || math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("RelativeError(0.5,1) = (%g,%v)", got, err)
	}
	got, err = RelativeError(2.0, 1.0)
	if err != nil || math.Abs(got-1.0) > 1e-15 {
		t.Fatalf("RelativeError(2,1) = (%g,%v)", got, err)
	}
	if _, err := RelativeError(1, 0); !errors.Is(err, ErrBadInput) {
		t.Fatal("zero truth accepted")
	}
}

func TestRelativeErrors(t *testing.T) {
	errs, skipped, err := RelativeErrors([]float64{1, 2, 5}, []float64{2, 0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	if len(errs) != 2 || math.Abs(errs[0]-0.5) > 1e-15 || math.Abs(errs[1]-0.25) > 1e-15 {
		t.Fatalf("errs = %v", errs)
	}
	if _, _, err := RelativeErrors([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrBadInput) {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{4, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Mean-2.5) > 1e-15 || math.Abs(s.Median-2.5) > 1e-15 {
		t.Fatalf("mean/median = %g/%g", s.Mean, s.Median)
	}
	wantSD := math.Sqrt(1.25)
	if math.Abs(s.StdDev-wantSD) > 1e-12 {
		t.Fatalf("stddev = %g, want %g", s.StdDev, wantSD)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrBadInput) {
		t.Fatal("empty sample accepted")
	}
	one, err := Summarize([]float64{7})
	if err != nil || one.Median != 7 || one.P90 != 7 {
		t.Fatalf("singleton summary = %+v (%v)", one, err)
	}
}

func TestHistogramFigure5Binning(t *testing.T) {
	h := Figure5Histogram()
	if len(h.Bins) != 10 || h.Width != 0.1 {
		t.Fatalf("figure-5 histogram shape wrong: %+v", h)
	}
	// Paper semantics: "bars labeled as 0.1 correspond to the error range
	// between 0 and 0.1"; errors > 1 go into the last bin.
	values := []float64{0, 0.05, 0.1, 0.11, 0.95, 1.0, 1.5, 42}
	if err := h.AddAll(values); err != nil {
		t.Fatal(err)
	}
	if h.Total != len(values) {
		t.Fatalf("total = %d", h.Total)
	}
	if h.Bins[0] != 3 { // 0, 0.05, 0.1
		t.Fatalf("bin 0 = %d, want 3", h.Bins[0])
	}
	if h.Bins[1] != 1 { // 0.11
		t.Fatalf("bin 1 = %d, want 1", h.Bins[1])
	}
	if h.Bins[9] != 4 { // 0.95, 1.0, 1.5, 42
		t.Fatalf("bin 9 = %d, want 4", h.Bins[9])
	}
	if got := h.Fraction(0); math.Abs(got-3.0/8) > 1e-15 {
		t.Fatalf("Fraction(0) = %g", got)
	}
	fr := h.Fractions()
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("fractions sum to %g", sum)
	}
	if h.Label(0) != "0.1" || h.Label(9) != "1.0" {
		t.Fatalf("labels = %q, %q", h.Label(0), h.Label(9))
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10); !errors.Is(err, ErrBadInput) {
		t.Fatal("zero width accepted")
	}
	if _, err := NewHistogram(0.1, 0); !errors.Is(err, ErrBadInput) {
		t.Fatal("zero bins accepted")
	}
	h := Figure5Histogram()
	if err := h.Add(-0.1); !errors.Is(err, ErrBadInput) {
		t.Fatal("negative value accepted")
	}
	if err := h.Add(math.NaN()); !errors.Is(err, ErrBadInput) {
		t.Fatal("NaN accepted")
	}
	if h.Fraction(0) != 0 {
		t.Fatal("empty histogram fraction nonzero")
	}
}

func TestKendallTauPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	tau, err := KendallTau(a, a)
	if err != nil || math.Abs(tau-1) > 1e-12 {
		t.Fatalf("tau(identical) = %g (%v)", tau, err)
	}
	rev := []float64{5, 4, 3, 2, 1}
	tau, err = KendallTau(a, rev)
	if err != nil || math.Abs(tau+1) > 1e-12 {
		t.Fatalf("tau(reversed) = %g (%v)", tau, err)
	}
}

func TestKendallTauKnownValue(t *testing.T) {
	// Classic example: one discordant pair out of 6 -> tau = (5-1)/6 = 2/3.
	a := []float64{1, 2, 3, 4}
	b := []float64{1, 2, 4, 3}
	tau, err := KendallTau(a, b)
	if err != nil || math.Abs(tau-2.0/3) > 1e-12 {
		t.Fatalf("tau = %g (%v), want 2/3", tau, err)
	}
}

func TestKendallTauTies(t *testing.T) {
	// With ties, τ-b applies the tie correction. a has a tie; the tied pair
	// is neither concordant nor discordant.
	a := []float64{1, 1, 2}
	b := []float64{1, 2, 3}
	// C = 2 (pairs (0,2),(1,2)), D = 0, tiesA = 1, tiesB = 0, total = 3.
	// tau = 2 / sqrt((3-1)*(3-0)) = 2/sqrt(6).
	tau, err := KendallTau(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 / math.Sqrt(6)
	if math.Abs(tau-want) > 1e-12 {
		t.Fatalf("tau = %g, want %g", tau, want)
	}
}

func TestKendallTauErrors(t *testing.T) {
	if _, err := KendallTau([]float64{1}, []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Fatal("n=1 accepted")
	}
	if _, err := KendallTau([]float64{1, 2}, []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Fatal("length mismatch accepted")
	}
	if _, err := KendallTau([]float64{1, 1}, []float64{1, 2}); !errors.Is(err, ErrBadInput) {
		t.Fatal("constant ranking accepted")
	}
}

// Property: the O(n log n) Kendall implementation matches a brute-force
// O(n²) pair count on random data with ties.
func TestQuickKendallMatchesBruteForce(t *testing.T) {
	brute := func(a, b []float64) float64 {
		n := len(a)
		var c, d, ta, tb int64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				da := a[i] - a[j]
				db := b[i] - b[j]
				switch {
				case da == 0 && db == 0:
					ta++
					tb++
				case da == 0:
					ta++
				case db == 0:
					tb++
				case da*db > 0:
					c++
				default:
					d++
				}
			}
		}
		total := int64(n) * int64(n-1) / 2
		den := math.Sqrt(float64(total-ta)) * math.Sqrt(float64(total-tb))
		return float64(c-d) / den
	}
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 3
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = float64(rng.Intn(6)) // small alphabet to force ties
			b[i] = float64(rng.Intn(6))
		}
		got, err := KendallTau(a, b)
		if err != nil {
			// constant rankings are legitimately rejected
			return errors.Is(err, ErrBadInput)
		}
		return math.Abs(got-brute(a, b)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSpearmanRho(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	rho, err := SpearmanRho(a, a)
	if err != nil || math.Abs(rho-1) > 1e-12 {
		t.Fatalf("rho(identical) = %g (%v)", rho, err)
	}
	rev := []float64{5, 4, 3, 2, 1}
	rho, err = SpearmanRho(a, rev)
	if err != nil || math.Abs(rho+1) > 1e-12 {
		t.Fatalf("rho(reversed) = %g (%v)", rho, err)
	}
	// Monotone transform invariance: rho(a, exp(a)) = 1.
	exp := make([]float64, len(a))
	for i, x := range a {
		exp[i] = math.Exp(x)
	}
	rho, err = SpearmanRho(a, exp)
	if err != nil || math.Abs(rho-1) > 1e-12 {
		t.Fatalf("rho(monotone transform) = %g (%v)", rho, err)
	}
	if _, err := SpearmanRho([]float64{1, 1}, []float64{1, 2}); !errors.Is(err, ErrBadInput) {
		t.Fatal("constant input accepted")
	}
	if _, err := SpearmanRho([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrBadInput) {
		t.Fatal("length mismatch accepted")
	}
}

func TestFractionalRanksTies(t *testing.T) {
	r := fractionalRanks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] { //pqlint:allow floateq fractional ranks are exact half-integers by construction
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestTopKOverlap(t *testing.T) {
	a := []float64{9, 8, 7, 1, 2}
	b := []float64{9, 1, 7, 8, 2}
	// top3(a) = {0,1,2}, top3(b) = {0,3,2} -> overlap 2/3.
	ov, err := TopKOverlap(a, b, 3)
	if err != nil || math.Abs(ov-2.0/3) > 1e-12 {
		t.Fatalf("overlap = %g (%v)", ov, err)
	}
	if _, err := TopKOverlap(a, b, 0); !errors.Is(err, ErrBadInput) {
		t.Fatal("k=0 accepted")
	}
	if _, err := TopKOverlap(a, b, 6); !errors.Is(err, ErrBadInput) {
		t.Fatal("k>n accepted")
	}
	if _, err := TopKOverlap(a, b[:2], 1); !errors.Is(err, ErrBadInput) {
		t.Fatal("length mismatch accepted")
	}
}

func TestNDCG(t *testing.T) {
	rel := []float64{3, 2, 1, 0}
	// Scores that rank items exactly by relevance: NDCG = 1.
	got, err := NDCG([]float64{10, 9, 8, 7}, rel, 4)
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect NDCG = %g (%v)", got, err)
	}
	// Worst ordering scores strictly lower.
	worst, err := NDCG([]float64{1, 2, 3, 4}, rel, 4)
	if err != nil {
		t.Fatal(err)
	}
	if worst >= got {
		t.Fatalf("worst NDCG %g >= best %g", worst, got)
	}
	if _, err := NDCG([]float64{1, 2}, []float64{0, 0}, 2); !errors.Is(err, ErrBadInput) {
		t.Fatal("all-zero relevance accepted")
	}
	if _, err := NDCG([]float64{1, 2}, []float64{-1, 0}, 2); !errors.Is(err, ErrBadInput) {
		t.Fatal("negative relevance accepted")
	}
	if _, err := NDCG([]float64{1}, []float64{1, 2}, 1); !errors.Is(err, ErrBadInput) {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NDCG([]float64{1, 2}, []float64{1, 2}, 3); !errors.Is(err, ErrBadInput) {
		t.Fatal("k>n accepted")
	}
}

func TestCountInversions(t *testing.T) {
	cases := []struct {
		xs   []float64
		want int64
	}{
		{[]float64{}, 0},
		{[]float64{1}, 0},
		{[]float64{1, 2, 3}, 0},
		{[]float64{3, 2, 1}, 3},
		{[]float64{2, 1, 3}, 1},
		{[]float64{1, 1, 1}, 0}, // equal elements are not inversions
	}
	for _, c := range cases {
		if got := countInversions(c.xs); got != c.want {
			t.Errorf("inversions(%v) = %d, want %d", c.xs, got, c.want)
		}
	}
}

func BenchmarkKendallTau(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 10000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KendallTau(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
