package metrics

import (
	"fmt"
	"math"
	"sort"
)

// KendallTau computes the Kendall rank correlation τ-b between two score
// vectors in O(n log n) using a merge-sort inversion count, with the
// standard tie corrections. τ = 1 means identical orderings, -1 reversed.
//
//pqlint:allow floateq τ-b tie corrections require detecting exactly equal scores; approximate ties would change the statistic
func KendallTau(a, b []float64) (float64, error) {
	n := len(a)
	if n != len(b) {
		return 0, fmt.Errorf("%w: length mismatch %d != %d", ErrBadInput, n, len(b))
	}
	if n < 2 {
		return 0, fmt.Errorf("%w: need >= 2 observations", ErrBadInput)
	}
	// Sort indices by a (ties broken by b so tied-a groups are b-sorted,
	// which the tie accounting below requires).
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		ai, aj := a[idx[i]], a[idx[j]]
		if ai != aj {
			return ai < aj
		}
		return b[idx[i]] < b[idx[j]]
	})

	// Tie counts in a.
	tiesA := int64(0)
	// Joint ties (same a and same b).
	tiesJoint := int64(0)
	for i := 0; i < n; {
		j := i
		for j < n && a[idx[j]] == a[idx[i]] {
			j++
		}
		m := int64(j - i)
		tiesA += m * (m - 1) / 2
		// joint ties inside this a-group
		for k := i; k < j; {
			l := k
			for l < j && b[idx[l]] == b[idx[k]] {
				l++
			}
			mm := int64(l - k)
			tiesJoint += mm * (mm - 1) / 2
			k = l
		}
		i = j
	}

	// b values in a-order; count discordant pairs = inversions in this
	// sequence (pairs with a ascending but b descending).
	bs := make([]float64, n)
	for i, id := range idx {
		bs[i] = b[id]
	}
	inv := countInversions(bs)

	// Tie counts in b.
	tiesB := int64(0)
	sortedB := append([]float64(nil), b...)
	sort.Float64s(sortedB)
	for i := 0; i < n; {
		j := i
		for j < n && sortedB[j] == sortedB[i] {
			j++
		}
		m := int64(j - i)
		tiesB += m * (m - 1) / 2
		i = j
	}

	total := int64(n) * int64(n-1) / 2
	// Pairs tied in a only, in b only, or both do not count as
	// concordant/discordant.
	concordantPlusDiscordant := total - tiesA - tiesB + tiesJoint
	discordant := inv
	concordant := concordantPlusDiscordant - discordant
	den := math.Sqrt(float64(total-tiesA)) * math.Sqrt(float64(total-tiesB))
	if den == 0 {
		return 0, fmt.Errorf("%w: a ranking is constant", ErrBadInput)
	}
	return float64(concordant-discordant) / den, nil
}

// countInversions counts pairs i<j with xs[i] > xs[j] by merge sort.
// Equal elements are not inversions.
func countInversions(xs []float64) int64 {
	buf := make([]float64, len(xs))
	work := append([]float64(nil), xs...)
	return mergeCount(work, buf)
}

func mergeCount(xs, buf []float64) int64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := mergeCount(xs[:mid], buf[:mid]) + mergeCount(xs[mid:], buf[mid:])
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if xs[i] <= xs[j] {
			buf[k] = xs[i]
			i++
		} else {
			buf[k] = xs[j]
			inv += int64(mid - i)
			j++
		}
		k++
	}
	copy(buf[k:], xs[i:mid])
	copy(buf[k+mid-i:], xs[j:])
	copy(xs, buf[:n])
	return inv
}

// SpearmanRho computes Spearman's rank correlation: the Pearson
// correlation of the (average-of-ties) rank transforms.
func SpearmanRho(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: length mismatch %d != %d", ErrBadInput, len(a), len(b))
	}
	if len(a) < 2 {
		return 0, fmt.Errorf("%w: need >= 2 observations", ErrBadInput)
	}
	ra := fractionalRanks(a)
	rb := fractionalRanks(b)
	return pearson(ra, rb)
}

// fractionalRanks assigns 1-based ranks, averaging over ties.
//
//pqlint:allow floateq tie groups are exactly-equal scores by definition
func fractionalRanks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return xs[idx[i]] < xs[idx[j]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j)) / 2 // mean of ranks i+1..j
		for k := i; k < j; k++ {
			ranks[idx[k]] = avg
		}
		i = j
	}
	return ranks
}

func pearson(a, b []float64) (float64, error) {
	n := float64(len(a))
	var sa, sb float64
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0, fmt.Errorf("%w: constant input", ErrBadInput)
	}
	return cov / math.Sqrt(va*vb), nil
}

// TopKOverlap returns |topK(a) ∩ topK(b)| / k, where topK selects the k
// indices with the highest scores (ties broken by lower index).
func TopKOverlap(a, b []float64, k int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: length mismatch %d != %d", ErrBadInput, len(a), len(b))
	}
	if k < 1 || k > len(a) {
		return 0, fmt.Errorf("%w: k=%d outside [1,%d]", ErrBadInput, k, len(a))
	}
	ta := topKSet(a, k)
	tb := topKSet(b, k)
	inter := 0
	for i := range ta {
		if tb[i] {
			inter++
		}
	}
	return float64(inter) / float64(k), nil
}

// topKSet selects the k highest-scoring indices.
//
//pqlint:allow floateq exact-tie detection so equal scores fall through to the index tie-break
func topKSet(xs []float64, k int) map[int]bool {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		if xs[idx[i]] != xs[idx[j]] {
			return xs[idx[i]] > xs[idx[j]]
		}
		return idx[i] < idx[j]
	})
	set := make(map[int]bool, k)
	for _, i := range idx[:k] {
		set[i] = true
	}
	return set
}

// NDCG computes the normalised discounted cumulative gain at k of a
// ranking (scores) against non-negative relevance grades: how well the
// score ordering surfaces the truly relevant items near the top.
//
//pqlint:allow floateq exact-tie detection so equal scores fall through to the index tie-break
func NDCG(scores, relevance []float64, k int) (float64, error) {
	if len(scores) != len(relevance) {
		return 0, fmt.Errorf("%w: length mismatch %d != %d", ErrBadInput, len(scores), len(relevance))
	}
	if k < 1 || k > len(scores) {
		return 0, fmt.Errorf("%w: k=%d outside [1,%d]", ErrBadInput, k, len(scores))
	}
	for _, r := range relevance {
		if r < 0 || math.IsNaN(r) {
			return 0, fmt.Errorf("%w: negative relevance", ErrBadInput)
		}
	}
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if scores[order[i]] != scores[order[j]] {
			return scores[order[i]] > scores[order[j]]
		}
		return order[i] < order[j]
	})
	dcg := 0.0
	for pos := 0; pos < k; pos++ {
		dcg += relevance[order[pos]] / math.Log2(float64(pos)+2)
	}
	ideal := append([]float64(nil), relevance...)
	sort.Sort(sort.Reverse(sort.Float64Slice(ideal)))
	idcg := 0.0
	for pos := 0; pos < k; pos++ {
		idcg += ideal[pos] / math.Log2(float64(pos)+2)
	}
	if idcg == 0 {
		return 0, fmt.Errorf("%w: all relevance zero", ErrBadInput)
	}
	return dcg / idcg, nil
}
