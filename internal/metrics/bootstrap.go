package metrics

import (
	"fmt"
	"math/rand"
	"sort"
)

// BootstrapMeanCI computes a percentile-bootstrap confidence interval for
// the mean of xs: resamples with replacement, takes the empirical
// (1-confidence)/2 and (1+confidence)/2 quantiles of the resampled means.
// The seed makes the interval reproducible. Used to attach uncertainty to
// the headline error averages, which the paper reports as bare numbers.
func BootstrapMeanCI(xs []float64, resamples int, confidence float64, seed int64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, fmt.Errorf("%w: empty sample", ErrBadInput)
	}
	if resamples < 10 {
		return 0, 0, fmt.Errorf("%w: resamples=%d too few", ErrBadInput, resamples)
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, 0, fmt.Errorf("%w: confidence=%g outside (0,1)", ErrBadInput, confidence)
	}
	rng := rand.New(rand.NewSource(seed))
	n := len(xs)
	means := make([]float64, resamples)
	for b := 0; b < resamples; b++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += xs[rng.Intn(n)]
		}
		means[b] = sum / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - confidence) / 2
	lo = quantileSorted(means, alpha)
	hi = quantileSorted(means, 1-alpha)
	return lo, hi, nil
}

// BootstrapMeanDiffCI bootstraps the confidence interval of mean(a)-mean(b)
// for *paired* samples (a[i] and b[i] measured on the same page, as the
// per-page errors of the two estimators are). If the interval excludes
// zero, the difference is significant at the given confidence.
func BootstrapMeanDiffCI(a, b []float64, resamples int, confidence float64, seed int64) (lo, hi float64, err error) {
	if len(a) != len(b) {
		return 0, 0, fmt.Errorf("%w: paired samples of different lengths %d != %d", ErrBadInput, len(a), len(b))
	}
	diffs := make([]float64, len(a))
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	return BootstrapMeanCI(diffs, resamples, confidence, seed)
}
