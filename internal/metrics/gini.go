package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Gini computes the Gini coefficient of a non-negative sample: 0 for a
// perfectly equal distribution, approaching 1 as a single entry holds
// everything. It is the popularity-bias number of the search-feedback
// literature (Fortunato/Menczer's "egalitarian effect of search engines"
// argues over exactly this statistic): a ranking policy that concentrates
// attention on already-popular pages drives the popularity Gini up, a
// policy that spreads attention drives it down.
//
// The input is copied and sorted, so the caller's slice is untouched; the
// accumulation runs in sorted order, making the result independent of the
// input permutation (bitwise, the randx discipline).
func Gini(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("%w: empty sample", ErrBadInput)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if sorted[0] < 0 || math.IsNaN(sorted[len(sorted)-1]) {
		return 0, fmt.Errorf("%w: Gini needs non-negative values", ErrBadInput)
	}
	n := float64(len(sorted))
	var sum, weighted float64
	for i, x := range sorted {
		sum += x
		weighted += float64(i+1) * x
	}
	if sum == 0 {
		return 0, nil // everyone equally has nothing
	}
	return 2*weighted/(n*sum) - (n+1)/n, nil
}
