package metrics_test

import (
	"fmt"

	"pagequality/internal/metrics"
)

// The paper's evaluation in miniature: per-page relative errors of two
// predictors against the future PageRank, summarised and binned exactly
// like Figure 5.
func ExampleFigure5Histogram() {
	future := []float64{1.0, 2.0, 0.5, 4.0}
	estimate := []float64{0.9, 2.1, 0.8, 1.5}
	errs, skipped, err := metrics.RelativeErrors(estimate, future)
	if err != nil {
		panic(err)
	}
	h := metrics.Figure5Histogram()
	if err := h.AddAll(errs); err != nil {
		panic(err)
	}
	s, err := metrics.Summarize(errs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("skipped=%d mean=%.3f first-bin=%.2f last-bin=%.2f\n",
		skipped, s.Mean, h.Fraction(0), h.Fraction(9))
	// Output:
	// skipped=0 mean=0.344 first-bin=0.50 last-bin=0.00
}

// Kendall tau compares two rankings of the same pages: +1 identical
// order, -1 reversed.
func ExampleKendallTau() {
	byQuality := []float64{0.9, 0.7, 0.5, 0.3}
	byPageRank := []float64{0.8, 0.9, 0.4, 0.2} // one pair swapped
	tau, err := metrics.KendallTau(byQuality, byPageRank)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tau = %.3f\n", tau)
	// Output:
	// tau = 0.667
}
