// Package metrics implements the evaluation machinery of Section 8: the
// relative prediction error err(p), its Figure-5 histogram (0.1-wide bins
// with everything above 1 clamped into the last bin), summary statistics,
// and the rank-comparison measures (Kendall τ, Spearman ρ, top-k overlap,
// NDCG) used to compare quality-based and popularity-based rankings.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrBadInput reports invalid metric inputs.
var ErrBadInput = errors.New("metrics: bad input")

// RelativeError computes the paper's err(p) = |truth - estimate| / truth
// for one page. The truth must be non-zero.
func RelativeError(estimate, truth float64) (float64, error) {
	if truth == 0 {
		return 0, fmt.Errorf("%w: zero truth value", ErrBadInput)
	}
	return math.Abs((truth - estimate) / truth), nil
}

// RelativeErrors computes err(p) for aligned slices, skipping entries
// where the truth is zero (those pages cannot be scored) and reporting how
// many were skipped.
func RelativeErrors(estimates, truths []float64) (errs []float64, skipped int, err error) {
	if len(estimates) != len(truths) {
		return nil, 0, fmt.Errorf("%w: length mismatch %d != %d", ErrBadInput, len(estimates), len(truths))
	}
	errs = make([]float64, 0, len(truths))
	for i := range truths {
		if truths[i] == 0 {
			skipped++
			continue
		}
		errs = append(errs, math.Abs((truths[i]-estimates[i])/truths[i]))
	}
	return errs, skipped, nil
}

// Summary holds the summary statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Median   float64
	Min, Max float64
	StdDev   float64
	P90      float64 // 90th percentile
}

// Summarize computes summary statistics. An empty sample is an error.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, fmt.Errorf("%w: empty sample", ErrBadInput)
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	s.StdDev = math.Sqrt(varSum / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantileSorted(sorted, 0.5)
	s.P90 = quantileSorted(sorted, 0.9)
	return s, nil
}

// quantileSorted interpolates the q-quantile of an ascending sample.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is the Figure-5 style error histogram: Bins[i] counts values
// in (i·Width, (i+1)·Width] for i > 0 and [0, Width] for i = 0; values
// beyond the last edge are clamped into the final bin ("when the error was
// larger than 1, we put them into the last bin labeled as 1").
type Histogram struct {
	Width float64
	Bins  []int
	Total int
}

// NewHistogram builds a histogram with the given bin width and bin count.
func NewHistogram(width float64, bins int) (*Histogram, error) {
	if width <= 0 || bins < 1 {
		return nil, fmt.Errorf("%w: width=%g bins=%d", ErrBadInput, width, bins)
	}
	return &Histogram{Width: width, Bins: make([]int, bins)}, nil
}

// Figure5Histogram returns the paper's exact configuration: ten bins of
// width 0.1 labelled 0.1 … 1, with errors above 1 in the last bin.
func Figure5Histogram() *Histogram {
	h, err := NewHistogram(0.1, 10)
	if err != nil {
		panic(err) // constants are valid by construction
	}
	return h
}

// Add records one non-negative value.
func (h *Histogram) Add(x float64) error {
	if x < 0 || math.IsNaN(x) {
		return fmt.Errorf("%w: histogram value %g", ErrBadInput, x)
	}
	i := int(x / h.Width)
	if x > 0 && math.Mod(x, h.Width) == 0 {
		i-- // right-closed bins: 0.1 falls in the first bin
	}
	if i >= len(h.Bins) {
		i = len(h.Bins) - 1
	}
	h.Bins[i]++
	h.Total++
	return nil
}

// AddAll records every value, stopping at the first invalid one.
func (h *Histogram) AddAll(xs []float64) error {
	for _, x := range xs {
		if err := h.Add(x); err != nil {
			return err
		}
	}
	return nil
}

// Fraction returns the share of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Bins[i]) / float64(h.Total)
}

// Fractions returns the share per bin.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Bins))
	for i := range h.Bins {
		out[i] = h.Fraction(i)
	}
	return out
}

// Label returns the paper-style label of bin i (the bin's right edge).
func (h *Histogram) Label(i int) string {
	return fmt.Sprintf("%.1f", float64(i+1)*h.Width)
}
