// Package randx provides the deterministic random-variate machinery the
// simulation packages share: a counter-based splitmix64 stream that can be
// keyed on (seed, entity, tick) tuples — so concurrent per-entity draws are
// independent of scheduling and worker count — and the Poisson, binomial,
// Beta and Gamma samplers that previously existed as per-package copies in
// webcorpus and usersim.
//
// The samplers are generic over the minimal Source interface, which both
// *Stream and math/rand's *rand.Rand satisfy; instantiating them at a
// concrete type keeps the per-draw cost free of interface dispatch.
package randx

import (
	"math"
	"math/bits"
)

// Source is the minimal generator contract the samplers draw from.
type Source interface {
	Uint64() uint64
}

// Stream is a splitmix64 counter-based generator. Unlike a shared
// *rand.Rand, a Stream is a value: constructing one per (entity, tick) key
// gives every simulation entity its own reproducible random sequence whose
// draws do not depend on how work is scheduled across workers — the
// property the corpus tick kernel needs for bitwise worker-count
// invariance.
type Stream struct {
	state uint64
}

// golden is the splitmix64 increment (2^64/φ, odd); golden2 and golden3
// are its second and third multiples modulo 2^64, used to give each key
// component of NewStream its own offset.
const (
	golden  = 0x9E3779B97F4A7C15
	golden2 = 0x3C6EF372FE94F82A
	golden3 = 0xDAA66D2C7DDF743F
)

// mix64 is the splitmix64 output finalizer: an invertible avalanche over
// all 64 bits, so consecutive counter values produce decorrelated outputs.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Key folds a string into a 64-bit stream key with FNV-1a, so entities
// identified by name (URLs, request paths) can seed NewStream the same
// way integer-identified entities do.
func Key(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// NewStream returns the stream identified by (seed, key, tick). Each
// component passes through its own finalizer round before being folded in,
// so neighbouring keys or ticks (page 7/tick 8 vs page 8/tick 7) land in
// unrelated regions of the counter space.
func NewStream(seed int64, key, tick uint64) Stream {
	s := mix64(uint64(seed) + golden)
	s = mix64(s ^ mix64(key+golden2))
	s = mix64(s ^ mix64(tick+golden3))
	return Stream{state: s}
}

// Uint64 returns the next 64 random bits.
func (s *Stream) Uint64() uint64 {
	s.state += golden
	return mix64(s.state)
}

// Float64 returns a uniform variate in [0,1) with 53 random bits.
func Float64[S Source](src S) float64 {
	return float64(src.Uint64()>>11) * 0x1p-53
}

// Intn returns a uniform variate in [0,n). It panics if n <= 0, matching
// math/rand.
func Intn[S Source](src S, n int) int {
	if n <= 0 {
		panic("randx: Intn with n <= 0")
	}
	return int(uint64n(src, uint64(n)))
}

// uint64n returns a bias-free uniform variate in [0,n) using Lemire's
// multiply-shift method with rejection of the short low interval.
func uint64n[S Source](src S, n uint64) uint64 {
	hi, lo := bits.Mul64(src.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(src.Uint64(), n)
		}
	}
	return hi
}

// NormFloat64 returns a standard normal variate via the Marsaglia polar
// method. One variate of each accepted pair is returned and the other
// discarded: the samplers draw normals rarely (only above the
// approximation cutoffs), and statelessness keeps Stream a pure counter.
func NormFloat64[S Source](src S) float64 {
	for {
		u := 2*Float64(src) - 1
		v := 2*Float64(src) - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(q)/q)
	}
}

// poissonNormalCutoff is the λ above which Poisson switches from Knuth's
// exact product method (cost O(λ)) to the normal approximation; at λ = 30
// the skewness 1/√λ is already below 0.19. Validated by the moment tests
// on both sides of the cutoff.
const poissonNormalCutoff = 30

// Poisson returns a Poisson(lambda) variate: Knuth's product method for
// small lambda, normal approximation (rounded, clamped at 0) for large.
func Poisson[S Source](src S, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < poissonNormalCutoff {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= Float64(src)
			if p <= l {
				return k
			}
			k++
		}
	}
	v := lambda + math.Sqrt(lambda)*NormFloat64(src)
	if v < 0 {
		return 0
	}
	return int(math.Round(v))
}

// binomialExactMax is the largest trial count for which Binomial runs the
// exact Bernoulli loop; beyond it the normal approximation (clamped to
// [0,n]) takes over. Validated by the moment tests on both sides.
const binomialExactMax = 50

// Binomial returns a Binomial(n, p) variate: exact Bernoulli loop for
// small n, normal approximation for large n.
func Binomial[S Source](src S, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n < binomialExactMax {
		k := 0
		for i := 0; i < n; i++ {
			if Float64(src) < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	v := int(math.Round(mean + sd*NormFloat64(src)))
	if v < 0 {
		v = 0
	}
	if v > n {
		v = n
	}
	return v
}

// Gamma returns a Gamma(shape, 1) variate with the Marsaglia–Tsang method
// (boosted for shape < 1).
func Gamma[S Source](src S, shape float64) float64 {
	if shape < 1 {
		u := Float64(src)
		for u == 0 {
			u = Float64(src)
		}
		return Gamma(src, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := NormFloat64(src)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := Float64(src)
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta returns a Beta(a, b) variate via two Gamma variates.
func Beta[S Source](src S, a, b float64) float64 {
	x := Gamma(src, a)
	y := Gamma(src, b)
	return x / (x + y)
}
