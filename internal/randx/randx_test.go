package randx

import (
	"math"
	"math/rand"
	"testing"
)

// *rand.Rand must satisfy Source so the legacy seeded generators can feed
// the shared samplers.
var _ Source = (*rand.Rand)(nil)

func TestStreamDeterministic(t *testing.T) {
	a := NewStream(1, 7, 3)
	b := NewStream(1, 7, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same key diverged at draw %d", i)
		}
	}
}

func TestKeyDistinctAndStable(t *testing.T) {
	// FNV-1a of the empty string is the offset basis; a few known-distinct
	// inputs must neither collide nor vary between calls.
	if Key("") != 14695981039346656037 {
		t.Fatalf("Key(\"\") = %d", Key(""))
	}
	inputs := []string{"a", "b", "ab", "ba", "http://x/p/1.html", "http://x/p/2.html"}
	seen := make(map[uint64]string)
	for _, s := range inputs {
		k := Key(s)
		if k != Key(s) {
			t.Fatalf("Key(%q) unstable", s)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("Key collision between %q and %q", prev, s)
		}
		seen[k] = s
	}
}

func TestStreamKeySeparation(t *testing.T) {
	// Neighbouring keys, swapped components, and different seeds must all
	// start distinct sequences.
	variants := []Stream{
		NewStream(1, 7, 3),
		NewStream(1, 8, 3),
		NewStream(1, 7, 4),
		NewStream(1, 3, 7), // key/tick transposed
		NewStream(2, 7, 3),
	}
	firsts := make(map[uint64]int)
	for i := range variants {
		v := variants[i].Uint64()
		if prev, dup := firsts[v]; dup {
			t.Fatalf("streams %d and %d share their first draw", prev, i)
		}
		firsts[v] = i
	}
}

// Chi-squared uniformity of the stream's Float64 output: 64 buckets,
// 64_000 draws, df = 63. The 99.9th percentile of chi2(63) is 103.4; the
// run is deterministic, so a pass is stable.
func TestStreamUniformityChiSquared(t *testing.T) {
	s := NewStream(42, 0, 0)
	const buckets = 64
	const n = 64_000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[int(Float64(&s)*buckets)]++
	}
	expected := float64(n) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 103.4 {
		t.Fatalf("chi-squared %.1f exceeds the 99.9%% critical value 103.4", chi2)
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	s := NewStream(5, 0, 0)
	var seen [7]bool
	for i := 0; i < 1000; i++ {
		v := Intn(&s, 7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("Intn(7) never produced %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	Intn(&s, 0)
}

func TestNormFloat64Moments(t *testing.T) {
	s := NewStream(9, 0, 0)
	const trials = 200_000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		x := NormFloat64(&s)
		sum += x
		sumSq += x * x
	}
	mean := sum / trials
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %g, want ~0", mean)
	}
	if v := sumSq/trials - mean*mean; math.Abs(v-1) > 0.02 {
		t.Fatalf("normal variance %g, want ~1", v)
	}
}

// checkMoments draws trials variates and asserts the sample mean and
// variance against the distribution's analytic moments, with tolerances
// scaled to the sampling error of the (deterministic) run.
func checkMoments(t *testing.T, name string, draw func() float64, wantMean, wantVar, tolMean, tolVar float64) {
	t.Helper()
	const trials = 200_000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		x := draw()
		sum += x
		sumSq += x * x
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean-wantMean) > tolMean {
		t.Fatalf("%s: mean %g, want %g ± %g", name, mean, wantMean, tolMean)
	}
	if math.Abs(variance-wantVar) > tolVar {
		t.Fatalf("%s: variance %g, want %g ± %g", name, variance, wantVar, tolVar)
	}
}

// The Poisson sampler switches algorithms at λ = 30; both regimes — and
// in particular the first λ past the cutoff, where an approximation error
// would be largest — must reproduce the analytic mean and variance (= λ).
func TestPoissonMomentsAcrossCutoff(t *testing.T) {
	for _, lambda := range []float64{0.5, 5, 29.5, 30.5, 80} {
		s := NewStream(11, uint64(lambda*10), 0)
		checkMoments(t, "poisson", func() float64 {
			return float64(Poisson(&s, lambda))
		}, lambda, lambda, 0.02*lambda+0.02, 0.05*lambda+0.05)
	}
}

// The binomial sampler switches at n = 50 trials; validate the moments
// np and np(1-p) on both sides of the cutoff.
func TestBinomialMomentsAcrossCutoff(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{{10, 0.3}, {49, 0.5}, {51, 0.5}, {400, 0.1}} {
		s := NewStream(13, uint64(tc.n), 0)
		wantMean := float64(tc.n) * tc.p
		wantVar := wantMean * (1 - tc.p)
		checkMoments(t, "binomial", func() float64 {
			return float64(Binomial(&s, tc.n, tc.p))
		}, wantMean, wantVar, 0.02*wantMean+0.02, 0.05*wantVar+0.05)
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	s := NewStream(1, 0, 0)
	if Binomial(&s, 0, 0.5) != 0 || Binomial(&s, -1, 0.5) != 0 {
		t.Fatal("binomial n<=0 wrong")
	}
	if Binomial(&s, 10, 0) != 0 {
		t.Fatal("binomial p=0 wrong")
	}
	if Binomial(&s, 10, 1) != 10 {
		t.Fatal("binomial p=1 wrong")
	}
	for i := 0; i < 1000; i++ {
		if v := Binomial(&s, 1000, 0.3); v < 0 || v > 1000 {
			t.Fatalf("binomial out of range: %d", v)
		}
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	s := NewStream(2, 0, 0)
	if Poisson(&s, 0) != 0 || Poisson(&s, -3) != 0 {
		t.Fatal("poisson lambda<=0 wrong")
	}
	for i := 0; i < 1000; i++ {
		if v := Poisson(&s, 1e6); v < 0 {
			t.Fatalf("huge-lambda poisson negative: %d", v)
		}
	}
}

func TestBetaMoments(t *testing.T) {
	a, b := 2.0, 3.0
	s := NewStream(3, 0, 0)
	wantMean := a / (a + b)
	wantVar := a * b / ((a + b) * (a + b) * (a + b + 1))
	checkMoments(t, "beta", func() float64 {
		x := Beta(&s, a, b)
		if x < 0 || x > 1 {
			t.Fatalf("beta sample %g outside [0,1]", x)
		}
		return x
	}, wantMean, wantVar, 0.01, 0.005)
}

// Gamma is exercised in both the shape >= 1 regime and the boosted
// shape < 1 regime.
func TestGammaMoments(t *testing.T) {
	for _, shape := range []float64{0.5, 2.5} {
		s := NewStream(4, uint64(shape * 10), 0)
		checkMoments(t, "gamma", func() float64 {
			return Gamma(&s, shape)
		}, shape, shape, 0.02*shape+0.02, 0.08*shape+0.05)
	}
}

// The samplers must accept a *rand.Rand, reproducing the historical usage
// sites in usersim and webcorpus.
func TestSamplersAcceptRand(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	if v := Poisson(rng, 4); v < 0 {
		t.Fatalf("poisson via rand: %d", v)
	}
	if v := Binomial(rng, 20, 0.5); v < 0 || v > 20 {
		t.Fatalf("binomial via rand: %d", v)
	}
	if v := Beta(rng, 2, 3); v < 0 || v > 1 {
		t.Fatalf("beta via rand: %g", v)
	}
}

func BenchmarkStreamUint64(b *testing.B) {
	s := NewStream(1, 2, 3)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
}

func BenchmarkPoissonSmallLambda(b *testing.B) {
	s := NewStream(1, 2, 3)
	for i := 0; i < b.N; i++ {
		Poisson(&s, 3.5)
	}
}

func BenchmarkPoissonLargeLambda(b *testing.B) {
	s := NewStream(1, 2, 3)
	for i := 0; i < b.N; i++ {
		Poisson(&s, 500)
	}
}
