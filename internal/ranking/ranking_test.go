package ranking

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"pagequality/internal/search"
)

// buildCtx indexes nDocs documents all relevant to "alpha", with
// PageRank descending in document id and Quality ascending — so the two
// score-based policies produce opposite orders.
func buildCtx(t testing.TB, nDocs int) *Context {
	t.Helper()
	ix := search.NewIndex()
	for d := 0; d < nDocs; d++ {
		ix.Add(fmt.Sprintf("alpha document %d filler words", d))
	}
	ix.Freeze()
	pr := make([]float64, nDocs)
	q := make([]float64, nDocs)
	for d := 0; d < nDocs; d++ {
		pr[d] = float64(nDocs - d)
		q[d] = float64(d + 1)
	}
	return &Context{Index: ix, PageRank: pr, Quality: q, Seed: 42, Tick: 7}
}

func TestParse(t *testing.T) {
	cases := []struct {
		name    string
		epsilon float64
		want    string
		ok      bool
	}{
		{"none", 0, "none", true},
		{"", 0, "none", true},
		{"pagerank", 0, "pagerank", true},
		{"Quality", 0, "quality", true},
		{"randomized", 0.25, "randomized-0.25", true},
		{"randomized", -0.1, "", false},
		{"randomized", 1.5, "", false},
		{"hits", 0, "", false},
	}
	for _, tc := range cases {
		pol, err := Parse(tc.name, tc.epsilon)
		if tc.ok != (err == nil) {
			t.Errorf("Parse(%q, %g): err=%v, want ok=%v", tc.name, tc.epsilon, err, tc.ok)
			continue
		}
		if err != nil {
			if !errors.Is(err, ErrBadPolicy) {
				t.Errorf("Parse(%q): error %v is not ErrBadPolicy", tc.name, err)
			}
			continue
		}
		if pol.Name() != tc.want {
			t.Errorf("Parse(%q).Name() = %q, want %q", tc.name, pol.Name(), tc.want)
		}
	}
}

func TestNoneReturnsNothing(t *testing.T) {
	docs, err := None{}.Rank(buildCtx(t, 10), "alpha", 5)
	if err != nil || docs != nil {
		t.Fatalf("None.Rank = %v, %v; want nil, nil", docs, err)
	}
}

func TestScorePoliciesOrder(t *testing.T) {
	ctx := buildCtx(t, 8)
	byPR, err := ByPageRank{}.Rank(ctx, "alpha", 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(byPR, want) {
		t.Fatalf("ByPageRank order %v, want %v", byPR, want)
	}
	byQ, err := ByQuality{}.Rank(ctx, "alpha", 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{7, 6, 5, 4}; !reflect.DeepEqual(byQ, want) {
		t.Fatalf("ByQuality order %v, want %v", byQ, want)
	}
}

func TestRankNoHits(t *testing.T) {
	ctx := buildCtx(t, 5)
	for _, pol := range []Policy{ByPageRank{}, ByQuality{}, Randomized{Epsilon: 0.5}} {
		docs, err := pol.Rank(ctx, "nosuchterm", 3)
		if err != nil || docs != nil {
			t.Fatalf("%s on empty query: %v, %v", pol.Name(), docs, err)
		}
	}
}

// TestRandomizedEpsilonZeroEquivalence pins the degenerate case of the
// Pandey/Cho construction: with no exploration slots the partially
// randomized ranking IS pure score order.
func TestRandomizedEpsilonZeroEquivalence(t *testing.T) {
	ctx := buildCtx(t, 40)
	for _, k := range []int{1, 3, 10, 39, 40, 100} {
		pure, err := ByPageRank{}.Rank(ctx, "alpha", k)
		if err != nil {
			t.Fatal(err)
		}
		rand0, err := Randomized{Epsilon: 0}.Rank(ctx, "alpha", k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pure, rand0) {
			t.Fatalf("k=%d: epsilon=0 order %v differs from pure %v", k, rand0, pure)
		}
	}
}

func TestRandomizedConstruction(t *testing.T) {
	const nDocs, k = 50, 10
	const epsilon = 0.3 // 3 of 10 slots randomized
	ctx := buildCtx(t, nDocs)
	docs, err := Randomized{Epsilon: epsilon}.Rank(ctx, "alpha", k)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != k {
		t.Fatalf("got %d results, want %d", len(docs), k)
	}
	// Top (1-eps)k slots are exactly the pure prefix.
	nTop := k - 3
	pure, err := ByPageRank{}.Rank(ctx, "alpha", nDocs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(docs[:nTop], pure[:nTop]) {
		t.Fatalf("deterministic slots %v differ from pure prefix %v", docs[:nTop], pure[:nTop])
	}
	// Exploration slots come from the remainder, without replacement.
	rest := map[int]bool{}
	for _, d := range pure[nTop:] {
		rest[d] = true
	}
	seen := map[int]bool{}
	for _, d := range docs[nTop:] {
		if !rest[d] {
			t.Fatalf("exploration slot %d not drawn from the remainder", d)
		}
		if seen[d] {
			t.Fatalf("document %d sampled twice", d)
		}
		seen[d] = true
	}

	// Deterministic per (seed, query, tick)...
	again, err := Randomized{Epsilon: epsilon}.Rank(ctx, "alpha", k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(docs, again) {
		t.Fatalf("same (ctx, query, k) gave %v then %v", docs, again)
	}
	// ...but fresh exploration across ticks: some tick in a small window
	// must shuffle differently.
	varied := false
	for tick := uint64(0); tick < 8 && !varied; tick++ {
		other := *ctx
		other.Tick = 1000 + tick
		got, err := Randomized{Epsilon: epsilon}.Rank(&other, "alpha", k)
		if err != nil {
			t.Fatal(err)
		}
		varied = !reflect.DeepEqual(docs, got)
	}
	if !varied {
		t.Fatal("exploration slots identical across 8 different ticks")
	}
}

func TestRandomizedFewerDocsThanSlots(t *testing.T) {
	ctx := buildCtx(t, 6)
	docs, err := Randomized{Epsilon: 0.5}.Rank(ctx, "alpha", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 6 {
		t.Fatalf("got %d results, want all 6 relevant docs", len(docs))
	}
}

func TestRankValidation(t *testing.T) {
	ctx := buildCtx(t, 5)
	if _, err := (ByPageRank{}).Rank(ctx, "alpha", 0); !errors.Is(err, ErrBadPolicy) {
		t.Errorf("k=0: %v", err)
	}
	if _, err := (ByPageRank{}).Rank(nil, "alpha", 3); !errors.Is(err, ErrBadPolicy) {
		t.Errorf("nil ctx: %v", err)
	}
	short := *ctx
	short.PageRank = short.PageRank[:3]
	if _, err := (ByPageRank{}).Rank(&short, "alpha", 3); !errors.Is(err, ErrBadPolicy) {
		t.Errorf("score length mismatch: %v", err)
	}
	if _, err := (Randomized{Epsilon: 1.5}).Rank(ctx, "alpha", 3); !errors.Is(err, ErrBadPolicy) {
		t.Errorf("bad epsilon: %v", err)
	}
}

func BenchmarkRandomizedRank(b *testing.B) {
	ctx := buildCtx(b, 2000)
	pol := Randomized{Epsilon: 0.2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Tick = uint64(i)
		if _, err := pol.Rank(ctx, "alpha", 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkByPageRankRank(b *testing.B) {
	ctx := buildCtx(b, 2000)
	pol := ByPageRank{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pol.Rank(ctx, "alpha", 10); err != nil {
			b.Fatal(err)
		}
	}
}
