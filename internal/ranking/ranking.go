// Package ranking defines the pluggable ranking policies that close the
// paper's feedback loop: a search engine surfaces pages, users discover
// what is surfaced, and the resulting links feed the next ranking. The
// paper (and ROADMAP item 3) frames this as the experiment it proposed
// but could never run — how does the *choice of ranking function* shape
// long-run quality discovery and popularity bias?
//
// A Policy orders the relevant set of a query against a frozen search
// Context: an inverted index over the corpus texts plus per-document
// authority vectors (current PageRank and the live quality estimate).
// Three orderings are provided besides the no-search baseline:
//
//   - ByPageRank: the relevant set ordered purely by current PageRank —
//     the "rich get richer" status quo the paper criticises.
//   - ByQuality: ordered by the paper's Q(p) estimator (Equation 1
//     applied live between index refreshes, see quality.Live).
//   - Randomized: Pandey/Cho's partially randomized ranking ("Shuffling
//     a Stacked Deck"): the top (1-ε)·k slots go to the highest-PageRank
//     results, the remaining ε·k slots are drawn uniformly from the rest
//     of the relevant set — deliberately spending a small fraction of
//     result slots on exploration so new high-quality pages get a chance
//     to be seen.
//
// Every policy is deterministic. The ordered retrieval rides the frozen
// search kernel (bitwise identical at every worker count), and the
// Randomized draw comes from a randx counter stream keyed on
// (seed, query, tick) — so a searched corpus evolves bitwise identically
// no matter how the draw phase is scheduled.
package ranking

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"pagequality/internal/randx"
	"pagequality/internal/search"
)

// ErrBadPolicy reports an invalid policy configuration or Rank input.
var ErrBadPolicy = errors.New("ranking: bad policy")

// Context is the frozen state a policy ranks against. It is rebuilt
// periodically (the index refresh) while the underlying corpus keeps
// evolving — mirroring a real engine whose crawl lags the live Web.
type Context struct {
	// Index is the frozen inverted index over the corpus texts. Document
	// ids are dense and correspond to page NodeIDs at freeze time.
	Index *search.Index
	// PageRank is the current PageRank per document (len == NumDocs).
	PageRank []float64
	// Quality is the live Q(p) estimate per document (len == NumDocs).
	Quality []float64
	// Seed and Tick key the randomized policy's counter streams: the
	// draw for (seed, query, tick) is a pure function of the three.
	Seed int64
	Tick uint64
}

// validate checks the pieces a score-based policy needs and returns the
// selected score vector. Selection happens here, after the nil check, so
// a nil Context is an error rather than a panic.
func (c *Context) validate(sel func(*Context) []float64) ([]float64, error) {
	if c == nil || c.Index == nil {
		return nil, fmt.Errorf("%w: nil context or index", ErrBadPolicy)
	}
	scores := sel(c)
	if len(scores) != c.Index.NumDocs() {
		return nil, fmt.Errorf("%w: %d scores for %d docs", ErrBadPolicy, len(scores), c.Index.NumDocs())
	}
	return scores, nil
}

func pageRankScores(c *Context) []float64 { return c.PageRank }
func qualityScores(c *Context) []float64  { return c.Quality }

// Policy orders the documents relevant to a query. Implementations must
// be deterministic: the same (Context, query, k) always yields the same
// document list.
type Policy interface {
	// Name identifies the policy in reports and flags.
	Name() string
	// Rank returns up to k document ids for the query, best first. A nil
	// slice means the query retrieved nothing (not an error).
	Rank(ctx *Context, query string, k int) ([]int, error)
}

// None is the no-search baseline: discovery happens only through the
// popularity model, exactly as in the corpus without a search engine.
type None struct{}

// Name implements Policy.
func (None) Name() string { return "none" }

// Rank implements Policy: no results, ever.
func (None) Rank(*Context, string, int) ([]int, error) { return nil, nil }

// ByPageRank orders the relevant set purely by current PageRank
// (authority weight 1: relevance selects the set, authority orders it —
// the paper's Section-4 framing of a link-based engine).
type ByPageRank struct{}

// Name implements Policy.
func (ByPageRank) Name() string { return "pagerank" }

// Rank implements Policy.
func (ByPageRank) Rank(ctx *Context, query string, k int) ([]int, error) {
	if err := checkK(k); err != nil {
		return nil, err
	}
	scores, err := ctx.validate(pageRankScores)
	if err != nil {
		return nil, err
	}
	return rankByScore(ctx.Index, query, k, scores)
}

// ByQuality orders the relevant set by the live quality estimate — the
// paper's proposed unbiased ranking in the loop.
type ByQuality struct{}

// Name implements Policy.
func (ByQuality) Name() string { return "quality" }

// Rank implements Policy.
func (ByQuality) Rank(ctx *Context, query string, k int) ([]int, error) {
	if err := checkK(k); err != nil {
		return nil, err
	}
	scores, err := ctx.validate(qualityScores)
	if err != nil {
		return nil, err
	}
	return rankByScore(ctx.Index, query, k, scores)
}

// Randomized is Pandey/Cho's partially randomized ranking: of the k
// result slots, the top (1-ε)·k are filled in pure PageRank order and
// the remaining ε·k are drawn uniformly (without replacement) from the
// rest of the relevant set. Epsilon 0 degenerates to ByPageRank exactly;
// epsilon 1 shows every searcher a uniform sample of the relevant set.
type Randomized struct {
	// Epsilon is the randomized fraction of result slots, in [0,1].
	Epsilon float64
}

// Name implements Policy.
func (r Randomized) Name() string { return fmt.Sprintf("randomized-%.2g", r.Epsilon) }

// randomizedSalt keeps the policy's per-query streams disjoint from
// every other consumer of the corpus seed.
var randomizedSalt = randx.Key("ranking.randomized")

// Rank implements Policy.
func (r Randomized) Rank(ctx *Context, query string, k int) ([]int, error) {
	if err := checkK(k); err != nil {
		return nil, err
	}
	if r.Epsilon < 0 || r.Epsilon > 1 || math.IsNaN(r.Epsilon) {
		return nil, fmt.Errorf("%w: epsilon %g outside [0,1]", ErrBadPolicy, r.Epsilon)
	}
	scores, err := ctx.validate(pageRankScores)
	if err != nil {
		return nil, err
	}
	// Retrieve the whole relevant set in score order: the deterministic
	// slots are its prefix, the random slots sample its suffix.
	all, err := rankByScore(ctx.Index, query, ctx.Index.NumDocs(), scores)
	if err != nil || len(all) == 0 {
		return nil, err
	}
	if len(all) <= k {
		return all, nil // fewer relevant docs than slots: show them all
	}
	nRand := int(math.Round(r.Epsilon * float64(k)))
	if nRand == 0 {
		return all[:k], nil
	}
	nTop := k - nRand
	out := make([]int, nTop, k)
	copy(out, all[:nTop])
	// Partial Fisher–Yates over the remainder, fed by the (seed, query,
	// tick) counter stream: bitwise reproducible at any worker count and
	// fresh per tick, so repeated identical queries explore differently
	// over time but identically across runs.
	rest := append([]int(nil), all[nTop:]...)
	st := randx.NewStream(ctx.Seed, randomizedSalt^randx.Key(query), ctx.Tick)
	for i := 0; i < nRand; i++ {
		j := i + randx.Intn(&st, len(rest)-i)
		rest[i], rest[j] = rest[j], rest[i]
		out = append(out, rest[i])
	}
	return out, nil
}

// rankByScore retrieves the query's relevant set ordered purely by the
// authority vector (weight 1), returning document ids best-first.
func rankByScore(ix *search.Index, query string, k int, scores []float64) ([]int, error) {
	hits, err := ix.Search(query, search.Options{
		TopK:            k,
		Authority:       scores,
		AuthorityWeight: 1,
	})
	if err != nil {
		return nil, err
	}
	if len(hits) == 0 {
		return nil, nil
	}
	docs := make([]int, len(hits))
	for i, h := range hits {
		docs[i] = h.Doc
	}
	return docs, nil
}

func checkK(k int) error {
	if k < 1 {
		return fmt.Errorf("%w: k=%d", ErrBadPolicy, k)
	}
	return nil
}

// Parse resolves a policy by flag name: "none", "pagerank", "quality"
// or "randomized" (which takes the epsilon argument).
func Parse(name string, epsilon float64) (Policy, error) {
	switch strings.ToLower(name) {
	case "none", "":
		return None{}, nil
	case "pagerank":
		return ByPageRank{}, nil
	case "quality":
		return ByQuality{}, nil
	case "randomized":
		if epsilon < 0 || epsilon > 1 || math.IsNaN(epsilon) {
			return nil, fmt.Errorf("%w: epsilon %g outside [0,1]", ErrBadPolicy, epsilon)
		}
		return Randomized{Epsilon: epsilon}, nil
	}
	return nil, fmt.Errorf("%w: unknown policy %q (none|pagerank|quality|randomized)", ErrBadPolicy, name)
}
