// Package loadgen is the open-loop workload engine for the serving path:
// a deterministic zipf query stream (replayable from a seed via randx
// counter streams), an open-loop arrival schedule at a configurable rate,
// and a fixed-bucket log-scale latency histogram with a deterministic
// merge. "Open-loop" is the property that matters for honest load
// numbers: arrivals are scheduled by the clock, not by completions, so a
// slow server faces a growing backlog exactly as it would facing real
// users — closed-loop drivers that wait for each response before sending
// the next one silently throttle themselves to the server's pace and
// can never show saturation.
package loadgen

import (
	"fmt"
	"math/bits"
	"time"
)

// histSubBuckets is the number of linear sub-buckets per power-of-two
// octave: 16 sub-buckets bound the relative quantile error by 1/16
// (6.25%), plenty for p50/p95/p99 reporting while keeping the whole
// histogram a fixed 960-slot array.
const histSubBuckets = 16

// histBuckets spans every non-negative int64 nanosecond value: 16
// unit-width buckets below 16ns, then 16 sub-buckets for each octave
// 2^4..2^62.
const histBuckets = (63 - 3) * histSubBuckets

// Hist is a fixed-bucket log-scale histogram of latencies in
// nanoseconds. The bucket layout is a pure function of the value — high
// bits pick the octave, the next four bits the sub-bucket — so two
// histograms built from the same samples are identical byte for byte,
// and Merge (bucket-wise addition) is associative, commutative and
// loss-free: merging per-worker histograms yields exactly the histogram
// a single recorder would have built. The zero value is an empty
// histogram ready to use.
type Hist struct {
	counts [histBuckets]uint64
	n      uint64
	sum    int64
	max    int64
}

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	if v < histSubBuckets {
		return int(v)
	}
	o := bits.Len64(v) - 1 // v in [2^o, 2^(o+1)), o >= 4
	return (o-3)*histSubBuckets + int((v>>(o-4))&(histSubBuckets-1))
}

// bucketUpper returns the largest nanosecond value the bucket holds —
// the value Quantile reports, so quantiles are conservative (never
// under-stated) with at most 1/16 relative slack.
func bucketUpper(idx int) int64 {
	if idx < histSubBuckets {
		return int64(idx)
	}
	o := idx/histSubBuckets + 3
	sub := idx % histSubBuckets
	return int64(1)<<o + int64(sub+1)<<(o-4) - 1
}

// Record adds one latency sample.
func (h *Hist) Record(d time.Duration) {
	ns := int64(d)
	h.counts[bucketOf(ns)]++
	h.n++
	if ns > 0 {
		h.sum += ns
	}
	if ns > h.max {
		h.max = ns
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.n }

// Max returns the largest recorded sample exactly (not bucket-rounded).
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Mean returns the arithmetic mean of the recorded samples.
func (h *Hist) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.n))
}

// Quantile returns the latency at quantile q in [0,1]: the upper bound
// of the bucket containing the ceil(q*n)-th smallest sample. q outside
// [0,1] is clamped; an empty histogram reports 0.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.n))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i]
		if cum >= rank {
			return time.Duration(bucketUpper(i))
		}
	}
	return time.Duration(h.max)
}

// Merge folds other into h bucket by bucket. Merging any partition of a
// sample stream reproduces the single-recorder histogram exactly.
func (h *Hist) Merge(other *Hist) {
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// String summarises the distribution for human output.
func (h *Hist) String() string {
	return fmt.Sprintf("n=%d p50=%v p95=%v p99=%v max=%v",
		h.n, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}
