package loadgen

import (
	"testing"
	"time"
)

// TestHistBucketMapping sweeps values across the layout: every value
// lands in a bucket whose upper bound is at least the value, and the
// bucket's slack stays within one sub-bucket width (1/16 relative).
func TestHistBucketMapping(t *testing.T) {
	values := []int64{0, 1, 15, 16, 17, 31, 32, 63, 64, 100, 1000, 1023, 1024,
		999_999, 1_000_000, 1 << 30, (1 << 40) + 12345, 1<<62 + 9}
	for _, v := range values {
		idx := bucketOf(v)
		upper := bucketUpper(idx)
		if upper < v {
			t.Fatalf("value %d: bucket %d upper %d < value", v, idx, upper)
		}
		if v >= 16 && upper-v > v/16+1 {
			t.Fatalf("value %d: bucket %d upper %d overshoots by %d (> 1/16)", v, idx, upper, upper-v)
		}
		if idx > 0 && bucketUpper(idx-1) >= v {
			t.Fatalf("value %d: previous bucket %d already covers it", v, idx-1)
		}
	}
	// Boundaries are monotone and contiguous.
	for idx := 1; idx < histBuckets; idx++ {
		if bucketUpper(idx) <= bucketUpper(idx-1) {
			t.Fatalf("bucket %d upper %d <= bucket %d upper %d",
				idx, bucketUpper(idx), idx-1, bucketUpper(idx-1))
		}
	}
	if bucketOf(-5) != 0 {
		t.Fatal("negative values must clamp to bucket 0")
	}
}

// TestHistQuantile records a known uniform ramp and checks the reported
// quantiles stay within one bucket of the exact order statistics.
func TestHistQuantile(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	const n = 1000
	for i := 1; i <= n; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != n {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != n*time.Microsecond {
		t.Fatalf("max = %v", h.Max())
	}
	checks := []struct {
		q     float64
		exact time.Duration
	}{{0.50, 500 * time.Microsecond}, {0.95, 950 * time.Microsecond}, {0.99, 990 * time.Microsecond}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.exact || got > c.exact+c.exact/8 {
			t.Fatalf("q%.2f = %v, want within [%v, %v]", c.q, got, c.exact, c.exact+c.exact/8)
		}
	}
	if m := h.Mean(); m < 480*time.Microsecond || m > 520*time.Microsecond {
		t.Fatalf("mean = %v, want ~500µs", m)
	}
	// Quantile clamps out-of-range q.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("q outside [0,1] must clamp")
	}
}

// TestHistMergeDeterministic: merging any partition of a sample stream
// reproduces the single-recorder histogram exactly — the property that
// makes per-worker recording loss-free.
func TestHistMergeDeterministic(t *testing.T) {
	samples := make([]time.Duration, 0, 3000)
	for i := 0; i < 3000; i++ {
		samples = append(samples, time.Duration((i*2654435761)%50_000_000))
	}
	var whole Hist
	for _, s := range samples {
		whole.Record(s)
	}
	var parts [3]Hist
	for i, s := range samples {
		parts[i%3].Record(s)
	}
	var merged Hist
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged != whole {
		t.Fatal("merged partition differs from single-recorder histogram")
	}
	// Merge order does not matter.
	var reversed Hist
	for i := len(parts) - 1; i >= 0; i-- {
		reversed.Merge(&parts[i])
	}
	if reversed != whole {
		t.Fatal("merge is order-sensitive")
	}
}
