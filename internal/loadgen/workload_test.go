package loadgen

import (
	"fmt"
	"math"
	"testing"
)

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Fatal("n=0 must fail")
	}
	if _, err := NewZipf(5, -1); err == nil {
		t.Fatal("negative exponent must fail")
	}
	if _, err := NewZipf(5, math.NaN()); err == nil {
		t.Fatal("NaN exponent must fail")
	}
	if _, err := NewZipf(5, math.Inf(1)); err == nil {
		t.Fatal("Inf exponent must fail")
	}
	if _, err := NewWorkload(nil, 1, 1); err == nil {
		t.Fatal("empty vocabulary must fail")
	}
	if _, err := NewWorkload([]string{"a"}, -2, 1); err == nil {
		t.Fatal("workload must propagate zipf validation")
	}
}

func TestZipfRank(t *testing.T) {
	z, err := NewZipf(10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if z.N() != 10 {
		t.Fatalf("N = %d", z.N())
	}
	if r := z.Rank(0); r != 0 {
		t.Fatalf("Rank(0) = %d, want head rank 0", r)
	}
	if r := z.Rank(0.999_999_999); r != 9 {
		t.Fatalf("Rank(~1) = %d, want tail rank 9", r)
	}
	if r := z.Rank(1.5); r != 9 { // past the rounding edge: clamp, no panic
		t.Fatalf("Rank(1.5) = %d", r)
	}
	// Rank is monotone in u.
	prev := -1
	for u := 0.0; u < 1.0; u += 0.001 {
		r := z.Rank(u)
		if r < prev {
			t.Fatalf("Rank not monotone at u=%g: %d after %d", u, r, prev)
		}
		prev = r
	}
	// Uniform exponent spreads mass evenly: rank at u=0.55 of 10 ranks.
	uz, err := NewZipf(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r := uz.Rank(0.55); r != 5 {
		t.Fatalf("uniform Rank(0.55) = %d, want 5", r)
	}
}

// TestZipfSkew draws a long stream and checks the empirical head
// frequency against the analytic cdf — the zipf shape, not just
// validity.
func TestZipfSkew(t *testing.T) {
	vocab := make([]string, 20)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("q%02d", i)
	}
	w, err := NewWorkload(vocab, 1.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 20000
	freq := map[string]int{}
	for i := uint64(0); i < draws; i++ {
		freq[w.Query(i)]++
	}
	if freq["q00"] <= freq["q19"] {
		t.Fatalf("head q00 (%d) not more frequent than tail q19 (%d)", freq["q00"], freq["q19"])
	}
	// Head probability: 1 / sum(k^-1.1 for k=1..20) ≈ 0.318.
	total := 0.0
	for k := 1; k <= 20; k++ {
		total += math.Pow(float64(k), -1.1)
	}
	wantHead := 1 / total
	gotHead := float64(freq["q00"]) / draws
	if math.Abs(gotHead-wantHead) > 0.02 {
		t.Fatalf("head frequency %.3f, analytic %.3f", gotHead, wantHead)
	}
}

// TestWorkloadReplayable: the query stream is a pure function of
// (seed, i) — two workloads with the same seed agree everywhere,
// different seeds diverge, and Query is safe to call out of order.
func TestWorkloadReplayable(t *testing.T) {
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	a, err := NewWorkload(vocab, 1.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorkload(vocab, 1.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewWorkload(vocab, 1.1, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumQueries() != len(vocab) {
		t.Fatalf("NumQueries = %d", a.NumQueries())
	}
	diverged := false
	for i := uint64(0); i < 1000; i++ {
		if a.Query(i) != b.Query(i) {
			t.Fatalf("same seed diverged at i=%d", i)
		}
		if a.Query(i) != c.Query(i) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical 1000-query streams")
	}
	// Out-of-order and repeated calls see the same values.
	q500 := a.Query(500)
	a.Query(0)
	a.Query(999)
	if a.Query(500) != q500 {
		t.Fatal("Query(i) not stable across call order")
	}
}
