package loadgen

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"
)

// Options configures one open-loop run against a live qualityserve.
type Options struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8088".
	BaseURL string
	// Workload supplies request i's query (required).
	Workload *Workload
	// Rate is the offered arrival rate in requests per second (> 0).
	// Arrivals are scheduled at fixed intervals from the start instant;
	// they never wait for responses.
	Rate float64
	// Requests is the total number of arrivals to schedule (>= 1).
	Requests int
	// TopK is the k passed to /search (default 10).
	TopK int
	// Rank is the rank= parameter ("" omits it: server default).
	Rank string
	// Timeout bounds each request (0: no per-request deadline).
	Timeout time.Duration
	// Client issues the requests (default http.DefaultClient).
	Client *http.Client
	// Now and Sleep are the injected clock (required): the library never
	// reads wall time itself, per the walltime determinism lint. cmd/loadgen
	// wires time.Now and time.Sleep.
	Now   func() time.Time
	Sleep func(time.Duration)
}

func (o *Options) fill() error {
	if o.BaseURL == "" {
		return fmt.Errorf("loadgen: BaseURL required")
	}
	if o.Workload == nil {
		return fmt.Errorf("loadgen: Workload required")
	}
	if o.Rate <= 0 {
		return fmt.Errorf("loadgen: Rate must be > 0, got %g", o.Rate)
	}
	if o.Requests < 1 {
		return fmt.Errorf("loadgen: Requests must be >= 1, got %d", o.Requests)
	}
	if o.TopK == 0 {
		o.TopK = 10
	}
	if o.TopK < 1 {
		return fmt.Errorf("loadgen: TopK must be >= 1, got %d", o.TopK)
	}
	if o.Timeout < 0 {
		return fmt.Errorf("loadgen: negative Timeout %v", o.Timeout)
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.Now == nil || o.Sleep == nil {
		return fmt.Errorf("loadgen: Now and Sleep clocks required")
	}
	return nil
}

// Report is the outcome of one open-loop run. Latency is recorded only
// for requests the server answered 200 — the population whose p99 the
// admission controller promises to keep bounded; shed requests (503) and
// failures are counted separately so saturation is visible, never
// averaged away.
type Report struct {
	Requests int     `json:"requests"`
	Rate     float64 `json:"offered_rate_rps"`

	OK        uint64 `json:"ok"`
	Shed      uint64 `json:"shed"`       // HTTP 503: admission control
	BadStatus uint64 `json:"bad_status"` // any other non-200 status
	NetErr    uint64 `json:"net_err"`    // transport errors and timeouts

	Elapsed    time.Duration `json:"elapsed_ns"`
	Throughput float64       `json:"throughput_rps"` // OK completions per elapsed second
	ShedRate   float64       `json:"shed_rate"`      // Shed / Requests

	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`
	Max time.Duration `json:"max_ns"`

	Hist *Hist `json:"-"`
}

// sample is one completed request's outcome, fed to the collector.
type sample struct {
	ns     int64
	status int
	err    bool
}

// Run executes the open-loop schedule: request i departs at
// start + i/Rate regardless of how many responses are outstanding, each
// in its own goroutine, and the collector folds completions into the
// histogram as they land. Cancelling ctx stops scheduling new arrivals
// (in-flight requests sharing ctx are cancelled with it) and reports
// what completed.
func Run(ctx context.Context, opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	rep := &Report{Rate: opts.Rate, Hist: &Hist{}}
	samples := make(chan sample, 1024)
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		for s := range samples {
			switch {
			case s.err:
				rep.NetErr++
			case s.status == http.StatusOK:
				rep.OK++
				rep.Hist.Record(time.Duration(s.ns))
			case s.status == http.StatusServiceUnavailable:
				rep.Shed++
			default:
				rep.BadStatus++
			}
		}
	}()

	interval := float64(time.Second) / opts.Rate
	start := opts.Now()
	var wg sync.WaitGroup
	sent := 0
	for i := 0; i < opts.Requests && ctx.Err() == nil; i++ {
		target := start.Add(time.Duration(float64(i) * interval))
		if d := target.Sub(opts.Now()); d > 0 {
			opts.Sleep(d)
		}
		sent++
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			samples <- issue(ctx, &opts, uint64(i))
		}(i)
	}
	wg.Wait()
	close(samples)
	<-collectorDone

	rep.Requests = sent
	rep.Elapsed = opts.Now().Sub(start)
	if secs := rep.Elapsed.Seconds(); secs > 0 {
		rep.Throughput = float64(rep.OK) / secs
	}
	if sent > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(sent)
	}
	rep.P50 = rep.Hist.Quantile(0.50)
	rep.P95 = rep.Hist.Quantile(0.95)
	rep.P99 = rep.Hist.Quantile(0.99)
	rep.Max = rep.Hist.Max()
	return rep, ctx.Err()
}

// issue sends request i and measures the full exchange: from the send
// until the response body is drained, the latency a real client sees.
func issue(ctx context.Context, opts *Options, i uint64) sample {
	u := opts.BaseURL + "/search?q=" + url.QueryEscape(opts.Workload.Query(i)) +
		"&k=" + strconv.Itoa(opts.TopK)
	if opts.Rank != "" {
		u += "&rank=" + url.QueryEscape(opts.Rank)
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return sample{err: true}
	}
	t0 := opts.Now()
	resp, err := opts.Client.Do(req)
	if err != nil {
		return sample{err: true}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return sample{ns: int64(opts.Now().Sub(t0)), status: resp.StatusCode}
}
