package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is the injected clock for tests: Now advances a millisecond
// per call and Sleep jumps forward by the requested duration, so runs
// are fast and the library never touches wall time.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(0, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func (c *fakeClock) Sleep(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func testWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := NewWorkload([]string{"alpha", "beta", "gamma"}, 1.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunValidation(t *testing.T) {
	clk := newFakeClock()
	wl := testWorkload(t)
	good := Options{BaseURL: "http://x", Workload: wl, Rate: 100, Requests: 1,
		Now: clk.Now, Sleep: clk.Sleep}
	bad := []func(*Options){
		func(o *Options) { o.BaseURL = "" },
		func(o *Options) { o.Workload = nil },
		func(o *Options) { o.Rate = 0 },
		func(o *Options) { o.Rate = -3 },
		func(o *Options) { o.Requests = 0 },
		func(o *Options) { o.TopK = -1 },
		func(o *Options) { o.Timeout = -time.Second },
		func(o *Options) { o.Now = nil },
		func(o *Options) { o.Sleep = nil },
	}
	for i, mutate := range bad {
		o := good
		mutate(&o)
		if _, err := Run(context.Background(), o); err == nil {
			t.Fatalf("mutation %d: want validation error", i)
		}
	}
}

// TestRunAgainstStub drives the full open-loop runner against a stub
// server that sheds every 5th request (503) and rejects every 7th (418),
// and checks the report's accounting is exact: every scheduled arrival
// is classified exactly once and latencies are recorded only for 200s.
func TestRunAgainstStub(t *testing.T) {
	var arrivals atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/search" {
			t.Errorf("unexpected path %q", r.URL.Path)
		}
		q := r.URL.Query()
		switch q.Get("q") {
		case "alpha", "beta", "gamma":
		default:
			t.Errorf("query %q not from the vocabulary", q.Get("q"))
		}
		if q.Get("k") != "10" || q.Get("rank") != "quality" {
			t.Errorf("unexpected params k=%q rank=%q", q.Get("k"), q.Get("rank"))
		}
		n := arrivals.Add(1)
		switch {
		case n%5 == 0:
			w.Header().Set("Retry-After", "1")
			http.Error(w, "saturated", http.StatusServiceUnavailable)
		case n%7 == 0:
			http.Error(w, "teapot", http.StatusTeapot)
		default:
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{"hits": []any{}})
		}
	}))
	defer ts.Close()

	clk := newFakeClock()
	const n = 200
	rep, err := Run(context.Background(), Options{
		BaseURL:  ts.URL,
		Workload: testWorkload(t),
		Rate:     1000,
		Requests: n,
		Rank:     "quality",
		Now:      clk.Now,
		Sleep:    clk.Sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != n {
		t.Fatalf("Requests = %d, want %d", rep.Requests, n)
	}
	if got := rep.OK + rep.Shed + rep.BadStatus + rep.NetErr; got != n {
		t.Fatalf("classified %d of %d arrivals", got, n)
	}
	// Multiples of 5 in 1..200: 40 shed. Multiples of 7 not of 5: 23.
	if rep.Shed != 40 {
		t.Fatalf("Shed = %d, want 40", rep.Shed)
	}
	if rep.BadStatus != 23 {
		t.Fatalf("BadStatus = %d, want 23", rep.BadStatus)
	}
	if rep.OK != 137 {
		t.Fatalf("OK = %d, want 137", rep.OK)
	}
	if rep.NetErr != 0 {
		t.Fatalf("NetErr = %d", rep.NetErr)
	}
	if rep.Hist.Count() != rep.OK {
		t.Fatalf("histogram holds %d samples, want %d (200s only)", rep.Hist.Count(), rep.OK)
	}
	if rep.ShedRate != 0.2 {
		t.Fatalf("ShedRate = %g, want 0.2", rep.ShedRate)
	}
	if rep.Elapsed <= 0 || rep.Throughput <= 0 {
		t.Fatalf("Elapsed = %v, Throughput = %g", rep.Elapsed, rep.Throughput)
	}
	// Quantiles report bucket upper bounds, so P99 may exceed the exact
	// Max by up to one sub-bucket — but never by more.
	if rep.P50 <= 0 || rep.P99 < rep.P50 || rep.Max <= 0 {
		t.Fatalf("inconsistent quantiles p50=%v p99=%v max=%v", rep.P50, rep.P99, rep.Max)
	}
	if rep.P99 > time.Duration(bucketUpper(bucketOf(int64(rep.Max)))) {
		t.Fatalf("p99 %v beyond max's bucket (max %v)", rep.P99, rep.Max)
	}
}

// TestRunCancelled: a dead context stops scheduling immediately and the
// context error is surfaced.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	clk := newFakeClock()
	rep, err := Run(ctx, Options{
		BaseURL:  "http://127.0.0.1:0",
		Workload: testWorkload(t),
		Rate:     1000,
		Requests: 50,
		Now:      clk.Now,
		Sleep:    clk.Sleep,
	})
	if err == nil {
		t.Fatal("want context error")
	}
	if rep.Requests != 0 {
		t.Fatalf("scheduled %d arrivals on a dead context", rep.Requests)
	}
}

// TestReportJSON pins the wire names BENCH_8.json depends on.
func TestReportJSON(t *testing.T) {
	b, err := json.Marshal(&Report{})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"requests", "offered_rate_rps", "ok", "shed",
		"bad_status", "net_err", "elapsed_ns", "throughput_rps", "shed_rate",
		"p50_ns", "p95_ns", "p99_ns", "max_ns"} {
		if !strings.Contains(string(b), `"`+key+`"`) {
			t.Fatalf("report JSON missing %q: %s", key, b)
		}
	}
}
