package loadgen

import (
	"fmt"
	"math"
	"sort"

	"pagequality/internal/randx"
)

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s — the standard model of query popularity (a handful of
// head queries dominate, a long tail follows). The cumulative table is
// accumulated in rank order, so the sampler is bitwise deterministic
// across builds.
type Zipf struct {
	cdf []float64 // cdf[i] = P(rank <= i), cdf[n-1] == 1 up to rounding
}

// NewZipf builds a sampler over n ranks with exponent s >= 0 (s = 0 is
// uniform).
func NewZipf(n int, s float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("loadgen: zipf needs n >= 1, got %d", n)
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("loadgen: zipf exponent %g out of range", s)
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf}, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Rank maps a uniform variate u in [0,1) to its zipf rank: the first
// rank whose cumulative probability exceeds u.
func (z *Zipf) Rank(u float64) int {
	i := sort.Search(len(z.cdf), func(i int) bool { return z.cdf[i] > u })
	if i == len(z.cdf) { // u at or beyond the rounding edge of 1.0
		i = len(z.cdf) - 1
	}
	return i
}

// workloadKey salts the randx streams of the query workload so loadgen
// draws never collide with a simulation using the same seed.
var workloadKey = randx.Key("loadgen.workload")

// Workload is a replayable query stream: request i's query is a pure
// function of (seed, i), independent of scheduling, concurrency or
// which requests completed — the same property the corpus tick kernel
// gets from counter-based streams. Re-running a load test replays the
// identical query sequence.
type Workload struct {
	queries []string
	zipf    *Zipf
	seed    int64
}

// NewWorkload builds a zipf-distributed stream over the query list:
// queries[0] is the head of the distribution, later entries the tail.
func NewWorkload(queries []string, zipfS float64, seed int64) (*Workload, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("loadgen: workload needs at least one query")
	}
	z, err := NewZipf(len(queries), zipfS)
	if err != nil {
		return nil, err
	}
	return &Workload{queries: queries, zipf: z, seed: seed}, nil
}

// Query returns the i-th request's query string.
func (w *Workload) Query(i uint64) string {
	s := randx.NewStream(w.seed, workloadKey, i)
	return w.queries[w.zipf.Rank(randx.Float64(&s))]
}

// NumQueries returns the size of the query vocabulary.
func (w *Workload) NumQueries() int { return len(w.queries) }
