// Package textplot renders small ASCII line charts and bar charts so the
// experiment binaries can reproduce the paper's figures directly in a
// terminal, with no plotting dependencies.
package textplot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// ErrBadPlot reports unplottable input.
var ErrBadPlot = errors.New("textplot: bad plot")

// Series is one line on a chart.
type Series struct {
	// Name labels the series in the legend.
	Name string
	// X and Y are the data points (equal length, X ascending recommended).
	X, Y []float64
	// Glyph is the mark used for this series ('*' if zero).
	Glyph rune
}

// Line renders the series into w as an ASCII chart of the given interior
// width and height (characters).
func Line(w io.Writer, title string, series []Series, width, height int) error {
	if width < 10 || height < 4 {
		return fmt.Errorf("%w: chart %dx%d too small", ErrBadPlot, width, height)
	}
	if len(series) == 0 {
		return fmt.Errorf("%w: no series", ErrBadPlot)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("%w: series %q has %d xs, %d ys", ErrBadPlot, s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			points++
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if points == 0 {
		return fmt.Errorf("%w: no finite points", ErrBadPlot)
	}
	//pqlint:allow floateq a degenerate axis is exactly min==max after math.Min/Max folding; widen it by 1
	if maxX == minX {
		maxX = minX + 1
	}
	//pqlint:allow floateq a degenerate axis is exactly min==max after math.Min/Max folding; widen it by 1
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for _, s := range series {
		glyph := s.Glyph
		if glyph == 0 {
			glyph = '*'
		}
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = glyph
		}
	}
	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	yLabelW := 10
	for r, row := range grid {
		yVal := maxY - (maxY-minY)*float64(r)/float64(height-1)
		if _, err := fmt.Fprintf(w, "%*.3g |%s|\n", yLabelW, yVal, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s+\n", strings.Repeat(" ", yLabelW), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %-*.4g%*.4g\n", strings.Repeat(" ", yLabelW), width/2, minX, width-width/2, maxX); err != nil {
		return err
	}
	for _, s := range series {
		glyph := s.Glyph
		if glyph == 0 {
			glyph = '*'
		}
		if _, err := fmt.Fprintf(w, "%s  %c %s\n", strings.Repeat(" ", yLabelW), glyph, s.Name); err != nil {
			return err
		}
	}
	return nil
}

// BarGroup is one series in a grouped horizontal bar chart.
type BarGroup struct {
	Name   string
	Values []float64
	Glyph  rune
}

// Bars renders grouped horizontal bars (one row per label and group),
// scaled to the given width — the layout used for the Figure-5 histogram.
func Bars(w io.Writer, title string, labels []string, groups []BarGroup, width int) error {
	if width < 10 {
		return fmt.Errorf("%w: width %d too small", ErrBadPlot, width)
	}
	if len(labels) == 0 || len(groups) == 0 {
		return fmt.Errorf("%w: empty chart", ErrBadPlot)
	}
	maxV := 0.0
	for _, g := range groups {
		if len(g.Values) != len(labels) {
			return fmt.Errorf("%w: group %q has %d values for %d labels", ErrBadPlot, g.Name, len(g.Values), len(labels))
		}
		for _, v := range g.Values {
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("%w: negative or NaN bar value", ErrBadPlot)
			}
			maxV = math.Max(maxV, v)
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	labW := 0
	for _, l := range labels {
		if len(l) > labW {
			labW = len(l)
		}
	}
	for i, label := range labels {
		for gi, g := range groups {
			glyph := g.Glyph
			if glyph == 0 {
				glyph = '#'
			}
			n := int(g.Values[i] / maxV * float64(width))
			lab := label
			if gi > 0 {
				lab = strings.Repeat(" ", len(label))
			}
			if _, err := fmt.Fprintf(w, "%*s |%s %.3f\n", labW, lab,
				strings.Repeat(string(glyph), n), g.Values[i]); err != nil {
				return err
			}
		}
	}
	for _, g := range groups {
		glyph := g.Glyph
		if glyph == 0 {
			glyph = '#'
		}
		if _, err := fmt.Fprintf(w, "%*s  %c %s\n", labW, "", glyph, g.Name); err != nil {
			return err
		}
	}
	return nil
}
