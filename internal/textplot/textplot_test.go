package textplot

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestLineBasic(t *testing.T) {
	var buf bytes.Buffer
	s := Series{Name: "P(p,t)", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 4, 9}, Glyph: 'o'}
	if err := Line(&buf, "Figure X", []Series{s}, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure X") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "o") {
		t.Fatal("glyph missing")
	}
	if !strings.Contains(out, "P(p,t)") {
		t.Fatal("legend missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + x labels + legend
	if len(lines) != 1+10+1+1+1 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
}

func TestLineMultiSeries(t *testing.T) {
	var buf bytes.Buffer
	a := Series{Name: "up", X: []float64{0, 1}, Y: []float64{0, 1}, Glyph: '*'}
	b := Series{Name: "down", X: []float64{0, 1}, Y: []float64{1, 0}, Glyph: '+'}
	if err := Line(&buf, "", []Series{a, b}, 20, 6); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("series glyphs missing")
	}
}

func TestLineDegenerateRanges(t *testing.T) {
	var buf bytes.Buffer
	flat := Series{Name: "flat", X: []float64{0, 1, 2}, Y: []float64{5, 5, 5}}
	if err := Line(&buf, "", []Series{flat}, 20, 5); err != nil {
		t.Fatalf("flat series: %v", err)
	}
	single := Series{Name: "dot", X: []float64{3}, Y: []float64{4}}
	buf.Reset()
	if err := Line(&buf, "", []Series{single}, 20, 5); err != nil {
		t.Fatalf("single point: %v", err)
	}
}

func TestLineErrors(t *testing.T) {
	var buf bytes.Buffer
	ok := Series{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}}
	if err := Line(&buf, "", []Series{ok}, 5, 3); !errors.Is(err, ErrBadPlot) {
		t.Fatal("tiny chart accepted")
	}
	if err := Line(&buf, "", nil, 20, 10); !errors.Is(err, ErrBadPlot) {
		t.Fatal("no series accepted")
	}
	ragged := Series{Name: "r", X: []float64{0, 1}, Y: []float64{0}}
	if err := Line(&buf, "", []Series{ragged}, 20, 10); !errors.Is(err, ErrBadPlot) {
		t.Fatal("ragged series accepted")
	}
	nan := Series{Name: "n", X: []float64{math.NaN()}, Y: []float64{math.NaN()}}
	if err := Line(&buf, "", []Series{nan}, 20, 10); !errors.Is(err, ErrBadPlot) {
		t.Fatal("all-NaN series accepted")
	}
}

func TestBars(t *testing.T) {
	var buf bytes.Buffer
	labels := []string{"0.1", "0.2", "1.0"}
	groups := []BarGroup{
		{Name: "Q(p)", Values: []float64{0.62, 0.15, 0.05}, Glyph: '#'},
		{Name: "PR(p,t3)", Values: []float64{0.46, 0.12, 0.10}, Glyph: '='},
	}
	if err := Bars(&buf, "Figure 5", labels, groups, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 5", "0.1", "1.0", "Q(p)", "PR(p,t3)", "#", "="} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The largest value gets the longest bar.
	if !strings.Contains(out, strings.Repeat("#", 40)) {
		t.Fatalf("max bar not full width:\n%s", out)
	}
}

func TestBarsErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Bars(&buf, "", []string{"a"}, []BarGroup{{Name: "g", Values: []float64{1}}}, 5); !errors.Is(err, ErrBadPlot) {
		t.Fatal("narrow chart accepted")
	}
	if err := Bars(&buf, "", nil, nil, 40); !errors.Is(err, ErrBadPlot) {
		t.Fatal("empty chart accepted")
	}
	if err := Bars(&buf, "", []string{"a", "b"}, []BarGroup{{Name: "g", Values: []float64{1}}}, 40); !errors.Is(err, ErrBadPlot) {
		t.Fatal("ragged group accepted")
	}
	if err := Bars(&buf, "", []string{"a"}, []BarGroup{{Name: "g", Values: []float64{-1}}}, 40); !errors.Is(err, ErrBadPlot) {
		t.Fatal("negative value accepted")
	}
	if err := Bars(&buf, "", []string{"a"}, []BarGroup{{Name: "g", Values: []float64{0}}}, 40); err != nil {
		t.Fatalf("all-zero chart rejected: %v", err)
	}
}
