package crawler

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pagequality/internal/webcorpus"
	"pagequality/internal/webserver"
)

// TestCrawlUnderFaultsBitwiseParity is the acceptance test for the
// fault-tolerant crawl substrate: a crawl through an error/rate-limit/
// timeout/latency storm must retry its way to a graph bitwise identical
// to a fault-free crawl of the same site. Graphs align across the two
// server instances because nodes are keyed by rel=canonical corpus URLs.
func TestCrawlUnderFaultsBitwiseParity(t *testing.T) {
	sim := testCorpus(t, 9)
	g := sim.Graph().Clone()
	srv, err := webserver.New(g, sim.AllTexts(webcorpus.TextOptions{MinWords: 10, MaxWords: 20}))
	if err != nil {
		t.Fatal(err)
	}

	// Fault-free reference crawl.
	healthy := httptest.NewServer(srv)
	defer healthy.Close()
	seeds, err := FetchSeeds(context.Background(), healthy.Client(), healthy.URL+"/seeds.txt")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Crawl(Config{Seeds: seeds, Client: healthy.Client(), Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Stats.Errors != 0 {
		t.Fatalf("reference crawl saw %d errors", ref.Stats.Errors)
	}
	want := string(ref.Graph.AppendBinary(nil))

	for _, seed := range []int64{1, 2, 3} {
		faults, err := webserver.WithFaults(srv, webserver.FaultConfig{
			ErrorRate:     0.2,
			RateLimitRate: 0.1,
			TimeoutRate:   0.05,
			Latency:       time.Millisecond,
			Seed:          seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(faults)
		faultSeeds := make([]string, len(seeds))
		for i, s := range seeds {
			faultSeeds[i] = strings.Replace(s, healthy.URL, ts.URL, 1)
		}
		res, err := Crawl(Config{
			Seeds:          faultSeeds,
			Client:         ts.Client(),
			Concurrency:    4,
			RequestTimeout: 200 * time.Millisecond,
			Retry:          Retry{MaxAttempts: 8, Sleep: noSleep},
		})
		ts.Close()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Stats.Errors != 0 {
			t.Fatalf("seed %d: %d URLs exhausted their retries", seed, res.Stats.Errors)
		}
		if res.Stats.Retries == 0 {
			t.Fatalf("seed %d: fault storm triggered no retries", seed)
		}
		if res.Stats.Fetched != ref.Stats.Fetched {
			t.Fatalf("seed %d: fetched %d pages, reference fetched %d",
				seed, res.Stats.Fetched, ref.Stats.Fetched)
		}
		if string(res.Graph.AppendBinary(nil)) != want {
			t.Fatalf("seed %d: faulted crawl graph differs from fault-free crawl", seed)
		}
		if fs := faults.Stats(); fs.Errors == 0 && fs.RateLimited == 0 && fs.Timeouts == 0 {
			t.Fatalf("seed %d: middleware injected no faults (stats %+v)", seed, fs)
		}
	}
}
