package crawler

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// HTTPError reports a non-200 response, carrying enough structure for the
// retry engine to classify it and honour the server's Retry-After hint.
type HTTPError struct {
	URL    string
	Status int
	// RetryAfter is the parsed Retry-After delay (zero when the header was
	// absent or unparseable); servers send it with 429 and 503.
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("crawler: %s: status %d", e.URL, e.Status)
}

// errClass partitions fetch failures by whether re-requesting can help.
type errClass int

const (
	// classPermanent failures will not resolve on their own: 404s, other
	// non-retryable statuses, malformed URLs, unparseable documents.
	classPermanent errClass = iota
	// classTransient failures are expected to clear: network errors,
	// timeouts, 5xx server errors, and 429 rate limiting.
	classTransient
)

// classify maps a fetch error to its retryability class.
func classify(err error) errClass {
	var he *HTTPError
	if errors.As(err, &he) {
		switch {
		case he.Status == http.StatusTooManyRequests,
			he.Status == http.StatusRequestTimeout,
			he.Status >= 500:
			return classTransient
		default:
			return classPermanent
		}
	}
	var ue *url.Error
	if errors.As(err, &ue) && ue.Op == "parse" {
		return classPermanent // malformed URL: no request was ever sent
	}
	var ne net.Error
	if errors.As(err, &ne) || errors.Is(err, context.DeadlineExceeded) {
		return classTransient // transport-level failure or timeout
	}
	return classPermanent // e.g. the document failed to parse
}

// isTimeout reports whether the attempt failed by exceeding a deadline
// (the per-request timeout or a transport-level one).
func isTimeout(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded)
}

// isRateLimited reports whether the attempt was answered with 429.
func isRateLimited(err error) bool {
	var he *HTTPError
	return errors.As(err, &he) && he.Status == http.StatusTooManyRequests
}

// retryAfterOf extracts the server's Retry-After hint from an attempt
// error, or zero when none was given.
func retryAfterOf(err error) time.Duration {
	var he *HTTPError
	if errors.As(err, &he) {
		return he.RetryAfter
	}
	return 0
}

// parseRetryAfter reads a response's Retry-After header, accepting the
// delay-seconds form (the HTTP-date form is ignored — our synthetic
// servers never send it, and a zero hint just falls back to backoff).
func parseRetryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
