// Package crawler implements the Web-download substrate of the paper's
// experiment (§8.1): a concurrent HTTP crawler that starts from seed
// pages, follows anchors until no new pages are reachable or a per-site
// page cap is hit ("we downloaded pages from each site until we could not
// reach any more pages or we downloaded the maximum of 200,000 pages"),
// and reconstructs the directed link graph. Pages are keyed by their
// rel=canonical URL when present, so crawls of different server instances
// align snapshot to snapshot.
package crawler

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"

	"pagequality/internal/graph"
)

// Config parameterises a crawl.
type Config struct {
	// Seeds are the absolute URLs to start from.
	Seeds []string
	// MaxPagesPerSite caps the pages fetched per canonical host (the
	// paper used 200 000). Zero means unlimited.
	MaxPagesPerSite int
	// MaxPages caps the total fetched pages. Zero means unlimited.
	MaxPages int
	// Concurrency is the number of parallel fetchers (default 8).
	Concurrency int
	// Client performs the requests (default http.DefaultClient).
	Client *http.Client
	// MaxBodyBytes bounds how much of each response is read (default 1 MiB).
	MaxBodyBytes int64
	// OnFetch, when non-nil, receives every successfully fetched document
	// (e.g. to archive it into a pagestore). It is called from multiple
	// goroutines and must be safe for concurrent use.
	OnFetch func(fetchURL string, body []byte)
	// IgnoreRobots disables robots.txt handling. By default the crawler
	// fetches each host's /robots.txt once and skips paths disallowed for
	// User-agent *.
	IgnoreRobots bool
	// Interrupt, when non-nil, stops the crawl gracefully once closed:
	// in-flight fetches finish, the remaining frontier is returned in
	// Result.Checkpoint, and a later Crawl with Resume set picks up where
	// this one stopped.
	Interrupt <-chan struct{}
	// Resume continues a previous crawl from its checkpoint: the visited
	// set is preloaded (so nothing is re-fetched) and the saved frontier
	// is re-enqueued. Seeds are still honoured (deduplicated against the
	// visited set). Pages fetched by the earlier run are NOT in this run's
	// Result.Graph — rebuild the full graph from the archive with
	// Assemble.
	Resume *Checkpoint
}

// ErrBadConfig reports invalid crawler configuration.
var ErrBadConfig = errors.New("crawler: bad config")

func (c *Config) fill() error {
	if len(c.Seeds) == 0 {
		return fmt.Errorf("%w: no seeds", ErrBadConfig)
	}
	if c.Concurrency == 0 {
		c.Concurrency = 8
	}
	if c.Concurrency < 1 {
		return fmt.Errorf("%w: Concurrency=%d", ErrBadConfig, c.Concurrency)
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxBodyBytes < 1 {
		return fmt.Errorf("%w: MaxBodyBytes=%d", ErrBadConfig, c.MaxBodyBytes)
	}
	if c.MaxPagesPerSite < 0 || c.MaxPages < 0 {
		return fmt.Errorf("%w: negative page caps", ErrBadConfig)
	}
	return nil
}

// Stats summarises a crawl.
type Stats struct {
	Fetched       int // pages fetched successfully
	Errors        int // transport or HTTP errors
	SkippedCaps   int // frontier entries dropped by the page caps
	SkippedRobots int // frontier entries disallowed by robots.txt
}

// Result is the outcome of a crawl: the reconstructed link graph (pages
// keyed by canonical URL) plus accounting.
type Result struct {
	Graph *graph.Graph
	Stats Stats
	// Checkpoint is non-nil when the crawl was interrupted; pass it as
	// Config.Resume to continue.
	Checkpoint *Checkpoint
}

// page is one fetched document, recorded under its fetch URL.
type page struct {
	fetchURL  string   // normalised absolute URL the page was fetched from
	canonical string   // canonical URL (falls back to fetchURL)
	links     []string // normalised absolute target URLs
}

// Crawl performs a full crawl and reconstructs the link graph.
func Crawl(cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}

	type fetchResult struct {
		pg  page
		err error
	}

	var (
		mu          sync.Mutex
		visited     = make(map[string]bool)
		perSite     = make(map[string]int)
		robots      = make(map[string]*robotsRules)
		pages       []page
		stats       Stats
		pending     int
		frontier    []string
		interrupted bool
	)
	cond := sync.NewCond(&mu)

	if cfg.Resume != nil {
		stats = cfg.Resume.Stats
		for _, u := range cfg.Resume.Visited {
			visited[u] = true
			if cfg.MaxPagesPerSite > 0 {
				perSite[hostOf(u)]++
			}
		}
		// Saved frontier entries are already visited; re-enqueue directly.
		for _, u := range cfg.Resume.Frontier {
			frontier = append(frontier, u)
			pending++
		}
	}
	if cfg.Interrupt != nil {
		go func() {
			<-cfg.Interrupt
			mu.Lock()
			interrupted = true
			cond.Broadcast()
			mu.Unlock()
		}()
	}

	// robotsFor lazily loads one host's rules (callers hold mu; the fetch
	// happens without it).
	robotsFor := func(host string) *robotsRules {
		if cfg.IgnoreRobots {
			return nil
		}
		if r, ok := robots[host]; ok {
			return r
		}
		mu.Unlock()
		r := fetchRobots(cfg.Client, host)
		mu.Lock()
		if prev, ok := robots[host]; ok {
			return prev // another goroutine raced us
		}
		robots[host] = r
		return r
	}

	// enqueueLocked admits u to the frontier if new, robots-allowed and
	// under the caps.
	enqueueLocked := func(u string) {
		if visited[u] {
			return
		}
		if !cfg.IgnoreRobots {
			pu, err := url.Parse(u)
			if err != nil {
				return
			}
			if !robotsFor(hostOf(u)).allowed(pu.Path) {
				stats.SkippedRobots++
				return
			}
			if visited[u] {
				return // robots fetch released the lock; re-check
			}
		}
		if cfg.MaxPages > 0 && len(visited) >= cfg.MaxPages {
			stats.SkippedCaps++
			return
		}
		if cfg.MaxPagesPerSite > 0 {
			h := hostOf(u)
			if perSite[h] >= cfg.MaxPagesPerSite {
				stats.SkippedCaps++
				return
			}
			perSite[h]++
		}
		visited[u] = true
		frontier = append(frontier, u)
		pending++
		cond.Signal()
	}

	mu.Lock()
	for _, s := range cfg.Seeds {
		n, err := normalizeURL(s, nil)
		if err != nil {
			mu.Unlock()
			return nil, fmt.Errorf("crawler: seed %q: %w", s, err)
		}
		enqueueLocked(n)
	}
	mu.Unlock()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(frontier) == 0 && pending > 0 && !interrupted {
					cond.Wait()
				}
				if interrupted || len(frontier) == 0 {
					// Done or interrupted; wake the others and leave the
					// remaining frontier for the checkpoint.
					cond.Broadcast()
					mu.Unlock()
					return
				}
				u := frontier[len(frontier)-1]
				frontier = frontier[:len(frontier)-1]
				mu.Unlock()

				pg, body, err := fetch(cfg.Client, u, cfg.MaxBodyBytes)
				if err == nil && cfg.OnFetch != nil {
					cfg.OnFetch(u, body)
				}

				mu.Lock()
				if err != nil {
					stats.Errors++
				} else {
					stats.Fetched++
					pages = append(pages, pg)
					for _, link := range pg.links {
						enqueueLocked(link)
					}
				}
				pending--
				if pending == 0 {
					cond.Broadcast()
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	res, err := assemble(pages, stats)
	if err != nil {
		return nil, err
	}
	mu.Lock()
	if interrupted {
		ck := &Checkpoint{
			Visited:  make([]string, 0, len(visited)),
			Frontier: append([]string(nil), frontier...),
			Stats:    stats,
		}
		for u := range visited {
			ck.Visited = append(ck.Visited, u)
		}
		sort.Strings(ck.Visited)
		res.Checkpoint = ck
	}
	mu.Unlock()
	return res, nil
}

// fetch downloads one page and extracts its links, returning the raw body
// for optional archiving.
func fetch(client *http.Client, u string, maxBody int64) (page, []byte, error) {
	resp, err := client.Get(u)
	if err != nil {
		return page{}, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxBody))
		return page{}, nil, fmt.Errorf("crawler: %s: status %d", u, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return page{}, nil, err
	}
	pg, err := parsePage(u, body)
	if err != nil {
		return page{}, nil, err
	}
	return pg, body, nil
}

// parsePage extracts the canonical URL and same-host links of a document
// fetched from fetchURL.
func parsePage(fetchURL string, body []byte) (page, error) {
	base, err := url.Parse(fetchURL)
	if err != nil {
		return page{}, err
	}
	hrefs, canonical := ExtractLinks(string(body))
	pg := page{fetchURL: fetchURL, canonical: canonical}
	if pg.canonical == "" {
		pg.canonical = fetchURL
	}
	for _, h := range hrefs {
		n, err := normalizeURL(h, base)
		if err != nil {
			continue // unparseable link: skip, as real crawlers do
		}
		// Stay on the crawled server: same scheme+host as the base.
		if hostOf(n) != hostOf(fetchURL) {
			continue
		}
		pg.links = append(pg.links, n)
	}
	return pg, nil
}

// Document is one archived crawl document for offline re-extraction.
type Document struct {
	// FetchURL is the URL the document was downloaded from.
	FetchURL string
	// Body is the raw HTML.
	Body []byte
}

// Assemble rebuilds the link graph from archived documents without
// re-fetching anything — the standard decoupling of a crawl pipeline
// (fetch once, re-parse at will when the extractor improves).
func Assemble(docs []Document) (*Result, error) {
	pages := make([]page, 0, len(docs))
	var stats Stats
	for _, d := range docs {
		pg, err := parsePage(d.FetchURL, d.Body)
		if err != nil {
			return nil, fmt.Errorf("crawler: assemble %s: %w", d.FetchURL, err)
		}
		stats.Fetched++
		pages = append(pages, pg)
	}
	return assemble(pages, stats)
}

// normalizeURL resolves ref against base (may be nil for absolute URLs)
// and strips fragments.
func normalizeURL(ref string, base *url.URL) (string, error) {
	u, err := url.Parse(strings.TrimSpace(ref))
	if err != nil {
		return "", err
	}
	if base != nil {
		u = base.ResolveReference(u)
	}
	if !u.IsAbs() {
		return "", fmt.Errorf("crawler: relative URL %q without base", ref)
	}
	u.Fragment = ""
	return u.String(), nil
}

func hostOf(u string) string {
	p, err := url.Parse(u)
	if err != nil {
		return ""
	}
	return p.Scheme + "://" + p.Host
}

// assemble builds the canonical-URL link graph from the fetched pages.
// Duplicate-canonical fetches merge; links to unfetched pages are dropped
// (they were never downloaded, so the crawl cannot know their content).
func assemble(pages []page, stats Stats) (*Result, error) {
	// fetchURL -> canonical, for link resolution.
	canonOf := make(map[string]string, len(pages))
	for _, p := range pages {
		canonOf[p.fetchURL] = p.canonical
	}
	// Deterministic node order: sorted canonical URLs.
	canonSet := make(map[string]bool, len(pages))
	for _, p := range pages {
		canonSet[p.canonical] = true
	}
	canons := make([]string, 0, len(canonSet))
	for c := range canonSet {
		canons = append(canons, c)
	}
	sort.Strings(canons)

	g := graph.New(len(canons))
	ids := make(map[string]graph.NodeID, len(canons))
	for _, c := range canons {
		id, err := g.AddPage(graph.Page{URL: c, Site: -1})
		if err != nil {
			return nil, err
		}
		ids[c] = id
	}
	for _, p := range pages {
		from := ids[p.canonical]
		for _, link := range p.links {
			tc, ok := canonOf[link]
			if !ok {
				continue // target never fetched
			}
			g.AddLink(from, ids[tc])
		}
	}
	return &Result{Graph: g, Stats: stats}, nil
}

// FetchSeeds downloads a newline-separated seed list (such as the
// webserver's /seeds.txt) and resolves each entry against the list's URL.
func FetchSeeds(client *http.Client, listURL string) ([]string, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(listURL)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("crawler: seeds %s: status %d", listURL, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	base, err := url.Parse(listURL)
	if err != nil {
		return nil, err
	}
	var seeds []string
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n, err := normalizeURL(line, base)
		if err != nil {
			return nil, fmt.Errorf("crawler: seed line %q: %w", line, err)
		}
		seeds = append(seeds, n)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("crawler: empty seed list at %s", listURL)
	}
	return seeds, nil
}
