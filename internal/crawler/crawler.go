// Package crawler implements the Web-download substrate of the paper's
// experiment (§8.1): a concurrent HTTP crawler that starts from seed
// pages, follows anchors until no new pages are reachable or a per-site
// page cap is hit ("we downloaded pages from each site until we could not
// reach any more pages or we downloaded the maximum of 200,000 pages"),
// and reconstructs the directed link graph. Pages are keyed by their
// rel=canonical URL when present, so crawls of different server instances
// align snapshot to snapshot.
//
// The paper's crawls ran for months against 154 real sites, so the
// substrate is built to survive flaky servers without distorting the
// graph: transient failures (network errors, timeouts, 429/503) retry
// with deterministic exponential backoff, permanently failed URLs refund
// the page budgets they held, hosts that keep failing degrade into a
// skip state instead of burning the caps, and whatever could not be
// fetched this run survives into the checkpoint for the next one.
package crawler

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"pagequality/internal/graph"
)

// Config parameterises a crawl.
type Config struct {
	// Seeds are the absolute URLs to start from.
	Seeds []string
	// MaxPagesPerSite caps the pages fetched per canonical host (the
	// paper used 200 000). Zero means unlimited.
	MaxPagesPerSite int
	// MaxPages caps the total fetched pages. Zero means unlimited.
	MaxPages int
	// Concurrency is the number of parallel fetchers (default 8).
	Concurrency int
	// Client performs the requests (default http.DefaultClient).
	Client *http.Client
	// MaxBodyBytes bounds how much of each response is read (default 1 MiB).
	MaxBodyBytes int64
	// RequestTimeout bounds each individual fetch attempt via its request
	// context. Zero means no per-attempt deadline (the Client's own
	// Timeout, if any, still applies).
	RequestTimeout time.Duration
	// Retry configures transient-failure retries and backoff.
	Retry Retry
	// MaxHostErrors is the per-host error budget: once this many URLs of
	// one host have ultimately failed (after retries), the host degrades —
	// its remaining URLs are skipped without fetching and requeued via the
	// checkpoint instead of burning the page caps. Zero disables degrading.
	MaxHostErrors int
	// OnFetch, when non-nil, receives every successfully fetched document
	// (e.g. to archive it into a pagestore). It is called from multiple
	// goroutines and must be safe for concurrent use.
	OnFetch func(fetchURL string, body []byte)
	// IgnoreRobots disables robots.txt handling. By default the crawler
	// fetches each host's /robots.txt once and skips paths disallowed for
	// User-agent *.
	IgnoreRobots bool
	// Interrupt, when non-nil, stops the crawl gracefully once closed:
	// in-flight fetches finish, the remaining frontier is returned in
	// Result.Checkpoint, and a later Crawl with Resume set picks up where
	// this one stopped.
	Interrupt <-chan struct{}
	// Resume continues a previous crawl from its checkpoint: the visited
	// set is preloaded (so nothing is re-fetched) and the saved frontier
	// is re-enqueued. Seeds are still honoured (deduplicated against the
	// visited set). Pages fetched by the earlier run are NOT in this run's
	// Result.Graph — rebuild the full graph from the archive with
	// Assemble.
	Resume *Checkpoint
}

// ErrBadConfig reports invalid crawler configuration.
var ErrBadConfig = errors.New("crawler: bad config")

func (c *Config) fill() error {
	if len(c.Seeds) == 0 {
		return fmt.Errorf("%w: no seeds", ErrBadConfig)
	}
	if c.Concurrency == 0 {
		c.Concurrency = 8
	}
	if c.Concurrency < 1 {
		return fmt.Errorf("%w: Concurrency=%d", ErrBadConfig, c.Concurrency)
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxBodyBytes < 1 {
		return fmt.Errorf("%w: MaxBodyBytes=%d", ErrBadConfig, c.MaxBodyBytes)
	}
	if c.MaxPagesPerSite < 0 || c.MaxPages < 0 {
		return fmt.Errorf("%w: negative page caps", ErrBadConfig)
	}
	if c.RequestTimeout < 0 {
		return fmt.Errorf("%w: RequestTimeout=%v", ErrBadConfig, c.RequestTimeout)
	}
	if c.MaxHostErrors < 0 {
		return fmt.Errorf("%w: MaxHostErrors=%d", ErrBadConfig, c.MaxHostErrors)
	}
	return c.Retry.fill()
}

// Stats summarises a crawl.
type Stats struct {
	Fetched       int // pages fetched successfully
	Errors        int // URLs that ultimately failed, after retries
	Retries       int // extra attempts made after transient failures
	Timeouts      int // attempts that exceeded a deadline
	RateLimited   int // attempts answered 429 Too Many Requests
	HostsDegraded int // hosts disabled after exhausting MaxHostErrors
	SkippedCaps   int // frontier entries dropped by the page caps
	SkippedRobots int // frontier entries disallowed by robots.txt
}

// Result is the outcome of a crawl: the reconstructed link graph (pages
// keyed by canonical URL) plus accounting.
type Result struct {
	Graph *graph.Graph
	Stats Stats
	// Interrupted reports that Config.Interrupt stopped the crawl early.
	Interrupted bool
	// Checkpoint is non-nil when the crawl was interrupted or when some
	// URLs failed transiently (they sit in its Frontier); pass it as
	// Config.Resume to continue or retry.
	Checkpoint *Checkpoint
}

// page is one fetched document, recorded under its fetch URL.
type page struct {
	fetchURL  string   // normalised absolute URL the page was fetched from
	canonical string   // canonical URL (falls back to fetchURL)
	links     []string // normalised absolute target URLs
}

// robotsEntry is one host's lazily fetched rules; once guarantees a single
// fetch per host even when several workers miss the cache together.
type robotsEntry struct {
	once  sync.Once
	rules *robotsRules
}

// errHostDegraded marks a URL that was skipped, not fetched, because its
// host exhausted the error budget; it is requeued via the checkpoint.
var errHostDegraded = errors.New("crawler: host degraded")

// crawl is the shared state of one Crawl invocation. All maps and slices
// are guarded by mu; fetching and backoff sleeps happen without it.
type crawl struct {
	cfg  Config
	mu   sync.Mutex
	cond *sync.Cond

	visited  map[string]bool         // every URL ever admitted (dedup)
	admitted int                     // URLs currently holding MaxPages budget
	perSite  map[string]int          // URLs currently holding per-site budget
	robots   map[string]*robotsEntry // per-host robots rules
	hostErrs map[string]int          // ultimately-failed URLs per host
	degraded map[string]bool         // hosts past the error budget

	pages           []page
	stats           Stats
	pending         int
	frontier        []string
	failedTransient []string // exhausted retries or degraded host: requeue
	failedPermanent []string // never retry
	interrupted     bool
}

// Crawl performs a full crawl and reconstructs the link graph.
func Crawl(cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	c := &crawl{
		cfg:      cfg,
		visited:  make(map[string]bool),
		perSite:  make(map[string]int),
		robots:   make(map[string]*robotsEntry),
		hostErrs: make(map[string]int),
		degraded: make(map[string]bool),
	}
	c.cond = sync.NewCond(&c.mu)

	if cfg.Resume != nil {
		c.stats = cfg.Resume.Stats
		for _, u := range cfg.Resume.Visited {
			c.visited[u] = true
			c.admitted++
			if cfg.MaxPagesPerSite > 0 {
				c.perSite[hostOf(u)]++
			}
		}
		// Permanently failed URLs are remembered (never re-fetched) but
		// hold no budget.
		for _, u := range cfg.Resume.Failed {
			c.visited[u] = true
		}
		// Saved frontier entries are already visited; re-enqueue directly.
		for _, u := range cfg.Resume.Frontier {
			c.frontier = append(c.frontier, u)
			c.pending++
		}
	}
	if cfg.Interrupt != nil {
		go func() {
			<-cfg.Interrupt
			c.mu.Lock()
			c.interrupted = true
			c.cond.Broadcast()
			c.mu.Unlock()
		}()
	}

	c.mu.Lock()
	for _, s := range cfg.Seeds {
		n, err := normalizeURL(s, nil)
		if err != nil {
			c.mu.Unlock()
			return nil, fmt.Errorf("crawler: seed %q: %w", s, err)
		}
		c.enqueueLocked(n)
	}
	c.mu.Unlock()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				u, ok := c.next()
				if !ok {
					return
				}
				pg, body, err := c.fetchWithRetry(u)
				c.complete(u, pg, body, err)
			}
		}()
	}
	wg.Wait()

	res, err := assemble(c.pages, c.stats)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	res.Interrupted = c.interrupted
	if c.interrupted || len(c.failedTransient) > 0 {
		res.Checkpoint = c.checkpointLocked()
	}
	return res, nil
}

// next pops a frontier URL, blocking until one appears or the crawl ends.
func (c *crawl) next() (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.frontier) == 0 && c.pending > 0 && !c.interrupted {
		c.cond.Wait()
	}
	if c.interrupted || len(c.frontier) == 0 {
		// Done or interrupted; wake the others and leave the remaining
		// frontier for the checkpoint.
		c.cond.Broadcast()
		return "", false
	}
	u := c.frontier[len(c.frontier)-1]
	c.frontier = c.frontier[:len(c.frontier)-1]
	return u, true
}

// fetchWithRetry drives the retry engine for one URL: transient failures
// back off (deterministic jitter, Retry-After honoured) and try again up
// to Retry.MaxAttempts; permanent failures and degraded hosts return
// immediately. No locks are held while fetching or sleeping.
func (c *crawl) fetchWithRetry(u string) (page, []byte, error) {
	host := hostOf(u)
	var lastErr error
	for attempt := 1; ; attempt++ {
		c.mu.Lock()
		degraded := c.degraded[host]
		stopped := c.interrupted
		c.mu.Unlock()
		if degraded {
			return page{}, nil, errHostDegraded
		}
		if stopped && attempt > 1 {
			return page{}, nil, lastErr // shutting down: stop retrying
		}
		pg, body, err := fetch(c.cfg.Client, u, c.cfg.MaxBodyBytes, c.cfg.RequestTimeout)
		if err == nil {
			return pg, body, nil
		}
		lastErr = err
		c.mu.Lock()
		if isTimeout(err) {
			c.stats.Timeouts++
		}
		if isRateLimited(err) {
			c.stats.RateLimited++
		}
		c.mu.Unlock()
		if classify(err) != classTransient || attempt >= c.cfg.Retry.MaxAttempts {
			return page{}, nil, err
		}
		c.mu.Lock()
		c.stats.Retries++
		c.mu.Unlock()
		c.cfg.Retry.Sleep(c.cfg.Retry.backoff(u, attempt, retryAfterOf(err)))
	}
}

// complete records one URL's outcome: successes feed the graph and the
// frontier; failures refund the page budgets they held, charge the host's
// error budget, and are remembered for checkpoint requeue (transient) or
// permanently skipped.
func (c *crawl) complete(u string, pg page, body []byte, err error) {
	if err == nil && c.cfg.OnFetch != nil {
		c.cfg.OnFetch(u, body)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case err == nil:
		c.stats.Fetched++
		c.pages = append(c.pages, pg)
		for _, link := range pg.links {
			c.enqueueLocked(link)
		}
	case errors.Is(err, errHostDegraded):
		// Not the URL's own failure: requeue it without charging the host.
		c.refundLocked(u)
		c.failedTransient = append(c.failedTransient, u)
	default:
		c.stats.Errors++
		c.refundLocked(u)
		host := hostOf(u)
		c.hostErrs[host]++
		if c.cfg.MaxHostErrors > 0 && c.hostErrs[host] >= c.cfg.MaxHostErrors && !c.degraded[host] {
			c.degraded[host] = true
			c.stats.HostsDegraded++
		}
		if classify(err) == classTransient {
			c.failedTransient = append(c.failedTransient, u)
		} else {
			c.failedPermanent = append(c.failedPermanent, u)
		}
	}
	c.pending--
	if c.pending == 0 {
		c.cond.Broadcast()
	}
}

// refundLocked returns the page budgets a failed URL was holding, so a
// site answering errors cannot exhaust its own cap with zero pages.
func (c *crawl) refundLocked(u string) {
	c.admitted--
	if c.cfg.MaxPagesPerSite > 0 {
		c.perSite[hostOf(u)]--
	}
}

// robotsForLocked lazily loads one host's rules. Callers hold mu; the
// fetch happens without it, and sync.Once guarantees one fetch per host
// no matter how many workers miss the cache concurrently.
func (c *crawl) robotsForLocked(host string) *robotsRules {
	if c.cfg.IgnoreRobots {
		return nil
	}
	e, ok := c.robots[host]
	if !ok {
		e = &robotsEntry{}
		c.robots[host] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.rules = fetchRobots(c.cfg.Client, host, c.cfg.RequestTimeout)
	})
	c.mu.Lock() //pqlint:allow lockleak re-acquires for the caller; the *Locked contract is enter and leave locked
	return e.rules
}

// enqueueLocked admits u to the frontier if new, robots-allowed and under
// the caps.
func (c *crawl) enqueueLocked(u string) {
	if c.visited[u] {
		return
	}
	if !c.cfg.IgnoreRobots {
		pu, err := url.Parse(u)
		if err != nil {
			return
		}
		if !c.robotsForLocked(hostOf(u)).allowed(pu.Path) {
			c.stats.SkippedRobots++
			return
		}
		if c.visited[u] {
			return // robots fetch released the lock; re-check
		}
	}
	if c.cfg.MaxPages > 0 && c.admitted >= c.cfg.MaxPages {
		c.stats.SkippedCaps++
		return
	}
	if c.cfg.MaxPagesPerSite > 0 {
		h := hostOf(u)
		if c.perSite[h] >= c.cfg.MaxPagesPerSite {
			c.stats.SkippedCaps++
			return
		}
		c.perSite[h]++
	}
	c.visited[u] = true
	c.admitted++
	c.frontier = append(c.frontier, u)
	c.pending++
	c.cond.Signal()
}

// checkpointLocked assembles the resume state: transiently failed URLs
// rejoin the frontier so the next run retries them, permanently failed
// ones are carried separately (remembered, never re-fetched, holding no
// budget).
func (c *crawl) checkpointLocked() *Checkpoint {
	permanent := make(map[string]bool, len(c.failedPermanent))
	for _, u := range c.failedPermanent {
		permanent[u] = true
	}
	ck := &Checkpoint{
		Visited:  make([]string, 0, len(c.visited)),
		Frontier: append(append([]string(nil), c.frontier...), c.failedTransient...),
		Failed:   append([]string(nil), c.failedPermanent...),
		Stats:    c.stats,
	}
	for u := range c.visited {
		if !permanent[u] {
			ck.Visited = append(ck.Visited, u)
		}
	}
	sort.Strings(ck.Visited)
	sort.Strings(ck.Frontier)
	sort.Strings(ck.Failed)
	return ck
}

// fetch downloads one page and extracts its links, returning the raw body
// for optional archiving. A positive timeout bounds the whole attempt via
// the request context.
func fetch(client *http.Client, u string, maxBody int64, timeout time.Duration) (page, []byte, error) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return page{}, nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return page{}, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxBody))
		return page{}, nil, &HTTPError{URL: u, Status: resp.StatusCode, RetryAfter: parseRetryAfter(resp)}
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return page{}, nil, err
	}
	// The page is recorded under the URL we asked for (visited-set and
	// archive key), but redirects may have landed elsewhere: relative
	// hrefs resolve against the URL the response actually came from.
	pg, err := parsePageAt(u, resp.Request.URL, body)
	if err != nil {
		return page{}, nil, err
	}
	return pg, body, nil
}

// parsePage extracts the canonical URL and same-host links of a document
// fetched from fetchURL, resolving links against fetchURL itself.
func parsePage(fetchURL string, body []byte) (page, error) {
	base, err := url.Parse(fetchURL)
	if err != nil {
		return page{}, err
	}
	return parsePageAt(fetchURL, base, body)
}

// parsePageAt extracts the canonical URL and links of a document recorded
// under fetchURL whose content was served from base (they differ after a
// redirect). Relative hrefs resolve against base, and the same-host
// filter keeps links on base's host — the server that actually answered.
func parsePageAt(fetchURL string, base *url.URL, body []byte) (page, error) {
	hrefs, canonical := ExtractLinks(string(body))
	pg := page{fetchURL: fetchURL, canonical: canonical}
	if pg.canonical == "" {
		pg.canonical = fetchURL
	}
	baseHost := base.Scheme + "://" + base.Host
	for _, h := range hrefs {
		n, err := normalizeURL(h, base)
		if err != nil {
			continue // unparseable link: skip, as real crawlers do
		}
		// Stay on the crawled server: same scheme+host as the base.
		if hostOf(n) != baseHost {
			continue
		}
		pg.links = append(pg.links, n)
	}
	return pg, nil
}

// Document is one archived crawl document for offline re-extraction.
type Document struct {
	// FetchURL is the URL the document was downloaded from.
	FetchURL string
	// Body is the raw HTML.
	Body []byte
}

// Assemble rebuilds the link graph from archived documents without
// re-fetching anything — the standard decoupling of a crawl pipeline
// (fetch once, re-parse at will when the extractor improves).
func Assemble(docs []Document) (*Result, error) {
	pages := make([]page, 0, len(docs))
	var stats Stats
	for _, d := range docs {
		pg, err := parsePage(d.FetchURL, d.Body)
		if err != nil {
			return nil, fmt.Errorf("crawler: assemble %s: %w", d.FetchURL, err)
		}
		stats.Fetched++
		pages = append(pages, pg)
	}
	return assemble(pages, stats)
}

// normalizeURL resolves ref against base (may be nil for absolute URLs)
// and strips fragments.
func normalizeURL(ref string, base *url.URL) (string, error) {
	u, err := url.Parse(strings.TrimSpace(ref))
	if err != nil {
		return "", err
	}
	if base != nil {
		u = base.ResolveReference(u)
	}
	if !u.IsAbs() {
		return "", fmt.Errorf("crawler: relative URL %q without base", ref)
	}
	u.Fragment = ""
	return u.String(), nil
}

func hostOf(u string) string {
	p, err := url.Parse(u)
	if err != nil {
		return ""
	}
	return p.Scheme + "://" + p.Host
}

// assemble builds the canonical-URL link graph from the fetched pages.
// Duplicate-canonical fetches merge; links to unfetched pages are dropped
// (they were never downloaded, so the crawl cannot know their content).
func assemble(pages []page, stats Stats) (*Result, error) {
	// fetchURL -> canonical, for link resolution.
	canonOf := make(map[string]string, len(pages))
	for _, p := range pages {
		canonOf[p.fetchURL] = p.canonical
	}
	// Deterministic node order: sorted canonical URLs.
	canonSet := make(map[string]bool, len(pages))
	for _, p := range pages {
		canonSet[p.canonical] = true
	}
	canons := make([]string, 0, len(canonSet))
	for c := range canonSet {
		canons = append(canons, c)
	}
	sort.Strings(canons)

	g := graph.New(len(canons))
	ids := make(map[string]graph.NodeID, len(canons))
	for _, c := range canons {
		id, err := g.AddPage(graph.Page{URL: c, Site: -1})
		if err != nil {
			return nil, err
		}
		ids[c] = id
	}
	for _, p := range pages {
		from := ids[p.canonical]
		for _, link := range p.links {
			tc, ok := canonOf[link]
			if !ok {
				continue // target never fetched
			}
			g.AddLink(from, ids[tc])
		}
	}
	return &Result{Graph: g, Stats: stats}, nil
}

// FetchSeeds downloads a newline-separated seed list (such as the
// webserver's /seeds.txt) and resolves each entry against the list's URL.
// The request carries ctx, so a caller deadline or cancellation aborts
// the download.
func FetchSeeds(ctx context.Context, client *http.Client, listURL string) ([]string, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, listURL, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("crawler: seeds %s: status %d", listURL, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	base, err := url.Parse(listURL)
	if err != nil {
		return nil, err
	}
	var seeds []string
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n, err := normalizeURL(line, base)
		if err != nil {
			return nil, fmt.Errorf("crawler: seed line %q: %w", line, err)
		}
		seeds = append(seeds, n)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("crawler: empty seed list at %s", listURL)
	}
	return seeds, nil
}
