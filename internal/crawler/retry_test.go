package crawler

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// noSleep is the injected sleeper for tests: retry paths must never block.
func noSleep(time.Duration) {}

// sleepRecorder collects the backoff delays a crawl asked for, without
// actually sleeping.
type sleepRecorder struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (r *sleepRecorder) sleep(d time.Duration) {
	r.mu.Lock()
	r.delays = append(r.delays, d)
	r.mu.Unlock()
}

func (r *sleepRecorder) sorted() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]time.Duration(nil), r.delays...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	r := Retry{Seed: 42}
	if err := r.fill(); err != nil {
		t.Fatal(err)
	}
	const u = "http://x/p/1.html"
	for attempt := 1; attempt <= 10; attempt++ {
		a := r.backoff(u, attempt, 0)
		if b := r.backoff(u, attempt, 0); a != b {
			t.Fatalf("attempt %d: backoff not deterministic (%v vs %v)", attempt, a, b)
		}
		base := r.BaseDelay << (attempt - 1)
		if base > r.MaxDelay || base <= 0 {
			base = r.MaxDelay
		}
		if a < base/2 || a >= base {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, a, base/2, base)
		}
	}
	// Large attempts saturate at the ceiling, never overflow.
	if d := r.backoff(u, 200, 0); d > r.MaxDelay || d <= 0 {
		t.Fatalf("saturated backoff = %v", d)
	}
	// Different URLs and attempts draw different jitter.
	if r.backoff(u, 1, 0) == r.backoff("http://x/p/2.html", 1, 0) {
		t.Fatal("distinct URLs share their jitter")
	}
}

func TestBackoffHonoursRetryAfter(t *testing.T) {
	r := Retry{BaseDelay: 10 * time.Millisecond, MaxDelay: 2 * time.Second, Seed: 1}
	if err := r.fill(); err != nil {
		t.Fatal(err)
	}
	// A server hint above the computed backoff wins...
	if d := r.backoff("http://x/", 1, time.Second); d != time.Second {
		t.Fatalf("Retry-After ignored: %v", d)
	}
	// ...but never past the ceiling.
	if d := r.backoff("http://x/", 1, time.Minute); d != r.MaxDelay {
		t.Fatalf("Retry-After exceeded MaxDelay: %v", d)
	}
	// A hint below the backoff changes nothing.
	want := r.backoff("http://x/", 1, 0)
	if d := r.backoff("http://x/", 1, time.Nanosecond); d != want {
		t.Fatalf("tiny Retry-After altered backoff: %v vs %v", d, want)
	}
}

func TestRetryConfigValidation(t *testing.T) {
	if _, err := Crawl(Config{Seeds: []string{"http://x/"}, Retry: Retry{MaxAttempts: -1}}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("negative MaxAttempts accepted")
	}
	if _, err := Crawl(Config{Seeds: []string{"http://x/"}, Retry: Retry{BaseDelay: -time.Second}}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("negative BaseDelay accepted")
	}
	if _, err := Crawl(Config{Seeds: []string{"http://x/"}, RequestTimeout: -time.Second}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("negative RequestTimeout accepted")
	}
	if _, err := Crawl(Config{Seeds: []string{"http://x/"}, MaxHostErrors: -1}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("negative MaxHostErrors accepted")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want errClass
	}{
		{"404", &HTTPError{Status: http.StatusNotFound}, classPermanent},
		{"403", &HTTPError{Status: http.StatusForbidden}, classPermanent},
		{"429", &HTTPError{Status: http.StatusTooManyRequests}, classTransient},
		{"408", &HTTPError{Status: http.StatusRequestTimeout}, classTransient},
		{"500", &HTTPError{Status: http.StatusInternalServerError}, classTransient},
		{"503", &HTTPError{Status: http.StatusServiceUnavailable}, classTransient},
		{"parse", &url.Error{Op: "parse", URL: "://bad", Err: errors.New("missing scheme")}, classPermanent},
		{"transport", &url.Error{Op: "Get", URL: "http://x/", Err: errors.New("connection refused")}, classTransient},
		{"dns-timeout", &net.DNSError{IsTimeout: true}, classTransient},
		{"ctx-deadline", fmt.Errorf("wrapped: %w", context.DeadlineExceeded), classTransient},
		{"other", errors.New("malformed document"), classPermanent},
	}
	for _, c := range cases {
		if got := classify(c.err); got != c.want {
			t.Errorf("classify(%s) = %v, want %v", c.name, got, c.want)
		}
	}
	if !isTimeout(&net.DNSError{IsTimeout: true}) || !isTimeout(context.DeadlineExceeded) {
		t.Fatal("timeout not recognised")
	}
	if isTimeout(&HTTPError{Status: 500}) {
		t.Fatal("HTTP 500 mistaken for a timeout")
	}
	if !isRateLimited(&HTTPError{Status: 429}) || isRateLimited(&HTTPError{Status: 503}) {
		t.Fatal("rate-limit detection wrong")
	}
}

func TestParseRetryAfter(t *testing.T) {
	for _, c := range []struct {
		header string
		want   time.Duration
	}{
		{"", 0}, {"2", 2 * time.Second}, {"0", 0},
		{"-1", 0}, {"soon", 0}, {"Wed, 21 Oct 2015 07:28:00 GMT", 0},
	} {
		resp := &http.Response{Header: http.Header{}}
		if c.header != "" {
			resp.Header.Set("Retry-After", c.header)
		}
		if got := parseRetryAfter(resp); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

// flakyServer answers each path with failures until its per-path failure
// budget is spent, then serves the page.
type flakyServer struct {
	mu       sync.Mutex
	failures map[string]int // remaining injected failures per path
	status   int            // the failure status to answer with
	hits     map[string]int // total requests per path
	pages    map[string]string
}

func newFlakyServer(status int, pages map[string]string, failures map[string]int) *flakyServer {
	f := make(map[string]int, len(failures))
	for k, v := range failures {
		f[k] = v
	}
	return &flakyServer{failures: f, status: status, hits: make(map[string]int), pages: pages}
}

func (s *flakyServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.hits[r.URL.Path]++
	remaining := s.failures[r.URL.Path]
	if remaining > 0 {
		s.failures[r.URL.Path]--
	}
	body, ok := s.pages[r.URL.Path]
	s.mu.Unlock()
	if remaining > 0 {
		http.Error(w, "flaky", s.status)
		return
	}
	if !ok {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, body)
}

func (s *flakyServer) hitCount(path string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits[path]
}

func TestRetryTransientThenSucceed(t *testing.T) {
	pages := map[string]string{
		"/":  `<a href="/a">a</a>`,
		"/a": "leaf",
	}
	srv := newFlakyServer(http.StatusServiceUnavailable, pages, map[string]int{"/a": 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rec := &sleepRecorder{}
	res, err := Crawl(Config{
		Seeds:  []string{ts.URL + "/"},
		Client: ts.Client(),
		Retry:  Retry{MaxAttempts: 3, Seed: 5, Sleep: rec.sleep},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fetched != 2 || res.Stats.Errors != 0 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if res.Stats.Retries != 2 {
		t.Fatalf("retries = %d, want 2", res.Stats.Retries)
	}
	if res.Checkpoint != nil {
		t.Fatal("fully recovered crawl produced a checkpoint")
	}
	if srv.hitCount("/a") != 3 {
		t.Fatalf("/a hit %d times, want 3", srv.hitCount("/a"))
	}
	// The recorded backoffs are exactly the policy's deterministic values.
	pol := Retry{MaxAttempts: 3, Seed: 5}
	if err := pol.fill(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{pol.backoff(ts.URL+"/a", 1, 0), pol.backoff(ts.URL+"/a", 2, 0)}
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	got := rec.sorted()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("recorded backoffs %v, want %v", got, want)
	}
}

func TestRetryExhaustionRequeuesTransient(t *testing.T) {
	pages := map[string]string{
		"/":  `<a href="/dead">dead</a><a href="/a">a</a>`,
		"/a": "leaf",
	}
	srv := newFlakyServer(http.StatusServiceUnavailable, pages, map[string]int{"/dead": 1 << 30})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	res, err := Crawl(Config{
		Seeds:  []string{ts.URL + "/"},
		Client: ts.Client(),
		Retry:  Retry{MaxAttempts: 2, Sleep: noSleep},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fetched != 2 || res.Stats.Errors != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if res.Interrupted {
		t.Fatal("uninterrupted crawl marked interrupted")
	}
	if res.Checkpoint == nil {
		t.Fatal("transient failure produced no checkpoint")
	}
	if len(res.Checkpoint.Frontier) != 1 || res.Checkpoint.Frontier[0] != ts.URL+"/dead" {
		t.Fatalf("checkpoint frontier = %v", res.Checkpoint.Frontier)
	}
	if len(res.Checkpoint.Failed) != 0 {
		t.Fatalf("transient failure recorded as permanent: %v", res.Checkpoint.Failed)
	}
	if srv.hitCount("/dead") != 2 {
		t.Fatalf("/dead hit %d times, want MaxAttempts=2", srv.hitCount("/dead"))
	}
}

func TestRetryAfterRecordedAndHonoured(t *testing.T) {
	var mu sync.Mutex
	failed := false
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		mu.Lock()
		first := !failed
		failed = true
		mu.Unlock()
		if first {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "throttled", http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, "ok")
	})
	ts := httptest.NewServer(handler)
	defer ts.Close()

	rec := &sleepRecorder{}
	res, err := Crawl(Config{
		Seeds:  []string{ts.URL + "/"},
		Client: ts.Client(),
		Retry:  Retry{MaxAttempts: 2, MaxDelay: 10 * time.Second, Sleep: rec.sleep},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fetched != 1 || res.Stats.RateLimited != 1 || res.Stats.Retries != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	delays := rec.sorted()
	if len(delays) != 1 || delays[0] != 2*time.Second {
		t.Fatalf("Retry-After not honoured: slept %v, want [2s]", delays)
	}
}

func TestRequestTimeoutClassifiedTransient(t *testing.T) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/slow" {
			<-r.Context().Done() // stall until the crawler gives up
			return
		}
		fmt.Fprint(w, `<a href="/slow">slow</a>`)
	})
	ts := httptest.NewServer(handler)
	defer ts.Close()

	res, err := Crawl(Config{
		Seeds:          []string{ts.URL + "/"},
		Client:         ts.Client(),
		RequestTimeout: 50 * time.Millisecond,
		Retry:          Retry{MaxAttempts: 2, Sleep: noSleep},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Timeouts != 2 {
		t.Fatalf("timeouts = %d, want 2 (both attempts)", res.Stats.Timeouts)
	}
	if res.Stats.Errors != 1 || res.Stats.Retries != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if res.Checkpoint == nil || len(res.Checkpoint.Frontier) != 1 {
		t.Fatal("timed-out URL not requeued for a later run")
	}
}

func TestHostErrorBudgetDegradesHost(t *testing.T) {
	pages := map[string]string{
		"/": `<a href="/e1">1</a><a href="/e2">2</a><a href="/e3">3</a><a href="/e4">4</a>`,
	}
	always := 1 << 30
	srv := newFlakyServer(http.StatusInternalServerError, pages,
		map[string]int{"/e1": always, "/e2": always, "/e3": always, "/e4": always})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	res, err := Crawl(Config{
		Seeds:         []string{ts.URL + "/"},
		Client:        ts.Client(),
		Concurrency:   1,
		MaxHostErrors: 2,
		Retry:         Retry{MaxAttempts: 2, Sleep: noSleep},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.HostsDegraded != 1 {
		t.Fatalf("hosts degraded = %d, want 1", res.Stats.HostsDegraded)
	}
	// Exactly MaxHostErrors URLs were actually fetched-and-failed; the
	// rest were skipped without a single request and requeued.
	if res.Stats.Errors != 2 {
		t.Fatalf("errors = %d, want 2 (the budget)", res.Stats.Errors)
	}
	if res.Checkpoint == nil || len(res.Checkpoint.Frontier) != 4 {
		t.Fatalf("checkpoint = %+v, want all 4 failing URLs requeued", res.Checkpoint)
	}
	total := 0
	for _, p := range []string{"/e1", "/e2", "/e3", "/e4"} {
		total += srv.hitCount(p)
	}
	// 2 failed URLs x 2 attempts; the two skipped ones cost zero requests.
	if total != 4 {
		t.Fatalf("degraded host still received %d requests, want 4", total)
	}
}

// TestTransientRequeueAcrossCheckpoint pins the end-to-end story: a URL
// that fails transiently survives into the checkpoint, a resumed crawl
// retries it once the server recovers, and the combined archive matches a
// never-failing crawl — while a permanently failed URL is remembered and
// never re-fetched.
func TestTransientRequeueAcrossCheckpoint(t *testing.T) {
	pages := map[string]string{
		"/":      `<a href="/flaky">f</a><a href="/a">a</a><a href="/gone">g</a>`,
		"/flaky": `<a href="/b">b</a>`,
		"/a":     "leaf",
		"/b":     "leaf",
	}
	// Reference: the healthy crawl.
	healthy := newFlakyServer(http.StatusServiceUnavailable, pages, nil)
	hts := httptest.NewServer(healthy)
	defer hts.Close()
	ref, err := Crawl(Config{Seeds: []string{hts.URL + "/"}, Client: hts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Stats.Fetched != 4 || ref.Stats.Errors != 1 { // /gone 404s
		t.Fatalf("reference stats = %+v", ref.Stats)
	}

	srv := newFlakyServer(http.StatusServiceUnavailable, pages, map[string]int{"/flaky": 1 << 30})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var mu sync.Mutex
	docs := map[string][]byte{}
	onFetch := func(u string, body []byte) {
		mu.Lock()
		docs[strings.TrimPrefix(u, ts.URL)] = append([]byte(nil), body...)
		mu.Unlock()
	}
	phase1, err := Crawl(Config{
		Seeds:   []string{ts.URL + "/"},
		Client:  ts.Client(),
		Retry:   Retry{MaxAttempts: 2, Sleep: noSleep},
		OnFetch: onFetch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if phase1.Stats.Fetched != 2 { // "/" and "/a"; /flaky down, /b unreachable
		t.Fatalf("phase1 fetched %d, want 2", phase1.Stats.Fetched)
	}
	ck := phase1.Checkpoint
	if ck == nil {
		t.Fatal("no checkpoint despite transient failure")
	}
	if len(ck.Frontier) != 1 || ck.Frontier[0] != ts.URL+"/flaky" {
		t.Fatalf("frontier = %v", ck.Frontier)
	}
	if len(ck.Failed) != 1 || ck.Failed[0] != ts.URL+"/gone" {
		t.Fatalf("failed = %v", ck.Failed)
	}
	goneHits := srv.hitCount("/gone")

	// The server recovers; resume retries exactly the flaky URL.
	srv.mu.Lock()
	srv.failures["/flaky"] = 0
	srv.mu.Unlock()
	phase2, err := Crawl(Config{
		Seeds:   []string{ts.URL + "/"},
		Client:  ts.Client(),
		Resume:  ck,
		Retry:   Retry{MaxAttempts: 2, Sleep: noSleep},
		OnFetch: onFetch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if phase2.Checkpoint != nil {
		t.Fatalf("recovered resume still has failures: %+v", phase2.Checkpoint)
	}
	if phase2.Stats.Fetched != ref.Stats.Fetched {
		t.Fatalf("cumulative fetched %d, want %d", phase2.Stats.Fetched, ref.Stats.Fetched)
	}
	if srv.hitCount("/gone") != goneHits {
		t.Fatal("permanently failed URL was re-fetched on resume")
	}
	// The combined archive rebuilds the healthy crawl's graph (rekeyed to
	// the healthy server's host for comparison).
	all := make([]Document, 0, len(docs))
	paths := make([]string, 0, len(docs))
	for path := range docs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		all = append(all, Document{FetchURL: hts.URL + path, Body: docs[path]})
	}
	rebuilt, err := Assemble(all)
	if err != nil {
		t.Fatal(err)
	}
	if string(rebuilt.Graph.AppendBinary(nil)) != string(ref.Graph.AppendBinary(nil)) {
		t.Fatal("resumed archive differs from the healthy crawl")
	}
}
