package crawler

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"pagequality/internal/graph"
	"pagequality/internal/webserver"
)

func TestParseRobots(t *testing.T) {
	body := `
# comment
User-agent: *
Disallow: /private/
Disallow: /tmp

User-agent: googlebot
Disallow: /only-for-google
`
	r := parseRobots(body)
	if len(r.disallow) != 2 {
		t.Fatalf("disallow = %v", r.disallow)
	}
	if r.allowed("/private/x") || r.allowed("/tmp") {
		t.Fatal("disallowed path allowed")
	}
	if !r.allowed("/public") || !r.allowed("/only-for-google") {
		t.Fatal("allowed path blocked")
	}
}

func TestParseRobotsGroupSemantics(t *testing.T) {
	// Our rules come only from groups containing *; consecutive agent
	// lines share one group.
	body := `
User-agent: googlebot
User-agent: *
Disallow: /both

User-agent: bingbot
Disallow: /bing-only
`
	r := parseRobots(body)
	if len(r.disallow) != 1 || r.disallow[0] != "/both" {
		t.Fatalf("disallow = %v", r.disallow)
	}
}

func TestParseRobotsLenient(t *testing.T) {
	for _, body := range []string{
		"", "garbage without colon", "Disallow: /orphan",
		"User-agent: *\nDisallow:", // empty disallow = allow all
		"Crawl-delay: 5\nUser-agent: *\nDisallow: /x",
	} {
		r := parseRobots(body)
		if r == nil {
			t.Fatalf("nil rules for %q", body)
		}
		if !r.allowed("/anything-else") {
			t.Fatalf("lenient parse blocked /anything-else for %q", body)
		}
	}
}

func TestNilRulesAllowAll(t *testing.T) {
	var r *robotsRules
	if !r.allowed("/x") {
		t.Fatal("nil rules blocked a path")
	}
}

func TestCrawlRespectsRobots(t *testing.T) {
	sim := testCorpus(t, 6)
	g := sim.Graph().Clone()
	srv, err := webserver.New(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Disallow one specific page that the unrestricted crawl reaches.
	var blockedPath string
	full := func() int {
		ts := httptest.NewServer(srv)
		defer ts.Close()
		seeds, err := FetchSeeds(ts.Client(), ts.URL+"/seeds.txt")
		if err != nil {
			t.Fatal(err)
		}
		res, err := Crawl(Config{Seeds: seeds, Client: ts.Client()})
		if err != nil {
			t.Fatal(err)
		}
		// Pick a non-seed fetched page to block next time.
		for i := 0; i < res.Graph.NumNodes(); i++ {
			u := res.Graph.Page(graph.NodeID(i)).URL
			if id, ok := g.Lookup(u); ok && g.InDegree(id) > 0 {
				blockedPath = webserver.PagePath(id)
			}
		}
		return res.Stats.Fetched
	}()
	if blockedPath == "" {
		t.Skip("no blockable page found")
	}
	srv.SetRobots([]string{blockedPath})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	seeds, err := FetchSeeds(ts.Client(), ts.URL+"/seeds.txt")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Crawl(Config{Seeds: seeds, Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SkippedRobots == 0 {
		t.Fatal("robots rule never applied")
	}
	if res.Stats.Fetched >= full {
		t.Fatalf("robots did not reduce the crawl: %d vs %d", res.Stats.Fetched, full)
	}
	// Ignoring robots restores the full crawl.
	res, err = Crawl(Config{Seeds: seeds, Client: ts.Client(), IgnoreRobots: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fetched != full || res.Stats.SkippedRobots != 0 {
		t.Fatalf("IgnoreRobots crawl fetched %d, want %d", res.Stats.Fetched, full)
	}
}

func TestRobotsFetchFailureAllowsAll(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/robots.txt":
			http.Error(w, "boom", http.StatusInternalServerError)
		case "/":
			fmt.Fprint(w, `<a href="/a">a</a>`)
		case "/a":
			fmt.Fprint(w, "leaf")
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	res, err := Crawl(Config{Seeds: []string{srv.URL + "/"}, Client: srv.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fetched != 2 {
		t.Fatalf("fetched %d, want 2 (robots error must allow all)", res.Stats.Fetched)
	}
}
