package crawler

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"pagequality/internal/graph"
	"pagequality/internal/webserver"
)

func TestParseRobots(t *testing.T) {
	body := `
# comment
User-agent: *
Disallow: /private/
Disallow: /tmp

User-agent: googlebot
Disallow: /only-for-google
`
	r := parseRobots(body)
	if len(r.disallow) != 2 {
		t.Fatalf("disallow = %v", r.disallow)
	}
	if r.allowed("/private/x") || r.allowed("/tmp") {
		t.Fatal("disallowed path allowed")
	}
	if !r.allowed("/public") || !r.allowed("/only-for-google") {
		t.Fatal("allowed path blocked")
	}
}

func TestParseRobotsGroupSemantics(t *testing.T) {
	// Our rules come only from groups containing *; consecutive agent
	// lines share one group.
	body := `
User-agent: googlebot
User-agent: *
Disallow: /both

User-agent: bingbot
Disallow: /bing-only
`
	r := parseRobots(body)
	if len(r.disallow) != 1 || r.disallow[0] != "/both" {
		t.Fatalf("disallow = %v", r.disallow)
	}
}

func TestParseRobotsLenient(t *testing.T) {
	for _, body := range []string{
		"", "garbage without colon", "Disallow: /orphan",
		"User-agent: *\nDisallow:", // empty disallow = allow all
		"Crawl-delay: 5\nUser-agent: *\nDisallow: /x",
	} {
		r := parseRobots(body)
		if r == nil {
			t.Fatalf("nil rules for %q", body)
		}
		if !r.allowed("/anything-else") {
			t.Fatalf("lenient parse blocked /anything-else for %q", body)
		}
	}
}

// TestParseRobotsTable drives the parser through the syntax corners a
// lenient crawler must survive: multi-agent groups, comments, CRLF line
// endings, Allow lines (ignored), empty Disallow, case and whitespace.
func TestParseRobotsTable(t *testing.T) {
	cases := []struct {
		name     string
		body     string
		disallow []string // expected prefixes, in order
	}{
		{
			name:     "basic star group",
			body:     "User-agent: *\nDisallow: /private/\nDisallow: /tmp\n",
			disallow: []string{"/private/", "/tmp"},
		},
		{
			name:     "crlf line endings",
			body:     "User-agent: *\r\nDisallow: /a\r\nDisallow: /b\r\n",
			disallow: []string{"/a", "/b"},
		},
		{
			name:     "multi-agent group shares rules",
			body:     "User-agent: googlebot\nUser-agent: *\nUser-agent: bingbot\nDisallow: /shared\n",
			disallow: []string{"/shared"},
		},
		{
			name:     "multiple star groups accumulate",
			body:     "User-agent: *\nDisallow: /one\n\nUser-agent: *\nDisallow: /two\n",
			disallow: []string{"/one", "/two"},
		},
		{
			name:     "foreign group ignored",
			body:     "User-agent: googlebot\nDisallow: /google-only\n\nUser-agent: *\nDisallow: /ours\n",
			disallow: []string{"/ours"},
		},
		{
			name:     "comments stripped mid-line and whole-line",
			body:     "# preamble\nUser-agent: * # us\nDisallow: /x # why\n# Disallow: /commented-out\n",
			disallow: []string{"/x"},
		},
		{
			name:     "allow lines ignored leniently",
			body:     "User-agent: *\nAllow: /public\nDisallow: /x\nAllow: /also\n",
			disallow: []string{"/x"},
		},
		{
			name:     "empty disallow allows all",
			body:     "User-agent: *\nDisallow:\n",
			disallow: nil,
		},
		{
			name:     "case-insensitive keys, padded values",
			body:     "USER-AGENT:   *  \nDISALLOW:   /caps  \n",
			disallow: []string{"/caps"},
		},
		{
			name:     "directive after unknown key still applies",
			body:     "User-agent: *\nCrawl-delay: 5\nDisallow: /after-unknown\n",
			disallow: []string{"/after-unknown"},
		},
		{
			name:     "malformed lines skipped",
			body:     "User-agent: *\nthis line has no colon\nDisallow: /kept\n",
			disallow: []string{"/kept"},
		},
		{
			name:     "agent run reset by directive",
			body:     "User-agent: *\nDisallow: /a\nUser-agent: googlebot\nDisallow: /google\n",
			disallow: []string{"/a"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := parseRobots(c.body)
			if len(r.disallow) != len(c.disallow) {
				t.Fatalf("disallow = %v, want %v", r.disallow, c.disallow)
			}
			for i := range c.disallow {
				if r.disallow[i] != c.disallow[i] {
					t.Fatalf("disallow = %v, want %v", r.disallow, c.disallow)
				}
			}
		})
	}
}

func TestNilRulesAllowAll(t *testing.T) {
	var r *robotsRules
	if !r.allowed("/x") {
		t.Fatal("nil rules blocked a path")
	}
}

func TestCrawlRespectsRobots(t *testing.T) {
	sim := testCorpus(t, 6)
	g := sim.Graph().Clone()
	srv, err := webserver.New(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Disallow one specific page that the unrestricted crawl reaches.
	var blockedPath string
	full := func() int {
		ts := httptest.NewServer(srv)
		defer ts.Close()
		seeds, err := FetchSeeds(context.Background(), ts.Client(), ts.URL+"/seeds.txt")
		if err != nil {
			t.Fatal(err)
		}
		res, err := Crawl(Config{Seeds: seeds, Client: ts.Client()})
		if err != nil {
			t.Fatal(err)
		}
		// Pick a non-seed fetched page to block next time.
		for i := 0; i < res.Graph.NumNodes(); i++ {
			u := res.Graph.Page(graph.NodeID(i)).URL
			if id, ok := g.Lookup(u); ok && g.InDegree(id) > 0 {
				blockedPath = webserver.PagePath(id)
			}
		}
		return res.Stats.Fetched
	}()
	if blockedPath == "" {
		t.Skip("no blockable page found")
	}
	srv.SetRobots([]string{blockedPath})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	seeds, err := FetchSeeds(context.Background(), ts.Client(), ts.URL+"/seeds.txt")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Crawl(Config{Seeds: seeds, Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SkippedRobots == 0 {
		t.Fatal("robots rule never applied")
	}
	if res.Stats.Fetched >= full {
		t.Fatalf("robots did not reduce the crawl: %d vs %d", res.Stats.Fetched, full)
	}
	// Ignoring robots restores the full crawl.
	res, err = Crawl(Config{Seeds: seeds, Client: ts.Client(), IgnoreRobots: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fetched != full || res.Stats.SkippedRobots != 0 {
		t.Fatalf("IgnoreRobots crawl fetched %d, want %d", res.Stats.Fetched, full)
	}
}

// TestRobotsFetchedOncePerHost pins the duplicate-fetch fix: however many
// workers miss the robots cache together, the host's robots.txt is
// requested exactly once.
func TestRobotsFetchedOncePerHost(t *testing.T) {
	var robotsHits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/robots.txt":
			robotsHits.Add(1)
			fmt.Fprint(w, "User-agent: *\nDisallow:\n")
		case "/":
			for i := 0; i < 16; i++ {
				fmt.Fprintf(w, `<a href="/p%d">p</a>`, i)
			}
		default:
			fmt.Fprint(w, "leaf")
		}
	}))
	defer srv.Close()
	res, err := Crawl(Config{Seeds: []string{srv.URL + "/"}, Client: srv.Client(), Concurrency: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fetched != 17 {
		t.Fatalf("fetched %d, want 17", res.Stats.Fetched)
	}
	if n := robotsHits.Load(); n != 1 {
		t.Fatalf("robots.txt fetched %d times, want 1", n)
	}
}

func TestRobotsFetchFailureAllowsAll(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/robots.txt":
			http.Error(w, "boom", http.StatusInternalServerError)
		case "/":
			fmt.Fprint(w, `<a href="/a">a</a>`)
		case "/a":
			fmt.Fprint(w, "leaf")
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	res, err := Crawl(Config{Seeds: []string{srv.URL + "/"}, Client: srv.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fetched != 2 {
		t.Fatalf("fetched %d, want 2 (robots error must allow all)", res.Stats.Fetched)
	}
}
