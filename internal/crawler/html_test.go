package crawler

import (
	"reflect"
	"testing"
)

func TestExtractLinksBasic(t *testing.T) {
	body := `<html><head><link rel="canonical" href="http://a.example/x"></head>
	<body><a href="/p/1.html">one</a> text <A HREF="/p/2.html">two</A></body></html>`
	hrefs, canon := ExtractLinks(body)
	if canon != "http://a.example/x" {
		t.Fatalf("canonical = %q", canon)
	}
	want := []string{"/p/1.html", "/p/2.html"}
	if !reflect.DeepEqual(hrefs, want) {
		t.Fatalf("hrefs = %v, want %v", hrefs, want)
	}
}

func TestExtractLinksQuoteStyles(t *testing.T) {
	body := `<a href="/dq">a</a><a href='/sq'>b</a><a href=/uq>c</a>`
	hrefs, _ := ExtractLinks(body)
	want := []string{"/dq", "/sq", "/uq"}
	if !reflect.DeepEqual(hrefs, want) {
		t.Fatalf("hrefs = %v, want %v", hrefs, want)
	}
}

func TestExtractLinksAttributeOrderAndNoise(t *testing.T) {
	body := `<a class="x" target=_blank href="/late">x</a>
	<a nohref>skip</a>
	<a href="">skip-empty</a>
	<!-- <a href="/commented">no</a> is inside a comment's text, but the
	  scanner sees tags, so it may appear; real crawlers fetch it too -->
	<a href="/q?x=1&amp;y=2">entity</a>`
	hrefs, _ := ExtractLinks(body)
	if hrefs[0] != "/late" {
		t.Fatalf("hrefs[0] = %q", hrefs[0])
	}
	// entity-unescaped query
	found := false
	for _, h := range hrefs {
		if h == "/q?x=1&y=2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("entity href missing: %v", hrefs)
	}
}

func TestExtractLinksClosingAndSelfClosing(t *testing.T) {
	body := `</a><br/><a href="/ok"/>done`
	hrefs, _ := ExtractLinks(body)
	if len(hrefs) != 1 || hrefs[0] != "/ok" {
		t.Fatalf("hrefs = %v", hrefs)
	}
}

func TestExtractCanonicalCaseAndFirstWins(t *testing.T) {
	body := `<LINK REL="Canonical" HREF="http://first/">
	<link rel="canonical" href="http://second/">`
	_, canon := ExtractLinks(body)
	if canon != "http://first/" {
		t.Fatalf("canonical = %q", canon)
	}
}

func TestExtractLinksMalformed(t *testing.T) {
	// Truncated tags must not panic or loop.
	for _, body := range []string{
		"<", "<a", "<a href=", `<a href="`, "<a href='x", "< >", "<>", "<a href",
	} {
		ExtractLinks(body)
	}
}

func TestExtractLinksIgnoresNonAnchorHref(t *testing.T) {
	body := `<img href="/not-a-link"><area href="/also-not"><a href="/yes">y</a>`
	hrefs, _ := ExtractLinks(body)
	if len(hrefs) != 1 || hrefs[0] != "/yes" {
		t.Fatalf("hrefs = %v", hrefs)
	}
}
