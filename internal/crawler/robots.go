package crawler

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// robotsRules holds the Disallow prefixes that apply to this crawler
// (user-agent *). A nil or empty rule set allows everything, matching the
// robots.txt convention that absence means no restrictions.
type robotsRules struct {
	disallow []string
}

// allowed reports whether the path may be fetched.
func (r *robotsRules) allowed(path string) bool {
	if r == nil {
		return true
	}
	for _, p := range r.disallow {
		if p != "" && strings.HasPrefix(path, p) {
			return false
		}
	}
	return true
}

// parseRobots extracts the Disallow prefixes of every group whose
// User-agent matches "*" (the only agent this crawler identifies as).
// The parser is deliberately lenient: unknown directives and malformed
// lines are skipped, comments stripped, keys case-insensitive.
func parseRobots(body string) *robotsRules {
	rules := &robotsRules{}
	// A group is one or more consecutive User-agent lines followed by
	// directives; the group applies to us if any of its agents is "*".
	applies := false
	inAgentRun := false
	for _, line := range strings.Split(body, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		switch key {
		case "user-agent":
			if !inAgentRun {
				// First agent line of a new group resets the match.
				applies = false
				inAgentRun = true
			}
			if val == "*" {
				applies = true
			}
		case "disallow":
			inAgentRun = false
			if applies && val != "" {
				rules.disallow = append(rules.disallow, val)
			}
		default:
			inAgentRun = false
		}
	}
	return rules
}

// fetchRobots downloads and parses host's robots.txt, bounding the
// attempt by timeout when positive. Any error — including 404 — yields
// allow-all, per convention.
func fetchRobots(client *http.Client, host string, timeout time.Duration) *robotsRules {
	u, err := url.Parse(host)
	if err != nil {
		return &robotsRules{}
	}
	u.Path = "/robots.txt"
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return &robotsRules{}
	}
	resp, err := client.Do(req)
	if err != nil {
		return &robotsRules{}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return &robotsRules{}
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return &robotsRules{}
	}
	return parseRobots(string(body))
}
