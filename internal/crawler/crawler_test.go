package crawler

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"pagequality/internal/graph"
	"pagequality/internal/webcorpus"
	"pagequality/internal/webserver"
)

// testCorpus grows a small corpus and returns its graph.
func testCorpus(t *testing.T, seed int64) *webcorpus.Sim {
	t.Helper()
	cfg := webcorpus.DefaultConfig()
	cfg.Sites = 8
	cfg.InitialPagesPerSite = 6
	cfg.Users = 2000
	cfg.VisitRate = 2000
	cfg.LinkProb = 0.2
	cfg.BirthRate = 2
	cfg.BurnInWeeks = 15
	cfg.Seed = seed
	sim, err := webcorpus.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// serve starts an httptest server over the simulation's current graph.
func serve(t *testing.T, sim *webcorpus.Sim) (*httptest.Server, *graph.Graph) {
	t.Helper()
	g := sim.Graph().Clone()
	srv, err := webserver.New(g, sim.AllTexts(webcorpus.TextOptions{MinWords: 10, MaxWords: 20}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, g
}

// reachable computes the set of nodes reachable from the per-site roots
// (lowest node id per site), which is exactly what the crawler can see.
func reachable(g *graph.Graph) map[graph.NodeID]bool {
	seenSite := map[int32]bool{}
	var queue []graph.NodeID
	seen := map[graph.NodeID]bool{}
	for i := 0; i < g.NumNodes(); i++ {
		site := g.Page(graph.NodeID(i)).Site
		if !seenSite[site] {
			seenSite[site] = true
			queue = append(queue, graph.NodeID(i))
			seen[graph.NodeID(i)] = true
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.OutLinks(v) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return seen
}

func TestCrawlReconstructsReachableGraph(t *testing.T) {
	sim := testCorpus(t, 1)
	ts, g := serve(t, sim)

	seeds, err := FetchSeeds(context.Background(), ts.Client(), ts.URL+"/seeds.txt")
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 {
		t.Fatal("no seeds")
	}
	res, err := Crawl(Config{Seeds: seeds, Client: ts.Client(), Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := reachable(g)
	if res.Stats.Fetched != len(want) {
		t.Fatalf("fetched %d pages, reachable set has %d", res.Stats.Fetched, len(want))
	}
	if res.Graph.NumNodes() != len(want) {
		t.Fatalf("crawled graph has %d nodes, want %d", res.Graph.NumNodes(), len(want))
	}
	if res.Stats.Errors != 0 {
		t.Fatalf("%d fetch errors", res.Stats.Errors)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	// Canonical URLs must match the corpus URLs, and out-degrees must
	// equal the induced subgraph's.
	for id := range want {
		url := g.Page(id).URL
		cid, ok := res.Graph.Lookup(url)
		if !ok {
			t.Fatalf("crawl missing page %s", url)
		}
		wantDeg := 0
		for _, to := range g.OutLinks(id) {
			if want[to] {
				wantDeg++
			}
		}
		if got := res.Graph.OutDegree(cid); got != wantDeg {
			t.Fatalf("page %s out-degree %d, want %d", url, got, wantDeg)
		}
		// Edge targets match exactly.
		for _, to := range res.Graph.OutLinks(cid) {
			toURL := res.Graph.Page(to).URL
			origTo, ok := g.Lookup(toURL)
			if !ok || !g.HasLink(id, origTo) {
				t.Fatalf("crawl invented edge %s -> %s", url, toURL)
			}
		}
	}
}

func TestCrawlDeterministicGraph(t *testing.T) {
	sim := testCorpus(t, 2)
	ts, _ := serve(t, sim)
	seeds, err := FetchSeeds(context.Background(), ts.Client(), ts.URL+"/seeds.txt")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Crawl(Config{Seeds: seeds, Client: ts.Client(), Concurrency: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Crawl(Config{Seeds: seeds, Client: ts.Client(), Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Node order is canonical-URL-sorted, so the binary encodings must be
	// identical regardless of fetch order.
	if string(a.Graph.AppendBinary(nil)) != string(b.Graph.AppendBinary(nil)) {
		t.Fatal("crawl graph depends on fetch concurrency")
	}
}

func TestCrawlPageCaps(t *testing.T) {
	sim := testCorpus(t, 3)
	ts, _ := serve(t, sim)
	seeds, err := FetchSeeds(context.Background(), ts.Client(), ts.URL+"/seeds.txt")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Crawl(Config{Seeds: seeds, Client: ts.Client(), MaxPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fetched > 10 {
		t.Fatalf("MaxPages violated: fetched %d", res.Stats.Fetched)
	}
	if res.Stats.SkippedCaps == 0 {
		t.Fatal("cap never triggered")
	}
	// Per-site cap: everything is one host here, so it behaves like a
	// total cap.
	res, err = Crawl(Config{Seeds: seeds, Client: ts.Client(), MaxPagesPerSite: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fetched > 5 {
		t.Fatalf("MaxPagesPerSite violated: fetched %d", res.Stats.Fetched)
	}
}

func TestCrawlHandles404(t *testing.T) {
	sim := testCorpus(t, 4)
	ts, _ := serve(t, sim)
	seeds, err := FetchSeeds(context.Background(), ts.Client(), ts.URL+"/seeds.txt")
	if err != nil {
		t.Fatal(err)
	}
	seeds = append(seeds, ts.URL+"/p/999999.html") // missing page
	res, err := Crawl(Config{Seeds: seeds, Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Errors != 1 {
		t.Fatalf("errors = %d, want 1", res.Stats.Errors)
	}
	if res.Stats.Fetched == 0 {
		t.Fatal("crawl gave up after the 404")
	}
}

func TestCrawlStaysOnHost(t *testing.T) {
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("crawler escaped to a foreign host")
	}))
	defer other.Close()
	main := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `<a href="%s/lure">offsite</a><a href="/self">self</a>`, other.URL)
	}))
	defer main.Close()
	res, err := Crawl(Config{Seeds: []string{main.URL + "/"}, Client: main.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fetched != 2 { // "/" and "/self"
		t.Fatalf("fetched %d, want 2", res.Stats.Fetched)
	}
}

func TestCrawlFragmentAndCycleHandling(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/":
			fmt.Fprint(w, `<a href="/a#frag">a</a><a href="/a">a2</a>`)
		case "/a":
			fmt.Fprint(w, `<a href="/">back</a><a href="/a">self</a>`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	res, err := Crawl(Config{Seeds: []string{srv.URL + "/"}, Client: srv.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fetched != 2 {
		t.Fatalf("fetched %d, want 2 (fragment dedup failed?)", res.Stats.Fetched)
	}
	// Self-link and cycle survive as graph edges (self-links dropped by
	// the graph layer).
	if res.Graph.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2 (/->a, a->/)", res.Graph.NumEdges())
	}
}

// TestCrawlRedirectBaseResolution pins the redirect bugfix: relative
// links on a redirected page must resolve against the URL the response
// finally came from, not the one that was requested — otherwise every
// relative href points at a phantom sibling of the request URL.
func TestCrawlRedirectBaseResolution(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/start":
			http.Redirect(w, r, "/dir/index.html", http.StatusFound)
		case "/dir/index.html":
			fmt.Fprint(w, `<a href="page2.html">next</a>`)
		case "/dir/page2.html":
			fmt.Fprint(w, "leaf")
		default:
			// The buggy resolution would ask for /page2.html.
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	res, err := Crawl(Config{Seeds: []string{srv.URL + "/start"}, Client: srv.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Errors != 0 {
		t.Fatalf("%d fetch errors: relative link resolved against the wrong base", res.Stats.Errors)
	}
	if res.Stats.Fetched != 2 {
		t.Fatalf("fetched %d, want 2 (/start and /dir/page2.html)", res.Stats.Fetched)
	}
	if _, ok := res.Graph.Lookup(srv.URL + "/dir/page2.html"); !ok {
		t.Fatal("redirect target's relative link missing from the graph")
	}
}

// TestBudgetRefundOnFailure pins the budget-leak bugfix: a URL that fails
// permanently must hand its MaxPages slot back, so later-discovered pages
// can still be admitted.
func TestBudgetRefundOnFailure(t *testing.T) {
	pages := map[string]string{
		"/":      `<a href="/good1">g</a><a href="/dead">d</a>`,
		"/good1": `<a href="/good2">g2</a>`,
		"/good2": "leaf",
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if body, ok := pages[r.URL.Path]; ok {
			fmt.Fprint(w, body)
			return
		}
		http.NotFound(w, r)
	}))
	defer srv.Close()
	// Concurrency 1 fixes the order: /dead is popped (and fails) before
	// /good1 discovers /good2, so the refunded slot is what admits it.
	for _, cfg := range []Config{
		{Seeds: []string{srv.URL + "/"}, Client: srv.Client(), Concurrency: 1, MaxPages: 3},
		{Seeds: []string{srv.URL + "/"}, Client: srv.Client(), Concurrency: 1, MaxPagesPerSite: 3},
	} {
		res, err := Crawl(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Fetched != 3 {
			t.Fatalf("fetched %d of 3 good pages: failed fetch still holds budget (caps %d/%d)",
				res.Stats.Fetched, cfg.MaxPages, cfg.MaxPagesPerSite)
		}
		if res.Stats.Errors != 1 || res.Stats.SkippedCaps != 0 {
			t.Fatalf("stats = %+v", res.Stats)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Crawl(Config{}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("no seeds accepted")
	}
	if _, err := Crawl(Config{Seeds: []string{"http://x/"}, Concurrency: -1}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("negative concurrency accepted")
	}
	if _, err := Crawl(Config{Seeds: []string{"http://x/"}, MaxBodyBytes: -1}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("negative body cap accepted")
	}
	if _, err := Crawl(Config{Seeds: []string{"://bad"}}); err == nil {
		t.Fatal("unparseable seed accepted")
	}
	if _, err := Crawl(Config{Seeds: []string{"relative/path"}}); err == nil {
		t.Fatal("relative seed accepted")
	}
}

func TestFetchSeedsErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/empty.txt":
			fmt.Fprint(w, "\n# comment only\n")
		case "/ok.txt":
			fmt.Fprint(w, "# roots\n/p/0.html\n/p/1.html\n")
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	if _, err := FetchSeeds(context.Background(), srv.Client(), srv.URL+"/missing.txt"); err == nil {
		t.Fatal("404 seed list accepted")
	}
	if _, err := FetchSeeds(context.Background(), srv.Client(), srv.URL+"/empty.txt"); err == nil {
		t.Fatal("empty seed list accepted")
	}
	seeds, err := FetchSeeds(context.Background(), srv.Client(), srv.URL+"/ok.txt")
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 2 || seeds[0] != srv.URL+"/p/0.html" {
		t.Fatalf("seeds = %v", seeds)
	}
}

// TestOnFetchAndAssemble archives every fetched body via the OnFetch hook
// and rebuilds the graph offline with Assemble; the re-extracted graph
// must be byte-identical to the live crawl's.
func TestOnFetchAndAssemble(t *testing.T) {
	sim := testCorpus(t, 5)
	ts, _ := serve(t, sim)
	seeds, err := FetchSeeds(context.Background(), ts.Client(), ts.URL+"/seeds.txt")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var docs []Document
	res, err := Crawl(Config{
		Seeds:  seeds,
		Client: ts.Client(),
		OnFetch: func(u string, body []byte) {
			mu.Lock()
			docs = append(docs, Document{FetchURL: u, Body: append([]byte(nil), body...)})
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != res.Stats.Fetched {
		t.Fatalf("archived %d of %d fetched docs", len(docs), res.Stats.Fetched)
	}
	rebuilt, err := Assemble(docs)
	if err != nil {
		t.Fatal(err)
	}
	if string(rebuilt.Graph.AppendBinary(nil)) != string(res.Graph.AppendBinary(nil)) {
		t.Fatal("offline re-extraction differs from the live crawl graph")
	}
}

func TestAssembleBadDocument(t *testing.T) {
	if _, err := Assemble([]Document{{FetchURL: "://bad", Body: nil}}); err == nil {
		t.Fatal("unparseable fetch URL accepted")
	}
	res, err := Assemble(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumNodes() != 0 {
		t.Fatal("empty assemble produced nodes")
	}
}
