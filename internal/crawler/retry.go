package crawler

import (
	"fmt"
	"time"

	"pagequality/internal/randx"
)

// Retry configures the transient-failure retry engine. The zero value
// selects the defaults below; set MaxAttempts to 1 to disable retries.
type Retry struct {
	// MaxAttempts is the total number of tries per URL, first fetch
	// included (default 3). Permanent failures never retry.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 100ms); it
	// doubles per attempt up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps every backoff, including server-requested Retry-After
	// waits (default 5s).
	MaxDelay time.Duration
	// Seed keys the deterministic jitter streams: the delay before retry k
	// of URL u is a pure function of (Seed, u, k), independent of worker
	// scheduling.
	Seed int64
	// Sleep performs the backoff wait (default time.Sleep). Tests inject a
	// recorder so retry paths run instantly.
	Sleep func(time.Duration)
}

func (r *Retry) fill() error {
	if r.MaxAttempts == 0 {
		r.MaxAttempts = 3
	}
	if r.MaxAttempts < 1 {
		return fmt.Errorf("%w: Retry.MaxAttempts=%d", ErrBadConfig, r.MaxAttempts)
	}
	if r.BaseDelay == 0 {
		r.BaseDelay = 100 * time.Millisecond
	}
	if r.MaxDelay == 0 {
		r.MaxDelay = 5 * time.Second
	}
	if r.BaseDelay < 0 || r.MaxDelay < 0 {
		return fmt.Errorf("%w: negative retry delays", ErrBadConfig)
	}
	if r.Sleep == nil {
		r.Sleep = time.Sleep //pqlint:allow walltime production default for the injected sleeper; tests inject fakes
	}
	return nil
}

// backoff returns the wait before retry attempt k (k >= 1) of u:
// exponential growth from BaseDelay with deterministic jitter in
// [base/2, base), raised to the server's Retry-After hint when one was
// given, and capped at MaxDelay. Pure — callers sleep, backoff never does.
func (r *Retry) backoff(u string, attempt int, retryAfter time.Duration) time.Duration {
	base := r.BaseDelay
	for k := 1; k < attempt && base < r.MaxDelay; k++ {
		base *= 2
	}
	if base > r.MaxDelay {
		base = r.MaxDelay
	}
	d := base
	if half := base / 2; half > 0 {
		s := randx.NewStream(r.Seed, randx.Key(u), uint64(attempt))
		d = half + time.Duration(randx.Float64(&s)*float64(half))
	}
	if retryAfter > d {
		d = retryAfter
	}
	if d > r.MaxDelay {
		d = r.MaxDelay
	}
	return d
}
