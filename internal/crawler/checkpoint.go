package crawler

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Checkpoint captures a crawl's progress so an interrupted crawl (the
// paper's crawls spanned days over 154 sites) can resume without
// re-fetching: the visited set, the outstanding frontier, the URLs that
// failed for good, and the accumulated statistics. Fetched documents
// themselves live in the pagestore archive (via Config.OnFetch); resuming
// re-fetches nothing that was archived, and the full graph is rebuilt
// offline with Assemble.
type Checkpoint struct {
	// Visited holds every URL already admitted (fetched or in the
	// frontier) except the permanently failed ones in Failed.
	Visited []string `json:"visited"`
	// Frontier holds the URLs admitted but not yet fetched when the crawl
	// stopped, including transiently failed ones queued for retry.
	Frontier []string `json:"frontier"`
	// Failed holds the URLs that failed permanently (e.g. 404): a resumed
	// crawl remembers them (never re-fetches) but they hold no page
	// budget.
	Failed []string `json:"failed,omitempty"`
	// Stats carries the accumulated counters.
	Stats Stats `json:"stats"`
}

// Save atomically persists the checkpoint as JSON.
func (c *Checkpoint) Save(path string) error {
	data, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("crawler: marshal checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ckpt-*")
	if err != nil {
		return fmt.Errorf("crawler: checkpoint temp: %w", err)
	}
	name := tmp.Name()
	defer os.Remove(name)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("crawler: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("crawler: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("crawler: close checkpoint: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		return fmt.Errorf("crawler: commit checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint; a missing file returns (nil, nil) so
// callers can treat "no checkpoint" as a fresh crawl.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("crawler: read checkpoint: %w", err)
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("crawler: parse checkpoint: %w", err)
	}
	return &c, nil
}
