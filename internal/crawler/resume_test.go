package crawler

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crawl.ckpt")
	// Missing file: fresh crawl.
	c, err := LoadCheckpoint(path)
	if err != nil || c != nil {
		t.Fatalf("missing checkpoint -> (%v, %v)", c, err)
	}
	ck := &Checkpoint{
		Visited:  []string{"http://a/", "http://b/"},
		Frontier: []string{"http://b/"},
		Stats:    Stats{Fetched: 1, Errors: 2},
	}
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Visited) != 2 || len(got.Frontier) != 1 || got.Stats.Fetched != 1 || got.Stats.Errors != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	// Corrupt file is an error, not a silent fresh start.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

// TestInterruptAndResume interrupts a crawl partway, saves the checkpoint,
// resumes, and verifies the two runs together cover exactly what one
// uninterrupted crawl fetches — with no page fetched twice.
func TestInterruptAndResume(t *testing.T) {
	sim := testCorpus(t, 7)
	ts, _ := serve(t, sim)
	seeds, err := FetchSeeds(context.Background(), ts.Client(), ts.URL+"/seeds.txt")
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the full crawl.
	full, err := Crawl(Config{Seeds: seeds, Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if full.Checkpoint != nil {
		t.Fatal("uninterrupted crawl returned a checkpoint")
	}
	if full.Stats.Fetched < 12 {
		t.Skipf("corpus too small to interrupt meaningfully (%d pages)", full.Stats.Fetched)
	}

	// Phase 1: interrupt after ~half the pages.
	interrupt := make(chan struct{})
	var fetched atomic.Int64
	var once sync.Once
	limit := int64(full.Stats.Fetched / 2)
	var mu sync.Mutex
	docs := map[string][]byte{}
	phase1, err := Crawl(Config{
		Seeds:       seeds,
		Client:      ts.Client(),
		Concurrency: 2,
		Interrupt:   interrupt,
		OnFetch: func(u string, body []byte) {
			mu.Lock()
			docs[u] = append([]byte(nil), body...)
			mu.Unlock()
			if fetched.Add(1) >= limit {
				once.Do(func() { close(interrupt) })
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if phase1.Checkpoint == nil {
		t.Fatal("interrupted crawl returned no checkpoint")
	}
	if phase1.Stats.Fetched >= full.Stats.Fetched {
		t.Fatalf("interrupt did not stop the crawl: %d of %d", phase1.Stats.Fetched, full.Stats.Fetched)
	}
	if len(phase1.Checkpoint.Frontier) == 0 {
		t.Fatal("checkpoint has an empty frontier despite interruption")
	}

	// Persist and reload, as a crashed process would.
	path := filepath.Join(t.TempDir(), "crawl.ckpt")
	if err := phase1.Checkpoint.Save(path); err != nil {
		t.Fatal(err)
	}
	resume, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: resume to completion, archiving into the same doc set.
	phase2, err := Crawl(Config{
		Seeds:  seeds,
		Client: ts.Client(),
		Resume: resume,
		OnFetch: func(u string, body []byte) {
			mu.Lock()
			if _, dup := docs[u]; dup {
				t.Errorf("page %s fetched twice across phases", u)
			}
			docs[u] = append([]byte(nil), body...)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if phase2.Checkpoint != nil {
		t.Fatal("resumed crawl still interrupted")
	}
	// Cumulative stats cover the full crawl.
	if phase2.Stats.Fetched != full.Stats.Fetched {
		t.Fatalf("cumulative fetched %d, want %d", phase2.Stats.Fetched, full.Stats.Fetched)
	}
	// The combined archive rebuilds the same graph as the full crawl.
	all := make([]Document, 0, len(docs))
	urls := make([]string, 0, len(docs))
	for u := range docs {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	for _, u := range urls {
		all = append(all, Document{FetchURL: u, Body: docs[u]})
	}
	rebuilt, err := Assemble(all)
	if err != nil {
		t.Fatal(err)
	}
	if string(rebuilt.Graph.AppendBinary(nil)) != string(full.Graph.AppendBinary(nil)) {
		t.Fatal("resumed archive differs from the uninterrupted crawl")
	}
}

func TestResumeRespectsPerSiteCounts(t *testing.T) {
	sim := testCorpus(t, 8)
	ts, _ := serve(t, sim)
	seeds, err := FetchSeeds(context.Background(), ts.Client(), ts.URL+"/seeds.txt")
	if err != nil {
		t.Fatal(err)
	}
	full, err := Crawl(Config{Seeds: seeds, Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	// Resume from a fake checkpoint that already "used" most of the per
	// -site budget: the resumed crawl must respect the remaining budget.
	cap_ := full.Stats.Fetched/2 + 1
	resume := &Checkpoint{Visited: nil, Frontier: nil}
	res, err := Crawl(Config{
		Seeds:           seeds,
		Client:          ts.Client(),
		Resume:          resume,
		MaxPagesPerSite: cap_,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fetched > cap_ {
		t.Fatalf("resumed crawl fetched %d, cap %d", res.Stats.Fetched, cap_)
	}
}
