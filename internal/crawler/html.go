package crawler

import "strings"

// This file is a minimal, dependency-free HTML scanner extracting exactly
// what the crawler needs: anchor hrefs and the rel=canonical link. It
// tolerates the usual messiness (attribute order, casing, single/double/
// missing quotes) without pulling in a full HTML5 parser.

// ExtractLinks returns the href of every <a> tag in document order, and
// the href of the first <link rel="canonical"> if present.
func ExtractLinks(body string) (hrefs []string, canonical string) {
	for i := 0; i < len(body); {
		lt := strings.IndexByte(body[i:], '<')
		if lt < 0 {
			break
		}
		i += lt + 1
		tag, attrs, next := scanTag(body, i)
		i = next
		switch tag {
		case "a":
			if href, ok := attrs["href"]; ok && href != "" {
				hrefs = append(hrefs, href)
			}
		case "link":
			if canonical == "" &&
				strings.EqualFold(attrs["rel"], "canonical") &&
				attrs["href"] != "" {
				canonical = attrs["href"]
			}
		}
	}
	return hrefs, canonical
}

// scanTag parses the tag starting at body[i] (just past '<') and returns
// the lowercase tag name, its attributes and the index just past '>'.
// Comments, closing tags and malformed fragments return an empty name.
func scanTag(body string, i int) (name string, attrs map[string]string, next int) {
	end := strings.IndexByte(body[i:], '>')
	if end < 0 {
		return "", nil, len(body)
	}
	content := body[i : i+end]
	next = i + end + 1
	if content == "" || content[0] == '/' || content[0] == '!' || content[0] == '?' {
		return "", nil, next
	}
	// Tag name: leading run of letters/digits.
	j := 0
	for j < len(content) && isNameByte(content[j]) {
		j++
	}
	name = strings.ToLower(content[:j])
	attrs = parseAttrs(content[j:])
	return name, attrs, next
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// parseAttrs parses ` key="value" key2='v' key3=v key4 ` fragments.
func parseAttrs(s string) map[string]string {
	attrs := make(map[string]string, 4)
	i := 0
	for i < len(s) {
		// skip whitespace and stray slashes
		for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r' || s[i] == '/') {
			i++
		}
		if i >= len(s) {
			break
		}
		// key
		ks := i
		for i < len(s) && s[i] != '=' && s[i] != ' ' && s[i] != '\t' && s[i] != '\n' && s[i] != '\r' {
			i++
		}
		key := strings.ToLower(s[ks:i])
		if key == "" {
			i++
			continue
		}
		// skip whitespace before '='
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= len(s) || s[i] != '=' {
			attrs[key] = "" // valueless attribute
			continue
		}
		i++ // past '='
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= len(s) {
			attrs[key] = ""
			break
		}
		var val string
		switch s[i] {
		case '"', '\'':
			q := s[i]
			i++
			vs := i
			for i < len(s) && s[i] != q {
				i++
			}
			val = s[vs:i]
			if i < len(s) {
				i++ // past closing quote
			}
		default:
			vs := i
			for i < len(s) && s[i] != ' ' && s[i] != '\t' && s[i] != '\n' && s[i] != '\r' {
				i++
			}
			val = s[vs:i]
		}
		attrs[key] = htmlUnescape(val)
	}
	return attrs
}

// htmlUnescape handles the few entities that matter inside URLs.
func htmlUnescape(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	r := strings.NewReplacer("&amp;", "&", "&lt;", "<", "&gt;", ">", "&quot;", `"`, "&#39;", "'")
	return r.Replace(s)
}
