package pagerank

import (
	"errors"
	"math/rand"
	"testing"

	"pagequality/internal/graph"
)

func TestAdaptiveMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g, err := graph.GeneratePreferentialAttachment(graph.PreferentialAttachmentConfig{Nodes: 3000, OutPerNode: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := graph.Freeze(g)
	for _, variant := range []Variant{VariantStandard, VariantPaper} {
		plain, err := Compute(c, Options{Variant: variant, Tol: 1e-10, MaxIter: 500})
		if err != nil {
			t.Fatal(err)
		}
		adaptive, err := ComputeAdaptive(c, AdaptiveOptions{Variant: variant, Tol: 1e-10, MaxIter: 500})
		if err != nil {
			t.Fatal(err)
		}
		if !adaptive.Converged {
			t.Fatalf("variant %d: adaptive did not converge", variant)
		}
		if d := maxAbsDiff(plain.Rank, adaptive.Rank); d > 1e-6 {
			t.Fatalf("variant %d: adaptive differs from plain by %g", variant, d)
		}
	}
}

func TestAdaptiveActuallySkipsWork(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g, err := graph.GeneratePreferentialAttachment(graph.PreferentialAttachmentConfig{Nodes: 5000, OutPerNode: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := graph.Freeze(g)
	res, err := ComputeAdaptive(c, AdaptiveOptions{Tol: 1e-10, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedUpdates == 0 {
		t.Fatal("no updates skipped — adaptivity inactive")
	}
	frozen := 0
	for _, at := range res.FrozenAt {
		if at > 0 {
			frozen++
			if at > res.Iterations {
				t.Fatalf("page frozen at iteration %d > total %d", at, res.Iterations)
			}
		}
	}
	if frozen < c.NumNodes()/2 {
		t.Fatalf("only %d of %d pages froze", frozen, c.NumNodes())
	}
}

func TestAdaptiveEmptyAndValidation(t *testing.T) {
	res, err := ComputeAdaptive(graph.Freeze(graph.New(0)), AdaptiveOptions{})
	if err != nil || !res.Converged {
		t.Fatalf("empty graph: %+v, %v", res, err)
	}
	c := cycle(4)
	if _, err := ComputeAdaptive(c, AdaptiveOptions{Jump: 2}); !errors.Is(err, ErrBadOptions) {
		t.Fatal("bad jump accepted")
	}
	if _, err := ComputeAdaptive(c, AdaptiveOptions{FreezeTol: -1}); !errors.Is(err, ErrBadOptions) {
		t.Fatal("negative freeze tolerance accepted")
	}
}

func TestAdaptiveCycleUniform(t *testing.T) {
	res, err := ComputeAdaptive(cycle(10), AdaptiveOptions{Variant: VariantStandard})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Rank {
		if v < 0.0999 || v > 0.1001 {
			t.Fatalf("rank[%d] = %g", i, v)
		}
	}
}

func BenchmarkAdaptivePageRank10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, err := graph.GeneratePreferentialAttachment(graph.PreferentialAttachmentConfig{Nodes: 10000, OutPerNode: 6}, rng)
	if err != nil {
		b.Fatal(err)
	}
	c := graph.Freeze(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeAdaptive(c, AdaptiveOptions{Tol: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}
