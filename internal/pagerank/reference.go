package pagerank

import (
	"fmt"
	"math"
	"sync"

	"pagequality/internal/graph"
)

// ComputeReference is the retained naive PageRank implementation: the
// closure-based kernel with a float division per edge and separate
// full-vector passes for the dangling-mass, vector-sum and delta
// bookkeeping that Compute replaced. It is kept verbatim as the
// correctness oracle for the specialised kernels (see
// TestKernelsMatchReference) and as the "before" side of
// BenchmarkPageRankKernel. It accepts the same Options and converges to
// the same fixed point as Compute.
func ComputeReference(c *graph.CSR, opts Options) (*Result, error) {
	n := c.NumNodes()
	if err := opts.fill(n); err != nil {
		return nil, err
	}
	if n == 0 {
		return &Result{Rank: nil, Converged: true}, nil
	}

	tele := normalizeTeleport(opts.Teleport)
	danglings := c.Danglings()

	// Base (per-node constant) and scale depend on the variant. Both
	// variants share one iteration kernel operating on an arbitrary-scale
	// vector; convergence is measured after scaling to sum 1.
	var base func(i int) float64
	follow := 1 - opts.Jump
	total := 1.0
	switch opts.Variant {
	case VariantPaper:
		total = float64(n)
		base = func(int) float64 { return opts.Jump }
	case VariantStandard:
		if tele == nil {
			b := opts.Jump / float64(n)
			base = func(int) float64 { return b }
		} else {
			base = func(i int) float64 { return opts.Jump * tele[i] }
		}
	default:
		return nil, fmt.Errorf("%w: unknown variant %d", ErrBadOptions, opts.Variant)
	}

	cur := make([]float64, n)
	next := make([]float64, n)
	init := total / float64(n)
	for i := range cur {
		cur[i] = init
	}

	var prev1, prev2 []float64
	if opts.Extrapolate {
		prev1 = make([]float64, n)
		prev2 = make([]float64, n)
	}

	pool := newRangePool(opts.Workers, n)
	defer pool.close()

	res := &Result{}
	for iter := 1; iter <= opts.MaxIter; iter++ {
		// Mass sitting on dangling pages this round.
		dmass := 0.0
		for _, d := range danglings {
			dmass += cur[d]
		}

		var dangAdd func(i int) float64
		switch opts.Dangling {
		case DanglingUniform:
			share := dmass / float64(n)
			dangAdd = func(int) float64 { return share }
		case DanglingSelf:
			dangAdd = func(i int) float64 {
				if c.OutDegree(graph.NodeID(i)) == 0 {
					return cur[i]
				}
				return 0
			}
		case DanglingTeleport:
			if tele == nil {
				share := dmass / float64(n)
				dangAdd = func(int) float64 { return share }
			} else {
				dangAdd = func(i int) float64 { return dmass * tele[i] }
			}
		default:
			return nil, fmt.Errorf("%w: unknown dangling policy %d", ErrBadOptions, opts.Dangling)
		}

		pool.run(func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sum := dangAdd(i)
				for _, j := range c.In(graph.NodeID(i)) {
					sum += cur[j] / float64(c.OutDegree(j))
				}
				next[i] = base(i) + follow*sum
			}
		})

		// L1 delta on the sum-1 normalised vectors.
		sumNext := 0.0
		for _, v := range next {
			sumNext += v
		}
		delta := 0.0
		sumCur := 0.0
		for _, v := range cur {
			sumCur += v
		}
		for i := range next {
			delta += math.Abs(next[i]/sumNext - cur[i]/sumCur)
		}
		res.Iterations = iter
		res.Delta = delta

		cur, next = next, cur
		if delta < opts.Tol {
			res.Converged = true
			break
		}

		if opts.Extrapolate && iter >= 3 && iter%opts.ExtrapolatePeriod == 0 {
			aitken(cur, prev1, prev2)
		}
		if opts.Extrapolate {
			prev2, prev1 = prev1, prev2
			copy(prev1, cur)
		}
	}

	// Rescale to the variant's convention (sum = total).
	sum := 0.0
	for _, v := range cur {
		sum += v
	}
	if sum > 0 {
		scale := total / sum
		for i := range cur {
			cur[i] *= scale
		}
	}
	res.Rank = cur
	return res, nil
}

// rangePool is the pre-rewrite worker pool retained for ComputeReference:
// one contiguous range per worker, no per-chunk reductions.
type rangePool struct {
	workers int
	n       int
	work    chan rangeTask
	wg      sync.WaitGroup
}

type rangeTask struct {
	fn     func(lo, hi int)
	lo, hi int
}

func newRangePool(workers, n int) *rangePool {
	if workers > n {
		workers = max(1, n)
	}
	p := &rangePool{
		workers: workers,
		n:       n,
		work:    make(chan rangeTask, workers),
	}
	for w := 0; w < workers; w++ {
		go func() { //pqlint:allow looproutine fixed-size pool; run() joins via wg.Wait and close() ends the workers
			for t := range p.work {
				t.fn(t.lo, t.hi)
				p.wg.Done()
			}
		}()
	}
	return p
}

// run executes fn over a partition of [0,n) and waits for completion.
func (p *rangePool) run(fn func(lo, hi int)) {
	p.wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		p.work <- rangeTask{fn: fn, lo: w * p.n / p.workers, hi: (w + 1) * p.n / p.workers}
	}
	p.wg.Wait()
}

func (p *rangePool) close() { close(p.work) }
