package pagerank_test

import (
	"fmt"

	"pagequality/internal/graph"
	"pagequality/internal/pagerank"
)

// A tiny hub-and-spokes Web: every spoke links to the hub, the hub links
// back to one spoke. The hub collects most of the rank mass.
func ExampleCompute() {
	g := graph.New(4)
	g.AddNodes(4)
	for spoke := graph.NodeID(1); spoke < 4; spoke++ {
		g.AddLink(spoke, 0)
	}
	g.AddLink(0, 1)
	res, err := pagerank.Compute(graph.Freeze(g), pagerank.Options{
		Variant: pagerank.VariantStandard,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("hub %.3f  favoured-spoke %.3f  other-spokes %.3f\n",
		res.Rank[0], res.Rank[1], res.Rank[2])
	// Output:
	// hub 0.480  favoured-spoke 0.445  other-spokes 0.038
}
