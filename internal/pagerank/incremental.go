package pagerank

import (
	"fmt"
	"math"

	"pagequality/internal/bitset"
	"pagequality/internal/graph"
)

// This file implements delta-aware PageRank: when the graph changes only
// locally between two freezes, the fixed point moves mostly in the region
// reachable from the change, so re-running the full power iteration from
// the uniform vector wastes nearly all of its work. ComputeIncremental
// instead re-seeds from the previous converged vector and runs localized
// residual-push sweeps over the frontier of dirty nodes — expanding along
// out-links only where a value actually moved — before certifying the
// result with full power-iteration sweeps under the exact convergence
// criterion Compute uses. Past a configurable churn threshold the
// locality assumption is void and it delegates to Compute wholesale,
// bitwise identical to a full recompute.

// IncrementalOptions configures ComputeIncremental. The embedded Options
// carry the same meaning as for Compute; Extrapolate is not supported
// (Aitken extrapolation assumes the geometric error decay of a cold
// start, which a warm start deliberately destroys).
type IncrementalOptions struct {
	Options

	// ChurnThreshold is the dirty-node fraction of the graph above which
	// the frontier pass is abandoned and the result comes from a plain
	// Compute call, bitwise identical to a full recompute. Default 0.25.
	ChurnThreshold float64

	// FrontierTol is the absolute per-node residual below which the
	// frontier phase leaves a correction unapplied (handing it to the
	// polish phase). Smaller values push more of the correction into the
	// cheap localized sweeps; larger values hand it to the polish phase.
	// Default: Tol scaled by the variant's per-node magnitude (Tol for
	// VariantPaper, whose entries are O(1); Tol/NumNodes for
	// VariantStandard, whose entries are O(1/NumNodes)) — so the frontier
	// phase converges its region to the same relative depth either way.
	FrontierTol float64

	// MaxFrontierSweeps bounds the localized sweeps before the polish
	// phase runs regardless. Default: MaxIter.
	MaxFrontierSweeps int
}

// IncrementalResult extends Result with incremental-path diagnostics.
// Iterations, Delta and Converged describe the polish phase (or the full
// recompute when FullRecompute is set) — the phase that enforces the
// same L1 criterion as Compute.
type IncrementalResult struct {
	Result
	// Dirty is the number of nodes the delta marked dirty.
	Dirty int
	// FullRecompute reports that churn exceeded ChurnThreshold and the
	// result is a verbatim Compute result.
	FullRecompute bool
	// FrontierSweeps is the number of localized sweeps performed.
	FrontierSweeps int
	// FrontierUpdates is the total number of node updates those sweeps
	// applied — the work the incremental path did in place of
	// Iterations × NumNodes full-sweep updates.
	FrontierUpdates int
}

func (o *IncrementalOptions) fill(n int) error {
	if err := o.Options.fill(n); err != nil {
		return err
	}
	if o.Extrapolate {
		return fmt.Errorf("%w: Extrapolate is not supported by ComputeIncremental", ErrBadOptions)
	}
	if o.ChurnThreshold == 0 {
		o.ChurnThreshold = 0.25
	}
	if o.ChurnThreshold < 0 || o.ChurnThreshold > 1 {
		return fmt.Errorf("%w: ChurnThreshold %g outside (0,1]", ErrBadOptions, o.ChurnThreshold)
	}
	if o.FrontierTol < 0 {
		return fmt.Errorf("%w: negative FrontierTol", ErrBadOptions)
	}
	if o.MaxFrontierSweeps == 0 {
		o.MaxFrontierSweeps = o.MaxIter
	}
	if o.MaxFrontierSweeps < 0 {
		return fmt.Errorf("%w: MaxFrontierSweeps %d < 0", ErrBadOptions, o.MaxFrontierSweeps)
	}
	return nil
}

// ComputeIncremental computes the PageRank of c given the converged
// vector prev of a previous freeze and the Delta between the two freezes
// (see graph.Diff). prev must be the Rank slice of a Compute (or
// ComputeIncremental) run with the same Options on the old freeze; it is
// read, never mutated.
//
// The result agrees with Compute(c, opts.Options) within the convergence
// tolerance — the fixed point is unique and both paths stop under the
// same L1 criterion — but not bitwise, except when churn trips the
// full-recompute fallback, which is Compute verbatim.
func ComputeIncremental(c *graph.CSR, prev []float64, d *graph.Delta, opts IncrementalOptions) (*IncrementalResult, error) {
	n := c.NumNodes()
	if err := opts.fill(n); err != nil {
		return nil, err
	}
	if d == nil {
		return nil, fmt.Errorf("%w: nil delta", ErrBadOptions)
	}
	if err := d.Validate(c); err != nil {
		return nil, err
	}
	if len(prev) != d.OldNodes {
		return nil, fmt.Errorf("%w: previous vector has %d entries, delta's old freeze has %d nodes",
			ErrBadOptions, len(prev), d.OldNodes)
	}
	if n == 0 {
		return &IncrementalResult{Result: Result{Converged: true}}, nil
	}

	dirty := d.DirtyNodes(c)
	res := &IncrementalResult{Dirty: len(dirty)}
	if float64(len(dirty)) > opts.ChurnThreshold*float64(n) {
		full, err := Compute(c, opts.Options)
		if err != nil {
			return nil, err
		}
		res.Result = *full
		res.FullRecompute = true
		return res, nil
	}

	// Setup mirrors Compute: per-variant base term and dangling policy.
	tele := normalizeTeleport(opts.Teleport)
	inOff, inFrom := c.InLists()
	invOut := c.InvOutDegrees()
	follow := 1 - opts.Jump

	total := 1.0
	baseConst := 0.0
	var baseVec []float64
	switch opts.Variant {
	case VariantPaper:
		total = float64(n)
		baseConst = opts.Jump
	case VariantStandard:
		if tele == nil {
			baseConst = opts.Jump / float64(n)
		} else {
			baseVec = make([]float64, n)
			for i, v := range tele {
				baseVec[i] = opts.Jump * v
			}
		}
	}
	danglingTele := opts.Dangling == DanglingTeleport && tele != nil
	danglingSelf := opts.Dangling == DanglingSelf
	shareBased := !danglingTele && !danglingSelf

	frontierTol := opts.FrontierTol
	if frontierTol == 0 {
		frontierTol = opts.Tol * total / float64(n)
	}

	// Warm-start vector: the previous fixed point for carried-over nodes,
	// the variant's uniform initial value for new ones — rescaled to the
	// variant's total mass. The rescale matters: the fixed point conserves
	// total mass, so when nodes arrive, every existing node's converged
	// value shrinks by the global factor the newcomers absorb. Seeding
	// with the unscaled vector leaves exactly that excess-mass error,
	// which decays at the damping factor (the slowest mode there is) and
	// would stall the polish phase near the tolerance.
	cur := make([]float64, n)
	copy(cur, prev)
	init := total / float64(n)
	warmSum := 0.0
	for i := d.OldNodes; i < n; i++ {
		cur[i] = init
	}
	for _, v := range cur {
		warmSum += v
	}
	if warmSum > 0 {
		scale := total / warmSum
		for i := range cur {
			cur[i] *= scale
		}
	}
	curS := make([]float64, n)
	dmass := 0.0
	for i, v := range cur {
		curS[i] = v * invOut[i]
		if invOut[i] == 0 {
			dmass += v
		}
	}

	// Frontier phase: residual push (Gauss–Southwell style, swept in
	// ascending node order for determinism). One gather pass over the
	// dirty nodes' in-lists prices their residuals r = (update rule) - cur;
	// after that, applying a residual costs out-degree work — each change
	// is pushed forward as follow·ch/outdeg onto the out-neighbours'
	// residuals — never another in-list gather. That asymmetry is the
	// point: on power-law graphs the dirty closure quickly includes hubs,
	// and re-gathering a hub's huge in-list every sweep (as a pull-based
	// frontier must) costs in-degree work per visit, which for hubs is
	// orders of magnitude more than their out-degree.
	//
	// Global couplings — the dangling share drifting as dmass moves, the
	// teleport redistribution of dangling mass, the final normalisation —
	// are priced into the initial residuals and then deliberately NOT
	// re-propagated (each would be an O(n) push); dmass is tracked and the
	// polish phase settles them exactly.
	r := make([]float64, n)
	frontier, next := bitset.New(n), bitset.New(n)
	share := 0.0
	if shareBased {
		share = dmass / float64(n)
	}
	for _, id := range dirty {
		i := int(id)
		gather := 0.0
		for e, end := inOff[i], inOff[i+1]; e < end; e++ {
			gather += curS[inFrom[e]]
		}
		inv := invOut[i]
		switch {
		case shareBased:
			gather += share
		case danglingTele:
			gather += dmass * tele[i]
		case danglingSelf:
			if inv == 0 {
				gather += cur[i]
			}
		}
		base := baseConst
		if baseVec != nil {
			base = baseVec[i]
		}
		r[i] = base + follow*gather - cur[i]
		frontier.Set(i)
	}
	for sweep := 1; sweep <= opts.MaxFrontierSweeps && frontier.Count() > 0; sweep++ {
		res.FrontierSweeps = sweep
		next.Reset()
		frontier.ForEach(func(i int) bool {
			ch := r[i]
			if math.Abs(ch) <= frontierTol {
				// Settled below the propagation threshold: drop from the
				// frontier but keep the residual — later pushes may lift it
				// back above the threshold, re-activating the node.
				return true
			}
			r[i] = 0
			cur[i] += ch
			res.FrontierUpdates++
			inv := invOut[i]
			if inv == 0 {
				dmass += ch
				// A dangling node's own update rule reads cur[i] under
				// DanglingSelf, so its change feeds straight back to itself.
				if danglingSelf {
					r[i] += follow * ch
					if math.Abs(r[i]) > frontierTol {
						next.Set(i)
					}
				}
				return true
			}
			push := follow * ch * inv
			for _, w := range c.Out(graph.NodeID(i)) {
				r[w] += push
				if math.Abs(r[w]) > frontierTol {
					next.Set(int(w))
				}
			}
			return true
		})
		frontier, next = next, frontier
	}

	// Polish phase: full parallel power-iteration sweeps from the frontier
	// result, under exactly Compute's L1 convergence criterion. A warm
	// start close to the fixed point converges in a handful of sweeps and
	// certifies the parts the frontier phase approximated (dangling-share
	// drift on clean nodes, normalisation).
	polish, err := computeFrom(c, opts.Options, cur)
	if err != nil {
		return nil, err
	}
	res.Result = *polish
	return res, nil
}
