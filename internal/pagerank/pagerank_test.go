package pagerank

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"pagequality/internal/graph"
)

func cycle(n int) *graph.CSR {
	g := graph.New(n)
	g.AddNodes(n)
	for i := 0; i < n; i++ {
		g.AddLink(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return graph.Freeze(g)
}

// denseReference computes standard PageRank by explicit dense matrix power
// iteration with the DanglingUniform policy; it is the oracle for the
// optimised implementation.
func denseReference(c *graph.CSR, jump float64, iters int) []float64 {
	n := c.NumNodes()
	cur := make([]float64, n)
	for i := range cur {
		cur[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	for it := 0; it < iters; it++ {
		dmass := 0.0
		for i := 0; i < n; i++ {
			if c.OutDegree(graph.NodeID(i)) == 0 {
				dmass += cur[i]
			}
		}
		for i := 0; i < n; i++ {
			sum := dmass / float64(n)
			for _, j := range c.In(graph.NodeID(i)) {
				sum += cur[j] / float64(c.OutDegree(j))
			}
			next[i] = jump/float64(n) + (1-jump)*sum
		}
		cur, next = next, cur
	}
	return cur
}

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if x := math.Abs(a[i] - b[i]); x > d {
			d = x
		}
	}
	return d
}

func TestCycleIsUniform(t *testing.T) {
	c := cycle(10)
	res, err := Compute(c, Options{Variant: VariantStandard})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: delta=%g after %d iters", res.Delta, res.Iterations)
	}
	for i, v := range res.Rank {
		if math.Abs(v-0.1) > 1e-8 {
			t.Fatalf("rank[%d] = %g, want 0.1", i, v)
		}
	}
}

func TestPaperVariantScale(t *testing.T) {
	c := cycle(10)
	res, err := Compute(c, Options{Variant: VariantPaper})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range res.Rank {
		sum += v
		if v < 0.15-1e-12 {
			t.Fatalf("paper-variant rank %g below damping floor", v)
		}
	}
	if math.Abs(sum-10) > 1e-6 {
		t.Fatalf("paper-variant sum = %g, want 10", sum)
	}
	// On a symmetric cycle every page has PR exactly 1.
	for i, v := range res.Rank {
		if math.Abs(v-1) > 1e-8 {
			t.Fatalf("rank[%d] = %g, want 1", i, v)
		}
	}
}

func TestStandardSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g, err := graph.GeneratePreferentialAttachment(graph.PreferentialAttachmentConfig{Nodes: 500, OutPerNode: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := graph.Freeze(g)
	for _, dang := range []Dangling{DanglingUniform, DanglingSelf, DanglingTeleport} {
		res, err := Compute(c, Options{Variant: VariantStandard, Dangling: dang})
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range res.Rank {
			sum += v
			if v < 0 {
				t.Fatalf("negative rank under policy %d", dang)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("policy %d: sum = %g, want 1", dang, sum)
		}
	}
}

func TestMatchesDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g, err := graph.GenerateUniform(80, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := graph.Freeze(g)
	want := denseReference(c, 0.15, 300)
	res, err := Compute(c, Options{Variant: VariantStandard, Tol: 1e-13, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Rank, want); d > 1e-9 {
		t.Fatalf("diff from dense reference = %g", d)
	}
}

func TestHubGetsMoreRank(t *testing.T) {
	// star: nodes 1..9 all link to 0; 0 links to 1.
	g := graph.New(10)
	g.AddNodes(10)
	for i := 1; i < 10; i++ {
		g.AddLink(graph.NodeID(i), 0)
	}
	g.AddLink(0, 1)
	res, err := Compute(graph.Freeze(g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 10; i++ {
		if res.Rank[0] <= res.Rank[i] {
			t.Fatalf("hub rank %g not above leaf %d rank %g", res.Rank[0], i, res.Rank[i])
		}
	}
	// Node 1 receives the hub's whole out-flow: must beat nodes 2..9.
	for i := 2; i < 10; i++ {
		if res.Rank[1] <= res.Rank[i] {
			t.Fatalf("rank[1]=%g not above rank[%d]=%g", res.Rank[1], i, res.Rank[i])
		}
	}
}

func TestDanglingPoliciesDiffer(t *testing.T) {
	// 0 -> 1, 1 dangling.
	g := graph.New(2)
	g.AddNodes(2)
	g.AddLink(0, 1)
	c := graph.Freeze(g)
	self, err := Compute(c, Options{Variant: VariantStandard, Dangling: DanglingSelf})
	if err != nil {
		t.Fatal(err)
	}
	uni, err := Compute(c, Options{Variant: VariantStandard, Dangling: DanglingUniform})
	if err != nil {
		t.Fatal(err)
	}
	// Under DanglingSelf node 1 hoards its mass, so it must score higher
	// than under DanglingUniform.
	if self.Rank[1] <= uni.Rank[1] {
		t.Fatalf("self=%g uniform=%g: self policy should favour the dangling page",
			self.Rank[1], uni.Rank[1])
	}
}

func TestPersonalizedTeleport(t *testing.T) {
	c := cycle(10)
	tele := make([]float64, 10)
	tele[3] = 1 // all jumps land on node 3
	res, err := Compute(c, Options{Variant: VariantStandard, Teleport: tele})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Rank {
		if i != 3 && v >= res.Rank[3] {
			t.Fatalf("personalised rank[3]=%g not maximal (rank[%d]=%g)", res.Rank[3], i, v)
		}
	}
}

func TestTeleportValidation(t *testing.T) {
	c := cycle(4)
	if _, err := Compute(c, Options{Teleport: []float64{1, 1}}); !errors.Is(err, ErrBadOptions) {
		t.Fatal("wrong-length teleport accepted")
	}
	if _, err := Compute(c, Options{Teleport: []float64{1, -1, 0, 0}}); !errors.Is(err, ErrBadOptions) {
		t.Fatal("negative teleport accepted")
	}
	if _, err := Compute(c, Options{Teleport: []float64{0, 0, 0, 0}}); !errors.Is(err, ErrBadOptions) {
		t.Fatal("zero teleport accepted")
	}
}

func TestOptionValidation(t *testing.T) {
	c := cycle(4)
	for _, tc := range []struct {
		name    string
		opts    Options
		wantErr bool
	}{
		{"negative jump", Options{Jump: -0.5}, true},
		{"jump above one", Options{Jump: 1.5}, true},
		{"negative tol", Options{Tol: -1}, true},
		{"negative maxiter", Options{MaxIter: -3}, true},
		{"unknown variant", Options{Variant: Variant(9)}, true},
		{"unknown dangling", Options{Dangling: Dangling(9)}, true},
		{"negative extrapolate period", Options{ExtrapolatePeriod: -1}, true},
		{"negative period with extrapolation on", Options{Extrapolate: true, ExtrapolatePeriod: -10}, true},
		{"defaults", Options{}, false},
		{"explicit extrapolation period", Options{Extrapolate: true, ExtrapolatePeriod: 5}, false},
		{"period without extrapolation", Options{ExtrapolatePeriod: 7}, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compute(c, tc.opts)
			if tc.wantErr && !errors.Is(err, ErrBadOptions) {
				t.Fatalf("options %+v accepted (err=%v)", tc.opts, err)
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("options %+v rejected: %v", tc.opts, err)
			}
		})
	}
}

// danglyGraph is a preferential-attachment graph with extra guaranteed
// dangling nodes (in-links only), so every dangling policy has mass to
// redistribute.
func danglyGraph(t testing.TB, nodes, extraDangling int, seed int64) *graph.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := graph.GeneratePreferentialAttachment(
		graph.PreferentialAttachmentConfig{Nodes: nodes, OutPerNode: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	first := g.AddNodes(extraDangling)
	for i := 0; i < extraDangling; i++ {
		g.AddLink(graph.NodeID(rng.Intn(nodes)), first+graph.NodeID(i))
	}
	return graph.Freeze(g)
}

// normalized returns v scaled to sum 1, so vectors from different
// variants compare on one scale.
func normalized(v []float64) []float64 {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x / sum
	}
	return out
}

// TestKernelsMatchReference checks every specialised kernel against the
// retained naive implementation: for all Variant × Dangling × Teleport
// combinations the converged sum-1 vectors must agree to 1e-12.
func TestKernelsMatchReference(t *testing.T) {
	c := danglyGraph(t, 2000, 60, 7)
	n := c.NumNodes()
	tele := make([]float64, n)
	for i := range tele {
		tele[i] = float64(i%17) + 1
	}
	for _, variant := range []Variant{VariantPaper, VariantStandard} {
		for _, dang := range []Dangling{DanglingUniform, DanglingSelf, DanglingTeleport} {
			for _, tv := range [][]float64{nil, tele} {
				name := fmt.Sprintf("variant=%d/dangling=%d/teleport=%v", variant, dang, tv != nil)
				t.Run(name, func(t *testing.T) {
					opts := Options{
						Variant: variant, Dangling: dang, Teleport: tv,
						Tol: 1e-13, MaxIter: 1000,
					}
					fast, err := Compute(c, opts)
					if err != nil {
						t.Fatal(err)
					}
					ref, err := ComputeReference(c, opts)
					if err != nil {
						t.Fatal(err)
					}
					if !fast.Converged || !ref.Converged {
						t.Fatalf("convergence: fast=%v ref=%v", fast.Converged, ref.Converged)
					}
					if d := maxAbsDiff(normalized(fast.Rank), normalized(ref.Rank)); d > 1e-12 {
						t.Fatalf("kernel diverges from reference by %g", d)
					}
				})
			}
		}
	}
}

// TestComputeDeterministicAcrossWorkers exercises the chunked worker pool
// (run it under -race) and checks the guarantee that parallelism never
// changes the result: the per-chunk reductions combine identically for
// every Workers setting, so the ranks must match bitwise and the
// iteration counts exactly.
func TestComputeDeterministicAcrossWorkers(t *testing.T) {
	c := danglyGraph(t, 5000, 100, 11)
	workerSets := []int{1, 4, runtime.GOMAXPROCS(0)}
	var baseline *Result
	for _, w := range workerSets {
		res, err := Compute(c, Options{Workers: w, Tol: 1e-11})
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = res
			continue
		}
		if res.Iterations != baseline.Iterations {
			t.Fatalf("workers=%d: %d iterations, want %d", w, res.Iterations, baseline.Iterations)
		}
		for i := range res.Rank {
			if res.Rank[i] != baseline.Rank[i] { //pqlint:allow floateq worker-count bitwise parity is the property under test
				t.Fatalf("workers=%d: rank[%d] = %g differs from workers=%d value %g",
					w, i, res.Rank[i], workerSets[0], baseline.Rank[i])
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	res, err := Compute(graph.Freeze(graph.New(0)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rank) != 0 || !res.Converged {
		t.Fatalf("empty graph result = %+v", res)
	}
}

func TestAllDanglingGraph(t *testing.T) {
	g := graph.New(5)
	g.AddNodes(5) // no edges at all
	res, err := Compute(graph.Freeze(g), Options{Variant: VariantStandard})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Rank {
		if math.Abs(v-0.2) > 1e-9 {
			t.Fatalf("rank[%d] = %g, want uniform 0.2", i, v)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := graph.GeneratePreferentialAttachment(graph.PreferentialAttachmentConfig{Nodes: 2000, OutPerNode: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := graph.Freeze(g)
	serial, err := Compute(c, Options{Workers: 1, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Compute(c, Options{Workers: 8, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(serial.Rank, parallel.Rank); d > 1e-12 {
		t.Fatalf("parallel differs from serial by %g", d)
	}
	if serial.Iterations != parallel.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", serial.Iterations, parallel.Iterations)
	}
}

func TestMoreWorkersThanNodes(t *testing.T) {
	c := cycle(3)
	res, err := Compute(c, Options{Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge with workers > nodes")
	}
}

func TestExtrapolationReachesSameFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g, err := graph.GeneratePreferentialAttachment(graph.PreferentialAttachmentConfig{Nodes: 1000, OutPerNode: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := graph.Freeze(g)
	plain, err := Compute(c, Options{Tol: 1e-12, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Compute(c, Options{Tol: 1e-12, MaxIter: 500, Extrapolate: true})
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Converged {
		t.Fatal("extrapolated run did not converge")
	}
	if d := maxAbsDiff(plain.Rank, fast.Rank); d > 1e-8 {
		t.Fatalf("extrapolated fixed point differs by %g", d)
	}
}

func TestConvergenceReporting(t *testing.T) {
	c := cycle(50)
	res, err := Compute(c, Options{MaxIter: 2, Tol: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	// A cycle from uniform start converges instantly, so pick an asymmetric
	// graph for the non-convergence check.
	g := graph.New(3)
	g.AddNodes(3)
	g.AddLink(0, 1)
	g.AddLink(1, 2)
	g.AddLink(2, 0)
	g.AddLink(0, 2)
	res, err = Compute(graph.Freeze(g), Options{MaxIter: 1, Tol: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("claimed convergence after 1 iteration at 1e-15 tol")
	}
	if res.Iterations != 1 {
		t.Fatalf("iterations = %d, want 1", res.Iterations)
	}
}

// Property: for random graphs, standard PageRank is a probability
// distribution and every entry is at least the teleport floor.
func TestQuickDistributionInvariant(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn%50) + 5
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.GenerateUniform(n, n*2, rng)
		if err != nil {
			return false
		}
		res, err := Compute(graph.Freeze(g), Options{Variant: VariantStandard})
		if err != nil {
			return false
		}
		sum := 0.0
		floor := 0.15 / float64(n)
		for _, v := range res.Rank {
			if v < floor-1e-12 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHITSAuthority(t *testing.T) {
	// 0,1,2 all point to 3 and 4; 3 also points to 4.
	g := graph.New(5)
	g.AddNodes(5)
	for i := 0; i < 3; i++ {
		g.AddLink(graph.NodeID(i), 3)
		g.AddLink(graph.NodeID(i), 4)
	}
	g.AddLink(3, 4)
	res, err := HITS(graph.Freeze(g), HITSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("HITS did not converge")
	}
	// 4 has the most/best in-links: top authority.
	for i := 0; i < 4; i++ {
		if res.Authorities[4] <= res.Authorities[i] {
			t.Fatalf("authority[4]=%g not maximal vs [%d]=%g", res.Authorities[4], i, res.Authorities[i])
		}
	}
	// 0..2 are the hubs; node 4 (no out-links) must have zero hub score.
	if res.Hubs[4] != 0 {
		t.Fatalf("hub[4] = %g, want 0", res.Hubs[4])
	}
	for i := 0; i < 3; i++ {
		if res.Hubs[i] <= res.Hubs[3] {
			t.Fatalf("hub[%d]=%g not above hub[3]=%g", i, res.Hubs[i], res.Hubs[3])
		}
	}
}

func TestHITSEmptyAndValidation(t *testing.T) {
	res, err := HITS(graph.Freeze(graph.New(0)), HITSOptions{})
	if err != nil || !res.Converged {
		t.Fatalf("empty HITS = (%+v, %v)", res, err)
	}
	if _, err := HITS(cycle(3), HITSOptions{MaxIter: -1}); !errors.Is(err, ErrBadOptions) {
		t.Fatal("negative MaxIter accepted")
	}
}

func TestInDegreeBaselines(t *testing.T) {
	g := graph.New(3)
	g.AddNodes(3)
	g.AddLink(0, 2)
	g.AddLink(1, 2)
	c := graph.Freeze(g)
	raw := InDegree(c)
	if raw[2] != 2 || raw[0] != 0 {
		t.Fatalf("InDegree = %v", raw)
	}
	norm := NormalizedInDegree(c)
	if math.Abs(norm[2]-1) > 1e-12 {
		t.Fatalf("NormalizedInDegree = %v", norm)
	}
	// Edgeless graph: uniform.
	empty := graph.New(4)
	empty.AddNodes(4)
	norm = NormalizedInDegree(graph.Freeze(empty))
	for _, v := range norm {
		if math.Abs(v-0.25) > 1e-12 {
			t.Fatalf("edgeless NormalizedInDegree = %v", norm)
		}
	}
}

func BenchmarkPageRank10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, err := graph.GeneratePreferentialAttachment(graph.PreferentialAttachmentConfig{Nodes: 10000, OutPerNode: 6}, rng)
	if err != nil {
		b.Fatal(err)
	}
	c := graph.Freeze(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(c, Options{Tol: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageRankExtrapolated10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, err := graph.GeneratePreferentialAttachment(graph.PreferentialAttachmentConfig{Nodes: 10000, OutPerNode: 6}, rng)
	if err != nil {
		b.Fatal(err)
	}
	c := graph.Freeze(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(c, Options{Tol: 1e-8, Extrapolate: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHITS10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, err := graph.GeneratePreferentialAttachment(graph.PreferentialAttachmentConfig{Nodes: 10000, OutPerNode: 6}, rng)
	if err != nil {
		b.Fatal(err)
	}
	c := graph.Freeze(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HITS(c, HITSOptions{Tol: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDanglingTeleportWithPersonalization(t *testing.T) {
	// 0 -> 1, both 1 and 2 dangling; all dangling mass and jumps go to 2.
	g := graph.New(3)
	g.AddNodes(3)
	g.AddLink(0, 1)
	tele := []float64{0, 0, 1}
	res, err := Compute(graph.Freeze(g), Options{
		Variant:  VariantStandard,
		Dangling: DanglingTeleport,
		Teleport: tele,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 absorbs jumps and dangling mass: it must dominate.
	if res.Rank[2] <= res.Rank[0] || res.Rank[2] <= res.Rank[1] {
		t.Fatalf("teleport sink not dominant: %v", res.Rank)
	}
	sum := res.Rank[0] + res.Rank[1] + res.Rank[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum = %g", sum)
	}
}

func TestTeleportNormalizedInternally(t *testing.T) {
	// A non-normalised teleport vector gives the same result as its
	// normalised form.
	c := cycle(6)
	t1 := []float64{5, 0, 0, 0, 0, 5}
	t2 := []float64{0.5, 0, 0, 0, 0, 0.5}
	a, err := Compute(c, Options{Variant: VariantStandard, Teleport: t1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(c, Options{Variant: VariantStandard, Teleport: t2})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(a.Rank, b.Rank); d > 1e-12 {
		t.Fatalf("scaling the teleport changed the result by %g", d)
	}
}
