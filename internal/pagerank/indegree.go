package pagerank

import "pagequality/internal/graph"

// InDegree returns the raw in-link count per node as a float vector. The
// paper notes (footnote 4) that the link count can substitute for PageRank
// as the popularity measure in the quality estimator; this is that
// baseline.
func InDegree(c *graph.CSR) []float64 {
	v := make([]float64, c.NumNodes())
	for i := range v {
		v[i] = float64(c.InDegree(graph.NodeID(i)))
	}
	return v
}

// NormalizedInDegree returns in-degree scaled to sum to 1 (a probability
// vector comparable with VariantStandard PageRank). A graph with no edges
// yields the uniform distribution.
func NormalizedInDegree(c *graph.CSR) []float64 {
	v := InDegree(c)
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if sum == 0 {
		if len(v) > 0 {
			u := 1 / float64(len(v))
			for i := range v {
				v[i] = u
			}
		}
		return v
	}
	for i := range v {
		v[i] /= sum
	}
	return v
}
