package pagerank

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"pagequality/internal/graph"
)

// churnGraphs builds a preferential-attachment graph, freezes it, then
// applies a bounded amount of churn — edge additions, removals and a few
// new nodes — and freezes again.
func churnGraphs(t testing.TB, nodes, newNodes, addEdges, removeEdges int, seed int64) (old, cur *graph.CSR) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := graph.GeneratePreferentialAttachment(
		graph.PreferentialAttachmentConfig{Nodes: nodes, OutPerNode: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	old = graph.Freeze(g)

	for removed := 0; removed < removeEdges; {
		from := graph.NodeID(rng.Intn(nodes))
		if outs := g.OutLinks(from); len(outs) > 1 { // keep the graph connected-ish
			if g.RemoveLink(from, outs[rng.Intn(len(outs))]) {
				removed++
			}
		}
	}
	for added := 0; added < addEdges; {
		if g.AddLink(graph.NodeID(rng.Intn(nodes)), graph.NodeID(rng.Intn(nodes))) {
			added++
		}
	}
	first := g.AddNodes(newNodes)
	for i := 0; i < newNodes; i++ {
		g.AddLink(graph.NodeID(rng.Intn(nodes)), first+graph.NodeID(i))
		g.AddLink(first+graph.NodeID(i), graph.NodeID(rng.Intn(nodes)))
	}
	return old, graph.Freeze(g)
}

// normalizedL1 returns the L1 distance between the sum-1 normalisations
// of a and b.
func normalizedL1(t testing.TB, a, b []float64) float64 {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("length mismatch %d vs %d", len(a), len(b))
	}
	sa, sb := 0.0, 0.0
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	d := 0.0
	for i := range a {
		d += math.Abs(a[i]/sa - b[i]/sb)
	}
	return d
}

// TestIncrementalParity pins the incremental fixed point to the full
// Compute fixed point within the convergence tolerance, across variants
// and dangling policies, including a personalised teleport vector.
func TestIncrementalParity(t *testing.T) {
	old, cur := churnGraphs(t, 3000, 15, 30, 20, 7)
	d, err := graph.Diff(old, cur)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumChanges() == 0 {
		t.Fatal("fixture produced no churn")
	}

	teleport := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(i%13) + 1
		}
		return v
	}
	cases := []struct {
		name string
		opts Options
	}{
		{"paper-uniform", Options{Variant: VariantPaper}},
		{"paper-self", Options{Variant: VariantPaper, Dangling: DanglingSelf}},
		{"paper-teleport", Options{Variant: VariantPaper, Dangling: DanglingTeleport}},
		{"standard-uniform", Options{Variant: VariantStandard}},
		{"standard-personalised", Options{
			Variant: VariantStandard, Dangling: DanglingTeleport,
			Teleport: teleport(cur.NumNodes()),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			oldOpts := tc.opts
			if oldOpts.Teleport != nil {
				oldOpts.Teleport = oldOpts.Teleport[:old.NumNodes()]
			}
			prev, err := Compute(old, oldOpts)
			if err != nil {
				t.Fatal(err)
			}
			full, err := Compute(cur, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			inc, err := ComputeIncremental(cur, prev.Rank, d, IncrementalOptions{Options: tc.opts})
			if err != nil {
				t.Fatal(err)
			}
			if inc.FullRecompute {
				t.Fatalf("churn fallback tripped on %d dirty of %d nodes", inc.Dirty, cur.NumNodes())
			}
			if !inc.Converged {
				t.Fatalf("incremental did not converge: %+v", inc.Result)
			}
			tol := tc.opts.Tol
			if tol == 0 {
				tol = 1e-9
			}
			if l1 := normalizedL1(t, inc.Rank, full.Rank); l1 > 10*tol {
				t.Fatalf("incremental diverges from full recompute: L1 = %g", l1)
			}
			if inc.Dirty == 0 || inc.FrontierSweeps == 0 || inc.FrontierUpdates == 0 {
				t.Fatalf("frontier phase did not run: %+v", inc)
			}
			// The warm start must save power iterations over the cold start.
			if inc.Iterations >= full.Iterations {
				t.Errorf("polish took %d iterations, full compute %d — no warm-start win",
					inc.Iterations, full.Iterations)
			}
		})
	}
}

// TestIncrementalChurnFallback pins the fallback contract: past the churn
// threshold the result is bitwise identical to Compute.
func TestIncrementalChurnFallback(t *testing.T) {
	old, cur := churnGraphs(t, 500, 10, 30, 10, 3)
	d, err := graph.Diff(old, cur)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := Compute(old, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Compute(cur, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := ComputeIncremental(cur, prev.Rank, d, IncrementalOptions{
		ChurnThreshold: 1e-6, // any dirt trips it
	})
	if err != nil {
		t.Fatal(err)
	}
	if !inc.FullRecompute {
		t.Fatalf("churn threshold did not trip with %d dirty nodes", inc.Dirty)
	}
	if inc.Iterations != full.Iterations || inc.Converged != full.Converged {
		t.Fatalf("fallback diagnostics differ: %+v vs %+v", inc.Result, full)
	}
	for i := range full.Rank {
		if math.Float64bits(inc.Rank[i]) != math.Float64bits(full.Rank[i]) {
			t.Fatalf("fallback not bitwise identical at node %d: %x vs %x",
				i, math.Float64bits(inc.Rank[i]), math.Float64bits(full.Rank[i]))
		}
	}
}

// TestIncrementalNoChange: an empty delta converges immediately from the
// previous vector.
func TestIncrementalNoChange(t *testing.T) {
	old, _ := churnGraphs(t, 500, 0, 0, 0, 5)
	d, err := graph.Diff(old, old)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := Compute(old, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := ComputeIncremental(old, prev.Rank, d, IncrementalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Dirty != 0 || inc.FrontierSweeps != 0 {
		t.Fatalf("empty delta did frontier work: %+v", inc)
	}
	if !inc.Converged || inc.Iterations > 2 {
		t.Fatalf("no-change polish took %d iterations", inc.Iterations)
	}
	if l1 := normalizedL1(t, inc.Rank, prev.Rank); l1 > 1e-8 {
		t.Fatalf("no-change result moved by L1 %g", l1)
	}
}

// TestIncrementalDeterminism: the incremental path is bitwise
// reproducible, including across Workers settings (the frontier phase is
// serial; the polish sweeps are chunk-deterministic like Compute).
func TestIncrementalDeterminism(t *testing.T) {
	old, cur := churnGraphs(t, 2000, 20, 40, 20, 11)
	d, err := graph.Diff(old, cur)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := Compute(old, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ref *IncrementalResult
	for _, workers := range []int{1, 2, 4} {
		inc, err := ComputeIncremental(cur, prev.Rank, d, IncrementalOptions{
			Options: Options{Workers: workers},
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = inc
			continue
		}
		if inc.Iterations != ref.Iterations || inc.FrontierSweeps != ref.FrontierSweeps ||
			inc.FrontierUpdates != ref.FrontierUpdates {
			t.Fatalf("workers=%d diagnostics differ: %+v vs %+v", workers, inc, ref)
		}
		for i := range ref.Rank {
			if math.Float64bits(inc.Rank[i]) != math.Float64bits(ref.Rank[i]) {
				t.Fatalf("workers=%d not bitwise identical at node %d", workers, i)
			}
		}
	}
}

func TestIncrementalBadInput(t *testing.T) {
	old, cur := churnGraphs(t, 500, 5, 10, 5, 9)
	d, err := graph.Diff(old, cur)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := Compute(old, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ComputeIncremental(cur, prev.Rank, nil, IncrementalOptions{}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("nil delta accepted: %v", err)
	}
	if _, err := ComputeIncremental(cur, prev.Rank[:10], d, IncrementalOptions{}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("short previous vector accepted: %v", err)
	}
	if _, err := ComputeIncremental(old, prev.Rank, d, IncrementalOptions{}); !errors.Is(err, graph.ErrDelta) {
		t.Fatalf("delta applied to wrong CSR accepted: %v", err)
	}
	if _, err := ComputeIncremental(cur, prev.Rank, d, IncrementalOptions{
		Options: Options{Extrapolate: true},
	}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("Extrapolate accepted: %v", err)
	}
	if _, err := ComputeIncremental(cur, prev.Rank, d, IncrementalOptions{ChurnThreshold: 2}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("ChurnThreshold > 1 accepted: %v", err)
	}
	if _, err := ComputeIncremental(cur, prev.Rank, d, IncrementalOptions{FrontierTol: -1}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("negative FrontierTol accepted: %v", err)
	}
	if _, err := ComputeIncremental(cur, prev.Rank, d, IncrementalOptions{MaxFrontierSweeps: -1}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("negative MaxFrontierSweeps accepted: %v", err)
	}
}
