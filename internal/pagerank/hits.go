package pagerank

import (
	"fmt"
	"math"

	"pagequality/internal/graph"
)

// HITSResult carries the hub and authority vectors of Kleinberg's HITS
// algorithm [13], the main link-based alternative to PageRank discussed in
// the paper's related work.
type HITSResult struct {
	// Hubs scores pages by how well they point at good authorities.
	Hubs []float64
	// Authorities scores pages by how well good hubs point at them.
	Authorities []float64
	// Iterations performed and whether the L1 deltas converged.
	Iterations int
	Converged  bool
}

// HITSOptions configures HITS.
type HITSOptions struct {
	// Tol is the L1 convergence threshold (default 1e-9).
	Tol float64
	// MaxIter bounds the iterations (default 100).
	MaxIter int
}

// HITS runs the hub/authority mutual-reinforcement iteration on c with
// L2 normalisation per step.
func HITS(c *graph.CSR, opts HITSOptions) (*HITSResult, error) {
	if opts.Tol == 0 {
		opts.Tol = 1e-9
	}
	if opts.MaxIter == 0 {
		opts.MaxIter = 100
	}
	if opts.Tol < 0 || opts.MaxIter < 1 {
		return nil, fmt.Errorf("%w: tol=%g maxIter=%d", ErrBadOptions, opts.Tol, opts.MaxIter)
	}
	n := c.NumNodes()
	res := &HITSResult{
		Hubs:        make([]float64, n),
		Authorities: make([]float64, n),
	}
	if n == 0 {
		res.Converged = true
		return res, nil
	}
	h := res.Hubs
	a := res.Authorities
	for i := range h {
		h[i] = 1
		a[i] = 1
	}
	prevA := make([]float64, n)
	prevH := make([]float64, n)
	for iter := 1; iter <= opts.MaxIter; iter++ {
		copy(prevA, a)
		copy(prevH, h)
		// a = Eᵀ h
		for i := 0; i < n; i++ {
			sum := 0.0
			for _, j := range c.In(graph.NodeID(i)) {
				sum += h[j]
			}
			a[i] = sum
		}
		normalizeL2(a)
		// h = E a
		for i := 0; i < n; i++ {
			sum := 0.0
			for _, j := range c.Out(graph.NodeID(i)) {
				sum += a[j]
			}
			h[i] = sum
		}
		normalizeL2(h)
		res.Iterations = iter
		if l1(a, prevA)+l1(h, prevH) < opts.Tol {
			res.Converged = true
			break
		}
	}
	return res, nil
}

func normalizeL2(v []float64) {
	sum := 0.0
	for _, x := range v {
		sum += x * x
	}
	if sum == 0 {
		return
	}
	inv := 1 / math.Sqrt(sum)
	for i := range v {
		v[i] *= inv
	}
}

func l1(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}
