// Package pagerank implements the popularity metrics the paper builds on:
// the PageRank power iteration in both the paper's un-normalised,
// 1-initialised form (Section 3) and the standard stochastic form, with
// configurable damping, dangling-node policies, optional personalised
// teleport vectors, parallel execution and Aitken Δ² extrapolation
// acceleration. The package also provides the HITS and in-degree baselines
// referenced in the paper's related work.
package pagerank

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"pagequality/internal/graph"
)

// Variant selects the normalisation convention of the computed vector.
type Variant uint8

const (
	// VariantPaper matches Section 3 of the paper:
	//     PR(p_i) = d + (1-d) [PR(p_1)/c_1 + ... + PR(p_m)/c_m]
	// with every PR initialised to 1 (as in the paper's experiment, §8.1).
	// The vector sums to ~NumNodes and individual values are >= d.
	VariantPaper Variant = iota
	// VariantStandard is the stochastic random-surfer form: the vector is a
	// probability distribution summing to 1.
	VariantStandard
)

// Dangling selects what happens to the rank mass of pages without
// out-links.
type Dangling uint8

const (
	// DanglingUniform follows the paper's footnote: "If a page has no
	// outgoing link, we assume that it has outgoing links to every single
	// Web page."
	DanglingUniform Dangling = iota
	// DanglingSelf keeps the mass on the dangling page (a self-loop).
	DanglingSelf
	// DanglingTeleport redistributes the mass according to the teleport
	// vector (uniform when no personalised vector is set).
	DanglingTeleport
)

// Options configures Compute.
type Options struct {
	// Variant selects the normalisation convention. Default VariantPaper.
	Variant Variant
	// Jump is the paper's damping factor d: the probability that the
	// random surfer abandons the link chain and jumps to a random page.
	// Defaults to 0.15. (Note Google literature often calls 1-Jump the
	// damping factor.)
	Jump float64
	// Tol is the L1 convergence threshold on successive iterates,
	// measured on the normalised vector. Defaults to 1e-9.
	Tol float64
	// MaxIter bounds the number of power iterations. Defaults to 200.
	MaxIter int
	// Workers is the parallelism degree; 0 means GOMAXPROCS.
	Workers int
	// Dangling selects the dangling-node policy.
	Dangling Dangling
	// Teleport, when non-nil, personalises the jump distribution
	// (Haveliwala [10]). It must have one non-negative entry per node and a
	// positive sum; it is normalised internally. Only meaningful with
	// VariantStandard or DanglingTeleport.
	Teleport []float64
	// Extrapolate enables periodic Aitken Δ² extrapolation (Kamvar et al.
	// [12]), applying one extrapolation step every ExtrapolatePeriod
	// iterations (default 10 when enabled).
	Extrapolate       bool
	ExtrapolatePeriod int
}

// Result carries the computed vector and convergence diagnostics.
type Result struct {
	// Rank is the PageRank value per node, indexed by NodeID.
	Rank []float64
	// Iterations is the number of power iterations performed.
	Iterations int
	// Converged reports whether the L1 delta fell below Tol within MaxIter.
	Converged bool
	// Delta is the final L1 difference between successive iterates.
	Delta float64
}

// ErrBadOptions reports invalid configuration.
var ErrBadOptions = errors.New("pagerank: bad options")

func (o *Options) fill(n int) error {
	if o.Jump == 0 {
		o.Jump = 0.15
	}
	if o.Jump <= 0 || o.Jump >= 1 {
		return fmt.Errorf("%w: Jump %g outside (0,1)", ErrBadOptions, o.Jump)
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	if o.Tol < 0 {
		return fmt.Errorf("%w: negative Tol", ErrBadOptions)
	}
	if o.MaxIter == 0 {
		o.MaxIter = 200
	}
	if o.MaxIter < 1 {
		return fmt.Errorf("%w: MaxIter %d < 1", ErrBadOptions, o.MaxIter)
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Teleport != nil {
		if len(o.Teleport) != n {
			return fmt.Errorf("%w: teleport length %d != nodes %d", ErrBadOptions, len(o.Teleport), n)
		}
		sum := 0.0
		for _, v := range o.Teleport {
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("%w: negative teleport entry", ErrBadOptions)
			}
			sum += v
		}
		if sum <= 0 {
			return fmt.Errorf("%w: teleport sums to zero", ErrBadOptions)
		}
	}
	if o.Extrapolate && o.ExtrapolatePeriod == 0 {
		o.ExtrapolatePeriod = 10
	}
	return nil
}

// Compute runs the PageRank power iteration over c.
func Compute(c *graph.CSR, opts Options) (*Result, error) {
	n := c.NumNodes()
	if err := opts.fill(n); err != nil {
		return nil, err
	}
	if n == 0 {
		return &Result{Rank: nil, Converged: true}, nil
	}

	// Normalised teleport vector (uniform if unset).
	tele := opts.Teleport
	if tele != nil {
		sum := 0.0
		for _, v := range tele {
			sum += v
		}
		norm := make([]float64, n)
		for i, v := range tele {
			norm[i] = v / sum
		}
		tele = norm
	}

	danglings := c.Danglings()

	// Base (per-node constant) and scale depend on the variant. Both
	// variants share one iteration kernel operating on an arbitrary-scale
	// vector; convergence is measured after scaling to sum 1.
	var base func(i int) float64
	follow := 1 - opts.Jump
	total := 1.0
	switch opts.Variant {
	case VariantPaper:
		total = float64(n)
		base = func(int) float64 { return opts.Jump }
	case VariantStandard:
		if tele == nil {
			b := opts.Jump / float64(n)
			base = func(int) float64 { return b }
		} else {
			base = func(i int) float64 { return opts.Jump * tele[i] }
		}
	default:
		return nil, fmt.Errorf("%w: unknown variant %d", ErrBadOptions, opts.Variant)
	}

	cur := make([]float64, n)
	next := make([]float64, n)
	init := total / float64(n)
	for i := range cur {
		cur[i] = init
	}

	var prev1, prev2 []float64
	if opts.Extrapolate {
		prev1 = make([]float64, n)
		prev2 = make([]float64, n)
	}

	pool := newWorkerPool(opts.Workers, n)
	defer pool.close()

	res := &Result{}
	for iter := 1; iter <= opts.MaxIter; iter++ {
		// Mass sitting on dangling pages this round.
		dmass := 0.0
		for _, d := range danglings {
			dmass += cur[d]
		}

		var dangAdd func(i int) float64
		switch opts.Dangling {
		case DanglingUniform:
			share := dmass / float64(n)
			dangAdd = func(int) float64 { return share }
		case DanglingSelf:
			dangAdd = func(i int) float64 {
				if c.OutDegree(graph.NodeID(i)) == 0 {
					return cur[i]
				}
				return 0
			}
		case DanglingTeleport:
			if tele == nil {
				share := dmass / float64(n)
				dangAdd = func(int) float64 { return share }
			} else {
				dangAdd = func(i int) float64 { return dmass * tele[i] }
			}
		default:
			return nil, fmt.Errorf("%w: unknown dangling policy %d", ErrBadOptions, opts.Dangling)
		}

		pool.run(func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sum := dangAdd(i)
				for _, j := range c.In(graph.NodeID(i)) {
					sum += cur[j] / float64(c.OutDegree(j))
				}
				next[i] = base(i) + follow*sum
			}
		})

		// L1 delta on the sum-1 normalised vectors.
		sumNext := 0.0
		for _, v := range next {
			sumNext += v
		}
		delta := 0.0
		sumCur := 0.0
		for _, v := range cur {
			sumCur += v
		}
		for i := range next {
			delta += math.Abs(next[i]/sumNext - cur[i]/sumCur)
		}
		res.Iterations = iter
		res.Delta = delta

		cur, next = next, cur
		if delta < opts.Tol {
			res.Converged = true
			break
		}

		if opts.Extrapolate && iter >= 3 && iter%opts.ExtrapolatePeriod == 0 {
			aitken(cur, prev1, prev2)
		}
		if opts.Extrapolate {
			prev2, prev1 = prev1, prev2
			copy(prev1, cur)
		}
	}

	// Rescale to the variant's convention (sum = total).
	sum := 0.0
	for _, v := range cur {
		sum += v
	}
	if sum > 0 {
		scale := total / sum
		for i := range cur {
			cur[i] *= scale
		}
	}
	res.Rank = cur
	return res, nil
}

// aitken applies componentwise Aitken Δ² extrapolation in place:
// x* = x2 - (x2-x1)² / (x2 - 2x1 + x0), skipping components with tiny
// denominators and clamping negatives (the true fixed point is positive).
func aitken(x2, x1, x0 []float64) {
	for i := range x2 {
		den := x2[i] - 2*x1[i] + x0[i]
		if math.Abs(den) < 1e-15 {
			continue
		}
		d := x2[i] - x1[i]
		v := x2[i] - d*d/den
		if v > 0 && !math.IsNaN(v) && !math.IsInf(v, 0) {
			x2[i] = v
		}
	}
}

// workerPool amortises goroutine startup across power iterations. Each
// call to run splits [0,n) into one contiguous range per worker and blocks
// until every range has been processed.
type workerPool struct {
	workers int
	n       int
	work    chan poolTask
	wg      sync.WaitGroup
}

type poolTask struct {
	fn     func(lo, hi int)
	lo, hi int
}

func newWorkerPool(workers, n int) *workerPool {
	if workers > n {
		workers = max(1, n)
	}
	p := &workerPool{
		workers: workers,
		n:       n,
		work:    make(chan poolTask, workers),
	}
	for w := 0; w < workers; w++ {
		go func() {
			for t := range p.work {
				t.fn(t.lo, t.hi)
				p.wg.Done()
			}
		}()
	}
	return p
}

// run executes fn over a partition of [0,n) and waits for completion.
func (p *workerPool) run(fn func(lo, hi int)) {
	p.wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		p.work <- poolTask{fn: fn, lo: w * p.n / p.workers, hi: (w + 1) * p.n / p.workers}
	}
	p.wg.Wait()
}

func (p *workerPool) close() { close(p.work) }
