// Package pagerank implements the popularity metrics the paper builds on:
// the PageRank power iteration in both the paper's un-normalised,
// 1-initialised form (Section 3) and the standard stochastic form, with
// configurable damping, dangling-node policies, optional personalised
// teleport vectors, parallel execution and Aitken Δ² extrapolation
// acceleration. The package also provides the HITS and in-degree baselines
// referenced in the paper's related work.
//
// Compute is the hot path of every experiment: it runs a specialised flat
// kernel per (Variant × Dangling) combination over the CSR's raw
// in-adjacency arrays, with a precomputed inverse-out-degree table and all
// per-iteration reductions (dangling mass, vector sum, L1 delta) fused
// into the parallel sweeps as per-chunk partials. ComputeReference retains
// the straightforward implementation as the correctness oracle.
package pagerank

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"pagequality/internal/graph"
)

// Variant selects the normalisation convention of the computed vector.
type Variant uint8

const (
	// VariantPaper matches Section 3 of the paper:
	//     PR(p_i) = d + (1-d) [PR(p_1)/c_1 + ... + PR(p_m)/c_m]
	// with every PR initialised to 1 (as in the paper's experiment, §8.1).
	// The vector sums to ~NumNodes and individual values are >= d.
	VariantPaper Variant = iota
	// VariantStandard is the stochastic random-surfer form: the vector is a
	// probability distribution summing to 1.
	VariantStandard
)

// Dangling selects what happens to the rank mass of pages without
// out-links.
type Dangling uint8

const (
	// DanglingUniform follows the paper's footnote: "If a page has no
	// outgoing link, we assume that it has outgoing links to every single
	// Web page."
	DanglingUniform Dangling = iota
	// DanglingSelf keeps the mass on the dangling page (a self-loop).
	DanglingSelf
	// DanglingTeleport redistributes the mass according to the teleport
	// vector (uniform when no personalised vector is set).
	DanglingTeleport
)

// Options configures Compute.
type Options struct {
	// Variant selects the normalisation convention. Default VariantPaper.
	Variant Variant
	// Jump is the paper's damping factor d: the probability that the
	// random surfer abandons the link chain and jumps to a random page.
	// Defaults to 0.15. (Note Google literature often calls 1-Jump the
	// damping factor.)
	Jump float64
	// Tol is the L1 convergence threshold on successive iterates,
	// measured on the normalised vector. Defaults to 1e-9.
	Tol float64
	// MaxIter bounds the number of power iterations. Defaults to 200.
	MaxIter int
	// Workers is the parallelism degree; 0 means GOMAXPROCS. The computed
	// vector (and the iteration count) is bitwise identical for every
	// Workers setting: parallel reductions are combined over fixed-size
	// chunks whose boundaries depend only on the node count.
	Workers int
	// Dangling selects the dangling-node policy.
	Dangling Dangling
	// Teleport, when non-nil, personalises the jump distribution
	// (Haveliwala [10]). It must have one non-negative entry per node and a
	// positive sum; it is normalised internally. Only meaningful with
	// VariantStandard or DanglingTeleport.
	Teleport []float64
	// Extrapolate enables periodic Aitken Δ² extrapolation (Kamvar et al.
	// [12]), applying one extrapolation step every ExtrapolatePeriod
	// iterations (default 10 when enabled). ExtrapolatePeriod must not be
	// negative.
	Extrapolate       bool
	ExtrapolatePeriod int
}

// Result carries the computed vector and convergence diagnostics.
type Result struct {
	// Rank is the PageRank value per node, indexed by NodeID.
	Rank []float64
	// Iterations is the number of power iterations performed.
	Iterations int
	// Converged reports whether the L1 delta fell below Tol within MaxIter.
	Converged bool
	// Delta is the final L1 difference between successive iterates.
	Delta float64
}

// ErrBadOptions reports invalid configuration.
var ErrBadOptions = errors.New("pagerank: bad options")

func (o *Options) fill(n int) error {
	if o.Jump == 0 {
		o.Jump = 0.15
	}
	if o.Jump <= 0 || o.Jump >= 1 {
		return fmt.Errorf("%w: Jump %g outside (0,1)", ErrBadOptions, o.Jump)
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	if o.Tol < 0 {
		return fmt.Errorf("%w: negative Tol", ErrBadOptions)
	}
	if o.MaxIter == 0 {
		o.MaxIter = 200
	}
	if o.MaxIter < 1 {
		return fmt.Errorf("%w: MaxIter %d < 1", ErrBadOptions, o.MaxIter)
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Teleport != nil {
		if len(o.Teleport) != n {
			return fmt.Errorf("%w: teleport length %d != nodes %d", ErrBadOptions, len(o.Teleport), n)
		}
		sum := 0.0
		for _, v := range o.Teleport {
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("%w: negative teleport entry", ErrBadOptions)
			}
			sum += v
		}
		if sum <= 0 {
			return fmt.Errorf("%w: teleport sums to zero", ErrBadOptions)
		}
	}
	if o.ExtrapolatePeriod < 0 {
		return fmt.Errorf("%w: ExtrapolatePeriod %d < 0", ErrBadOptions, o.ExtrapolatePeriod)
	}
	if o.Extrapolate && o.ExtrapolatePeriod == 0 {
		o.ExtrapolatePeriod = 10
	}
	switch o.Variant {
	case VariantPaper, VariantStandard:
	default:
		return fmt.Errorf("%w: unknown variant %d", ErrBadOptions, o.Variant)
	}
	switch o.Dangling {
	case DanglingUniform, DanglingSelf, DanglingTeleport:
	default:
		return fmt.Errorf("%w: unknown dangling policy %d", ErrBadOptions, o.Dangling)
	}
	return nil
}

// normalizeTeleport returns the sum-1 copy of t, or nil when t is nil.
func normalizeTeleport(t []float64) []float64 {
	if t == nil {
		return nil
	}
	sum := 0.0
	for _, v := range t {
		sum += v
	}
	norm := make([]float64, len(t))
	for i, v := range t {
		norm[i] = v / sum
	}
	return norm
}

// kernelState carries everything the specialised sweep kernels read. The
// slices are fixed for the whole computation; the scalars (share, dmass,
// invSumCur, invSumNext) are updated between pool runs, never during one.
type kernelState struct {
	inOff   []uint32
	inFrom  []graph.NodeID
	outDegs []uint32
	invOut  []float64 // 1/outdeg, 0 for dangling nodes
	cur     []float64
	next    []float64
	curS    []float64 // cur[i]·invOut[i], the per-edge contribution of i
	nextS   []float64
	tele    []float64 // normalised teleport (nil if unset)
	baseVec []float64 // Jump·tele[i] (nil unless personalised standard)

	baseConst float64
	follow    float64

	share float64 // dmass/n, uniform-style dangling policies
	dmass float64 // dangling mass, DanglingTeleport with a vector

	invSumCur  float64
	invSumNext float64

	partSum   []float64 // per-chunk Σ next[i]
	partDang  []float64 // per-chunk Σ next[i] over dangling i
	partDelta []float64 // per-chunk L1 delta on normalised vectors
}

// The six sweep kernels: flat loops over the CSR in-adjacency, one per
// (constant-vs-personalised base × dangling policy). Each computes
// next[i] for one chunk and records the chunk's partial next-sum and
// dangling-mass reductions — there is no per-node function call and no
// division in the inner loop. The inner loop gathers the pre-scaled
// curS[j] = cur[j]·invOut[j], a single 8-byte random read per edge; the
// scaled entry for the next iteration (nextS[i] = next[i]·invOut[i]) is
// produced by the same pass as a sequential store. invOut[i] == 0 exactly
// when i is dangling, so the kernels never touch outDegs. Four
// accumulators break the floating-point add dependency chain so several
// gathers stay in flight; the row sum therefore associates differently
// from ComputeReference — which is why agreement with the reference is
// specified to 1e-12 on the normalised vectors rather than bitwise.
// (Determinism across Workers settings is unaffected: chunk boundaries
// and the in-chunk order are fixed for a given graph.)

func (k *kernelState) sweepConstShare(chunk, lo, hi int) {
	inOff, inFrom, curS, invOut := k.inOff, k.inFrom, k.curS, k.invOut
	next, nextS := k.next, k.nextS
	base, follow, share := k.baseConst, k.follow, k.share
	s, dm := 0.0, 0.0
	for i := lo; i < hi; i++ {
		sum := share
		e, end := inOff[i], inOff[i+1]
		switch end - e {
		case 0:
		case 1:
			sum += curS[inFrom[e]]
		case 2:
			sum += curS[inFrom[e]] + curS[inFrom[e+1]]
		case 3:
			sum += curS[inFrom[e]] + curS[inFrom[e+1]] + curS[inFrom[e+2]]
		default:
			for ; e < end; e++ {
				sum += curS[inFrom[e]]
			}
		}
		v := base + follow*sum
		next[i] = v
		s += v
		inv := invOut[i]
		nextS[i] = v * inv
		if inv == 0 {
			dm += v
		}
	}
	k.partSum[chunk] = s
	k.partDang[chunk] = dm
}

func (k *kernelState) sweepConstSelf(chunk, lo, hi int) {
	inOff, inFrom, curS, invOut := k.inOff, k.inFrom, k.curS, k.invOut
	next, nextS, cur := k.next, k.nextS, k.cur
	base, follow := k.baseConst, k.follow
	s := 0.0
	for i := lo; i < hi; i++ {
		sum := 0.0
		inv := invOut[i]
		if inv == 0 {
			sum = cur[i]
		}
		e, end := inOff[i], inOff[i+1]
		switch end - e {
		case 0:
		case 1:
			sum += curS[inFrom[e]]
		case 2:
			sum += curS[inFrom[e]] + curS[inFrom[e+1]]
		case 3:
			sum += curS[inFrom[e]] + curS[inFrom[e+1]] + curS[inFrom[e+2]]
		default:
			for ; e < end; e++ {
				sum += curS[inFrom[e]]
			}
		}
		v := base + follow*sum
		next[i] = v
		nextS[i] = v * inv
		s += v
	}
	k.partSum[chunk] = s
}

func (k *kernelState) sweepConstTele(chunk, lo, hi int) {
	inOff, inFrom, curS, invOut := k.inOff, k.inFrom, k.curS, k.invOut
	next, nextS, tele := k.next, k.nextS, k.tele
	base, follow, dmass := k.baseConst, k.follow, k.dmass
	s, dm := 0.0, 0.0
	for i := lo; i < hi; i++ {
		sum := dmass * tele[i]
		e, end := inOff[i], inOff[i+1]
		switch end - e {
		case 0:
		case 1:
			sum += curS[inFrom[e]]
		case 2:
			sum += curS[inFrom[e]] + curS[inFrom[e+1]]
		case 3:
			sum += curS[inFrom[e]] + curS[inFrom[e+1]] + curS[inFrom[e+2]]
		default:
			for ; e < end; e++ {
				sum += curS[inFrom[e]]
			}
		}
		v := base + follow*sum
		next[i] = v
		s += v
		inv := invOut[i]
		nextS[i] = v * inv
		if inv == 0 {
			dm += v
		}
	}
	k.partSum[chunk] = s
	k.partDang[chunk] = dm
}

func (k *kernelState) sweepVecShare(chunk, lo, hi int) {
	inOff, inFrom, curS, invOut := k.inOff, k.inFrom, k.curS, k.invOut
	next, nextS, baseVec := k.next, k.nextS, k.baseVec
	follow, share := k.follow, k.share
	s, dm := 0.0, 0.0
	for i := lo; i < hi; i++ {
		sum := share
		e, end := inOff[i], inOff[i+1]
		switch end - e {
		case 0:
		case 1:
			sum += curS[inFrom[e]]
		case 2:
			sum += curS[inFrom[e]] + curS[inFrom[e+1]]
		case 3:
			sum += curS[inFrom[e]] + curS[inFrom[e+1]] + curS[inFrom[e+2]]
		default:
			for ; e < end; e++ {
				sum += curS[inFrom[e]]
			}
		}
		v := baseVec[i] + follow*sum
		next[i] = v
		s += v
		inv := invOut[i]
		nextS[i] = v * inv
		if inv == 0 {
			dm += v
		}
	}
	k.partSum[chunk] = s
	k.partDang[chunk] = dm
}

func (k *kernelState) sweepVecSelf(chunk, lo, hi int) {
	inOff, inFrom, curS, invOut := k.inOff, k.inFrom, k.curS, k.invOut
	next, nextS, cur, baseVec := k.next, k.nextS, k.cur, k.baseVec
	follow := k.follow
	s := 0.0
	for i := lo; i < hi; i++ {
		sum := 0.0
		inv := invOut[i]
		if inv == 0 {
			sum = cur[i]
		}
		e, end := inOff[i], inOff[i+1]
		switch end - e {
		case 0:
		case 1:
			sum += curS[inFrom[e]]
		case 2:
			sum += curS[inFrom[e]] + curS[inFrom[e+1]]
		case 3:
			sum += curS[inFrom[e]] + curS[inFrom[e+1]] + curS[inFrom[e+2]]
		default:
			for ; e < end; e++ {
				sum += curS[inFrom[e]]
			}
		}
		v := baseVec[i] + follow*sum
		next[i] = v
		nextS[i] = v * inv
		s += v
	}
	k.partSum[chunk] = s
}

func (k *kernelState) sweepVecTele(chunk, lo, hi int) {
	inOff, inFrom, curS, invOut := k.inOff, k.inFrom, k.curS, k.invOut
	next, nextS, baseVec, tele := k.next, k.nextS, k.baseVec, k.tele
	follow, dmass := k.follow, k.dmass
	s, dm := 0.0, 0.0
	for i := lo; i < hi; i++ {
		sum := dmass * tele[i]
		e, end := inOff[i], inOff[i+1]
		switch end - e {
		case 0:
		case 1:
			sum += curS[inFrom[e]]
		case 2:
			sum += curS[inFrom[e]] + curS[inFrom[e+1]]
		case 3:
			sum += curS[inFrom[e]] + curS[inFrom[e+1]] + curS[inFrom[e+2]]
		default:
			for ; e < end; e++ {
				sum += curS[inFrom[e]]
			}
		}
		v := baseVec[i] + follow*sum
		next[i] = v
		s += v
		inv := invOut[i]
		nextS[i] = v * inv
		if inv == 0 {
			dm += v
		}
	}
	k.partSum[chunk] = s
	k.partDang[chunk] = dm
}

// sweepDelta accumulates one chunk's share of the L1 distance between the
// sum-1 normalisations of cur and next.
func (k *kernelState) sweepDelta(chunk, lo, hi int) {
	cur, next := k.cur, k.next
	ic, in := k.invSumCur, k.invSumNext
	d := 0.0
	for i := lo; i < hi; i++ {
		d += math.Abs(next[i]*in - cur[i]*ic)
	}
	k.partDelta[chunk] = d
}

// sumChunks combines per-chunk partials in chunk order, so the result is
// independent of which worker computed which chunk.
func sumChunks(parts []float64) float64 {
	s := 0.0
	for _, v := range parts {
		s += v
	}
	return s
}

// Compute runs the PageRank power iteration over c.
func Compute(c *graph.CSR, opts Options) (*Result, error) {
	n := c.NumNodes()
	if err := opts.fill(n); err != nil {
		return nil, err
	}
	return computeFrom(c, opts, nil)
}

// computeFrom runs the power iteration with an optional warm-start
// vector. opts must already be filled. When warm is nil the iteration
// starts from the variant's uniform vector with closed-form initial sums
// (the historical Compute path, bitwise unchanged); otherwise it starts
// from warm — whose ownership passes to computeFrom — which is how
// ComputeIncremental re-seeds the iteration from a previous fixed point.
func computeFrom(c *graph.CSR, opts Options, warm []float64) (*Result, error) {
	n := c.NumNodes()
	if n == 0 {
		return &Result{Rank: nil, Converged: true}, nil
	}
	if warm != nil && len(warm) != n {
		return nil, fmt.Errorf("%w: warm-start vector has %d entries for %d nodes", ErrBadOptions, len(warm), n)
	}

	tele := normalizeTeleport(opts.Teleport)
	inOff, inFrom := c.InLists()
	outDegs := c.OutDegrees()

	// Inverse out-degree table, precomputed at Freeze time: one division
	// per node there replaces one division per edge per iteration here.
	// Dangling nodes hold 0 — their mass flows through the dangling
	// policy, never through invOut.
	invOut := c.InvOutDegrees()

	k := &kernelState{
		inOff:   inOff,
		inFrom:  inFrom,
		outDegs: outDegs,
		invOut:  invOut,
		tele:    tele,
		follow:  1 - opts.Jump,
	}

	total := 1.0
	switch opts.Variant {
	case VariantPaper:
		total = float64(n)
		k.baseConst = opts.Jump
	case VariantStandard:
		if tele == nil {
			k.baseConst = opts.Jump / float64(n)
		} else {
			k.baseVec = make([]float64, n)
			for i, v := range tele {
				k.baseVec[i] = opts.Jump * v
			}
		}
	}

	// Select the specialised kernel for this (base × dangling) combination.
	var sweep func(chunk, lo, hi int)
	shareBased := false // dangling mass redistributed via the share scalar
	switch opts.Dangling {
	case DanglingSelf:
		if k.baseVec == nil {
			sweep = k.sweepConstSelf
		} else {
			sweep = k.sweepVecSelf
		}
	case DanglingTeleport:
		if tele != nil {
			if k.baseVec == nil {
				sweep = k.sweepConstTele
			} else {
				sweep = k.sweepVecTele
			}
			break
		}
		fallthrough
	case DanglingUniform:
		shareBased = true
		if k.baseVec == nil {
			sweep = k.sweepConstShare
		} else {
			sweep = k.sweepVecShare
		}
	}
	danglingTele := opts.Dangling == DanglingTeleport && tele != nil

	cur := warm
	if cur == nil {
		cur = make([]float64, n)
	}
	next := make([]float64, n)
	curS := make([]float64, n)
	nextS := make([]float64, n)
	k.cur, k.next = cur, next
	k.curS, k.nextS = curS, nextS

	// sumCur, the dangling mass and the scaled vector curS are carried
	// across iterations (each sweep produces the next iteration's values as
	// fused reductions). The uniform start vector has closed-form sums;
	// recompute is needed for a warm start and after an extrapolation step
	// mutates cur.
	recompute := func() (sum, dmass float64) {
		for i, v := range cur {
			sum += v
			curS[i] = v * invOut[i]
			if outDegs[i] == 0 {
				dmass += v
			}
		}
		return sum, dmass
	}
	var sumCur, dmass float64
	if warm == nil {
		init := total / float64(n)
		ndang := 0
		for i := range cur {
			cur[i] = init
			curS[i] = init * invOut[i]
			if outDegs[i] == 0 {
				ndang++
			}
		}
		sumCur, dmass = init*float64(n), init*float64(ndang)
	} else {
		sumCur, dmass = recompute()
		// Rescale the warm start to the variant's total mass. The sum of
		// the iterates evolves autonomously (s' = Jump·total + (1-Jump)·s,
		// for every dangling policy: all mass is either passed along edges
		// or redistributed) with fixed point `total`, converging at the
		// damping factor — the slowest mode of the whole iteration. A warm
		// start with the wrong total would spend ~log(Tol)/log(1-Jump)
		// iterations just draining the excess mass; rescaling removes that
		// mode in one step and costs nothing (the final vector is rescaled
		// to `total` anyway).
		if sumCur > 0 {
			scale := total / sumCur
			for i := range cur {
				cur[i] *= scale
				curS[i] *= scale
			}
			dmass *= scale
			sumCur = total
		}
	}

	var prev1, prev2 []float64
	if opts.Extrapolate {
		prev1 = make([]float64, n)
		prev2 = make([]float64, n)
	}

	pool := newWorkerPool(opts.Workers, n)
	defer pool.close()
	k.partSum = make([]float64, pool.nc)
	k.partDang = make([]float64, pool.nc)
	k.partDelta = make([]float64, pool.nc)

	res := &Result{}
	for iter := 1; iter <= opts.MaxIter; iter++ {
		if shareBased {
			k.share = dmass / float64(n)
		} else if danglingTele {
			k.dmass = dmass
		}

		// One parallel sweep computes next and, fused into the same pass,
		// the per-chunk next-sum and next-dangling-mass partials.
		pool.run(sweep)
		sumNext := sumChunks(k.partSum)
		dmassNext := sumChunks(k.partDang)

		// Second parallel pass: L1 delta on the sum-1 normalised vectors.
		k.invSumCur = 1 / sumCur
		k.invSumNext = 1 / sumNext
		pool.run(k.sweepDelta)
		delta := sumChunks(k.partDelta)

		res.Iterations = iter
		res.Delta = delta

		cur, next = next, cur
		curS, nextS = nextS, curS
		k.cur, k.next = cur, next
		k.curS, k.nextS = curS, nextS
		sumCur, dmass = sumNext, dmassNext
		if delta < opts.Tol {
			res.Converged = true
			break
		}

		if opts.Extrapolate && iter >= 3 && iter%opts.ExtrapolatePeriod == 0 {
			aitken(cur, prev1, prev2)
			sumCur, dmass = recompute()
		}
		if opts.Extrapolate {
			prev2, prev1 = prev1, prev2
			copy(prev1, cur)
		}
	}

	// Rescale to the variant's convention (sum = total). sumCur is carried
	// from the last sweep's fused reduction, so no extra pass is needed.
	if sumCur > 0 {
		scale := total / sumCur
		for i := range cur {
			cur[i] *= scale
		}
	}
	res.Rank = cur
	return res, nil
}

// aitken applies componentwise Aitken Δ² extrapolation in place:
// x* = x2 - (x2-x1)² / (x2 - 2x1 + x0), skipping components with tiny
// denominators and clamping negatives (the true fixed point is positive).
func aitken(x2, x1, x0 []float64) {
	for i := range x2 {
		den := x2[i] - 2*x1[i] + x0[i]
		if math.Abs(den) < 1e-15 {
			continue
		}
		d := x2[i] - x1[i]
		v := x2[i] - d*d/den
		if v > 0 && !math.IsNaN(v) && !math.IsInf(v, 0) {
			x2[i] = v
		}
	}
}

// chunkSize is the number of nodes per parallel work unit. Chunk
// boundaries depend only on the node count — never on the worker count —
// so per-chunk floating-point reductions combine identically for every
// parallelism degree, keeping Compute bitwise deterministic across
// Workers settings.
const chunkSize = 2048

func numChunks(n int) int { return (n + chunkSize - 1) / chunkSize }

// workerPool amortises goroutine startup across power iterations. Each
// call to run splits [0,n) into fixed-size chunks that idle workers pull
// until all are processed.
type workerPool struct {
	workers int
	n, nc   int
	work    chan chunkTask
	wg      sync.WaitGroup
}

type chunkTask struct {
	fn            func(chunk, lo, hi int)
	chunk, lo, hi int
}

func newWorkerPool(workers, n int) *workerPool {
	nc := numChunks(n)
	if workers > nc {
		workers = max(1, nc)
	}
	p := &workerPool{
		workers: workers,
		n:       n,
		nc:      nc,
		work:    make(chan chunkTask, nc),
	}
	for w := 0; w < workers; w++ {
		go func() { //pqlint:allow looproutine fixed-size pool; run() joins via wg.Wait and close() ends the workers
			for t := range p.work {
				t.fn(t.chunk, t.lo, t.hi)
				p.wg.Done()
			}
		}()
	}
	return p
}

// run executes fn over every chunk of [0,n) and waits for completion.
func (p *workerPool) run(fn func(chunk, lo, hi int)) {
	p.wg.Add(p.nc)
	for c := 0; c < p.nc; c++ {
		lo := c * chunkSize
		hi := min(lo+chunkSize, p.n)
		p.work <- chunkTask{fn: fn, chunk: c, lo: lo, hi: hi}
	}
	p.wg.Wait()
}

func (p *workerPool) close() { close(p.work) }
