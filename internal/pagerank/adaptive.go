package pagerank

import (
	"fmt"
	"math"

	"pagequality/internal/graph"
)

// AdaptiveOptions configures ComputeAdaptive, the adaptive power method of
// Kamvar, Haveliwala & Golub ("Adaptive methods for the computation of
// PageRank", reference [11] of the paper): pages whose value has already
// converged are frozen and their outgoing contributions reused, which
// skips most of the work in the tail of the iteration where only a few
// slow pages still move.
type AdaptiveOptions struct {
	// Jump, Tol, MaxIter as in Options (same defaults).
	Jump    float64
	Tol     float64
	MaxIter int
	// FreezeTol is the per-page relative-change threshold below which a
	// page is declared converged and frozen (default Tol/len·10, clamped
	// to 1e-12).
	FreezeTol float64
	// RefreshPeriod unfreezes every page once every this many iterations
	// (default 10), washing out the drift a permanently frozen page would
	// accumulate while its upstream neighbours keep moving. Pages that
	// are genuinely converged refreeze within one iteration.
	RefreshPeriod int
	// Variant selects the output normalisation (paper or standard).
	Variant Variant
}

// AdaptiveResult extends Result with adaptivity accounting.
type AdaptiveResult struct {
	Result
	// FrozenAt[i] is the iteration at which page i froze (0 if it never
	// froze before global convergence).
	FrozenAt []int
	// SkippedUpdates counts per-page update computations avoided.
	SkippedUpdates int64
}

func (o *AdaptiveOptions) fill(n int) error {
	base := Options{Jump: o.Jump, Tol: o.Tol, MaxIter: o.MaxIter, Variant: o.Variant}
	if err := base.fill(n); err != nil {
		return err
	}
	o.Jump, o.Tol, o.MaxIter = base.Jump, base.Tol, base.MaxIter
	if o.FreezeTol == 0 {
		o.FreezeTol = o.Tol / float64(max(n, 1)) * 10
		if o.FreezeTol < 1e-12 {
			o.FreezeTol = 1e-12
		}
	}
	if o.FreezeTol < 0 {
		return fmt.Errorf("%w: FreezeTol=%g", ErrBadOptions, o.FreezeTol)
	}
	if o.RefreshPeriod == 0 {
		o.RefreshPeriod = 10
	}
	if o.RefreshPeriod < 1 {
		return fmt.Errorf("%w: RefreshPeriod=%d", ErrBadOptions, o.RefreshPeriod)
	}
	return nil
}

// ComputeAdaptive runs the adaptive power iteration with the
// DanglingUniform policy. It reaches the same fixed point as Compute
// (within tolerance) while skipping updates for frozen pages.
func ComputeAdaptive(c *graph.CSR, opts AdaptiveOptions) (*AdaptiveResult, error) {
	n := c.NumNodes()
	if err := opts.fill(n); err != nil {
		return nil, err
	}
	res := &AdaptiveResult{FrozenAt: make([]int, n)}
	if n == 0 {
		res.Converged = true
		return res, nil
	}
	follow := 1 - opts.Jump
	total := 1.0
	base := opts.Jump / float64(n)
	if opts.Variant == VariantPaper {
		total = float64(n)
		base = opts.Jump
	}

	cur := make([]float64, n)
	next := make([]float64, n)
	frozen := make([]bool, n)
	init := total / float64(n)
	for i := range cur {
		cur[i] = init
	}
	danglings := c.Danglings()

	for iter := 1; iter <= opts.MaxIter; iter++ {
		if iter%opts.RefreshPeriod == 0 {
			for i := range frozen {
				frozen[i] = false
			}
		}
		dmass := 0.0
		for _, d := range danglings {
			dmass += cur[d]
		}
		share := dmass / float64(n)

		delta := 0.0
		sumCur := 0.0
		for _, v := range cur {
			sumCur += v
		}
		sumNext := 0.0
		for i := 0; i < n; i++ {
			if frozen[i] {
				// Frozen pages keep their value; their out-contribution is
				// still read by neighbours via cur.
				next[i] = cur[i]
				sumNext += next[i]
				res.SkippedUpdates++
				continue
			}
			sum := share
			for _, j := range c.In(graph.NodeID(i)) {
				sum += cur[j] / float64(c.OutDegree(j))
			}
			next[i] = base + follow*sum
			sumNext += next[i]
		}
		for i := 0; i < n; i++ {
			d := math.Abs(next[i]/sumNext - cur[i]/sumCur)
			delta += d
			// Freeze pages whose relative movement is negligible.
			if !frozen[i] && cur[i] > 0 && math.Abs(next[i]-cur[i])/cur[i] < opts.FreezeTol {
				frozen[i] = true
				res.FrozenAt[i] = iter
			}
		}
		cur, next = next, cur
		res.Iterations = iter
		res.Delta = delta
		if delta < opts.Tol {
			res.Converged = true
			break
		}
	}
	sum := 0.0
	for _, v := range cur {
		sum += v
	}
	if sum > 0 {
		scale := total / sum
		for i := range cur {
			cur[i] *= scale
		}
	}
	res.Rank = cur
	return res, nil
}
