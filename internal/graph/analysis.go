package graph

import (
	"fmt"
	"math"
	"sort"
)

// This file provides the structural analyses used to sanity-check the
// synthetic corpora against the published properties of the real Web:
// power-law degree distributions [3, 4] and the bow-tie macro structure
// [6].

// DegreeDistribution returns hist[k] = number of nodes with degree k,
// for in-degrees (in=true) or out-degrees (in=false).
func DegreeDistribution(c *CSR, in bool) map[int]int {
	hist := make(map[int]int)
	for i := 0; i < c.NumNodes(); i++ {
		d := c.OutDegree(NodeID(i))
		if in {
			d = c.InDegree(NodeID(i))
		}
		hist[d]++
	}
	return hist
}

// PowerLawAlpha estimates the exponent of a discrete power-law tail
// P(k) ∝ k^-alpha for degrees >= kmin using the standard maximum-likelihood
// estimator alpha = 1 + n / Σ ln(k_i / (kmin - 0.5)). It returns the
// estimate and the number of samples in the tail.
func PowerLawAlpha(degrees []int, kmin int) (alpha float64, n int) {
	if kmin < 1 {
		kmin = 1
	}
	sum := 0.0
	for _, k := range degrees {
		if k >= kmin {
			sum += math.Log(float64(k) / (float64(kmin) - 0.5))
			n++
		}
	}
	if n == 0 || sum == 0 {
		return 0, 0
	}
	return 1 + float64(n)/sum, n
}

// Degrees collects the in- or out-degree of every node.
func Degrees(c *CSR, in bool) []int {
	ds := make([]int, c.NumNodes())
	for i := range ds {
		if in {
			ds[i] = c.InDegree(NodeID(i))
		} else {
			ds[i] = c.OutDegree(NodeID(i))
		}
	}
	return ds
}

// SCC computes the strongly connected components of c using an iterative
// Tarjan algorithm (explicit stack, so million-node graphs do not overflow
// the goroutine stack). It returns comp, where comp[v] is the component
// index of node v, and the number of components. Component indices are in
// reverse topological order of the condensation (Tarjan's property).
func SCC(c *CSR) (comp []int, ncomp int) {
	n := c.NumNodes()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []NodeID // Tarjan stack
	next := int32(0)

	type frame struct {
		v  NodeID
		ei int // next out-edge index to explore
	}
	var call []frame

	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		call = append(call[:0], frame{v: NodeID(root)})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, NodeID(root))
		onStack[root] = true

		for len(call) > 0 {
			f := &call[len(call)-1]
			out := c.Out(f.v)
			if f.ei < len(out) {
				w := out[f.ei]
				f.ei++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// finished v
			v := f.v
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := &call[len(call)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp, ncomp
}

// Region labels a node's place in the bow-tie decomposition of Broder et
// al. [6].
type Region uint8

// Bow-tie regions.
const (
	RegionCore Region = iota // largest strongly connected component
	RegionIn                 // reaches the core, not reached by it
	RegionOut                // reached from the core, does not reach back
	RegionTendril
	RegionDisconnected
)

func (r Region) String() string {
	switch r {
	case RegionCore:
		return "CORE"
	case RegionIn:
		return "IN"
	case RegionOut:
		return "OUT"
	case RegionTendril:
		return "TENDRIL"
	case RegionDisconnected:
		return "DISCONNECTED"
	}
	return fmt.Sprintf("Region(%d)", uint8(r))
}

// BowTieResult is the outcome of a bow-tie decomposition.
type BowTieResult struct {
	Region []Region // per node
	Counts map[Region]int
}

// BowTie decomposes the graph into the bow-tie regions relative to its
// largest strongly connected component.
func BowTie(c *CSR) BowTieResult {
	n := c.NumNodes()
	comp, ncomp := SCC(c)
	size := make([]int, ncomp)
	for _, ci := range comp {
		size[ci]++
	}
	core := 0
	for ci, s := range size {
		if s > size[core] {
			core = ci
		}
	}
	inCore := make([]bool, n)
	var seeds []NodeID
	for v := 0; v < n; v++ {
		if comp[v] == core {
			inCore[v] = true
			seeds = append(seeds, NodeID(v))
		}
	}
	reachFwd := bfs(c, seeds, false)  // reachable FROM core
	reachBwd := bfs(c, seeds, true)   // can REACH core
	weak := weaklyReachable(c, seeds) // in the core's weak component

	res := BowTieResult{
		Region: make([]Region, n),
		Counts: make(map[Region]int),
	}
	for v := 0; v < n; v++ {
		var r Region
		switch {
		case inCore[v]:
			r = RegionCore
		case reachBwd[v]:
			r = RegionIn
		case reachFwd[v]:
			r = RegionOut
		case weak[v]:
			r = RegionTendril
		default:
			r = RegionDisconnected
		}
		res.Region[v] = r
		res.Counts[r]++
	}
	return res
}

// bfs returns the set of nodes reachable from seeds following out-links
// (reverse=false) or in-links (reverse=true). Seeds themselves are marked.
func bfs(c *CSR, seeds []NodeID, reverse bool) []bool {
	seen := make([]bool, c.NumNodes())
	queue := make([]NodeID, 0, len(seeds))
	for _, s := range seeds {
		if !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		var next []NodeID
		if reverse {
			next = c.In(v)
		} else {
			next = c.Out(v)
		}
		for _, w := range next {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return seen
}

// weaklyReachable returns the set of nodes connected to seeds ignoring
// edge direction.
func weaklyReachable(c *CSR, seeds []NodeID) []bool {
	seen := make([]bool, c.NumNodes())
	queue := make([]NodeID, 0, len(seeds))
	for _, s := range seeds {
		if !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range c.Out(v) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
		for _, w := range c.In(v) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return seen
}

// TopKByDegree returns the k node ids with the highest in-degree
// (in=true) or out-degree, ties broken by smaller id.
func TopKByDegree(c *CSR, k int, in bool) []NodeID {
	type nd struct {
		id NodeID
		d  int
	}
	all := make([]nd, c.NumNodes())
	for i := range all {
		d := c.OutDegree(NodeID(i))
		if in {
			d = c.InDegree(NodeID(i))
		}
		all[i] = nd{NodeID(i), d}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d > all[j].d
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}
