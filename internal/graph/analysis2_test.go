package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestReciprocity(t *testing.T) {
	// 0<->1 reciprocal, 0->2 one-way: 2 of 3 edges reciprocated.
	g := New(3)
	g.AddNodes(3)
	g.AddLink(0, 1)
	g.AddLink(1, 0)
	g.AddLink(0, 2)
	got := Reciprocity(Freeze(g))
	if math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("reciprocity = %g, want 2/3", got)
	}
	// Pure cycle of length > 2: no reciprocal edges.
	if r := Reciprocity(Freeze(cycleGraph(5))); r != 0 {
		t.Fatalf("cycle reciprocity = %g", r)
	}
	// Empty graph.
	if r := Reciprocity(Freeze(New(0))); r != 0 {
		t.Fatalf("empty reciprocity = %g", r)
	}
	// Fully reciprocal pair.
	g2 := New(2)
	g2.AddNodes(2)
	g2.AddLink(0, 1)
	g2.AddLink(1, 0)
	if r := Reciprocity(Freeze(g2)); r != 1 {
		t.Fatalf("pair reciprocity = %g", r)
	}
}

func TestClusteringCoefficientTriangleAndPath(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Triangle (undirected projection): every node's two neighbours are
	// connected -> coefficient 1.
	tri := New(3)
	tri.AddNodes(3)
	tri.AddLink(0, 1)
	tri.AddLink(1, 2)
	tri.AddLink(2, 0)
	if c := ClusteringCoefficient(Freeze(tri), 0, rng); math.Abs(c-1) > 1e-12 {
		t.Fatalf("triangle clustering = %g, want 1", c)
	}
	// Path 0-1-2: node 1's neighbours are not connected -> 0.
	path := New(3)
	path.AddNodes(3)
	path.AddLink(0, 1)
	path.AddLink(1, 2)
	if c := ClusteringCoefficient(Freeze(path), 0, rng); c != 0 {
		t.Fatalf("path clustering = %g, want 0", c)
	}
	// Empty graph.
	if c := ClusteringCoefficient(Freeze(New(0)), 0, rng); c != 0 {
		t.Fatalf("empty clustering = %g", c)
	}
}

func TestClusteringCoefficientSamplingAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := GeneratePreferentialAttachment(PreferentialAttachmentConfig{Nodes: 800, OutPerNode: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := Freeze(g)
	full := ClusteringCoefficient(c, 0, rand.New(rand.NewSource(3)))
	sampled := ClusteringCoefficient(c, 300, rand.New(rand.NewSource(4)))
	if full <= 0 {
		t.Fatalf("BA graph clustering = %g, want > 0", full)
	}
	if math.Abs(full-sampled) > 0.05 {
		t.Fatalf("sampled %g deviates from full %g", sampled, full)
	}
	// Deterministic under a fixed rng seed.
	again := ClusteringCoefficient(c, 300, rand.New(rand.NewSource(4)))
	if again != sampled { //pqlint:allow floateq bitwise determinism under a fixed seed is the property under test
		t.Fatal("sampling not deterministic under fixed seed")
	}
}
