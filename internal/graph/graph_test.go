package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestAddPageAndLookup(t *testing.T) {
	g := New(4)
	a, err := g.AddPage(Page{URL: "http://a/", Site: 0, Quality: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b := g.MustAddPage(Page{URL: "http://b/", Site: 1})
	if a == b {
		t.Fatal("duplicate node ids")
	}
	if id, ok := g.Lookup("http://a/"); !ok || id != a {
		t.Fatalf("Lookup(a) = (%d,%v)", id, ok)
	}
	if _, ok := g.Lookup("http://missing/"); ok {
		t.Fatal("Lookup found missing URL")
	}
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if got := g.Page(a); got.URL != "http://a/" || got.Quality != 0.5 {
		t.Fatalf("Page(a) = %+v", got)
	}
}

func TestDuplicateURLRejected(t *testing.T) {
	g := New(2)
	g.MustAddPage(Page{URL: "u"})
	if _, err := g.AddPage(Page{URL: "u"}); !errors.Is(err, ErrDuplicateURL) {
		t.Fatalf("err = %v, want ErrDuplicateURL", err)
	}
}

func TestEmptyURLsNotIndexed(t *testing.T) {
	g := New(2)
	g.MustAddPage(Page{})
	g.MustAddPage(Page{}) // second empty URL must not collide
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
}

func TestAddLinkSemantics(t *testing.T) {
	g := New(3)
	g.AddNodes(3)
	if !g.AddLink(0, 1) {
		t.Fatal("AddLink(0,1) = false")
	}
	if g.AddLink(0, 1) {
		t.Fatal("duplicate AddLink accepted")
	}
	if g.AddLink(2, 2) {
		t.Fatal("self link accepted")
	}
	if !g.HasLink(0, 1) || g.HasLink(1, 0) {
		t.Fatal("HasLink direction wrong")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if g.OutDegree(0) != 1 || g.InDegree(1) != 1 || g.InDegree(0) != 0 {
		t.Fatal("degree bookkeeping wrong")
	}
}

func TestRemoveLink(t *testing.T) {
	g := New(3)
	g.AddNodes(3)
	g.AddLink(0, 1)
	g.AddLink(0, 2)
	if !g.RemoveLink(0, 1) {
		t.Fatal("RemoveLink existing = false")
	}
	if g.RemoveLink(0, 1) {
		t.Fatal("RemoveLink missing = true")
	}
	if g.HasLink(0, 1) || !g.HasLink(0, 2) {
		t.Fatal("wrong link removed")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetPageRekeysURL(t *testing.T) {
	g := New(1)
	id := g.MustAddPage(Page{URL: "old"})
	g.SetPage(id, Page{URL: "new"})
	if _, ok := g.Lookup("old"); ok {
		t.Fatal("old URL still indexed")
	}
	if got, ok := g.Lookup("new"); !ok || got != id {
		t.Fatal("new URL not indexed")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(3)
	g.MustAddPage(Page{URL: "a"})
	g.MustAddPage(Page{URL: "b"})
	g.AddLink(0, 1)
	c := g.Clone()
	c.AddLink(1, 0)
	c.MustAddPage(Page{URL: "c"})
	if g.HasLink(1, 0) {
		t.Fatal("clone mutation leaked into original")
	}
	if g.NumNodes() != 2 || c.NumNodes() != 3 {
		t.Fatal("node counts wrong after clone mutation")
	}
	if _, ok := g.Lookup("c"); ok {
		t.Fatal("clone URL index shared")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Clone packs all adjacency lists into one backing array; an append on one
// of the clone's lists must reallocate that list rather than overwrite the
// adjacent list's region.
func TestClonePackedListsDoNotAlias(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.MustAddPage(Page{URL: string(rune('a' + i))})
	}
	g.AddLink(0, 1)
	g.AddLink(2, 1)
	g.AddLink(1, 3)
	c := g.Clone()
	// Grow every list on the clone; if regions aliased, a neighbour's
	// contents would be clobbered and Validate's in/out cross-check fails.
	c.AddLink(0, 2)
	c.AddLink(0, 3)
	c.AddLink(3, 1)
	if err := c.Validate(); err != nil {
		t.Fatalf("clone corrupted after appends: %v", err)
	}
	if !c.HasLink(2, 1) || !c.HasLink(1, 3) || !c.HasLink(0, 1) {
		t.Fatal("pre-existing links lost after clone appends")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("original corrupted: %v", err)
	}
}

func TestSubgraph(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.MustAddPage(Page{URL: string(rune('a' + i))})
	}
	g.AddLink(0, 1)
	g.AddLink(1, 2)
	g.AddLink(2, 3)
	g.AddLink(3, 0)
	sub, remap := g.Subgraph([]NodeID{0, 1, 2})
	if sub.NumNodes() != 3 {
		t.Fatalf("sub nodes = %d", sub.NumNodes())
	}
	// Edges 2->3 and 3->0 must be dropped.
	if sub.NumEdges() != 2 {
		t.Fatalf("sub edges = %d, want 2", sub.NumEdges())
	}
	if !sub.HasLink(remap[0], remap[1]) || !sub.HasLink(remap[1], remap[2]) {
		t.Fatal("subgraph lost internal edges")
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if sub.Page(remap[1]).URL != "b" {
		t.Fatal("subgraph metadata not preserved")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := New(2)
	g.AddNodes(2)
	g.AddLink(0, 1)
	g.out[0] = append(g.out[0], 1) // duplicate injected behind the API
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted duplicate edge")
	}
}

func TestCSRMirrorsGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := GenerateUniform(200, 1500, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := Freeze(g)
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Fatalf("CSR sizes (%d,%d) != graph (%d,%d)",
			c.NumNodes(), c.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for i := 0; i < g.NumNodes(); i++ {
		id := NodeID(i)
		if len(c.Out(id)) != g.OutDegree(id) || c.OutDegree(id) != g.OutDegree(id) {
			t.Fatalf("node %d out mismatch", i)
		}
		if len(c.In(id)) != g.InDegree(id) || c.InDegree(id) != g.InDegree(id) {
			t.Fatalf("node %d in mismatch", i)
		}
		for k, to := range g.OutLinks(id) {
			if c.Out(id)[k] != to {
				t.Fatalf("node %d out[%d] mismatch", i, k)
			}
		}
	}
}

func TestCSRIndependentOfLaterMutation(t *testing.T) {
	g := New(2)
	g.AddNodes(2)
	g.AddLink(0, 1)
	c := Freeze(g)
	g.RemoveLink(0, 1)
	if c.NumEdges() != 1 || len(c.Out(0)) != 1 {
		t.Fatal("CSR changed after graph mutation")
	}
}

func TestCSRDanglings(t *testing.T) {
	g := New(3)
	g.AddNodes(3)
	g.AddLink(0, 1)
	g.AddLink(0, 2)
	d := Freeze(g).Danglings()
	if len(d) != 2 || d[0] != 1 || d[1] != 2 {
		t.Fatalf("Danglings = %v, want [1 2]", d)
	}
}

func TestCSRTranspose(t *testing.T) {
	g := New(3)
	g.AddNodes(3)
	g.AddLink(0, 1)
	g.AddLink(0, 2)
	g.AddLink(1, 2)
	tr := Freeze(g).Transpose()
	if tr.NumEdges() != 3 {
		t.Fatalf("transpose edges = %d", tr.NumEdges())
	}
	if len(tr.Out(2)) != 2 || len(tr.In(2)) != 0 {
		t.Fatalf("transpose of node 2 wrong: out=%v in=%v", tr.Out(2), tr.In(2))
	}
	if tr.OutDegree(2) != 2 || tr.OutDegree(0) != 0 {
		t.Fatal("transpose outDegs wrong")
	}
}

func TestPreferentialAttachmentShape(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g, err := GeneratePreferentialAttachment(PreferentialAttachmentConfig{
		Nodes: 3000, OutPerNode: 4,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Roughly 4 links per non-seed node.
	if e := g.NumEdges(); e < 3000*3 || e > 3000*5 {
		t.Fatalf("edges = %d out of expected range", e)
	}
	c := Freeze(g)
	// The in-degree distribution must be heavy-tailed: the max in-degree
	// should far exceed the mean.
	degs := Degrees(c, true)
	maxDeg, sum := 0, 0
	for _, d := range degs {
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(sum) / float64(len(degs))
	if float64(maxDeg) < 8*mean {
		t.Fatalf("max in-degree %d not heavy-tailed (mean %.1f)", maxDeg, mean)
	}
	// MLE exponent for BA graphs is typically in (1.5, 3.5).
	alpha, n := PowerLawAlpha(degs, 4)
	if n < 100 {
		t.Fatalf("power-law tail too small: %d", n)
	}
	if alpha < 1.2 || alpha > 4.5 {
		t.Fatalf("alpha = %.2f outside plausible range", alpha)
	}
}

func TestPreferentialAttachmentConfigErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GeneratePreferentialAttachment(PreferentialAttachmentConfig{Nodes: 10, OutPerNode: 0}, rng); err == nil {
		t.Fatal("accepted OutPerNode=0")
	}
	if _, err := GeneratePreferentialAttachment(PreferentialAttachmentConfig{Nodes: 2, OutPerNode: 5}, rng); err == nil {
		t.Fatal("accepted Nodes < Seed")
	}
}

func TestCopyModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, err := GenerateCopyModel(2000, 3, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	c := Freeze(g)
	degs := Degrees(c, true)
	maxDeg := 0
	for _, d := range degs {
		if d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 20 {
		t.Fatalf("copy model not heavy-tailed: max in-degree %d", maxDeg)
	}
	if _, err := GenerateCopyModel(10, 2, 1.5, rng); err == nil {
		t.Fatal("accepted beta > 1")
	}
	if _, err := GenerateCopyModel(1, 2, 0.5, rng); err == nil {
		t.Fatal("accepted nodes < 2")
	}
}

func TestGenerateUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := GenerateUniform(50, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 300 {
		t.Fatalf("edges = %d, want 300", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateUniform(3, 100, rng); err == nil {
		t.Fatal("accepted impossible edge count")
	}
}

func TestQualityNaNRoundTrip(t *testing.T) {
	g := New(1)
	g.MustAddPage(Page{URL: "x", Quality: math.NaN()})
	buf := g.AppendBinary(nil)
	g2, _, err := DecodeBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(g2.Page(0).Quality) {
		t.Fatal("NaN quality lost in round trip")
	}
}
