package graph

// CSR is a frozen, compressed-sparse-row view of a Graph, optimised for the
// sequential sweeps of iterative algorithms (PageRank, HITS). Both the
// out-adjacency and the transposed in-adjacency are materialised because
// PageRank pulls along in-links while the random-surfer simulation pushes
// along out-links.
//
// A CSR is immutable and safe for concurrent reads.
type CSR struct {
	n int

	outOff []uint32 // len n+1
	outTo  []NodeID // len e

	inOff   []uint32 // len n+1
	inFrom  []NodeID // len e
	outDegs []uint32  // out-degree per node, len n (avoids pointer chase)
	invOut  []float64 // 1/out-degree per node (0 for danglings), len n
}

// buildInvOut fills invOut from outDegs; one division per node here spares
// iterative kernels one division per edge per iteration.
func (c *CSR) buildInvOut() {
	c.invOut = make([]float64, c.n)
	for i, d := range c.outDegs {
		if d > 0 {
			c.invOut[i] = 1 / float64(d)
		}
	}
}

// Freeze builds a CSR from the current state of g. The graph may continue
// to evolve afterwards; the CSR is an independent copy.
func Freeze(g *Graph) *CSR {
	n := g.NumNodes()
	e := g.NumEdges()
	c := &CSR{
		n:       n,
		outOff:  make([]uint32, n+1),
		outTo:   make([]NodeID, 0, e),
		inOff:   make([]uint32, n+1),
		inFrom:  make([]NodeID, 0, e),
		outDegs: make([]uint32, n),
	}
	for i := 0; i < n; i++ {
		id := NodeID(i)
		c.outOff[i] = uint32(len(c.outTo))
		c.outTo = append(c.outTo, g.OutLinks(id)...)
		c.inOff[i] = uint32(len(c.inFrom))
		c.inFrom = append(c.inFrom, g.InLinks(id)...)
		c.outDegs[i] = uint32(g.OutDegree(id))
	}
	c.outOff[n] = uint32(len(c.outTo))
	c.inOff[n] = uint32(len(c.inFrom))
	c.buildInvOut()
	return c
}

// NumNodes returns the node count.
func (c *CSR) NumNodes() int { return c.n }

// NumEdges returns the edge count.
func (c *CSR) NumEdges() int { return len(c.outTo) }

// Out returns the out-neighbours of id. The slice aliases internal storage
// and must not be mutated.
func (c *CSR) Out(id NodeID) []NodeID {
	return c.outTo[c.outOff[id]:c.outOff[id+1]]
}

// In returns the in-neighbours of id. The slice aliases internal storage
// and must not be mutated.
func (c *CSR) In(id NodeID) []NodeID {
	return c.inFrom[c.inOff[id]:c.inOff[id+1]]
}

// OutDegree returns the out-degree of id.
func (c *CSR) OutDegree(id NodeID) int { return int(c.outDegs[id]) }

// InLists exposes the raw in-adjacency arrays: off has length NumNodes()+1
// and from[off[i]:off[i+1]] are the in-neighbours of node i. The slices
// alias internal storage and must not be mutated. Flat kernels (PageRank)
// iterate these directly instead of calling In per node.
func (c *CSR) InLists() (off []uint32, from []NodeID) {
	return c.inOff, c.inFrom
}

// OutDegrees exposes the raw out-degree array, indexed by NodeID. The
// slice aliases internal storage and must not be mutated.
func (c *CSR) OutDegrees() []uint32 { return c.outDegs }

// InvOutDegrees exposes the precomputed 1/out-degree array, indexed by
// NodeID; dangling nodes hold 0. The slice aliases internal storage and
// must not be mutated.
func (c *CSR) InvOutDegrees() []float64 { return c.invOut }

// InDegree returns the in-degree of id.
func (c *CSR) InDegree(id NodeID) int {
	return int(c.inOff[id+1] - c.inOff[id])
}

// Danglings returns the ids of all nodes with no out-links. PageRank needs
// them to apply its dangling-node policy.
func (c *CSR) Danglings() []NodeID {
	var d []NodeID
	for i := 0; i < c.n; i++ {
		if c.outDegs[i] == 0 {
			d = append(d, NodeID(i))
		}
	}
	return d
}

// Transpose returns a CSR for the reversed graph (every edge u→v becomes
// v→u). Useful for running push-style algorithms against in-links.
func (c *CSR) Transpose() *CSR {
	t := &CSR{
		n:       c.n,
		outOff:  append([]uint32(nil), c.inOff...),
		outTo:   append([]NodeID(nil), c.inFrom...),
		inOff:   append([]uint32(nil), c.outOff...),
		inFrom:  append([]NodeID(nil), c.outTo...),
		outDegs: make([]uint32, c.n),
	}
	for i := 0; i < c.n; i++ {
		t.outDegs[i] = t.outOff[i+1] - t.outOff[i]
	}
	t.buildInvOut()
	return t
}
