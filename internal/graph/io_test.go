package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func graphsEqual(a, b *Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for i := 0; i < a.NumNodes(); i++ {
		id := NodeID(i)
		pa, pb := a.Page(id), b.Page(id)
		// NaN != NaN, compare bit-wise via reflect on non-NaN fields.
		if pa.URL != pb.URL || pa.Site != pb.Site || pa.Created != pb.Created { //pqlint:allow floateq round-trip parity check; Created must survive encoding bit-for-bit
			return false
		}
		if (pa.Quality == pa.Quality) != (pb.Quality == pb.Quality) { //pqlint:allow floateq NaN self-comparison distinguishes NaN from numbers in the parity check
			return false
		}
		if pa.Quality == pa.Quality && pa.Quality != pb.Quality { //pqlint:allow floateq round-trip parity check; Quality must survive encoding bit-for-bit
			return false
		}
		oa := append([]NodeID(nil), a.OutLinks(id)...)
		ob := append([]NodeID(nil), b.OutLinks(id)...)
		sortNodeIDs(oa)
		sortNodeIDs(ob)
		if !reflect.DeepEqual(oa, ob) && !(len(oa) == 0 && len(ob) == 0) {
			return false
		}
	}
	return true
}

func TestRoundTripSmall(t *testing.T) {
	g := New(3)
	g.MustAddPage(Page{URL: "http://a/", Site: 0, Created: 1, Quality: 0.25})
	g.MustAddPage(Page{URL: "http://b/", Site: 1, Created: 2.5, Quality: 0.75})
	g.MustAddPage(Page{URL: "", Site: -1})
	g.AddLink(0, 1)
	g.AddLink(1, 0)
	g.AddLink(0, 2)

	var buf bytes.Buffer
	n, err := g.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo returned %d, wrote %d", n, buf.Len())
	}
	g2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("round trip changed the graph")
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	// URL index must be rebuilt.
	if id, ok := g2.Lookup("http://b/"); !ok || id != 1 {
		t.Fatal("URL index not rebuilt")
	}
}

func TestRoundTripGenerated(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g, err := GeneratePreferentialAttachment(PreferentialAttachmentConfig{Nodes: 500, OutPerNode: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	buf := g.AppendBinary(nil)
	g2, consumed, err := DecodeBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(buf) {
		t.Fatalf("consumed %d of %d bytes", consumed, len(buf))
	}
	if !graphsEqual(g, g2) {
		t.Fatal("round trip changed generated graph")
	}
}

func TestDeterministicEncoding(t *testing.T) {
	// Same logical graph built with different insertion orders must encode
	// identically (adjacency is sorted on write).
	a := New(3)
	a.AddNodes(3)
	a.AddLink(0, 1)
	a.AddLink(0, 2)
	b := New(3)
	b.AddNodes(3)
	b.AddLink(0, 2)
	b.AddLink(0, 1)
	if !bytes.Equal(a.AppendBinary(nil), b.AppendBinary(nil)) {
		t.Fatal("encoding depends on insertion order")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	g := cycleGraph(10)
	buf := g.AppendBinary(nil)
	// Flip one payload byte.
	buf[20] ^= 0xff
	_, _, err := DecodeBinary(buf)
	if !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrBadFormat) {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	buf := cycleGraph(3).AppendBinary(nil)
	buf[0] = 'X'
	if _, _, err := DecodeBinary(buf); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("bad magic not detected: %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	buf := cycleGraph(5).AppendBinary(nil)
	for _, cut := range []int{0, 3, 11, len(buf) / 2, len(buf) - 1} {
		if _, err := ReadFrom(bytes.NewReader(buf[:cut])); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestEmptyGraphRoundTrip(t *testing.T) {
	g := New(0)
	buf := g.AppendBinary(nil)
	g2, _, err := DecodeBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 0 || g2.NumEdges() != 0 {
		t.Fatal("empty graph round trip non-empty")
	}
}

func TestImplausibleLengthRejected(t *testing.T) {
	buf := append([]byte{}, graphMagic[:]...)
	buf = append(buf, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f) // huge payload len
	if _, err := ReadFrom(bytes.NewReader(buf)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("huge payload accepted: %v", err)
	}
}

// Property: any random graph survives a serialisation round trip.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, nNodes uint8, nEdges uint16) bool {
		n := int(nNodes%64) + 2
		rng := rand.New(rand.NewSource(seed))
		e := int(nEdges) % (n * (n - 1) / 2)
		g, err := GenerateUniform(n, e, rng)
		if err != nil {
			return false
		}
		buf := g.AppendBinary(nil)
		g2, _, err := DecodeBinary(buf)
		return err == nil && graphsEqual(g, g2)
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, err := GeneratePreferentialAttachment(PreferentialAttachmentConfig{Nodes: 10000, OutPerNode: 5}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := g.AppendBinary(nil)
		if len(buf) == 0 {
			b.Fatal("empty encoding")
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, err := GeneratePreferentialAttachment(PreferentialAttachmentConfig{Nodes: 10000, OutPerNode: 5}, rng)
	if err != nil {
		b.Fatal(err)
	}
	buf := g.AppendBinary(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeBinary(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFreeze(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, err := GeneratePreferentialAttachment(PreferentialAttachmentConfig{Nodes: 50000, OutPerNode: 6}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Freeze(g).NumEdges() != g.NumEdges() {
			b.Fatal("freeze lost edges")
		}
	}
}

// Property: arbitrary byte soup never panics the decoder and is always
// rejected (the only accepted inputs are genuine encodings).
func TestQuickDecodeFuzz(t *testing.T) {
	f := func(junk []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("decoder panicked")
			}
		}()
		_, _, err := DecodeBinary(junk)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping any single byte of a valid encoding is detected.
func TestQuickBitFlipDetected(t *testing.T) {
	g := cycleGraph(12)
	buf := g.AppendBinary(nil)
	f := func(pos uint16, bit uint8) bool {
		cp := append([]byte(nil), buf...)
		i := int(pos) % len(cp)
		cp[i] ^= 1 << (bit % 8)
		g2, _, err := DecodeBinary(cp)
		if err != nil {
			return true // rejected: good
		}
		// A flip that survives decoding must decode to the same graph
		// (e.g. flipping a bit inside the length prefix's unused high
		// bytes cannot happen; accept only exact equality).
		return graphsEqual(g, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
