package graph

import (
	"math"
	"math/rand"
	"testing"
)

func cycleGraph(n int) *Graph {
	g := New(n)
	g.AddNodes(n)
	for i := 0; i < n; i++ {
		g.AddLink(NodeID(i), NodeID((i+1)%n))
	}
	return g
}

func TestSCCSingleCycle(t *testing.T) {
	c := Freeze(cycleGraph(10))
	comp, n := SCC(c)
	if n != 1 {
		t.Fatalf("components = %d, want 1", n)
	}
	for v, ci := range comp {
		if ci != 0 {
			t.Fatalf("node %d in component %d", v, ci)
		}
	}
}

func TestSCCChain(t *testing.T) {
	g := New(5)
	g.AddNodes(5)
	for i := 0; i < 4; i++ {
		g.AddLink(NodeID(i), NodeID(i+1))
	}
	comp, n := SCC(Freeze(g))
	if n != 5 {
		t.Fatalf("components = %d, want 5 (each node its own)", n)
	}
	// Tarjan emits components in reverse topological order: the sink (node
	// 4) is finished first.
	if comp[4] != 0 {
		t.Fatalf("sink component = %d, want 0", comp[4])
	}
	for i := 0; i < 4; i++ {
		if comp[i] <= comp[i+1] {
			t.Fatalf("components not reverse-topological: comp[%d]=%d comp[%d]=%d",
				i, comp[i], i+1, comp[i+1])
		}
	}
}

func TestSCCTwoCyclesBridged(t *testing.T) {
	g := New(6)
	g.AddNodes(6)
	// cycle A: 0->1->2->0, cycle B: 3->4->5->3, bridge 2->3.
	g.AddLink(0, 1)
	g.AddLink(1, 2)
	g.AddLink(2, 0)
	g.AddLink(3, 4)
	g.AddLink(4, 5)
	g.AddLink(5, 3)
	g.AddLink(2, 3)
	comp, n := SCC(Freeze(g))
	if n != 2 {
		t.Fatalf("components = %d, want 2", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("cycle A split")
	}
	if comp[3] != comp[4] || comp[4] != comp[5] {
		t.Fatal("cycle B split")
	}
	if comp[0] == comp[3] {
		t.Fatal("cycles merged")
	}
}

func TestSCCEmptyAndSingleton(t *testing.T) {
	g := New(0)
	if _, n := SCC(Freeze(g)); n != 0 {
		t.Fatalf("empty graph components = %d", n)
	}
	g = New(1)
	g.AddNodes(1)
	if _, n := SCC(Freeze(g)); n != 1 {
		t.Fatalf("singleton components = %d", n)
	}
}

func TestSCCDeepChainNoOverflow(t *testing.T) {
	// A 200k-node path would overflow a recursive Tarjan; the iterative one
	// must survive.
	const n = 200_000
	g := New(n)
	g.AddNodes(n)
	for i := 0; i < n-1; i++ {
		g.AddLink(NodeID(i), NodeID(i+1))
	}
	_, nc := SCC(Freeze(g))
	if nc != n {
		t.Fatalf("components = %d, want %d", nc, n)
	}
}

func TestBowTieRecoversGeneratedRegions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := BowTieConfig{Core: 50, In: 30, Out: 40, Tendrils: 20, AvgDegree: 3}
	g, err := GenerateBowTie(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	res := BowTie(Freeze(g))
	if got := res.Counts[RegionCore]; got != cfg.Core {
		t.Fatalf("CORE = %d, want %d", got, cfg.Core)
	}
	if got := res.Counts[RegionIn]; got != cfg.In {
		t.Fatalf("IN = %d, want %d", got, cfg.In)
	}
	if got := res.Counts[RegionOut]; got != cfg.Out {
		t.Fatalf("OUT = %d, want %d", got, cfg.Out)
	}
	if got := res.Counts[RegionTendril]; got != cfg.Tendrils {
		t.Fatalf("TENDRIL = %d, want %d", got, cfg.Tendrils)
	}
	// Region labels align with node layout: first Core nodes are CORE.
	for v := 0; v < cfg.Core; v++ {
		if res.Region[v] != RegionCore {
			t.Fatalf("node %d region = %v, want CORE", v, res.Region[v])
		}
	}
}

func TestBowTieDisconnected(t *testing.T) {
	g := New(5)
	g.AddNodes(5)
	g.AddLink(0, 1)
	g.AddLink(1, 0) // core = {0,1}
	// nodes 2,3,4 isolated
	res := BowTie(Freeze(g))
	if res.Counts[RegionCore] != 2 {
		t.Fatalf("CORE = %d", res.Counts[RegionCore])
	}
	if res.Counts[RegionDisconnected] != 3 {
		t.Fatalf("DISCONNECTED = %d", res.Counts[RegionDisconnected])
	}
}

func TestRegionString(t *testing.T) {
	cases := map[Region]string{
		RegionCore: "CORE", RegionIn: "IN", RegionOut: "OUT",
		RegionTendril: "TENDRIL", RegionDisconnected: "DISCONNECTED",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
	if Region(99).String() == "" {
		t.Error("unknown region String empty")
	}
}

func TestDegreeDistribution(t *testing.T) {
	g := New(4)
	g.AddNodes(4)
	g.AddLink(0, 3)
	g.AddLink(1, 3)
	g.AddLink(2, 3)
	c := Freeze(g)
	in := DegreeDistribution(c, true)
	if in[0] != 3 || in[3] != 1 {
		t.Fatalf("in-degree hist = %v", in)
	}
	out := DegreeDistribution(c, false)
	if out[1] != 3 || out[0] != 1 {
		t.Fatalf("out-degree hist = %v", out)
	}
}

func TestPowerLawAlphaOnSyntheticTail(t *testing.T) {
	// Draw from a discrete power law with alpha=2.5 via inverse transform
	// on a continuous Pareto, then round.
	rng := rand.New(rand.NewSource(9))
	const alphaTrue = 2.5
	degs := make([]int, 20000)
	for i := range degs {
		u := rng.Float64()
		x := 1.0 / math.Pow(u, 1.0/(alphaTrue-1))
		degs[i] = int(x)
	}
	alpha, n := PowerLawAlpha(degs, 2)
	if n < 1000 {
		t.Fatalf("tail size %d too small", n)
	}
	if alpha < 2.1 || alpha > 2.9 {
		t.Fatalf("alpha = %.3f, want ~2.5", alpha)
	}
}

func TestPowerLawAlphaDegenerate(t *testing.T) {
	if a, n := PowerLawAlpha(nil, 1); a != 0 || n != 0 {
		t.Fatalf("empty input -> (%v,%d)", a, n)
	}
	if a, n := PowerLawAlpha([]int{0, 0}, 1); a != 0 || n != 0 {
		t.Fatalf("all-below-kmin -> (%v,%d)", a, n)
	}
	// kmin < 1 is clamped to 1.
	if _, n := PowerLawAlpha([]int{2, 3}, 0); n != 2 {
		t.Fatal("kmin clamp failed")
	}
}

func TestTopKByDegree(t *testing.T) {
	g := New(4)
	g.AddNodes(4)
	g.AddLink(0, 3)
	g.AddLink(1, 3)
	g.AddLink(2, 3)
	g.AddLink(0, 2)
	c := Freeze(g)
	top := TopKByDegree(c, 2, true)
	if len(top) != 2 || top[0] != 3 || top[1] != 2 {
		t.Fatalf("TopK in = %v, want [3 2]", top)
	}
	topOut := TopKByDegree(c, 10, false)
	if len(topOut) != 4 || topOut[0] != 0 {
		t.Fatalf("TopK out = %v", topOut)
	}
}
