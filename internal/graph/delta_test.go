package graph

import (
	"errors"
	"testing"
)

// deltaFixture builds old (4 nodes) and new (6 nodes) freezes with one
// added edge among old nodes, one removed edge, and two new nodes.
func deltaFixture(t *testing.T) (old, cur *CSR) {
	t.Helper()
	g := New(4)
	g.AddNodes(4)
	g.AddLink(0, 1)
	g.AddLink(1, 2)
	g.AddLink(2, 0)
	g.AddLink(2, 3)
	old = Freeze(g)

	g.RemoveLink(2, 3) // 2's out-degree changes
	g.AddLink(0, 3)    // 0's out-degree changes
	first := g.AddNodes(2)
	g.AddLink(first, 0)
	g.AddLink(3, first+1)
	cur = Freeze(g)
	return old, cur
}

func TestDiff(t *testing.T) {
	old, cur := deltaFixture(t)
	d, err := Diff(old, cur)
	if err != nil {
		t.Fatal(err)
	}
	if d.OldNodes != 4 || d.NewNodes != 6 {
		t.Fatalf("node counts %d -> %d, want 4 -> 6", d.OldNodes, d.NewNodes)
	}
	wantAdded := []Edge{{0, 3}, {3, 5}, {4, 0}}
	if len(d.Added) != len(wantAdded) {
		t.Fatalf("Added = %v, want %v", d.Added, wantAdded)
	}
	for i, e := range wantAdded {
		if d.Added[i] != e {
			t.Fatalf("Added = %v, want %v", d.Added, wantAdded)
		}
	}
	if len(d.Removed) != 1 || d.Removed[0] != (Edge{2, 3}) {
		t.Fatalf("Removed = %v, want [{2 3}]", d.Removed)
	}
	// 0 gained an out-link, 2 lost one, 3 gained one.
	wantDeg := []NodeID{0, 2, 3}
	if len(d.OutDegreeChanged) != len(wantDeg) {
		t.Fatalf("OutDegreeChanged = %v, want %v", d.OutDegreeChanged, wantDeg)
	}
	for i, id := range wantDeg {
		if d.OutDegreeChanged[i] != id {
			t.Fatalf("OutDegreeChanged = %v, want %v", d.OutDegreeChanged, wantDeg)
		}
	}
	if d.NumChanges() != 4 {
		t.Fatalf("NumChanges = %d, want 4", d.NumChanges())
	}
	if err := d.Validate(cur); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	// Dirty: edge targets {3, 5, 0}, out-neighbours of out-degree-changed
	// nodes 0 (-> 1, 3), 2 (-> 0), 3 (-> 5) plus themselves, new nodes
	// {4, 5}.
	want := []NodeID{0, 1, 2, 3, 4, 5}
	got := d.DirtyNodes(cur)
	if len(got) != len(want) {
		t.Fatalf("DirtyNodes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DirtyNodes = %v, want %v", got, want)
		}
	}
}

func TestDiffIdentical(t *testing.T) {
	old, _ := deltaFixture(t)
	d, err := Diff(old, old)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumChanges() != 0 || len(d.OutDegreeChanged) != 0 {
		t.Fatalf("identical freezes produced changes: %+v", d)
	}
	if dirty := d.DirtyNodes(old); len(dirty) != 0 {
		t.Fatalf("identical freezes produced dirty nodes %v", dirty)
	}
}

func TestDiffRejectsShrinking(t *testing.T) {
	old, cur := deltaFixture(t)
	if _, err := Diff(cur, old); !errors.Is(err, ErrDelta) {
		t.Fatalf("shrinking diff accepted: %v", err)
	}
}

func TestDeltaValidate(t *testing.T) {
	old, cur := deltaFixture(t)
	d, err := Diff(old, cur)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(old); !errors.Is(err, ErrDelta) {
		t.Fatalf("wrong-CSR Validate accepted: %v", err)
	}
	bad := *d
	bad.Added = append([]Edge{{From: 99, To: 0}}, d.Added...)
	if err := bad.Validate(cur); !errors.Is(err, ErrDelta) {
		t.Fatalf("out-of-range added edge accepted: %v", err)
	}
	bad = *d
	bad.Removed = []Edge{{From: 5, To: 0}} // new node cannot have removed edges
	if err := bad.Validate(cur); !errors.Is(err, ErrDelta) {
		t.Fatalf("removed edge outside old range accepted: %v", err)
	}
	bad = *d
	bad.OutDegreeChanged = []NodeID{5}
	if err := bad.Validate(cur); !errors.Is(err, ErrDelta) {
		t.Fatalf("out-degree change on new node accepted: %v", err)
	}
	bad = *d
	bad.OldNodes = 7
	if err := bad.Validate(cur); !errors.Is(err, ErrDelta) {
		t.Fatalf("OldNodes > NewNodes accepted: %v", err)
	}
}
