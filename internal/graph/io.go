package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Binary graph format
//
//	magic      [4]byte  "PQG1"
//	payloadLen uint64 little-endian
//	payload    payloadLen bytes:
//	    nodes   uvarint
//	    edges   uvarint
//	    pages   nodes × { urlLen uvarint, url bytes, site varint,
//	                      created float64, quality float64 }
//	    adjacency nodes × { deg uvarint, deg × target uvarint
//	                        (delta-coded, ascending) }
//	crc32      uint32 little-endian (IEEE, over the payload)
//
// The adjacency is written sorted so identical graphs always serialise to
// identical bytes. The payload is length-prefixed so the reader can verify
// the checksum before parsing.

var graphMagic = [4]byte{'P', 'Q', 'G', '1'}

// ErrBadFormat is returned when a stream does not contain a valid graph.
var ErrBadFormat = errors.New("graph: bad format")

// ErrChecksum is returned when the payload checksum does not match.
var ErrChecksum = errors.New("graph: checksum mismatch")

// maxPayload bounds allocations driven by untrusted input (1 GiB).
const maxPayload = 1 << 30

// AppendBinary serialises g into buf (which may be nil) and returns the
// extended buffer.
func (g *Graph) AppendBinary(buf []byte) []byte {
	payload := g.appendPayload(nil)
	buf = append(buf, graphMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return buf
}

func (g *Graph) appendPayload(b []byte) []byte {
	b = binary.AppendUvarint(b, uint64(g.NumNodes()))
	b = binary.AppendUvarint(b, uint64(g.NumEdges()))
	for _, p := range g.pages {
		b = binary.AppendUvarint(b, uint64(len(p.URL)))
		b = append(b, p.URL...)
		b = binary.AppendVarint(b, int64(p.Site))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(p.Created))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(p.Quality))
	}
	sorted := make([]NodeID, 0, 64)
	for i := range g.out {
		sorted = append(sorted[:0], g.out[i]...)
		sortNodeIDs(sorted)
		b = binary.AppendUvarint(b, uint64(len(sorted)))
		prev := uint64(0)
		for _, t := range sorted {
			b = binary.AppendUvarint(b, uint64(t)-prev)
			prev = uint64(t)
		}
	}
	return b
}

// WriteTo serialises g to w, returning the number of bytes written.
// It implements io.WriterTo.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	buf := g.AppendBinary(nil)
	n, err := w.Write(buf)
	if err != nil {
		return int64(n), fmt.Errorf("graph: write: %w", err)
	}
	return int64(n), nil
}

// ReadFrom deserialises a graph previously written with WriteTo or
// AppendBinary. The payload checksum is verified before parsing.
func ReadFrom(r io.Reader) (*Graph, error) {
	var head [12]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("graph: read header: %w", err)
	}
	if *(*[4]byte)(head[:4]) != graphMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, head[:4])
	}
	plen := binary.LittleEndian.Uint64(head[4:12])
	if plen > maxPayload {
		return nil, fmt.Errorf("%w: payload length %d too large", ErrBadFormat, plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("graph: read payload: %w", err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("graph: read checksum: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return nil, fmt.Errorf("%w: got %08x want %08x", ErrChecksum, got, want)
	}
	return parsePayload(payload)
}

// DecodeBinary parses a buffer produced by AppendBinary and returns the
// graph plus the number of bytes consumed.
func DecodeBinary(buf []byte) (*Graph, int, error) {
	if len(buf) < 12 {
		return nil, 0, fmt.Errorf("%w: short buffer", ErrBadFormat)
	}
	g, err := ReadFrom(bytes.NewReader(buf))
	if err != nil {
		return nil, 0, err
	}
	plen := binary.LittleEndian.Uint64(buf[4:12])
	return g, 12 + int(plen) + 4, nil
}

func parsePayload(payload []byte) (*Graph, error) {
	br := bytes.NewReader(payload)
	nodes, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graph: node count: %w", err)
	}
	edges, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graph: edge count: %w", err)
	}
	if nodes > maxPayload/16 {
		return nil, fmt.Errorf("%w: implausible node count %d", ErrBadFormat, nodes)
	}
	g := New(int(nodes))
	var fbuf [8]byte
	readFloat := func() (float64, error) {
		if _, err := io.ReadFull(br, fbuf[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(fbuf[:])), nil
	}
	for i := uint64(0); i < nodes; i++ {
		ulen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph: node %d url len: %w", i, err)
		}
		if ulen > 1<<16 {
			return nil, fmt.Errorf("%w: url length %d", ErrBadFormat, ulen)
		}
		urlBytes := make([]byte, ulen)
		if _, err := io.ReadFull(br, urlBytes); err != nil {
			return nil, fmt.Errorf("graph: node %d url: %w", i, err)
		}
		site, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph: node %d site: %w", i, err)
		}
		created, err := readFloat()
		if err != nil {
			return nil, fmt.Errorf("graph: node %d created: %w", i, err)
		}
		quality, err := readFloat()
		if err != nil {
			return nil, fmt.Errorf("graph: node %d quality: %w", i, err)
		}
		if _, err := g.AddPage(Page{
			URL:     string(urlBytes),
			Site:    int32(site),
			Created: created,
			Quality: quality,
		}); err != nil {
			return nil, err
		}
	}
	for i := uint64(0); i < nodes; i++ {
		deg, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph: node %d degree: %w", i, err)
		}
		if deg > nodes {
			return nil, fmt.Errorf("%w: degree %d > nodes %d", ErrBadFormat, deg, nodes)
		}
		prev := uint64(0)
		for k := uint64(0); k < deg; k++ {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("graph: node %d edge %d: %w", i, k, err)
			}
			to := prev + d
			prev = to
			if to >= nodes {
				return nil, fmt.Errorf("%w: edge target %d out of range", ErrBadFormat, to)
			}
			if !g.AddLink(NodeID(i), NodeID(to)) {
				return nil, fmt.Errorf("%w: duplicate or self edge %d->%d", ErrBadFormat, i, to)
			}
		}
	}
	if uint64(g.NumEdges()) != edges {
		return nil, fmt.Errorf("%w: edge count %d, header says %d", ErrBadFormat, g.NumEdges(), edges)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrBadFormat, br.Len())
	}
	return g, nil
}
