package graph

import (
	"errors"
	"fmt"

	"pagequality/internal/bitset"
)

// Edge is one directed link, used by Delta to record structural changes
// between two freezes of a graph.
type Edge struct {
	From, To NodeID
}

// Delta records the structural difference between two frozen views of a
// growing graph: nodes appended at the end of the id space, and edges
// added or removed among existing nodes. Both freezes must share one
// dense NodeID space with the old graph's ids forming a prefix of the
// new one's — exactly what Graph guarantees when pages are only ever
// appended (the crawler, the corpus simulator and snapshot alignment all
// preserve this).
//
// A Delta is the input contract of pagerank.ComputeIncremental: it
// bounds the set of nodes whose fixed-point value can have moved, so the
// power iteration can re-seed from the previous converged vector and
// restrict per-iteration work to the affected region of the graph.
type Delta struct {
	// OldNodes and NewNodes are the node counts of the two freezes.
	// Nodes [OldNodes, NewNodes) are new.
	OldNodes, NewNodes int
	// Added and Removed are the edge changes among pre-existing rows plus
	// every edge of a new node, in (from, then row) order of the freeze
	// they were observed in.
	Added, Removed []Edge
	// OutDegreeChanged lists the old nodes whose out-degree differs
	// between the freezes, in ascending order. Their 1/outdeg scaling
	// changed, so every one of their current out-neighbours receives a
	// different contribution even when its own in-list is untouched.
	OutDegreeChanged []NodeID
}

// ErrDelta reports freezes that cannot be diffed or a delta that does not
// describe the CSR it is applied to.
var ErrDelta = errors.New("graph: bad delta")

// Diff computes the Delta between two freezes of a growing graph. The
// old freeze's nodes must be a prefix of the new one's; node removal is
// not supported (nothing in this codebase removes pages).
func Diff(old, cur *CSR) (*Delta, error) {
	if cur.NumNodes() < old.NumNodes() {
		return nil, fmt.Errorf("%w: new freeze has %d nodes, old has %d (nodes cannot be removed)",
			ErrDelta, cur.NumNodes(), old.NumNodes())
	}
	d := &Delta{OldNodes: old.NumNodes(), NewNodes: cur.NumNodes()}
	for i := 0; i < d.OldNodes; i++ {
		id := NodeID(i)
		or, nr := old.Out(id), cur.Out(id)
		if nodeIDsEqual(or, nr) {
			continue
		}
		os := make(map[NodeID]bool, len(or))
		for _, t := range or {
			os[t] = true
		}
		ns := make(map[NodeID]bool, len(nr))
		for _, t := range nr {
			ns[t] = true
		}
		// Row order (not map order) keeps the edge lists deterministic.
		for _, t := range nr {
			if !os[t] {
				d.Added = append(d.Added, Edge{From: id, To: t})
			}
		}
		for _, t := range or {
			if !ns[t] {
				d.Removed = append(d.Removed, Edge{From: id, To: t})
			}
		}
		if len(or) != len(nr) {
			d.OutDegreeChanged = append(d.OutDegreeChanged, id)
		}
	}
	for i := d.OldNodes; i < d.NewNodes; i++ {
		id := NodeID(i)
		for _, t := range cur.Out(id) {
			d.Added = append(d.Added, Edge{From: id, To: t})
		}
	}
	return d, nil
}

// nodeIDsEqual reports whether two adjacency rows are identical.
func nodeIDsEqual(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Validate checks that the delta plausibly describes the transition into
// c: node counts line up and every recorded edge endpoint is in range.
func (d *Delta) Validate(c *CSR) error {
	if d.NewNodes != c.NumNodes() {
		return fmt.Errorf("%w: delta targets %d nodes, CSR has %d", ErrDelta, d.NewNodes, c.NumNodes())
	}
	if d.OldNodes < 0 || d.OldNodes > d.NewNodes {
		return fmt.Errorf("%w: OldNodes %d outside [0, %d]", ErrDelta, d.OldNodes, d.NewNodes)
	}
	n := NodeID(d.NewNodes)
	for _, e := range d.Added {
		if e.From >= n || e.To >= n {
			return fmt.Errorf("%w: added edge %d->%d out of range", ErrDelta, e.From, e.To)
		}
	}
	oldN := NodeID(d.OldNodes)
	for _, e := range d.Removed {
		if e.From >= oldN || e.To >= oldN {
			return fmt.Errorf("%w: removed edge %d->%d outside old node range", ErrDelta, e.From, e.To)
		}
	}
	for _, id := range d.OutDegreeChanged {
		if id >= oldN {
			return fmt.Errorf("%w: out-degree change on new node %d", ErrDelta, id)
		}
	}
	return nil
}

// NumChanges returns the total number of recorded edge changes.
func (d *Delta) NumChanges() int { return len(d.Added) + len(d.Removed) }

// DirtyNodes returns, in ascending order, every node of c whose PageRank
// update rule or inputs changed under the delta:
//
//   - targets of added and removed edges (their in-list changed),
//   - current out-neighbours of nodes whose out-degree changed (the
//     1/outdeg contribution they receive changed),
//   - the out-degree-changed nodes themselves (their danglingness may
//     have flipped, which changes their own update under DanglingSelf),
//   - every new node.
//
// Everything outside this set holds its previous fixed-point value up to
// the global dangling-mass and normalisation coupling, which the caller
// settles with full polish sweeps.
func (d *Delta) DirtyNodes(c *CSR) []NodeID {
	dirty := bitset.New(d.NewNodes)
	for _, e := range d.Added {
		dirty.Set(int(e.To))
	}
	for _, e := range d.Removed {
		dirty.Set(int(e.To))
	}
	for _, id := range d.OutDegreeChanged {
		dirty.Set(int(id))
		for _, t := range c.Out(id) {
			dirty.Set(int(t))
		}
	}
	for i := d.OldNodes; i < d.NewNodes; i++ {
		dirty.Set(i)
	}
	out := make([]NodeID, 0, dirty.Count())
	dirty.ForEach(func(i int) bool {
		out = append(out, NodeID(i))
		return true
	})
	return out
}
