// Package graph implements the Web-graph substrate for the page-quality
// estimator: a mutable directed graph with per-page metadata, a frozen
// compressed-sparse-row (CSR) snapshot for iterative computations,
// synthetic Web generators, structural analysis (degree distributions,
// strongly connected components, bow-tie decomposition) and a binary
// serialisation format.
//
// Node identifiers are dense uint32 values assigned in insertion order, so
// popularity vectors can be plain []float64 slices indexed by NodeID.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a page within one Graph. IDs are dense and start at 0.
type NodeID uint32

// InvalidNode is returned by lookups that find no node.
const InvalidNode = NodeID(^uint32(0))

// Page carries the metadata the corpus simulator and the quality estimator
// attach to each node.
type Page struct {
	// URL is the unique address of the page (used as the stable key when
	// intersecting snapshots taken at different times).
	URL string
	// Site is the index of the Web site the page belongs to (-1 if unknown).
	Site int32
	// Created is the simulation time step at which the page was born.
	Created float64
	// Quality is the ground-truth intrinsic quality Q(p) in [0,1] when the
	// page was produced by the corpus simulator, or NaN when unknown.
	Quality float64
}

// Graph is a mutable directed Web graph. It is a builder: freeze it into a
// CSR with Freeze before running PageRank-style computations.
//
// Graph is not safe for concurrent mutation.
type Graph struct {
	pages []Page
	out   [][]NodeID
	in    [][]NodeID
	byURL map[string]NodeID
	edges int
}

// New returns an empty graph with capacity hints for n nodes.
func New(n int) *Graph {
	return &Graph{
		pages: make([]Page, 0, n),
		out:   make([][]NodeID, 0, n),
		in:    make([][]NodeID, 0, n),
		byURL: make(map[string]NodeID, n),
	}
}

// ErrDuplicateURL is returned by AddPage when the URL already exists.
var ErrDuplicateURL = errors.New("graph: duplicate URL")

// AddPage adds a page and returns its new NodeID. The URL must be unique
// within the graph; pass an empty URL to skip URL indexing entirely (useful
// for purely synthetic graphs).
func (g *Graph) AddPage(p Page) (NodeID, error) {
	if p.URL != "" {
		if _, ok := g.byURL[p.URL]; ok {
			return InvalidNode, fmt.Errorf("%w: %q", ErrDuplicateURL, p.URL)
		}
	}
	id := NodeID(len(g.pages))
	g.pages = append(g.pages, p)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	if p.URL != "" {
		g.byURL[p.URL] = id
	}
	return id, nil
}

// MustAddPage is AddPage for construction code where a duplicate URL is a
// programmer error.
func (g *Graph) MustAddPage(p Page) NodeID {
	id, err := g.AddPage(p)
	if err != nil {
		panic(err)
	}
	return id
}

// AddNodes appends n anonymous pages (no URL, unknown site) and returns the
// id of the first one. It is the fast path for synthetic generators.
func (g *Graph) AddNodes(n int) NodeID {
	first := NodeID(len(g.pages))
	for i := 0; i < n; i++ {
		g.pages = append(g.pages, Page{Site: -1})
		g.out = append(g.out, nil)
		g.in = append(g.in, nil)
	}
	return first
}

// NumNodes returns the number of pages.
func (g *Graph) NumNodes() int { return len(g.pages) }

// NumEdges returns the number of directed links.
func (g *Graph) NumEdges() int { return g.edges }

// Page returns the metadata for node id.
func (g *Graph) Page(id NodeID) Page { return g.pages[id] }

// SetPage replaces the metadata for node id. Changing the URL of an indexed
// page re-keys the URL index.
func (g *Graph) SetPage(id NodeID, p Page) {
	old := g.pages[id]
	if old.URL != p.URL {
		if old.URL != "" {
			delete(g.byURL, old.URL)
		}
		if p.URL != "" {
			g.byURL[p.URL] = id
		}
	}
	g.pages[id] = p
}

// Lookup returns the node with the given URL.
func (g *Graph) Lookup(url string) (NodeID, bool) {
	id, ok := g.byURL[url]
	return id, ok
}

// HasLink reports whether the directed link from → to exists.
func (g *Graph) HasLink(from, to NodeID) bool {
	for _, t := range g.out[from] {
		if t == to {
			return true
		}
	}
	return false
}

// AddLink inserts the directed link from → to. Duplicate links and
// self-links are rejected (the paper's model counts at most one link per
// author per page, and self-links carry no popularity information).
// It reports whether the link was inserted.
func (g *Graph) AddLink(from, to NodeID) bool {
	if from == to || g.HasLink(from, to) {
		return false
	}
	g.out[from] = append(g.out[from], to)
	g.in[to] = append(g.in[to], from)
	g.edges++
	return true
}

// RemoveLink deletes the directed link from → to if present, reporting
// whether a link was removed. Used by the forgetting extension where stale
// links decay.
func (g *Graph) RemoveLink(from, to NodeID) bool {
	if !removeFrom(&g.out[from], to) {
		return false
	}
	removeFrom(&g.in[to], from)
	g.edges--
	return true
}

func removeFrom(s *[]NodeID, v NodeID) bool {
	for i, x := range *s {
		if x == v {
			(*s)[i] = (*s)[len(*s)-1]
			*s = (*s)[:len(*s)-1]
			return true
		}
	}
	return false
}

// OutLinks returns the targets of node id. The returned slice is owned by
// the graph and must not be mutated.
func (g *Graph) OutLinks(id NodeID) []NodeID { return g.out[id] }

// InLinks returns the sources pointing at node id. The returned slice is
// owned by the graph and must not be mutated.
func (g *Graph) InLinks(id NodeID) []NodeID { return g.in[id] }

// OutDegree returns len(OutLinks(id)).
func (g *Graph) OutDegree(id NodeID) int { return len(g.out[id]) }

// InDegree returns len(InLinks(id)).
func (g *Graph) InDegree(id NodeID) int { return len(g.in[id]) }

// Clone returns a deep copy of the graph. All adjacency lists share one
// packed backing array sized from the live edge count (two entries per
// edge), so a snapshot costs two large allocations instead of one per
// non-empty list. Each list's capacity is capped at its length, so a later
// append on the clone reallocates that list rather than clobbering its
// neighbour's region of the backing array.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		pages: append([]Page(nil), g.pages...),
		out:   make([][]NodeID, len(g.out)),
		in:    make([][]NodeID, len(g.in)),
		byURL: make(map[string]NodeID, len(g.byURL)),
		edges: g.edges,
	}
	backing := make([]NodeID, 0, 2*g.edges)
	for i := range g.out {
		if n := len(g.out[i]); n > 0 {
			lo := len(backing)
			backing = append(backing, g.out[i]...)
			c.out[i] = backing[lo : lo+n : lo+n]
		}
		if n := len(g.in[i]); n > 0 {
			lo := len(backing)
			backing = append(backing, g.in[i]...)
			c.in[i] = backing[lo : lo+n : lo+n]
		}
	}
	for k, v := range g.byURL {
		c.byURL[k] = v
	}
	return c
}

// Subgraph returns a new graph induced by keep (in the iteration order of
// the slice), together with the mapping old→new id. Links with an endpoint
// outside keep are dropped. Used to restrict snapshots to the common pages
// downloaded in every crawl (§8.1 of the paper).
func (g *Graph) Subgraph(keep []NodeID) (*Graph, map[NodeID]NodeID) {
	remap := make(map[NodeID]NodeID, len(keep))
	sub := New(len(keep))
	for _, old := range keep {
		id := sub.MustAddPage(g.pages[old])
		remap[old] = id
	}
	for _, old := range keep {
		from := remap[old]
		for _, t := range g.out[old] {
			if to, ok := remap[t]; ok {
				sub.AddLink(from, to)
			}
		}
	}
	return sub, remap
}

// SortAdjacency sorts every adjacency list in ascending order. Generators
// append in insertion order; sorting makes serialisation deterministic and
// binary-diff friendly.
func (g *Graph) SortAdjacency() {
	for i := range g.out {
		sortNodeIDs(g.out[i])
		sortNodeIDs(g.in[i])
	}
}

func sortNodeIDs(s []NodeID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// Validate checks internal consistency: in/out adjacency mirror each other,
// no self-links, no duplicates, edge count matches. It is used by tests and
// by the snapshot reader to reject corrupt files.
func (g *Graph) Validate() error {
	n := NodeID(len(g.pages))
	count := 0
	for from := NodeID(0); from < n; from++ {
		seen := make(map[NodeID]bool, len(g.out[from]))
		for _, to := range g.out[from] {
			if to >= n {
				return fmt.Errorf("graph: edge %d->%d target out of range", from, to)
			}
			if to == from {
				return fmt.Errorf("graph: self-link at %d", from)
			}
			if seen[to] {
				return fmt.Errorf("graph: duplicate edge %d->%d", from, to)
			}
			seen[to] = true
			if !contains(g.in[to], from) {
				return fmt.Errorf("graph: edge %d->%d missing from in-list", from, to)
			}
			count++
		}
	}
	inCount := 0
	for to := NodeID(0); to < n; to++ {
		for _, from := range g.in[to] {
			if from >= n {
				return fmt.Errorf("graph: in-edge %d<-%d source out of range", to, from)
			}
			if !contains(g.out[from], to) {
				return fmt.Errorf("graph: in-edge %d<-%d missing from out-list", to, from)
			}
			inCount++
		}
	}
	if count != g.edges || inCount != g.edges {
		return fmt.Errorf("graph: edge count mismatch: out=%d in=%d cached=%d", count, inCount, g.edges)
	}
	return nil
}

func contains(s []NodeID, v NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
