package graph

import "math/rand"

// Reciprocity returns the fraction of directed edges whose reverse edge
// also exists — a standard Web-graph statistic (the real Web is weakly
// reciprocal; social graphs strongly so). A graph with no edges reports 0.
func Reciprocity(c *CSR) float64 {
	if c.NumEdges() == 0 {
		return 0
	}
	recip := 0
	for v := 0; v < c.NumNodes(); v++ {
		for _, w := range c.Out(NodeID(v)) {
			if containsLinear(c.Out(w), NodeID(v)) {
				recip++
			}
		}
	}
	return float64(recip) / float64(c.NumEdges())
}

func containsLinear(s []NodeID, v NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// ClusteringCoefficient estimates the average local clustering coefficient
// over the undirected projection of the graph: for each sampled node, the
// fraction of its neighbour pairs that are themselves connected. Sampling
// (samples > 0) keeps it tractable on large graphs; samples <= 0 uses
// every node. The rng drives node and pair sampling deterministically.
func ClusteringCoefficient(c *CSR, samples int, rng *rand.Rand) float64 {
	n := c.NumNodes()
	if n == 0 {
		return 0
	}
	nodes := make([]NodeID, 0, n)
	if samples <= 0 || samples >= n {
		for i := 0; i < n; i++ {
			nodes = append(nodes, NodeID(i))
		}
	} else {
		seen := make(map[NodeID]bool, samples)
		for len(nodes) < samples {
			v := NodeID(rng.Intn(n))
			if !seen[v] {
				seen[v] = true
				nodes = append(nodes, v)
			}
		}
	}
	// Undirected neighbour sets; the list form is deterministic (insertion
	// order over the adjacency slices) so sampling with a seeded rng is
	// reproducible.
	neighbours := func(v NodeID) (map[NodeID]bool, []NodeID) {
		set := make(map[NodeID]bool)
		var list []NodeID
		add := func(w NodeID) {
			if w != v && !set[w] {
				set[w] = true
				list = append(list, w)
			}
		}
		for _, w := range c.Out(v) {
			add(w)
		}
		for _, w := range c.In(v) {
			add(w)
		}
		return set, list
	}
	sum := 0.0
	counted := 0
	for _, v := range nodes {
		_, list := neighbours(v)
		k := len(list)
		if k < 2 {
			continue
		}
		// For large neighbourhoods sample pairs instead of all k(k-1)/2.
		const maxPairs = 200
		links, pairs := 0, 0
		if k*(k-1)/2 <= maxPairs {
			for i := 0; i < k; i++ {
				ni, _ := neighbours(list[i])
				for j := i + 1; j < k; j++ {
					pairs++
					if ni[list[j]] {
						links++
					}
				}
			}
		} else {
			for pairs < maxPairs {
				i := rng.Intn(k)
				j := rng.Intn(k)
				if i == j {
					continue
				}
				pairs++
				ni, _ := neighbours(list[i])
				if ni[list[j]] {
					links++
				}
			}
		}
		if pairs > 0 {
			sum += float64(links) / float64(pairs)
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}
