package graph

import (
	"fmt"
	"math/rand"
)

// This file implements the synthetic Web generators referenced by the
// paper's related-work section: preferential attachment (Barabási–Albert
// [4]), the copy model used to explain power-law in-degree distributions
// [3, 6], uniform random (Erdős–Rényi) graphs as a null model, and a
// bow-tie assembly following the global structure reported by Broder et
// al. [6].

// PreferentialAttachmentConfig parameterises GeneratePreferentialAttachment.
type PreferentialAttachmentConfig struct {
	// Nodes is the total number of pages to generate (>= Seed).
	Nodes int
	// OutPerNode is the number of links each newly arriving page creates
	// toward existing pages (m in the Barabási–Albert model).
	OutPerNode int
	// Seed is the size of the initial fully connected clique (defaults to
	// OutPerNode+1 when zero).
	Seed int
}

// GeneratePreferentialAttachment builds a directed Barabási–Albert graph:
// each arriving node links to OutPerNode existing nodes chosen with
// probability proportional to their current in-degree plus one. The
// resulting in-degree distribution follows a power law, matching the
// observed Web [3, 4].
func GeneratePreferentialAttachment(cfg PreferentialAttachmentConfig, rng *rand.Rand) (*Graph, error) {
	if cfg.OutPerNode < 1 {
		return nil, fmt.Errorf("graph: OutPerNode must be >= 1, got %d", cfg.OutPerNode)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = cfg.OutPerNode + 1
	}
	if cfg.Nodes < seed {
		return nil, fmt.Errorf("graph: Nodes (%d) must be >= Seed (%d)", cfg.Nodes, seed)
	}
	g := New(cfg.Nodes)
	g.AddNodes(cfg.Nodes)

	// targets is the repeated-endpoint urn: node id appears once per
	// in-link plus once for its base mass, so sampling uniformly from the
	// urn realises the "proportional to in-degree + 1" rule.
	urn := make([]NodeID, 0, cfg.Nodes*(cfg.OutPerNode+1))

	// Fully connect the seed clique.
	for i := 0; i < seed; i++ {
		urn = append(urn, NodeID(i))
		for j := 0; j < seed; j++ {
			if i != j && g.AddLink(NodeID(i), NodeID(j)) {
				urn = append(urn, NodeID(j))
			}
		}
	}
	for v := seed; v < cfg.Nodes; v++ {
		id := NodeID(v)
		added := 0
		for attempts := 0; added < cfg.OutPerNode && attempts < 50*cfg.OutPerNode; attempts++ {
			to := urn[rng.Intn(len(urn))]
			if g.AddLink(id, to) {
				urn = append(urn, to)
				added++
			}
		}
		urn = append(urn, id)
	}
	return g, nil
}

// GenerateCopyModel builds a graph under the linear copy model: each new
// node picks a random prototype and, for each of its OutPerNode links,
// copies the prototype's corresponding target with probability 1-beta or
// links to a uniformly random node with probability beta. The copy model
// produces power-law in-degrees with tunable exponent and strong
// topical-cluster structure [6, 19].
func GenerateCopyModel(nodes, outPerNode int, beta float64, rng *rand.Rand) (*Graph, error) {
	if nodes < 2 || outPerNode < 1 {
		return nil, fmt.Errorf("graph: invalid copy-model size nodes=%d out=%d", nodes, outPerNode)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("graph: beta must be in [0,1], got %g", beta)
	}
	g := New(nodes)
	g.AddNodes(nodes)
	// Bootstrap: a small ring so early prototypes have links to copy.
	boot := min(nodes, outPerNode+2)
	for i := 0; i < boot; i++ {
		g.AddLink(NodeID(i), NodeID((i+1)%boot))
	}
	for v := boot; v < nodes; v++ {
		id := NodeID(v)
		proto := NodeID(rng.Intn(v))
		protoOut := g.OutLinks(proto)
		for k := 0; k < outPerNode; k++ {
			var to NodeID
			if rng.Float64() < beta || len(protoOut) == 0 {
				to = NodeID(rng.Intn(v))
			} else {
				to = protoOut[rng.Intn(len(protoOut))]
			}
			g.AddLink(id, to)
		}
	}
	return g, nil
}

// GenerateUniform builds a directed Erdős–Rényi G(n, e) graph with exactly
// e distinct random edges — the null model against which the power-law
// generators are compared.
func GenerateUniform(nodes, edges int, rng *rand.Rand) (*Graph, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("graph: need >= 2 nodes, got %d", nodes)
	}
	maxEdges := nodes * (nodes - 1)
	if edges > maxEdges {
		return nil, fmt.Errorf("graph: %d edges exceeds maximum %d", edges, maxEdges)
	}
	g := New(nodes)
	g.AddNodes(nodes)
	for g.NumEdges() < edges {
		from := NodeID(rng.Intn(nodes))
		to := NodeID(rng.Intn(nodes))
		g.AddLink(from, to)
	}
	return g, nil
}

// BowTieConfig sizes the four regions of a Broder-style bow tie [6].
type BowTieConfig struct {
	Core      int // strongly connected core (SCC)
	In        int // pages that reach the core but are not reached by it
	Out       int // pages reached from the core that do not reach back
	Tendrils  int // pages hanging off IN/OUT without touching the core
	AvgDegree int // average out-degree within each region
}

// GenerateBowTie assembles a graph with the bow-tie macro structure
// observed on the real Web: a strongly connected CORE, an IN region
// linking into it, an OUT region linked from it, and TENDRILS attached to
// IN and OUT. Region membership can be recovered with BowTie (analysis.go),
// which the tests use to close the loop.
func GenerateBowTie(cfg BowTieConfig, rng *rand.Rand) (*Graph, error) {
	if cfg.Core < 2 {
		return nil, fmt.Errorf("graph: bow-tie core must have >= 2 nodes, got %d", cfg.Core)
	}
	if cfg.AvgDegree < 1 {
		cfg.AvgDegree = 3
	}
	total := cfg.Core + cfg.In + cfg.Out + cfg.Tendrils
	g := New(total)
	g.AddNodes(total)

	coreLo, coreHi := 0, cfg.Core
	inLo, inHi := coreHi, coreHi+cfg.In
	outLo, outHi := inHi, inHi+cfg.Out
	tenLo, tenHi := outHi, outHi+cfg.Tendrils

	// CORE: a directed cycle guarantees strong connectivity; extra random
	// chords give realistic density.
	for i := coreLo; i < coreHi; i++ {
		g.AddLink(NodeID(i), NodeID(coreLo+(i-coreLo+1)%cfg.Core))
	}
	for i := coreLo; i < coreHi; i++ {
		for k := 0; k < cfg.AvgDegree-1; k++ {
			g.AddLink(NodeID(i), NodeID(coreLo+rng.Intn(cfg.Core)))
		}
	}
	// IN: links into the core (and a few into other IN pages, but never
	// receiving links from core/out so the region stays upstream).
	for i := inLo; i < inHi; i++ {
		g.AddLink(NodeID(i), NodeID(coreLo+rng.Intn(cfg.Core)))
		for k := 0; k < cfg.AvgDegree-1; k++ {
			if rng.Float64() < 0.5 && i > inLo {
				g.AddLink(NodeID(i), NodeID(inLo+rng.Intn(i-inLo)))
			} else {
				g.AddLink(NodeID(i), NodeID(coreLo+rng.Intn(cfg.Core)))
			}
		}
	}
	// OUT: linked from the core; OUT pages may link among themselves but
	// never back to the core.
	for i := outLo; i < outHi; i++ {
		g.AddLink(NodeID(coreLo+rng.Intn(cfg.Core)), NodeID(i))
		if i > outLo && rng.Float64() < 0.5 {
			g.AddLink(NodeID(outLo+rng.Intn(i-outLo)), NodeID(i))
		}
	}
	// TENDRILS: half hang off IN (IN→tendril), half feed OUT
	// (tendril→OUT); neither touches the core.
	for i := tenLo; i < tenHi; i++ {
		if (i-tenLo)%2 == 0 && cfg.In > 0 {
			g.AddLink(NodeID(inLo+rng.Intn(cfg.In)), NodeID(i))
		} else if cfg.Out > 0 {
			g.AddLink(NodeID(i), NodeID(outLo+rng.Intn(cfg.Out)))
		}
	}
	return g, nil
}
