package analysis_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pagequality/internal/analysis"
)

// writeTestModule lays out a small module exercising every loader shape:
// a library package, its in-package test variant, an external _test
// package using an in-package helper, a command, and an inter-package
// import.
func writeTestModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module loadertest.example/m\n\ngo 1.22\n",
		"core/core.go": `package core

// Double is imported by pkg and by the command.
func Double(x int) int { return 2 * x }
`,
		"pkg/pkg.go": `package pkg

import "loadertest.example/m/core"

func Quad(x int) int { return core.Double(core.Double(x)) }
`,
		"pkg/pkg_test.go": `package pkg

import "testing"

// helper is an in-package test helper the external package reaches
// through the test variant.
func helper() int { return Quad(1) }

func TestQuad(t *testing.T) {
	if helper() != 4 {
		t.Fatal("quad")
	}
}
`,
		"pkg/ext_test.go": `package pkg_test

import (
	"testing"

	"loadertest.example/m/pkg"
)

func TestExternal(t *testing.T) {
	if pkg.Quad(2) != 8 {
		t.Fatal("quad")
	}
}
`,
		"cmd/run/main.go": `package main

import (
	"fmt"

	"loadertest.example/m/core"
)

func main() { fmt.Println(core.Double(21)) }
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadModuleShapes checks the package universe the loader produces:
// plain packages, test variants, external test packages, command
// detection, and clean type-checking for all of them.
func TestLoadModuleShapes(t *testing.T) {
	root := writeTestModule(t)
	pkgs, err := analysis.LoadModule(root, analysis.LoadOptions{Tests: true})
	if err != nil {
		t.Fatal(err)
	}
	type shape struct {
		path, forTest string
		isCommand     bool
		testFiles     int
	}
	var got []shape
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Errorf("%s: type errors: %v", p.Path, p.TypeErrors)
		}
		if p.Types == nil || p.Info == nil {
			t.Errorf("%s: missing type info", p.Path)
		}
		got = append(got, shape{p.Path, p.ForTest, p.IsCommand, len(p.TestGoFiles)})
	}
	want := []shape{
		{"loadertest.example/m/cmd/run", "", true, 0},
		{"loadertest.example/m/core", "", false, 0},
		{"loadertest.example/m/pkg", "", false, 0},
		{"loadertest.example/m/pkg", "loadertest.example/m/pkg", false, 1},
		{"loadertest.example/m/pkg_test", "loadertest.example/m/pkg", false, 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("package universe:\n got %+v\nwant %+v", got, want)
	}

	// Without Tests, only the three plain packages load.
	plain, err := analysis.LoadModule(root, analysis.LoadOptions{Tests: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 3 {
		t.Fatalf("Tests=false loaded %d packages, want 3", len(plain))
	}
}

// TestLoadModuleWorkerInvariance pins the tentpole determinism claim: the
// full diagnostic stream is identical at every worker count, because the
// schedule only changes wall time.
func TestLoadModuleWorkerInvariance(t *testing.T) {
	root := writeTestModule(t)
	// Make the module dirty so there is a real stream to compare.
	dirty := `package core

import "math/rand"

func Jitter() float64 { return rand.Float64() }
`
	if err := os.WriteFile(filepath.Join(root, "core", "jitter.go"), []byte(dirty), 0o644); err != nil {
		t.Fatal(err)
	}
	var base []analysis.Diagnostic
	for i, workers := range []int{1, 2, 8} {
		pkgs, err := analysis.LoadModule(root, analysis.LoadOptions{Tests: true, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		diags := analysis.RunAnalyzers(pkgs, analysis.Analyzers())
		if len(diags) == 0 {
			t.Fatalf("workers=%d: dirty module produced no diagnostics", workers)
		}
		if i == 0 {
			base = diags
			continue
		}
		if !reflect.DeepEqual(diags, base) {
			t.Fatalf("workers=%d: diagnostics differ from workers=1:\n got %v\nwant %v",
				workers, diags, base)
		}
	}
}

// TestTestVariantNoDuplicateFindings checks the variant filter: a finding
// in a package's plain files is reported once even though the test
// variant re-checks those files, while findings in _test.go files are
// reported from the variant.
func TestTestVariantNoDuplicateFindings(t *testing.T) {
	root := writeTestModule(t)
	dirty := `package pkg

func EqHere(a, b float64) bool { return a == b }
`
	dirtyTest := `package pkg

func eqInTest(a, b float64) bool { return a != b }
`
	if err := os.WriteFile(filepath.Join(root, "pkg", "dirty.go"), []byte(dirty), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "pkg", "dirty_test.go"), []byte(dirtyTest), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.LoadModule(root, analysis.LoadOptions{Tests: true})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, d := range analysis.RunAnalyzers(pkgs, analysis.Analyzers()) {
		counts[filepath.Base(d.Pos.Filename)]++
	}
	want := map[string]int{"dirty.go": 1, "dirty_test.go": 1}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("findings per file = %v, want %v", counts, want)
	}
}
