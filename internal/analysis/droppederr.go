package analysis

import (
	"go/ast"
	"go/types"
)

// DroppedErrAnalyzer flags silently discarded errors and dead blank
// assignments: `_ = f()` / `x, _ := f()` where the blanked value is an
// error, `_ = err` re-discards, and placeholder statements like `_ = v`
// that exist only to silence the compiler. Errors in this pipeline guard
// numerical preconditions (convergence, alignment, fit shape); dropping
// one turns a loud failure into a silently wrong figure.
var DroppedErrAnalyzer = &Analyzer{
	Name:     "droppederr",
	Doc:      "flag blank-discarded errors and dead `_ = x` assignments",
	Requires: []*Analyzer{InspectAnalyzer},
	Run:      runDroppedErr,
}

func runDroppedErr(pass *Pass) (any, error) {
	errType := types.Universe.Lookup("error").Type()
	pass.Inspector().Preorder([]ast.Node{(*ast.AssignStmt)(nil)}, func(n ast.Node) {
		as := n.(*ast.AssignStmt)
		checkDroppedErr(pass, as, errType)
	})
	return nil, nil
}

func checkDroppedErr(pass *Pass, as *ast.AssignStmt, errType types.Type) {
	// Multi-value form: x, _ := f() — check each blanked slot against
	// the call's result tuple.
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return // comma-ok forms (map index, type assert, recv)
		}
		tv, ok := pass.TypesInfo.Types[call]
		if !ok || tv.Type == nil {
			return
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok || tuple.Len() != len(as.Lhs) {
			return
		}
		for i, lhs := range as.Lhs {
			if !isBlank(lhs) {
				continue
			}
			if types.Identical(tuple.At(i).Type(), errType) {
				pass.Reportf(lhs.Pos(), "droppederr",
					"result %d of %s is an error discarded with _; handle it or //pqlint:allow droppederr",
					i+1, callName(call))
			}
		}
		return
	}
	// Single form: _ = <expr>.
	if len(as.Lhs) == 1 && len(as.Rhs) == 1 && isBlank(as.Lhs[0]) {
		rhs := as.Rhs[0]
		tv, ok := pass.TypesInfo.Types[rhs]
		if ok && tv.Type != nil && types.Identical(tv.Type, errType) {
			pass.Reportf(as.Pos(), "droppederr",
				"error discarded with _ = ...; handle it or //pqlint:allow droppederr")
			return
		}
		if sideEffectFree(rhs) {
			pass.Reportf(as.Pos(), "droppederr",
				"dead assignment: _ = %s has no effect; delete it", exprString(rhs))
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// sideEffectFree reports whether evaluating e cannot do anything: bare
// identifiers, selectors, literals, and index expressions thereof. A
// call (or anything containing one) may be intentional.
func sideEffectFree(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.BasicLit:
		return true
	case *ast.SelectorExpr:
		return sideEffectFree(e.X)
	case *ast.IndexExpr:
		return sideEffectFree(e.X) && sideEffectFree(e.Index)
	case *ast.ParenExpr:
		return sideEffectFree(e.X)
	case *ast.StarExpr:
		return sideEffectFree(e.X)
	}
	return false
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return "..."
}

func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return exprString(f)
	}
	return "call"
}
