package floateqcase

import "math"

// sentinelChecks compare against constants: exact IEEE 754 values that
// survive arithmetic unchanged, the sanctioned guard style.
func sentinelChecks(x float64) bool {
	if x == 0 {
		return false
	}
	if x != 1.5 {
		return true
	}
	return false
}

// tolerance is the sanctioned way to compare two computed floats.
func tolerance(a, b float64) bool {
	return math.Abs(a-b) < 1e-12
}

// intEq is not a float comparison at all.
func intEq(a, b int) bool {
	return a == b
}
