package floateqcase

// tieGroups counts groups of exactly equal scores, the legitimate
// exception class: ties are defined by exact equality.
//
//pqlint:allow floateq tie groups are exactly-equal scores by definition
func tieGroups(xs []float64) int {
	groups := 0
	for i := 0; i < len(xs); {
		j := i
		for j < len(xs) && xs[j] == xs[i] {
			j++
		}
		groups++
		i = j
	}
	return groups
}
