package floateqcase

// converged compares two computed floats exactly — a rounding-sensitive
// bug: the comparison depends on the bit pattern of each side.
func converged(prev, next float64) bool {
	return prev == next // want floateq "== between floating-point values"
}

// drifted is the negated form.
func drifted(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] { // want floateq "!= between floating-point values"
			return true
		}
	}
	return false
}
