package globalrandcase

import "math/rand"

// jitter documents a deliberate exception.
func jitter() float64 {
	//pqlint:allow globalrand deliberate: demo of a suppressed global draw
	return rand.Float64()
}
