package globalrandcase

import "math/rand"

// drawInjected is the sanctioned shape: an explicitly seeded *rand.Rand
// constructed once and threaded through.
func drawInjected(n int, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n) + int(rng.Float64())
}

// useZipf exercises the constructor whitelist and a rand type reference.
func useZipf(rng *rand.Rand) uint64 {
	var src rand.Source = rand.NewSource(7)
	_ = src.Int63()
	z := rand.NewZipf(rng, 1.1, 1, 100)
	return z.Uint64()
}
