package globalrandcase

import "math/rand"

// draw leans on the process-global generator: unseeded, shared, and
// invisible to the experiment configuration.
func draw(n int) int {
	rand.Seed(42)       // want globalrand "package-level rand.Seed"
	x := rand.Intn(n)   // want globalrand "package-level rand.Intn"
	y := rand.Float64() // want globalrand "package-level rand.Float64"
	p := rand.Perm(n)   // want globalrand "package-level rand.Perm"
	return x + int(y) + p[0]
}
