package walltimecase

import "time"

// stamp reads the ambient wall clock, so its output depends on when the
// run happened — the exact nondeterminism the rule forbids.
func stamp() time.Time {
	return time.Now() // want walltime "wall-clock time.Now in deterministic library code"
}

// throttle sleeps on the real clock, making schedules machine-dependent.
func throttle(d time.Duration) {
	time.Sleep(d) // want walltime "wall-clock time.Sleep in deterministic library code"
}

// elapsed measures with Since, a Now in disguise.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want walltime "wall-clock time.Since in deterministic library code"
}

// timeouts builds wall-clock timers and tickers.
func timeouts() {
	t := time.NewTimer(time.Second) // want walltime "wall-clock time.NewTimer in deterministic library code"
	t.Stop()
	<-time.After(time.Millisecond) // want walltime "wall-clock time.After in deterministic library code"
}
