package walltimecase

import "time"

// clocked takes its clock by injection: callers control time, tests pin
// it, and the function stays deterministic.
type clocked struct {
	now   func() time.Time
	sleep func(time.Duration)
}

// step uses the injected clock — no ambient reads, nothing to flag.
func (c *clocked) step(d time.Duration) time.Time {
	c.sleep(d)
	return c.now()
}

// construct builds times from explicit parts; time.Date and time.Unix are
// pure functions of their arguments.
func construct(sec int64) (time.Time, time.Time) {
	return time.Date(2005, time.June, 14, 0, 0, 0, 0, time.UTC), time.Unix(sec, 0)
}

// durations uses duration constants and arithmetic, which never touch the
// clock.
func durations(n int) time.Duration {
	return time.Duration(n) * time.Millisecond
}
