package walltimecase

import "time"

// defaultSleep is the production default for an injectable sleep field —
// a genuine time boundary: the one place the library touches the real
// clock, overridden to a fake in every test.
func defaultSleep(d time.Duration) {
	time.Sleep(d) //pqlint:allow walltime production default for an injected sleeper; tests replace it
}
