package detrangecase

// anyKey intentionally takes whichever key comes first; order is
// irrelevant because any element will do.
func anyKey(m map[string]int) []string {
	var got []string
	for k := range m {
		//pqlint:allow detrange any single key works; result is truncated to one element
		got = append(got, k)
		break
	}
	return got
}
