package detrangecase

import (
	"fmt"
	"io"
	"sort"
)

// collectSorted is the canonical pattern: gather keys, then sort.
func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// perKey writes once per key, so iteration order cannot matter.
func perKey(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k := range m {
		out[k] = m[k] * 2
		out[k] += 1 // per-key accumulate: one visit per key
	}
	return out
}

// intCount accumulates integers, which commute exactly.
func intCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// emitSorted iterates sorted keys before writing.
func emitSorted(w io.Writer, m map[string]int) {
	for _, k := range collectSorted(m) {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}
