package detrangecase

import (
	"fmt"
	"io"
	"strings"
)

// collectUnsorted leaks map order into a slice that is never sorted.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want detrange "append inside map iteration"
	}
	return keys
}

// sumFloats accumulates a float in map order, so the result bits differ
// run to run.
func sumFloats(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want detrange "float accumulation inside map iteration"
	}
	return total
}

// emit writes output while iterating the map.
func emit(w io.Writer, m map[string]int) {
	var sb strings.Builder
	out := ""
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want detrange "fmt.Fprintf inside map iteration"
		sb.WriteString(k)               // want detrange ".WriteString inside map iteration"
		out += k                        // want detrange "string concatenation inside map iteration"
	}
	fmt.Fprint(w, out, sb.String())
}
