package lockleakcase

import "sync"

type gauge struct {
	mu sync.Mutex
	n  int
}

// deferred is the canonical discipline: the deferred unlock covers every
// path out of the function.
func (g *gauge) deferred() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// straightLine releases on the only path, with work in between.
func (g *gauge) straightLine(d int) {
	g.mu.Lock()
	g.n += d
	g.mu.Unlock()
}

// ladder releases on every branch explicitly — the unlock ladder the
// serving cache uses to keep critical sections tight.
func (g *gauge) ladder(limit int) int {
	g.mu.Lock()
	if g.n > limit {
		g.mu.Unlock()
		return limit
	}
	v := g.n
	g.mu.Unlock()
	return v
}

// terminalBranches ends the function inside an if/else whose arms both
// release and return; there is no fallthrough left to cover.
func (g *gauge) terminalBranches(limit int) int {
	g.mu.Lock()
	if g.n > limit {
		g.mu.Unlock()
		return limit
	} else {
		v := g.n
		g.mu.Unlock()
		return v
	}
}

type shardSet struct {
	mu     sync.RWMutex
	shards map[string]int
}

// readPath pairs RLock with a deferred RUnlock.
func (s *shardSet) readPath(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.shards[k]
}
