package lockleakcase

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// leakOnReturn locks and then returns with the mutex still held: every
// later caller wedges forever.
func (c *counter) leakOnReturn() int {
	c.mu.Lock() // want lockleak "function returns before c.mu.Unlock on this path"
	return c.n
}

// leakOnBranch releases on the happy path but a branch escapes first.
func (c *counter) leakOnBranch(check func() error) error {
	c.mu.Lock() // want lockleak "a branch between this lock and its c.mu.Unlock returns without unlocking"
	if err := check(); err != nil {
		return err
	}
	c.n++
	c.mu.Unlock()
	return nil
}

// leakToBlockEnd never releases at all before the block ends.
func (c *counter) leakToBlockEnd() {
	c.mu.Lock() // want lockleak "no matching c.mu.Unlock in the rest of this block"
	c.n++
}

type table struct {
	mu sync.RWMutex
	m  map[string]int
}

// rlockLeak is the read-lock form: RLock needs RUnlock on every path.
func (t *table) rlockLeak(k string) int {
	t.mu.RLock() // want lockleak "function returns before t.mu.RUnlock on this path"
	return t.m[k]
}
