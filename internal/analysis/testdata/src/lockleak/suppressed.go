package lockleakcase

import "sync"

type handoff struct {
	mu sync.Mutex
	n  int
}

// acquireForCaller is a genuine lock handoff: the contract is that the
// caller releases, which the analyzer cannot see across the boundary.
func (h *handoff) acquireForCaller() *int {
	h.mu.Lock() //pqlint:allow lockleak lock handoff; Release() on the returned guard unlocks
	return &h.n
}
