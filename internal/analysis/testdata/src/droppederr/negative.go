package droppederrcase

import (
	"fmt"
	"io"
	"os"
	"strconv"
)

// handled deals with every error it sees.
func handled(path, s string) (int, error) {
	if err := os.Remove(path); err != nil {
		return 0, fmt.Errorf("remove: %w", err)
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// commaOK forms are not calls and carry no error.
func commaOK(m map[string]int, ch chan int) int {
	v, _ := m["k"]
	w, _ := <-ch
	return v + w
}

// interfaceAssert is the compile-time conformance idiom (a declaration,
// not an assignment statement).
var _ io.Reader = (*os.File)(nil)
