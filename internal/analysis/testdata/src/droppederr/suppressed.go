package droppederrcase

import "strings"

// flush documents an intentional discard: strings.Builder's Write
// methods are defined to never return a non-nil error.
func flush(sb *strings.Builder, s string) {
	_, _ = sb.WriteString(s) //pqlint:allow droppederr strings.Builder.WriteString never errors by contract
}
