package droppederrcase

import (
	"os"
	"strconv"
)

// ignoreErrors discards errors in the two flagged shapes.
func ignoreErrors(path, s string) int {
	_ = os.Remove(path)     // want droppederr "error discarded with _"
	n, _ := strconv.Atoi(s) // want droppederr "result 2 of strconv.Atoi is an error"
	return n
}

// deadAssign keeps a placeholder alive to silence the compiler.
func deadAssign(start int) {
	_ = start // want droppederr "dead assignment"
}
