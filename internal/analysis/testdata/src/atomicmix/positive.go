package atomicmixcase

import "sync/atomic"

type hitCounter struct {
	hits int64
}

// record is the atomic side: hits is incremented with sync/atomic.
func (h *hitCounter) record() {
	atomic.AddInt64(&h.hits, 1)
}

// snapshot mixes in a plain read of the same field — a torn read waiting
// for a 32-bit platform or an aggressive compiler.
func (h *hitCounter) snapshot() int64 {
	return h.hits // want atomicmix "hits is accessed with sync/atomic"
}

// reset mixes in a plain write, racing every concurrent AddInt64.
func (h *hitCounter) reset() {
	h.hits = 0 // want atomicmix "hits is accessed with sync/atomic"
}

var flips uint32

// flip is the package-level-variable form of the same mix.
func flip() {
	atomic.StoreUint32(&flips, 1)
}

// peek reads the same word plainly.
func peek() uint32 {
	return flips // want atomicmix "flips is accessed with sync/atomic"
}
