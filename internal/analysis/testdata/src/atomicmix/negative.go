package atomicmixcase

import "sync/atomic"

type cleanCounter struct {
	requests int64
	errors   int64
}

// observe accesses requests atomically everywhere it appears.
func (c *cleanCounter) observe(failed bool) {
	atomic.AddInt64(&c.requests, 1)
	if failed {
		atomic.AddInt64(&c.errors, 1)
	}
}

// totals reads both fields atomically too — consistent, so nothing to
// flag.
func (c *cleanCounter) totals() (int64, int64) {
	return atomic.LoadInt64(&c.requests), atomic.LoadInt64(&c.errors)
}

type plainOnly struct {
	n int
}

// bump never touches sync/atomic, so plain access is just plain access.
func (p *plainOnly) bump() int {
	p.n++
	return p.n
}
