package atomicmixcase

import "sync/atomic"

type warmCounter struct {
	warm int64
}

// serve is the concurrent side: warm is read atomically once goroutines
// exist.
func (w *warmCounter) serve() int64 {
	return atomic.LoadInt64(&w.warm)
}

// init sets the field plainly before any goroutine starts — the one
// legitimate mix, documented at the site.
func (w *warmCounter) initialize(v int64) {
	w.warm = v //pqlint:allow atomicmix single-threaded constructor runs before any goroutine starts
}
