package looproutinecase

// fireAndForget intentionally detaches its goroutines: the callback
// lifecycle is owned by the caller's runtime, documented at the site.
func fireAndForget(hooks []func()) {
	for _, h := range hooks {
		go h() //pqlint:allow looproutine hook goroutines are owned and bounded by the caller's runtime
	}
}
