package looproutinecase

// fanOut launches one goroutine per item with nothing bounding them: no
// WaitGroup, no semaphore, no result channel — under load this is an
// unbounded fork bomb.
func fanOut(items []string, process func(string)) {
	for _, it := range items {
		go process(it) // want looproutine "goroutine launched in a loop with no join"
	}
}

// retryLoop is the for-statement form of the same bug.
func retryLoop(n int, attempt func(int)) {
	for i := 0; i < n; i++ {
		go attempt(i) // want looproutine "goroutine launched in a loop with no join"
	}
}

// nested launches from a loop inside a closure whose own body has no
// join; the enclosing function literal is what the rule inspects.
func nested(items []int, f func(int)) func() {
	return func() {
		for _, it := range items {
			go f(it) // want looproutine "goroutine launched in a loop with no join"
		}
	}
}
