package looproutinecase

import "sync"

// pooled is the disciplined form: every launch is tied to the WaitGroup
// the function drains before returning.
func pooled(items []string, process func(string)) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it string) {
			defer wg.Done()
			process(it)
		}(it)
	}
	wg.Wait()
}

// drained collects one result per goroutine from a channel, which joins
// them just as surely as a WaitGroup.
func drained(items []int, f func(int) int) []int {
	ch := make(chan int, len(items))
	for _, it := range items {
		go func(it int) { ch <- f(it) }(it)
	}
	out := make([]int, 0, len(items))
	for range items {
		out = append(out, <-ch)
	}
	return out
}

// single launches one goroutine outside any loop; the rule only binds
// launches whose count scales with iteration.
func single(f func()) {
	go f()
}
