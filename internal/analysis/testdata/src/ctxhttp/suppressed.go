package ctxhttpcase

import "net/http"

// probe is a deliberate fire-and-forget health probe whose lifetime is
// bounded by the client's own timeout, documented at the site.
func probe(c *http.Client, url string) error {
	resp, err := c.Get(url) //pqlint:allow ctxhttp health probe bounded by the client timeout, not a caller context
	if err != nil {
		return err
	}
	return resp.Body.Close()
}
