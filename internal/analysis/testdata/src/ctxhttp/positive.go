package ctxhttpcase

import (
	"context"
	"io"
	"net/http"
)

// fetchNoContext builds a request that can never be cancelled: one slow
// origin pins this caller forever.
func fetchNoContext(url string) (*http.Request, error) {
	return http.NewRequest("GET", url, nil) // want ctxhttp "http.NewRequest builds an uncancellable request"
}

// convenience uses the package-level helpers, which hard-code the
// background context under the hood.
func convenience(url string) error {
	resp, err := http.Get(url) // want ctxhttp "http.Get runs with no context"
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// clientConvenience is the *http.Client method form of the same thing.
func clientConvenience(c *http.Client, url string) error {
	resp, err := c.Head(url) // want ctxhttp "Head runs with no context"
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// handler receives a request-scoped context and mints a detached one
// anyway, losing the client-disconnect signal.
func handler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want ctxhttp "context.Background inside a function that receives"
	work(ctx, w)
}

// handlerClosure shows the same detachment one closure deep: the request
// is still in scope one level up.
func handlerClosure(w io.Writer, r *http.Request) func() error {
	return func() error {
		return work(context.TODO(), w) // want ctxhttp "context.TODO inside a function that receives"
	}
}

func work(ctx context.Context, w io.Writer) error {
	_ = ctx
	_ = w
	return nil
}
