package ctxhttpcase

import (
	"context"
	"net/http"
)

// fetchWithContext is the disciplined form: the request carries its
// caller's context and dies with it.
func fetchWithContext(ctx context.Context, c *http.Client, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return nil, err
	}
	return c.Do(req)
}

// proxyHandler derives from the request's own context, so downstream work
// observes the client disconnect.
func proxyHandler(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	_, err := fetchWithContext(ctx, http.DefaultClient, "http://upstream.example/")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
	}
}

// rootContext mints context.Background outside any request scope — at a
// process entry point there is no request context to derive from.
func rootContext() context.Context {
	return context.Background()
}
