package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// GlobalRandAnalyzer forbids the package-level math/rand API in library
// code. The process-global generator is shared mutable state seeded (or
// not) far from the call site, so any use breaks the invariant that every
// stochastic component of the pipeline is driven by an explicitly seeded,
// locally owned *rand.Rand. Constructors that build injectable generators
// (rand.New, rand.NewSource, rand.NewZipf) stay legal.
var GlobalRandAnalyzer = &Analyzer{
	Name:     "globalrand",
	Doc:      "forbid package-level math/rand functions; inject a seeded *rand.Rand",
	Requires: []*Analyzer{InspectAnalyzer},
	Run:      runGlobalRand,
}

// globalRandAllowed are the math/rand package-level names that construct
// or feed injectable generators rather than touching the global one, plus
// the exported type names (types are what injection is made of).
var globalRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"Rand":       true,
	"Source":     true,
	"Source64":   true,
	"Zipf":       true,
	"PCG":        true, // math/rand/v2
	"ChaCha8":    true, // math/rand/v2
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runGlobalRand(pass *Pass) (any, error) {
	// Fallback for files whose type info is partial: the local names
	// under which math/rand is imported, per file.
	randNames := make(map[*ast.File]map[string]bool, len(pass.Files))
	for _, f := range pass.Files {
		names := map[string]bool{}
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if path != "math/rand" && path != "math/rand/v2" {
				continue
			}
			name := "rand"
			if spec.Name != nil {
				name = spec.Name.Name
			}
			if name != "_" && name != "." {
				names[name] = true
			}
		}
		randNames[f] = names
	}
	pass.Inspector().WithStack([]ast.Node{(*ast.SelectorExpr)(nil)},
		func(n ast.Node, push bool, stack []ast.Node) bool {
			if !push {
				return true
			}
			sel := n.(*ast.SelectorExpr)
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			isRandPkg := false
			if obj, ok := pass.TypesInfo.Uses[id]; ok {
				pn, ok := obj.(*types.PkgName)
				if !ok {
					return true // a value (e.g. an injected rng), not a package
				}
				p := pn.Imported().Path()
				isRandPkg = p == "math/rand" || p == "math/rand/v2"
			} else if f, ok := stack[0].(*ast.File); ok {
				isRandPkg = randNames[f][id.Name]
			}
			if !isRandPkg || globalRandAllowed[sel.Sel.Name] {
				return true
			}
			// Exempt any remaining type reference (future rand types) —
			// only functions and variables touch the global generator.
			if obj, ok := pass.TypesInfo.Uses[sel.Sel]; ok {
				if _, isType := obj.(*types.TypeName); isType {
					return true
				}
			}
			pass.Reportf(sel.Pos(), "globalrand",
				"use of package-level rand.%s; inject an explicitly seeded *rand.Rand instead",
				sel.Sel.Name)
			return true
		})
	return nil, nil
}
