package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// GlobalRandAnalyzer forbids the package-level math/rand API in library
// code. The process-global generator is shared mutable state seeded (or
// not) far from the call site, so any use breaks the invariant that every
// stochastic component of the pipeline is driven by an explicitly seeded,
// locally owned *rand.Rand. Constructors that build injectable generators
// (rand.New, rand.NewSource, rand.NewZipf) stay legal.
var GlobalRandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid package-level math/rand functions; inject a seeded *rand.Rand",
	Run:  runGlobalRand,
}

// globalRandAllowed are the math/rand package-level names that construct
// or feed injectable generators rather than touching the global one, plus
// the exported type names (types are what injection is made of).
var globalRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"Rand":       true,
	"Source":     true,
	"Source64":   true,
	"Zipf":       true,
	"PCG":        true, // math/rand/v2
	"ChaCha8":    true, // math/rand/v2
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runGlobalRand(pass *Pass) {
	for _, f := range pass.Files {
		// Fallback for files whose type info is partial: the local name
		// under which math/rand is imported.
		randNames := map[string]bool{}
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if path != "math/rand" && path != "math/rand/v2" {
				continue
			}
			name := "rand"
			if spec.Name != nil {
				name = spec.Name.Name
			}
			if name != "_" && name != "." {
				randNames[name] = true
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			isRandPkg := false
			if obj, ok := pass.TypesInfo.Uses[id]; ok {
				pn, ok := obj.(*types.PkgName)
				if !ok {
					return true // a value (e.g. an injected rng), not a package
				}
				p := pn.Imported().Path()
				isRandPkg = p == "math/rand" || p == "math/rand/v2"
			} else {
				isRandPkg = randNames[id.Name]
			}
			if !isRandPkg || globalRandAllowed[sel.Sel.Name] {
				return true
			}
			// Exempt any remaining type reference (future rand types) —
			// only functions and variables touch the global generator.
			if obj, ok := pass.TypesInfo.Uses[sel.Sel]; ok {
				if _, isType := obj.(*types.TypeName); isType {
					return true
				}
			}
			pass.Reportf(sel.Pos(), "globalrand",
				"use of package-level rand.%s; inject an explicitly seeded *rand.Rand instead",
				sel.Sel.Name)
			return true
		})
	}
}
