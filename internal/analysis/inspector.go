package analysis

import "go/ast"

// Inspector is the shared traversal engine behind every analyzer pass, in
// the spirit of x/tools/go/ast/inspector: the package's files are walked
// exactly once up front into a flat event list (a push and a pop event per
// node, each carrying a node-kind bitmask), and every rule then replays
// the list filtered by the kinds it cares about. With nine rules on one
// package this turns nine full AST walks into one walk plus nine linear
// scans of a slice — and the scans skip whole subtrees for free when a
// rule's filter cannot match inside them (not implemented here: the event
// list is small enough that a straight scan wins on this module).
//
// The Inspector is built once per package by inspectPass and shared by
// every rule through Pass.Inspector().
type Inspector struct {
	events []inspectorEvent
}

// inspectorEvent is one traversal event. A push event's index points at
// the matching pop event (always greater than the push's own position);
// a pop event's index points back at the push. This lets scans detect
// event polarity by comparing index to position and jump over subtrees.
type inspectorEvent struct {
	node  ast.Node
	mask  uint64
	index int
}

// NewInspector walks files once and records the traversal.
func NewInspector(files []*ast.File) *Inspector {
	// Preallocate roughly: most Go files average ~2 events per node and
	// the walk below appends two events per node.
	var events []inspectorEvent
	var stack []int
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n != nil {
				events = append(events, inspectorEvent{node: n, mask: maskOf(n)})
				stack = append(stack, len(events)-1)
				return true
			}
			push := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			events[push].index = len(events)
			events = append(events, inspectorEvent{
				node:  events[push].node,
				mask:  events[push].mask,
				index: push,
			})
			return true
		})
	}
	return &Inspector{events: events}
}

// Preorder calls f for every node whose type matches one of the example
// nodes in types (all nodes when types is empty), in depth-first source
// order.
func (in *Inspector) Preorder(types []ast.Node, f func(ast.Node)) {
	mask := maskOfTypes(types)
	for i := 0; i < len(in.events); i++ {
		ev := in.events[i]
		if ev.index > i && ev.mask&mask != 0 {
			f(ev.node)
		}
	}
}

// WithStack is Preorder with the enclosing-node stack (outermost first,
// ending in the matched node itself) and push/pop visibility. Returning
// false from a push visit skips the node's subtree (its pop visit still
// fires).
func (in *Inspector) WithStack(types []ast.Node, f func(n ast.Node, push bool, stack []ast.Node) bool) {
	mask := maskOfTypes(types)
	var stack []ast.Node
	for i := 0; i < len(in.events); i++ {
		ev := in.events[i]
		if ev.index > i { // push
			stack = append(stack, ev.node)
			if ev.mask&mask != 0 && !f(ev.node, true, stack) {
				// Jump to just before the pop event; the pop branch below
				// then unwinds the stack entry.
				i = ev.index - 1
			}
		} else { // pop
			if ev.mask&mask != 0 {
				f(ev.node, false, stack)
			}
			stack = stack[:len(stack)-1]
		}
	}
}

// maskOfTypes folds the kind bits of the example nodes; empty means all.
func maskOfTypes(types []ast.Node) uint64 {
	if len(types) == 0 {
		return ^uint64(0)
	}
	var mask uint64
	for _, n := range types {
		mask |= maskOf(n)
	}
	return mask
}

// maskOf assigns each AST node kind a bit. Kinds not enumerated (rare
// ones like Bad* nodes) share the catch-all bit 63, which only ever
// over-matches — a filter scan then rejects by the callback's own type
// switch, never under-matches.
func maskOf(n ast.Node) uint64 {
	switch n.(type) {
	case *ast.ArrayType:
		return 1 << 0
	case *ast.AssignStmt:
		return 1 << 1
	case *ast.BasicLit:
		return 1 << 2
	case *ast.BinaryExpr:
		return 1 << 3
	case *ast.BlockStmt:
		return 1 << 4
	case *ast.BranchStmt:
		return 1 << 5
	case *ast.CallExpr:
		return 1 << 6
	case *ast.CaseClause:
		return 1 << 7
	case *ast.ChanType:
		return 1 << 8
	case *ast.CommClause:
		return 1 << 9
	case *ast.CompositeLit:
		return 1 << 10
	case *ast.DeclStmt:
		return 1 << 11
	case *ast.DeferStmt:
		return 1 << 12
	case *ast.Ellipsis:
		return 1 << 13
	case *ast.EmptyStmt:
		return 1 << 14
	case *ast.ExprStmt:
		return 1 << 15
	case *ast.Field:
		return 1 << 16
	case *ast.FieldList:
		return 1 << 17
	case *ast.File:
		return 1 << 18
	case *ast.ForStmt:
		return 1 << 19
	case *ast.FuncDecl:
		return 1 << 20
	case *ast.FuncLit:
		return 1 << 21
	case *ast.FuncType:
		return 1 << 22
	case *ast.GenDecl:
		return 1 << 23
	case *ast.GoStmt:
		return 1 << 24
	case *ast.Ident:
		return 1 << 25
	case *ast.IfStmt:
		return 1 << 26
	case *ast.ImportSpec:
		return 1 << 27
	case *ast.IncDecStmt:
		return 1 << 28
	case *ast.IndexExpr:
		return 1 << 29
	case *ast.IndexListExpr:
		return 1 << 30
	case *ast.InterfaceType:
		return 1 << 31
	case *ast.KeyValueExpr:
		return 1 << 32
	case *ast.LabeledStmt:
		return 1 << 33
	case *ast.MapType:
		return 1 << 34
	case *ast.ParenExpr:
		return 1 << 35
	case *ast.RangeStmt:
		return 1 << 36
	case *ast.ReturnStmt:
		return 1 << 37
	case *ast.SelectStmt:
		return 1 << 38
	case *ast.SelectorExpr:
		return 1 << 39
	case *ast.SendStmt:
		return 1 << 40
	case *ast.SliceExpr:
		return 1 << 41
	case *ast.StarExpr:
		return 1 << 42
	case *ast.StructType:
		return 1 << 43
	case *ast.SwitchStmt:
		return 1 << 44
	case *ast.TypeAssertExpr:
		return 1 << 45
	case *ast.TypeSpec:
		return 1 << 46
	case *ast.TypeSwitchStmt:
		return 1 << 47
	case *ast.UnaryExpr:
		return 1 << 48
	case *ast.ValueSpec:
		return 1 << 49
	case *ast.CommentGroup, *ast.Comment:
		return 1 << 50
	}
	return 1 << 63
}
