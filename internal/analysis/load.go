package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked module package ready for
// analysis. Type checking is best-effort: TypeErrors collects anything
// the checker complained about (e.g. an import that could not be
// resolved) without aborting the load, because the analyzers degrade
// gracefully on partial type information.
type Package struct {
	Path       string // import path
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// chainImporter resolves module-local imports from the packages already
// checked in this load and everything else (the stdlib — the module has
// no external dependencies) from source. Unresolvable imports yield an
// empty placeholder package instead of failing the whole load.
type chainImporter struct {
	modulePath string
	local      map[string]*types.Package
	std        types.Importer
	failed     map[string]*types.Package
}

func (im *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.local[path]; ok {
		return p, nil
	}
	if p, ok := im.failed[path]; ok {
		return p, nil
	}
	p, err := im.std.Import(path)
	if err != nil || p == nil {
		name := path
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		fake := types.NewPackage(path, name)
		fake.MarkComplete()
		im.failed[path] = fake
		return fake, nil
	}
	return p, nil
}

// newStdImporter builds the source importer used for stdlib packages.
// CGO is forced off first so packages like net type-check from their
// pure-Go fallback files instead of invoking a C toolchain.
func newStdImporter(fset *token.FileSet) types.Importer {
	build.Default.CgoEnabled = false
	return importer.ForCompiler(fset, "source", nil)
}

// ModulePath reads the module path from the go.mod at root.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
}

// LoadModule parses and type-checks every non-test package under root
// (the module root), skipping testdata and hidden directories. Packages
// come back in dependency (topological) order.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	root, err = filepath.Abs(root)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}

	// Discover directories holding non-test Go files.
	type rawPkg struct {
		path  string
		dir   string
		files []string
	}
	var raws []rawPkg
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		var files []string
		for _, e := range ents {
			n := e.Name()
			if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
				continue
			}
			files = append(files, filepath.Join(path, n))
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + filepath.ToSlash(rel)
		}
		raws = append(raws, rawPkg{path: imp, dir: path, files: files})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walk %s: %w", root, err)
	}
	sort.Slice(raws, func(i, j int) bool { return raws[i].path < raws[j].path })

	// Parse everything into one FileSet so positions and the stdlib
	// importer agree.
	fset := token.NewFileSet()
	parsed := make(map[string][]*ast.File, len(raws))
	imports := make(map[string][]string, len(raws))
	index := make(map[string]rawPkg, len(raws))
	for _, rp := range raws {
		index[rp.path] = rp
		for _, fname := range rp.files {
			f, err := parser.ParseFile(fset, fname, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			parsed[rp.path] = append(parsed[rp.path], f)
			for _, spec := range f.Imports {
				ip := strings.Trim(spec.Path.Value, `"`)
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					imports[rp.path] = append(imports[rp.path], ip)
				}
			}
		}
	}

	// Topologically order by intra-module imports.
	order, err := topoSort(parsed, imports)
	if err != nil {
		return nil, err
	}

	im := &chainImporter{
		modulePath: modPath,
		local:      make(map[string]*types.Package),
		std:        newStdImporter(fset),
		failed:     make(map[string]*types.Package),
	}
	var pkgs []*Package
	for _, path := range order {
		pkg := checkPackage(fset, path, parsed[path], im)
		pkg.Dir = index[path].dir
		im.local[path] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the
// given import path, resolving stdlib imports from source. Used by the
// analyzer test harness on testdata packages.
func LoadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	im := &chainImporter{
		local:  make(map[string]*types.Package),
		std:    newStdImporter(fset),
		failed: make(map[string]*types.Package),
	}
	pkg := checkPackage(fset, importPath, files, im)
	pkg.Dir = dir
	return pkg, nil
}

func checkPackage(fset *token.FileSet, path string, files []*ast.File, im types.Importer) *Package {
	pkg := &Package{
		Path:  path,
		Fset:  fset,
		Files: files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{
		Importer: im,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check never returns a useful error beyond what Error collected,
	// and a partially checked package is still analyzable.
	tp, _ := conf.Check(path, fset, files, pkg.Info) //pqlint:allow droppederr the same error is collected via conf.Error into pkg.TypeErrors
	pkg.Types = tp
	return pkg
}

// topoSort orders packages so every intra-module import precedes its
// importer.
func topoSort(parsed map[string][]*ast.File, imports map[string][]string) ([]string, error) {
	paths := make([]string, 0, len(parsed))
	for p := range parsed {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := make(map[string]int, len(paths))
	var order []string
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("analysis: import cycle through %s", p)
		}
		state[p] = grey
		deps := append([]string(nil), imports[p]...)
		sort.Strings(deps)
		for _, d := range deps {
			if _, ok := parsed[d]; !ok {
				continue
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[p] = black
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}
