package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// A Package is one parsed and type-checked module package ready for
// analysis. Type checking is best-effort: TypeErrors collects anything
// the checker complained about (e.g. an import that could not be
// resolved) without aborting the load, because the analyzers degrade
// gracefully on partial type information.
type Package struct {
	Path string // import path ("path_test" for external test packages)
	Dir  string
	// ForTest is the import path of the package under test when this
	// package is a test variant (the package's own files plus its
	// in-package _test.go files) or an external _test package; "" for a
	// plain package. Analyzers report only _test.go findings from test
	// variants — the plain files were already covered by the plain
	// package.
	ForTest string
	// TestGoFiles marks the absolute filenames of this package's
	// _test.go files.
	TestGoFiles map[string]bool
	// IsCommand is true for package main and its test variants.
	IsCommand  bool
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// LoadOptions configures LoadModule.
type LoadOptions struct {
	// Tests includes _test.go files: every package with in-package test
	// files gains a test variant, and external _test packages are loaded
	// as their own packages.
	Tests bool
	// Workers bounds the number of concurrent type-check workers;
	// <= 0 means GOMAXPROCS. Results are identical at every worker
	// count — the schedule only changes wall time.
	Workers int
}

// ModulePath reads the module path from the go.mod at root.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
}

// loadNode is one package (module or stdlib) in the load graph.
type loadNode struct {
	id      string // unique node id (import path, suffixed for variants)
	path    string // the types.Package path
	dir     string
	std     bool
	files   []string    // absolute source filenames (stdlib: parsed lazily)
	syntax  []*ast.File // module files, parsed up front
	resolve map[string]*loadNode

	deps       []*loadNode
	dependents []*loadNode
	npending   int

	forTest   string
	testFiles map[string]bool
	isCommand bool

	tpkg *types.Package
	info *types.Info
	errs []error
}

// loader carries the whole load: the shared FileSet, the node universe,
// and the pre-frozen placeholder packages for unresolvable imports.
// Everything here is built serially; the parallel phase only reads it
// (and writes each node's own result fields, which dependents observe
// only after the scheduler's happens-before edge).
type loader struct {
	fset  *token.FileSet
	bctx  build.Context
	nodes []*loadNode
	// stdByDir dedupes stdlib packages by resolved directory — the one
	// canonical spelling of each package even through GOROOT vendoring.
	stdByDir map[string]*loadNode
	// fakes holds an empty placeholder package per unresolvable import
	// path, so analyzers degrade gracefully instead of the load dying.
	fakes map[string]*types.Package
}

// fakeFor returns (creating if needed) the placeholder for an import
// path that could not be resolved. Serial-phase only.
func (ld *loader) fakeFor(path string) *types.Package {
	if p, ok := ld.fakes[path]; ok {
		return p
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	ld.fakes[path] = p
	return p
}

// resolveStd resolves one stdlib import as seen from srcDir (srcDir makes
// GOROOT vendoring work: net/http's golang.org/x/net deps live under
// GOROOT/src/vendor and only resolve relative to an importer inside
// GOROOT). New packages join the BFS frontier. Serial-phase only.
func (ld *loader) resolveStd(path, srcDir string, frontier *[]*loadNode) *loadNode {
	bp, err := ld.bctx.Import(path, srcDir, 0)
	if err != nil {
		return nil
	}
	if n, ok := ld.stdByDir[bp.Dir]; ok {
		return n
	}
	n := &loadNode{
		id:      "std:" + bp.Dir,
		path:    bp.ImportPath,
		dir:     bp.Dir,
		std:     true,
		resolve: make(map[string]*loadNode, len(bp.Imports)),
	}
	for _, f := range bp.GoFiles {
		n.files = append(n.files, filepath.Join(bp.Dir, f))
	}
	ld.stdByDir[bp.Dir] = n
	ld.nodes = append(ld.nodes, n)
	*frontier = append(*frontier, n)
	// Record the imports now; edges are resolved when the frontier is
	// drained so recursion depth stays flat.
	for _, imp := range bp.Imports {
		n.resolve[imp] = nil // filled by expandStd
	}
	return n
}

// expandStd drains the stdlib BFS frontier, resolving each discovered
// package's own imports (which may grow the frontier further).
func (ld *loader) expandStd(frontier *[]*loadNode) {
	for len(*frontier) > 0 {
		n := (*frontier)[0]
		*frontier = (*frontier)[1:]
		imps := make([]string, 0, len(n.resolve))
		for imp := range n.resolve {
			imps = append(imps, imp)
		}
		sort.Strings(imps)
		for _, imp := range imps {
			if imp == "unsafe" || imp == "C" {
				continue
			}
			n.resolve[imp] = ld.resolveStd(imp, n.dir, frontier)
		}
	}
}

// sortedDeps lists a node's resolved dependencies in import-path order,
// so the dependency graph (and with it every schedule tie-break) is
// deterministic.
func sortedDeps(n *loadNode) []*loadNode {
	paths := make([]string, 0, len(n.resolve))
	for p := range n.resolve {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	deps := make([]*loadNode, 0, len(paths))
	for _, p := range paths {
		if d := n.resolve[p]; d != nil {
			deps = append(deps, d)
		}
	}
	return deps
}

// nodeImporter resolves imports for one node's type check from the
// pre-resolved map. All referenced packages are complete before the node
// is scheduled, so this is read-only at check time.
type nodeImporter struct {
	ld   *loader
	node *loadNode
}

func (im nodeImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dep, ok := im.node.resolve[path]; ok && dep != nil && dep.tpkg != nil {
		return dep.tpkg, nil
	}
	if p, ok := im.ld.fakes[path]; ok {
		return p, nil
	}
	// Unreachable for resolvable imports; keep the checker going.
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	return p, nil
}

// check type-checks one node. Stdlib packages are parsed here (inside the
// worker, so parsing parallelizes too) and checked with IgnoreFuncBodies:
// importers only need their exported API, and skipping every stdlib
// function body is the single largest saving over the old
// srcimporter-based loader. Module packages get a full check with
// complete type info for the analyzers.
func (ld *loader) check(n *loadNode) {
	files := n.syntax
	if n.std {
		for _, fname := range n.files {
			f, err := parser.ParseFile(ld.fset, fname, nil, parser.SkipObjectResolution)
			if err != nil {
				n.errs = append(n.errs, err)
				continue
			}
			files = append(files, f)
		}
	}
	conf := types.Config{
		Importer:         nodeImporter{ld: ld, node: n},
		FakeImportC:      true,
		IgnoreFuncBodies: n.std,
		Error:            func(err error) { n.errs = append(n.errs, err) },
	}
	if !n.std {
		n.info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
	}
	// Check never returns a useful error beyond what Error collected,
	// and a partially checked package is still analyzable.
	tp, _ := conf.Check(n.path, ld.fset, files, n.info) //pqlint:allow droppederr the same error is collected via conf.Error into n.errs
	if tp == nil {
		tp = ld.fakeFor(n.path)
	}
	n.tpkg = tp
	n.syntax = files
}

// run executes the load graph on a worker pool in topological waves:
// a node becomes ready when its last dependency completes, workers pull
// ready nodes from a queue, and finishing a node may release its
// dependents. The queue is buffered to the node count so completions
// never block.
func (ld *loader) run(workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for _, n := range ld.nodes {
		seen := make(map[*loadNode]bool)
		for _, d := range n.deps {
			if d == nil || d == n || seen[d] {
				continue
			}
			seen[d] = true
			n.npending++
			d.dependents = append(d.dependents, n)
		}
	}
	queue := make(chan *loadNode, len(ld.nodes))
	ready := 0
	for _, n := range ld.nodes {
		if n.npending == 0 {
			queue <- n
			ready++
		}
	}
	if ready == 0 && len(ld.nodes) > 0 {
		return fmt.Errorf("analysis: import cycle: no ready packages among %d", len(ld.nodes))
	}

	var mu sync.Mutex
	done := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := range queue {
				ld.check(n)
				mu.Lock()
				done++
				for _, dep := range n.dependents {
					dep.npending--
					if dep.npending == 0 {
						queue <- dep
					}
				}
				if done == len(ld.nodes) {
					close(queue)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if done != len(ld.nodes) {
		return fmt.Errorf("analysis: import cycle: %d of %d packages checked", done, len(ld.nodes))
	}
	return nil
}

// moduleDir is one module directory's classified source files.
type moduleDir struct {
	importPath string
	dir        string
	goFiles    []string
	testFiles  []string // in-package _test.go
	xtestFiles []string // external package_test _test.go
}

// discoverModule walks the module tree, classifying each directory's Go
// files. Test files are classified by their package clause: a package
// name ending in _test is an external test package.
func discoverModule(root, modPath string, fset *token.FileSet, tests bool) ([]*moduleDir, map[string][]*ast.File, error) {
	var dirs []*moduleDir
	parsed := make(map[string][]*ast.File) // absolute filename is the key's prefix-free id
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		md := &moduleDir{dir: path}
		for _, e := range ents {
			n := e.Name()
			if e.IsDir() || !strings.HasSuffix(n, ".go") {
				continue
			}
			isTest := strings.HasSuffix(n, "_test.go")
			if isTest && !tests {
				continue
			}
			fname := filepath.Join(path, n)
			f, perr := parser.ParseFile(fset, fname, nil, parser.ParseComments|parser.SkipObjectResolution)
			if perr != nil {
				return fmt.Errorf("analysis: %w", perr)
			}
			parsed[fname] = append(parsed[fname], f)
			switch {
			case !isTest:
				md.goFiles = append(md.goFiles, fname)
			case strings.HasSuffix(f.Name.Name, "_test"):
				md.xtestFiles = append(md.xtestFiles, fname)
			default:
				md.testFiles = append(md.testFiles, fname)
			}
		}
		if len(md.goFiles)+len(md.testFiles)+len(md.xtestFiles) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		md.importPath = modPath
		if rel != "." {
			md.importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		dirs = append(dirs, md)
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: walk %s: %w", root, err)
	}
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].importPath < dirs[j].importPath })
	return dirs, parsed, nil
}

// LoadModule parses and type-checks every package under root (the module
// root), skipping testdata and hidden directories. With opts.Tests, each
// package's _test.go files are loaded too: in-package test files form a
// test variant of the package, and package foo_test files form their own
// external test package importing the variant. Package type checks run
// in parallel topological waves on opts.Workers workers; results are
// bitwise identical at every worker count. Packages come back sorted by
// import path (plain before test variant before external test package).
func LoadModule(root string, opts LoadOptions) ([]*Package, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	root, err = filepath.Abs(root)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}

	ld := &loader{
		fset:     token.NewFileSet(),
		bctx:     build.Default,
		stdByDir: make(map[string]*loadNode),
		fakes:    make(map[string]*types.Package),
	}
	// CGO off: stdlib packages type-check from their pure-Go fallback
	// files instead of needing a C toolchain. Context copy — the global
	// build.Default is left alone.
	ld.bctx.CgoEnabled = false

	dirs, parsedByFile, err := discoverModule(root, modPath, ld.fset, opts.Tests)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("analysis: no Go packages under %s", root)
	}

	fileSyntax := func(fname string) *ast.File { return parsedByFile[fname][0] }
	isModuleLocal := func(p string) bool {
		return p == modPath || strings.HasPrefix(p, modPath+"/")
	}

	// Module nodes: plain package, test variant, external test package.
	plain := make(map[string]*loadNode)
	type modNode struct {
		node *loadNode
		md   *moduleDir
		kind int // 0 plain, 1 test variant, 2 external test
	}
	var modNodes []modNode
	addNode := func(md *moduleDir, kind int) *loadNode {
		n := &loadNode{dir: md.dir, resolve: make(map[string]*loadNode)}
		var files []string
		switch kind {
		case 0:
			n.id = md.importPath
			n.path = md.importPath
			files = md.goFiles
		case 1:
			n.id = md.importPath + " [tests]"
			n.path = md.importPath
			n.forTest = md.importPath
			files = append(append([]string{}, md.goFiles...), md.testFiles...)
		case 2:
			n.id = md.importPath + "_test [tests]"
			n.path = md.importPath + "_test"
			n.forTest = md.importPath
			files = md.xtestFiles
		}
		n.files = files
		n.testFiles = make(map[string]bool)
		for _, f := range files {
			n.syntax = append(n.syntax, fileSyntax(f))
			if strings.HasSuffix(f, "_test.go") {
				n.testFiles[f] = true
			}
		}
		for _, f := range n.syntax {
			if f.Name.Name == "main" {
				n.isCommand = true
			}
		}
		ld.nodes = append(ld.nodes, n)
		modNodes = append(modNodes, modNode{node: n, md: md, kind: kind})
		return n
	}
	for _, md := range dirs {
		if len(md.goFiles) > 0 {
			plain[md.importPath] = addNode(md, 0)
		}
		if opts.Tests && len(md.testFiles) > 0 {
			addNode(md, 1)
		}
		if opts.Tests && len(md.xtestFiles) > 0 {
			addNode(md, 2)
		}
	}
	// External tests of a main package are still command territory.
	for _, mn := range modNodes {
		if mn.kind == 2 {
			if base := plain[mn.md.importPath]; base != nil && base.isCommand {
				mn.node.isCommand = true
			}
		}
	}

	// Resolve every import: module-local to module nodes, the rest into
	// the stdlib BFS. All serial; the parallel phase only reads it.
	var frontier []*loadNode
	for _, mn := range modNodes {
		n := mn.node
		seen := make(map[string]bool)
		for _, f := range n.syntax {
			for _, spec := range f.Imports {
				ip := strings.Trim(spec.Path.Value, `"`)
				if seen[ip] || ip == "unsafe" || ip == "C" {
					continue
				}
				seen[ip] = true
				if isModuleLocal(ip) {
					if dep := plain[ip]; dep != nil {
						n.resolve[ip] = dep
					} else {
						n.resolve[ip] = nil // unresolvable: placeholder at check time
						ld.fakeFor(ip)
					}
					continue
				}
				dep := ld.resolveStd(ip, n.dir, &frontier)
				n.resolve[ip] = dep
				if dep == nil {
					ld.fakeFor(ip)
				}
			}
		}
	}
	ld.expandStd(&frontier)
	for _, n := range ld.nodes {
		if n.std {
			for imp, dep := range n.resolve {
				if dep == nil && imp != "unsafe" && imp != "C" {
					ld.fakeFor(imp)
				}
			}
		}
	}

	// A test variant supersedes its plain package for the external test
	// package's import (external tests may use in-package test helpers),
	// and is serialized after the plain package — the two share *ast.File
	// values, and go/types must not check the same file concurrently.
	variants := make(map[string]*loadNode)
	for _, mn := range modNodes {
		if mn.kind == 1 {
			variants[mn.md.importPath] = mn.node
		}
	}
	for _, mn := range modNodes {
		n := mn.node
		switch mn.kind {
		case 1:
			if base := plain[mn.md.importPath]; base != nil {
				n.deps = append(n.deps, base)
			}
		case 2:
			if v := variants[mn.md.importPath]; v != nil {
				n.resolve[mn.md.importPath] = v
			}
		}
		n.deps = append(n.deps, sortedDeps(n)...)
	}
	for _, n := range ld.nodes {
		if n.std {
			n.deps = append(n.deps, sortedDeps(n)...)
		}
	}

	if err := ld.run(opts.Workers); err != nil {
		return nil, err
	}

	// Package results, sorted by (path, plain < variant < external).
	sort.SliceStable(modNodes, func(i, j int) bool {
		a, b := modNodes[i], modNodes[j]
		if a.md.importPath != b.md.importPath {
			return a.md.importPath < b.md.importPath
		}
		return a.kind < b.kind
	})
	var pkgs []*Package
	for _, mn := range modNodes {
		n := mn.node
		pkgs = append(pkgs, &Package{
			Path:        n.path,
			Dir:         n.dir,
			ForTest:     n.forTest,
			TestGoFiles: n.testFiles,
			IsCommand:   n.isCommand,
			Fset:        ld.fset,
			Files:       n.syntax,
			Types:       n.tpkg,
			Info:        n.info,
			TypeErrors:  n.errs,
		})
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the
// given import path, resolving its imports through the same loader
// machinery. Used by the analyzer test harness on testdata packages.
func LoadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	ld := &loader{
		fset:     token.NewFileSet(),
		bctx:     build.Default,
		stdByDir: make(map[string]*loadNode),
		fakes:    make(map[string]*types.Package),
	}
	ld.bctx.CgoEnabled = false

	n := &loadNode{id: importPath, path: importPath, dir: dir, resolve: make(map[string]*loadNode)}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		fname := filepath.Join(dir, name)
		f, err := parser.ParseFile(ld.fset, fname, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		n.files = append(n.files, fname)
		n.syntax = append(n.syntax, f)
		if f.Name.Name == "main" {
			n.isCommand = true
		}
	}
	if len(n.syntax) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	ld.nodes = append(ld.nodes, n)
	var frontier []*loadNode
	seen := make(map[string]bool)
	for _, f := range n.syntax {
		for _, spec := range f.Imports {
			ip := strings.Trim(spec.Path.Value, `"`)
			if seen[ip] || ip == "unsafe" || ip == "C" {
				continue
			}
			seen[ip] = true
			dep := ld.resolveStd(ip, n.dir, &frontier)
			n.resolve[ip] = dep
			if dep == nil {
				ld.fakeFor(ip)
			}
		}
	}
	ld.expandStd(&frontier)
	for _, nd := range ld.nodes {
		nd.deps = append(nd.deps, sortedDeps(nd)...)
	}
	if err := ld.run(0); err != nil {
		return nil, err
	}
	return &Package{
		Path:        n.path,
		Dir:         n.dir,
		TestGoFiles: map[string]bool{},
		IsCommand:   n.isCommand,
		Fset:        ld.fset,
		Files:       n.syntax,
		Types:       n.tpkg,
		Info:        n.info,
		TypeErrors:  n.errs,
	}, nil
}
