package analysis

import (
	"go/ast"
	"go/types"
)

// LockLeakAnalyzer flags sync.Mutex/RWMutex Lock (and RLock) calls that
// are not provably released on the paths the analyzer can see: the
// statement after the Lock is neither a matching deferred Unlock nor the
// start of a straight-line path ending in a matching Unlock, or a branch
// between Lock and Unlock returns without unlocking. A leaked lock in
// the serving path is a one-request outage that -race cannot catch (no
// data race, just a wedged shard), so the discipline is mechanical:
// defer the Unlock, or unlock explicitly on every path. Lock handoffs
// that genuinely cross function boundaries document themselves with
// //pqlint:allow lockleak.
//
// The check is intra-block: a Lock whose matching Unlock lives in a
// nested statement is accepted as long as no return escapes first, so
// the common `if ... { mu.Unlock(); return }` ladder passes, while a
// bare `if err != nil { return err }` between Lock and Unlock is caught.
var LockLeakAnalyzer = &Analyzer{
	Name:     "lockleak",
	Doc:      "flag mutex Lock without a deferred or path-covering Unlock",
	Requires: []*Analyzer{InspectAnalyzer},
	Run:      runLockLeak,
}

// lockPairs maps acquire method names to their release.
var lockPairs = map[string]string{
	"Lock":  "Unlock",
	"RLock": "RUnlock",
}

func runLockLeak(pass *Pass) (any, error) {
	pass.Inspector().Preorder([]ast.Node{(*ast.BlockStmt)(nil)}, func(n ast.Node) {
		block := n.(*ast.BlockStmt)
		for i, st := range block.List {
			es, ok := st.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			recv, unlock, ok := mutexAcquire(pass, call)
			if !ok {
				continue
			}
			checkLockPath(pass, call, block.List[i+1:], recv, unlock)
		}
	})
	return nil, nil
}

// mutexAcquire reports whether call is recv.Lock() or recv.RLock() on a
// sync.Mutex or sync.RWMutex (directly or embedded), returning the
// textual receiver and the matching release method name.
func mutexAcquire(pass *Pass, call *ast.CallExpr) (recv, unlock string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	release, isAcquire := lockPairs[sel.Sel.Name]
	if !isAcquire {
		return "", "", false
	}
	obj, isUse := pass.TypesInfo.Uses[sel.Sel]
	if !isUse || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return "", "", false
	}
	r := recvString(sel.X)
	if r == "" {
		return "", "", false
	}
	return r, release, true
}

// isRelease reports whether call is recv.unlock() for the exact receiver
// text.
func isRelease(call *ast.CallExpr, recv, unlock string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != unlock {
		return false
	}
	return recvString(sel.X) == recv
}

// checkLockPath scans the statements following a Lock within the same
// block and reports when a path escapes without the matching release.
// The scan is deliberately conservative about nesting: a nested release
// that cannot return (e.g. `if cond { mu.Unlock() }`) ends the scan
// without a finding, trading missed conditional leaks for zero noise on
// the codebase's legitimate unlock ladders.
func checkLockPath(pass *Pass, lock *ast.CallExpr, rest []ast.Stmt, recv, unlock string) {
	acquire := lock.Fun.(*ast.SelectorExpr).Sel.Name
	lastReleased := false
	for _, st := range rest {
		switch st := st.(type) {
		case *ast.DeferStmt:
			if isRelease(st.Call, recv, unlock) {
				return // covers every later path
			}
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok && isRelease(call, recv, unlock) {
				return // straight-line release
			}
		case *ast.ReturnStmt:
			pass.Reportf(lock.Pos(), "lockleak",
				"%s.%s: function returns before %s.%s on this path; defer the unlock or release on every return",
				recv, acquire, recv, unlock)
			return
		}
		releases := containsRelease(st, recv, unlock)
		escapes := stmtEscapes(st)
		switch {
		case escapes && !releases:
			pass.Reportf(lock.Pos(), "lockleak",
				"%s.%s: a branch between this lock and its %s.%s returns without unlocking",
				recv, acquire, recv, unlock)
			return
		case releases && !escapes:
			// A nested, possibly conditional release with no way to
			// return early: accept.
			return
		}
		// releases && escapes: an `if ... { unlock; return }` arm —
		// the fallthrough path still needs its own release, keep going.
		lastReleased = releases
	}
	if lastReleased {
		// The block ends in a branch statement (if/else, switch) whose
		// arms release and return; there is no fallthrough to cover.
		return
	}
	pass.Reportf(lock.Pos(), "lockleak",
		"%s.%s: no matching %s.%s in the rest of this block; defer the unlock or release before the block ends",
		recv, acquire, recv, unlock)
}

// containsRelease reports whether the statement's subtree calls
// recv.unlock() anywhere (directly, deferred, or in a nested branch).
func containsRelease(st ast.Stmt, recv, unlock string) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isRelease(call, recv, unlock) {
			found = true
		}
		return !found
	})
	return found
}

// stmtEscapes reports whether the statement's subtree can leave the
// enclosing function: a return, or a goto out of the block. Function
// literals inside the statement are opaque — their returns do not leave
// the caller — so the walk does not descend into them.
func stmtEscapes(st ast.Stmt) bool {
	escapes := false
	ast.Inspect(st, func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			escapes = true
		case *ast.BranchStmt:
			if n.Tok.String() == "goto" {
				escapes = true
			}
		}
		return !escapes
	})
	return escapes
}

// recvString renders the receiver expression of a lock call textually,
// which is how two calls are judged to target the same mutex. Index
// expressions render their index too, so s.shards[i].mu and
// s.shards[j].mu stay distinct.
func recvString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		x := recvString(e.X)
		if x == "" {
			return ""
		}
		return x + "." + e.Sel.Name
	case *ast.IndexExpr:
		x := recvString(e.X)
		idx := recvString(e.Index)
		if x == "" {
			return ""
		}
		if idx == "" {
			idx = "?"
		}
		return x + "[" + idx + "]"
	case *ast.ParenExpr:
		return recvString(e.X)
	case *ast.StarExpr:
		x := recvString(e.X)
		if x == "" {
			return ""
		}
		return "*" + x
	case *ast.BasicLit:
		return e.Value
	}
	return ""
}
