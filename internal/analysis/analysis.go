// Package analysis is a stdlib-only, pass-based static-analysis framework
// enforcing the repo's determinism and concurrency invariants. The paper's
// Q(p) estimator is only trustworthy while every run is reproducible, and
// the serving/crawl stack is only scalable while its concurrency is
// mechanically disciplined; the rule suite locks both in:
//
// Determinism rules (PR 2): no package-level math/rand in library code
// (globalrand), no map-iteration order leaking into ordered or
// float-accumulated output (detrange), no bare float equality outside
// documented tie handling (floateq), no silently discarded errors
// (droppederr).
//
// Concurrency and wall-clock rules (PR 7): no wall-clock reads in
// deterministic library code — injectable clocks only (walltime), no
// unbounded goroutine launches in loops (looproutine), no mutex Lock
// without an Unlock on every path (lockleak), no mixing sync/atomic and
// plain access to the same field (atomicmix), and no context-less HTTP
// request construction (ctxhttp).
//
// Architecture (in the spirit of x/tools/go/analysis): each package is
// traversed once into a shared Inspector (see inspector.go); analyzers
// are registered passes that declare what they Require and return a
// result ("fact") that dependent passes read through Pass.ResultOf.
// Findings from every pass are merged and sorted deterministically, so
// pqlint output is bitwise stable at any loader worker count.
//
// Intentional exceptions are suppressed in source with a directive:
//
//	//pqlint:allow <rule> <reason>
//
// placed on the flagged line, on the line immediately above it, or in the
// doc comment of the enclosing top-level declaration (which suppresses the
// rule for the whole declaration). The reason is mandatory, and a
// directive that suppresses nothing is itself reported as stale — allows
// must die with the code they excused.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Diagnostic is one finding from one analyzer, positioned in the
// original source.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
	// Suppressed is true when a //pqlint:allow directive covers the
	// finding; Reason carries the directive's justification.
	Suppressed bool
	Reason     string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Rule, d.Message)
}

// A Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// IsCommand is true for package main and its test variants. Rules
	// that only bind library code (walltime) consult it: commands own
	// the process boundary, where wall-clock timing on stderr is the
	// documented idiom.
	IsCommand bool

	// ResultOf holds the results ("facts") of every pass this analyzer
	// Requires, keyed by the required analyzer.
	ResultOf map[*Analyzer]any

	report func(token.Pos, string, string)
}

// Reportf records a diagnostic for rule at pos.
func (p *Pass) Reportf(pos token.Pos, rule, format string, args ...any) {
	p.report(pos, rule, fmt.Sprintf(format, args...))
}

// Inspector returns the shared traversal built by InspectAnalyzer, which
// every rule Requires.
func (p *Pass) Inspector() *Inspector {
	ins, _ := p.ResultOf[InspectAnalyzer].(*Inspector)
	return ins
}

// An Analyzer is one named pass: a rule, or an internal fact producer
// like InspectAnalyzer.
type Analyzer struct {
	Name string
	Doc  string
	// Requires lists passes that must run first on the same package;
	// their results are available through Pass.ResultOf.
	Requires []*Analyzer
	// Run executes the pass and returns its result (nil is fine for
	// rules that only report diagnostics).
	Run func(*Pass) (any, error)
}

// InspectAnalyzer is the internal pass producing the package's shared
// *Inspector. Every rule Requires it; it reports nothing itself.
var InspectAnalyzer = &Analyzer{
	Name: "inspect",
	Doc:  "build the shared AST traversal every rule replays",
	Run: func(pass *Pass) (any, error) {
		return NewInspector(pass.Files), nil
	},
}

// Analyzers returns the full rule suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		GlobalRandAnalyzer,
		DetRangeAnalyzer,
		FloatEqAnalyzer,
		DroppedErrAnalyzer,
		WallTimeAnalyzer,
		LoopRoutineAnalyzer,
		LockLeakAnalyzer,
		AtomicMixAnalyzer,
		CtxHTTPAnalyzer,
	}
}

// AnalyzerNames returns the names of the full suite, for -rules validation.
func AnalyzerNames() []string {
	all := Analyzers()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}

// DirectivePrefix is the comment prefix of a suppression directive.
const DirectivePrefix = "//pqlint:allow"

// directiveRule is the pseudo-rule under which malformed and stale
// suppression directives are reported.
const directiveRule = "directive"

// allowSite is one parsed //pqlint:allow directive.
type allowSite struct {
	pos    token.Position
	rule   string
	reason string
	used   bool
}

// suppressions indexes the allow directives of one package.
type suppressions struct {
	// byLine maps file -> line -> directives attached to that line.
	byLine map[string]map[int][]*allowSite
	// byDecl maps directives found in a top-level declaration's doc
	// comment to the declaration's position extent.
	byDecl []declAllow
	// sites lists every directive in parse order, for staleness
	// aggregation.
	sites []*allowSite
}

type declAllow struct {
	file     string
	from, to int // line range covered
	site     *allowSite
}

// parseSuppressions scans the comments of files for allow directives,
// reporting malformed ones through report.
func parseSuppressions(fset *token.FileSet, files []*ast.File, report func(pos token.Pos, rule, format string, args ...any)) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]*allowSite)}
	for _, f := range files {
		// Doc-comment directives cover their whole declaration.
		docEnd := make(map[*ast.CommentGroup][2]token.Pos) // doc group -> decl extent
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Doc != nil {
					docEnd[d.Doc] = [2]token.Pos{d.Pos(), d.End()}
				}
			case *ast.GenDecl:
				if d.Doc != nil {
					docEnd[d.Doc] = [2]token.Pos{d.Pos(), d.End()}
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, DirectivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, DirectivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //pqlint:allowfoo — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					report(c.Pos(), directiveRule,
						"malformed directive: want //pqlint:allow <rule> <reason>")
					continue
				}
				rule := fields[0]
				if !knownRule(rule) {
					report(c.Pos(), directiveRule,
						"directive names unknown rule %q (known: %s)",
						rule, strings.Join(AnalyzerNames(), ", "))
					continue
				}
				site := &allowSite{
					pos:    fset.Position(c.Pos()),
					rule:   rule,
					reason: strings.Join(fields[1:], " "),
				}
				s.sites = append(s.sites, site)
				if ext, ok := docEnd[cg]; ok {
					from := fset.Position(ext[0])
					to := fset.Position(ext[1])
					s.byDecl = append(s.byDecl, declAllow{
						file: from.Filename, from: from.Line, to: to.Line, site: site,
					})
					continue
				}
				pos := site.pos
				if s.byLine[pos.Filename] == nil {
					s.byLine[pos.Filename] = make(map[int][]*allowSite)
				}
				s.byLine[pos.Filename][pos.Line] = append(s.byLine[pos.Filename][pos.Line], site)
			}
		}
	}
	return s
}

// match returns the covering directive for a diagnostic of rule at pos,
// or nil. Line directives cover their own line and the one below; decl
// directives cover the declaration's line extent.
func (s *suppressions) match(pos token.Position, rule string) *allowSite {
	if lines := s.byLine[pos.Filename]; lines != nil {
		for _, line := range [2]int{pos.Line, pos.Line - 1} {
			for _, site := range lines[line] {
				if site.rule == rule {
					site.used = true
					return site
				}
			}
		}
	}
	for _, da := range s.byDecl {
		if da.file == pos.Filename && da.from <= pos.Line && pos.Line <= da.to && da.site.rule == rule {
			da.site.used = true
			return da.site
		}
	}
	return nil
}

func knownRule(name string) bool {
	for _, a := range Analyzers() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// schedule expands the requested analyzers into execution order: every
// transitively Required pass precedes its dependents, each pass appearing
// once. The requested order is preserved for passes at the same depth, so
// output is deterministic.
func schedule(analyzers []*Analyzer) []*Analyzer {
	var order []*Analyzer
	seen := make(map[*Analyzer]bool)
	var visit func(a *Analyzer)
	visit = func(a *Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, req := range a.Requires {
			visit(req)
		}
		order = append(order, a)
	}
	for _, a := range analyzers {
		visit(a)
	}
	return order
}

// staleKey dedupes one physical directive across package variants: the
// same //pqlint:allow line is parsed once in the plain package and again
// in its test variant, and is live if either run used it.
type staleKey struct {
	file string
	line int
	rule string
}

// RunAnalyzers applies every analyzer (plus whatever they Require) to
// every package and returns all diagnostics — suppressed ones included,
// flagged — in deterministic file/line/column/rule order. A directive
// that suppressed nothing across the whole run is reported as a stale
// "directive" diagnostic, but only for rules that actually ran: an allow
// for a rule excluded by -rules is dormant, not stale.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	stale := make(map[staleKey]*allowSite)
	var staleOrder []staleKey

	var diags []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		report := func(pos token.Pos, rule, msg string) {
			raw = append(raw, Diagnostic{
				Pos:     pkg.Fset.Position(pos),
				Rule:    rule,
				Message: msg,
			})
		}
		sup := parseSuppressions(pkg.Fset, pkg.Files,
			func(pos token.Pos, rule, format string, args ...any) {
				report(pos, rule, fmt.Sprintf(format, args...))
			})
		pass := &Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			IsCommand: pkg.IsCommand,
			ResultOf:  make(map[*Analyzer]any),
			report:    report,
		}
		for _, a := range schedule(analyzers) {
			pass.Analyzer = a
			res, err := a.Run(pass)
			if err != nil {
				report(token.NoPos, a.Name, fmt.Sprintf("analyzer failed: %v", err))
				continue
			}
			pass.ResultOf[a] = res
		}
		// A test variant re-checks the plain files alongside the _test.go
		// files; only findings in the test files are new — the rest were
		// already reported by the plain package.
		if pkg.ForTest != "" {
			kept := raw[:0]
			for _, d := range raw {
				if pkg.TestGoFiles[d.Pos.Filename] {
					kept = append(kept, d)
				}
			}
			raw = kept
		}
		for i := range raw {
			if site := sup.match(raw[i].Pos, raw[i].Rule); site != nil {
				raw[i].Suppressed = true
				raw[i].Reason = site.reason
			}
		}
		diags = append(diags, raw...)
		for _, site := range sup.sites {
			if !ran[site.rule] {
				continue
			}
			key := staleKey{file: site.pos.Filename, line: site.pos.Line, rule: site.rule}
			prev, ok := stale[key]
			if !ok {
				stale[key] = site
				staleOrder = append(staleOrder, key)
			} else if site.used && !prev.used {
				stale[key] = site
			}
		}
	}
	for _, key := range staleOrder {
		if site := stale[key]; !site.used {
			diags = append(diags, Diagnostic{
				Pos:  site.pos,
				Rule: directiveRule,
				Message: fmt.Sprintf(
					"stale //pqlint:allow %s directive: no finding suppressed; delete it", site.rule),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}
