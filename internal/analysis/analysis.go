// Package analysis is a stdlib-only static-analysis driver enforcing the
// repo's determinism invariants: no package-level math/rand in library
// code, no nondeterministic map-iteration leaks into ordered output, no
// bare float equality outside documented tie handling, and no silently
// discarded errors or dead assignments. The rules exist because the whole
// experimental pipeline (webcorpus evolution → snapshots → ΔPR → Q(p)) is
// only reproducible while every stochastic component is explicitly seeded
// and every ordered output is explicitly ordered; see DESIGN.md
// "Determinism invariants and pqlint".
//
// Intentional exceptions are suppressed in source with a directive:
//
//	//pqlint:allow <rule> <reason>
//
// placed on the flagged line, on the line immediately above it, or in the
// doc comment of the enclosing top-level declaration (which suppresses the
// rule for the whole declaration). The reason is mandatory.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Diagnostic is one finding from one analyzer, positioned in the
// original source.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
	// Suppressed is true when a //pqlint:allow directive covers the
	// finding; Reason carries the directive's justification.
	Suppressed bool
	Reason     string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Rule, d.Message)
}

// A Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(token.Pos, string, string)
}

// Reportf records a diagnostic for rule at pos.
func (p *Pass) Reportf(pos token.Pos, rule, format string, args ...any) {
	p.report(pos, rule, fmt.Sprintf(format, args...))
}

// An Analyzer is one named rule.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full rule suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		GlobalRandAnalyzer,
		DetRangeAnalyzer,
		FloatEqAnalyzer,
		DroppedErrAnalyzer,
	}
}

// AnalyzerNames returns the names of the full suite, for -rules validation.
func AnalyzerNames() []string {
	all := Analyzers()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}

// DirectivePrefix is the comment prefix of a suppression directive.
const DirectivePrefix = "//pqlint:allow"

// directiveRule is the pseudo-rule under which malformed suppression
// directives are reported.
const directiveRule = "directive"

// allowSite is one parsed //pqlint:allow directive.
type allowSite struct {
	rule   string
	reason string
	used   bool
}

// suppressions indexes the allow directives of one package.
type suppressions struct {
	fset *token.FileSet
	// byLine maps file -> line -> directives attached to that line.
	byLine map[string]map[int][]*allowSite
	// byDecl maps directives found in a top-level declaration's doc
	// comment to the declaration's position extent.
	byDecl []declAllow
}

type declAllow struct {
	file     string
	from, to int // line range covered
	site     *allowSite
}

// parseSuppressions scans the comments of files for allow directives,
// reporting malformed ones through report.
func parseSuppressions(fset *token.FileSet, files []*ast.File, report func(pos token.Pos, rule, format string, args ...any)) *suppressions {
	s := &suppressions{fset: fset, byLine: make(map[string]map[int][]*allowSite)}
	for _, f := range files {
		// Doc-comment directives cover their whole declaration.
		docEnd := make(map[*ast.CommentGroup][2]token.Pos) // doc group -> decl extent
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Doc != nil {
					docEnd[d.Doc] = [2]token.Pos{d.Pos(), d.End()}
				}
			case *ast.GenDecl:
				if d.Doc != nil {
					docEnd[d.Doc] = [2]token.Pos{d.Pos(), d.End()}
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, DirectivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, DirectivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //pqlint:allowfoo — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					report(c.Pos(), directiveRule,
						"malformed directive: want //pqlint:allow <rule> <reason>")
					continue
				}
				rule := fields[0]
				if !knownRule(rule) {
					report(c.Pos(), directiveRule,
						"directive names unknown rule %q (known: %s)",
						rule, strings.Join(AnalyzerNames(), ", "))
					continue
				}
				site := &allowSite{rule: rule, reason: strings.Join(fields[1:], " ")}
				if ext, ok := docEnd[cg]; ok {
					from := fset.Position(ext[0])
					to := fset.Position(ext[1])
					s.byDecl = append(s.byDecl, declAllow{
						file: from.Filename, from: from.Line, to: to.Line, site: site,
					})
					continue
				}
				pos := fset.Position(c.Pos())
				if s.byLine[pos.Filename] == nil {
					s.byLine[pos.Filename] = make(map[int][]*allowSite)
				}
				s.byLine[pos.Filename][pos.Line] = append(s.byLine[pos.Filename][pos.Line], site)
			}
		}
	}
	return s
}

// match returns the covering directive for a diagnostic of rule at pos,
// or nil. Line directives cover their own line and the one below; decl
// directives cover the declaration's line extent.
func (s *suppressions) match(pos token.Position, rule string) *allowSite {
	if lines := s.byLine[pos.Filename]; lines != nil {
		for _, line := range [2]int{pos.Line, pos.Line - 1} {
			for _, site := range lines[line] {
				if site.rule == rule {
					site.used = true
					return site
				}
			}
		}
	}
	for _, da := range s.byDecl {
		if da.file == pos.Filename && da.from <= pos.Line && pos.Line <= da.to && da.site.rule == rule {
			da.site.used = true
			return da.site
		}
	}
	return nil
}

func knownRule(name string) bool {
	for _, a := range Analyzers() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// RunAnalyzers applies every analyzer to every package and returns all
// diagnostics (suppressed ones included, flagged) in deterministic
// file/line/column/rule order.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		report := func(pos token.Pos, rule, msg string) {
			raw = append(raw, Diagnostic{
				Pos:     pkg.Fset.Position(pos),
				Rule:    rule,
				Message: msg,
			})
		}
		sup := parseSuppressions(pkg.Fset, pkg.Files,
			func(pos token.Pos, rule, format string, args ...any) {
				report(pos, rule, fmt.Sprintf(format, args...))
			})
		pass := &Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report:    report,
		}
		for _, a := range analyzers {
			a.Run(pass)
		}
		for i := range raw {
			if site := sup.match(raw[i].Pos, raw[i].Rule); site != nil {
				raw[i].Suppressed = true
				raw[i].Reason = site.reason
			}
		}
		diags = append(diags, raw...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}
