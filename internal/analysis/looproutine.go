package analysis

import (
	"go/ast"
	"go/token"
)

// LoopRoutineAnalyzer flags goroutines launched inside a loop with no
// visible join in the enclosing function. A `go` per iteration with
// nothing bounding it is how a worker pool degrades into an unbounded
// fork bomb under load — every launch site in the serving and crawl
// stacks must be tied to a WaitGroup, an errgroup-style Wait, or a
// semaphore/result channel the function drains. The check is a
// heuristic: any `.Wait()` call or channel receive in the enclosing
// function counts as the join; sites that coordinate through some other
// mechanism document themselves with //pqlint:allow looproutine.
var LoopRoutineAnalyzer = &Analyzer{
	Name:     "looproutine",
	Doc:      "flag goroutines launched in a loop with no WaitGroup/errgroup/channel join in scope",
	Requires: []*Analyzer{InspectAnalyzer},
	Run:      runLoopRoutine,
}

func runLoopRoutine(pass *Pass) (any, error) {
	pass.Inspector().WithStack([]ast.Node{(*ast.GoStmt)(nil)},
		func(n ast.Node, push bool, stack []ast.Node) bool {
			if !push {
				return true
			}
			// Find the innermost enclosing function and whether a loop
			// sits between it and the go statement.
			var encl ast.Node
			inLoop := false
			for i := len(stack) - 2; i >= 0 && encl == nil; i-- {
				switch stack[i].(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					inLoop = true
				case *ast.FuncDecl, *ast.FuncLit:
					encl = stack[i]
				}
			}
			if !inLoop || encl == nil {
				return true
			}
			if hasJoin(childBody(encl)) {
				return true
			}
			pass.Reportf(n.Pos(), "looproutine",
				"goroutine launched in a loop with no join in the enclosing function (no .Wait() call or channel receive); bound it with a WaitGroup or semaphore")
			return true
		})
	return nil, nil
}

// hasJoin reports whether body contains anything that waits on other
// goroutines: a `.Wait()` method call (sync.WaitGroup, errgroup) or a
// channel receive (result drain or semaphore).
func hasJoin(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		}
		return !found
	})
	return found
}
