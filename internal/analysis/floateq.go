package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEqAnalyzer flags == and != between two non-constant floating-point
// operands. Exact float equality is almost always a rounding-sensitive
// bug; the legitimate exceptions in this repo are exact-tie detection in
// rank statistics and bitwise-reproducibility checks, which must carry a
// //pqlint:allow floateq directive explaining themselves. Comparisons
// against a constant (x == 0, x != 1) are exempt: they test exact
// sentinel values, which IEEE 754 represents and propagates exactly.
var FloatEqAnalyzer = &Analyzer{
	Name:     "floateq",
	Doc:      "flag ==/!= between non-constant floating-point operands",
	Requires: []*Analyzer{InspectAnalyzer},
	Run:      runFloatEq,
}

func runFloatEq(pass *Pass) (any, error) {
	pass.Inspector().Preorder([]ast.Node{(*ast.BinaryExpr)(nil)}, func(n ast.Node) {
		be := n.(*ast.BinaryExpr)
		if be.Op != token.EQL && be.Op != token.NEQ {
			return
		}
		x, xok := pass.TypesInfo.Types[be.X]
		y, yok := pass.TypesInfo.Types[be.Y]
		if !xok || !yok {
			return
		}
		// A constant operand means an exact-sentinel test; skip.
		if x.Value != nil || y.Value != nil {
			return
		}
		if !isFloatTV(x) && !isFloatTV(y) {
			return
		}
		pass.Reportf(be.OpPos, "floateq",
			"%s between floating-point values; compare with a tolerance, or document exact-tie intent with //pqlint:allow floateq",
			be.Op)
	})
	return nil, nil
}

func isFloatTV(tv types.TypeAndValue) bool {
	if tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
