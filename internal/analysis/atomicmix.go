package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicMixAnalyzer flags variables and struct fields that are accessed
// through sync/atomic in one place and by plain read/write in another.
// Mixing the two is the classic "mostly atomic" race: the plain access
// compiles, usually works, and tears or reorders under contention in
// exactly the way -race only catches when the interleaving happens to
// fire in CI. Within a package, an address that ever flows into
// atomic.Load/Store/Add/Swap/CompareAndSwap must be accessed atomically
// everywhere; intentional exceptions (single-threaded init before any
// goroutine starts) document themselves with //pqlint:allow atomicmix.
var AtomicMixAnalyzer = &Analyzer{
	Name:     "atomicmix",
	Doc:      "flag fields accessed via sync/atomic in one place and plain loads/stores elsewhere",
	Requires: []*Analyzer{InspectAnalyzer},
	Run:      runAtomicMix,
}

// atomicOpPrefixes are the sync/atomic function-name prefixes whose first
// argument is the address of the shared word.
var atomicOpPrefixes = []string{"Load", "Store", "Add", "Swap", "CompareAndSwap"}

func runAtomicMix(pass *Pass) (any, error) {
	// First sweep: find every `atomic.Op(&x.f, ...)` call, remember the
	// object behind x.f, and mark the identifiers inside the atomic call
	// itself as sanctioned.
	tracked := make(map[types.Object]string) // object -> atomic op seen
	sanctioned := make(map[*ast.Ident]bool)
	pass.Inspector().Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		op, ok := atomicCall(pass, call)
		if !ok || len(call.Args) == 0 {
			return
		}
		addr, ok := call.Args[0].(*ast.UnaryExpr)
		if !ok {
			return
		}
		id := targetIdent(addr.X)
		if id == nil {
			return
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return
		}
		if _, seen := tracked[obj]; !seen {
			tracked[obj] = op
		}
		// Every mention of the word inside this call is atomic by
		// definition (the &x.f argument itself).
		ast.Inspect(call, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				sanctioned[id] = true
			}
			return true
		})
	})
	if len(tracked) == 0 {
		return nil, nil
	}
	// Second sweep: any other use of a tracked object is a plain access.
	// Taking the address again (&x.f passed to a helper) counts too: the
	// helper may do anything with it, and the report points the reader at
	// the mixing site either way.
	pass.Inspector().Preorder([]ast.Node{(*ast.Ident)(nil)}, func(n ast.Node) {
		id := n.(*ast.Ident)
		if sanctioned[id] {
			return
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return
		}
		op, ok := tracked[obj]
		if !ok {
			return
		}
		pass.Reportf(id.Pos(), "atomicmix",
			"%s is accessed with sync/atomic (atomic.%s) elsewhere in this package but plainly here; make every access atomic or //pqlint:allow atomicmix",
			id.Name, op)
	})
	return nil, nil
}

// atomicCall reports whether call is a sync/atomic operation taking an
// address as its first argument, returning the function name.
func atomicCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return "", false
	}
	for _, prefix := range atomicOpPrefixes {
		if strings.HasPrefix(sel.Sel.Name, prefix) {
			return sel.Sel.Name, true
		}
	}
	return "", false
}

// targetIdent extracts the identifier naming the shared word from the
// operand of &: the field selector's Sel for &x.f, the ident itself for
// &v. Index expressions (&xs[i]) have no single object to track.
func targetIdent(e ast.Expr) *ast.Ident {
	switch e := e.(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	case *ast.ParenExpr:
		return targetIdent(e.X)
	}
	return nil
}
