package analysis_test

import (
	"fmt"
	"path/filepath"
	"runtime"
	"testing"

	"pagequality/internal/analysis"
)

// BenchmarkLoadModule times the load-and-type-check phase on the real
// repository module, tests included, at worker counts 1 and GOMAXPROCS
// plus an oversubscribed count. On a single-vCPU box the parallel
// schedule cannot beat serial on CPU-bound checking; what the comparison
// pins is that extra workers cost nothing (the wave scheduler degrades
// to serial) while multi-core machines get the import-DAG parallelism
// for free. BENCH_7.json records the numbers honestly.
func BenchmarkLoadModule(b *testing.B) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	// The plain=workers=1 case matches the scope of the pre-framework
	// serial loader (no _test.go files), so it is the before/after axis;
	// the tests=... cases price the new default scope.
	bench := func(name string, opts analysis.LoadOptions) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pkgs, err := analysis.LoadModule(root, opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(pkgs) < 20 {
					b.Fatalf("suspiciously few packages: %d", len(pkgs))
				}
			}
		})
	}
	bench("plain/workers=1", analysis.LoadOptions{Tests: false, Workers: 1})
	seen := map[int]bool{}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0), 4} {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		bench(fmt.Sprintf("tests/workers=%d", workers), analysis.LoadOptions{Tests: true, Workers: workers})
	}
}

// BenchmarkRunAnalyzers times the analysis phase alone — all nine rules
// over a pre-loaded module — separating rule cost from loader cost.
func BenchmarkRunAnalyzers(b *testing.B) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := analysis.LoadModule(root, analysis.LoadOptions{Tests: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags := analysis.RunAnalyzers(pkgs, analysis.Analyzers())
		for _, d := range diags {
			if !d.Suppressed {
				b.Fatalf("un-suppressed diagnostic: %s", d)
			}
		}
	}
}
