package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetRangeAnalyzer flags map iterations that leak Go's randomized map
// order into observable results: bodies that append to a slice (unless a
// sort call follows later in the same function), write ordered output
// (fmt printing, Write/WriteString-style sinks, string concatenation),
// or accumulate floating-point sums (float addition is not associative,
// so the iteration order changes the bits of the result).
var DetRangeAnalyzer = &Analyzer{
	Name:     "detrange",
	Doc:      "flag map iteration whose order leaks into ordered or float-accumulated output",
	Requires: []*Analyzer{InspectAnalyzer},
	Run:      runDetRange,
}

func runDetRange(pass *Pass) (any, error) {
	pass.Inspector().WithStack([]ast.Node{(*ast.RangeStmt)(nil)},
		func(n ast.Node, push bool, stack []ast.Node) bool {
			if !push {
				return true
			}
			rng := n.(*ast.RangeStmt)
			if !isMapType(pass, rng.X) {
				return true
			}
			// The innermost enclosing function gives the post-loop sort
			// check its scope to search.
			var encl ast.Node
			for i := len(stack) - 2; i >= 0; i-- {
				switch stack[i].(type) {
				case *ast.FuncDecl, *ast.FuncLit:
					encl = stack[i]
				}
				if encl != nil {
					break
				}
			}
			checkMapRange(pass, rng, encl)
			return true
		})
	return nil, nil
}

func childBody(n ast.Node) ast.Node {
	switch n := n.(type) {
	case *ast.FuncDecl:
		if n.Body == nil {
			return &ast.BlockStmt{}
		}
		return n.Body
	case *ast.FuncLit:
		return n.Body
	}
	return n
}

func isMapType(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange inspects one map-range body for order leaks. Writes
// whose target is indexed by the range key itself (m2[k] = ..., or
// lists[k] = append(lists[k], ...)) happen exactly once per key and are
// therefore order-independent; those are skipped.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, enclosing ast.Node) {
	key := rangeKeyObject(pass, rng)
	var appendPos []token.Pos
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Nested ranges are visited on their own; their bodies still
			// execute in this map's order, so keep descending.
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if indexedByKey(pass, lhs, key) {
						continue
					}
					if typeIsFloat(pass, lhs) {
						pass.Reportf(n.Pos(), "detrange",
							"float accumulation inside map iteration: result bits depend on map order; iterate sorted keys")
					} else if n.Tok == token.ADD_ASSIGN && typeIsString(pass, lhs) {
						pass.Reportf(n.Pos(), "detrange",
							"string concatenation inside map iteration: output order depends on map order; iterate sorted keys")
					}
				}
			case token.ASSIGN, token.DEFINE:
				if len(n.Rhs) == 1 && len(n.Lhs) >= 1 && !indexedByKey(pass, n.Lhs[0], key) {
					if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
						appendPos = append(appendPos, n.Pos())
					}
				}
			}
		case *ast.CallExpr:
			if name, ok := orderedOutputCall(pass, n); ok {
				pass.Reportf(n.Pos(), "detrange",
					"%s inside map iteration emits output in map order; iterate sorted keys", name)
			}
		}
		return true
	})
	if len(appendPos) == 0 {
		return
	}
	// An append is fine if the function sorts something afterwards — the
	// canonical collect-keys-then-sort pattern.
	if enclosing != nil && sortCallAfter(pass, enclosing, rng.End()) {
		return
	}
	for _, pos := range appendPos {
		pass.Reportf(pos, "detrange",
			"append inside map iteration with no later sort in this function: slice order depends on map order")
	}
}

// rangeKeyObject resolves the types.Object of the range statement's key
// variable, for both := and = forms.
func rangeKeyObject(pass *Pass, rng *ast.RangeStmt) types.Object {
	id, ok := rng.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// indexedByKey reports whether e is an index expression whose index is
// exactly the range key variable.
func indexedByKey(pass *Pass, e ast.Expr, key types.Object) bool {
	if key == nil {
		return false
	}
	ie, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := ie.Index.(*ast.Ident)
	if !ok {
		return false
	}
	return pass.TypesInfo.Uses[id] == key
}

func typeIsFloat(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func typeIsString(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if obj, ok := pass.TypesInfo.Uses[id]; ok {
		_, isBuiltin := obj.(*types.Builtin)
		return isBuiltin
	}
	return true // partial type info: assume the predeclared append
}

// orderedOutputWriters are method names that emit to an ordered sink.
var orderedOutputWriters = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

// orderedOutputCall reports whether call writes ordered output: an
// fmt.Print*/Fprint* call or a Write*-style method call.
func orderedOutputCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj, ok := pass.TypesInfo.Uses[id]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				if pn.Imported().Path() == "fmt" &&
					(hasAnyPrefix(name, "Print", "Fprint") ||
						name == "Println" || name == "Fprintln") {
					return "fmt." + name, true
				}
				return "", false // other package function, not a write sink
			}
		}
	}
	if orderedOutputWriters[name] {
		// Method call on some value; only count receivers that are
		// plausibly sinks (anything but a map/slice element write).
		return "." + name, true
	}
	return "", false
}

func hasAnyPrefix(s string, prefixes ...string) bool {
	for _, p := range prefixes {
		if len(s) >= len(p) && s[:len(p)] == p {
			return true
		}
	}
	return false
}

// sortCallAfter reports whether any sort.*/slices.Sort* call or .Sort()
// method call occurs after pos within the enclosing function node.
func sortCallAfter(pass *Pass, enclosing ast.Node, pos token.Pos) bool {
	found := false
	ast.Inspect(childBody(enclosing), func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj, ok := pass.TypesInfo.Uses[id]; ok {
				if pn, ok := obj.(*types.PkgName); ok {
					p := pn.Imported().Path()
					if p == "sort" || p == "slices" {
						found = true
					}
					return true
				}
			} else if id.Name == "sort" || id.Name == "slices" {
				found = true // partial type info fallback
				return true
			}
		}
		if name == "Sort" {
			found = true
		}
		return true
	})
	return found
}
