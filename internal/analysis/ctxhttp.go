package analysis

import (
	"go/ast"
	"go/types"
)

// CtxHTTPAnalyzer flags HTTP work that ignores context propagation:
// requests built with http.NewRequest instead of NewRequestWithContext,
// the package-level http.Get/Post/PostForm/Head conveniences (and their
// *http.Client methods), and context.Background()/TODO() minted inside a
// function that already receives an *http.Request. A request without a
// context cannot be cancelled, so one slow origin pins a crawler slot
// forever; a handler that mints context.Background() detaches its
// downstream work from the client disconnect it should be observing —
// r.Context() is already there.
var CtxHTTPAnalyzer = &Analyzer{
	Name:     "ctxhttp",
	Doc:      "flag HTTP requests without context and handlers ignoring r.Context()",
	Requires: []*Analyzer{InspectAnalyzer},
	Run:      runCtxHTTP,
}

// contextlessHTTP are the net/http package-level and *http.Client call
// names that hard-code context.Background under the hood.
var contextlessHTTP = map[string]bool{
	"Get":      true,
	"Post":     true,
	"PostForm": true,
	"Head":     true,
}

func runCtxHTTP(pass *Pass) (any, error) {
	pass.Inspector().WithStack([]ast.Node{(*ast.CallExpr)(nil)},
		func(n ast.Node, push bool, stack []ast.Node) bool {
			if !push {
				return true
			}
			call := n.(*ast.CallExpr)
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok {
				if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
					switch pn.Imported().Path() {
					case "net/http":
						reportHTTPPkgCall(pass, call, sel)
						return true
					case "context":
						reportHandlerContext(pass, call, sel, stack)
						return true
					}
				}
			}
			reportClientCall(pass, call, sel)
			return true
		})
	return nil, nil
}

// reportHTTPPkgCall handles package-level net/http calls: NewRequest and
// the Get/Post/PostForm/Head conveniences.
func reportHTTPPkgCall(pass *Pass, call *ast.CallExpr, sel *ast.SelectorExpr) {
	switch {
	case sel.Sel.Name == "NewRequest":
		pass.Reportf(call.Pos(), "ctxhttp",
			"http.NewRequest builds an uncancellable request; use http.NewRequestWithContext with a caller-scoped context")
	case contextlessHTTP[sel.Sel.Name]:
		pass.Reportf(call.Pos(), "ctxhttp",
			"http.%s runs with no context and cannot be cancelled; build the request with http.NewRequestWithContext",
			sel.Sel.Name)
	}
}

// reportClientCall handles (*http.Client).Get/Post/PostForm/Head, which
// wrap NewRequest and inherit its missing context.
func reportClientCall(pass *Pass, call *ast.CallExpr, sel *ast.SelectorExpr) {
	if !contextlessHTTP[sel.Sel.Name] {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isHTTPClient(sig.Recv().Type()) {
		return
	}
	pass.Reportf(call.Pos(), "ctxhttp",
		"(*http.Client).%s runs with no context and cannot be cancelled; build the request with http.NewRequestWithContext and use client.Do",
		sel.Sel.Name)
}

// reportHandlerContext flags context.Background()/TODO() minted inside a
// function that receives an *http.Request: the handler already has a
// request-scoped context and should derive from it.
func reportHandlerContext(pass *Pass, call *ast.CallExpr, sel *ast.SelectorExpr, stack []ast.Node) {
	if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
		return
	}
	for i := len(stack) - 2; i >= 0; i-- {
		var ft *ast.FuncType
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			ft = fn.Type
		case *ast.FuncLit:
			ft = fn.Type
		default:
			continue
		}
		if funcTakesRequest(pass, ft) {
			pass.Reportf(call.Pos(), "ctxhttp",
				"context.%s inside a function that receives *http.Request; derive from r.Context() so cancellation propagates",
				sel.Sel.Name)
			return
		}
		// Keep walking out: a FuncLit inside a handler still has the
		// request in scope one level up.
	}
}

// funcTakesRequest reports whether the function type has an *http.Request
// parameter.
func funcTakesRequest(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		ptr, ok := tv.Type.(*types.Pointer)
		if !ok {
			continue
		}
		if named, ok := ptr.Elem().(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" {
				return true
			}
		}
	}
	return false
}

// isHTTPClient reports whether t is *net/http.Client (the method
// receiver type of the convenience calls).
func isHTTPClient(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Client" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}
