package analysis_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"pagequality/internal/analysis"
)

// wantRe matches expected-diagnostic annotations in testdata sources:
//
//	expr // want <rule> "message substring"
var wantRe = regexp.MustCompile(`// want ([a-z]+) "([^"]+)"`)

type expectation struct {
	file string
	line int
	rule string
	sub  string
}

// readExpectations scans every Go file in dir for want annotations.
func readExpectations(t *testing.T, dir string) []expectation {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []expectation
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				wants = append(wants, expectation{
					file: path, line: i + 1, rule: m[1], sub: m[2],
				})
			}
		}
	}
	return wants
}

func analyzerByName(t *testing.T, name string) *analysis.Analyzer {
	t.Helper()
	for _, a := range analysis.Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer %q", name)
	return nil
}

// TestAnalyzersOnCorpus runs each rule against its frozen testdata corpus:
// the positive file must produce exactly the annotated diagnostics, the
// negative file none, and the suppressed file only suppressed ones.
func TestAnalyzersOnCorpus(t *testing.T) {
	for _, rule := range analysis.AnalyzerNames() {
		rule := rule
		t.Run(rule, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", rule)
			pkg, err := analysis.LoadDir(dir, "pqlint.test/"+rule)
			if err != nil {
				t.Fatal(err)
			}
			if len(pkg.TypeErrors) > 0 {
				t.Fatalf("testdata must type-check cleanly; got %v", pkg.TypeErrors)
			}
			diags := analysis.RunAnalyzers([]*analysis.Package{pkg},
				[]*analysis.Analyzer{analyzerByName(t, rule)})

			wants := readExpectations(t, dir)
			matched := make([]bool, len(diags))
			for _, w := range wants {
				found := false
				for i, d := range diags {
					if matched[i] || d.Suppressed {
						continue
					}
					if d.Pos.Filename == w.file && d.Pos.Line == w.line &&
						d.Rule == w.rule && strings.Contains(d.Message, w.sub) {
						matched[i] = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("missing diagnostic: %s:%d [%s] ~ %q", w.file, w.line, w.rule, w.sub)
				}
			}
			var suppressed int
			for i, d := range diags {
				if d.Suppressed {
					suppressed++
					if d.Reason == "" {
						t.Errorf("suppressed diagnostic without reason: %s", d)
					}
					if !strings.Contains(d.Pos.Filename, "suppressed.go") {
						t.Errorf("unexpected suppression outside suppressed.go: %s", d)
					}
					continue
				}
				if !matched[i] {
					t.Errorf("unexpected diagnostic: %s", d)
				}
				if strings.Contains(d.Pos.Filename, "negative.go") {
					t.Errorf("negative case flagged: %s", d)
				}
			}
			if suppressed == 0 {
				t.Errorf("suppressed.go produced no suppressed diagnostic; the directive path is untested")
			}
		})
	}
}

// TestMalformedDirectives checks that bad //pqlint:allow lines are
// themselves diagnosed rather than silently ignored.
func TestMalformedDirectives(t *testing.T) {
	dir := t.TempDir()
	src := `package bad

//pqlint:allow floateq
func missingReason() {}

//pqlint:allow nosuchrule because reasons
func unknownRule() {}
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.LoadDir(dir, "pqlint.test/bad")
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.RunAnalyzers([]*analysis.Package{pkg}, analysis.Analyzers())
	var malformed, unknown bool
	for _, d := range diags {
		if d.Rule != "directive" {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		switch {
		case strings.Contains(d.Message, "malformed"):
			malformed = true
		case strings.Contains(d.Message, "unknown rule"):
			unknown = true
		}
	}
	if !malformed {
		t.Error("missing diagnostic for directive without reason")
	}
	if !unknown {
		t.Error("missing diagnostic for directive naming an unknown rule")
	}
}

// TestModuleIsClean is the dogfood gate: the repo itself — _test.go files
// included — must type-check fully and carry zero un-suppressed
// diagnostics, mirroring the tier-1 `go run ./cmd/pqlint ./...` contract.
// Stale //pqlint:allow directives surface here as un-suppressed
// "directive" findings, so dead allows fail the build too.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.LoadModule(root, analysis.LoadOptions{Tests: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	variants := 0
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Errorf("%s: type errors (analysis would degrade): first: %v", p.Path, p.TypeErrors[0])
		}
		if p.ForTest != "" {
			variants++
		}
	}
	if variants == 0 {
		t.Error("no test-variant packages loaded; -tests coverage is dead")
	}
	for _, d := range analysis.RunAnalyzers(pkgs, analysis.Analyzers()) {
		if !d.Suppressed {
			t.Errorf("un-suppressed diagnostic in tree: %s", d)
		}
	}
}

// TestStaleAllowDirective checks that a //pqlint:allow which suppresses
// nothing is reported, and only for rules that actually ran.
func TestStaleAllowDirective(t *testing.T) {
	dir := t.TempDir()
	src := `package stale

//pqlint:allow floateq historical comparison long since deleted
func nothingToSuppress() int { return 1 }
`
	if err := os.WriteFile(filepath.Join(dir, "stale.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.LoadDir(dir, "pqlint.test/stale")
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.RunAnalyzers([]*analysis.Package{pkg}, analysis.Analyzers())
	found := false
	for _, d := range diags {
		if d.Rule == "directive" && strings.Contains(d.Message, "stale") {
			found = true
		}
	}
	if !found {
		t.Fatalf("stale directive not reported; got %v", diags)
	}
	// The same package analyzed without floateq: the allow is dormant,
	// not stale.
	for _, d := range analysis.RunAnalyzers([]*analysis.Package{pkg},
		[]*analysis.Analyzer{analyzerByName(t, "globalrand")}) {
		if d.Rule == "directive" {
			t.Errorf("dormant directive misreported as stale: %s", d)
		}
	}
}
