package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// WallTimeAnalyzer forbids reading the wall clock in deterministic
// library code: time.Now, time.Sleep, time.Since and friends make a
// function's output (or schedule) depend on when and on what machine it
// ran, which is exactly the nondeterminism the committed experiment
// outputs and bitwise-parity tests exist to exclude. Library code takes
// an injectable clock (a `func() time.Time` / sleep func field) instead;
// the process boundary — package main, where wall-clock timing on stderr
// is the documented idiom — is exempt, and genuine time boundaries in
// libraries (crawl retry deadlines, fault-injection latency) carry a
// //pqlint:allow walltime directive naming themselves.
var WallTimeAnalyzer = &Analyzer{
	Name:     "walltime",
	Doc:      "forbid wall-clock reads (time.Now/Sleep/Since/...) in library code; inject clocks",
	Requires: []*Analyzer{InspectAnalyzer},
	Run:      runWallTime,
}

// wallClockFuncs are the package time functions that observe or depend on
// the wall clock. Type and constant names (time.Time, time.Millisecond)
// and explicit constructors from parts (time.Date, time.Unix) stay legal:
// only ambient "what time is it right now" reads are nondeterministic.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

func runWallTime(pass *Pass) (any, error) {
	if pass.IsCommand {
		return nil, nil
	}
	// Per-file fallback import names for partially type-checked files.
	timeNames := make(map[*ast.File]map[string]bool, len(pass.Files))
	for _, f := range pass.Files {
		names := map[string]bool{}
		for _, spec := range f.Imports {
			if strings.Trim(spec.Path.Value, `"`) != "time" {
				continue
			}
			name := "time"
			if spec.Name != nil {
				name = spec.Name.Name
			}
			if name != "_" && name != "." {
				names[name] = true
			}
		}
		timeNames[f] = names
	}
	pass.Inspector().WithStack([]ast.Node{(*ast.SelectorExpr)(nil)},
		func(n ast.Node, push bool, stack []ast.Node) bool {
			if !push {
				return true
			}
			sel := n.(*ast.SelectorExpr)
			if !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			isTimePkg := false
			if obj, ok := pass.TypesInfo.Uses[id]; ok {
				pn, ok := obj.(*types.PkgName)
				if !ok {
					return true // a value named `time`, not the package
				}
				isTimePkg = pn.Imported().Path() == "time"
			} else if f, ok := stack[0].(*ast.File); ok {
				isTimePkg = timeNames[f][id.Name]
			}
			if !isTimePkg {
				return true
			}
			pass.Reportf(sel.Pos(), "walltime",
				"wall-clock time.%s in deterministic library code; inject a clock, or //pqlint:allow walltime at a real time boundary",
				sel.Sel.Name)
			return true
		})
	return nil, nil
}
