// Package webcorpus synthesises the multi-site Web corpus of the paper's
// experiment (Section 8) and evolves it over time. The paper crawled 154
// real Web sites four times between December 2002 and June 2003; this
// package substitutes a synthetic Web whose link evolution is *driven by
// the paper's own user-visitation model*: every page has a ground-truth
// intrinsic quality Q(p), visits arrive in proportion to current
// popularity (Proposition 1), visitors are uniformly random users
// (Proposition 2), and a user who discovers a page links to it with
// probability Q(p). On top of the clean model the corpus supports the
// §9.1 realism extensions the paper observed in its data: forgetting
// (decreasing popularity), link-churn noise (fluctuating PageRanks) and
// continuous page births.
//
// Because every page's true quality is known by construction, experiments
// can evaluate the estimator against ground truth — something the paper's
// real crawl could only approximate with future PageRank.
//
// The per-tick hot path is a sharded two-phase kernel (see DESIGN.md §7):
// a draw phase partitions the pages into fixed contiguous chunks processed
// by a Workers pool, each page drawing its visit/discovery/like/forget
// counts from its own counter-based randx.Stream keyed on (corpus seed,
// page id, tick); a serial apply phase then consumes the per-page event
// counts in page order to mutate the shared graph. Because no draw depends
// on scheduling, the evolved corpus is bitwise identical for every Workers
// setting.
package webcorpus

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"pagequality/internal/graph"
	"pagequality/internal/loadgen"
	"pagequality/internal/randx"
	"pagequality/internal/ranking"
	"pagequality/internal/snapshot"
)

// Config parameterises a corpus simulation. The zero value is invalid; use
// DefaultConfig as a starting point.
type Config struct {
	// Sites is the number of Web sites (the paper used 154).
	Sites int
	// InitialPagesPerSite is the mean number of pages per site at the
	// start of the burn-in period (actual counts vary ±50%).
	InitialPagesPerSite int
	// Users is n, the size of the simulated user population.
	Users int
	// VisitRate is r: a page with popularity P receives r·P visits per
	// week. r = Users gives the logistic growth rate (r/n)·Q = Q per week.
	VisitRate float64
	// LinkProb is the probability that a user who likes a page actually
	// publishes a link to it (thins the link graph without changing the
	// proportionality that the estimator relies on).
	LinkProb float64
	// SameSiteBias is the probability that a new link originates from a
	// page on the same site (intra-site links dominated the paper's
	// site-restricted crawl).
	SameSiteBias float64
	// QualityAlpha/QualityBeta shape the Beta(α,β) distribution from which
	// page qualities are drawn.
	QualityAlpha, QualityBeta float64
	// BirthRate is the number of new pages born per week across the corpus
	// (Poisson).
	BirthRate float64
	// ForgetRate is the §9.1 per-user forgetting rate per week (0 = the
	// paper's clean model).
	ForgetRate float64
	// NoiseRate adds link churn uncorrelated with quality: per week, a
	// Poisson(NoiseRate · pages) number of random single-link
	// additions/removals. This is what makes some PageRanks fluctuate the
	// way the paper observed.
	NoiseRate float64
	// DT is the simulation step in weeks (default 0.25).
	DT float64
	// BurnInWeeks ages the corpus before t=0 so that the crawl window
	// sees pages in all three life stages.
	BurnInWeeks float64
	// Seed makes the corpus deterministic.
	Seed int64
	// Workers is the parallelism of the per-tick draw phase; 0 means
	// GOMAXPROCS (mirroring pagerank.Options.Workers). The evolved corpus
	// is bitwise identical for every setting: each page draws from its own
	// counter-based stream, so no result depends on scheduling.
	Workers int
	// Search configures the search-discovery channel (see search.go); the
	// zero value disables it and the corpus evolves exactly as before.
	Search SearchConfig
}

// DefaultConfig returns a laptop-scale configuration mirroring the paper's
// setup: 154 sites, pages in all life stages at the first crawl, and four
// snapshots on the Figure-4 timeline.
func DefaultConfig() Config {
	return Config{
		Sites:               154,
		InitialPagesPerSite: 10,
		Users:               20000,
		VisitRate:           20000,
		LinkProb:            0.02,
		SameSiteBias:        0.5,
		QualityAlpha:        2,
		QualityBeta:         3,
		BirthRate:           8,
		ForgetRate:          0.01,
		NoiseRate:           0.02,
		DT:                  0.25,
		BurnInWeeks:         30,
		Seed:                1,
	}
}

// ErrBadConfig reports invalid corpus configuration.
var ErrBadConfig = errors.New("webcorpus: bad config")

func (c *Config) fill() error {
	if c.DT == 0 {
		c.DT = 0.25
	}
	switch {
	case c.Sites < 1:
		return fmt.Errorf("%w: Sites=%d", ErrBadConfig, c.Sites)
	case c.InitialPagesPerSite < 1:
		return fmt.Errorf("%w: InitialPagesPerSite=%d", ErrBadConfig, c.InitialPagesPerSite)
	case c.Users < 10:
		return fmt.Errorf("%w: Users=%d", ErrBadConfig, c.Users)
	case c.VisitRate <= 0:
		return fmt.Errorf("%w: VisitRate=%g", ErrBadConfig, c.VisitRate)
	case c.LinkProb <= 0 || c.LinkProb > 1:
		return fmt.Errorf("%w: LinkProb=%g", ErrBadConfig, c.LinkProb)
	case c.SameSiteBias < 0 || c.SameSiteBias > 1:
		return fmt.Errorf("%w: SameSiteBias=%g", ErrBadConfig, c.SameSiteBias)
	case c.QualityAlpha <= 0 || c.QualityBeta <= 0:
		return fmt.Errorf("%w: quality Beta(%g,%g)", ErrBadConfig, c.QualityAlpha, c.QualityBeta)
	case c.BirthRate < 0:
		return fmt.Errorf("%w: BirthRate=%g", ErrBadConfig, c.BirthRate)
	case c.ForgetRate < 0:
		return fmt.Errorf("%w: ForgetRate=%g", ErrBadConfig, c.ForgetRate)
	case c.NoiseRate < 0:
		return fmt.Errorf("%w: NoiseRate=%g", ErrBadConfig, c.NoiseRate)
	case c.DT <= 0:
		return fmt.Errorf("%w: DT=%g", ErrBadConfig, c.DT)
	case c.BurnInWeeks < 0:
		return fmt.Errorf("%w: BurnInWeeks=%g", ErrBadConfig, c.BurnInWeeks)
	case c.Workers < 0:
		return fmt.Errorf("%w: Workers=%d", ErrBadConfig, c.Workers)
	}
	return c.Search.fill()
}

// Stream-key space of the corpus. Page ids are dense uint32 values, so
// every key >= 1<<32 is reserved for non-page streams.
const (
	keyTick   = 1 << 32 // per-tick serial events (churn, births)
	keySetup  = keyTick + 1
	keyInject = keyTick + 2 // BirthPage injections, tick = page sequence
	keySearch = keyTick + 3 // per-tick search sessions
)

// timeSlack absorbs FP rounding when comparing times derived from the
// exact tick clock against caller-supplied targets.
const timeSlack = 1e-9

// Sim is a running corpus simulation. The underlying graph only ever
// grows nodes (pages are never deleted, matching a crawler that keeps
// seeing the same URLs); links come and go.
type Sim struct {
	cfg     Config
	workers int
	g       *graph.Graph
	// Per-page state, indexed by NodeID.
	aware   []float64 // number of users aware of the page
	likes   []float64 // number of users who like the page (popularity × n)
	quality []float64 // cached Page.Quality (immutable per page)
	// sitePages[s] lists the pages of site s (link-source sampling).
	sitePages [][]graph.NodeID
	// firstDisc[p] is the tick at which page p was first discovered by a
	// user beyond its seed liker (either channel), -1 if never.
	firstDisc []int64
	time      float64
	tick      uint64 // ticks since construction; keys the per-tick streams
	pageSeq   int
	urlBuf    []byte

	// Draw-phase scratch, indexed by NodeID and regrown as pages are born.
	linkAdds []int32        // links to create toward the page this tick
	linkDels []int32        // links to withdraw from the page this tick
	streams  []randx.Stream // per-page stream state after the draw phase

	// Search-discovery channel state (see search.go); nil/zero when the
	// channel is disabled.
	workload     *loadgen.Workload
	rank         *ranking.Context
	prevPR       []float64 // PageRank vector of the previous refresh
	refreshTicks uint64
	nextRefresh  uint64
	searchSeq    uint64 // workload request counter
	searchSessions, searchVisits, searchDiscoveries int64
}

// New builds the corpus, runs the burn-in, and leaves the simulation at
// t = 0 ready for the snapshot schedule.
func New(cfg Config) (*Sim, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Sim{
		cfg:       cfg,
		workers:   workers,
		g:         graph.New(cfg.Sites * cfg.InitialPagesPerSite * 2),
		sitePages: make([][]graph.NodeID, cfg.Sites),
		time:      -cfg.BurnInWeeks,
	}
	if err := s.initSearch(); err != nil {
		return nil, err
	}
	setup := randx.NewStream(cfg.Seed, keySetup, 0)
	for site := 0; site < cfg.Sites; site++ {
		n := cfg.InitialPagesPerSite/2 + randx.Intn(&setup, cfg.InitialPagesPerSite+1)
		if n < 1 {
			n = 1
		}
		for k := 0; k < n; k++ {
			// Stagger creation across the burn-in window so the corpus
			// contains pages of every age.
			created := -cfg.BurnInWeeks * randx.Float64(&setup)
			s.birthPage(&setup, site, created)
		}
	}
	// Burn-in: advance to t = 0.
	if cfg.BurnInWeeks > 0 {
		s.AdvanceTo(0)
	}
	return s, nil
}

// BirthPage inserts one page with a chosen quality on the given site at
// the current simulation time, returning its node id. It is the hook for
// scenario building (e.g. injecting a known high-quality newcomer);
// the regular birth process draws its quality from the Beta distribution
// instead.
func (s *Sim) BirthPage(site int, q float64) (graph.NodeID, error) {
	if site < 0 || site >= s.cfg.Sites {
		return graph.InvalidNode, fmt.Errorf("%w: site %d outside [0,%d)", ErrBadConfig, site, s.cfg.Sites)
	}
	if !(q > 0 && q <= 1) {
		return graph.InvalidNode, fmt.Errorf("%w: quality %g outside (0,1]", ErrBadConfig, q)
	}
	st := randx.NewStream(s.cfg.Seed, keyInject, uint64(s.pageSeq))
	return s.birthPageQ(&st, site, s.time, q), nil
}

// birthPage creates one page on the given site with a Beta-distributed
// quality and one seed user who likes it.
func (s *Sim) birthPage(src randx.Source, site int, created float64) graph.NodeID {
	q := randx.Beta(src, s.cfg.QualityAlpha, s.cfg.QualityBeta)
	// Clamp away from 0 so the page can be visited at all (P0 = 1/n > 0).
	if q < 0.01 {
		q = 0.01
	}
	return s.birthPageQ(src, site, created, q)
}

func (s *Sim) birthPageQ(src randx.Source, site int, created, q float64) graph.NodeID {
	s.urlBuf = appendPageURL(s.urlBuf[:0], site, s.pageSeq)
	s.pageSeq++
	id := s.g.MustAddPage(graph.Page{
		URL:     string(s.urlBuf),
		Site:    int32(site),
		Created: created,
		Quality: q,
	})
	s.aware = append(s.aware, 1)
	s.likes = append(s.likes, 1)
	s.quality = append(s.quality, q)
	s.firstDisc = append(s.firstDisc, -1)
	s.sitePages[site] = append(s.sitePages[site], id)
	// The seed liker publishes the page's first in-link.
	s.createLinkTo(src, id)
	return id
}

// appendPageURL builds "http://siteNNN.example/pageNNNNNN" without the
// fmt machinery — page births are on the tick hot path.
func appendPageURL(buf []byte, site, seq int) []byte {
	buf = append(buf, "http://site"...)
	buf = appendPadded(buf, site, 3)
	buf = append(buf, ".example/page"...)
	return appendPadded(buf, seq, 6)
}

// appendPadded appends v in decimal, zero-padded to at least width digits
// (matching fmt's %0*d for non-negative values).
func appendPadded(buf []byte, v, width int) []byte {
	digits := 1
	for x := v; x >= 10; x /= 10 {
		digits++
	}
	for ; digits < width; digits++ {
		buf = append(buf, '0')
	}
	return strconv.AppendInt(buf, int64(v), 10)
}

// createLinkTo adds one in-link to page p from a source chosen with the
// configured same-site bias; duplicates and self-links are silently
// skipped after a few attempts (the like still counts — the user simply
// linked to a page that already linked there).
func (s *Sim) createLinkTo(src randx.Source, p graph.NodeID) {
	site := int(s.g.Page(p).Site)
	numNodes := s.g.NumNodes()
	cand := s.sitePages[site]
	for attempt := 0; attempt < 8; attempt++ {
		var from graph.NodeID
		if randx.Float64(src) < s.cfg.SameSiteBias && len(cand) > 1 {
			from = cand[randx.Intn(src, len(cand))]
		} else {
			from = graph.NodeID(randx.Intn(src, numNodes))
		}
		if from == p {
			continue
		}
		if s.g.AddLink(from, p) {
			return
		}
	}
}

// removeLinkTo removes one random in-link of p, if any.
func (s *Sim) removeLinkTo(src randx.Source, p graph.NodeID) {
	in := s.g.InLinks(p)
	if len(in) == 0 {
		return
	}
	from := in[randx.Intn(src, len(in))]
	s.g.RemoveLink(from, p)
}

// Time returns the current simulation time in weeks (0 = first crawl).
func (s *Sim) Time() float64 { return s.time }

// NumPages returns the current page count.
func (s *Sim) NumPages() int { return s.g.NumNodes() }

// NumLinks returns the current link count.
func (s *Sim) NumLinks() int { return s.g.NumEdges() }

// Popularity returns the current popularity P(p,t) = likes/n of page p.
func (s *Sim) Popularity(p graph.NodeID) float64 {
	return s.likes[p] / float64(s.cfg.Users)
}

// Awareness returns A(p,t) = aware/n of page p (Definition 4).
func (s *Sim) Awareness(p graph.NodeID) float64 {
	return s.aware[p] / float64(s.cfg.Users)
}

// Quality returns the ground-truth quality of page p.
func (s *Sim) Quality(p graph.NodeID) float64 {
	return s.g.Page(p).Quality
}

// Graph exposes the live graph for inspection. Callers must not mutate it;
// use SnapshotNow for a stable copy.
func (s *Sim) Graph() *graph.Graph { return s.g }

// drawChunk is the fixed shard width of the draw phase. Chunk boundaries
// depend only on the page count, never on the worker count, which is one
// half of the bitwise worker-invariance argument (the other half is the
// per-page streams).
const drawChunk = 1024

// Step advances the simulation by one DT tick using the two-phase kernel:
// a (possibly parallel) draw phase computes every page's awareness/like
// deltas and link event counts from its own counter-based stream, then a
// serial apply phase mutates the graph in page order, followed by the
// tick-level churn and birth events.
func (s *Sim) Step() {
	cfg := &s.cfg
	nPages := s.g.NumNodes()
	s.growScratch(nPages)

	// (1) Draw phase. Workers own disjoint contiguous page ranges, so the
	// per-page slices are written race-free; the graph is not touched.
	if s.workers > 1 && nPages > drawChunk {
		s.drawParallel(nPages)
	} else {
		s.drawRange(0, nPages)
	}

	// (2) Apply phase: serial, in page order, continuing each page's
	// stream where the draw phase left it.
	for p := 0; p < nPages; p++ {
		adds, dels := s.linkAdds[p], s.linkDels[p]
		if adds == 0 && dels == 0 {
			continue
		}
		st := &s.streams[p]
		for k := int32(0); k < adds; k++ {
			s.createLinkTo(st, graph.NodeID(p))
		}
		for k := int32(0); k < dels; k++ {
			s.removeLinkTo(st, graph.NodeID(p))
		}
	}

	// Tick-level events, drawn from the tick stream: uncorrelated link
	// churn (fluctuation noise), then page births.
	tst := randx.NewStream(cfg.Seed, keyTick, s.tick)
	if cfg.NoiseRate > 0 {
		events := randx.Poisson(&tst, cfg.NoiseRate*float64(nPages)*cfg.DT)
		for k := 0; k < events; k++ {
			p := graph.NodeID(randx.Intn(&tst, s.g.NumNodes()))
			if randx.Float64(&tst) < 0.5 {
				s.createLinkTo(&tst, p)
			} else {
				s.removeLinkTo(&tst, p)
			}
		}
	}
	if cfg.BirthRate > 0 {
		births := randx.Poisson(&tst, cfg.BirthRate*cfg.DT)
		for k := 0; k < births; k++ {
			site := randx.Intn(&tst, cfg.Sites)
			s.birthPage(&tst, site, s.time)
		}
	}
	// Search sessions: the third tick-level event, after churn and births
	// so newborn pages can be crawled at the very next refresh.
	if cfg.Search.enabled() {
		s.stepSearch()
	}
	// The clock is derived, not accumulated: tick counts stay exact at any
	// horizon instead of drifting by one ulp per step.
	s.tick++
	s.time = float64(s.tick)*cfg.DT - cfg.BurnInWeeks
}

// growScratch sizes the per-page scratch slices for this tick, with 50%
// headroom so the steady trickle of births doesn't reallocate every tick.
func (s *Sim) growScratch(nPages int) {
	if cap(s.linkAdds) < nPages {
		newCap := nPages + nPages/2
		s.linkAdds = make([]int32, nPages, newCap)
		s.linkDels = make([]int32, nPages, newCap)
		s.streams = make([]randx.Stream, nPages, newCap)
	} else {
		s.linkAdds = s.linkAdds[:nPages]
		s.linkDels = s.linkDels[:nPages]
		s.streams = s.streams[:nPages]
	}
}

// drawParallel fans the draw phase out over fixed contiguous chunks via a
// shared atomic cursor.
func (s *Sim) drawParallel(nPages int) {
	chunks := (nPages + drawChunk - 1) / drawChunk
	workers := s.workers
	if workers > chunks {
		workers = chunks
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(cursor.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * drawChunk
				hi := lo + drawChunk
				if hi > nPages {
					hi = nPages
				}
				s.drawRange(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// drawRange runs the draw phase for pages [lo, hi): visits, discoveries,
// likes and forgetting, accumulating only per-page state plus link event
// counts. Every draw comes from the page's own (seed, page, tick) stream,
// so the results are independent of how ranges map to workers.
func (s *Sim) drawRange(lo, hi int) {
	cfg := &s.cfg
	n := float64(cfg.Users)
	aware, likes, quality := s.aware, s.likes, s.quality
	visitRate := cfg.VisitRate * cfg.DT
	forgetRate := cfg.ForgetRate * cfg.DT
	for p := lo; p < hi; p++ {
		// The stream lives in the per-page slice from the start: taking the
		// address of a stack local here would escape it through the generic
		// sampler calls, costing one heap allocation per page per tick.
		s.streams[p] = randx.NewStream(cfg.Seed, uint64(p), s.tick)
		st := &s.streams[p]
		var adds, dels int32
		if pop := likes[p] / n; pop > 0 {
			if visits := randx.Poisson(st, visitRate*pop); visits > 0 {
				unawareFrac := 1 - aware[p]/n
				if unawareFrac < 0 {
					unawareFrac = 0
				}
				// Each visit lands on an unaware user with prob unawareFrac
				// (random-visit hypothesis); thin the Poisson instead of
				// looping when visit counts are large. The normal
				// approximations can overshoot the finite user pool, so
				// clamp discoveries to the remaining unaware users and
				// likes to the aware count — Popularity() stays <= 1.
				discoveries := randx.Binomial(st, visits, unawareFrac)
				if room := int(n - aware[p]); discoveries > room {
					discoveries = room
				}
				if discoveries > 0 {
					aware[p] += float64(discoveries)
					if s.firstDisc[p] < 0 {
						// Per-page slot in a worker-disjoint range: race-free.
						s.firstDisc[p] = int64(s.tick)
					}
					newLikes := randx.Binomial(st, discoveries, quality[p])
					if room := int(aware[p] - likes[p]); newLikes > room {
						newLikes = room
					}
					likes[p] += float64(newLikes)
					adds = int32(randx.Binomial(st, newLikes, cfg.LinkProb))
				}
			}
		}
		// Forgetting (§9.1): aware users forget; forgetting likers
		// withdraw their links.
		if forgetRate > 0 && aware[p] > 1 {
			forgets := randx.Poisson(st, forgetRate*aware[p])
			for k := 0; k < forgets && aware[p] > 1; k++ {
				likerFrac := likes[p] / aware[p]
				aware[p]--
				if randx.Float64(st) < likerFrac && likes[p] > 1 {
					likes[p]--
					if randx.Float64(st) < cfg.LinkProb {
						dels++
					}
				}
			}
		}
		s.linkAdds[p], s.linkDels[p] = adds, dels
	}
}

// AdvanceTo steps the simulation until the clock reaches t. The step
// count is computed up front from the drift-free tick clock, so the
// number of ticks taken to reach any horizon is exactly
// ceil((t - time)/DT) regardless of how the horizon is split across
// calls.
func (s *Sim) AdvanceTo(t float64) {
	steps := int(math.Ceil((t - s.time) / s.cfg.DT * (1 - timeSlack)))
	for i := 0; i < steps; i++ {
		s.Step()
	}
}

// SnapshotNow captures a deep copy of the current graph as a crawl
// snapshot.
func (s *Sim) SnapshotNow(label string) snapshot.Snapshot {
	return snapshot.Snapshot{Label: label, Time: s.time, Graph: s.g.Clone()}
}

// RunSchedule advances through the schedule, capturing one snapshot per
// entry. Times are in weeks relative to t = 0 and must be non-decreasing
// and not in the past.
func (s *Sim) RunSchedule(sched Schedule) ([]snapshot.Snapshot, error) {
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	if len(sched.Times) > 0 && sched.Times[0] < s.time-1e-9 {
		return nil, fmt.Errorf("%w: schedule starts at %g but simulation is at %g",
			ErrBadConfig, sched.Times[0], s.time)
	}
	snaps := make([]snapshot.Snapshot, 0, len(sched.Times))
	for i, t := range sched.Times {
		s.AdvanceTo(t)
		snaps = append(snaps, s.SnapshotNow(sched.Labels[i]))
	}
	return snaps, nil
}

// TrueQualities returns the ground-truth quality for the given URLs
// (aligned page order), enabling evaluation against truth rather than
// future PageRank.
func (s *Sim) TrueQualities(urls []string) ([]float64, error) {
	out := make([]float64, len(urls))
	for i, u := range urls {
		id, ok := s.g.Lookup(u)
		if !ok {
			return nil, fmt.Errorf("webcorpus: unknown URL %q", u)
		}
		out[i] = s.g.Page(id).Quality
	}
	return out, nil
}
